// Package stsl is the public API of the spatio-temporal split learning
// library — a from-scratch Go reproduction of "Spatio-Temporal Split
// Learning" (Kim, Park, Jung, Yoo — DSN 2021).
//
// The paper's framework trains one deep network whose first hidden blocks
// live on M geo-distributed end-systems (each with private weights and
// private data) while a centralized server owns the remaining layers and a
// parameter-scheduling queue that absorbs arrival skew. Raw data never
// leaves an end-system; only first-block activations travel.
//
// The implementation lives in internal packages; this package re-exports
// the user-facing surface as type aliases so downstream code imports one
// path. Two runtimes drive the same deployment: the event-driven
// virtual-time simulation, and the live cluster runtime where every
// end-system is a real concurrent actor over the wire protocol.
//
//	deployment, _ := stsl.NewDeployment(stsl.Config{ ... }, shards)
//
//	// Virtual time — deterministic, simulated links:
//	sim, _ := stsl.NewSimulation(deployment, stsl.SimConfig{ ... })
//	result, _ := sim.Run()
//
//	// Real concurrency — one goroutine per end-system, live scheduling
//	// queue, in-memory / net.Pipe / TCP transports:
//	live, _ := stsl.RunCluster(ctx, deployment, stsl.ClusterRunnerConfig{
//		StepsPerClient: 100,
//	})
//	fmt.Println(live.Snapshot) // throughput, queue depth, staleness
//
// Config.BatchCoalesce (and ClusterConfig.BatchCoalesce on the live
// server) enables server-side micro-batch coalescing: up to that many
// queued activations are stacked into one forward/backward pass and one
// optimiser step, amortising the server's hot path across clients. Both
// runtimes apply identical coalescing semantics.
//
// For separate OS processes, cmd/stsl-server and cmd/stsl-endsystem run
// the cluster protocol over real TCP.
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// architecture and experiment map.
package stsl

import (
	"github.com/stsl/stsl/internal/baseline"
	"github.com/stsl/stsl/internal/cluster"
	"github.com/stsl/stsl/internal/compress"
	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/expt"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/obs"
	"github.com/stsl/stsl/internal/privacy"
	"github.com/stsl/stsl/internal/queue"
	"github.com/stsl/stsl/internal/simnet"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

// Core split-learning types.
type (
	// Config describes a spatio-temporal split-learning deployment.
	Config = core.Config
	// Deployment is a wired system of M end-systems plus the server.
	Deployment = core.Deployment
	// EndSystem is one client: private lower layers + local data.
	EndSystem = core.EndSystem
	// Server is the centralized upper stack with the scheduling queue.
	Server = core.Server
	// SimConfig parameterises the virtual-time simulation.
	SimConfig = core.SimConfig
	// Simulation drives a deployment over simulated links.
	Simulation = core.Simulation
	// SimResult summarises a simulation run.
	SimResult = core.SimResult
)

// U-shaped (no label sharing) variant types.
type (
	// UShapedConfig parameterises the label-private variant.
	UShapedConfig = core.UShapedConfig
	// UShapedDeployment wires U-shaped clients to a middle-only server.
	UShapedDeployment = core.UShapedDeployment
)

// Deployment and simulation constructors.
var (
	// NewDeployment builds a deployment from a config and data shards.
	NewDeployment = core.NewDeployment
	// NewUShaped builds the U-shaped (no-label-sharing) variant.
	NewUShaped = core.NewUShaped
	// SplitModelU cuts a CNN into lower/middle/head stacks.
	SplitModelU = core.SplitU
	// NewSimulation wires a deployment to simulated network paths.
	NewSimulation = core.NewSimulation
	// SplitModel cuts a built CNN into client and server stacks.
	SplitModel = core.Split
	// RunClient drives an end-system over a real connection.
	RunClient = core.RunClient
	// Serve runs the server over real connections.
	Serve = core.Serve
)

// Model types.
type (
	// PaperCNNConfig parameterises the paper's Fig-3 CNN.
	PaperCNNConfig = nn.PaperCNNConfig
	// PaperCNN is the built Fig-3 network with cut-point metadata.
	PaperCNN = nn.PaperCNN
	// Layer is one differentiable network stage.
	Layer = nn.Layer
	// Sequential chains layers.
	Sequential = nn.Sequential
)

// BuildPaperCNN constructs the Fig-3 CNN.
var BuildPaperCNN = nn.BuildPaperCNN

// Data types.
type (
	// Dataset is a labelled image set.
	Dataset = data.Dataset
	// SynthCIFAR generates the procedural CIFAR-10 stand-in.
	SynthCIFAR = data.SynthCIFAR
)

// Data helpers.
var (
	// DefaultSynthCIFAR returns the CIFAR-10-geometry generator.
	DefaultSynthCIFAR = data.DefaultSynthCIFAR
	// LoadCIFAR10Dir loads the real CIFAR-10 binary distribution.
	LoadCIFAR10Dir = data.LoadCIFAR10Dir
	// PartitionIID shards a dataset uniformly across clients.
	PartitionIID = data.PartitionIID
	// PartitionDirichlet shards with label skew (non-IID).
	PartitionDirichlet = data.PartitionDirichlet
)

// Network simulation types.
type (
	// LatencyModel samples link delays.
	LatencyModel = simnet.LatencyModel
	// ConstantLatency is a fixed delay.
	ConstantLatency = simnet.Constant
	// UniformLatency draws uniformly from a range.
	UniformLatency = simnet.Uniform
	// LogNormalLatency is a heavy-tailed WAN model.
	LogNormalLatency = simnet.LogNormal
	// Path is a bidirectional client↔server network path.
	Path = simnet.Path
)

// NewSymmetricPath builds a path with shared latency model.
var NewSymmetricPath = simnet.NewSymmetricPath

// Fault injection for chaos testing live deployments.
type (
	// FaultPlan parameterises a seeded deterministic fault schedule.
	FaultPlan = simnet.FaultPlan
	// FaultSchedule decides which faults a carrier injects.
	FaultSchedule = simnet.FaultSchedule
	// FaultCarrier wraps any connection with fault injection.
	FaultCarrier = transport.FaultCarrier
)

var (
	// NewFaults builds the standard seeded fault schedule.
	NewFaults = simnet.NewFaults
	// NewFaultCarrier wraps a connection in a fault schedule.
	NewFaultCarrier = transport.NewFaultCarrier
)

// Transport types for real deployments.
type (
	// Conn is a bidirectional message channel.
	Conn = transport.Conn
	// Message is one protocol datagram.
	Message = transport.Message
)

// Transport constructors.
var (
	// NewConnPair returns in-memory connection endpoints.
	NewConnPair = transport.NewPair
	// Dial connects to a TCP server endpoint.
	Dial = transport.Dial
	// Listen opens a TCP listener.
	Listen = transport.Listen
)

// Queue scheduling types.
type (
	// QueuePolicy is a scheduling discipline.
	QueuePolicy = queue.Policy
	// QueueMetrics records service statistics.
	QueueMetrics = queue.Metrics
	// SafeQueue wraps any policy for concurrent producers/consumers.
	SafeQueue = queue.Safe
)

// Queue constructors.
var (
	// NewQueuePolicy constructs "fifo", "staleness" or "fair-rr" policies.
	NewQueuePolicy = queue.NewPolicy
	// NewSafeQueue wraps a policy for concurrent use.
	NewSafeQueue = queue.NewSafe
)

// Live cluster runtime types (real concurrency, wire protocol).
type (
	// ClusterConfig holds the live server's knobs: queue cap, overflow
	// policy (park/reject), straggler timeout, micro-batch coalescing.
	ClusterConfig = cluster.Config
	// ClusterServer is the live centralized server.
	ClusterServer = cluster.Server
	// ClusterClientConfig parameterises one live end-system actor.
	ClusterClientConfig = cluster.ClientConfig
	// ClusterRunnerConfig parameterises an in-process live run.
	ClusterRunnerConfig = cluster.RunnerConfig
	// ClusterResult summarises a live run (compare core.SimResult).
	ClusterResult = cluster.RunnerResult
	// ClusterSnapshot is a live metrics snapshot.
	ClusterSnapshot = cluster.Snapshot
	// ClusterTransport selects pair | pipe | tcp carriers.
	ClusterTransport = cluster.Transport
)

// Live cluster entry points.
var (
	// NewClusterServer wraps a core server for live concurrent serving.
	NewClusterServer = cluster.NewServer
	// RunClusterClient drives one end-system over a live connection.
	RunClusterClient = cluster.RunClient
	// RunCluster executes a deployment on the live runtime in-process.
	RunCluster = cluster.Run
)

// Observability: attach an ObsRegistry/ObsTracer to ClusterConfig.Obs /
// ClusterConfig.Tracer and the runtime publishes queue, worker, session,
// transport, and training metrics; StartObsAdmin serves them over HTTP
// (/metrics, /statusz, /trace, /debug/pprof — bind loopback).
type (
	// ObsRegistry is a named-metric registry (get-or-create semantics).
	ObsRegistry = obs.Registry
	// ObsLabels tags a metric series, e.g. ObsLabels{"policy": "fifo"}.
	ObsLabels = obs.Labels
	// ObsCounter is a monotone atomic counter.
	ObsCounter = obs.Counter
	// ObsGauge is an atomic float64 gauge.
	ObsGauge = obs.Gauge
	// ObsHistogram is a log-bucketed latency histogram with quantiles.
	ObsHistogram = obs.Histogram
	// ObsTracer is a bounded in-memory event ring (flight recorder).
	ObsTracer = obs.Tracer
	// ObsAdminConfig configures the admin HTTP listener.
	ObsAdminConfig = obs.AdminConfig
	// ObsAdminServer is a running admin listener.
	ObsAdminServer = obs.AdminServer
)

// Observability entry points.
var (
	// NewObsRegistry creates an empty metric registry.
	NewObsRegistry = obs.NewRegistry
	// NewObsTracer creates a bounded trace ring (obs.DefaultTraceCap
	// is a sensible capacity).
	NewObsTracer = obs.NewTracer
	// StartObsAdmin serves /metrics, /statusz, /trace and pprof on addr.
	StartObsAdmin = obs.StartAdmin
)

// Baselines.
type (
	// TrainConfig parameterises centralized training.
	TrainConfig = baseline.TrainConfig
	// FedAvgConfig parameterises the FedAvg baseline.
	FedAvgConfig = baseline.FedAvgConfig
)

// Baseline trainers.
var (
	// TrainCentralized trains the monolithic upper bound.
	TrainCentralized = baseline.TrainCentralized
	// TrainFedAvg runs federated averaging over shards.
	TrainFedAvg = baseline.TrainFedAvg
	// EvaluateModel evaluates a monolithic model.
	EvaluateModel = baseline.Evaluate
)

// Privacy (Fig 4) helpers.
type (
	// LeakReport aggregates image-leakage metrics.
	LeakReport = privacy.LeakReport
	// AttackConfig parameterises the reconstruction attack.
	AttackConfig = privacy.AttackConfig
)

// Privacy entry points.
var (
	// RunFig4 measures leakage through the first block of a model.
	RunFig4 = privacy.RunFig4
	// ReconstructionAttack mounts the trained-decoder attack.
	ReconstructionAttack = privacy.ReconstructionAttack
	// SaveImagePNG writes a tensor as a PNG image.
	SaveImagePNG = privacy.SaveImagePNG
)

// Experiments (tables and figures).
type (
	// Scale trades experiment fidelity for runtime.
	Scale = expt.Scale
)

// Experiment runners; each reproduces one paper artifact.
var (
	// ScaleByName resolves "tiny", "small", "paper".
	ScaleByName = expt.ScaleByName
	// RunTableI reproduces Table I.
	RunTableI = expt.RunTableI
	// RunFig1Experiment reproduces Fig 1.
	RunFig1Experiment = expt.RunFig1
	// RunFig2Experiment reproduces Fig 2.
	RunFig2Experiment = expt.RunFig2
	// RunFig3Experiment audits the Fig-3 CNN.
	RunFig3Experiment = expt.RunFig3
	// RunFig4Experiment reproduces Fig 4 with aggregate metrics.
	RunFig4Experiment = expt.RunFig4
	// RunQueueAblation compares scheduling policies (§II).
	RunQueueAblation = expt.RunQueueAblation
	// RunCutSweep maps the accuracy/privacy tradeoff surface.
	RunCutSweep = expt.RunCutSweep
	// RunQuantizeAblation measures the uplink-compression tradeoff.
	RunQuantizeAblation = expt.RunQuantizeAblation
	// RunRobustness sweeps link loss rates (failure injection).
	RunRobustness = expt.RunRobustness
)

// Compression types for the activation uplink.
type (
	// QuantizedTensor is a linearly quantized tensor.
	QuantizedTensor = compress.Quantized
	// QuantizeBits selects 8- or 16-bit width.
	QuantizeBits = compress.Bits
)

// Quantization widths and helpers.
const (
	// Quantize8 packs activations into one byte per element.
	Quantize8 = compress.Bits8
	// Quantize16 packs activations into two bytes per element.
	Quantize16 = compress.Bits16
)

// Quantize compresses a tensor; QuantizeRoundTrip compresses and
// immediately reconstructs (straight-through training).
var (
	Quantize          = compress.Quantize
	QuantizeRoundTrip = compress.RoundTrip
)

// Tensor and RNG utilities.
type (
	// Tensor is the dense N-d array underlying all computation.
	Tensor = tensor.Tensor
	// RNG is the deterministic random generator.
	RNG = mathx.RNG
)

// NewRNG seeds a deterministic generator.
var NewRNG = mathx.NewRNG
