// Geodistributed: the paper's §II temporal phenomenon, twice. Three
// end-systems at very different distances share one server under a fixed
// wall-clock budget. With a FIFO queue the far client's parameters arrive
// "lately and sparsely" and learning is biased toward near clients; the
// parameter-scheduling disciplines (fair round-robin, synchronous rounds)
// trade throughput for balanced service.
//
// Part 1 measures this in the virtual-time simulation (deterministic,
// simulated links). Part 2 runs the same deployment on the live cluster
// runtime — one goroutine per end-system over the wire protocol, real
// concurrency, live metrics — the same API the TCP commands use.
//
//	go run ./examples/geodistributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	stsl "github.com/stsl/stsl"
)

func main() {
	model := stsl.PaperCNNConfig{
		Height: 16, Width: 16, Filters: []int{8, 16}, Hidden: 32, Classes: 4,
	}
	gen := stsl.SynthCIFAR{Height: 16, Width: 16, Classes: 4, Noise: 0.05}
	train, err := gen.GenerateBalanced(45, 1)
	if err != nil {
		log.Fatal(err)
	}
	test, err := gen.GenerateBalanced(20, 2)
	if err != nil {
		log.Fatal(err)
	}
	// Non-IID shards: the far client holds classes nobody else has much
	// of, so starving it starves those classes.
	shards, err := stsl.PartitionDirichlet(train, 3, 0.3, stsl.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}

	latencies := []time.Duration{
		120 * time.Millisecond, // client 0: another continent
		2 * time.Millisecond,   // client 1: same metro
		15 * time.Millisecond,  // client 2: same region
	}
	fmt.Println("link latencies:", latencies)
	fmt.Printf("far client (0) class mix: %v\n\n", shards[0].ClassCounts())

	for _, policy := range []string{"fifo", "staleness", "fair-rr", "sync-rounds"} {
		dep, err := stsl.NewDeployment(stsl.Config{
			Model: model, Cut: 1, Clients: 3, Seed: 9,
			BatchSize: 16, LR: 0.05, QueuePolicy: policy,
		}, shards)
		if err != nil {
			log.Fatal(err)
		}
		paths := make([]*stsl.Path, 3)
		for i := range paths {
			paths[i], err = stsl.NewSymmetricPath(
				stsl.ConstantLatency{D: latencies[i]}, 0, stsl.NewRNG(uint64(40+i)))
			if err != nil {
				log.Fatal(err)
			}
		}
		sim, err := stsl.NewSimulation(dep, stsl.SimConfig{
			Paths:          paths,
			TimeLimit:      8 * time.Second, // fixed virtual training window
			ServerProcTime: time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		mean, _, err := dep.EvaluateMean(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s per-client batches %v  imbalance %.2f  mean acc %.1f%%\n",
			policy, res.StepsPerClient, dep.Server.QueueMetrics.ServiceImbalance(), mean*100)
	}
	fmt.Println("\nFIFO starves the far client; sync-rounds equalises contributions",
		"\nat the cost of total throughput — the paper's queue-scheduling tradeoff.")

	// Part 2 — the same deployment on the live cluster runtime: real
	// goroutine concurrency instead of an event heap. Here there are no
	// simulated links, so skew comes from actual scheduling; the live
	// Snapshot exposes throughput, queue depth, and per-client service.
	fmt.Println("\nlive cluster (real concurrency, wire protocol):")
	for _, policy := range []string{"fifo", "sync-rounds"} {
		dep, err := stsl.NewDeployment(stsl.Config{
			Model: model, Cut: 1, Clients: 3, Seed: 9,
			BatchSize: 16, LR: 0.05, QueuePolicy: policy,
		}, shards)
		if err != nil {
			log.Fatal(err)
		}
		res, err := stsl.RunCluster(context.Background(), dep, stsl.ClusterRunnerConfig{
			StepsPerClient: 40,
		})
		if err != nil {
			log.Fatal(err)
		}
		mean, _, err := dep.EvaluateMean(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %s\n             wall %v  mean acc %.1f%%\n",
			policy, res.Snapshot, res.WallDuration.Round(time.Millisecond), mean*100)
	}
}
