// Quickstart: train a spatio-temporal split-learning deployment in ~30
// lines of API. Two end-systems with private first blocks share one
// centralized server; raw images never leave the clients.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	stsl "github.com/stsl/stsl"
)

func main() {
	// 1. Local data at each end-system (synthetic CIFAR-10 stand-in).
	gen := stsl.SynthCIFAR{Height: 16, Width: 16, Classes: 4, Noise: 0.05}
	train, err := gen.GenerateBalanced(40, 1)
	if err != nil {
		log.Fatal(err)
	}
	test, err := gen.GenerateBalanced(20, 2)
	if err != nil {
		log.Fatal(err)
	}
	shards, err := stsl.PartitionDirichlet(train, 2, 0.5, stsl.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}

	// 2. The network, split after block L1 (cut=1).
	dep, err := stsl.NewDeployment(stsl.Config{
		Model: stsl.PaperCNNConfig{
			Height: 16, Width: 16, Filters: []int{8, 16}, Hidden: 32, Classes: 4,
		},
		Cut: 1, Clients: 2, Seed: 7, BatchSize: 16, LR: 0.05,
	}, shards)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Simulated links: one nearby client, one far away.
	mkPath := func(d time.Duration, seed uint64) *stsl.Path {
		p, err := stsl.NewSymmetricPath(stsl.ConstantLatency{D: d}, 0, stsl.NewRNG(seed))
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	sim, err := stsl.NewSimulation(dep, stsl.SimConfig{
		Paths:             []*stsl.Path{mkPath(2*time.Millisecond, 10), mkPath(40*time.Millisecond, 11)},
		MaxStepsPerClient: 60,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Train and evaluate.
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	mean, accs, err := dep.EvaluateMean(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d server batches in %v of virtual time\n",
		res.ServerSteps, res.VirtualDuration.Round(time.Millisecond))
	fmt.Printf("final training loss %.3f\n", res.FinalLoss)
	fmt.Printf("mean test accuracy  %.1f%% (per client: %.1f%%, %.1f%%)\n",
		mean*100, accs[0]*100, accs[1]*100)
	fmt.Printf("queue stats         %s\n", dep.Server.QueueMetrics)
}
