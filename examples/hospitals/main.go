// Hospitals: the paper's motivating scenario. Four hospitals hold
// privacy-regulated patient images with very different case mixes
// (strongly non-IID shards); none may export raw data. They jointly train
// one diagnostic CNN via spatio-temporal split learning, and we audit
// exactly what each hospital's uplink exposes — comparing against the
// FedAvg alternative and the (forbidden) centralized pooling upper bound.
//
//	go run ./examples/hospitals
package main

import (
	"fmt"
	"log"
	"time"

	stsl "github.com/stsl/stsl"
)

const hospitals = 4

func main() {
	model := stsl.PaperCNNConfig{
		Height: 16, Width: 16, Filters: []int{8, 16}, Hidden: 32, Classes: 4,
	}
	gen := stsl.SynthCIFAR{Height: 16, Width: 16, Classes: 4, Noise: 0.05}
	pool, err := gen.GenerateBalanced(60, 1)
	if err != nil {
		log.Fatal(err)
	}
	test, err := gen.GenerateBalanced(25, 2)
	if err != nil {
		log.Fatal(err)
	}
	// Strong label skew: each hospital sees a different disease mix.
	shards, err := stsl.PartitionDirichlet(pool, hospitals, 0.3, stsl.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range shards {
		fmt.Printf("hospital %d: %3d cases, class mix %v\n", i, s.Len(), s.ClassCounts())
	}

	// --- forbidden upper bound: pool all data centrally ---
	cent, err := stsl.TrainCentralized(stsl.TrainConfig{
		Model: model, Seed: 5, Epochs: 4, BatchSize: 16, LR: 0.05,
	}, pool)
	if err != nil {
		log.Fatal(err)
	}
	cm, err := stsl.EvaluateModel(cent.Model, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncentralized (pooled raw data, illegal here): %.1f%%\n", cm.Accuracy()*100)

	// --- FedAvg alternative: ship whole models every round ---
	fed, err := stsl.TrainFedAvg(stsl.FedAvgConfig{
		Model: model, Seed: 5, Rounds: 4, BatchSize: 16, LR: 0.05,
	}, shards)
	if err != nil {
		log.Fatal(err)
	}
	cmFed, err := stsl.EvaluateModel(fed.Model, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FedAvg (ships full models):                  %.1f%%\n", cmFed.Accuracy()*100)

	// --- spatio-temporal split learning ---
	dep, err := stsl.NewDeployment(stsl.Config{
		Model: model, Cut: 1, Clients: hospitals, Seed: 5, BatchSize: 16, LR: 0.05,
	}, shards)
	if err != nil {
		log.Fatal(err)
	}
	paths := make([]*stsl.Path, hospitals)
	for i := range paths {
		paths[i], err = stsl.NewSymmetricPath(
			stsl.UniformLatency{Lo: 5 * time.Millisecond, Hi: 30 * time.Millisecond}, 0,
			stsl.NewRNG(uint64(20+i)))
		if err != nil {
			log.Fatal(err)
		}
	}
	sim, err := stsl.NewSimulation(dep, stsl.SimConfig{Paths: paths, MaxStepsPerClient: 60})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	mean, accs, err := dep.EvaluateMean(test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spatio-temporal split (ships activations):   %.1f%%\n", mean*100)
	for i, a := range accs {
		fmt.Printf("  hospital %d pipeline: %.1f%%\n", i, a*100)
	}

	// --- privacy audit: what does hospital 0's uplink expose? ---
	cnn, err := stsl.BuildPaperCNN(model, stsl.NewRNG(5))
	if err != nil {
		log.Fatal(err)
	}
	audit, err := stsl.RunFig4(cnn, shards[0].Image(0), "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nuplink privacy audit (edge correlation = recognisable detail):")
	for _, st := range audit.Stages {
		fmt.Printf("  %-10s detail leak %.3f, structure leak %.3f\n",
			st.Name, st.Leak.EdgeCorrelation, st.Leak.Correlation)
	}
	fmt.Println("\nraw patient images never left any hospital.")
}
