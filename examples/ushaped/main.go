// U-shaped: the no-label-sharing variant. In the base framework the
// end-systems ship labels with their activations so the server can
// compute the loss. Here the end-systems also keep the output head, so
// the server sees neither raw images, nor labels, nor logits — at the
// cost of a second round trip per batch.
//
//	go run ./examples/ushaped
package main

import (
	"fmt"
	"log"

	stsl "github.com/stsl/stsl"
)

func main() {
	model := stsl.PaperCNNConfig{
		Height: 16, Width: 16, Filters: []int{8, 16}, Hidden: 32, Classes: 4,
	}
	gen := stsl.SynthCIFAR{Height: 16, Width: 16, Classes: 4, Noise: 0.05}
	train, err := gen.GenerateBalanced(40, 1)
	if err != nil {
		log.Fatal(err)
	}
	test, err := gen.GenerateBalanced(20, 2)
	if err != nil {
		log.Fatal(err)
	}
	shards, err := stsl.PartitionIID(train, 2, stsl.NewRNG(3))
	if err != nil {
		log.Fatal(err)
	}

	dep, err := stsl.NewUShaped(stsl.UShapedConfig{
		Model: model,
		Cut:   1, // L1 on the end-systems
		// fc1+relu+fc2 stay on the end-systems too: the server holds
		// only the middle conv blocks.
		HeadLayers: 3,
		Clients:    2, Seed: 7, BatchSize: 16, LR: 0.05,
	}, shards)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("server holds only the middle stack:")
	fmt.Printf("  client lower: %d layers   server middle: %d layers   client head: %d layers\n",
		dep.Clients[0].Lower.Len(), dep.Server.Middle.Len(), dep.Clients[0].Head.Len())

	if err := dep.TrainRounds(60); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d server batches, final loss %.3f\n",
		dep.Server.Steps(), dep.Server.Losses.Last())
	for i := range dep.Clients {
		cm, err := dep.Evaluate(i, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("client %d pipeline accuracy: %.1f%%\n", i, cm.Accuracy()*100)
	}
	fmt.Println("\nno raw image, label, or logit ever reached the server;")
	fmt.Println("the message validator rejects any features message carrying labels.")
}
