// Benchmark harness: one benchmark per table and figure of the paper
// (see DESIGN.md §4 for the experiment index), plus ablation benches for
// the design choices DESIGN.md calls out. Benchmarks default to the tiny
// scale so `go test -bench=.` completes quickly; run cmd/stsl-bench with
// -scale small|paper for full-fidelity reproductions, and EXPERIMENTS.md
// for recorded paper-vs-measured results.
package stsl_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/baseline"
	"github.com/stsl/stsl/internal/cluster"
	"github.com/stsl/stsl/internal/compress"
	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/expt"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/queue"
	"github.com/stsl/stsl/internal/simnet"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

// BenchmarkTableIAccuracy regenerates Table I (accuracy vs layers at
// end-systems) per iteration and reports the centralized and deepest-cut
// accuracies as metrics — the degradation between them is the paper's
// headline tradeoff.
func BenchmarkTableIAccuracy(b *testing.B) {
	s := expt.TinyScale()
	var first, last float64
	for i := 0; i < b.N; i++ {
		res, err := expt.RunTableI(s, 42)
		if err != nil {
			b.Fatal(err)
		}
		first = res.Rows[0].Accuracy
		last = res.Rows[len(res.Rows)-1].Accuracy
	}
	b.ReportMetric(first*100, "centralized-acc-%")
	b.ReportMetric(last*100, "deepest-cut-acc-%")
	b.ReportMetric((first-last)*100, "degradation-pp")
}

// BenchmarkFig1BasicSplit regenerates Fig 1: single-client split learning
// vs its monolithic twin.
func BenchmarkFig1BasicSplit(b *testing.B) {
	s := expt.TinyScale()
	var split, mono float64
	for i := 0; i < b.N; i++ {
		res, err := expt.RunFig1(s, 42)
		if err != nil {
			b.Fatal(err)
		}
		split, mono = res.SplitAccuracy, res.MonolithicAccuracy
	}
	b.ReportMetric(split*100, "split-acc-%")
	b.ReportMetric(mono*100, "monolithic-acc-%")
}

// BenchmarkFig2SpatioTemporal regenerates Fig 2's M-client framework and
// reports queue behaviour at M=4.
func BenchmarkFig2SpatioTemporal(b *testing.B) {
	s := expt.TinyScale()
	var occupancy float64
	for i := 0; i < b.N; i++ {
		res, err := expt.RunFig2(s, 42, []int{2, 4})
		if err != nil {
			b.Fatal(err)
		}
		occupancy = float64(res.MaxOccupancy[1])
	}
	b.ReportMetric(occupancy, "max-queue-occupancy")
}

// BenchmarkFig3CNNForward measures a training-mode forward+backward pass
// of the paper's exact Fig-3 CNN (batch 8, 32×32×3) — the per-batch cost
// every end-system and the server share.
func BenchmarkFig3CNNForward(b *testing.B) {
	model, err := nn.BuildPaperCNN(nn.PaperCNNConfig{}, mathx.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Randn(mathx.NewRNG(2), 1, 8, 3, 32, 32)
	labels := []int{0, 1, 2, 3, 4, 5, 6, 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Net.ZeroGrad()
		logits := model.Net.Forward(x, true)
		_, grad, err := nn.SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			b.Fatal(err)
		}
		model.Net.Backward(grad)
	}
}

// BenchmarkFig4Privacy regenerates Fig 4's leakage measurement and
// reports the detail-leak drop from conv-only to conv+pool.
func BenchmarkFig4Privacy(b *testing.B) {
	s := expt.TinyScale()
	var convLeak, poolLeak float64
	for i := 0; i < b.N; i++ {
		res, err := expt.RunFig4(s, 42, 4, "")
		if err != nil {
			b.Fatal(err)
		}
		convLeak, poolLeak = res.MeanEdgeCorr[1], res.MeanEdgeCorr[2]
	}
	b.ReportMetric(convLeak, "conv-edge-leak")
	b.ReportMetric(poolLeak, "pooled-edge-leak")
}

// BenchmarkQueueSchedulingAblation regenerates the §II scheduling
// experiment: FIFO vs sync-rounds under a far client, fixed horizon.
func BenchmarkQueueSchedulingAblation(b *testing.B) {
	s := expt.TinyScale()
	s.Clients = 3
	var fifoImbalance, syncImbalance float64
	for i := 0; i < b.N; i++ {
		res, err := expt.RunQueueAblation(s, 42, []string{"fifo", "sync-rounds"}, 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		fifoImbalance = res.Outcomes[0].Imbalance
		syncImbalance = res.Outcomes[1].Imbalance
	}
	b.ReportMetric(fifoImbalance, "fifo-imbalance")
	b.ReportMetric(syncImbalance, "sync-imbalance")
}

// BenchmarkCutSweep regenerates the X2 cut × clients accuracy surface.
func BenchmarkCutSweep(b *testing.B) {
	s := expt.TinyScale()
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunCutSweep(s, 42, nil, []int{2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuantizeAblation regenerates the uplink-compression ablation
// and reports the raw→8-bit compression ratio.
func BenchmarkQuantizeAblation(b *testing.B) {
	s := expt.TinyScale()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := expt.RunQuantizeAblation(s, 42)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(res.Points[0].UplinkBytes) / float64(res.Points[2].UplinkBytes)
	}
	b.ReportMetric(ratio, "uplink-compression-x")
}

// BenchmarkRobustness regenerates the packet-loss sweep and reports
// retransmissions at 15% loss.
func BenchmarkRobustness(b *testing.B) {
	s := expt.TinyScale()
	var retrans float64
	for i := 0; i < b.N; i++ {
		res, err := expt.RunRobustness(s, 42, []float64{0.15})
		if err != nil {
			b.Fatal(err)
		}
		retrans = float64(res.Points[0].Retransmits)
	}
	b.ReportMetric(retrans, "retransmits@15%-loss")
}

// BenchmarkCompressRoundTrip measures quantize+dequantize throughput for
// the cut-1 activation geometry.
func BenchmarkCompressRoundTrip(b *testing.B) {
	r := mathx.NewRNG(1)
	x := tensor.Randn(r, 1, 32, 16, 16, 16)
	b.SetBytes(int64(8 * x.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := compress.RoundTrip(x, compress.Bits8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUShapedRound measures one full U-shaped (no-label-sharing)
// round: two round trips per batch versus one for the base protocol —
// compare with BenchmarkSplitProtocolStep.
func BenchmarkUShapedRound(b *testing.B) {
	ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := core.NewUShaped(core.UShapedConfig{
		Model: nn.PaperCNNConfig{Height: 8, Width: 8, Filters: []int{4, 8}, Hidden: 16, Classes: 4},
		Cut:   1, HeadLayers: 1, Clients: 1, Seed: 2, BatchSize: 8, LR: 0.05,
	}, []*data.Dataset{ds})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dep.TrainRounds(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFedAvgBaseline measures the comparison baseline's cost per
// round on the tiny workload.
func BenchmarkFedAvgBaseline(b *testing.B) {
	ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).GenerateBalanced(16, 1)
	if err != nil {
		b.Fatal(err)
	}
	shards, err := data.PartitionIID(ds, 2, mathx.NewRNG(2))
	if err != nil {
		b.Fatal(err)
	}
	cfg := baseline.FedAvgConfig{
		Model: nn.PaperCNNConfig{Height: 8, Width: 8, Filters: []int{4, 8}, Hidden: 16, Classes: 4},
		Seed:  3, Rounds: 1, BatchSize: 8, LR: 0.05,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.TrainFedAvg(cfg, shards); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md §6) ---

// BenchmarkConvIm2Col vs BenchmarkConvDirect quantify the im2col design
// choice for the paper's first conv layer geometry (3→16 ch, 32×32).
func BenchmarkConvIm2Col(b *testing.B) {
	r := mathx.NewRNG(1)
	conv, err := nn.NewConv2D(nn.Conv2DConfig{Name: "c", In: 3, Out: 16, KernelH: 3, KernelW: 3, SamePad: true}, r)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Randn(r, 1, 8, 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

func BenchmarkConvDirect(b *testing.B) {
	r := mathx.NewRNG(1)
	conv, err := nn.NewConv2D(nn.Conv2DConfig{Name: "c", In: 3, Out: 16, KernelH: 3, KernelW: 3, SamePad: true}, r)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Randn(r, 1, 8, 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.DirectConvForward(conv, x)
	}
}

// BenchmarkTensorMatMul measures the float64 matmul kernel at the shape
// the fc1 layer uses (batch 32 × 256 → 512).
func BenchmarkTensorMatMul(b *testing.B) {
	r := mathx.NewRNG(1)
	a := tensor.Randn(r, 1, 32, 256)
	w := tensor.Randn(r, 1, 256, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(a, w)
	}
}

// BenchmarkMatMulSerialVsParallel ablates the goroutine-parallel matmul
// at a conv-sized workload (im2col matrix of the paper's conv1 layer).
func BenchmarkMatMulSerialVsParallel(b *testing.B) {
	r := mathx.NewRNG(1)
	a := tensor.Randn(r, 1, 8*32*32, 27) // batch-8 im2col for conv1
	w := tensor.Randn(r, 1, 16, 27)      // 16 filters
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulTransB(a, w)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulTransBP(a, w)
		}
	})
}

// BenchmarkQueuePolicies measures scheduling overhead per push+pop for
// each discipline under a 4-client mix.
func BenchmarkQueuePolicies(b *testing.B) {
	for _, name := range []string{"fifo", "staleness", "fair-rr"} {
		b.Run(name, func(b *testing.B) {
			q, err := queue.NewPolicy(name)
			if err != nil {
				b.Fatal(err)
			}
			msgs := make([]*transport.Message, 4)
			for i := range msgs {
				msgs[i] = &transport.Message{Type: transport.MsgControl, ClientID: i, SentAt: time.Duration(i)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Push(queue.Item{Msg: msgs[i%4], ArrivedAt: time.Duration(i)})
				if i%2 == 1 {
					q.Pop(time.Duration(i))
				}
			}
		})
	}
}

// BenchmarkTransportEncode measures wire-format serialisation of a cut-1
// activation message at the paper's geometry (16×16×16 × batch 32).
func BenchmarkTransportEncode(b *testing.B) {
	r := mathx.NewRNG(1)
	labels := make([]int, 32)
	msg := &transport.Message{
		Type: transport.MsgActivation, ClientID: 1, Seq: 1,
		Payload: tensor.Randn(r, 1, 32, 16, 16, 16),
		Labels:  labels,
	}
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := msg.Encode(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkSplitProtocolStep measures one full lock-step round of the
// split protocol (client forward → server forward/backward/step → client
// backward/step) on the tiny model, excluding network time.
func BenchmarkSplitProtocolStep(b *testing.B) {
	ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := core.NewDeployment(core.Config{
		Model: nn.PaperCNNConfig{Height: 8, Width: 8, Filters: []int{4, 8}, Hidden: 16, Classes: 4},
		Cut:   1, Clients: 1, Seed: 2, BatchSize: 8, LR: 0.05,
	}, []*data.Dataset{ds})
	if err != nil {
		b.Fatal(err)
	}
	client, server := dep.Clients[0], dep.Server
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, err := client.ProduceBatch(0)
		if err != nil {
			b.Fatal(err)
		}
		if err := server.Enqueue(msg, 0); err != nil {
			b.Fatal(err)
		}
		reply, ok, err := server.ProcessNext(0)
		if err != nil || !ok {
			b.Fatalf("process: ok=%v err=%v", ok, err)
		}
		if err := client.ApplyGradient(reply); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterThroughput measures the live-concurrency runtime's
// server throughput (training steps/sec) as the number of concurrent
// end-system goroutines, the micro-batch coalescing cap, and the
// data-parallel worker count grow, over net.Pipe with full wire
// encode/decode — the perf trajectory of the real deployment path,
// next to BenchmarkSimulationEventLoop's virtual-time twin. At 8+
// clients the coalesced passes (b>1) amortise the server's conv/matmul
// hot path across clients and beat b=1; extra workers (w>1) multiply
// it with concurrent replicas that FedAvg-sync every SyncEvery steps
// (the acceptance floor for the pool: ≥1.6× at w=2 and ≥2.5× at w=4
// against the w=1 cell at 8 clients).
func BenchmarkClusterThroughput(b *testing.B) {
	cases := []struct{ clients, coalesce, workers int }{
		{1, 1, 1},
		{4, 1, 1}, {4, 4, 1},
		{8, 1, 1}, {8, 1, 2}, {8, 1, 4}, {8, 4, 1},
		{16, 1, 1}, {16, 1, 4}, {16, 4, 1}, {16, 8, 1},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(fmt.Sprintf("clients=%d/b=%d/w=%d", tc.clients, tc.coalesce, tc.workers), func(b *testing.B) {
			const steps = 8
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(16*tc.clients, 1)
				if err != nil {
					b.Fatal(err)
				}
				shards, err := data.PartitionIID(ds, tc.clients, mathx.NewRNG(2))
				if err != nil {
					b.Fatal(err)
				}
				dep, err := core.NewDeployment(core.Config{
					Model: nn.PaperCNNConfig{Height: 8, Width: 8, Filters: []int{4, 8}, Hidden: 16, Classes: 4},
					Cut:   1, Clients: tc.clients, Seed: 3, BatchSize: 8, LR: 0.05,
					BatchCoalesce: tc.coalesce,
				}, shards)
				if err != nil {
					b.Fatal(err)
				}
				runnerCfg := cluster.RunnerConfig{
					StepsPerClient: steps, Transport: cluster.TransportPipe,
				}
				runnerCfg.Cluster.Workers = tc.workers
				b.StartTimer()
				res, err := cluster.Run(context.Background(), dep, runnerCfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(res.ServerSteps)/res.WallDuration.Seconds(), "steps/s")
				b.StartTimer()
			}
		})
	}
}

// BenchmarkSimulationEventLoop measures simulator throughput (events/sec)
// with 4 clients and realistic latency spread, dominated by NN compute.
func BenchmarkSimulationEventLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(64, 1)
		if err != nil {
			b.Fatal(err)
		}
		shards, err := data.PartitionIID(ds, 4, mathx.NewRNG(2))
		if err != nil {
			b.Fatal(err)
		}
		dep, err := core.NewDeployment(core.Config{
			Model: nn.PaperCNNConfig{Height: 8, Width: 8, Filters: []int{4, 8}, Hidden: 16, Classes: 4},
			Cut:   1, Clients: 4, Seed: 3, BatchSize: 8, LR: 0.05,
		}, shards)
		if err != nil {
			b.Fatal(err)
		}
		paths := make([]*simnet.Path, 4)
		for j := range paths {
			paths[j], err = simnet.NewSymmetricPath(
				simnet.Uniform{Lo: time.Millisecond, Hi: 50 * time.Millisecond}, 0, mathx.NewRNG(uint64(j)))
			if err != nil {
				b.Fatal(err)
			}
		}
		sim, err := core.NewSimulation(dep, core.SimConfig{Paths: paths, MaxStepsPerClient: 10})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
