package stsl_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles every cmd/ and examples/ main package into one
// temp dir — the compile check that keeps the binaries from rotting now
// that they carry real flag surface (checkpoint, resume, retry).
func buildBinaries(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
		"./cmd/...", "./examples/...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/... ./examples/...: %v\n%s", err, out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 9 { // 5 cmds + 4 examples
		t.Fatalf("built %d binaries, want at least 9", len(entries))
	}
	return dir
}

func bin(dir, name string) string {
	if runtime.GOOS == "windows" {
		name += ".exe"
	}
	return filepath.Join(dir, name)
}

// TestSmokeBinaries builds everything and runs each example end to end,
// asserting exit 0 and non-empty output. The heavier geodistributed
// sweep (4 policies × sim + live) is skipped in -short mode.
func TestSmokeBinaries(t *testing.T) {
	dir := buildBinaries(t)
	examples := []struct {
		name  string
		heavy bool
	}{
		{name: "quickstart"},
		{name: "ushaped"},
		{name: "hospitals"},
		{name: "geodistributed", heavy: true},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			if ex.heavy && testing.Short() {
				t.Skipf("%s is a full policy sweep; skipped with -short", ex.name)
			}
			cmd := exec.Command(bin(dir, ex.name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", ex.name, err, out)
			}
			if len(bytes.TrimSpace(out)) == 0 {
				t.Fatalf("%s exited 0 but printed nothing", ex.name)
			}
			t.Logf("%s: %d bytes of output", ex.name, len(out))
		})
	}
}

// TestSmokeTCPDeployment runs the real binaries the README-style way:
// one stsl-server over loopback TCP with checkpointing enabled, two
// stsl-endsystem processes with retry enabled, tiny scale. Asserts every
// process exits 0, the server reports completed training, and the
// checkpoint file exists.
func TestSmokeTCPDeployment(t *testing.T) {
	dir := buildBinaries(t)
	ckptDir := t.TempDir()

	server := exec.Command(bin(dir, "stsl-server"),
		"-addr", "127.0.0.1:0", "-clients", "2", "-cut", "1", "-scale", "tiny",
		"-checkpoint-dir", ckptDir, "-checkpoint-every", "2",
		"-resume-grace", "5s", "-status-every", "0", "-admin-addr", "127.0.0.1:0")
	stdout, err := server.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var serverErr bytes.Buffer
	server.Stderr = &serverErr
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer server.Process.Kill()

	// The server prints its bound address; scan for it so the test needs
	// no fixed port. The scanner goroutine owns the stdout buffer until
	// the pipe reaches EOF (scanDone), so reading it after the server
	// exits is race-free.
	var serverOut bytes.Buffer
	addrCh := make(chan string, 1)
	adminCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			serverOut.WriteString(line + "\n")
			if i := strings.Index(line, "admin listener on http://"); i >= 0 {
				fields := strings.Fields(line[i+len("admin listener on http://"):])
				if len(fields) > 0 {
					select {
					case adminCh <- fields[0]:
					default:
					}
				}
			} else if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				if len(fields) > 0 {
					select {
					case addrCh <- fields[0]:
					default:
					}
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("server never reported its address\n%s", serverErr.String())
	}
	// The server binds all interfaces by default; dial loopback.
	if strings.HasPrefix(addr, "[::]") {
		addr = "127.0.0.1" + strings.TrimPrefix(addr, "[::]")
	}
	var adminAddr string
	select {
	case adminAddr = <-adminCh:
	case <-time.After(10 * time.Second):
		t.Fatalf("server never reported its admin address\n%s", serverErr.String())
	}
	// Probe the admin surface while the server is live: the scrape and
	// status endpoints must answer before any client has joined.
	for _, path := range []string{"/metrics", "/statusz", "/trace"} {
		resp, err := http.Get("http://" + adminAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		if path == "/metrics" && !strings.Contains(string(body), "stsl_uptime_seconds") {
			t.Fatalf("/metrics missing stsl_uptime_seconds:\n%s", body)
		}
	}

	clients := make([]*exec.Cmd, 2)
	outs := make([]*bytes.Buffer, 2)
	for i := range clients {
		outs[i] = &bytes.Buffer{}
		clients[i] = exec.Command(bin(dir, "stsl-endsystem"),
			"-addr", addr, "-id", fmt.Sprint(i), "-cut", "1", "-scale", "tiny",
			"-steps", "4", "-retry", "5")
		clients[i].Stdout = outs[i]
		clients[i].Stderr = outs[i]
		if err := clients[i].Start(); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range clients {
		if err := waitWithTimeout(c, time.Minute); err != nil {
			t.Fatalf("endsystem %d: %v\n%s\nserver:\n%s", i, err, outs[i].String(), serverErr.String())
		}
		if !strings.Contains(outs[i].String(), "done") {
			t.Fatalf("endsystem %d printed no completion line:\n%s", i, outs[i].String())
		}
	}
	if err := waitWithTimeout(server, time.Minute); err != nil {
		t.Fatalf("server: %v\n%s", err, serverErr.String())
	}
	select {
	case <-scanDone:
	case <-time.After(10 * time.Second):
		t.Fatal("server stdout never reached EOF")
	}
	if !strings.Contains(serverOut.String(), "training complete") {
		t.Fatalf("server never reported completion:\n%s\nstderr:\n%s", serverOut.String(), serverErr.String())
	}
	if _, err := os.Stat(filepath.Join(ckptDir, "server.ckpt")); err != nil {
		t.Fatalf("no checkpoint written: %v\nserver:\n%s", err, serverOut.String())
	}
}

// waitWithTimeout waits for a started process, killing it if it
// overstays.
func waitWithTimeout(cmd *exec.Cmd, d time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		cmd.Process.Kill()
		return fmt.Errorf("process did not exit within %v", d)
	}
}
