module github.com/stsl/stsl

go 1.22
