// Command stsl-endsystem runs one end-system of the split-learning
// protocol over real TCP, as a live cluster client: it joins the server
// with a session handshake, holds the layers below the cut and its local
// (synthetic) data shard, sends first-block activations, applies the
// gradients that come back, resends on backpressure rejection, and bails
// out if the server goes silent past the gradient timeout. With -retry
// it survives churn: a lost connection is redialled, the session resumed
// by token (or re-joined after a server restart), and the in-flight
// batch resent. Raw images never leave the process.
//
// See cmd/stsl-server for a full invocation example.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/stsl/stsl/internal/cluster"
	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/expt"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9000", "server address")
		id          = flag.Int("id", 0, "end-system id (unique per client)")
		cut         = flag.Int("cut", 1, "split point (must match the server)")
		scale       = flag.String("scale", "small", "model scale: tiny|small|paper")
		seed        = flag.Uint64("seed", 1, "server weight seed")
		local       = flag.Uint64("local-seed", 0, "private lower-layer seed (0 = derive from id)")
		steps       = flag.Int("steps", 100, "batches to contribute")
		batch       = flag.Int("batch", 0, "batch size (0 = scale default)")
		lr          = flag.Float64("lr", 0.05, "learning rate")
		timeout     = flag.Duration("grad-timeout", time.Minute, "max wait for any gradient (0 = forever)")
		retry       = flag.Int("retry", 0, "reconnect attempts after a lost connection (0 = fail immediately); reconnects resume the session and resend the in-flight batch")
		retryBk     = flag.Duration("retry-backoff", 250*time.Millisecond, "pause before each reconnect attempt")
		dtName      = flag.String("dtype", "float64", "compute and wire precision: float64|float32 (float32 halves wire bytes via TSL2 frames; must match the server)")
		cksum       = flag.Bool("checksum", false, "send CRC32C-checksummed wire frames (self-describing; a plain server interoperates)")
		poison      = flag.String("poison", "", "emulate a hostile/broken client: nan (upload NaN activations) or scale (norm-bomb uploads) — for exercising the server's -sanitize quarantine")
		poisonAfter = flag.Int("poison-after", 0, "clean activation uploads before poisoning starts")
		poisonScale = flag.Float64("poison-scale", 1e6, "multiplier for -poison scale")
	)
	flag.Parse()

	s, err := expt.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	if *batch == 0 {
		*batch = s.BatchSize
	}
	if *local == 0 {
		*local = *seed + uint64(*id)*104729 + 7
	}
	cnn, err := nn.BuildPaperCNN(s.Model, mathx.NewRNG(*local))
	if err != nil {
		fatal(err)
	}
	lower, _, err := core.Split(cnn, *cut)
	if err != nil {
		fatal(err)
	}
	optim, err := opt.NewSGD(opt.Config{LR: *lr})
	if err != nil {
		fatal(err)
	}
	cfg := s.Model.Defaults()
	gen := data.SynthCIFAR{Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes}
	// Each end-system draws a private shard keyed by its id — disjoint
	// local data, as in the paper's multi-hospital setting.
	shard, err := gen.Generate(s.TrainPerClass*cfg.Classes/2, *seed+uint64(*id)*31+11)
	if err != nil {
		fatal(err)
	}
	shard.Normalize()
	batcher, err := data.NewBatcher(shard, *batch, mathx.NewRNG(*local+1))
	if err != nil {
		fatal(err)
	}
	es, err := core.NewEndSystem(*id, lower, optim, batcher)
	if err != nil {
		fatal(err)
	}
	dtype, err := tensor.ParseDType(*dtName)
	if err != nil {
		fatal(err)
	}
	lower.SetDType(dtype)
	es.WireDType = dtype

	var mode transport.HostileMode
	switch *poison {
	case "":
		mode = transport.PoisonNone
	case "nan":
		mode = transport.PoisonNaN
	case "scale":
		mode = transport.PoisonScale
	default:
		fatal(fmt.Errorf("unknown -poison mode %q (want nan or scale)", *poison))
	}
	// dress wraps each dialed carrier with the poison emulation and the
	// checksum setting, so reconnects behave like the first connection.
	dress := func(c transport.Conn) transport.Conn {
		if mode != transport.PoisonNone {
			c = transport.NewHostileCarrier(c, mode, *poisonAfter, *poisonScale)
		}
		if *cksum {
			transport.SetChecksum(c, true)
		}
		return c
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rawConn, err := transport.Dial(*addr)
	if err != nil {
		fatal(err)
	}
	conn := dress(rawConn)
	defer conn.Close()
	fmt.Printf("stsl-endsystem %d: connected to %s, cut=%d, %d steps\n", *id, *addr, *cut, *steps)
	clientCfg := cluster.ClientConfig{
		Steps: *steps, GradTimeout: *timeout,
	}
	if *retry > 0 {
		clientCfg.Dial = func() (transport.Conn, error) {
			c, err := transport.Dial(*addr)
			if err != nil {
				return nil, err
			}
			return dress(c), nil
		}
		clientCfg.MaxReconnects = *retry
		clientCfg.ReconnectBackoff = *retryBk
	}
	res, err := cluster.RunClient(ctx, es, conn, clientCfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stsl-endsystem %d: done — %d batches over %d local epochs (%d backpressure resends, %d reconnects)\n",
		*id, res.Steps, res.Epochs+1, res.Rejected, res.Reconnects)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stsl-endsystem:", err)
	os.Exit(1)
}
