// Command stsl-load is an open-loop load generator for the cluster
// server: it materialises a seeded arrival trace (Poisson, diurnal, or
// flash-crowd — see internal/loadgen), fires one short-lived end-system
// session per arrival regardless of how the previous ones are faring,
// and reports the latency distribution (p50/p95/p99), the refusal rate,
// and the error count at the end. Open-loop is the honest way to measure
// an overloaded server — a closed-loop client slows down with its victim
// and understates the damage (coordinated omission).
//
// Each session joins with a distinct client id, contributes -steps
// batches, and leaves. A refusal (session cap, shed gate) terminates the
// session and counts toward the refusal rate; with -retry > 0 the client
// instead honours the server's RetryAfter hint, backs off with
// decorrelated jitter, and rejoins — the refusal still counts, the
// session may still complete.
//
// Exit status: 0 on success, 1 on a hard failure (bad flags, no server),
// 2 when a configured SLO gate (-slo-p95, -slo-refusals) is violated —
// so CI can assert "the server stayed inside its envelope under this
// trace" with a one-line invocation.
//
// Example (against a running stsl-server on :9000):
//
//	stsl-load -addr 127.0.0.1:9000 -shape flash-crowd -rate 2 -spike-x 10 \
//	          -duration 10s -steps 2 -slo-p95 2s -slo-refusals 0.5
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/stsl/stsl/internal/cluster"
	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/expt"
	"github.com/stsl/stsl/internal/loadgen"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/obs"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9000", "server address")
		shape    = flag.String("shape", "poisson", "arrival trace shape: poisson|diurnal|flash-crowd")
		rate     = flag.Float64("rate", 2, "base arrival rate in sessions/second (diurnal: peak; flash-crowd: off-spike base)")
		duration = flag.Duration("duration", 10*time.Second, "trace horizon")
		seed     = flag.Uint64("seed", 1, "trace seed — the same seed replays the same arrival schedule")
		spikeAt  = flag.Duration("spike-at", 0, "flash-crowd spike start (0 = duration/3)")
		spikeFor = flag.Duration("spike-for", 0, "flash-crowd spike length (0 = duration/10)")
		spikeX   = flag.Float64("spike-x", 10, "flash-crowd rate multiplier during the spike")
		period   = flag.Duration("period", 0, "diurnal cycle length (0 = duration)")
		floor    = flag.Float64("floor", 0.2, "diurnal trough as a fraction of the peak rate")
		steps    = flag.Int("steps", 1, "batches each session contributes")
		cut      = flag.Int("cut", 1, "split point (must match the server)")
		scale    = flag.String("scale", "small", "model scale: tiny|small|paper (must match the server)")
		wseed    = flag.Uint64("weight-seed", 1, "server weight seed (must match the server)")
		lr       = flag.Float64("lr", 0.05, "learning rate")
		dtName   = flag.String("dtype", "float64", "wire precision (must match the server)")
		idBase   = flag.Int("id-base", 1000, "first client id; arrival i uses id-base+i")
		timeout  = flag.Duration("grad-timeout", 30*time.Second, "per-session hard wait bound")
		retry    = flag.Int("retry", 0, "reconnect budget per session; also enables refusal retries with jittered backoff (0 = one-shot sessions)")
		sloP95   = flag.Duration("slo-p95", 0, "fail (exit 2) if the session p95 exceeds this (0 = no gate)")
		sloRef   = flag.Float64("slo-refusals", -1, "fail (exit 2) if refused sessions / arrivals exceeds this fraction (negative = no gate)")
		jsonOut  = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	flag.Parse()

	shp, err := loadgen.ParseShape(*shape)
	if err != nil {
		fatal(err)
	}
	arrivals, err := loadgen.Arrivals(loadgen.Config{
		Shape: shp, Rate: *rate, Duration: *duration, Seed: *seed,
		Period: *period, Floor: *floor,
		SpikeAt: *spikeAt, SpikeFor: *spikeFor, SpikeX: *spikeX,
	})
	if err != nil {
		fatal(err)
	}
	sc, err := expt.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	dtype, err := tensor.ParseDType(*dtName)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("stsl-load: %s trace, %d arrivals over %v against %s (steps=%d retry=%d seed=%d)\n",
		shp, len(arrivals), *duration, *addr, *steps, *retry, *seed)

	var (
		sessLat            = new(obs.Histogram) // dial → done, completed sessions only
		completed, refused atomic.Int64
		bounces, failures  atomic.Int64
		firstErr           atomic.Value
		wg                 sync.WaitGroup
	)
	start := time.Now()
	for i, at := range arrivals {
		select {
		case <-time.After(time.Until(start.Add(at))):
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			began := time.Now()
			err := runSession(ctx, sessionConfig{
				addr: *addr, id: *idBase + i, cut: *cut, scale: sc, seed: *wseed,
				lr: *lr, dtype: dtype, steps: *steps, timeout: *timeout, retry: *retry,
				backoffSeed: *seed + uint64(i)*0x9e3779b97f4a7c15 + 1,
			}, &bounces)
			switch {
			case err == nil:
				completed.Add(1)
				sessLat.ObserveSince(began)
			case errors.Is(err, cluster.ErrRetryLater):
				refused.Add(1)
			case ctx.Err() != nil:
				// Interrupted mid-session; not the server's fault.
			default:
				failures.Add(1)
				firstErr.CompareAndSwap(nil, err)
			}
		}(i)
	}
	wg.Wait()

	rep := report{
		Shape:    string(shp),
		Rate:     *rate,
		Duration: duration.String(),
		Arrivals: len(arrivals),
		Complete: int(completed.Load()),
		Refused:  int(refused.Load()),
		Bounces:  int(bounces.Load()),
		Failures: int(failures.Load()),
		P50ms:    1000 * sessLat.Quantile(0.50),
		P95ms:    1000 * sessLat.Quantile(0.95),
		P99ms:    1000 * sessLat.Quantile(0.99),
	}
	if rep.Arrivals > 0 {
		rep.RefusalRate = float64(rep.Refused) / float64(rep.Arrivals)
	}
	if e, ok := firstErr.Load().(error); ok && e != nil {
		rep.FirstError = e.Error()
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("stsl-load: %d/%d complete, %d refused (%.1f%%), %d refusal waits, %d failures\n",
			rep.Complete, rep.Arrivals, rep.Refused, 100*rep.RefusalRate, rep.Bounces, rep.Failures)
		fmt.Printf("stsl-load: session latency p50=%.1fms p95=%.1fms p99=%.1fms\n",
			rep.P50ms, rep.P95ms, rep.P99ms)
		if rep.FirstError != "" {
			fmt.Printf("stsl-load: first failure: %s\n", rep.FirstError)
		}
	}

	// SLO gates: violated gates exit 2 so CI can tell "server broke its
	// envelope" apart from "load generator broke".
	bad := false
	if *sloP95 > 0 && time.Duration(rep.P95ms*float64(time.Millisecond)) > *sloP95 {
		fmt.Fprintf(os.Stderr, "stsl-load: SLO violated: p95 %.1fms > %v\n", rep.P95ms, *sloP95)
		bad = true
	}
	if *sloRef >= 0 && rep.RefusalRate > *sloRef {
		fmt.Fprintf(os.Stderr, "stsl-load: SLO violated: refusal rate %.3f > %.3f\n", rep.RefusalRate, *sloRef)
		bad = true
	}
	if bad {
		os.Exit(2)
	}
}

// report is the run summary, shaped for both the text lines and -json.
type report struct {
	Shape       string  `json:"shape"`
	Rate        float64 `json:"rate"`
	Duration    string  `json:"duration"`
	Arrivals    int     `json:"arrivals"`
	Complete    int     `json:"complete"`
	Refused     int     `json:"refused"`
	Bounces     int     `json:"refusal_waits"`
	Failures    int     `json:"failures"`
	RefusalRate float64 `json:"refusal_rate"`
	P50ms       float64 `json:"p50_ms"`
	P95ms       float64 `json:"p95_ms"`
	P99ms       float64 `json:"p99_ms"`
	FirstError  string  `json:"first_error,omitempty"`
}

type sessionConfig struct {
	addr        string
	id, cut     int
	scale       expt.Scale
	seed        uint64
	lr          float64
	dtype       tensor.DType
	steps       int
	timeout     time.Duration
	retry       int
	backoffSeed uint64
}

// runSession builds one throwaway end-system and drives it through a
// full join → train → done session. bounces accumulates refusal waits
// the client sat out before eventually getting in (only with retry).
func runSession(ctx context.Context, sc sessionConfig, bounces *atomic.Int64) error {
	local := sc.seed + uint64(sc.id)*104729 + 7
	cnn, err := nn.BuildPaperCNN(sc.scale.Model, mathx.NewRNG(local))
	if err != nil {
		return err
	}
	lower, _, err := core.Split(cnn, sc.cut)
	if err != nil {
		return err
	}
	optim, err := opt.NewSGD(opt.Config{LR: sc.lr})
	if err != nil {
		return err
	}
	mcfg := sc.scale.Model.Defaults()
	gen := data.SynthCIFAR{Height: mcfg.Height, Width: mcfg.Width, Classes: mcfg.Classes}
	// A small private shard — enough for a handful of batches; the load
	// generator measures the control plane, not the learning curve.
	shard, err := gen.Generate(max(sc.scale.BatchSize*sc.steps, mcfg.Classes), sc.seed+uint64(sc.id)*31+11)
	if err != nil {
		return err
	}
	shard.Normalize()
	batcher, err := data.NewBatcher(shard, sc.scale.BatchSize, mathx.NewRNG(local+1))
	if err != nil {
		return err
	}
	es, err := core.NewEndSystem(sc.id, lower, optim, batcher)
	if err != nil {
		return err
	}
	lower.SetDType(sc.dtype)
	es.WireDType = sc.dtype

	conn, err := transport.Dial(sc.addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	ccfg := cluster.ClientConfig{
		Steps: sc.steps, GradTimeout: sc.timeout, BackoffSeed: sc.backoffSeed,
	}
	if sc.retry > 0 {
		ccfg.Dial = func() (transport.Conn, error) { return transport.Dial(sc.addr) }
		ccfg.MaxReconnects = sc.retry
	}
	res, err := cluster.RunClient(ctx, es, conn, ccfg)
	if res != nil {
		bounces.Add(int64(res.Refused))
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stsl-load:", err)
	os.Exit(1)
}
