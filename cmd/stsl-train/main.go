// Command stsl-train trains one spatio-temporal split-learning deployment
// on the synthetic workload and reports accuracy, loss, and queue
// statistics.
//
// Usage:
//
//	stsl-train -cut 1 -clients 4 -steps 200 -policy fifo
//	stsl-train -cut 3 -alpha 0.2 -policy sync-rounds -far-latency 150ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/expt"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/simnet"
)

func main() {
	var (
		scale      = flag.String("scale", "small", "model/data scale: tiny|small|paper")
		cut        = flag.Int("cut", 1, "split point (0 = all layers at server)")
		clients    = flag.Int("clients", 4, "number of end-systems")
		steps      = flag.Int("steps", 0, "batches per client (0 = scale default)")
		batch      = flag.Int("batch", 0, "batch size (0 = scale default)")
		lr         = flag.Float64("lr", 0, "learning rate (0 = scale default)")
		alpha      = flag.Float64("alpha", 0, "Dirichlet non-IID alpha (0 = scale default)")
		policy     = flag.String("policy", "fifo", "queue policy: fifo|staleness|fair-rr|sync-rounds")
		seed       = flag.Uint64("seed", 1, "seed")
		farLatency = flag.Duration("far-latency", 0, "latency of client 0 (0 = same as others)")
		latency    = flag.Duration("latency", time.Millisecond, "latency of the other clients")
		dtype      = flag.String("dtype", "float64", "compute and wire precision: float64|float32")
	)
	flag.Parse()

	s, err := expt.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	if *steps == 0 {
		*steps = s.StepsPerClient
	}
	if *batch == 0 {
		*batch = s.BatchSize
	}
	if *lr == 0 {
		*lr = s.LR
	}
	if *alpha == 0 {
		*alpha = s.Alpha
	}

	cfg := s.Model.Defaults()
	gen := data.SynthCIFAR{Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes}
	train, err := gen.GenerateBalanced(s.TrainPerClass, *seed)
	if err != nil {
		fatal(err)
	}
	test, err := gen.GenerateBalanced(s.TestPerClass, *seed+1)
	if err != nil {
		fatal(err)
	}
	mn, sd := train.Normalize()
	test.ApplyNormalization(mn, sd)
	shards, err := data.PartitionDirichlet(train, *clients, *alpha, mathx.NewRNG(*seed+2))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("training: cut=%d clients=%d steps/client=%d batch=%d lr=%v policy=%s\n",
		*cut, *clients, *steps, *batch, *lr, *policy)
	fmt.Printf("data: %d train / %d test, non-IID skew %.3f\n",
		train.Len(), test.Len(), data.SkewStat(train, shards))

	dep, err := core.NewDeployment(core.Config{
		Model: s.Model, Cut: *cut, Clients: *clients, Seed: *seed,
		BatchSize: *batch, LR: *lr, QueuePolicy: *policy, DType: *dtype,
	}, shards)
	if err != nil {
		fatal(err)
	}
	paths := make([]*simnet.Path, *clients)
	for i := range paths {
		d := *latency
		if i == 0 && *farLatency > 0 {
			d = *farLatency
		}
		paths[i], err = simnet.NewSymmetricPath(simnet.Constant{D: d}, 0, mathx.NewRNG(*seed+uint64(i)*11))
		if err != nil {
			fatal(err)
		}
	}
	sim, err := core.NewSimulation(dep, core.SimConfig{
		Paths:             paths,
		MaxStepsPerClient: *steps,
		ServerProcTime:    time.Millisecond,
	})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := sim.Run()
	if err != nil {
		fatal(err)
	}
	mean, accs, err := dep.EvaluateMean(test)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nwall time        %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("virtual time     %v\n", res.VirtualDuration.Round(time.Millisecond))
	fmt.Printf("server batches   %d\n", res.ServerSteps)
	fmt.Printf("final loss       %.4f\n", res.FinalLoss)
	fmt.Printf("queue            %s\n", dep.Server.QueueMetrics)
	fmt.Printf("mean accuracy    %.2f%%\n", mean*100)
	for i, a := range accs {
		fmt.Printf("  client %d pipeline accuracy %.2f%% (contributed %d steps)\n",
			i, a*100, res.StepsPerClient[i])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stsl-train:", err)
	os.Exit(1)
}
