// Command stsl-privacy reproduces the paper's Fig 4: it renders an
// original image, its activations after the first Conv2D, and after the
// full first block (conv + max-pool), writes them as PNGs, prints the
// leakage metrics, and optionally mounts the trained reconstruction
// attack as a stronger adversary.
//
// Usage:
//
//	stsl-privacy -out ./fig4 -images 4
//	stsl-privacy -attack
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/expt"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/privacy"
)

func main() {
	var (
		out    = flag.String("out", "fig4-out", "directory for PNG output")
		images = flag.Int("images", 4, "number of images to audit")
		scale  = flag.String("scale", "small", "model scale: tiny|small|paper")
		seed   = flag.Uint64("seed", 1, "seed")
		attack = flag.Bool("attack", false, "also mount the trained reconstruction attack")
	)
	flag.Parse()

	s, err := expt.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	cfg := s.Model.Defaults()
	model, err := nn.BuildPaperCNN(cfg, mathx.NewRNG(*seed))
	if err != nil {
		fatal(err)
	}
	gen := data.SynthCIFAR{Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes, Noise: 0.03}
	ds, err := gen.Generate(*images, *seed+7)
	if err != nil {
		fatal(err)
	}

	fmt.Println("Fig 4 — what leaves the end-system at cut=1")
	fmt.Printf("%-8s %-22s %-22s\n", "image", "conv-L1 edge/struct", "L1(pooled) edge/struct")
	for i := 0; i < ds.Len(); i++ {
		dir := filepath.Join(*out, fmt.Sprintf("img%d", i))
		res, err := privacy.RunFig4(model, ds.Image(i), dir)
		if err != nil {
			fatal(err)
		}
		c, p := res.Stages[1].Leak, res.Stages[2].Leak
		fmt.Printf("%-8d %.3f / %.3f          %.3f / %.3f\n",
			i, c.EdgeCorrelation, c.Correlation, p.EdgeCorrelation, p.Correlation)
	}
	fmt.Printf("\nPNGs written under %s/ (original.png, conv_l1.png, l1.png per image)\n", *out)

	if *attack {
		fmt.Println("\nReconstruction attack (trained decoder, informed adversary):")
		aux, err := gen.Generate(256, *seed+100)
		if err != nil {
			fatal(err)
		}
		holdout, err := gen.Generate(32, *seed+101)
		if err != nil {
			fatal(err)
		}
		for _, cut := range []int{1, 2} {
			lower, _, err := core.Split(model, cut)
			if err != nil {
				fatal(err)
			}
			res, err := privacy.ReconstructionAttack(privacy.AttackConfig{
				Seed: *seed, Steps: 400, BatchSize: 16, LR: 0.005, Hidden: 128,
			}, lower, aux, holdout)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  cut=%d: reconstruction PSNR %.1f dB, correlation %.3f\n",
				cut, res.MeanPSNR, res.MeanCorrelation)
		}
		fmt.Println("  (deeper cuts leak less: lower PSNR / correlation)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stsl-privacy:", err)
	os.Exit(1)
}
