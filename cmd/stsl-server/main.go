// Command stsl-server runs the centralized server of the split-learning
// protocol over real TCP, on the live cluster runtime: sessions join via
// handshake, every arriving activation is admitted into one thread-safe
// scheduling queue with bounded backpressure, a single worker goroutine
// owns the model, stragglers are dropped after a configurable silence,
// and SIGINT triggers a graceful drain. It accepts the configured number
// of end-systems, trains until every client announces completion, then
// writes the learned server weights.
//
// The server is churn-tolerant: a client whose link drops may reconnect
// within -resume-grace and resume its session (same id, queued items,
// reply cache) instead of being evicted. With -checkpoint-dir it also
// checkpoints its own training state periodically and on shutdown, and
// -resume restores it — so a restarted server carries on from the last
// step while clients started with -retry re-handshake on their own.
//
// The server degrades gracefully under overload instead of collapsing:
// -max-sessions caps admitted sessions, -shed-depth/-shed-p95 open a
// hysteresis shed gate that refuses new joins (with a RetryAfter hint on
// the wire) and brownouts the lowest-priority sessions until the backlog
// drains, -work-deadline sheds queued activations too stale to be worth
// serving, and -send-timeout evicts clients that stall reading their
// replies. -straggler-auto derives the silence deadline from how fast
// healthy clients actually talk instead of a fixed worst case.
//
// With -admin-addr the server also exposes an admin HTTP listener:
// readiness on /healthz (200 while serving, 503 once shedding or
// stopped), Prometheus metrics on /metrics, a JSON status superset of
// the periodic -status-every log line on /statusz, the recent-event
// flight recorder on /trace, and net/http/pprof under /debug/pprof. The
// admin surface exposes operational internals, so bind it to loopback
// unless the network is trusted.
//
// Usage (server plus two end-systems on one machine):
//
//	stsl-server   -addr :9000 -clients 2 -cut 1 -checkpoint-dir /tmp/stsl -admin-addr 127.0.0.1:9090 &
//	stsl-endsystem -addr 127.0.0.1:9000 -id 0 -cut 1 -steps 100 -retry 10 &
//	stsl-endsystem -addr 127.0.0.1:9000 -id 1 -cut 1 -steps 100 -retry 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/stsl/stsl/internal/cluster"
	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/expt"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/obs"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/paramsync"
	"github.com/stsl/stsl/internal/queue"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

func main() {
	var (
		addr         = flag.String("addr", ":9000", "listen address")
		clients      = flag.Int("clients", 1, "number of end-systems to await")
		cut          = flag.Int("cut", 1, "split point (must match the end-systems)")
		scale        = flag.String("scale", "small", "model scale: tiny|small|paper")
		seed         = flag.Uint64("seed", 1, "weight seed (must match the end-systems)")
		lr           = flag.Float64("lr", 0.05, "learning rate")
		policy       = flag.String("policy", "fifo", "queue policy: fifo|staleness|fair-rr")
		queueCap     = flag.Int("queue-cap", 64, "scheduling queue depth cap (-1 = unbounded)")
		overflow     = flag.String("overflow", "park", "behaviour at the cap: park|reject")
		coalesce     = flag.Int("coalesce", 1, "micro-batch coalescing cap: stack up to this many queued activations per pass")
		workers      = flag.Int("workers", 1, "data-parallel model replicas draining the queue concurrently (1 = classic single worker)")
		syncEvery    = flag.Int("sync-every", 0, "pool steps between FedAvg replica-averaging barriers (0 = default; only with -workers > 1)")
		straggler    = flag.Duration("straggler-timeout", 0, "drop silent clients after this long (0 = never; -straggler-auto overrides)")
		stragglerAut = flag.Bool("straggler-auto", false, "derive the straggler deadline adaptively from observed client cadence (8× smoothed inter-message gap, clamped 250ms–20s)")
		maxSessions  = flag.Int("max-sessions", 0, "admission cap on concurrently live sessions; joins beyond it are refused with a RetryAfter hint (0 = unlimited)")
		shedDepth    = flag.Int("shed-depth", 0, "queue depth at which the shed gate opens: new joins refused, brownout active until it drains (0 = off)")
		shedP95      = flag.Duration("shed-p95", 0, "p95 service latency at which the shed gate opens (0 = off)")
		workDeadline = flag.Duration("work-deadline", 0, "queued activations older than this are shed un-served and the client told to resend (0 = serve everything)")
		sendTimeout  = flag.Duration("send-timeout", 0, "per-reply write deadline; a client that stalls reading longer than this is evicted instead of wedging a worker (0 = block forever)")
		grace        = flag.Duration("resume-grace", 30*time.Second, "how long a disconnected client may reconnect and resume its session (0 = evict immediately)")
		ckptDir      = flag.String("checkpoint-dir", "", "directory for periodic server checkpoints (empty = no checkpointing)")
		ckptEvery    = flag.Int("checkpoint-every", 50, "server steps between checkpoints (with -checkpoint-dir)")
		resume       = flag.Bool("resume", false, "restore training state from -checkpoint-dir before serving (missing checkpoint = fresh start)")
		statusEvery  = flag.Duration("status-every", 5*time.Second, "periodic one-line status log interval (0 = off)")
		adminAddr    = flag.String("admin-addr", "", "admin HTTP listener: /metrics (Prometheus), /statusz (JSON), /trace, /debug/pprof. Serves operational internals — bind loopback (e.g. 127.0.0.1:9090) unless the network is trusted. Empty = off")
		dtypeName    = flag.String("dtype", "float64", "compute and wire precision: float64|float32 (float32 halves wire bytes via TSL2 frames; must match the end-systems)")
		weights      = flag.String("weights", "", "path to write learned server weights (optional)")
		checksum     = flag.Bool("checksum", false, "send CRC32C-checksummed wire frames (self-describing — plain peers interoperate; corrupted inbound frames are detected either way)")
		aggregate    = flag.String("aggregate", "average", "replica aggregation rule at sync barriers: average|trimmed|clipped (robust rules bound what poisoned replicas can do; only with -workers > 1)")
		sanitize     = flag.Bool("sanitize", false, "screen inbound activations for NaN/Inf and norm outliers; clients that repeatedly send garbage are quarantined")
	)
	flag.Parse()
	if *resume && *ckptDir == "" {
		fatal(fmt.Errorf("-resume needs -checkpoint-dir"))
	}

	s, err := expt.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	template, err := nn.BuildPaperCNN(s.Model, mathx.NewRNG(*seed))
	if err != nil {
		fatal(err)
	}
	_, upper, err := core.Split(template, *cut)
	if err != nil {
		fatal(err)
	}
	optim, err := opt.NewSGD(opt.Config{LR: *lr})
	if err != nil {
		fatal(err)
	}
	pol, err := queue.NewPolicy(*policy)
	if err != nil {
		fatal(err)
	}
	coreSrv, err := core.NewServer(upper, optim, pol)
	if err != nil {
		fatal(err)
	}
	dtype, err := tensor.ParseDType(*dtypeName)
	if err != nil {
		fatal(err)
	}
	upper.SetDType(dtype)
	coreSrv.WireDType = dtype
	stragglerTimeout := *straggler
	if *stragglerAut {
		stragglerTimeout = cluster.StragglerAuto
	}
	aggMethod, err := paramsync.ParseMethod(*aggregate)
	if err != nil {
		fatal(err)
	}
	clusterCfg := cluster.Config{
		Checksum:         *checksum,
		Aggregate:        aggMethod,
		Sanitize:         *sanitize,
		QueueCap:         *queueCap,
		Overflow:         cluster.Overflow(*overflow),
		StragglerTimeout: stragglerTimeout,
		BatchCoalesce:    *coalesce,
		ResumeGrace:      *grace,
		Workers:          *workers,
		SyncEvery:        *syncEvery,
		MaxSessions:      *maxSessions,
		ShedDepth:        *shedDepth,
		ShedLatencyP95:   *shedP95,
		WorkDeadline:     *workDeadline,
		SendTimeout:      *sendTimeout,
		// Each extra worker gets a structurally identical replica of the
		// server stack, built the same way as the primary; NewServer fans
		// the primary's weights (including any -resume restore) out to it.
		NewReplica: func() (*core.Server, error) {
			tpl, err := nn.BuildPaperCNN(s.Model, mathx.NewRNG(*seed))
			if err != nil {
				return nil, err
			}
			_, up, err := core.Split(tpl, *cut)
			if err != nil {
				return nil, err
			}
			o, err := opt.NewSGD(opt.Config{LR: *lr})
			if err != nil {
				return nil, err
			}
			p, err := queue.NewPolicy(*policy)
			if err != nil {
				return nil, err
			}
			replica, err := core.NewServer(up, o, p)
			if err != nil {
				return nil, err
			}
			up.SetDType(dtype)
			replica.WireDType = dtype
			return replica, nil
		},
	}
	// Telemetry comes alive with the admin listener: a registry for
	// /metrics and a bounded trace ring for /trace. Without -admin-addr
	// the server runs the uninstrumented (pre-telemetry) hot path.
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
	)
	if *adminAddr != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(obs.DefaultTraceCap)
		clusterCfg.Obs = reg
		clusterCfg.Tracer = tracer
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(err)
		}
		ckptPath := filepath.Join(*ckptDir, "server.ckpt")
		clusterCfg.Checkpoint = cluster.FileCheckpointer(ckptPath)
		clusterCfg.CheckpointEvery = *ckptEvery
		if *resume {
			steps, restored, err := cluster.RestoreFromFile(ckptPath, coreSrv)
			if err != nil {
				fatal(err)
			}
			if restored {
				fmt.Printf("stsl-server: resumed from %s at step %d\n", ckptPath, steps)
			} else {
				fmt.Printf("stsl-server: no checkpoint at %s — fresh start\n", ckptPath)
			}
		}
	}
	srv, err := cluster.NewServer(coreSrv, clusterCfg)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Start(ctx); err != nil {
		fatal(err)
	}

	lis, err := transport.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	defer lis.Close()
	if reg != nil {
		lis.Instrument(transport.NewConnInstruments(reg))
		admin, err := obs.StartAdmin(*adminAddr, obs.AdminConfig{
			Registry: reg,
			Tracer:   tracer,
			Healthz:  srv.HealthzFunc(),
			Statusz: func() any {
				return struct {
					cluster.Snapshot
					Queue string `json:"queue"`
				}{srv.Snapshot(), coreSrv.QueueMetrics.String()}
			},
		})
		if err != nil {
			fatal(err)
		}
		defer admin.Close()
		fmt.Printf("stsl-server: admin listener on http://%s (/healthz /metrics /statusz /trace /debug/pprof)\n", admin.Addr())
	}
	fmt.Printf("stsl-server: listening on %s for %d end-system(s), cut=%d policy=%s cap=%d overflow=%s coalesce=%d workers=%d dtype=%s\n",
		lis.Addr(), *clients, *cut, *policy, *queueCap, *overflow, *coalesce, *workers, dtype)
	go srv.ServeListener(lis)

	// The ticker stops when training ends, not at process exit, so late
	// snapshots cannot interleave with the final report.
	tickCtx, tickStop := context.WithCancel(ctx)
	if *statusEvery > 0 {
		go func() {
			t := time.NewTicker(*statusEvery)
			defer t.Stop()
			for {
				select {
				case <-tickCtx.Done():
					return
				case <-t.C:
					fmt.Printf("stsl-server: %s\n", srv.Snapshot())
				}
			}
		}()
	}

	err = srv.AwaitClients(ctx, *clients)
	tickStop()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if sderr := srv.Shutdown(shutCtx); sderr != nil {
		fmt.Fprintln(os.Stderr, "stsl-server:", sderr)
	}
	exitCode := 0
	if err != nil {
		if ctx.Err() != nil {
			fmt.Println("stsl-server: interrupted — shutting down gracefully")
		} else {
			// Still print the summary and save weights below — partial
			// training is worth keeping — but fail the process so
			// scripts gating on exit status see the broken run.
			fmt.Fprintln(os.Stderr, "stsl-server: session errors:", err)
			exitCode = 1
		}
	}

	snap := srv.Snapshot()
	fmt.Printf("stsl-server: training complete — %s\n", snap)
	fmt.Printf("stsl-server: queue %s\n", coreSrv.QueueMetrics)

	if *weights != "" {
		f, err := os.Create(*weights)
		if err != nil {
			fatal(err)
		}
		if err := coreSrv.Stack.SaveWeights(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("stsl-server: weights written to %s\n", *weights)
	}
	os.Exit(exitCode)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stsl-server:", err)
	os.Exit(1)
}
