// Command stsl-server runs the centralized server of the split-learning
// protocol over real TCP. It owns the layers above the cut, the output
// layer, and the parameter-scheduling queue; it accepts the configured
// number of end-systems, trains until every client announces completion,
// then writes the learned server weights.
//
// Usage (server plus two end-systems on one machine):
//
//	stsl-server   -addr :9000 -clients 2 -cut 1 &
//	stsl-endsystem -addr 127.0.0.1:9000 -id 0 -cut 1 -steps 100 &
//	stsl-endsystem -addr 127.0.0.1:9000 -id 1 -cut 1 -steps 100
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/expt"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/queue"
	"github.com/stsl/stsl/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", ":9000", "listen address")
		clients = flag.Int("clients", 1, "number of end-systems to accept")
		cut     = flag.Int("cut", 1, "split point (must match the end-systems)")
		scale   = flag.String("scale", "small", "model scale: tiny|small|paper")
		seed    = flag.Uint64("seed", 1, "weight seed (must match the end-systems)")
		lr      = flag.Float64("lr", 0.05, "learning rate")
		policy  = flag.String("policy", "fifo", "queue policy: fifo|staleness|fair-rr")
		weights = flag.String("weights", "", "path to write learned server weights (optional)")
	)
	flag.Parse()

	s, err := expt.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	template, err := nn.BuildPaperCNN(s.Model, mathx.NewRNG(*seed))
	if err != nil {
		fatal(err)
	}
	_, upper, err := core.Split(template, *cut)
	if err != nil {
		fatal(err)
	}
	optim, err := opt.NewSGD(opt.Config{LR: *lr})
	if err != nil {
		fatal(err)
	}
	pol, err := queue.NewPolicy(*policy)
	if err != nil {
		fatal(err)
	}
	srv, err := core.NewServer(upper, optim, pol)
	if err != nil {
		fatal(err)
	}

	lis, err := transport.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	defer lis.Close()
	fmt.Printf("stsl-server: listening on %s for %d end-system(s), cut=%d policy=%s\n",
		lis.Addr(), *clients, *cut, *policy)

	conns := make([]transport.Conn, *clients)
	for i := range conns {
		c, err := lis.Accept()
		if err != nil {
			fatal(err)
		}
		conns[i] = c
		fmt.Printf("stsl-server: end-system %d/%d connected\n", i+1, *clients)
	}
	if err := core.Serve(srv, conns, nil); err != nil {
		fatal(err)
	}
	fmt.Printf("stsl-server: training complete — %d batches, final loss %.4f\n",
		srv.Steps(), srv.Losses.Last())
	fmt.Printf("stsl-server: queue %s\n", srv.QueueMetrics)

	if *weights != "" {
		f, err := os.Create(*weights)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := srv.Stack.SaveWeights(f); err != nil {
			fatal(err)
		}
		fmt.Printf("stsl-server: weights written to %s\n", *weights)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stsl-server:", err)
	os.Exit(1)
}
