// Command stsl-bench regenerates every table and figure of the paper's
// evaluation at a chosen scale, printing paper-vs-measured tables. With
// --live it instead measures the real-concurrency cluster runtime:
// training throughput (steps/sec) versus concurrent end-system count
// over the wire protocol, so the perf trajectory tracks the deployment
// path and not just the virtual-time simulator.
//
// Usage:
//
//	stsl-bench -exp all -scale small
//	stsl-bench -exp table1 -scale paper -seed 7
//	stsl-bench -exp fig4 -out /tmp/fig4
//	stsl-bench -live -scale tiny -steps 16
//	stsl-bench -live -clients 8 -policy fair-rr -coalesce 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/stsl/stsl/internal/cluster"
	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/expt"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|fig1|fig2|fig3|fig4|queue|sweep|quantize|robustness|all")
		scale    = flag.String("scale", "small", "scale: tiny|small|paper")
		seed     = flag.Uint64("seed", 42, "experiment seed")
		outDir   = flag.String("out", "", "directory for Fig-4 PNG output (optional)")
		horizon  = flag.Duration("horizon", 10*time.Second, "virtual-time horizon for the queue ablation")
		csvDir   = flag.String("csv", "", "directory to also write each table as <exp>.csv (optional)")
		live     = flag.Bool("live", false, "benchmark the live cluster runtime instead of the paper experiments")
		steps    = flag.Int("steps", 16, "per-client batches for the --live benchmark")
		clients  = flag.Int("clients", 0, "end-system count for the --live benchmark (0 = sweep 1,4,16)")
		policy   = flag.String("policy", "fifo", "queue policy for the --live benchmark: fifo|staleness|fair-rr|sync-rounds")
		coalesce = flag.Int("coalesce", 0, "micro-batch coalescing cap for the --live benchmark (0 = sweep 1,2,4,8)")
	)
	flag.Parse()

	s, err := expt.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}

	if *live {
		if err := runLive(s, *seed, *steps, *clients, *policy, *coalesce); err != nil {
			fatal(err)
		}
		return
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	writeCSV := func(name, csv string) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*csvDir, name+".csv"), []byte(csv), 0o644)
	}

	run("table1", func() error {
		res, err := expt.RunTableI(s, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		return writeCSV("table1", res.Table.CSV())
	})
	run("fig1", func() error {
		res, err := expt.RunFig1(s, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		if err := writeCSV("fig1", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("fig2", func() error {
		res, err := expt.RunFig2(s, *seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		for i, m := range res.ClientCounts {
			fmt.Printf("  M=%d per-client steps: %v\n", m, res.StepsPerClient[i])
		}
		fmt.Println()
		if err := writeCSV("fig2", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("fig3", func() error {
		res, err := expt.RunFig3(nn.PaperCNNConfig{}, *seed)
		if err != nil {
			return err
		}
		fmt.Println("Fig 3 — the paper's CNN (exact architecture)")
		fmt.Println(res.Summary)
		for cut := 0; cut < len(res.CutShapes); cut++ {
			fmt.Printf("  cut=%d transmits activations of shape %v\n", cut, res.CutShapes[cut])
		}
		fmt.Println()
		return nil
	})
	run("fig4", func() error {
		res, err := expt.RunFig4(s, *seed, 8, *outDir)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		fmt.Printf("  edge-leak monotone (orig > conv > pooled) for %.0f%% of images\n\n",
			res.MonotoneFraction*100)
		if *outDir != "" {
			fmt.Printf("  PNGs written to %s\n\n", *outDir)
		}
		if err := writeCSV("fig4", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("queue", func() error {
		res, err := expt.RunQueueAblation(s, *seed, nil, *horizon)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		if err := writeCSV("queue", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("sweep", func() error {
		res, err := expt.RunCutSweep(s, *seed, nil, nil)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		if err := writeCSV("sweep", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("quantize", func() error {
		res, err := expt.RunQuantizeAblation(s, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		if err := writeCSV("quantize", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("robustness", func() error {
		res, err := expt.RunRobustness(s, *seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		if err := writeCSV("robustness", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
}

// runLive measures live-cluster training throughput — steps/sec versus
// concurrent end-system count and micro-batch coalescing cap — over
// net.Pipe with full wire encode/decode, under any scheduling policy.
func runLive(s expt.Scale, seed uint64, steps, clients int, policy string, coalesce int) error {
	clientCounts := []int{1, 4, 16}
	if clients > 0 {
		clientCounts = []int{clients}
	}
	coalesceCaps := []int{1, 2, 4, 8}
	if coalesce > 0 {
		coalesceCaps = []int{coalesce}
	}
	fmt.Printf("live cluster throughput — scale=%s, %d steps/client, policy=%s, wire framing over net.Pipe\n\n",
		s.Name, steps, policy)
	fmt.Printf("%8s %10s %12s %12s %12s %10s\n", "clients", "coalesce", "steps/s", "wall", "maxdepth", "loss")
	for _, m := range clientCounts {
		gen := data.SynthCIFAR{Height: s.Model.Height, Width: s.Model.Width, Classes: s.Model.Classes}
		ds, err := gen.Generate(s.BatchSize*2*m, seed)
		if err != nil {
			return err
		}
		shards, err := data.PartitionIID(ds, m, mathx.NewRNG(seed+1))
		if err != nil {
			return err
		}
		for _, b := range coalesceCaps {
			dep, err := core.NewDeployment(core.Config{
				Model: s.Model, Cut: 1, Clients: m, Seed: seed,
				BatchSize: s.BatchSize, LR: s.LR,
				QueuePolicy: policy, BatchCoalesce: b,
			}, shards)
			if err != nil {
				return err
			}
			res, err := cluster.Run(context.Background(), dep, cluster.RunnerConfig{
				StepsPerClient: steps, Transport: cluster.TransportPipe,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%8d %10d %12.1f %12v %12d %10.4f\n",
				m, b, float64(res.ServerSteps)/res.WallDuration.Seconds(),
				res.WallDuration.Round(time.Millisecond), res.Snapshot.MaxQueueDepth, res.FinalLoss)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stsl-bench:", err)
	os.Exit(1)
}
