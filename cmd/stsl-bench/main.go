// Command stsl-bench regenerates every table and figure of the paper's
// evaluation at a chosen scale, printing paper-vs-measured tables. With
// --live it instead measures the real-concurrency cluster runtime:
// training throughput (steps/sec) versus concurrent end-system count
// over the wire protocol, so the perf trajectory tracks the deployment
// path and not just the virtual-time simulator.
//
// Live mode also powers the per-PR BENCH snapshots: -json writes the
// measured grid as a schema-stable (stsl-bench/1) report, -compare
// gates a fresh run against a committed baseline and exits non-zero on
// any cell whose throughput regressed past -tolerance, and -validate
// checks an existing report parses. All live grid cells share one
// telemetry registry (reset between cells) — a full grid leaks no
// goroutines or listeners.
//
// Usage:
//
//	stsl-bench -exp all -scale small
//	stsl-bench -exp table1 -scale paper -seed 7
//	stsl-bench -exp fig4 -out /tmp/fig4
//	stsl-bench -live -scale tiny -steps 16
//	stsl-bench -live -clients 8 -policy fair-rr -coalesce 4
//	stsl-bench -live -clients 8 -workers 1,2,4 -analysis analysis.md
//	stsl-bench -live -clients 1,4,8 -policy fifo,staleness -json BENCH.json -overhead
//	stsl-bench -live -compare BENCH.json -tolerance 0.1
//	stsl-bench -analysis analysis.md -json BENCH.json
//	stsl-bench -compare OLD.json -against NEW.json
//	stsl-bench -validate BENCH.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/stsl/stsl/internal/expt"
	"github.com/stsl/stsl/internal/nn"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|fig1|fig2|fig3|fig4|queue|sweep|quantize|robustness|all")
		scale     = flag.String("scale", "small", "scale: tiny|small|paper")
		seed      = flag.Uint64("seed", 42, "experiment seed")
		outDir    = flag.String("out", "", "directory for Fig-4 PNG output (optional)")
		horizon   = flag.Duration("horizon", 10*time.Second, "virtual-time horizon for the queue ablation")
		csvDir    = flag.String("csv", "", "directory to also write each table as <exp>.csv (optional)")
		live      = flag.Bool("live", false, "benchmark the live cluster runtime instead of the paper experiments")
		steps     = flag.Int("steps", 16, "per-client batches for the --live benchmark")
		clients   = flag.String("clients", "", "end-system counts for the --live benchmark, comma-separated (default 1,4,16)")
		policy    = flag.String("policy", "fifo", "queue policies for the --live benchmark, comma-separated: fifo|staleness|fair-rr|sync-rounds")
		coalesce  = flag.String("coalesce", "", "micro-batch coalescing caps for the --live benchmark, comma-separated (default 1,2,4,8)")
		workers   = flag.String("workers", "", "data-parallel replica counts for the --live benchmark, comma-separated (default 1)")
		dtypes    = flag.String("dtype", "", "compute/wire precisions for the --live benchmark, comma-separated: float64|float32 (default float64)")
		jsonOut   = flag.String("json", "", "write the --live grid as a schema-stable JSON report to this path")
		analysis  = flag.String("analysis", "", "write a human-readable markdown analysis of the bench report to this path (with --live: the fresh grid; otherwise reads the report at -json)")
		overhead  = flag.Bool("overhead", false, "also measure the telemetry overhead (bare vs instrumented) at the largest client count")
		compare   = flag.String("compare", "", "run the --live grid matching this baseline report and fail on throughput regressions")
		against   = flag.String("against", "", "with -compare: diff the baseline against this already-measured report instead of re-running the grid")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional throughput drop per grid cell for -compare")
		repeats   = flag.Int("repeats", 0, "measure each --live cell this many times, keep the fastest (0 = once, or 5 under -compare)")
		validate  = flag.String("validate", "", "parse and validate an existing bench JSON report, then exit")
	)
	flag.Parse()

	if *validate != "" {
		r, err := readBench(*validate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("stsl-bench: %s ok — schema %s, %d rows (scale=%s steps=%d transport=%s)\n",
			*validate, r.Schema, len(r.Rows), r.Scale, r.StepsPerClient, r.Transport)
		return
	}

	if *analysis != "" && !*live {
		// Offline analysis of an existing report: -json names the input.
		if *jsonOut == "" {
			fatal(fmt.Errorf("-analysis without --live needs -json naming the report to read"))
		}
		r, err := readBench(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*analysis, []byte(expt.AnalyzeBench(r)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("stsl-bench: analysis of %s written to %s\n", *jsonOut, *analysis)
		return
	}

	if *compare != "" && *against != "" {
		// Pure file-vs-file gate: no measurement, fully deterministic —
		// what CI uses to prove the >10% rule trips.
		if err := compareFiles(*compare, *against, *tolerance); err != nil {
			fatal(err)
		}
		return
	}

	s, err := expt.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}

	if *live {
		if err := runLive(s, *seed, *steps, *clients, *policy, *coalesce, *workers, *dtypes,
			*jsonOut, *analysis, *overhead, *compare, *tolerance, *repeats); err != nil {
			fatal(err)
		}
		return
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	writeCSV := func(name, csv string) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*csvDir, name+".csv"), []byte(csv), 0o644)
	}

	run("table1", func() error {
		res, err := expt.RunTableI(s, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		return writeCSV("table1", res.Table.CSV())
	})
	run("fig1", func() error {
		res, err := expt.RunFig1(s, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		if err := writeCSV("fig1", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("fig2", func() error {
		res, err := expt.RunFig2(s, *seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		for i, m := range res.ClientCounts {
			fmt.Printf("  M=%d per-client steps: %v\n", m, res.StepsPerClient[i])
		}
		fmt.Println()
		if err := writeCSV("fig2", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("fig3", func() error {
		res, err := expt.RunFig3(nn.PaperCNNConfig{}, *seed)
		if err != nil {
			return err
		}
		fmt.Println("Fig 3 — the paper's CNN (exact architecture)")
		fmt.Println(res.Summary)
		for cut := 0; cut < len(res.CutShapes); cut++ {
			fmt.Printf("  cut=%d transmits activations of shape %v\n", cut, res.CutShapes[cut])
		}
		fmt.Println()
		return nil
	})
	run("fig4", func() error {
		res, err := expt.RunFig4(s, *seed, 8, *outDir)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		fmt.Printf("  edge-leak monotone (orig > conv > pooled) for %.0f%% of images\n\n",
			res.MonotoneFraction*100)
		if *outDir != "" {
			fmt.Printf("  PNGs written to %s\n\n", *outDir)
		}
		if err := writeCSV("fig4", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("queue", func() error {
		res, err := expt.RunQueueAblation(s, *seed, nil, *horizon)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		if err := writeCSV("queue", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("sweep", func() error {
		res, err := expt.RunCutSweep(s, *seed, nil, nil)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		if err := writeCSV("sweep", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("quantize", func() error {
		res, err := expt.RunQuantizeAblation(s, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		if err := writeCSV("quantize", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
	run("robustness", func() error {
		res, err := expt.RunRobustness(s, *seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(res.Table.String())
		if err := writeCSV("robustness", res.Table.CSV()); err != nil {
			return err
		}
		return nil
	})
}

// runLive measures live-cluster training throughput — steps/sec versus
// concurrent end-system count, queue policy, and micro-batch coalescing
// cap — over net.Pipe with full wire encode/decode, via the shared
// expt.RunLiveBench harness (one telemetry registry across all cells).
func runLive(s expt.Scale, seed uint64, steps int, clients, policy, coalesce, workers, dtypes, jsonOut, analysis string, overhead bool, compare string, tolerance float64, repeats int) error {
	clientCounts, err := parseIntList(clients, []int{1, 4, 16})
	if err != nil {
		return fmt.Errorf("-clients: %w", err)
	}
	coalesceCaps, err := parseIntList(coalesce, []int{1, 2, 4, 8})
	if err != nil {
		return fmt.Errorf("-coalesce: %w", err)
	}
	workerCounts, err := parseIntList(workers, []int{1})
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	policies := strings.Split(policy, ",")
	dtypeList := []string{"float64"}
	if dtypes != "" {
		dtypeList = strings.Split(dtypes, ",")
	}

	var baseline *expt.BenchReport
	if compare != "" {
		baseline, err = readBench(compare)
		if err != nil {
			return err
		}
		// The gate re-measures exactly the baseline's grid so every
		// cell is comparable, with best-of-N per cell so scheduler
		// noise on short cells cannot masquerade as a regression.
		if s, err = expt.ScaleByName(baseline.Scale); err != nil {
			return err
		}
		steps = baseline.StepsPerClient
		if repeats == 0 {
			repeats = 5
		}
	}

	fmt.Printf("live cluster throughput — scale=%s, %d steps/client, wire framing over net.Pipe\n\n",
		s.Name, steps)
	fmt.Printf("%8s %12s %10s %9s %9s %10s %12s %12s %12s %12s %10s\n",
		"clients", "policy", "coalesce", "workers", "dtype", "telem", "steps/s", "wall", "p95 wait", "maxdepth", "loss")
	cfg := expt.LiveBenchConfig{
		Scale: s, Seed: seed, Steps: steps,
		Clients: clientCounts, Policies: policies, Coalesce: coalesceCaps,
		Workers:         workerCounts,
		DTypes:          dtypeList,
		MeasureOverhead: overhead,
		Repeats:         repeats,
		Progress: func(r expt.BenchRow) {
			w := r.Workers
			if w < 1 {
				w = 1
			}
			dt := r.DType
			if dt == "" {
				dt = "float64"
			}
			fmt.Printf("%8d %12s %10d %9d %9s %10v %12.1f %12.3fs %11.1fms %12d %10.4f\n",
				r.Clients, r.Policy, r.Coalesce, w, dt, r.Telemetry, r.StepsPerSec,
				r.WallSeconds, r.WaitP95*1e3, r.MaxQueueDepth, r.FinalLoss)
		},
	}
	if baseline != nil {
		cfg.Clients, cfg.Policies, cfg.Coalesce, cfg.Workers, cfg.DTypes = benchGrid(baseline)
		cfg.MeasureOverhead = baseline.Overhead != nil
	}
	report, err := expt.RunLiveBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	if report.Overhead != nil {
		fmt.Printf("\ntelemetry overhead at %d clients: %.1f → %.1f steps/s (%.1f%%)\n",
			report.Overhead.Clients, report.Overhead.BareStepsPerSec,
			report.Overhead.InstrumentedStepsPerSec, report.Overhead.Fraction*100)
	}

	if jsonOut != "" {
		raw, err := expt.MarshalBenchJSON(report)
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("\nreport written to %s\n", jsonOut)
	}
	if analysis != "" {
		if err := os.WriteFile(analysis, []byte(expt.AnalyzeBench(report)), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nanalysis written to %s\n", analysis)
	}
	if baseline != nil {
		regs, err := expt.CompareBench(baseline, report, tolerance)
		if err != nil {
			return err
		}
		if len(regs) > 0 {
			fmt.Printf("\nTHROUGHPUT REGRESSIONS vs %s (tolerance %.0f%%):\n", compare, tolerance*100)
			for _, r := range regs {
				fmt.Printf("  %s\n", r)
			}
			return fmt.Errorf("%d grid cell(s) regressed past %.0f%%", len(regs), tolerance*100)
		}
		fmt.Printf("\nno regressions vs %s (tolerance %.0f%%)\n", compare, tolerance*100)
	}
	return nil
}

// benchGrid recovers the unique grid axes of a baseline report, in
// first-seen order, so -compare re-measures exactly the same cells.
// Rows predating the workers axis carry 0, which was (and keys as) 1;
// rows predating the dtype axis carry "", which keys as "float64".
func benchGrid(r *expt.BenchReport) (clients []int, policies []string, coalesce, workers []int, dtypes []string) {
	seenC, seenP, seenB, seenW := map[int]bool{}, map[string]bool{}, map[int]bool{}, map[int]bool{}
	seenD := map[string]bool{}
	for _, row := range r.Rows {
		if !seenC[row.Clients] {
			seenC[row.Clients] = true
			clients = append(clients, row.Clients)
		}
		if !seenP[row.Policy] {
			seenP[row.Policy] = true
			policies = append(policies, row.Policy)
		}
		if !seenB[row.Coalesce] {
			seenB[row.Coalesce] = true
			coalesce = append(coalesce, row.Coalesce)
		}
		w := row.Workers
		if w < 1 {
			w = 1
		}
		if !seenW[w] {
			seenW[w] = true
			workers = append(workers, w)
		}
		dt := row.DType
		if dt == "" {
			dt = "float64"
		}
		if !seenD[dt] {
			seenD[dt] = true
			dtypes = append(dtypes, dt)
		}
	}
	return clients, policies, coalesce, workers, dtypes
}

// compareFiles gates an already-measured report against a baseline,
// with no fresh measurement: exit non-zero when any shared grid cell's
// throughput dropped past the tolerance.
func compareFiles(oldPath, newPath string, tolerance float64) error {
	old, err := readBench(oldPath)
	if err != nil {
		return err
	}
	cur, err := readBench(newPath)
	if err != nil {
		return err
	}
	regs, err := expt.CompareBench(old, cur, tolerance)
	if err != nil {
		return err
	}
	if len(regs) > 0 {
		fmt.Printf("THROUGHPUT REGRESSIONS %s → %s (tolerance %.0f%%):\n", oldPath, newPath, tolerance*100)
		for _, r := range regs {
			fmt.Printf("  %s\n", r)
		}
		return fmt.Errorf("%d grid cell(s) regressed past %.0f%%", len(regs), tolerance*100)
	}
	fmt.Printf("stsl-bench: no regressions %s → %s (tolerance %.0f%%)\n", oldPath, newPath, tolerance*100)
	return nil
}

// readBench loads and validates a bench JSON report from disk.
func readBench(path string) (*expt.BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return expt.ValidateBenchJSON(raw)
}

// parseIntList parses "1,4,8" into ints, falling back to def when s is
// empty.
func parseIntList(s string, def []int) ([]int, error) {
	if s == "" {
		return def, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		if n <= 0 {
			return nil, fmt.Errorf("value %d must be positive", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stsl-bench:", err)
	os.Exit(1)
}
