// Package compress implements lossy activation compression for the
// split-learning uplink: linear quantization of float64 tensors to 8 or
// 16 bits per element with a per-tensor affine (scale, offset). The
// paper transmits raw first-layer activations; quantization is the
// standard deployment optimisation for that link, and the benchmark
// suite measures both the byte savings and the accuracy cost.
package compress

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/stsl/stsl/internal/tensor"
)

// Bits selects the quantization width.
type Bits int

// Supported widths.
const (
	// Bits8 packs each element into one byte (8× smaller than float64).
	Bits8 Bits = 8
	// Bits16 packs each element into two bytes (4× smaller).
	Bits16 Bits = 16
)

// Quantized is a compressed tensor: packed integer codes plus the affine
// transform to reconstruct approximate float64 values.
type Quantized struct {
	Bits   Bits
	Shape  []int
	Scale  float64 // value = Scale*code + Offset
	Offset float64
	Codes  []byte
}

// Quantize compresses t. The affine parameters map [min, max] of t onto
// the full code range; a constant tensor quantizes exactly.
func Quantize(t *tensor.Tensor, bits Bits) (*Quantized, error) {
	if bits != Bits8 && bits != Bits16 {
		return nil, fmt.Errorf("compress: unsupported width %d", bits)
	}
	data := t.Data()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("compress: non-finite value %v", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if len(data) == 0 {
		lo, hi = 0, 0
	}
	maxCode := float64(uint64(1)<<uint(bits) - 1)
	scale := 0.0
	if hi > lo {
		scale = (hi - lo) / maxCode
	}
	q := &Quantized{
		Bits:   bits,
		Shape:  t.Shape(),
		Scale:  scale,
		Offset: lo,
		Codes:  make([]byte, len(data)*int(bits)/8),
	}
	if scale == 0 {
		return q, nil // all elements equal Offset
	}
	inv := 1 / scale
	switch bits {
	case Bits8:
		for i, v := range data {
			q.Codes[i] = byte(math.Round((v - lo) * inv))
		}
	case Bits16:
		for i, v := range data {
			binary.LittleEndian.PutUint16(q.Codes[2*i:], uint16(math.Round((v-lo)*inv)))
		}
	}
	return q, nil
}

// Dequantize reconstructs the approximate tensor.
func (q *Quantized) Dequantize() *tensor.Tensor {
	out := tensor.New(q.Shape...)
	data := out.Data()
	if q.Scale == 0 {
		for i := range data {
			data[i] = q.Offset
		}
		return out
	}
	switch q.Bits {
	case Bits8:
		for i := range data {
			data[i] = q.Scale*float64(q.Codes[i]) + q.Offset
		}
	case Bits16:
		for i := range data {
			data[i] = q.Scale*float64(binary.LittleEndian.Uint16(q.Codes[2*i:])) + q.Offset
		}
	}
	return out
}

// WireBytes returns the serialised size: codes plus the small header.
func (q *Quantized) WireBytes() int {
	return len(q.Codes) + 4*len(q.Shape) + 8 /*scale*/ + 8 /*offset*/ + 2 /*bits+rank*/
}

// MaxError returns the worst-case reconstruction error of the affine
// quantizer for the tensor it was built from: half a code step.
func (q *Quantized) MaxError() float64 { return q.Scale / 2 }

// RoundTrip is the convenience used by deployments that simulate
// quantization in-process (compress, then immediately reconstruct).
func RoundTrip(t *tensor.Tensor, bits Bits) (*tensor.Tensor, int, error) {
	q, err := Quantize(t, bits)
	if err != nil {
		return nil, 0, err
	}
	return q.Dequantize(), q.WireBytes(), nil
}
