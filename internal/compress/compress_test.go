package compress

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

func TestQuantizeRoundTripError(t *testing.T) {
	r := mathx.NewRNG(1)
	x := tensor.Randn(r, 2, 4, 8, 8)
	for _, bits := range []Bits{Bits8, Bits16} {
		q, err := Quantize(x, bits)
		if err != nil {
			t.Fatal(err)
		}
		back := q.Dequantize()
		if !back.SameShape(x) {
			t.Fatalf("bits=%d: shape changed", bits)
		}
		maxErr := q.MaxError()
		for i, v := range x.Data() {
			if d := math.Abs(v - back.Data()[i]); d > maxErr+1e-12 {
				t.Fatalf("bits=%d: error %v exceeds bound %v at %d", bits, d, maxErr, i)
			}
		}
	}
}

func TestQuantize16BeatsQuantize8(t *testing.T) {
	r := mathx.NewRNG(2)
	x := tensor.Randn(r, 1, 256)
	q8, err := Quantize(x, Bits8)
	if err != nil {
		t.Fatal(err)
	}
	q16, err := Quantize(x, Bits16)
	if err != nil {
		t.Fatal(err)
	}
	err8 := q8.Dequantize().Sub(x).Norm2()
	err16 := q16.Dequantize().Sub(x).Norm2()
	if err16 >= err8 {
		t.Fatalf("16-bit error %v not below 8-bit %v", err16, err8)
	}
	if q16.WireBytes() <= q8.WireBytes() {
		t.Fatal("16-bit not larger on the wire than 8-bit")
	}
	// Both much smaller than float64 (8 bytes/elem).
	if q8.WireBytes() >= 8*x.Size() {
		t.Fatalf("8-bit wire size %d not smaller than raw %d", q8.WireBytes(), 8*x.Size())
	}
}

func TestQuantizeConstantTensorExact(t *testing.T) {
	x := tensor.Full(3.25, 4, 4)
	q, err := Quantize(x, Bits8)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Dequantize().Equal(x, 0) {
		t.Fatal("constant tensor not exact")
	}
	if q.MaxError() != 0 {
		t.Fatalf("constant MaxError = %v", q.MaxError())
	}
}

func TestQuantizeRejectsNonFinite(t *testing.T) {
	x := tensor.New(2)
	x.Set(math.NaN(), 0)
	if _, err := Quantize(x, Bits8); err == nil {
		t.Fatal("NaN accepted")
	}
	x.Set(math.Inf(1), 0)
	if _, err := Quantize(x, Bits8); err == nil {
		t.Fatal("Inf accepted")
	}
	if _, err := Quantize(tensor.New(2), Bits(12)); err == nil {
		t.Fatal("12-bit accepted")
	}
}

func TestQuantizeEmptyTensor(t *testing.T) {
	x := tensor.New(0)
	q, err := Quantize(x, Bits8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Dequantize().Size() != 0 {
		t.Fatal("empty round trip grew")
	}
}

func TestRoundTripQuick(t *testing.T) {
	// Property: round-trip error is bounded by half a code step for any
	// finite tensor, both widths.
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		x := tensor.Randn(r, 1+r.Float64()*10, 1+r.Intn(8), 1+r.Intn(8))
		for _, bits := range []Bits{Bits8, Bits16} {
			back, wire, err := RoundTrip(x, bits)
			if err != nil || wire <= 0 {
				return false
			}
			q, _ := Quantize(x, bits)
			bound := q.MaxError() + 1e-12
			for i, v := range x.Data() {
				if math.Abs(v-back.Data()[i]) > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
