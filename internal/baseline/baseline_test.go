package baseline

import (
	"testing"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
)

func cfgModel() nn.PaperCNNConfig {
	return nn.PaperCNNConfig{
		InChannels: 3, Height: 8, Width: 8,
		Filters: []int{4, 8},
		Hidden:  16,
		Classes: 4,
	}
}

func genData(t *testing.T, n int, seed uint64) *data.Dataset {
	t.Helper()
	ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4, Noise: 0.05}).Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTrainCentralizedLearns(t *testing.T) {
	train := genData(t, 256, 1)
	test := genData(t, 128, 2)
	res, err := TrainCentralized(TrainConfig{
		Model: cfgModel(), Seed: 3, Epochs: 6, BatchSize: 16, LR: 0.05,
	}, train)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := Evaluate(res.Model, test)
	if err != nil {
		t.Fatal(err)
	}
	// 4 classes → chance is 0.25; the model must do clearly better.
	if acc := cm.Accuracy(); acc < 0.45 {
		t.Fatalf("centralized accuracy %v barely above chance", acc)
	}
	if res.Losses.Last() <= 0 {
		t.Fatal("no loss curve recorded")
	}
}

func TestTrainCentralizedDeterminism(t *testing.T) {
	train := genData(t, 64, 5)
	run := func() *Result {
		res, err := TrainCentralized(TrainConfig{Model: cfgModel(), Seed: 7, Epochs: 1, BatchSize: 16}, train)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	pa, pb := a.Model.Net.Params(), b.Model.Net.Params()
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value, 0) {
			t.Fatalf("parameter %s differs across identical runs", pa[i].Name)
		}
	}
}

func TestTrainCentralizedWithAugmentAndOptimizers(t *testing.T) {
	train := genData(t, 64, 9)
	for _, optName := range []string{"sgd", "momentum", "adam"} {
		if _, err := TrainCentralized(TrainConfig{
			Model: cfgModel(), Seed: 1, Epochs: 1, BatchSize: 16,
			Optimizer: optName, Augment: true, LR: 0.01,
		}, train); err != nil {
			t.Fatalf("optimizer %s: %v", optName, err)
		}
	}
	if _, err := TrainCentralized(TrainConfig{Model: cfgModel(), Optimizer: "nope"}, train); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
}

func TestFedAvgLearnsAndAverages(t *testing.T) {
	train := genData(t, 200, 11)
	shards, err := data.PartitionIID(train, 4, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainFedAvg(FedAvgConfig{
		Model: cfgModel(), Seed: 13, Rounds: 4, LocalEpochs: 1, BatchSize: 16, LR: 0.05,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	test := genData(t, 100, 12)
	cm, err := Evaluate(res.Model, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := cm.Accuracy(); acc < 0.35 {
		t.Fatalf("FedAvg accuracy %v barely above chance", acc)
	}
}

func TestFedAvgRejectsEmptyShards(t *testing.T) {
	if _, err := TrainFedAvg(FedAvgConfig{Model: cfgModel()}, nil); err == nil {
		t.Fatal("no shards accepted")
	}
}

func TestVanillaSplitRuns(t *testing.T) {
	train := genData(t, 64, 15)
	dep, res, err := TrainVanillaSplit(VanillaSplitConfig{
		Train: core.Config{Model: cfgModel(), Cut: 1, Seed: 17, BatchSize: 8, LR: 0.05},
		Steps: 6,
	}, train)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerSteps != 6 {
		t.Fatalf("server steps = %d", res.ServerSteps)
	}
	test := genData(t, 40, 16)
	mean, _, err := dep.EvaluateMean(test)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 0 || mean > 1 {
		t.Fatalf("accuracy %v out of range", mean)
	}
}
