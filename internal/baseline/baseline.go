// Package baseline implements the comparison systems for the evaluation:
// fully centralized training (Table I's "Nothing — all layers in the
// server" row), classic single-client split learning (the paper's Fig 1),
// and federated averaging (FedAvg), the alternative privacy-preserving
// approach the paper positions itself against.
package baseline

import (
	"fmt"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/opt"
)

// TrainConfig parameterises the centralized trainer.
type TrainConfig struct {
	// Model parameterises the Fig-3 CNN.
	Model nn.PaperCNNConfig
	// Seed drives weight initialisation and batch shuffling.
	Seed uint64
	// BatchSize is the mini-batch size (default 32).
	BatchSize int
	// Epochs is the number of passes over the training set (default 1).
	Epochs int
	// Steps, when positive, bounds training to that many batch updates
	// regardless of Epochs — used for budget-parity comparisons against
	// split deployments (which count per-client steps).
	Steps int
	// LR is the SGD learning rate (default 0.05).
	LR float64
	// Optimizer selects "sgd", "momentum" or "adam" (default "sgd").
	Optimizer string
	// Augment enables flip/crop augmentation.
	Augment bool
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 1
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Optimizer == "" {
		c.Optimizer = "sgd"
	}
	return c
}

func newOptimizer(name string, lr float64) (opt.Optimizer, error) {
	switch name {
	case "sgd":
		return opt.NewSGD(opt.Config{LR: lr})
	case "momentum":
		return opt.NewMomentum(opt.Config{LR: lr}, 0.9)
	case "adam":
		return opt.NewAdam(opt.Config{LR: lr})
	default:
		return nil, fmt.Errorf("baseline: unknown optimizer %q", name)
	}
}

// Result reports a trained model with its learning curve.
type Result struct {
	Model  *nn.PaperCNN
	Losses *metrics.LossCurve
}

// TrainCentralized trains the monolithic Fig-3 CNN on train — the upper
// bound the split variants are measured against.
func TrainCentralized(cfg TrainConfig, train *data.Dataset) (*Result, error) {
	cfg = cfg.withDefaults()
	model, err := nn.BuildPaperCNN(cfg.Model, mathx.NewRNG(cfg.Seed))
	if err != nil {
		return nil, err
	}
	optim, err := newOptimizer(cfg.Optimizer, cfg.LR)
	if err != nil {
		return nil, err
	}
	batcher, err := data.NewBatcher(train, cfg.BatchSize, mathx.NewRNG(cfg.Seed+13))
	if err != nil {
		return nil, err
	}
	var aug *data.Augmenter
	if cfg.Augment {
		aug, err = data.NewAugmenter(2, mathx.NewRNG(cfg.Seed+29))
		if err != nil {
			return nil, err
		}
	}
	curve, err := metrics.NewLossCurve(10)
	if err != nil {
		return nil, err
	}
	steps := 0
	epochs := cfg.Epochs
	if cfg.Steps > 0 {
		// Step-bounded mode: loop epochs until the budget is spent.
		epochs = cfg.Steps // upper bound; the step check breaks out
	}
	for epoch := 0; epoch < epochs; epoch++ {
		if cfg.Steps > 0 && steps >= cfg.Steps {
			break
		}
		for {
			batch, ok := batcher.Next()
			if !ok {
				break
			}
			x := batch.X
			if aug != nil {
				x = aug.Apply(x)
			}
			model.Net.ZeroGrad()
			logits := model.Net.Forward(x, true)
			loss, grad, err := nn.SoftmaxCrossEntropy(logits, batch.Y)
			if err != nil {
				return nil, err
			}
			model.Net.Backward(grad)
			optim.Step(model.Net.Params())
			curve.Observe(loss)
			if steps++; cfg.Steps > 0 && steps >= cfg.Steps {
				break
			}
		}
	}
	return &Result{Model: model, Losses: curve}, nil
}

// Evaluate returns the confusion matrix of a monolithic model on test.
func Evaluate(model *nn.PaperCNN, test *data.Dataset) (*metrics.ConfusionMatrix, error) {
	cm, err := metrics.NewConfusionMatrix(test.Classes)
	if err != nil {
		return nil, err
	}
	batcher, err := data.NewBatcher(test, 128, nil)
	if err != nil {
		return nil, err
	}
	for {
		batch, ok := batcher.Next()
		if !ok {
			return cm, nil
		}
		logits := model.Net.Forward(batch.X, false)
		if err := cm.Add(nn.Predict(logits), batch.Y); err != nil {
			return nil, err
		}
	}
}
