package baseline

import (
	"fmt"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/paramsync"
)

// FedAvgConfig parameterises the federated-averaging baseline.
type FedAvgConfig struct {
	// Model parameterises the Fig-3 CNN replicated at every client.
	Model nn.PaperCNNConfig
	// Seed drives the (shared) global initialisation.
	Seed uint64
	// Rounds is the number of communication rounds.
	Rounds int
	// LocalEpochs is the number of local passes per round (default 1).
	LocalEpochs int
	// BatchSize is the local mini-batch size (default 32).
	BatchSize int
	// LR is the local SGD learning rate (default 0.05).
	LR float64
}

func (c FedAvgConfig) withDefaults() FedAvgConfig {
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	return c
}

// TrainFedAvg runs federated averaging over the client shards: every
// round, each client copies the global weights, trains locally for
// LocalEpochs, and the server replaces the global model with the
// example-weighted average of the client models. The returned model is
// the final global model. This is the standard comparison point for
// split learning: FedAvg ships whole models; split learning ships
// activations.
func TrainFedAvg(cfg FedAvgConfig, shards []*data.Dataset) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(shards) == 0 {
		return nil, fmt.Errorf("baseline: FedAvg needs at least one shard")
	}
	global, err := nn.BuildPaperCNN(cfg.Model, mathx.NewRNG(cfg.Seed))
	if err != nil {
		return nil, err
	}
	// Build per-client replicas once; weights are overwritten per round.
	replicas := make([]*nn.PaperCNN, len(shards))
	batchers := make([]*data.Batcher, len(shards))
	for i := range shards {
		replicas[i], err = nn.BuildPaperCNN(cfg.Model, mathx.NewRNG(cfg.Seed))
		if err != nil {
			return nil, err
		}
		batchers[i], err = data.NewBatcher(shards[i], cfg.BatchSize, mathx.NewRNG(cfg.Seed+uint64(i)*31+7))
		if err != nil {
			return nil, err
		}
	}
	curve, err := metrics.NewLossCurve(10)
	if err != nil {
		return nil, err
	}
	// Example-count weights for the aggregation rule; paramsync.Average
	// normalises them, so raw shard sizes are fine.
	weights := make([]float64, len(shards))
	replicaParams := make([][]*nn.Param, len(replicas))
	for i, s := range shards {
		weights[i] = float64(s.Len())
		replicaParams[i] = replicas[i].Net.Params()
	}

	for round := 0; round < cfg.Rounds; round++ {
		for i, rep := range replicas {
			// Pull global weights.
			if err := paramsync.Copy(rep.Net.Params(), global.Net.Params()); err != nil {
				return nil, err
			}
			optim, err := newOptimizer("sgd", cfg.LR)
			if err != nil {
				return nil, err
			}
			for e := 0; e < cfg.LocalEpochs; e++ {
				for {
					batch, ok := batchers[i].Next()
					if !ok {
						break
					}
					rep.Net.ZeroGrad()
					logits := rep.Net.Forward(batch.X, true)
					loss, grad, err := nn.SoftmaxCrossEntropy(logits, batch.Y)
					if err != nil {
						return nil, err
					}
					rep.Net.Backward(grad)
					optim.Step(rep.Net.Params())
					curve.Observe(loss)
				}
			}
		}
		// Example-weighted average into the global model — the shared
		// aggregation kernel the cluster worker pool also syncs with.
		if err := paramsync.Average(global.Net.Params(), replicaParams, weights); err != nil {
			return nil, err
		}
	}
	return &Result{Model: global, Losses: curve}, nil
}
