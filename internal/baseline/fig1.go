package baseline

import (
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/simnet"
)

// VanillaSplitConfig parameterises the classic single-end-system split
// learning of the paper's Fig 1.
type VanillaSplitConfig struct {
	Train core.Config
	// Steps is the number of batches the end-system contributes.
	Steps int
	// Latency is the client↔server delay (default 1ms constant).
	Latency simnet.LatencyModel
}

// TrainVanillaSplit runs Fig-1 split learning: one end-system, one
// server, lock-step batches over a single link. It is the M=1 special
// case of the spatio-temporal framework and is used both as a baseline
// and to demonstrate protocol equivalence.
func TrainVanillaSplit(cfg VanillaSplitConfig, train *data.Dataset) (*core.Deployment, *core.SimResult, error) {
	cfg.Train.Clients = 1
	dep, err := core.NewDeployment(cfg.Train, []*data.Dataset{train})
	if err != nil {
		return nil, nil, err
	}
	latency := cfg.Latency
	if latency == nil {
		latency = simnet.Constant{D: time.Millisecond}
	}
	path, err := simnet.NewSymmetricPath(latency, 0, mathx.NewRNG(cfg.Train.Seed+101))
	if err != nil {
		return nil, nil, err
	}
	sim, err := core.NewSimulation(dep, core.SimConfig{
		Paths:             []*simnet.Path{path},
		MaxStepsPerClient: cfg.Steps,
	})
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.Run()
	if err != nil {
		return nil, nil, err
	}
	return dep, res, nil
}
