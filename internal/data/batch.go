package data

import (
	"fmt"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

// Batch is one training mini-batch.
type Batch struct {
	X *tensor.Tensor // (B, C, H, W)
	Y []int
}

// Batcher iterates a dataset in mini-batches. When constructed with an
// RNG, the visit order is reshuffled at the start of every epoch.
type Batcher struct {
	ds        *Dataset
	batchSize int
	rng       *mathx.RNG
	order     []int
	cursor    int
	// DropLast, when set, skips a final batch smaller than batchSize.
	DropLast bool
}

// NewBatcher constructs a batcher. rng may be nil for sequential order.
func NewBatcher(ds *Dataset, batchSize int, rng *mathx.RNG) (*Batcher, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("data: batch size must be positive, got %d", batchSize)
	}
	b := &Batcher{ds: ds, batchSize: batchSize, rng: rng}
	b.reset()
	return b, nil
}

func (b *Batcher) reset() {
	n := b.ds.Len()
	if b.order == nil {
		b.order = make([]int, n)
		for i := range b.order {
			b.order[i] = i
		}
	}
	if b.rng != nil {
		b.rng.Shuffle(n, func(i, j int) { b.order[i], b.order[j] = b.order[j], b.order[i] })
	}
	b.cursor = 0
}

// BatchesPerEpoch returns the number of batches one epoch yields.
func (b *Batcher) BatchesPerEpoch() int {
	n := b.ds.Len() / b.batchSize
	if !b.DropLast && b.ds.Len()%b.batchSize != 0 {
		n++
	}
	return n
}

// Next returns the next mini-batch and false when the epoch is exhausted
// (at which point the batcher resets, reshuffling if it has an RNG).
func (b *Batcher) Next() (Batch, bool) {
	n := b.ds.Len()
	if b.cursor >= n {
		b.reset()
		return Batch{}, false
	}
	end := b.cursor + b.batchSize
	if end > n {
		if b.DropLast {
			b.reset()
			return Batch{}, false
		}
		end = n
	}
	idx := b.order[b.cursor:end]
	b.cursor = end
	sub := b.ds.Subset(idx)
	return Batch{X: sub.X, Y: sub.Y}, true
}

// Epoch collects all batches of one full epoch (convenience for tests and
// small experiments; training loops should stream with Next).
func (b *Batcher) Epoch() []Batch {
	var out []Batch
	for {
		batch, ok := b.Next()
		if !ok {
			return out
		}
		out = append(out, batch)
	}
}
