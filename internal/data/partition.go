package data

import (
	"fmt"

	"github.com/stsl/stsl/internal/mathx"
)

// PartitionIID splits the dataset into m shards of near-equal size with a
// uniformly random assignment, modelling end-systems whose local data is
// statistically identical.
func PartitionIID(ds *Dataset, m int, r *mathx.RNG) ([]*Dataset, error) {
	if m <= 0 {
		return nil, fmt.Errorf("data: partition count must be positive, got %d", m)
	}
	if ds.Len() < m {
		return nil, fmt.Errorf("data: cannot split %d examples across %d shards", ds.Len(), m)
	}
	perm := r.Perm(ds.Len())
	shards := make([]*Dataset, m)
	for i := 0; i < m; i++ {
		lo := i * ds.Len() / m
		hi := (i + 1) * ds.Len() / m
		shards[i] = ds.Subset(perm[lo:hi])
	}
	return shards, nil
}

// PartitionDirichlet splits the dataset into m label-skewed shards: for
// each class, the examples are divided according to a Dirichlet(alpha)
// draw over shards. Small alpha (≈0.1–0.5) produces strongly non-IID
// shards — the realistic regime for geo-distributed hospitals where each
// site sees a different case mix. Every shard is guaranteed at least one
// example.
func PartitionDirichlet(ds *Dataset, m int, alpha float64, r *mathx.RNG) ([]*Dataset, error) {
	if m <= 0 {
		return nil, fmt.Errorf("data: partition count must be positive, got %d", m)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("data: Dirichlet alpha must be positive, got %v", alpha)
	}
	if ds.Len() < m {
		return nil, fmt.Errorf("data: cannot split %d examples across %d shards", ds.Len(), m)
	}
	// Bucket example indices by class, shuffled within class.
	byClass := make([][]int, ds.Classes)
	for i, y := range ds.Y {
		byClass[y] = append(byClass[y], i)
	}
	for _, bucket := range byClass {
		r.Shuffle(len(bucket), func(i, j int) { bucket[i], bucket[j] = bucket[j], bucket[i] })
	}
	assign := make([][]int, m)
	for _, bucket := range byClass {
		if len(bucket) == 0 {
			continue
		}
		props := r.Dirichlet(alpha, m)
		// Convert proportions to cumulative cut points over the bucket.
		start := 0
		cum := 0.0
		for shard := 0; shard < m; shard++ {
			cum += props[shard]
			end := int(cum*float64(len(bucket)) + 0.5)
			if shard == m-1 {
				end = len(bucket)
			}
			if end > len(bucket) {
				end = len(bucket)
			}
			if end > start {
				assign[shard] = append(assign[shard], bucket[start:end]...)
				start = end
			}
		}
	}
	// Guarantee non-empty shards by stealing from the largest.
	for i := range assign {
		if len(assign[i]) > 0 {
			continue
		}
		largest := 0
		for j := range assign {
			if len(assign[j]) > len(assign[largest]) {
				largest = j
			}
		}
		if len(assign[largest]) < 2 {
			return nil, fmt.Errorf("data: Dirichlet partition cannot fill %d shards from %d examples", m, ds.Len())
		}
		n := len(assign[largest])
		assign[i] = append(assign[i], assign[largest][n-1])
		assign[largest] = assign[largest][:n-1]
	}
	shards := make([]*Dataset, m)
	for i := range shards {
		shards[i] = ds.Subset(assign[i])
	}
	return shards, nil
}

// SkewStat quantifies how non-IID a partition is: the mean total-variation
// distance between each shard's label distribution and the global one
// (0 = perfectly IID, →1 = each shard sees a single class).
func SkewStat(global *Dataset, shards []*Dataset) float64 {
	gCounts := global.ClassCounts()
	gTotal := float64(global.Len())
	gDist := make([]float64, len(gCounts))
	for i, c := range gCounts {
		gDist[i] = float64(c) / gTotal
	}
	tv := 0.0
	for _, s := range shards {
		counts := s.ClassCounts()
		total := float64(s.Len())
		d := 0.0
		for i, c := range counts {
			p := 0.0
			if total > 0 {
				p = float64(c) / total
			}
			diff := p - gDist[i]
			if diff < 0 {
				diff = -diff
			}
			d += diff
		}
		tv += d / 2
	}
	return tv / float64(len(shards))
}
