package data

import (
	"math"
	"testing"
)

func TestSynthCIFARDeterminism(t *testing.T) {
	g := DefaultSynthCIFAR()
	a, err := g.Generate(20, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Generate(20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !a.X.Equal(b.X, 0) {
		t.Fatal("same seed produced different images")
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	c, err := g.Generate(20, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.X.Equal(c.X, 0) {
		t.Fatal("different seeds produced identical images")
	}
}

func TestSynthCIFARPixelRange(t *testing.T) {
	ds, err := DefaultSynthCIFAR().Generate(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ds.X.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
	}
}

func TestSynthCIFARGeometry(t *testing.T) {
	ds, err := DefaultSynthCIFAR().Generate(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := ds.X.Shape()
	if s[0] != 5 || s[1] != 3 || s[2] != 32 || s[3] != 32 {
		t.Fatalf("shape = %v", s)
	}
	if ds.Classes != 10 {
		t.Fatalf("classes = %d", ds.Classes)
	}
}

func TestSynthCIFARBalanced(t *testing.T) {
	ds, err := DefaultSynthCIFAR().GenerateBalanced(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 70 {
		t.Fatalf("len = %d", ds.Len())
	}
	for class, count := range ds.ClassCounts() {
		if count != 7 {
			t.Fatalf("class %d has %d examples, want 7", class, count)
		}
	}
}

func TestSynthCIFARClassSeparability(t *testing.T) {
	// Same-class images must be more similar (on average) than
	// cross-class images, otherwise the workload cannot drive Table I.
	g := SynthCIFAR{Noise: 0.05}
	ds, err := g.GenerateBalanced(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist := func(i, j int) float64 {
		a, b := ds.Image(i), ds.Image(j)
		return a.Sub(b).Norm2()
	}
	var same, cross []float64
	for i := 0; i < ds.Len(); i++ {
		for j := i + 1; j < ds.Len(); j++ {
			if ds.Y[i] == ds.Y[j] {
				same = append(same, dist(i, j))
			} else {
				cross = append(cross, dist(i, j))
			}
		}
	}
	meanOf := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if ms, mc := meanOf(same), meanOf(cross); ms >= mc {
		t.Fatalf("classes not separable: same-class dist %v ≥ cross-class %v", ms, mc)
	}
}

func TestSynthCIFARNoiseKnob(t *testing.T) {
	quiet, err := SynthCIFAR{Noise: 0.01}.Generate(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	loud, err := SynthCIFAR{Noise: 0.3}.Generate(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Higher noise ⇒ higher high-frequency energy. Compare adjacent-pixel
	// differences.
	hf := func(ds *Dataset) float64 {
		s := ds.X.Shape()
		data := ds.X.Data()
		total := 0.0
		w := s[3]
		for i := 0; i+1 < len(data); i++ {
			if (i+1)%w != 0 {
				d := data[i+1] - data[i]
				total += math.Abs(d)
			}
		}
		return total
	}
	if hf(loud) <= hf(quiet) {
		t.Fatal("noise knob has no effect")
	}
}

func TestSynthCIFARRejectsBadConfig(t *testing.T) {
	if _, err := (SynthCIFAR{Classes: 1}).Generate(5, 1); err == nil {
		t.Fatal("1 class accepted")
	}
	if _, err := (SynthCIFAR{Classes: 11}).Generate(5, 1); err == nil {
		t.Fatal("11 classes accepted")
	}
	if _, err := DefaultSynthCIFAR().Generate(-1, 1); err == nil {
		t.Fatal("negative count accepted")
	}
}
