package data

import (
	"math"
	"testing"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

func tinyDataset(t *testing.T, n int) *Dataset {
	t.Helper()
	ds, err := SynthCIFAR{Height: 8, Width: 8, Classes: 4}.Generate(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDatasetValidate(t *testing.T) {
	ds := tinyDataset(t, 12)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dataset{X: tensor.New(3, 1, 2, 2), Y: []int{0, 1}, Classes: 2}
	if err := bad.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad2 := &Dataset{X: tensor.New(2, 1, 2, 2), Y: []int{0, 5}, Classes: 2}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestSubsetCopiesData(t *testing.T) {
	ds := tinyDataset(t, 10)
	sub := ds.Subset([]int{0, 5})
	if sub.Len() != 2 {
		t.Fatalf("subset len = %d", sub.Len())
	}
	if sub.Y[1] != ds.Y[5] {
		t.Fatal("subset label mismatch")
	}
	before := ds.X.At(0, 0, 0, 0)
	sub.X.Set(before+100, 0, 0, 0, 0)
	if ds.X.At(0, 0, 0, 0) != before {
		t.Fatal("subset aliases parent storage")
	}
}

func TestSplit(t *testing.T) {
	ds := tinyDataset(t, 10)
	head, tail, err := ds.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	if head.Len() != 3 || tail.Len() != 7 {
		t.Fatalf("split sizes %d/%d", head.Len(), tail.Len())
	}
	if _, _, err := ds.Split(11); err == nil {
		t.Fatal("oversized split accepted")
	}
}

func TestShufflePreservesPairs(t *testing.T) {
	ds := tinyDataset(t, 30)
	// Fingerprint each image with its sum, paired with its label.
	type pair struct {
		sum   float64
		label int
	}
	fingerprint := func(d *Dataset) map[pair]int {
		m := make(map[pair]int)
		for i := 0; i < d.Len(); i++ {
			m[pair{d.Image(i).Sum(), d.Y[i]}]++
		}
		return m
	}
	before := fingerprint(ds)
	ds.Shuffle(mathx.NewRNG(7))
	after := fingerprint(ds)
	if len(before) != len(after) {
		t.Fatal("shuffle changed fingerprint cardinality")
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatal("shuffle broke an image/label pair")
		}
	}
}

func TestNormalize(t *testing.T) {
	ds := tinyDataset(t, 64)
	means, stds := ds.Normalize()
	if len(means) != 3 || len(stds) != 3 {
		t.Fatalf("means/stds lengths %d/%d", len(means), len(stds))
	}
	// Per-channel statistics after normalisation: ≈0 mean, ≈1 std.
	s := ds.X.Shape()
	n, c, plane := s[0], s[1], s[2]*s[3]
	data := ds.X.Data()
	for ch := 0; ch < c; ch++ {
		var vals []float64
		for img := 0; img < n; img++ {
			base := (img*c + ch) * plane
			vals = append(vals, data[base:base+plane]...)
		}
		if m := mathx.Mean(vals); math.Abs(m) > 1e-9 {
			t.Fatalf("channel %d mean = %v after normalize", ch, m)
		}
		if sd := mathx.Std(vals); math.Abs(sd-1) > 1e-9 {
			t.Fatalf("channel %d std = %v after normalize", ch, sd)
		}
	}
}

func TestApplyNormalizationConsistency(t *testing.T) {
	// Normalising train and applying the same transform to test keeps the
	// two sets on the same scale.
	g := SynthCIFAR{Height: 8, Width: 8, Classes: 4}
	train, err := g.Generate(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	test, err := g.Generate(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	means, stds := train.Normalize()
	test.ApplyNormalization(means, stds)
	// Test-set stats should be near train's (same generator distribution,
	// independent draw — allow generous sampling slack).
	if m := test.X.Mean(); math.Abs(m) > 0.3 {
		t.Fatalf("test mean after transform = %v", m)
	}
}

func TestClassCounts(t *testing.T) {
	ds := &Dataset{X: tensor.New(5, 1, 1, 1), Y: []int{0, 1, 1, 2, 1}, Classes: 3}
	got := ds.ClassCounts()
	want := []int{1, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ClassCounts = %v, want %v", got, want)
		}
	}
}

func TestImageExtraction(t *testing.T) {
	ds := tinyDataset(t, 4)
	img := ds.Image(2)
	s := img.Shape()
	if s[0] != 3 || s[1] != 8 || s[2] != 8 {
		t.Fatalf("image shape = %v", s)
	}
	if img.At(0, 0, 0) != ds.X.At(2, 0, 0, 0) {
		t.Fatal("image content mismatch")
	}
}
