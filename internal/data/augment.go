package data

import (
	"fmt"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

// Augmenter applies the standard CIFAR-style training augmentations to a
// batch: random horizontal flip and random crop after reflection-free
// zero padding. Augmentation happens on copies; the source batch is not
// modified.
type Augmenter struct {
	// FlipProb is the probability of a horizontal flip (default 0.5 when
	// constructed with NewAugmenter).
	FlipProb float64
	// CropPad is the zero-padding margin for random crops; 0 disables
	// cropping.
	CropPad int
	rng     *mathx.RNG
}

// NewAugmenter constructs an augmenter with flip probability 0.5 and the
// given crop padding.
func NewAugmenter(cropPad int, r *mathx.RNG) (*Augmenter, error) {
	if cropPad < 0 {
		return nil, fmt.Errorf("data: negative crop padding %d", cropPad)
	}
	if r == nil {
		return nil, fmt.Errorf("data: augmenter needs an RNG")
	}
	return &Augmenter{FlipProb: 0.5, CropPad: cropPad, rng: r}, nil
}

// Apply returns an augmented copy of the batch images.
func (a *Augmenter) Apply(x *tensor.Tensor) *tensor.Tensor {
	s := x.Shape()
	n, c, h, w := s[0], s[1], s[2], s[3]
	out := x.Clone()
	data := out.Data()
	plane := h * w
	for img := 0; img < n; img++ {
		if a.rng.Float64() < a.FlipProb {
			flipH(data[img*c*plane:(img+1)*c*plane], c, h, w)
		}
		if a.CropPad > 0 {
			dy := a.rng.Intn(2*a.CropPad+1) - a.CropPad
			dx := a.rng.Intn(2*a.CropPad+1) - a.CropPad
			translate(data[img*c*plane:(img+1)*c*plane], c, h, w, dy, dx)
		}
	}
	return out
}

// flipH mirrors every channel plane left-right in place.
func flipH(img []float64, c, h, w int) {
	for ch := 0; ch < c; ch++ {
		plane := img[ch*h*w:][:h*w]
		for y := 0; y < h; y++ {
			row := plane[y*w:][:w]
			for x := 0; x < w/2; x++ {
				row[x], row[w-1-x] = row[w-1-x], row[x]
			}
		}
	}
}

// translate shifts every channel plane by (dy, dx), filling vacated pixels
// with zeros — equivalent to a random crop from a zero-padded canvas.
func translate(img []float64, c, h, w, dy, dx int) {
	if dy == 0 && dx == 0 {
		return
	}
	for ch := 0; ch < c; ch++ {
		plane := img[ch*h*w:][:h*w]
		tmp := make([]float64, h*w)
		for y := 0; y < h; y++ {
			sy := y - dy
			if sy < 0 || sy >= h {
				continue
			}
			for x := 0; x < w; x++ {
				sx := x - dx
				if sx < 0 || sx >= w {
					continue
				}
				tmp[y*w+x] = plane[sy*w+sx]
			}
		}
		copy(plane, tmp)
	}
}
