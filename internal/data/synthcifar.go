package data

import (
	"fmt"
	"math"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

// SynthCIFAR is a deterministic, procedural stand-in for CIFAR-10: 10
// visually distinct parametric texture classes rendered as C×H×W images in
// [0,1] with per-sample geometry, colour jitter and additive noise. The
// generator exists because this build environment is offline; the real
// CIFAR-10 binary loader in cifar10.go is used instead when the files are
// present. See DESIGN.md §2 for the substitution argument.
//
// Class palette (all randomised per sample):
//
//	0 horizontal gradient   5 diagonal stripes
//	1 vertical stripes      6 gaussian blobs
//	2 checkerboard          7 plus/cross shape
//	3 concentric rings      8 half-plane split
//	4 filled disc           9 colour-biased static
type SynthCIFAR struct {
	// Height, Width, Channels describe the image geometry
	// (default 32×32×3).
	Height, Width, Channels int
	// Noise is the stddev of the additive gaussian pixel noise
	// (default 0.08). Higher values make classification harder.
	Noise float64
	// Classes is fixed at 10 for the paper's workload but kept
	// configurable for small test fixtures (must be ≤ 10).
	Classes int
}

// DefaultSynthCIFAR returns the generator configured to mimic CIFAR-10
// geometry.
func DefaultSynthCIFAR() SynthCIFAR {
	return SynthCIFAR{Height: 32, Width: 32, Channels: 3, Noise: 0.08, Classes: 10}
}

func (g SynthCIFAR) defaults() SynthCIFAR {
	if g.Height == 0 {
		g.Height = 32
	}
	if g.Width == 0 {
		g.Width = 32
	}
	if g.Channels == 0 {
		g.Channels = 3
	}
	if g.Noise == 0 {
		g.Noise = 0.08
	}
	if g.Classes == 0 {
		g.Classes = 10
	}
	return g
}

// Generate renders n examples with labels drawn uniformly from the class
// set, deterministically from seed.
func (g SynthCIFAR) Generate(n int, seed uint64) (*Dataset, error) {
	g = g.defaults()
	if g.Classes < 2 || g.Classes > 10 {
		return nil, fmt.Errorf("data: SynthCIFAR supports 2..10 classes, got %d", g.Classes)
	}
	if n < 0 {
		return nil, fmt.Errorf("data: negative sample count %d", n)
	}
	r := mathx.NewRNG(seed)
	x := tensor.New(n, g.Channels, g.Height, g.Width)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		label := r.Intn(g.Classes)
		y[i] = label
		g.render(x, i, label, r.Split())
	}
	ds := &Dataset{X: x, Y: y, Classes: g.Classes}
	return ds, ds.Validate()
}

// GenerateBalanced renders exactly perClass examples of every class,
// shuffled, deterministically from seed.
func (g SynthCIFAR) GenerateBalanced(perClass int, seed uint64) (*Dataset, error) {
	g = g.defaults()
	if g.Classes < 2 || g.Classes > 10 {
		return nil, fmt.Errorf("data: SynthCIFAR supports 2..10 classes, got %d", g.Classes)
	}
	if perClass < 0 {
		return nil, fmt.Errorf("data: negative per-class count %d", perClass)
	}
	n := perClass * g.Classes
	r := mathx.NewRNG(seed)
	x := tensor.New(n, g.Channels, g.Height, g.Width)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		label := i % g.Classes
		y[i] = label
		g.render(x, i, label, r.Split())
	}
	ds := &Dataset{X: x, Y: y, Classes: g.Classes}
	ds.Shuffle(r)
	return ds, ds.Validate()
}

// render paints example idx of the batch tensor in place.
func (g SynthCIFAR) render(x *tensor.Tensor, idx, label int, r *mathx.RNG) {
	h, w, c := g.Height, g.Width, g.Channels
	vol := c * h * w
	img := x.Data()[idx*vol : (idx+1)*vol]

	// Per-sample palette: a foreground and background colour with jitter.
	fg := make([]float64, c)
	bg := make([]float64, c)
	for ch := 0; ch < c; ch++ {
		// Class-correlated hue plus jitter keeps classes separable but
		// not trivially so.
		fg[ch] = mathx.Clamp(0.5+0.4*math.Sin(float64(label)+float64(ch)*2.1)+r.Range(-0.15, 0.15), 0, 1)
		bg[ch] = mathx.Clamp(0.5-0.3*math.Cos(float64(label)*1.3+float64(ch))+r.Range(-0.15, 0.15), 0, 1)
	}

	// Geometry jitter shared by the pattern functions.
	phase := r.Range(0, 2*math.Pi)
	freq := r.Range(2.5, 4.5)
	cx := r.Range(0.3, 0.7) * float64(w)
	cy := r.Range(0.3, 0.7) * float64(h)
	radius := r.Range(0.2, 0.35) * float64(minInt(h, w))
	thick := r.Range(0.08, 0.16) * float64(minInt(h, w))
	slope := r.Range(0.6, 1.6)

	// blobs for class 6.
	type blob struct{ bx, by, br float64 }
	blobs := make([]blob, 3)
	for i := range blobs {
		blobs[i] = blob{
			bx: r.Range(0.15, 0.85) * float64(w),
			by: r.Range(0.15, 0.85) * float64(h),
			br: r.Range(0.10, 0.22) * float64(minInt(h, w)),
		}
	}

	for yPix := 0; yPix < h; yPix++ {
		for xPix := 0; xPix < w; xPix++ {
			// t in [0,1] is the foreground intensity of this pixel under
			// the class pattern.
			var t float64
			fx, fy := float64(xPix), float64(yPix)
			switch label {
			case 0: // horizontal gradient
				t = fx / float64(w-1)
			case 1: // vertical stripes
				t = 0.5 + 0.5*math.Sin(2*math.Pi*freq*fx/float64(w)+phase)
			case 2: // checkerboard
				cell := float64(minInt(h, w)) / freq
				if (int(fx/cell)+int(fy/cell))%2 == 0 {
					t = 1
				}
			case 3: // concentric rings
				d := math.Hypot(fx-cx, fy-cy)
				t = 0.5 + 0.5*math.Sin(2*math.Pi*d/(2.2*thick)+phase)
			case 4: // filled disc
				if math.Hypot(fx-cx, fy-cy) < radius {
					t = 1
				}
			case 5: // diagonal stripes
				t = 0.5 + 0.5*math.Sin(2*math.Pi*freq*(fx+slope*fy)/float64(w)+phase)
			case 6: // gaussian blobs
				for _, b := range blobs {
					d2 := (fx-b.bx)*(fx-b.bx) + (fy-b.by)*(fy-b.by)
					t += math.Exp(-d2 / (2 * b.br * b.br))
				}
				t = mathx.Clamp(t, 0, 1)
			case 7: // plus / cross
				if math.Abs(fx-cx) < thick || math.Abs(fy-cy) < thick {
					t = 1
				}
			case 8: // half-plane split along a jittered diagonal
				if fy > slope*(fx-cx)+cy {
					t = 1
				}
			case 9: // colour-biased static
				t = r.Float64()
			}
			for ch := 0; ch < c; ch++ {
				v := bg[ch] + (fg[ch]-bg[ch])*t + r.NormScaled(0, g.Noise)
				img[ch*h*w+yPix*w+xPix] = mathx.Clamp(v, 0, 1)
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
