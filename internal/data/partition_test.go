package data

import (
	"testing"
	"testing/quick"

	"github.com/stsl/stsl/internal/mathx"
)

func TestPartitionIIDCoversAll(t *testing.T) {
	ds := tinyDataset(t, 100)
	shards, err := PartitionIID(ds, 4, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("got %d shards", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
		if s.Len() != 25 {
			t.Fatalf("uneven shard size %d", s.Len())
		}
	}
	if total != 100 {
		t.Fatalf("shards cover %d examples", total)
	}
}

func TestPartitionIIDIsRoughlyBalancedByClass(t *testing.T) {
	ds, err := (SynthCIFAR{Height: 8, Width: 8}).GenerateBalanced(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := PartitionIID(ds, 4, mathx.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if skew := SkewStat(ds, shards); skew > 0.15 {
		t.Fatalf("IID partition has high skew %v", skew)
	}
}

func TestPartitionDirichletSkewGrowsAsAlphaShrinks(t *testing.T) {
	ds, err := (SynthCIFAR{Height: 8, Width: 8}).GenerateBalanced(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	skewAt := func(alpha float64) float64 {
		shards, err := PartitionDirichlet(ds, 4, alpha, mathx.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		return SkewStat(ds, shards)
	}
	low := skewAt(100) // near-IID
	high := skewAt(0.1)
	if high <= low {
		t.Fatalf("skew(α=0.1)=%v not greater than skew(α=100)=%v", high, low)
	}
	if high < 0.2 {
		t.Fatalf("α=0.1 skew %v implausibly low", high)
	}
}

func TestPartitionDirichletConservation(t *testing.T) {
	// Property: partitions conserve examples (none lost, none duplicated)
	// and never produce an empty shard.
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		m := 2 + r.Intn(6)
		ds, err := (SynthCIFAR{Height: 4, Width: 4, Classes: 4}).Generate(40+r.Intn(60), seed)
		if err != nil {
			return false
		}
		shards, err := PartitionDirichlet(ds, m, 0.3, r)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range shards {
			if s.Len() == 0 {
				return false
			}
			total += s.Len()
		}
		if total != ds.Len() {
			return false
		}
		// Label multiset conserved.
		global := ds.ClassCounts()
		merged := make([]int, ds.Classes)
		for _, s := range shards {
			for cls, c := range s.ClassCounts() {
				merged[cls] += c
			}
		}
		for i := range global {
			if merged[i] != global[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionErrors(t *testing.T) {
	ds := tinyDataset(t, 10)
	r := mathx.NewRNG(1)
	if _, err := PartitionIID(ds, 0, r); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := PartitionIID(ds, 11, r); err == nil {
		t.Fatal("more shards than examples accepted")
	}
	if _, err := PartitionDirichlet(ds, 4, 0, r); err == nil {
		t.Fatal("zero alpha accepted")
	}
	if _, err := PartitionDirichlet(ds, 0, 1, r); err == nil {
		t.Fatal("zero shards accepted")
	}
}
