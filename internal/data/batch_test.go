package data

import (
	"testing"

	"github.com/stsl/stsl/internal/mathx"
)

func TestBatcherCoversEpochExactlyOnce(t *testing.T) {
	ds := tinyDataset(t, 23)
	b, err := NewBatcher(ds, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.BatchesPerEpoch(); got != 5 {
		t.Fatalf("BatchesPerEpoch = %d, want 5 (4 full + 1 remainder)", got)
	}
	total := 0
	batches := b.Epoch()
	if len(batches) != 5 {
		t.Fatalf("epoch yielded %d batches", len(batches))
	}
	for i, batch := range batches {
		total += len(batch.Y)
		if i < 4 && len(batch.Y) != 5 {
			t.Fatalf("batch %d size = %d", i, len(batch.Y))
		}
	}
	if total != 23 {
		t.Fatalf("epoch covered %d examples, want 23", total)
	}
}

func TestBatcherDropLast(t *testing.T) {
	ds := tinyDataset(t, 23)
	b, err := NewBatcher(ds, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.DropLast = true
	if got := b.BatchesPerEpoch(); got != 4 {
		t.Fatalf("BatchesPerEpoch = %d, want 4", got)
	}
	if got := len(b.Epoch()); got != 4 {
		t.Fatalf("epoch yielded %d batches", got)
	}
}

func TestBatcherSequentialOrderWithoutRNG(t *testing.T) {
	ds := tinyDataset(t, 10)
	b, err := NewBatcher(ds, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch, ok := b.Next()
	if !ok {
		t.Fatal("no first batch")
	}
	for i := range batch.Y {
		if batch.Y[i] != ds.Y[i] {
			t.Fatal("sequential batcher reordered data")
		}
	}
}

func TestBatcherShufflesBetweenEpochs(t *testing.T) {
	ds := tinyDataset(t, 40)
	b, err := NewBatcher(ds, 40, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	first := b.Epoch()[0]
	second := b.Epoch()[0]
	sameOrder := true
	for i := range first.Y {
		if first.X.Data()[i*192] != second.X.Data()[i*192] {
			sameOrder = false
			break
		}
	}
	if sameOrder {
		t.Fatal("batcher did not reshuffle between epochs")
	}
	// Both epochs still cover the same multiset of labels.
	c1, c2 := make([]int, 4), make([]int, 4)
	for i := range first.Y {
		c1[first.Y[i]]++
		c2[second.Y[i]]++
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("epochs cover different label multisets")
		}
	}
}

func TestBatcherRejectsBadConfig(t *testing.T) {
	ds := tinyDataset(t, 10)
	if _, err := NewBatcher(ds, 0, nil); err == nil {
		t.Fatal("zero batch size accepted")
	}
	if _, err := NewBatcher(&Dataset{}, 4, nil); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}
