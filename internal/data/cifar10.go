package data

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/stsl/stsl/internal/tensor"
)

// CIFAR-10 binary format: each record is 1 label byte followed by 3072
// pixel bytes (1024 red, 1024 green, 1024 blue, row-major). The official
// distribution ships five training files and one test file of 10000
// records each.
const (
	cifarRecordLen = 1 + 3*32*32
	cifarClasses   = 10
)

// LoadCIFAR10Reader decodes CIFAR-10 binary records from r until EOF.
// Pixels are scaled to [0,1]. maxRecords ≤ 0 means "all".
func LoadCIFAR10Reader(r io.Reader, maxRecords int) (*Dataset, error) {
	var images [][]float64
	var labels []int
	buf := make([]byte, cifarRecordLen)
	for maxRecords <= 0 || len(labels) < maxRecords {
		_, err := io.ReadFull(r, buf)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("data: truncated CIFAR-10 record after %d records", len(labels))
		}
		if err != nil {
			return nil, fmt.Errorf("data: read CIFAR-10 record: %w", err)
		}
		label := int(buf[0])
		if label >= cifarClasses {
			return nil, fmt.Errorf("data: CIFAR-10 label %d out of range at record %d", label, len(labels))
		}
		px := make([]float64, 3*32*32)
		for i := 0; i < 3*32*32; i++ {
			px[i] = float64(buf[1+i]) / 255
		}
		images = append(images, px)
		labels = append(labels, label)
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("data: no CIFAR-10 records decoded")
	}
	x := tensor.New(len(labels), 3, 32, 32)
	dst := x.Data()
	for i, px := range images {
		copy(dst[i*len(px):(i+1)*len(px)], px)
	}
	ds := &Dataset{X: x, Y: labels, Classes: cifarClasses}
	return ds, ds.Validate()
}

// LoadCIFAR10Dir loads the official binary distribution from dir
// (data_batch_1..5.bin for training, test_batch.bin for test). It returns
// an error when the files are absent; callers fall back to SynthCIFAR.
func LoadCIFAR10Dir(dir string) (train, test *Dataset, err error) {
	var trainParts []*Dataset
	for i := 1; i <= 5; i++ {
		part, err := loadCIFARFile(filepath.Join(dir, fmt.Sprintf("data_batch_%d.bin", i)))
		if err != nil {
			return nil, nil, err
		}
		trainParts = append(trainParts, part)
	}
	train, err = Concat(trainParts...)
	if err != nil {
		return nil, nil, err
	}
	test, err = loadCIFARFile(filepath.Join(dir, "test_batch.bin"))
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}

func loadCIFARFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: open CIFAR-10 file: %w", err)
	}
	defer f.Close()
	return LoadCIFAR10Reader(f, 0)
}

// Concat joins datasets with identical image geometry and class count.
func Concat(parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("data: Concat of nothing")
	}
	base := parts[0].X.Shape()
	classes := parts[0].Classes
	total := 0
	for _, p := range parts {
		s := p.X.Shape()
		if len(s) != 4 || s[1] != base[1] || s[2] != base[2] || s[3] != base[3] || p.Classes != classes {
			return nil, fmt.Errorf("data: Concat geometry mismatch %v vs %v", s, base)
		}
		total += p.Len()
	}
	x := tensor.New(total, base[1], base[2], base[3])
	y := make([]int, 0, total)
	dst := x.Data()
	off := 0
	for _, p := range parts {
		copy(dst[off:], p.X.Data())
		off += p.X.Size()
		y = append(y, p.Y...)
	}
	ds := &Dataset{X: x, Y: y, Classes: classes}
	return ds, ds.Validate()
}
