package data

import (
	"testing"

	"github.com/stsl/stsl/internal/mathx"
)

func TestAugmenterDoesNotMutateSource(t *testing.T) {
	ds := tinyDataset(t, 4)
	orig := ds.X.Clone()
	a, err := NewAugmenter(2, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	a.Apply(ds.X)
	if !ds.X.Equal(orig, 0) {
		t.Fatal("augmenter mutated source batch")
	}
}

func TestFlipHExact(t *testing.T) {
	img := []float64{
		1, 2, 3,
		4, 5, 6,
	}
	flipH(img, 1, 2, 3)
	want := []float64{
		3, 2, 1,
		6, 5, 4,
	}
	for i := range want {
		if img[i] != want[i] {
			t.Fatalf("flipH = %v, want %v", img, want)
		}
	}
}

func TestTranslateExact(t *testing.T) {
	img := []float64{
		1, 2,
		3, 4,
	}
	translate(img, 1, 2, 2, 1, 0) // shift down one row
	want := []float64{
		0, 0,
		1, 2,
	}
	for i := range want {
		if img[i] != want[i] {
			t.Fatalf("translate = %v, want %v", img, want)
		}
	}
}

func TestTranslateZeroIsNoop(t *testing.T) {
	img := []float64{1, 2, 3, 4}
	translate(img, 1, 2, 2, 0, 0)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if img[i] != want[i] {
			t.Fatal("zero translate changed image")
		}
	}
}

func TestAugmenterFlipProbabilityExtremes(t *testing.T) {
	ds := tinyDataset(t, 8)
	// FlipProb 0 and CropPad 0: identity.
	a, err := NewAugmenter(0, mathx.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	a.FlipProb = 0
	out := a.Apply(ds.X)
	if !out.Equal(ds.X, 0) {
		t.Fatal("identity augmenter changed data")
	}
	// FlipProb 1: every image flipped; flipping twice restores.
	a.FlipProb = 1
	flipped := a.Apply(ds.X)
	restored := a.Apply(flipped)
	if !restored.Equal(ds.X, 0) {
		t.Fatal("double flip did not restore images")
	}
	if flipped.Equal(ds.X, 0) {
		t.Fatal("flip had no effect")
	}
}

func TestAugmenterPreservesShape(t *testing.T) {
	ds := tinyDataset(t, 3)
	a, err := NewAugmenter(3, mathx.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	out := a.Apply(ds.X)
	if !out.SameShape(ds.X) {
		t.Fatalf("augmented shape %v != %v", out.Shape(), ds.X.Shape())
	}
}

func TestAugmenterRejectsBadConfig(t *testing.T) {
	if _, err := NewAugmenter(-1, mathx.NewRNG(1)); err == nil {
		t.Fatal("negative pad accepted")
	}
	if _, err := NewAugmenter(1, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}
