package data

import (
	"bytes"
	"testing"
)

// fakeCIFARRecords builds n wire-format CIFAR-10 records with label i%10
// and a constant pixel value.
func fakeCIFARRecords(n int) []byte {
	buf := make([]byte, 0, n*cifarRecordLen)
	for i := 0; i < n; i++ {
		rec := make([]byte, cifarRecordLen)
		rec[0] = byte(i % 10)
		for j := 1; j < cifarRecordLen; j++ {
			rec[j] = byte(i) // distinct per record
		}
		buf = append(buf, rec...)
	}
	return buf
}

func TestLoadCIFAR10Reader(t *testing.T) {
	raw := fakeCIFARRecords(12)
	ds, err := LoadCIFAR10Reader(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 12 {
		t.Fatalf("len = %d", ds.Len())
	}
	s := ds.X.Shape()
	if s[1] != 3 || s[2] != 32 || s[3] != 32 {
		t.Fatalf("shape = %v", s)
	}
	if ds.Y[3] != 3 || ds.Y[11] != 1 {
		t.Fatalf("labels = %v", ds.Y)
	}
	// Pixel scaling: record 5 has all bytes = 5 → 5/255.
	if got := ds.X.At(5, 0, 0, 0); got != 5.0/255 {
		t.Fatalf("pixel = %v", got)
	}
}

func TestLoadCIFAR10ReaderMaxRecords(t *testing.T) {
	raw := fakeCIFARRecords(12)
	ds, err := LoadCIFAR10Reader(bytes.NewReader(raw), 5)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 5 {
		t.Fatalf("len = %d, want 5", ds.Len())
	}
}

func TestLoadCIFAR10ReaderRejectsTruncated(t *testing.T) {
	raw := fakeCIFARRecords(2)
	if _, err := LoadCIFAR10Reader(bytes.NewReader(raw[:len(raw)-10]), 0); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestLoadCIFAR10ReaderRejectsEmpty(t *testing.T) {
	if _, err := LoadCIFAR10Reader(bytes.NewReader(nil), 0); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestLoadCIFAR10DirMissing(t *testing.T) {
	if _, _, err := LoadCIFAR10Dir(t.TempDir()); err == nil {
		t.Fatal("missing files accepted")
	}
}

func TestConcat(t *testing.T) {
	a := tinyDataset(t, 5)
	b := tinyDataset(t, 7)
	joined, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if joined.Len() != 12 {
		t.Fatalf("len = %d", joined.Len())
	}
	if joined.Y[5] != b.Y[0] {
		t.Fatal("concat order wrong")
	}
	if _, err := Concat(); err == nil {
		t.Fatal("empty concat accepted")
	}
}
