// Package data provides the datasets and data plumbing for the
// reproduction: a deterministic procedural image generator (SynthCIFAR)
// standing in for CIFAR-10 in this offline environment, a loader for the
// real CIFAR-10 binary format when the files are available, mini-batch
// iteration, normalisation, augmentation, and the IID / Dirichlet-skewed
// partitioning used to shard training data across end-systems.
package data

import (
	"fmt"
	"math"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

// Dataset is a labelled image set. X has shape (N, C, H, W); Y holds the
// integer class of each image.
type Dataset struct {
	X *tensor.Tensor
	Y []int
	// Classes is the number of distinct labels.
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if d.X == nil {
		return fmt.Errorf("data: dataset has nil X")
	}
	s := d.X.Shape()
	if len(s) != 4 {
		return fmt.Errorf("data: dataset X must be rank 4, got %v", s)
	}
	if s[0] != len(d.Y) {
		return fmt.Errorf("data: dataset has %d images but %d labels", s[0], len(d.Y))
	}
	if d.Classes <= 0 {
		return fmt.Errorf("data: dataset has non-positive class count %d", d.Classes)
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("data: label %d out of range [0,%d) at index %d", y, d.Classes, i)
		}
	}
	return nil
}

// Image returns a copy of example i as a (C, H, W) tensor.
func (d *Dataset) Image(i int) *tensor.Tensor {
	s := d.X.Shape()
	c, h, w := s[1], s[2], s[3]
	vol := c * h * w
	out := tensor.New(c, h, w)
	copy(out.Data(), d.X.Data()[i*vol:(i+1)*vol])
	return out
}

// Subset returns a new dataset containing the examples at the given
// indices (copied, not aliased).
func (d *Dataset) Subset(indices []int) *Dataset {
	s := d.X.Shape()
	c, h, w := s[1], s[2], s[3]
	vol := c * h * w
	x := tensor.New(len(indices), c, h, w)
	y := make([]int, len(indices))
	src, dst := d.X.Data(), x.Data()
	for j, idx := range indices {
		copy(dst[j*vol:(j+1)*vol], src[idx*vol:(idx+1)*vol])
		y[j] = d.Y[idx]
	}
	return &Dataset{X: x, Y: y, Classes: d.Classes}
}

// Split divides the dataset into a head of n examples and the remaining
// tail, in order.
func (d *Dataset) Split(n int) (head, tail *Dataset, err error) {
	if n < 0 || n > d.Len() {
		return nil, nil, fmt.Errorf("data: split size %d out of range [0,%d]", n, d.Len())
	}
	headIdx := make([]int, n)
	tailIdx := make([]int, d.Len()-n)
	for i := range headIdx {
		headIdx[i] = i
	}
	for i := range tailIdx {
		tailIdx[i] = n + i
	}
	return d.Subset(headIdx), d.Subset(tailIdx), nil
}

// Shuffle permutes the dataset in place using r.
func (d *Dataset) Shuffle(r *mathx.RNG) {
	s := d.X.Shape()
	vol := s[1] * s[2] * s[3]
	data := d.X.Data()
	tmp := make([]float64, vol)
	r.Shuffle(d.Len(), func(i, j int) {
		copy(tmp, data[i*vol:(i+1)*vol])
		copy(data[i*vol:(i+1)*vol], data[j*vol:(j+1)*vol])
		copy(data[j*vol:(j+1)*vol], tmp)
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// ClassCounts returns a histogram of labels.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Normalize shifts and scales every channel in place to zero mean and unit
// variance computed over the whole dataset, returning the per-channel
// means and stds so the same transform can be applied to held-out data.
func (d *Dataset) Normalize() (means, stds []float64) {
	s := d.X.Shape()
	n, c, h, w := s[0], s[1], s[2], s[3]
	plane := h * w
	means = make([]float64, c)
	stds = make([]float64, c)
	data := d.X.Data()
	for ch := 0; ch < c; ch++ {
		sum, count := 0.0, 0
		for img := 0; img < n; img++ {
			base := (img*c + ch) * plane
			for i := 0; i < plane; i++ {
				sum += data[base+i]
				count++
			}
		}
		mean := sum / float64(count)
		varSum := 0.0
		for img := 0; img < n; img++ {
			base := (img*c + ch) * plane
			for i := 0; i < plane; i++ {
				dv := data[base+i] - mean
				varSum += dv * dv
			}
		}
		variance := mathx.Clamp(varSum/float64(count), 1e-12, 1e12)
		means[ch], stds[ch] = mean, math.Sqrt(variance)
	}
	d.ApplyNormalization(means, stds)
	return means, stds
}

// ApplyNormalization applies a previously computed per-channel transform.
func (d *Dataset) ApplyNormalization(means, stds []float64) {
	s := d.X.Shape()
	n, c, h, w := s[0], s[1], s[2], s[3]
	plane := h * w
	data := d.X.Data()
	for ch := 0; ch < c; ch++ {
		inv := 1 / stds[ch]
		m := means[ch]
		for img := 0; img < n; img++ {
			base := (img*c + ch) * plane
			for i := 0; i < plane; i++ {
				data[base+i] = (data[base+i] - m) * inv
			}
		}
	}
}
