package paramsync

import (
	"errors"
	"math"
	"testing"

	"github.com/stsl/stsl/internal/nn"
)

func TestParseMethod(t *testing.T) {
	cases := map[string]Method{
		"": MethodAverage, "average": MethodAverage, "mean": MethodAverage, "fedavg": MethodAverage,
		"trimmed": MethodTrimmed, "trimmed-mean": MethodTrimmed,
		"clipped": MethodClipped, "clip": MethodClipped,
	}
	for s, want := range cases {
		got, err := ParseMethod(s)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", s, got, err, want)
		}
		if s != "" && s != "mean" && s != "fedavg" && s != "trimmed-mean" && s != "clip" {
			if got.String() != s {
				t.Errorf("Method(%q).String() = %q", s, got.String())
			}
		}
	}
	if _, err := ParseMethod("krum"); err == nil {
		t.Error("ParseMethod accepted an unknown rule")
	}
}

func TestFinite(t *testing.T) {
	if !Finite(set(1, 2, 3)) {
		t.Error("finite set reported non-finite")
	}
	if Finite(set(1, math.NaN(), 3)) {
		t.Error("NaN set reported finite")
	}
	if Finite(set(1, math.Inf(-1), 3)) {
		t.Error("Inf set reported finite")
	}
}

// TestAverageRejectsNonFinite: the guarded plain mean refuses to fold a
// NaN or Inf set in — the error is typed so callers can distinguish
// poisoning from structural misuse.
func TestAverageRejectsNonFinite(t *testing.T) {
	dst := set(0, 0)
	err := Average(dst, [][]*nn.Param{set(1, 2), set(math.NaN(), 2)}, nil)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Average on NaN set: %v, want ErrNonFinite", err)
	}
	err = Average(dst, [][]*nn.Param{set(1, math.Inf(1))}, nil)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Average on Inf set: %v, want ErrNonFinite", err)
	}
}

// TestCopyRejectsNonFinite: restoring or fanning out poisoned parameters
// is never silent.
func TestCopyRejectsNonFinite(t *testing.T) {
	if err := Copy(set(0, 0), set(1, math.NaN())); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Copy of NaN set: want ErrNonFinite")
	}
	dst := set(7, 7)
	if err := Copy(dst, set(1, math.Inf(1))); !errors.Is(err, ErrNonFinite) {
		t.Fatal("Copy of Inf set: want ErrNonFinite")
	}
	if dst[0].Value.Data()[0] != 7 {
		t.Fatal("rejected Copy mutated dst")
	}
}

// TestTrimmedMeanDropsNaNSet: a NaN set is excluded entirely; the result
// is the mean of the survivors.
func TestTrimmedMeanDropsNaNSet(t *testing.T) {
	dst := set(0, 0)
	sets := [][]*nn.Param{set(1, 2), set(3, 4), set(math.NaN(), math.NaN())}
	if err := TrimmedMean(dst, sets); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{2, 3} {
		if got := dst[0].Value.Data()[i]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("dst[%d] = %v, want %v", i, got, want)
		}
	}
}

// TestTrimmedMeanBoundsNormBomb: with n ≥ 3 surviving sets, a lone
// hostile set scaled by 1e6 is trimmed per coordinate — the result stays
// within the honest sets' range.
func TestTrimmedMeanBoundsNormBomb(t *testing.T) {
	dst := set(0, 0)
	honest := [][]*nn.Param{set(1, -1), set(1.2, -0.8), set(0.8, -1.2)}
	sets := append(append([][]*nn.Param{}, honest...), set(1e6, -1e6))
	if err := TrimmedMean(dst, sets); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst[0].Value.Data() {
		if math.Abs(v) > 2 {
			t.Fatalf("coordinate %d = %v escaped the honest range — the bomb was averaged in", i, v)
		}
	}
	// Close to the clean mean: trimming (k=1 of 4) drops the bomb and one
	// honest extreme per coordinate.
	if v := dst[0].Value.Data()[0]; math.Abs(v-1) > 0.25 {
		t.Fatalf("trimmed[0] = %v, want ≈ 1", v)
	}
}

// TestTrimmedMeanAllPoisoned: when every candidate carries NaN there is
// nothing to aggregate — typed error, not a NaN result.
func TestTrimmedMeanAllPoisoned(t *testing.T) {
	err := TrimmedMean(set(0), [][]*nn.Param{set(math.NaN()), set(math.Inf(1))})
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("all-poisoned trim: %v, want ErrNonFinite", err)
	}
}

// TestTrimmedMeanSmallN: with fewer than 3 sets nothing is trimmed; the
// rule degenerates to the plain mean of the survivors.
func TestTrimmedMeanSmallN(t *testing.T) {
	dst := set(0)
	if err := TrimmedMean(dst, [][]*nn.Param{set(1), set(3)}); err != nil {
		t.Fatal(err)
	}
	if got := dst[0].Value.Data()[0]; math.Abs(got-2) > 1e-12 {
		t.Fatalf("2-set trim = %v, want plain mean 2", got)
	}
}

// TestClippedAverageBoundsNormBomb: the bomb keeps its vote direction
// but its pull is clipped to 2× the median deviation — the result lands
// near the honest consensus instead of at the bomb.
func TestClippedAverageBoundsNormBomb(t *testing.T) {
	dst := set(0, 0)
	sets := [][]*nn.Param{set(1, -1), set(1.1, -0.9), set(0.9, -1.1), set(1e6, -1e6)}
	if err := ClippedAverage(dst, sets, nil); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst[0].Value.Data() {
		if math.Abs(v) > 2 {
			t.Fatalf("coordinate %d = %v — the bomb's magnitude survived clipping", i, v)
		}
	}
	if v := dst[0].Value.Data()[0]; math.Abs(v-1) > 0.5 {
		t.Fatalf("clipped[0] = %v, want ≈ 1", v)
	}
}

// TestClippedAverageZeroMedianDeviation: when the median set sits exactly
// on the center (bound = 0), an outlier's pull is zeroed entirely rather
// than divided by zero or left unclipped.
func TestClippedAverageZeroMedianDeviation(t *testing.T) {
	dst := set(0)
	sets := [][]*nn.Param{set(5), set(5), set(5), set(1e9)}
	if err := ClippedAverage(dst, sets, nil); err != nil {
		t.Fatal(err)
	}
	if got := dst[0].Value.Data()[0]; math.Abs(got-5) > 1e-9 {
		t.Fatalf("zero-deviation clip = %v, want the consensus 5", got)
	}
}

// TestClippedAverageDropsNaNWeight: a dropped (non-finite) set's weight
// leaves the normalisation too, so the survivors' weights renormalise.
func TestClippedAverageDropsNaNWeight(t *testing.T) {
	dst := set(0)
	sets := [][]*nn.Param{set(2), set(4), set(math.NaN())}
	if err := ClippedAverage(dst, sets, []float64{1, 1, 100}); err != nil {
		t.Fatal(err)
	}
	if got := dst[0].Value.Data()[0]; math.Abs(got-3) > 1e-9 {
		t.Fatalf("clipped avg = %v, want 3 (NaN set and its weight dropped)", got)
	}
}

// TestAggregateDispatch: the single entry point routes to each rule and
// rejects an undefined method.
func TestAggregateDispatch(t *testing.T) {
	for _, m := range []Method{MethodAverage, MethodTrimmed, MethodClipped} {
		dst := set(0)
		if err := Aggregate(m, dst, [][]*nn.Param{set(2), set(4)}, nil); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got := dst[0].Value.Data()[0]; math.Abs(got-3) > 1e-9 {
			t.Fatalf("%v = %v, want 3", m, got)
		}
	}
	if err := Aggregate(Method(99), set(0), [][]*nn.Param{set(1)}, nil); err == nil {
		t.Fatal("Aggregate accepted an undefined method")
	}
}

// TestRobustAliasesDst: like Average, the robust rules must tolerate dst
// aliasing a source set — the pool aggregates into replica 0 in place.
func TestRobustAliasesDst(t *testing.T) {
	a, b, c := set(1, 4), set(3, 6), set(2, 5)
	if err := TrimmedMean(a, [][]*nn.Param{a, b, c}); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{2, 5} {
		if got := a[0].Value.Data()[i]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("aliased trim[%d] = %v, want %v", i, got, want)
		}
	}
	a2, b2 := set(1, 4), set(3, 6)
	if err := ClippedAverage(a2, [][]*nn.Param{a2, b2}, nil); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{2, 5} {
		if got := a2[0].Value.Data()[i]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("aliased clip[%d] = %v, want %v", i, got, want)
		}
	}
}
