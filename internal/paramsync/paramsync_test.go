package paramsync

import (
	"math"
	"testing"

	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/tensor"
)

// set builds one single-param set holding the given values.
func set(vals ...float64) []*nn.Param {
	t := tensor.New(len(vals))
	copy(t.Data(), vals)
	return []*nn.Param{{Name: "w", Value: t}}
}

func TestCopy(t *testing.T) {
	dst, src := set(0, 0, 0), set(1, 2, 3)
	if err := Copy(dst, src); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if got := dst[0].Value.Data()[i]; got != want {
			t.Fatalf("dst[%d] = %v, want %v", i, got, want)
		}
	}
	if err := Copy(dst, []*nn.Param{}); err == nil {
		t.Fatal("Copy accepted mismatched set lengths")
	}
}

func TestAverageUniform(t *testing.T) {
	a, b := set(1, 2), set(3, 6)
	dst := set(0, 0)
	if err := Average(dst, [][]*nn.Param{a, b}, nil); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{2, 4} {
		if got := dst[0].Value.Data()[i]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("dst[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestAverageWeighted(t *testing.T) {
	a, b := set(0), set(10)
	dst := set(0)
	// Weights need not be normalised: 1:3 ≡ 0.25:0.75.
	if err := Average(dst, [][]*nn.Param{a, b}, []float64{1, 3}); err != nil {
		t.Fatal(err)
	}
	if got := dst[0].Value.Data()[0]; math.Abs(got-7.5) > 1e-12 {
		t.Fatalf("weighted average = %v, want 7.5", got)
	}
}

// Average must be safe when dst aliases one of the source sets — that
// is exactly how the worker pool syncs (average into replica 0).
func TestAverageAliasesSource(t *testing.T) {
	a, b := set(2, 4), set(4, 8)
	if err := Average(a, [][]*nn.Param{a, b}, nil); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{3, 6} {
		if got := a[0].Value.Data()[i]; math.Abs(got-want) > 1e-12 {
			t.Fatalf("aliased average[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestAverageRejectsBadInput(t *testing.T) {
	a := set(1)
	if err := Average(a, nil, nil); err == nil {
		t.Fatal("Average accepted zero sets")
	}
	if err := Average(a, [][]*nn.Param{a}, []float64{1, 2}); err == nil {
		t.Fatal("Average accepted weight/set count mismatch")
	}
	if err := Average(a, [][]*nn.Param{a}, []float64{-1}); err == nil {
		t.Fatal("Average accepted a negative weight")
	}
	if err := Average(a, [][]*nn.Param{a}, []float64{0}); err == nil {
		t.Fatal("Average accepted all-zero weights")
	}
}

func TestDivergence(t *testing.T) {
	if d := Divergence(nil); d != 0 {
		t.Fatalf("Divergence(nil) = %v, want 0", d)
	}
	if d := Divergence([][]*nn.Param{set(1, 2)}); d != 0 {
		t.Fatalf("single-set divergence = %v, want 0", d)
	}
	same := [][]*nn.Param{set(1, 2, 3), set(1, 2, 3)}
	if d := Divergence(same); d != 0 {
		t.Fatalf("identical-set divergence = %v, want 0", d)
	}
	// Sets at 1±1: mean is 1, each set is RMS distance 1 from it, and
	// the mean's RMS magnitude is 1 → divergence exactly 1.
	apart := [][]*nn.Param{set(0, 0), set(2, 2)}
	if d := Divergence(apart); math.Abs(d-1) > 1e-12 {
		t.Fatalf("divergence = %v, want 1", d)
	}
	// Drifting one set further apart must increase the reading.
	wider := [][]*nn.Param{set(-1, -1), set(3, 3)}
	if Divergence(wider) <= Divergence(apart) {
		t.Fatal("divergence did not grow with wider spread")
	}
}
