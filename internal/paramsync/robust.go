// Robust aggregation variants. Plain Average is exactly as Byzantine-
// tolerant as an arithmetic mean — one NaN poisons every coordinate and
// one huge update drags the consensus arbitrarily far. The variants here
// bound a minority of hostile or broken sets: TrimmedMean discards the
// coordinate-wise extremes before averaging, ClippedAverage shrinks each
// set's deviation from a robust center to a multiple of the median
// deviation. Both drop sets containing non-finite values entirely — a
// NaN update carries no usable information at any weight.
package paramsync

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/tensor"
)

// ErrNonFinite reports parameter values that are NaN or ±Inf where
// finite numbers are required: a source set handed to Copy/Average, or
// every candidate set of a robust aggregation.
var ErrNonFinite = errors.New("paramsync: non-finite parameter values")

// Method selects the aggregation rule used when replica (or client)
// parameter sets are combined.
type Method uint8

const (
	// MethodAverage is the plain weighted mean — exact FedAvg, fastest,
	// zero Byzantine tolerance (guarded: it refuses non-finite inputs).
	MethodAverage Method = iota
	// MethodTrimmed is the coordinate-wise trimmed mean: per coordinate,
	// the k highest and k lowest values are discarded before averaging.
	// Tolerates up to k hostile sets per coordinate; ignores weights
	// (rank statistics have no natural weighting).
	MethodTrimmed
	// MethodClipped averages deviations from the coordinate-wise median
	// after clipping each set's deviation norm to a multiple of the
	// median deviation — outliers still vote, but with bounded pull.
	MethodClipped
)

// String implements fmt.Stringer; the inverse of ParseMethod.
func (m Method) String() string {
	switch m {
	case MethodAverage:
		return "average"
	case MethodTrimmed:
		return "trimmed"
	case MethodClipped:
		return "clipped"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// ParseMethod maps a CLI/config spelling onto a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "", "average", "mean", "fedavg":
		return MethodAverage, nil
	case "trimmed", "trimmed-mean":
		return MethodTrimmed, nil
	case "clipped", "clip":
		return MethodClipped, nil
	default:
		return 0, fmt.Errorf("paramsync: unknown aggregation method %q (want average, trimmed, or clipped)", s)
	}
}

// Aggregate combines the parameter sets into dst with the selected rule.
// It is the single entry point the cluster pool and checkpoint restore
// use, so switching a deployment to a robust rule is one config knob.
func Aggregate(m Method, dst []*nn.Param, sets [][]*nn.Param, weights []float64) error {
	switch m {
	case MethodAverage:
		return Average(dst, sets, weights)
	case MethodTrimmed:
		return TrimmedMean(dst, sets)
	case MethodClipped:
		return ClippedAverage(dst, sets, weights)
	default:
		return fmt.Errorf("paramsync: unknown aggregation method %v", m)
	}
}

// Finite reports whether every value of every parameter in the set is
// finite — how the cluster excludes a poisoned replica from checkpoints
// before persisting the healthy ones.
func Finite(set []*nn.Param) bool { return setFinite(set) }

// setFinite reports whether every value of every parameter is finite.
func setFinite(set []*nn.Param) bool {
	for _, p := range set {
		for _, v := range p.Value.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}

// finiteSets filters out sets containing non-finite values, validating
// structure against dst along the way. The returned index slice maps
// surviving positions back to the originals (for weights).
func finiteSets(dst []*nn.Param, sets [][]*nn.Param) ([][]*nn.Param, []int, error) {
	if len(sets) == 0 {
		return nil, nil, fmt.Errorf("paramsync: aggregation of zero parameter sets")
	}
	valid := make([][]*nn.Param, 0, len(sets))
	idx := make([]int, 0, len(sets))
	for si, set := range sets {
		if len(set) != len(dst) {
			return nil, nil, fmt.Errorf("paramsync: aggregating %d params into %d", len(set), len(dst))
		}
		if setFinite(set) {
			valid = append(valid, set)
			idx = append(idx, si)
		}
	}
	if len(valid) == 0 {
		return nil, nil, fmt.Errorf("paramsync: every candidate set is poisoned: %w", ErrNonFinite)
	}
	return valid, idx, nil
}

// TrimmedMean writes the coordinate-wise trimmed mean of the finite
// sets into dst (dst may alias a set). With n surviving sets the
// max(1, n/4) highest and lowest values per coordinate are discarded
// when n ≥ 3; below that there is nothing to trim and it degenerates to
// the plain mean of the survivors.
func TrimmedMean(dst []*nn.Param, sets [][]*nn.Param) error {
	valid, _, err := finiteSets(dst, sets)
	if err != nil {
		return err
	}
	n := len(valid)
	k := 0
	if n >= 3 {
		k = n / 4
		if k < 1 {
			k = 1
		}
	}
	vals := make([]float64, n)
	for pi := range dst {
		acc := tensor.New(valid[0][pi].Value.Shape()...)
		ad := acc.Data()
		for i := range ad {
			for si, set := range valid {
				vals[si] = set[pi].Value.Data()[i]
			}
			sort.Float64s(vals)
			sum := 0.0
			for _, v := range vals[k : n-k] {
				sum += v
			}
			ad[i] = sum / float64(n-2*k)
		}
		dst[pi].Value.CopyFrom(acc)
	}
	return nil
}

// ClippedAverage writes a norm-clipped weighted mean into dst: the
// center is the coordinate-wise median of the finite sets, each set's
// deviation from it is scaled down to at most clipFactor× the median
// deviation norm, and the scaled deviations are weight-averaged back
// onto the center. A lone norm-bomb set keeps its vote direction but
// loses its magnitude. nil weights means uniform; weights of dropped
// (non-finite) sets are excluded from the normalisation.
func ClippedAverage(dst []*nn.Param, sets [][]*nn.Param, weights []float64) error {
	if weights != nil && len(weights) != len(sets) {
		return fmt.Errorf("paramsync: %d weights for %d parameter sets", len(weights), len(sets))
	}
	valid, idx, err := finiteSets(dst, sets)
	if err != nil {
		return err
	}
	n := len(valid)
	w := make([]float64, n)
	total := 0.0
	for vi, si := range idx {
		w[vi] = 1
		if weights != nil {
			if weights[si] < 0 {
				return fmt.Errorf("paramsync: negative weight %v", weights[si])
			}
			w[vi] = weights[si]
		}
		total += w[vi]
	}
	if total <= 0 {
		return fmt.Errorf("paramsync: weights of finite sets sum to %v, want positive", total)
	}

	// Coordinate-wise median center.
	center := make([]*tensor.Tensor, len(dst))
	vals := make([]float64, n)
	for pi := range dst {
		center[pi] = tensor.New(valid[0][pi].Value.Shape()...)
		cd := center[pi].Data()
		for i := range cd {
			for si, set := range valid {
				vals[si] = set[pi].Value.Data()[i]
			}
			sort.Float64s(vals)
			if n%2 == 1 {
				cd[i] = vals[n/2]
			} else {
				cd[i] = (vals[n/2-1] + vals[n/2]) / 2
			}
		}
	}

	// Per-set deviation norms from the center, and their median.
	devNorm := make([]float64, n)
	for si, set := range valid {
		var sq float64
		for pi := range dst {
			cd := center[pi].Data()
			sd := set[pi].Value.Data()
			for i, c := range cd {
				d := sd[i] - c
				sq += d * d
			}
		}
		devNorm[si] = math.Sqrt(sq)
	}
	sorted := append([]float64(nil), devNorm...)
	sort.Float64s(sorted)
	medDev := sorted[n/2]
	if n%2 == 0 {
		medDev = (sorted[n/2-1] + sorted[n/2]) / 2
	}

	const clipFactor = 2.0
	bound := clipFactor * medDev
	for pi := range dst {
		acc := tensor.New(valid[0][pi].Value.Shape()...)
		acc.CopyFrom(center[pi])
		ad := acc.Data()
		cd := center[pi].Data()
		for si, set := range valid {
			scale := w[si] / total
			if devNorm[si] > bound {
				// bound == 0 (median set identical to the center) fully
				// zeroes an outlier's pull rather than leaving it
				// unclipped.
				scale *= bound / devNorm[si]
			}
			sd := set[pi].Value.Data()
			for i := range ad {
				ad[i] += scale * (sd[i] - cd[i])
			}
		}
		dst[pi].Value.CopyFrom(acc)
	}
	return nil
}
