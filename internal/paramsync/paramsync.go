// Package paramsync is the shared parameter-aggregation kernel behind
// every place the system averages model replicas: the FedAvg baseline
// (internal/baseline), the cluster worker pool's periodic replica sync
// (internal/cluster), and pool-checkpoint restore across differing
// worker counts (internal/core). It was extracted from TrainFedAvg so
// the cluster's data-parallel replicas reuse the exact averaging rule
// the baseline already proved, rather than growing a second one.
//
// All functions operate on []*nn.Param slices as returned by
// Sequential.Params() / PaperCNN.Net.Params(): position i of every
// slice must be the same logical parameter (same shape), which holds
// for structurally identical stacks built from the same config.
package paramsync

import (
	"fmt"
	"math"

	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/tensor"
)

// Copy overwrites dst's parameter values with src's. Gradients and
// optimiser slots are untouched. The two sets must be structurally
// identical (same length, same per-position shapes).
func Copy(dst, src []*nn.Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("paramsync: copy %d params into %d", len(src), len(dst))
	}
	// Refuse to propagate poison: fanning a NaN out to every replica is
	// how one bad sync kills a whole pool. The check runs before any
	// write so a rejected copy leaves dst untouched.
	if !setFinite(src) {
		return fmt.Errorf("paramsync: copy source: %w", ErrNonFinite)
	}
	for i := range dst {
		dst[i].Value.CopyFrom(src[i].Value)
	}
	return nil
}

// Average computes the weighted average of the parameter sets into dst
// (dst may alias one of the sets — every source value is read through a
// private accumulator before dst is written). weights is normalised
// internally; nil means uniform. This is TrainFedAvg's example-weighted
// aggregation rule, generalised to any structurally identical sets.
func Average(dst []*nn.Param, sets [][]*nn.Param, weights []float64) error {
	if len(sets) == 0 {
		return fmt.Errorf("paramsync: average of zero parameter sets")
	}
	if weights != nil && len(weights) != len(sets) {
		return fmt.Errorf("paramsync: %d weights for %d parameter sets", len(weights), len(sets))
	}
	total := 0.0
	if weights == nil {
		total = float64(len(sets))
	} else {
		for _, w := range weights {
			if w < 0 {
				return fmt.Errorf("paramsync: negative weight %v", w)
			}
			total += w
		}
		if total <= 0 {
			return fmt.Errorf("paramsync: weights sum to %v, want positive", total)
		}
	}
	for si, set := range sets {
		if len(set) != len(dst) {
			return fmt.Errorf("paramsync: averaging %d params into %d", len(set), len(dst))
		}
		// A single NaN would poison every coordinate of the mean; plain
		// Average refuses rather than blending it in (the robust
		// variants in robust.go drop poisoned sets instead).
		if !setFinite(set) {
			return fmt.Errorf("paramsync: set %d: %w", si, ErrNonFinite)
		}
	}
	for pi := range dst {
		acc := tensor.New(sets[0][pi].Value.Shape()...)
		for si, set := range sets {
			w := 1.0 / total
			if weights != nil {
				w = weights[si] / total
			}
			acc.AXPY(w, set[pi].Value)
		}
		dst[pi].Value.CopyFrom(acc)
	}
	return nil
}

// Divergence measures how far the replica parameter sets have drifted
// apart: the root-mean-square distance of each set from the elementwise
// mean, normalised by the mean's own RMS magnitude. 0 means the
// replicas are identical; values approaching 1 mean the replicas differ
// from each other about as much as the weights differ from zero — the
// signal that SyncEvery is set too wide. Fewer than two sets diverge by
// definition 0.
func Divergence(sets [][]*nn.Param) float64 {
	if len(sets) < 2 {
		return 0
	}
	var sqDist, sqNorm float64
	var n int
	params := len(sets[0])
	for pi := 0; pi < params; pi++ {
		mean := tensor.New(sets[0][pi].Value.Shape()...)
		for _, set := range sets {
			mean.AXPY(1/float64(len(sets)), set[pi].Value)
		}
		md := mean.Data()
		for _, set := range sets {
			sd := set[pi].Value.Data()
			for i, m := range md {
				d := sd[i] - m
				sqDist += d * d
			}
		}
		for _, m := range md {
			sqNorm += m * m
		}
		n += len(md)
	}
	if n == 0 || sqNorm == 0 {
		return 0
	}
	rmsDist := sqDist / float64(n*len(sets))
	rmsNorm := sqNorm / float64(n)
	return math.Sqrt(rmsDist) / math.Sqrt(rmsNorm)
}
