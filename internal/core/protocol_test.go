package core

import (
	"testing"
	"time"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/transport"
)

// buildProtocolDeployment wires a 2-client deployment for protocol tests.
func buildProtocolDeployment(t *testing.T, policy string) *Deployment {
	t.Helper()
	ds := smallData(t, 64, 41)
	shards, err := data.PartitionIID(ds, 2, mathx.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployment(Config{
		Model: smallModel(), Cut: 1, Clients: 2, Seed: 5,
		BatchSize: 8, LR: 0.05, QueuePolicy: policy,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

func TestProtocolOverInMemoryConns(t *testing.T) {
	dep := buildProtocolDeployment(t, "fifo")
	const steps = 4

	serverEnds := make([]transport.Conn, 2)
	clientEnds := make([]transport.Conn, 2)
	for i := range serverEnds {
		serverEnds[i], clientEnds[i] = transport.NewPair(4)
	}

	errs := make(chan error, 3)
	for i, es := range dep.Clients {
		i, es := i, es
		go func() {
			err := RunClient(es, clientEnds[i], steps, nil)
			clientEnds[i].Close()
			errs <- err
		}()
	}
	go func() { errs <- Serve(dep.Server, serverEnds, nil) }()

	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if dep.Server.Steps() != 2*steps {
		t.Fatalf("server processed %d batches, want %d", dep.Server.Steps(), 2*steps)
	}
	for i, es := range dep.Clients {
		if es.Steps() != steps {
			t.Fatalf("client %d contributed %d steps", i, es.Steps())
		}
		if es.HasOutstanding() {
			t.Fatalf("client %d still outstanding", i)
		}
	}
}

func TestProtocolOverTCP(t *testing.T) {
	dep := buildProtocolDeployment(t, "fifo")
	const steps = 3

	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	serverErr := make(chan error, 1)
	go func() {
		conns := make([]transport.Conn, 2)
		for i := range conns {
			c, err := lis.Accept()
			if err != nil {
				serverErr <- err
				return
			}
			conns[i] = c
		}
		serverErr <- Serve(dep.Server, conns, nil)
	}()

	clientErrs := make(chan error, 2)
	for i, es := range dep.Clients {
		es := es
		_ = i
		go func() {
			conn, err := transport.Dial(lis.Addr())
			if err != nil {
				clientErrs <- err
				return
			}
			err = RunClient(es, conn, steps, nil)
			conn.Close()
			clientErrs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-clientErrs; err != nil {
			t.Fatal(err)
		}
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
	if dep.Server.Steps() != 2*steps {
		t.Fatalf("server processed %d batches, want %d", dep.Server.Steps(), 2*steps)
	}
}

func TestRunClientValidation(t *testing.T) {
	if err := RunClient(nil, nil, 1, nil); err == nil {
		t.Fatal("nil args accepted")
	}
	dep := buildProtocolDeployment(t, "fifo")
	a, _ := transport.NewPair(1)
	if err := RunClient(dep.Clients[0], a, 0, nil); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestServeValidation(t *testing.T) {
	if err := Serve(nil, nil, nil); err == nil {
		t.Fatal("nil server accepted")
	}
	dep := buildProtocolDeployment(t, "fifo")
	if err := Serve(dep.Server, nil, nil); err == nil {
		t.Fatal("no connections accepted")
	}
}

// TestServeOutlivesFastClient regresses a departure-accounting deadlock:
// Serve decremented its live count both on a client's done note and on
// its connection closing, so one fast client leaving (two decrements)
// ended a 2-client serve while the slow client still awaited gradients,
// hanging it forever. The fast client here finishes completely before
// the slow one sends anything, which made the old double-count
// deterministic.
func TestServeOutlivesFastClient(t *testing.T) {
	dep := buildProtocolDeployment(t, "fifo")
	const steps = 2

	serverEnds := make([]transport.Conn, 2)
	clientEnds := make([]transport.Conn, 2)
	for i := range serverEnds {
		serverEnds[i], clientEnds[i] = transport.NewPair(4)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(dep.Server, serverEnds, nil) }()

	// Fast client: full run, done, close — before the slow one starts.
	if err := RunClient(dep.Clients[0], clientEnds[0], steps, nil); err != nil {
		t.Fatal(err)
	}
	clientEnds[0].Close()
	// Give Serve time to consume both of the fast client's departure
	// signals (done note, then connection close); the double-count bug
	// ended the loop right here, before the slow client ever spoke.
	time.Sleep(100 * time.Millisecond)

	// Slow client: must still be served.
	slowDone := make(chan error, 1)
	go func() {
		err := RunClient(dep.Clients[1], clientEnds[1], steps, nil)
		clientEnds[1].Close()
		slowDone <- err
	}()
	select {
	case err := <-slowDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("slow client starved: Serve ended after the fast client left")
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after all clients left")
	}
	if dep.Server.Steps() != 2*steps {
		t.Fatalf("server processed %d batches, want %d", dep.Server.Steps(), 2*steps)
	}
}
