// Package core implements the paper's contribution: spatio-temporal split
// learning. A deep network is cut after the first k hidden blocks; M
// end-systems each hold a private copy of the layers below the cut and
// their own local training data, while one centralized server holds the
// shared layers above the cut, an output layer, and the parameter-
// scheduling queue that absorbs geo-distributed arrival skew.
//
// The package provides the model-splitting machinery (Split, Deployment),
// the two protocol actors (EndSystem, Server), a deterministic
// event-driven simulation over virtual time (Simulation) reproducing the
// paper's experiments, and connection-driven loops (ServeConn, RunClient)
// that speak the same protocol over real transports.
package core

import (
	"fmt"

	"github.com/stsl/stsl/internal/nn"
)

// Split partitions a built Fig-3 CNN at the given cut point (in paper
// notation: cut=k puts blocks L1..Lk on the end-system; cut=0 puts
// everything on the server). The returned Sequentials share layer objects
// with the original network — training the parts trains the whole.
func Split(m *nn.PaperCNN, cut int) (client, server *nn.Sequential, err error) {
	idx, err := m.CutIndex(cut)
	if err != nil {
		return nil, nil, err
	}
	layers := m.Net.Layers()
	client, err = nn.NewSequential(fmt.Sprintf("client-cut%d", cut), layers[:idx]...)
	if err != nil {
		return nil, nil, err
	}
	server, err = nn.NewSequential(fmt.Sprintf("server-cut%d", cut), layers[idx:]...)
	if err != nil {
		return nil, nil, err
	}
	return client, server, nil
}
