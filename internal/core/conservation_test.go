package core

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/simnet"
)

// TestSimulationConservationQuick is a property test over random
// topologies: every batch a client contributes is processed exactly once
// by the server and exactly one gradient returns — no loss, duplication,
// or deadlock under any latency assignment or queue policy.
func TestSimulationConservationQuick(t *testing.T) {
	policies := []string{"fifo", "staleness", "fair-rr", "sync-rounds"}
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		clients := 1 + r.Intn(4)
		steps := 1 + r.Intn(4)
		policy := policies[r.Intn(len(policies))]

		ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(16*clients, seed)
		if err != nil {
			return false
		}
		shards, err := data.PartitionIID(ds, clients, r.Split())
		if err != nil {
			return false
		}
		dep, err := NewDeployment(Config{
			Model: smallModel(), Cut: 1 + r.Intn(2), Clients: clients, Seed: seed,
			BatchSize: 4, LR: 0.01, QueuePolicy: policy,
		}, shards)
		if err != nil {
			return false
		}
		paths := make([]*simnet.Path, clients)
		for i := range paths {
			paths[i], err = simnet.NewSymmetricPath(simnet.Uniform{
				Lo: time.Duration(r.Intn(5)) * time.Millisecond,
				Hi: time.Duration(5+r.Intn(100)) * time.Millisecond,
			}, 0, r.Split())
			if err != nil {
				return false
			}
		}
		sim, err := NewSimulation(dep, SimConfig{
			Paths:             paths,
			MaxStepsPerClient: steps,
			ServerProcTime:    time.Duration(r.Intn(3)) * time.Millisecond,
		})
		if err != nil {
			return false
		}
		res, err := sim.Run()
		if err != nil {
			return false
		}
		total := 0
		for i, got := range res.StepsPerClient {
			if got != steps {
				t.Logf("seed %d policy %s: client %d did %d/%d steps", seed, policy, i, got, steps)
				return false
			}
			total += got
		}
		if res.ServerSteps != total {
			t.Logf("seed %d policy %s: server %d != clients %d", seed, policy, res.ServerSteps, total)
			return false
		}
		// Every client idle at the end (all gradients returned).
		for i, c := range dep.Clients {
			if c.HasOutstanding() {
				t.Logf("seed %d policy %s: client %d still outstanding", seed, policy, i)
				return false
			}
		}
		// Queue fully drained.
		if dep.Server.Queue.Len() != 0 {
			t.Logf("seed %d policy %s: %d items left in queue", seed, policy, dep.Server.Queue.Len())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
