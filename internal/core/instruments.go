package core

import (
	"time"

	"github.com/stsl/stsl/internal/obs"
)

// ServerInstruments is the model server's telemetry bundle. It hangs
// off Server.Instr and is observed from whichever goroutine drives the
// server — the simulation's event loop or the cluster worker — so the
// step counter and per-stage timings are directly comparable between
// the virtual-time and live runtimes: same names, same code path.
// nil fields (or a nil bundle) are no-ops.
type ServerInstruments struct {
	// Steps counts batches processed (stsl_server_steps_total); it
	// advances by the coalesced batch size, keeping the axis "client
	// batches served" at any coalescing setting.
	Steps *obs.Counter
	// Loss tracks the most recent window-averaged training loss
	// (stsl_server_loss).
	Loss *obs.Gauge
	// Forward times the shared stack's forward pass + loss
	// (stsl_server_forward_seconds), once per pass (not per item).
	Forward *obs.Histogram
	// Backward times backprop + the optimiser step
	// (stsl_server_backward_seconds), once per pass.
	Backward *obs.Histogram
	// CoalesceSize is the distribution of items per coalesced pass
	// (stsl_server_coalesce_size).
	CoalesceSize *obs.Histogram
}

// NewServerInstruments registers the server metric family on reg. A nil
// reg returns all-nil (no-op) instruments.
func NewServerInstruments(reg *obs.Registry) *ServerInstruments {
	return &ServerInstruments{
		Steps:        reg.Counter("stsl_server_steps_total", nil),
		Loss:         reg.Gauge("stsl_server_loss", nil),
		Forward:      reg.Histogram("stsl_server_forward_seconds", nil),
		Backward:     reg.Histogram("stsl_server_backward_seconds", nil),
		CoalesceSize: reg.Histogram("stsl_server_coalesce_size", nil),
	}
}

// observePass records one completed forward/backward pass over n items.
func (si *ServerInstruments) observePass(n int, fwd, bwd time.Duration, loss float64) {
	if si == nil {
		return
	}
	si.Steps.Add(int64(n))
	si.Loss.Set(loss)
	si.Forward.ObserveDuration(fwd)
	si.Backward.ObserveDuration(bwd)
	si.CoalesceSize.Observe(float64(n))
}
