package core

import (
	"strings"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/queue"
	"github.com/stsl/stsl/internal/simnet"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

// smallModel is a fast CNN config used across core tests.
func smallModel() nn.PaperCNNConfig {
	return nn.PaperCNNConfig{
		InChannels: 3, Height: 8, Width: 8,
		Filters: []int{4, 8},
		Hidden:  16,
		Classes: 4,
	}
}

func smallData(t *testing.T, n int, seed uint64) *data.Dataset {
	t.Helper()
	ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func constPaths(n int, d time.Duration) []*simnet.Path {
	paths := make([]*simnet.Path, n)
	for i := range paths {
		r := mathx.NewRNG(uint64(1000 + i))
		p, err := simnet.NewSymmetricPath(simnet.Constant{D: d}, 0, r)
		if err != nil {
			panic(err)
		}
		paths[i] = p
	}
	return paths
}

func TestSplitPartitionsLayers(t *testing.T) {
	r := mathx.NewRNG(1)
	m, err := nn.BuildPaperCNN(smallModel(), r)
	if err != nil {
		t.Fatal(err)
	}
	total := m.Net.Len()
	for cut := 0; cut <= m.MaxCut(); cut++ {
		client, server, err := Split(m, cut)
		if err != nil {
			t.Fatal(err)
		}
		if client.Len()+server.Len() != total {
			t.Fatalf("cut %d: %d + %d != %d layers", cut, client.Len(), server.Len(), total)
		}
		// The composition must equal the whole net.
		x := smallData(t, 2, 5).X
		whole := m.Net.Forward(x, false)
		split := server.Forward(client.Forward(x, false), false)
		if !whole.Equal(split, 1e-12) {
			t.Fatalf("cut %d: split composition differs from monolithic forward", cut)
		}
	}
	if _, _, err := Split(m, 99); err == nil {
		t.Fatal("invalid cut accepted")
	}
}

func TestEndSystemLockStep(t *testing.T) {
	ds := smallData(t, 32, 2)
	batcher, err := data.NewBatcher(ds, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := mathx.NewRNG(3)
	m, err := nn.BuildPaperCNN(smallModel(), r)
	if err != nil {
		t.Fatal(err)
	}
	lower, _, err := Split(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	o, err := opt.NewSGD(opt.Config{LR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	es, err := NewEndSystem(0, lower, o, batcher)
	if err != nil {
		t.Fatal(err)
	}

	msg, err := es.ProduceBatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != transport.MsgActivation || msg.Seq != 0 || len(msg.Labels) != 8 {
		t.Fatalf("unexpected activation message %+v", msg)
	}
	// Producing again without the gradient must fail.
	if _, err := es.ProduceBatch(0); err == nil {
		t.Fatal("second produce while outstanding accepted")
	}
	// Wrong-seq gradient must fail.
	bad := &transport.Message{Type: transport.MsgGradient, Seq: 5, Payload: msg.Payload}
	if err := es.ApplyGradient(bad); err == nil {
		t.Fatal("wrong-seq gradient accepted")
	}
	good := &transport.Message{Type: transport.MsgGradient, Seq: 0, Payload: msg.Payload.Clone()}
	if err := es.ApplyGradient(good); err != nil {
		t.Fatal(err)
	}
	if es.HasOutstanding() {
		t.Fatal("still outstanding after gradient")
	}
	if es.Steps() != 1 {
		t.Fatalf("Steps = %d", es.Steps())
	}
}

func TestServerProcessing(t *testing.T) {
	r := mathx.NewRNG(4)
	m, err := nn.BuildPaperCNN(smallModel(), r)
	if err != nil {
		t.Fatal(err)
	}
	_, upper, err := Split(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	o, err := opt.NewSGD(opt.Config{LR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := newQueuePolicy("fifo", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(upper, o, pol)
	if err != nil {
		t.Fatal(err)
	}
	// Empty queue: not ok, no error.
	if _, ok, err := srv.ProcessNext(0); ok || err != nil {
		t.Fatalf("empty queue ProcessNext = ok=%v err=%v", ok, err)
	}
	// Activation of shape the upper stack expects: (N,4,4,4) after block 1.
	act := smallData(t, 2, 6).X
	lower, _, err := Split(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	smashed := lower.Forward(act, false)
	msg := &transport.Message{
		Type: transport.MsgActivation, ClientID: 3, Seq: 9,
		Payload: smashed, Labels: []int{0, 1}, SentAt: time.Millisecond,
	}
	if err := srv.Enqueue(msg, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	reply, ok, err := srv.ProcessNext(3 * time.Millisecond)
	if err != nil || !ok {
		t.Fatalf("ProcessNext: ok=%v err=%v", ok, err)
	}
	if reply.Type != transport.MsgGradient || reply.ClientID != 3 || reply.Seq != 9 {
		t.Fatalf("bad reply %+v", reply)
	}
	if !reply.Payload.SameShape(smashed) {
		t.Fatal("gradient shape does not match activation shape")
	}
	if srv.Steps() != 1 {
		t.Fatalf("Steps = %d", srv.Steps())
	}
	// Wrong message type rejected at enqueue.
	if err := srv.Enqueue(reply, 0); err == nil {
		t.Fatal("gradient enqueued as activation")
	}
}

// TestServerProcessBatch covers the coalesced pass: a compatible batch
// yields one reply per item with per-client gradient slices, and every
// failure path — incompatible stacking, geometry the stack rejects,
// out-of-range labels — is caught in pre-flight, before the model
// mutates at all (checked through BatchNorm running statistics, which a
// training forward would update).
func TestServerProcessBatch(t *testing.T) {
	cfg := smallModel()
	cfg.BatchNorm = true // running stats make hidden state mutation observable
	r := mathx.NewRNG(11)
	m, err := nn.BuildPaperCNN(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	lower, upper, err := Split(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	o, err := opt.NewSGD(opt.Config{LR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(upper, o, newTestPolicy(t))
	if err != nil {
		t.Fatal(err)
	}
	makeItem := func(client, n int, seed uint64) queue.Item {
		act := lower.Forward(smallData(t, n, seed).X, false)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i % 4
		}
		return queue.Item{Msg: &transport.Message{
			Type: transport.MsgActivation, ClientID: client, Seq: client,
			Payload: act, Labels: labels,
		}}
	}

	// Success: two items, one stacked pass, per-item replies.
	items := []queue.Item{makeItem(0, 2, 21), makeItem(1, 3, 22)}
	replies, err := srv.ProcessBatch(items, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Fatalf("%d replies for 2 items", len(replies))
	}
	for i, reply := range replies {
		if reply.ClientID != i || !reply.Payload.SameShape(items[i].Msg.Payload) {
			t.Fatalf("reply %d: client %d, gradient shape %v for activation %v",
				i, reply.ClientID, reply.Payload.Shape(), items[i].Msg.Payload.Shape())
		}
	}
	if srv.Steps() != 2 {
		t.Fatalf("Steps = %d after a coalesced pass over 2 items", srv.Steps())
	}

	// Every failure must leave the model bitwise-untouched — inference
	// forwards read the BatchNorm running statistics, so identical probe
	// outputs prove no training forward ran.
	probe := items[0].Msg.Payload
	before := srv.Stack.Forward(probe, false)
	stepsBefore := srv.Steps()
	bad := []struct {
		name, wantErr string
		items         []queue.Item
	}{
		{"incompatible-stack", "incompatible", []queue.Item{
			makeItem(0, 2, 23),
			{Msg: &transport.Message{Type: transport.MsgActivation, ClientID: 1,
				Payload: tensor.New(2, 7), Labels: []int{0, 1}}},
		}},
		{"wrong-geometry", "does not fit", []queue.Item{
			{Msg: &transport.Message{Type: transport.MsgActivation, ClientID: 0,
				Payload: tensor.New(2, 9, 4, 4), Labels: []int{0, 1}}},
			{Msg: &transport.Message{Type: transport.MsgActivation, ClientID: 1,
				Payload: tensor.New(2, 9, 4, 4), Labels: []int{0, 1}}},
		}},
		{"label-out-of-range", "out of range", func() []queue.Item {
			poisoned := makeItem(1, 2, 24)
			poisoned.Msg.Labels[1] = 99
			return []queue.Item{makeItem(0, 2, 25), poisoned}
		}()},
	}
	for _, tc := range bad {
		_, err := srv.ProcessBatch(tc.items, 0)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
	after := srv.Stack.Forward(probe, false)
	if !after.Equal(before, 0) {
		t.Fatal("failed coalesced batches mutated model state (BatchNorm statistics)")
	}
	if srv.Steps() != stepsBefore {
		t.Fatalf("failed batches advanced Steps from %d to %d", stepsBefore, srv.Steps())
	}
}

func newTestPolicy(t *testing.T) queue.Policy {
	t.Helper()
	pol, err := newQueuePolicy("fifo", 1)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// TestSplitEquivalentToMonolithic is invariant #1 from DESIGN.md: one
// client, shared init, zero latency, FIFO — split training must produce
// bitwise-identical weights to training the monolithic network on the
// same batch stream.
func TestSplitEquivalentToMonolithic(t *testing.T) {
	const (
		seed      = uint64(42)
		batchSize = 8
		steps     = 6
		lr        = 0.05
	)
	ds := smallData(t, 64, 7)

	for _, cut := range []int{0, 1, 2} {
		// --- split run ---
		dep, err := NewDeployment(Config{
			Model: smallModel(), Cut: cut, Clients: 1, Seed: seed,
			SharedClientInit: true, BatchSize: batchSize, LR: lr,
		}, []*data.Dataset{ds})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSimulation(dep, SimConfig{
			Paths:             constPaths(1, 0),
			MaxStepsPerClient: steps,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}

		// --- monolithic run on the same batch stream ---
		mono, err := nn.BuildPaperCNN(smallModel(), mathx.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		// Same batcher construction as NewDeployment uses for client 0.
		batcher, err := data.NewBatcher(ds, batchSize, mathx.NewRNG(seed+0*7919+13))
		if err != nil {
			t.Fatal(err)
		}
		o, err := opt.NewSGD(opt.Config{LR: lr})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			batch, ok := batcher.Next()
			if !ok {
				batch, _ = batcher.Next()
			}
			mono.Net.ZeroGrad()
			logits := mono.Net.Forward(batch.X, true)
			_, grad, err := nn.SoftmaxCrossEntropy(logits, batch.Y)
			if err != nil {
				t.Fatal(err)
			}
			mono.Net.Backward(grad)
			o.Step(mono.Net.Params())
		}

		// --- compare every parameter ---
		splitParams := append(dep.Clients[0].Stack.Params(), dep.Server.Stack.Params()...)
		monoParams := mono.Net.Params()
		if len(splitParams) != len(monoParams) {
			t.Fatalf("cut %d: param count %d vs %d", cut, len(splitParams), len(monoParams))
		}
		for i, sp := range splitParams {
			if !sp.Value.Equal(monoParams[i].Value, 0) {
				t.Fatalf("cut %d: parameter %s diverged from monolithic training", cut, sp.Name)
			}
		}
	}
}

// TestSimulationDeterminism is invariant #4: identical seeds produce
// identical final weights and identical virtual-time traces.
func TestSimulationDeterminism(t *testing.T) {
	run := func() (*Deployment, *SimResult) {
		ds := smallData(t, 80, 11)
		shards, err := data.PartitionDirichlet(ds, 2, 0.5, mathx.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		dep, err := NewDeployment(Config{
			Model: smallModel(), Cut: 1, Clients: 2, Seed: 99,
			BatchSize: 8, LR: 0.05,
		}, shards)
		if err != nil {
			t.Fatal(err)
		}
		paths := make([]*simnet.Path, 2)
		for i := range paths {
			p, err := simnet.NewSymmetricPath(
				simnet.Uniform{Lo: time.Millisecond, Hi: 10 * time.Millisecond}, 0,
				mathx.NewRNG(uint64(55+i)))
			if err != nil {
				t.Fatal(err)
			}
			paths[i] = p
		}
		sim, err := NewSimulation(dep, SimConfig{Paths: paths, MaxStepsPerClient: 5})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return dep, res
	}
	depA, resA := run()
	depB, resB := run()
	if resA.VirtualDuration != resB.VirtualDuration {
		t.Fatalf("virtual durations differ: %v vs %v", resA.VirtualDuration, resB.VirtualDuration)
	}
	pa := append(depA.Clients[0].Stack.Params(), depA.Server.Stack.Params()...)
	pb := append(depB.Clients[0].Stack.Params(), depB.Server.Stack.Params()...)
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value, 0) {
			t.Fatalf("parameter %s differs between identical runs", pa[i].Name)
		}
	}
}

func TestSimulationRespectsBudgets(t *testing.T) {
	ds := smallData(t, 64, 13)
	shards, err := data.PartitionIID(ds, 3, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployment(Config{
		Model: smallModel(), Cut: 1, Clients: 3, Seed: 7, BatchSize: 4, LR: 0.01,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(dep, SimConfig{
		Paths:             constPaths(3, time.Millisecond),
		MaxStepsPerClient: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, steps := range res.StepsPerClient {
		if steps != 4 {
			t.Fatalf("client %d contributed %d steps, want 4", i, steps)
		}
	}
	if res.ServerSteps != 12 {
		t.Fatalf("server processed %d, want 12", res.ServerSteps)
	}
}

// TestTemporalBiasUnderFIFO reproduces the §II phenomenon: with a far
// client and a virtual-time limit, FIFO lets near clients contribute far
// more updates, while sync-rounds equalises contributions.
func TestTemporalBiasUnderFIFO(t *testing.T) {
	build := func(policy string) *SimResult {
		ds := smallData(t, 120, 17)
		shards, err := data.PartitionIID(ds, 3, mathx.NewRNG(2))
		if err != nil {
			t.Fatal(err)
		}
		dep, err := NewDeployment(Config{
			Model: smallModel(), Cut: 1, Clients: 3, Seed: 21,
			BatchSize: 4, LR: 0.01, QueuePolicy: policy,
		}, shards)
		if err != nil {
			t.Fatal(err)
		}
		mk := func(d time.Duration, seed uint64) *simnet.Path {
			p, err := simnet.NewSymmetricPath(simnet.Constant{D: d}, 0, mathx.NewRNG(seed))
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		paths := []*simnet.Path{
			mk(time.Millisecond, 1),     // near
			mk(time.Millisecond, 2),     // near
			mk(100*time.Millisecond, 3), // far
		}
		sim, err := NewSimulation(dep, SimConfig{
			Paths:     paths,
			TimeLimit: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	fifo := build("fifo")
	if fifo.StepsPerClient[0] < 5*fifo.StepsPerClient[2] {
		t.Fatalf("FIFO: near client %d steps vs far %d — expected strong skew",
			fifo.StepsPerClient[0], fifo.StepsPerClient[2])
	}

	sync := build("sync-rounds")
	diff := sync.StepsPerClient[0] - sync.StepsPerClient[2]
	if diff < 0 {
		diff = -diff
	}
	if diff > 1 {
		t.Fatalf("sync-rounds: contributions not equalised: %v", sync.StepsPerClient)
	}
}

func TestDeploymentEvaluate(t *testing.T) {
	ds := smallData(t, 60, 19)
	shards, err := data.PartitionIID(ds, 2, mathx.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployment(Config{
		Model: smallModel(), Cut: 1, Clients: 2, Seed: 3, BatchSize: 8, LR: 0.05,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	test := smallData(t, 40, 23)
	mean, accs, err := dep.EvaluateMean(test)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 2 {
		t.Fatalf("per-client accs = %v", accs)
	}
	if mean < 0 || mean > 1 {
		t.Fatalf("mean accuracy %v out of [0,1]", mean)
	}
	if _, err := dep.Evaluate(5, test); err == nil {
		t.Fatal("bad client index accepted")
	}
}

func TestNewDeploymentValidation(t *testing.T) {
	ds := smallData(t, 16, 29)
	if _, err := NewDeployment(Config{Model: smallModel(), Clients: 2}, []*data.Dataset{ds}); err == nil {
		t.Fatal("shard/client mismatch accepted")
	}
	if _, err := NewDeployment(Config{Model: smallModel(), Optimizer: "lbfgs"}, []*data.Dataset{ds}); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
	if _, err := NewDeployment(Config{Model: smallModel(), QueuePolicy: "magic"}, []*data.Dataset{ds}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSimConfigValidation(t *testing.T) {
	ds := smallData(t, 16, 31)
	dep, err := NewDeployment(Config{Model: smallModel()}, []*data.Dataset{ds})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimulation(dep, SimConfig{}); err == nil {
		t.Fatal("no paths accepted")
	}
	if _, err := NewSimulation(dep, SimConfig{Paths: constPaths(1, 0)}); err == nil {
		t.Fatal("missing stop condition accepted")
	}
	if _, err := NewSimulation(nil, SimConfig{Paths: constPaths(1, 0), MaxStepsPerClient: 1}); err == nil {
		t.Fatal("nil deployment accepted")
	}
}

func TestCutZeroSendsRawData(t *testing.T) {
	// cut=0 is the paper's "Nothing (all layers in the server)" row: the
	// activation payload equals the raw batch — no privacy.
	ds := smallData(t, 16, 37)
	dep, err := NewDeployment(Config{
		Model: smallModel(), Cut: 0, Clients: 1, Seed: 1, BatchSize: 4, LR: 0.01,
	}, []*data.Dataset{ds})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := dep.Clients[0].ProduceBatch(0)
	if err != nil {
		t.Fatal(err)
	}
	s := msg.Payload.Shape()
	if s[1] != 3 || s[2] != 8 || s[3] != 8 {
		t.Fatalf("cut=0 payload shape %v is not raw input", s)
	}
}
