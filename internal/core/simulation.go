package core

import (
	"container/heap"
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/queue"
	"github.com/stsl/stsl/internal/simnet"
	"github.com/stsl/stsl/internal/transport"
)

// SimConfig parameterises the event-driven virtual-time simulation that
// reproduces the paper's spatio-temporal setting.
type SimConfig struct {
	// Paths gives each client's network path to the server; length must
	// equal the deployment's client count.
	Paths []*simnet.Path
	// MaxStepsPerClient bounds how many batches each client contributes
	// (0 = unbounded; then TimeLimit must be set).
	MaxStepsPerClient int
	// TimeLimit stops clients from producing new batches after this
	// virtual time (0 = no limit; then MaxStepsPerClient must be set).
	TimeLimit time.Duration
	// ServerProcTime models the server's per-batch compute time.
	ServerProcTime time.Duration
	// ClientProcTime models the client's per-batch compute time
	// (forward + backward).
	ClientProcTime time.Duration
	// RetransmitTimeout is the sender's loss-recovery timeout when a
	// link has a non-zero drop probability (default 200ms).
	RetransmitTimeout time.Duration
	// Trace, when true, records a queue-occupancy/event trace in the
	// result (one entry per simulation event).
	Trace bool
}

func (c SimConfig) validate(clients int) error {
	if len(c.Paths) != clients {
		return fmt.Errorf("core: %d paths for %d clients", len(c.Paths), clients)
	}
	for i, p := range c.Paths {
		if p == nil || p.Up == nil || p.Down == nil {
			return fmt.Errorf("core: path %d incomplete", i)
		}
	}
	if c.MaxStepsPerClient <= 0 && c.TimeLimit <= 0 {
		return fmt.Errorf("core: simulation needs MaxStepsPerClient or TimeLimit")
	}
	if c.ServerProcTime < 0 || c.ClientProcTime < 0 {
		return fmt.Errorf("core: negative processing time")
	}
	return nil
}

// SimResult summarises one simulation run.
type SimResult struct {
	// VirtualDuration is the virtual time at which the last event fired.
	VirtualDuration time.Duration
	// StepsPerClient counts batches contributed (gradient fully applied)
	// by each client.
	StepsPerClient []int
	// ServerSteps is the total number of batches the server processed.
	ServerSteps int
	// FinalLoss is the last window-averaged training loss.
	FinalLoss float64
	// Retransmits counts loss-recovery retransmissions across all links.
	Retransmits int
	// Trace holds the per-event trace when SimConfig.Trace is set.
	Trace []TraceEvent
}

// TraceEvent is one recorded simulation event.
type TraceEvent struct {
	At       time.Duration
	Kind     string // "activation-arrive", "server-done", "gradient-arrive"
	ClientID int
	QueueLen int
}

type eventKind uint8

const (
	evActivationArrive eventKind = iota + 1
	evServerDone
	evGradientArrive
)

// String implements fmt.Stringer for trace output.
func (k eventKind) String() string {
	switch k {
	case evActivationArrive:
		return "activation-arrive"
	case evServerDone:
		return "server-done"
	case evGradientArrive:
		return "gradient-arrive"
	default:
		return "unknown"
	}
}

type event struct {
	at   time.Duration
	seq  int // insertion order, breaks ties deterministically
	kind eventKind
	msg  *transport.Message
	// batch carries every gradient reply of a coalesced server pass for
	// evServerDone events; msg doubles as its first entry so tracing and
	// tie-breaking stay uniform. nil for single-reply and client events.
	batch []*transport.Message
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Simulation drives a Deployment through the split-learning protocol over
// simulated geo-distributed links and a virtual clock. All state is owned
// by the single goroutine calling Run; determinism follows from the
// deterministic event order and RNG streams.
type Simulation struct {
	dep   *Deployment
	cfg   SimConfig
	clock simnet.Clock

	events      eventHeap
	eventSeq    int
	serverBusy  bool
	done        []bool // per-client: will produce no more batches
	retransmits int
	trace       []TraceEvent
}

// NewSimulation validates and wires a simulation.
func NewSimulation(dep *Deployment, cfg SimConfig) (*Simulation, error) {
	if dep == nil {
		return nil, fmt.Errorf("core: nil deployment")
	}
	if err := cfg.validate(len(dep.Clients)); err != nil {
		return nil, err
	}
	return &Simulation{
		dep:  dep,
		cfg:  cfg,
		done: make([]bool, len(dep.Clients)),
	}, nil
}

func (s *Simulation) schedule(at time.Duration, kind eventKind, msg *transport.Message) {
	s.eventSeq++
	heap.Push(&s.events, event{at: at, seq: s.eventSeq, kind: kind, msg: msg})
}

// scheduleBatch schedules one server-done event carrying every reply of
// a coalesced pass.
func (s *Simulation) scheduleBatch(at time.Duration, replies []*transport.Message) {
	s.eventSeq++
	heap.Push(&s.events, event{at: at, seq: s.eventSeq, kind: evServerDone, msg: replies[0], batch: replies})
}

// batchCoalesce returns the deployment's coalescing cap, clamped to a
// minimum of one item per pass.
func (s *Simulation) batchCoalesce() int {
	if b := s.dep.Config.BatchCoalesce; b > 1 {
		return b
	}
	return 1
}

// payloadBytes estimates a message's wire size for bandwidth delay,
// honouring a sender-provided compressed size.
func payloadBytes(m *transport.Message) int {
	n := 64 // headers
	if m.WireSize > 0 {
		n += m.WireSize
	} else if m.Payload != nil {
		n += 8 * m.Payload.Size()
	}
	n += 4 * len(m.Labels)
	return n
}

// linkDelay computes the total delivery delay over a lossy link,
// including retransmission timeouts for dropped attempts.
func (s *Simulation) linkDelay(l *simnet.Link, sizeBytes int) (time.Duration, error) {
	rto := s.cfg.RetransmitTimeout
	if rto <= 0 {
		rto = 200 * time.Millisecond
	}
	total := time.Duration(0)
	const maxAttempts = 1000
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if !l.Dropped() {
			return total + l.Delay(sizeBytes), nil
		}
		s.retransmits++
		total += rto
	}
	return 0, fmt.Errorf("core: link dropped %d consecutive attempts (DropProb too high?)", maxAttempts)
}

// produceFrom asks client i for its next batch and schedules its arrival
// at the server; it marks the client done when budget or time is
// exhausted.
func (s *Simulation) produceFrom(i int, now time.Duration) error {
	client := s.dep.Clients[i]
	budgetLeft := s.cfg.MaxStepsPerClient <= 0 || client.Steps() < s.cfg.MaxStepsPerClient
	timeLeft := s.cfg.TimeLimit <= 0 || now < s.cfg.TimeLimit
	if !budgetLeft || !timeLeft {
		s.markDone(i)
		return nil
	}
	sendAt := now + s.cfg.ClientProcTime
	msg, err := client.ProduceBatch(sendAt)
	if err != nil {
		return err
	}
	delay, err := s.linkDelay(s.cfg.Paths[i].Up, payloadBytes(msg))
	if err != nil {
		return err
	}
	s.schedule(sendAt+delay, evActivationArrive, msg)
	return nil
}

func (s *Simulation) markDone(i int) {
	if s.done[i] {
		return
	}
	s.done[i] = true
	// A gated policy must stop waiting for this client.
	if sync, ok := s.dep.Server.Queue.(*queue.SyncRounds); ok {
		sync.Deactivate(i)
	}
}

// tryServe pops and processes queue items while the server is free and
// the policy yields work. With BatchCoalesce > 1 a single pass consumes
// up to that many queued activations, mirroring the live cluster
// worker's micro-batch coalescing in virtual time.
func (s *Simulation) tryServe(now time.Duration) error {
	if s.serverBusy {
		return nil
	}
	replies, ok, err := s.dep.Server.ProcessNextBatch(now, s.batchCoalesce())
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	s.serverBusy = true
	s.scheduleBatch(now+s.cfg.ServerProcTime, replies)
	return nil
}

// Run executes the simulation to completion and reports the result.
func (s *Simulation) Run() (*SimResult, error) {
	// Prime every client.
	for i := range s.dep.Clients {
		if err := s.produceFrom(i, 0); err != nil {
			return nil, err
		}
	}
	// Hard cap on event count guards against scheduling bugs looping
	// forever: every client batch generates exactly 3 events.
	maxEvents := 10 + 3*len(s.dep.Clients)
	if s.cfg.MaxStepsPerClient > 0 {
		maxEvents += 3 * len(s.dep.Clients) * s.cfg.MaxStepsPerClient
	} else {
		maxEvents += 30_000_000
	}
	processed := 0
	for s.events.Len() > 0 {
		if processed++; processed > maxEvents {
			return nil, fmt.Errorf("core: simulation exceeded %d events (scheduling bug?)", maxEvents)
		}
		ev, ok := heap.Pop(&s.events).(event)
		if !ok {
			return nil, fmt.Errorf("core: event heap corrupted")
		}
		s.clock.AdvanceTo(ev.at)
		now := s.clock.Now()
		if s.cfg.Trace {
			s.trace = append(s.trace, TraceEvent{
				At:       now,
				Kind:     ev.kind.String(),
				ClientID: ev.msg.ClientID,
				QueueLen: s.dep.Server.Queue.Len(),
			})
		}
		switch ev.kind {
		case evActivationArrive:
			if err := s.dep.Server.Enqueue(ev.msg, now); err != nil {
				return nil, err
			}
			if err := s.tryServe(now); err != nil {
				return nil, err
			}
		case evServerDone:
			s.serverBusy = false
			replies := ev.batch
			if replies == nil {
				replies = []*transport.Message{ev.msg}
			}
			// Every reply of a coalesced pass departs when the pass ends;
			// each rides its own client's downlink.
			for _, reply := range replies {
				cid := reply.ClientID
				delay, err := s.linkDelay(s.cfg.Paths[cid].Down, payloadBytes(reply))
				if err != nil {
					return nil, err
				}
				s.schedule(now+delay, evGradientArrive, reply)
			}
			if err := s.tryServe(now); err != nil {
				return nil, err
			}
		case evGradientArrive:
			cid := ev.msg.ClientID
			if err := s.dep.Clients[cid].ApplyGradient(ev.msg); err != nil {
				return nil, err
			}
			if err := s.produceFrom(cid, now); err != nil {
				return nil, err
			}
			// Production may have unblocked a gated policy.
			if err := s.tryServe(now); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("core: unknown event kind %d", ev.kind)
		}
	}
	res := &SimResult{
		VirtualDuration: s.clock.Now(),
		StepsPerClient:  make([]int, len(s.dep.Clients)),
		ServerSteps:     s.dep.Server.Steps(),
		FinalLoss:       s.dep.Server.Losses.Last(),
		Retransmits:     s.retransmits,
		Trace:           s.trace,
	}
	for i, c := range s.dep.Clients {
		res.StepsPerClient[i] = c.Steps()
	}
	return res, nil
}
