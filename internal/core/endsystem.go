package core

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/compress"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

// EndSystem is one client of the framework: it owns a private stack of
// the layers below the cut, its local dataset, and an optimiser for the
// private parameters. Raw inputs never leave the end-system; only the
// activations of its last local layer are transmitted.
//
// The split-learning protocol is lock-step per client: after sending an
// activation batch, the end-system must receive (and apply) the matching
// gradient before producing the next batch, because the layer stack
// caches one forward pass for the corresponding backward pass.
type EndSystem struct {
	// ID identifies the client in messages and metrics.
	ID int
	// Stack holds the private layers L1..Lk (possibly empty for cut=0).
	Stack *nn.Sequential
	// Optim updates the private parameters.
	Optim opt.Optimizer
	// Batcher streams the client's local shard.
	Batcher *data.Batcher

	seq         int
	epoch       int
	outstanding int // seq awaiting gradient, -1 when none
	// Augment, when non-nil, is applied to every batch before the
	// forward pass (training-time augmentation).
	Augment *data.Augmenter
	// QuantizeBits, when 8 or 16, applies lossy linear quantization to
	// outgoing activations — the model trains on what the server will
	// actually see, and the network is charged the compressed size.
	QuantizeBits int
	// WireDType tags outgoing activation payloads: tensor.Float32 ships
	// them as TSL2 float32 frames (half the wire bytes). The zero value
	// keeps the legacy TSL1 float64 frames.
	WireDType tensor.DType
}

// NewEndSystem wires a client together.
func NewEndSystem(id int, stack *nn.Sequential, optim opt.Optimizer, batcher *data.Batcher) (*EndSystem, error) {
	if stack == nil || optim == nil || batcher == nil {
		return nil, fmt.Errorf("core: end-system %d needs stack, optimiser and batcher", id)
	}
	return &EndSystem{ID: id, Stack: stack, Optim: optim, Batcher: batcher, outstanding: -1}, nil
}

// Steps returns the number of batches the client has sent so far.
func (e *EndSystem) Steps() int { return e.seq }

// Epoch returns the number of completed local epochs.
func (e *EndSystem) Epoch() int { return e.epoch }

// HasOutstanding reports whether the client is waiting for a gradient.
func (e *EndSystem) HasOutstanding() bool { return e.outstanding >= 0 }

// Outstanding returns the sequence number of the batch awaiting its
// gradient, or -1 when none is in flight. Reconnecting clients use it to
// tell the reply they are waiting for from a stale duplicate replayed by
// the network or the resume protocol.
func (e *EndSystem) Outstanding() int { return e.outstanding }

// ProduceBatch draws the next local batch, runs the private forward pass,
// and returns the activation message to send. It fails if a previous
// batch's gradient is still outstanding.
func (e *EndSystem) ProduceBatch(now time.Duration) (*transport.Message, error) {
	if e.HasOutstanding() {
		return nil, fmt.Errorf("core: end-system %d has batch %d outstanding", e.ID, e.outstanding)
	}
	batch, ok := e.Batcher.Next()
	if !ok {
		e.epoch++
		batch, ok = e.Batcher.Next()
		if !ok {
			return nil, fmt.Errorf("core: end-system %d has an empty dataset", e.ID)
		}
	}
	x := batch.X
	if e.Augment != nil {
		x = e.Augment.Apply(x)
	}
	act := e.Stack.Forward(x, true)
	wireSize := 0
	if e.QuantizeBits == 8 || e.QuantizeBits == 16 {
		deq, bytes, err := compress.RoundTrip(act, compress.Bits(e.QuantizeBits))
		if err != nil {
			return nil, fmt.Errorf("core: end-system %d quantize: %w", e.ID, err)
		}
		act = deq
		wireSize = bytes
	}
	msg := &transport.Message{
		Type:     transport.MsgActivation,
		ClientID: e.ID,
		Seq:      e.seq,
		Epoch:    e.epoch,
		SentAt:   now,
		Payload:  act.SetDType(e.WireDType),
		Labels:   batch.Y,
		WireSize: wireSize,
	}
	e.outstanding = e.seq
	e.seq++
	return msg, nil
}

// ApplyGradient consumes the server's gradient reply for the outstanding
// batch: it back-propagates through the private stack and steps the local
// optimiser.
func (e *EndSystem) ApplyGradient(msg *transport.Message) error {
	if msg.Type != transport.MsgGradient {
		return fmt.Errorf("core: end-system %d got %v, want gradient", e.ID, msg.Type)
	}
	if !e.HasOutstanding() || msg.Seq != e.outstanding {
		return fmt.Errorf("core: end-system %d got gradient for seq %d, outstanding %d",
			e.ID, msg.Seq, e.outstanding)
	}
	e.Stack.ZeroGrad()
	e.Stack.Backward(msg.Payload)
	e.Optim.Step(e.Stack.Params())
	e.outstanding = -1
	return nil
}
