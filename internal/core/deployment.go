package core

import (
	"fmt"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/queue"
	"github.com/stsl/stsl/internal/tensor"
)

// Config describes a spatio-temporal split-learning deployment.
type Config struct {
	// Model parameterises the Fig-3 CNN.
	Model nn.PaperCNNConfig
	// Cut is the split point in paper notation (0 = everything on the
	// server, k = blocks L1..Lk on each end-system).
	Cut int
	// Clients is the number of end-systems M.
	Clients int
	// Seed drives all weight initialisation deterministically.
	Seed uint64
	// SharedClientInit makes every client start from identical lower-layer
	// weights (the template's); when false each client gets a private
	// random initialisation, which is the paper's setting.
	SharedClientInit bool
	// BatchSize is the per-client mini-batch size.
	BatchSize int
	// LR is the SGD learning rate used by both sides.
	LR float64
	// Optimizer selects "sgd", "momentum" or "adam" (default sgd).
	Optimizer string
	// QueuePolicy selects the server's scheduling discipline: "fifo",
	// "staleness", "fair-rr" or "sync-rounds" (default fifo).
	QueuePolicy string
	// QuantizeBits, when 8 or 16, compresses uplink activations with
	// linear quantization (0 = raw float64). Gradients flow back through
	// the dequantized values (straight-through estimator).
	QuantizeBits int
	// BatchCoalesce caps how many compatible queued activations the
	// server stacks into one coalesced forward/backward pass (0 or 1 =
	// serve one at a time). Coalescing amortises the conv/matmul hot
	// path across clients; one coalesced pass is one optimiser step over
	// the combined batch. Both runtimes honour it: the virtual-time
	// simulation directly, the live cluster runtime as the default for
	// cluster.Config.BatchCoalesce. With sync-rounds the gated round is
	// atomic and may exceed this cap.
	BatchCoalesce int
	// DType selects the deployment's precision: "" or "float64" keeps
	// the full-precision kernels and TSL1 wire frames; "float32" runs
	// every client and server matmul in single precision and ships
	// activations and gradients as TSL2 float32 frames (half the wire
	// bytes). Both runtimes inherit it, so sim and live stay comparable.
	DType string
}

func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Optimizer == "" {
		c.Optimizer = "sgd"
	}
	if c.QueuePolicy == "" {
		c.QueuePolicy = "fifo"
	}
	return c
}

// Deployment is a fully wired split-learning system: M end-systems with
// private lower stacks plus the shared server.
type Deployment struct {
	Config  Config
	Clients []*EndSystem
	Server  *Server
	// model is the template used to derive shapes for evaluation.
	classes int
}

// NewDeployment builds the deployment. shards supplies each client's
// local dataset and must have exactly cfg.Clients entries.
func NewDeployment(cfg Config, shards []*data.Dataset) (*Deployment, error) {
	cfg = cfg.withDefaults()
	if len(shards) != cfg.Clients {
		return nil, fmt.Errorf("core: %d shards for %d clients", len(shards), cfg.Clients)
	}
	dtype, err := tensor.ParseDType(cfg.DType)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	template, err := nn.BuildPaperCNN(cfg.Model, mathx.NewRNG(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("core: build template: %w", err)
	}
	_, serverStack, err := Split(template, cfg.Cut)
	if err != nil {
		return nil, err
	}
	serverOpt, err := newOptimizer(cfg.Optimizer, cfg.LR)
	if err != nil {
		return nil, err
	}
	pol, err := newQueuePolicy(cfg.QueuePolicy, cfg.Clients)
	if err != nil {
		return nil, err
	}
	server, err := NewServer(serverStack, serverOpt, pol)
	if err != nil {
		return nil, err
	}
	// One config field switches the whole deployment: compute precision
	// on every stack, wire precision on every payload either direction.
	serverStack.SetDType(dtype)
	server.WireDType = dtype

	seedGen := mathx.NewRNG(cfg.Seed ^ 0xc2b2ae3d27d4eb4f)
	clients := make([]*EndSystem, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		clientSeed := cfg.Seed
		if !cfg.SharedClientInit {
			clientSeed = seedGen.Uint64()
		}
		// Rebuild a CNN from the client seed and keep only the lower
		// layers; with SharedClientInit this reproduces the template's
		// lower weights exactly (same seed, same build order).
		cnn, err := nn.BuildPaperCNN(cfg.Model, mathx.NewRNG(clientSeed))
		if err != nil {
			return nil, fmt.Errorf("core: build client %d: %w", i, err)
		}
		lower, _, err := Split(cnn, cfg.Cut)
		if err != nil {
			return nil, err
		}
		clientOpt, err := newOptimizer(cfg.Optimizer, cfg.LR)
		if err != nil {
			return nil, err
		}
		batcher, err := data.NewBatcher(shards[i], cfg.BatchSize, mathx.NewRNG(cfg.Seed+uint64(i)*7919+13))
		if err != nil {
			return nil, fmt.Errorf("core: batcher for client %d: %w", i, err)
		}
		es, err := NewEndSystem(i, lower, clientOpt, batcher)
		if err != nil {
			return nil, err
		}
		if cfg.QuantizeBits != 0 {
			if cfg.QuantizeBits != 8 && cfg.QuantizeBits != 16 {
				return nil, fmt.Errorf("core: QuantizeBits must be 0, 8 or 16, got %d", cfg.QuantizeBits)
			}
			es.QuantizeBits = cfg.QuantizeBits
		}
		lower.SetDType(dtype)
		es.WireDType = dtype
		clients[i] = es
	}
	return &Deployment{
		Config:  cfg,
		Clients: clients,
		Server:  server,
		classes: shards[0].Classes,
	}, nil
}

// NewServerReplica builds one additional server structurally identical
// to d.Server — same stack shapes from the same seed, a fresh optimiser
// of the same kind — for a data-parallel worker pool. The replica's
// weights are the template's; the pool fans the primary's current
// weights (including any restored checkpoint) out before training. This
// is the standard cluster.Config.NewReplica factory.
func (d *Deployment) NewServerReplica() (*Server, error) {
	cfg := d.Config
	template, err := nn.BuildPaperCNN(cfg.Model, mathx.NewRNG(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("core: build replica template: %w", err)
	}
	_, serverStack, err := Split(template, cfg.Cut)
	if err != nil {
		return nil, err
	}
	serverOpt, err := newOptimizer(cfg.Optimizer, cfg.LR)
	if err != nil {
		return nil, err
	}
	pol, err := newQueuePolicy(cfg.QueuePolicy, cfg.Clients)
	if err != nil {
		return nil, err
	}
	replica, err := NewServer(serverStack, serverOpt, pol)
	if err != nil {
		return nil, err
	}
	// Replicas inherit the deployment precision; cfg.DType was validated
	// when the deployment was built.
	dtype, err := tensor.ParseDType(cfg.DType)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	serverStack.SetDType(dtype)
	replica.WireDType = dtype
	return replica, nil
}

func newOptimizer(name string, lr float64) (opt.Optimizer, error) {
	switch name {
	case "sgd":
		return opt.NewSGD(opt.Config{LR: lr})
	case "momentum":
		return opt.NewMomentum(opt.Config{LR: lr}, 0.9)
	case "adam":
		return opt.NewAdam(opt.Config{LR: lr})
	default:
		return nil, fmt.Errorf("core: unknown optimizer %q", name)
	}
}

func newQueuePolicy(name string, clients int) (queue.Policy, error) {
	if name == "sync-rounds" {
		ids := make([]int, clients)
		for i := range ids {
			ids[i] = i
		}
		return queue.NewSyncRounds(ids), nil
	}
	return queue.NewPolicy(name)
}

// Evaluate runs the test set through one client's private stack and the
// shared server stack (both in inference mode) and returns the confusion
// matrix.
func (d *Deployment) Evaluate(clientIdx int, test *data.Dataset) (*metrics.ConfusionMatrix, error) {
	if clientIdx < 0 || clientIdx >= len(d.Clients) {
		return nil, fmt.Errorf("core: client index %d out of range", clientIdx)
	}
	cm, err := metrics.NewConfusionMatrix(test.Classes)
	if err != nil {
		return nil, err
	}
	batcher, err := data.NewBatcher(test, 128, nil)
	if err != nil {
		return nil, err
	}
	client := d.Clients[clientIdx]
	for {
		batch, ok := batcher.Next()
		if !ok {
			break
		}
		act := client.Stack.Forward(batch.X, false)
		logits := d.Server.Stack.Forward(act, false)
		if err := cm.Add(nn.Predict(logits), batch.Y); err != nil {
			return nil, err
		}
	}
	return cm, nil
}

// EvaluateMean returns the mean test accuracy across all clients'
// pipelines — the deployment-level figure reported in the Table I
// reproduction — together with the per-client accuracies.
func (d *Deployment) EvaluateMean(test *data.Dataset) (float64, []float64, error) {
	accs := make([]float64, len(d.Clients))
	sum := 0.0
	for i := range d.Clients {
		cm, err := d.Evaluate(i, test)
		if err != nil {
			return 0, nil, err
		}
		accs[i] = cm.Accuracy()
		sum += accs[i]
	}
	return sum / float64(len(accs)), accs, nil
}
