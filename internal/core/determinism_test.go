package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/simnet"
)

// goldenRun executes one fixed-seed simulation — lossy heavy-tailed
// links, coalescing on, every RNG stream exercised — and renders its
// results as a metric table string, down to full float precision and
// exact virtual-time nanoseconds.
func goldenRun(t *testing.T) string {
	t.Helper()
	const clients = 3
	model := nn.PaperCNNConfig{
		InChannels: 3, Height: 8, Width: 8,
		Filters: []int{4, 8}, Hidden: 16, Classes: 4,
	}
	ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(96, 17)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.PartitionDirichlet(ds, clients, 0.5, mathx.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployment(Config{
		Model: model, Cut: 1, Clients: clients, Seed: 23,
		BatchSize: 8, LR: 0.05, QueuePolicy: "staleness", BatchCoalesce: 2,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]*simnet.Path, clients)
	for i := range paths {
		p, err := simnet.NewSymmetricPath(
			simnet.LogNormal{Mu: 3.0, Sigma: 0.5}, 1<<20, mathx.NewRNG(uint64(600+i)))
		if err != nil {
			t.Fatal(err)
		}
		p.Up.DropProb = 0.05 // exercises the retransmit path's RNG draws
		paths[i] = p
	}
	sim, err := NewSimulation(dep, SimConfig{
		Paths: paths, MaxStepsPerClient: 12,
		ServerProcTime: 3 * time.Millisecond, ClientProcTime: time.Millisecond,
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	table := metrics.NewTable("golden determinism run",
		"client", "steps", "final-loss", "virtual-ns", "retransmits", "events")
	for i, s := range res.StepsPerClient {
		table.AddRow(fmt.Sprintf("c%d", i), s,
			fmt.Sprintf("%.17g", res.FinalLoss),
			int64(res.VirtualDuration), res.Retransmits, len(res.Trace))
	}
	// The full event trace pins service order, not just totals: any
	// drift in queue discipline, RNG stream use, or tie-breaking shows
	// up here even when the aggregates happen to agree.
	out := table.String() + table.CSV()
	for _, ev := range res.Trace {
		out += fmt.Sprintf("%d %s c%d q%d\n", int64(ev.At), ev.Kind, ev.ClientID, ev.QueueLen)
	}
	return out
}

// TestGoldenDeterminism guards the virtual-clock invariant every parity
// test leans on: a fixed-seed Simulation must emit byte-identical metric
// tables — same losses to the last bit, same event order, same
// retransmit count — across two independent runs.
func TestGoldenDeterminism(t *testing.T) {
	first := goldenRun(t)
	second := goldenRun(t)
	if first != second {
		t.Fatalf("fixed-seed simulation is not deterministic:\n--- first run ---\n%s\n--- second run ---\n%s",
			first, second)
	}
	if len(first) == 0 {
		t.Fatal("golden run rendered nothing")
	}
	t.Logf("golden table (%d bytes) identical across runs", len(first))
}
