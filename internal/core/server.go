package core

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/queue"
	"github.com/stsl/stsl/internal/transport"
)

// Server is the centralized side of the framework: the shared layers
// above the cut plus the output layer, the parameter-scheduling queue of
// §II, and the optimiser for the shared parameters. One server instance
// serves every end-system; its layer stack therefore sees all clients'
// data (in activation form) and learns a single global upper model.
type Server struct {
	// Stack holds the shared layers Lk+1..LN and the dense head.
	Stack *nn.Sequential
	// Optim updates the shared parameters.
	Optim opt.Optimizer
	// Queue is the parameter-scheduling discipline.
	Queue queue.Policy
	// QueueMetrics records service statistics.
	QueueMetrics *queue.Metrics
	// Losses tracks the training loss curve (window-averaged).
	Losses *metrics.LossCurve

	steps int
}

// NewServer wires the centralized server together.
func NewServer(stack *nn.Sequential, optim opt.Optimizer, q queue.Policy) (*Server, error) {
	if stack == nil || optim == nil || q == nil {
		return nil, fmt.Errorf("core: server needs stack, optimiser and queue")
	}
	curve, err := metrics.NewLossCurve(10)
	if err != nil {
		return nil, err
	}
	return &Server{
		Stack:        stack,
		Optim:        optim,
		Queue:        q,
		QueueMetrics: queue.NewMetrics(),
		Losses:       curve,
	}, nil
}

// Steps returns the number of batches the server has processed.
func (s *Server) Steps() int { return s.steps }

// Enqueue admits an arriving activation message to the scheduling queue.
func (s *Server) Enqueue(msg *transport.Message, arrivedAt time.Duration) error {
	if msg.Type != transport.MsgActivation {
		return fmt.Errorf("core: server got %v, want activation", msg.Type)
	}
	s.Queue.Push(queue.Item{Msg: msg, ArrivedAt: arrivedAt})
	s.QueueMetrics.ObserveOccupancy(s.Queue.Len())
	return nil
}

// ProcessNext pops one item per the scheduling policy, runs the shared
// forward/backward pass, steps the shared optimiser, and returns the
// gradient reply addressed to the originating client. ok is false when
// the policy yields nothing (empty queue, or a gated policy holding).
func (s *Server) ProcessNext(now time.Duration) (reply *transport.Message, ok bool, err error) {
	it, ok := s.Queue.Pop(now)
	if !ok {
		return nil, false, nil
	}
	reply, err = s.Process(it, now)
	if err != nil {
		return nil, false, err
	}
	return reply, true, nil
}

// Process runs the shared forward/backward pass for one already-dequeued
// item, steps the shared optimiser, and returns the gradient reply. It is
// the compute half of ProcessNext, exposed so callers that own the
// dequeue (the live cluster worker) can observe the popped item — its
// client, staleness, arrival time — before handing it to the model.
func (s *Server) Process(it queue.Item, now time.Duration) (*transport.Message, error) {
	s.QueueMetrics.ObserveServe(it, now)

	act := it.Msg.Payload
	s.Stack.ZeroGrad()
	logits := s.Stack.Forward(act, true)
	loss, dlogits, err := nn.SoftmaxCrossEntropy(logits, it.Msg.Labels)
	if err != nil {
		return nil, fmt.Errorf("core: server loss for client %d seq %d: %w",
			it.Msg.ClientID, it.Msg.Seq, err)
	}
	dact := s.Stack.Backward(dlogits)
	s.Optim.Step(s.Stack.Params())
	s.Losses.Observe(loss)
	s.steps++

	return &transport.Message{
		Type:     transport.MsgGradient,
		ClientID: it.Msg.ClientID,
		Seq:      it.Msg.Seq,
		Epoch:    it.Msg.Epoch,
		SentAt:   now,
		Payload:  dact,
	}, nil
}
