package core

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/queue"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

// Server is the centralized side of the framework: the shared layers
// above the cut plus the output layer, the parameter-scheduling queue of
// §II, and the optimiser for the shared parameters. One server instance
// serves every end-system; its layer stack therefore sees all clients'
// data (in activation form) and learns a single global upper model.
type Server struct {
	// Stack holds the shared layers Lk+1..LN and the dense head.
	Stack *nn.Sequential
	// Optim updates the shared parameters.
	Optim opt.Optimizer
	// Queue is the parameter-scheduling discipline.
	Queue queue.Policy
	// QueueMetrics records service statistics.
	QueueMetrics *queue.Metrics
	// Losses tracks the training loss curve (window-averaged).
	Losses *metrics.LossCurve
	// Instr, when non-nil, receives step counts, per-stage pass timings
	// and the running loss — the same bundle whichever runtime drives
	// the server, so simulated and live step counters stay comparable.
	Instr *ServerInstruments
	// WireDType tags outgoing gradient payloads: tensor.Float32 ships
	// them as TSL2 float32 frames. The zero value keeps TSL1 float64.
	WireDType tensor.DType

	steps int
	// lastBatchLoss is the raw (unwindowed) loss of the most recent
	// pass — what a pool-level aggregate curve needs, since each
	// replica's windowed Losses spans only its own local steps.
	lastBatchLoss float64
}

// NewServer wires the centralized server together.
func NewServer(stack *nn.Sequential, optim opt.Optimizer, q queue.Policy) (*Server, error) {
	if stack == nil || optim == nil || q == nil {
		return nil, fmt.Errorf("core: server needs stack, optimiser and queue")
	}
	curve, err := metrics.NewLossCurve(10)
	if err != nil {
		return nil, err
	}
	return &Server{
		Stack:        stack,
		Optim:        optim,
		Queue:        q,
		QueueMetrics: queue.NewMetrics(),
		Losses:       curve,
	}, nil
}

// Steps returns the number of batches the server has processed.
func (s *Server) Steps() int { return s.steps }

// LastBatchLoss returns the raw loss of the most recent pass (0 before
// the first). Unlike Losses.Last it is per-batch, not window-averaged —
// the measurement a pool of replicas aggregates into one global curve.
func (s *Server) LastBatchLoss() float64 { return s.lastBatchLoss }

// Enqueue admits an arriving activation message to the scheduling queue.
func (s *Server) Enqueue(msg *transport.Message, arrivedAt time.Duration) error {
	if msg.Type != transport.MsgActivation {
		return fmt.Errorf("core: server got %v, want activation", msg.Type)
	}
	s.Queue.Push(queue.Item{Msg: msg, ArrivedAt: arrivedAt})
	s.QueueMetrics.ObserveOccupancy(s.Queue.Len())
	return nil
}

// ProcessNext pops one item per the scheduling policy, runs the shared
// forward/backward pass, steps the shared optimiser, and returns the
// gradient reply addressed to the originating client. ok is false when
// the policy yields nothing (empty queue, or a gated policy holding).
func (s *Server) ProcessNext(now time.Duration) (reply *transport.Message, ok bool, err error) {
	it, ok := s.Queue.Pop(now)
	if !ok {
		return nil, false, nil
	}
	reply, err = s.Process(it, now)
	if err != nil {
		return nil, false, err
	}
	return reply, true, nil
}

// Process runs the shared forward/backward pass for one already-dequeued
// item, steps the shared optimiser, and returns the gradient reply. It is
// the compute half of ProcessNext, exposed so callers that own the
// dequeue (the live cluster worker) can observe the popped item — its
// client, staleness, arrival time — before handing it to the model.
func (s *Server) Process(it queue.Item, now time.Duration) (*transport.Message, error) {
	s.QueueMetrics.ObserveServe(it, now)

	act := it.Msg.Payload
	var t0 time.Time
	if s.Instr != nil {
		t0 = time.Now()
	}
	s.Stack.ZeroGrad()
	logits := s.Stack.Forward(act, true)
	loss, dlogits, err := nn.SoftmaxCrossEntropy(logits, it.Msg.Labels)
	if err != nil {
		return nil, fmt.Errorf("core: server loss for client %d seq %d: %w",
			it.Msg.ClientID, it.Msg.Seq, err)
	}
	var t1 time.Time
	if s.Instr != nil {
		t1 = time.Now()
	}
	dact := s.Stack.Backward(dlogits)
	s.Optim.Step(s.Stack.Params())
	s.Losses.Observe(loss)
	s.lastBatchLoss = loss
	s.steps++
	if s.Instr != nil {
		s.Instr.observePass(1, t1.Sub(t0), time.Since(t1), s.Losses.Last())
	}

	return &transport.Message{
		Type:     transport.MsgGradient,
		ClientID: it.Msg.ClientID,
		Seq:      it.Msg.Seq,
		Epoch:    it.Msg.Epoch,
		SentAt:   now,
		Payload:  dact.SetDType(s.WireDType),
	}, nil
}

// ProcessNextBatch is the coalescing counterpart of ProcessNext: it
// drains up to max items per the scheduling policy in one PopBatch,
// runs them through a single stacked pass, and returns one gradient
// reply per item in pop order. ok is false when the policy yields
// nothing. max <= 1 degenerates to ProcessNext's semantics.
func (s *Server) ProcessNextBatch(now time.Duration, max int) (replies []*transport.Message, ok bool, err error) {
	items := s.Queue.PopBatch(now, max)
	if len(items) == 0 {
		return nil, false, nil
	}
	replies, err = s.ProcessBatch(items, now)
	if err != nil {
		return nil, false, err
	}
	return replies, true, nil
}

// ProcessBatch runs already-dequeued items through one coalesced
// forward/backward pass: per-client activation batches are stacked
// along the batch axis, the shared stack runs once over the combined
// batch, the optimiser takes a single step, and the input gradient is
// scattered back into per-item slices. The loss is averaged over the
// combined batch, so one coalesced pass is one SGD step over B
// micro-batches — a deliberate semantic of coalescing, identical in
// the live and virtual-time runtimes.
//
// Failure paths are pre-flighted before the forward pass: stacking
// compatibility, the combined shape against the stack's shape
// inference, and label ranges are all checked first, so a failing
// coalesced batch returns before the model mutates at all — no
// optimiser step, and no BatchNorm running-statistics update either.
// A caller that owns fault attribution (the live cluster worker) can
// therefore retry the items one at a time without double-applying
// updates or double-counting normalisation statistics.
func (s *Server) ProcessBatch(items []queue.Item, now time.Duration) ([]*transport.Message, error) {
	switch len(items) {
	case 0:
		return nil, nil
	case 1:
		reply, err := s.Process(items[0], now)
		if err != nil {
			return nil, err
		}
		return []*transport.Message{reply}, nil
	}

	acts := make([]*tensor.Tensor, len(items))
	rows := make([]int, len(items))
	var labels []int
	for i, it := range items {
		act := it.Msg.Payload
		if act == nil || act.Dims() == 0 {
			return nil, fmt.Errorf("core: batch item %d (client %d seq %d) has no activation payload",
				i, it.Msg.ClientID, it.Msg.Seq)
		}
		if i > 0 && !tensor.SameTrailing(acts[0], act) {
			return nil, fmt.Errorf("core: batch item %d (client %d seq %d) activation shape %v incompatible with %v",
				i, it.Msg.ClientID, it.Msg.Seq, act.Shape(), acts[0].Shape())
		}
		if len(it.Msg.Labels) != act.Dim(0) {
			return nil, fmt.Errorf("core: batch item %d (client %d seq %d) has %d labels for %d rows",
				i, it.Msg.ClientID, it.Msg.Seq, len(it.Msg.Labels), act.Dim(0))
		}
		acts[i] = act
		rows[i] = act.Dim(0)
		labels = append(labels, it.Msg.Labels...)
	}

	// Thread the per-sample shape through the stack's shape inference
	// and range-check every label before running anything:
	// Forward(train) mutates BatchNorm running statistics, so a batch
	// that would fail later (bad geometry, out-of-range label) must be
	// rejected while the model is still untouched — that is what makes
	// the serial retry safe.
	logitShape, err := s.Stack.OutShape(acts[0].Shape()[1:])
	if err != nil {
		return nil, fmt.Errorf("core: coalesced batch of %d does not fit the server stack: %w", len(items), err)
	}
	if len(logitShape) != 1 {
		// The loss needs (N,classes) logits; a stack that cannot produce
		// them would fail only after the training forward had mutated
		// state, so reject it here where retrying stays safe.
		return nil, fmt.Errorf("core: server stack emits per-sample shape %v, want (classes)", logitShape)
	}
	classes := logitShape[0]
	for i, it := range items {
		for _, y := range it.Msg.Labels {
			if y < 0 || y >= classes {
				return nil, fmt.Errorf("core: batch item %d (client %d seq %d) label %d out of range [0,%d)",
					i, it.Msg.ClientID, it.Msg.Seq, y, classes)
			}
		}
	}

	stacked := tensor.ConcatRows(acts...)
	var t0 time.Time
	if s.Instr != nil {
		t0 = time.Now()
	}
	s.Stack.ZeroGrad()
	logits := s.Stack.Forward(stacked, true)
	loss, dlogits, err := nn.SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		return nil, fmt.Errorf("core: server loss for coalesced batch of %d: %w", len(items), err)
	}
	var t1 time.Time
	if s.Instr != nil {
		t1 = time.Now()
	}
	dact := s.Stack.Backward(dlogits)
	s.Optim.Step(s.Stack.Params())
	// The batch-mean loss applies to every stacked micro-batch: observe
	// it once per item so the loss curve's step axis stays "client
	// batches served" at any coalescing setting.
	for range items {
		s.Losses.Observe(loss)
	}
	s.lastBatchLoss = loss
	s.steps += len(items)
	if s.Instr != nil {
		s.Instr.observePass(len(items), t1.Sub(t0), time.Since(t1), s.Losses.Last())
	}

	grads := tensor.SplitRows(dact, rows...)
	replies := make([]*transport.Message, len(items))
	for i, it := range items {
		s.QueueMetrics.ObserveServe(it, now)
		replies[i] = &transport.Message{
			Type:     transport.MsgGradient,
			ClientID: it.Msg.ClientID,
			Seq:      it.Msg.Seq,
			Epoch:    it.Msg.Epoch,
			SentAt:   now,
			Payload:  grads[i].SetDType(s.WireDType),
		}
	}
	return replies, nil
}
