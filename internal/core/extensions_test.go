package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/simnet"
	"github.com/stsl/stsl/internal/transport"
)

func TestCheckpointRoundTrip(t *testing.T) {
	ds := smallData(t, 64, 43)
	shards, err := data.PartitionIID(ds, 2, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed uint64) *Deployment {
		dep, err := NewDeployment(Config{
			Model: smallModel(), Cut: 1, Clients: 2, Seed: seed, BatchSize: 8, LR: 0.05,
		}, shards)
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}
	// Train one deployment briefly so weights differ from init.
	a := mk(7)
	sim, err := NewSimulation(a, SimConfig{Paths: constPaths(2, 0), MaxStepsPerClient: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := a.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	b := mk(99) // different init
	if err := b.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// All weights must now match.
	pa := append(a.Server.Stack.Params(), a.Clients[0].Stack.Params()...)
	pb := append(b.Server.Stack.Params(), b.Clients[0].Stack.Params()...)
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value, 0) {
			t.Fatalf("restored parameter %s differs", pa[i].Name)
		}
	}
	// Mismatched structure rejected.
	other, err := NewDeployment(Config{
		Model: smallModel(), Cut: 2, Clients: 2, Seed: 1, BatchSize: 8, LR: 0.05,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadCheckpoint(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("cut mismatch accepted")
	}
}

func TestQuantizedDeploymentTrains(t *testing.T) {
	ds := smallData(t, 64, 47)
	for _, bits := range []int{8, 16} {
		dep, err := NewDeployment(Config{
			Model: smallModel(), Cut: 1, Clients: 1, Seed: 3,
			BatchSize: 8, LR: 0.05, QuantizeBits: bits,
		}, []*data.Dataset{ds})
		if err != nil {
			t.Fatal(err)
		}
		// Quantized payload advertises a smaller wire size.
		msg, err := dep.Clients[0].ProduceBatch(0)
		if err != nil {
			t.Fatal(err)
		}
		raw := 8 * msg.Payload.Size()
		if msg.WireSize <= 0 || msg.WireSize >= raw {
			t.Fatalf("bits=%d: wire size %d vs raw %d", bits, msg.WireSize, raw)
		}
		if err := dep.Clients[0].ApplyGradient(&transport.Message{
			Type: transport.MsgGradient, ClientID: 0, Seq: msg.Seq,
			Payload: msg.Payload.Clone(),
		}); err != nil {
			t.Fatal(err)
		}
		// Full simulated training still runs mechanically.
		sim, err := NewSimulation(dep, SimConfig{Paths: constPaths(1, 0), MaxStepsPerClient: 3})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Invalid widths rejected.
	if _, err := NewDeployment(Config{
		Model: smallModel(), Clients: 1, QuantizeBits: 12,
	}, []*data.Dataset{ds}); err == nil {
		t.Fatal("12-bit accepted")
	}
}

func TestLossyLinksRetransmit(t *testing.T) {
	ds := smallData(t, 64, 53)
	dep, err := NewDeployment(Config{
		Model: smallModel(), Cut: 1, Clients: 1, Seed: 5, BatchSize: 8, LR: 0.05,
	}, []*data.Dataset{ds})
	if err != nil {
		t.Fatal(err)
	}
	path, err := simnet.NewSymmetricPath(simnet.Constant{D: time.Millisecond}, 0, mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	path.Up.DropProb = 0.3
	path.Down.DropProb = 0.3
	sim, err := NewSimulation(dep, SimConfig{
		Paths:             []*simnet.Path{path},
		MaxStepsPerClient: 20,
		RetransmitTimeout: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// All steps complete despite loss.
	if res.ServerSteps != 20 {
		t.Fatalf("server steps = %d", res.ServerSteps)
	}
	if res.Retransmits == 0 {
		t.Fatal("30% loss produced no retransmissions")
	}
	// Retransmissions cost virtual time vs a clean link.
	clean, err := NewDeployment(Config{
		Model: smallModel(), Cut: 1, Clients: 1, Seed: 5, BatchSize: 8, LR: 0.05,
	}, []*data.Dataset{ds})
	if err != nil {
		t.Fatal(err)
	}
	simClean, err := NewSimulation(clean, SimConfig{
		Paths:             constPaths(1, time.Millisecond),
		MaxStepsPerClient: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	resClean, err := simClean.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualDuration <= resClean.VirtualDuration {
		t.Fatalf("lossy run (%v) not slower than clean run (%v)",
			res.VirtualDuration, resClean.VirtualDuration)
	}
}

func TestLossyLinkTotalLossErrors(t *testing.T) {
	ds := smallData(t, 32, 59)
	dep, err := NewDeployment(Config{
		Model: smallModel(), Cut: 1, Clients: 1, Seed: 5, BatchSize: 8, LR: 0.05,
	}, []*data.Dataset{ds})
	if err != nil {
		t.Fatal(err)
	}
	path, err := simnet.NewSymmetricPath(simnet.Constant{D: time.Millisecond}, 0, mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	path.Up.DropProb = 1.0 // black hole
	sim, err := NewSimulation(dep, SimConfig{
		Paths:             []*simnet.Path{path},
		MaxStepsPerClient: 2,
		RetransmitTimeout: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Fatal("100% loss did not surface an error")
	}
}

func TestSimulationTrace(t *testing.T) {
	ds := smallData(t, 64, 61)
	shards, err := data.PartitionIID(ds, 2, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployment(Config{
		Model: smallModel(), Cut: 1, Clients: 2, Seed: 5, BatchSize: 8, LR: 0.05,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(dep, SimConfig{
		Paths:             constPaths(2, time.Millisecond),
		MaxStepsPerClient: 3,
		Trace:             true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 2 clients × 3 steps × 3 events each.
	if len(res.Trace) != 18 {
		t.Fatalf("trace has %d events, want 18", len(res.Trace))
	}
	// Trace is time-ordered.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].At < res.Trace[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}
	kinds := map[string]int{}
	for _, ev := range res.Trace {
		kinds[ev.Kind]++
	}
	if kinds["activation-arrive"] != 6 || kinds["server-done"] != 6 || kinds["gradient-arrive"] != 6 {
		t.Fatalf("trace kinds %v", kinds)
	}
}
