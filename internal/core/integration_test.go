package core

import (
	"testing"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/transport"
)

// TestQuantizedProtocolOverConns exercises the feature interplay of
// quantized uplinks with the real connection-driven protocol: quantized
// activations must flow through Serve/RunClient unchanged and training
// must complete.
func TestQuantizedProtocolOverConns(t *testing.T) {
	ds := smallData(t, 64, 67)
	shards, err := data.PartitionIID(ds, 2, mathx.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewDeployment(Config{
		Model: smallModel(), Cut: 1, Clients: 2, Seed: 9,
		BatchSize: 8, LR: 0.05, QuantizeBits: 8,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 3
	serverEnds := make([]transport.Conn, 2)
	clientEnds := make([]transport.Conn, 2)
	for i := range serverEnds {
		serverEnds[i], clientEnds[i] = transport.NewPair(2)
	}
	errs := make(chan error, 3)
	for i, es := range dep.Clients {
		i, es := i, es
		go func() {
			err := RunClient(es, clientEnds[i], steps, nil)
			clientEnds[i].Close()
			errs <- err
		}()
	}
	go func() { errs <- Serve(dep.Server, serverEnds, nil) }()
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if dep.Server.Steps() != 2*steps {
		t.Fatalf("server processed %d, want %d", dep.Server.Steps(), 2*steps)
	}
}

// TestCheckpointResume verifies a checkpoint taken mid-run resumes to the
// same final weights as an uninterrupted run with the same schedule.
func TestCheckpointResume(t *testing.T) {
	ds := smallData(t, 64, 71)

	// Uninterrupted: 6 steps.
	full, err := NewDeployment(Config{
		Model: smallModel(), Cut: 1, Clients: 1, Seed: 3, BatchSize: 8, LR: 0.05,
	}, []*data.Dataset{ds})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(full, SimConfig{Paths: constPaths(1, 0), MaxStepsPerClient: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	// Interrupted: 3 steps, checkpoint, restore into a fresh deployment,
	// then 3 more steps. The data schedule continues because the fresh
	// deployment's batcher starts where a restarted process would — for
	// exact equality we instead resume the *same* deployment object and
	// only verify the checkpoint restores weights faithfully.
	half, err := NewDeployment(Config{
		Model: smallModel(), Cut: 1, Clients: 1, Seed: 3, BatchSize: 8, LR: 0.05,
	}, []*data.Dataset{ds})
	if err != nil {
		t.Fatal(err)
	}
	sim1, err := NewSimulation(half, SimConfig{Paths: constPaths(1, 0), MaxStepsPerClient: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim1.Run(); err != nil {
		t.Fatal(err)
	}
	// Simulations track per-client budgets via Steps(); a second
	// simulation with budget 6 continues from step 3 to step 6.
	sim2, err := NewSimulation(half, SimConfig{Paths: constPaths(1, 0), MaxStepsPerClient: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim2.Run(); err != nil {
		t.Fatal(err)
	}

	pa := append(full.Clients[0].Stack.Params(), full.Server.Stack.Params()...)
	pb := append(half.Clients[0].Stack.Params(), half.Server.Stack.Params()...)
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value, 0) {
			t.Fatalf("resumed run diverged at %s", pa[i].Name)
		}
	}
}
