package core

import (
	"bufio"
	"fmt"
	"io"

	"github.com/stsl/stsl/internal/tensor"
)

// SaveState writes the server's own training state — the step counter
// followed by the shared stack's weights — so a restarted server process
// can resume serving from where it stopped. Unlike the deployment-level
// SaveCheckpoint it covers only the centralized side: end-systems are
// separate processes that keep (and checkpoint) their own private
// stacks. Optimiser slot state (momentum, Adam moments) is not included;
// plain SGD resumes exactly, stateful optimisers restart their slots
// cold.
func (s *Server) SaveState(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "STSLSRV1 steps=%d\n", s.steps); err != nil {
		return fmt.Errorf("core: server state header: %w", err)
	}
	if err := s.Stack.SaveWeights(w); err != nil {
		return fmt.Errorf("core: server state weights: %w", err)
	}
	return nil
}

// SavePoolState writes a worker pool's training state: the checkpoint
// format is versioned by replica count, so a restore knows how many
// stacks follow and can average them. A single replica degenerates to
// the legacy STSLSRV1 format — a workers=1 server keeps producing
// checkpoints any older reader understands. The recorded step count is
// the pool total (every replica's contribution).
func SavePoolState(w io.Writer, replicas []*Server) error {
	if len(replicas) == 0 {
		return fmt.Errorf("core: pool state needs at least one replica")
	}
	if len(replicas) == 1 {
		return replicas[0].SaveState(w)
	}
	total := 0
	for _, rep := range replicas {
		total += rep.steps
	}
	if _, err := fmt.Fprintf(w, "STSLPOOL1 workers=%d steps=%d\n", len(replicas), total); err != nil {
		return fmt.Errorf("core: pool state header: %w", err)
	}
	for i, rep := range replicas {
		if err := rep.Stack.SaveWeights(w); err != nil {
			return fmt.Errorf("core: pool state replica %d weights: %w", i, err)
		}
	}
	return nil
}

// LoadState restores state written by SaveState or SavePoolState into a
// server of identical stack structure, resuming the step counter and
// the shared weights. A pool (STSLPOOL1) checkpoint carrying N replica
// stacks is restored as their uniform FedAvg average — the same
// aggregation the pool would have produced at its next sync barrier —
// so an N-replica checkpoint loads into an M-worker server for any N
// and M: the caller fans the averaged weights out to however many
// replicas it runs (average-then-fan-out, never dropped replicas).
func (s *Server) LoadState(r io.Reader) error {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("core: server state header: %w", err)
	}
	var steps, workers int
	if n, _ := fmt.Sscanf(header, "STSLSRV1 steps=%d", &steps); n == 1 {
		if steps < 0 {
			return fmt.Errorf("core: server state has negative step count %d", steps)
		}
		if err := s.Stack.LoadWeights(br); err != nil {
			return fmt.Errorf("core: restore server weights: %w", err)
		}
		s.steps = steps
		return nil
	}
	if n, _ := fmt.Sscanf(header, "STSLPOOL1 workers=%d steps=%d", &workers, &steps); n == 2 {
		if workers <= 0 {
			return fmt.Errorf("core: pool state has non-positive worker count %d", workers)
		}
		if steps < 0 {
			return fmt.Errorf("core: pool state has negative step count %d", steps)
		}
		// Average the N stacks through accumulator tensors: each stack
		// is loaded into s.Stack in turn (the only structural twin we
		// hold) and folded into the accumulators at weight 1/N.
		params := s.Stack.Params()
		accs := make([]*tensor.Tensor, len(params))
		for i, p := range params {
			accs[i] = tensor.New(p.Value.Shape()...)
		}
		for k := 0; k < workers; k++ {
			if err := s.Stack.LoadWeights(br); err != nil {
				return fmt.Errorf("core: restore pool replica %d weights: %w", k, err)
			}
			for i, p := range params {
				accs[i].AXPY(1/float64(workers), p.Value)
			}
		}
		for i, p := range params {
			p.Value.CopyFrom(accs[i])
		}
		s.steps = steps
		return nil
	}
	return fmt.Errorf("core: unrecognised server state header %q", header)
}

// SaveCheckpoint writes every weight in the deployment — the shared
// server stack followed by each client's private stack, in client order —
// so a training run can be resumed or shipped. The format is the nn
// weight format concatenated with a small header.
func (d *Deployment) SaveCheckpoint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "STSLCKPT cut=%d clients=%d\n", d.Config.Cut, len(d.Clients)); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if err := d.Server.Stack.SaveWeights(w); err != nil {
		return fmt.Errorf("core: checkpoint server: %w", err)
	}
	for i, c := range d.Clients {
		if err := c.Stack.SaveWeights(w); err != nil {
			return fmt.Errorf("core: checkpoint client %d: %w", i, err)
		}
	}
	return nil
}

// LoadCheckpoint restores weights written by SaveCheckpoint into a
// deployment of identical structure (same cut, same client count, same
// model config).
func (d *Deployment) LoadCheckpoint(r io.Reader) error {
	var cut, clients int
	if _, err := fmt.Fscanf(r, "STSLCKPT cut=%d clients=%d\n", &cut, &clients); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if cut != d.Config.Cut || clients != len(d.Clients) {
		return fmt.Errorf("core: checkpoint is cut=%d/%d clients, deployment is cut=%d/%d",
			cut, clients, d.Config.Cut, len(d.Clients))
	}
	if err := d.Server.Stack.LoadWeights(r); err != nil {
		return fmt.Errorf("core: restore server: %w", err)
	}
	for i, c := range d.Clients {
		if err := c.Stack.LoadWeights(r); err != nil {
			return fmt.Errorf("core: restore client %d: %w", i, err)
		}
	}
	return nil
}
