package core

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/stsl/stsl/internal/tensor"
)

// ErrCheckpointCorrupt reports a checkpoint whose bytes cannot be
// trusted: a payload shorter than its header promises (torn write) or a
// CRC32C mismatch (bit rot). Restore logic matches it with errors.Is to
// fall back to an older verified generation instead of refusing to
// boot. Verification happens before any weight is mutated, so a corrupt
// checkpoint leaves the server exactly as it was.
var ErrCheckpointCorrupt = errors.New("core: checkpoint corrupt")

// ckptCRCTable is the CRC32C (Castagnoli) table shared with the wire
// codec's checksummed frames — one polynomial for the whole integrity
// layer.
var ckptCRCTable = crc32.MakeTable(crc32.Castagnoli)

// SaveState writes the server's own training state — the step counter
// followed by the shared stack's weights — so a restarted server process
// can resume serving from where it stopped. Unlike the deployment-level
// SaveCheckpoint it covers only the centralized side: end-systems are
// separate processes that keep (and checkpoint) their own private
// stacks. Optimiser slot state (momentum, Adam moments) is not included;
// plain SGD resumes exactly, stateful optimisers restart their slots
// cold.
func (s *Server) SaveState(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "STSLSRV1 steps=%d\n", s.steps); err != nil {
		return fmt.Errorf("core: server state header: %w", err)
	}
	if err := s.Stack.SaveWeights(w); err != nil {
		return fmt.Errorf("core: server state weights: %w", err)
	}
	return nil
}

// SavePoolState writes a worker pool's training state in the current
// (STSLPOOL2) checkpoint format: a header carrying the replica count,
// pool step total, generation chain metadata, and the payload's length
// and CRC32C, followed by the replica weight stacks. Readers verify the
// CRC before trusting a byte, so torn writes and bit rot are detected
// instead of silently restored. Legacy STSLSRV1/STSLPOOL1 checkpoints
// still load (LoadState recognises all three headers); this writer is
// gen-chain position zero — use SavePoolStateGen to record lineage.
func SavePoolState(w io.Writer, replicas []*Server) error {
	return SavePoolStateGen(w, replicas, 0, 0)
}

// SavePoolStateGen is SavePoolState recording the checkpoint's position
// in a generation chain: gen is this checkpoint's generation number and
// parent the generation it was taken from, so an auditor (or a restore
// that distrusts mtimes) can reconstruct lineage from the files alone.
func SavePoolStateGen(w io.Writer, replicas []*Server, gen, parent int) error {
	if len(replicas) == 0 {
		return fmt.Errorf("core: pool state needs at least one replica")
	}
	total := 0
	for _, rep := range replicas {
		total += rep.steps
	}
	// The payload is buffered first: the header must promise the exact
	// length and CRC of what follows, which streaming cannot know yet.
	var payload bytes.Buffer
	for i, rep := range replicas {
		if err := rep.Stack.SaveWeights(&payload); err != nil {
			return fmt.Errorf("core: pool state replica %d weights: %w", i, err)
		}
	}
	sum := crc32.Checksum(payload.Bytes(), ckptCRCTable)
	if _, err := fmt.Fprintf(w, "STSLPOOL2 workers=%d steps=%d gen=%d parent=%d len=%d crc=%08x\n",
		len(replicas), total, gen, parent, payload.Len(), sum); err != nil {
		return fmt.Errorf("core: pool state header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("core: pool state payload: %w", err)
	}
	return nil
}

// LoadState restores state written by SaveState or SavePoolState into a
// server of identical stack structure, resuming the step counter and
// the shared weights. A pool (STSLPOOL1) checkpoint carrying N replica
// stacks is restored as their uniform FedAvg average — the same
// aggregation the pool would have produced at its next sync barrier —
// so an N-replica checkpoint loads into an M-worker server for any N
// and M: the caller fans the averaged weights out to however many
// replicas it runs (average-then-fan-out, never dropped replicas).
func (s *Server) LoadState(r io.Reader) error {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return fmt.Errorf("core: server state header: %w", err)
	}
	var steps, workers int
	if n, _ := fmt.Sscanf(header, "STSLSRV1 steps=%d", &steps); n == 1 {
		if steps < 0 {
			return fmt.Errorf("core: server state has negative step count %d", steps)
		}
		if err := s.Stack.LoadWeights(br); err != nil {
			return fmt.Errorf("core: restore server weights: %w", err)
		}
		s.steps = steps
		return nil
	}
	var gen, parent, plen int
	var sum uint32
	if n, _ := fmt.Sscanf(header, "STSLPOOL2 workers=%d steps=%d gen=%d parent=%d len=%d crc=%x",
		&workers, &steps, &gen, &parent, &plen, &sum); n == 6 {
		if workers <= 0 {
			return fmt.Errorf("core: pool state has non-positive worker count %d", workers)
		}
		if steps < 0 {
			return fmt.Errorf("core: pool state has negative step count %d", steps)
		}
		if plen < 0 {
			return fmt.Errorf("core: pool state has negative payload length %d", plen)
		}
		// The whole payload is read and CRC-verified before a single
		// weight is touched: a corrupt checkpoint must leave the server
		// untouched so the caller can fall back to an older generation.
		// LimitReader bounds the read by the stream's real size even if
		// a corrupted header announces an absurd length.
		var payload bytes.Buffer
		got, err := io.Copy(&payload, io.LimitReader(br, int64(plen)))
		if err != nil {
			return fmt.Errorf("core: read pool state payload: %w", err)
		}
		if got != int64(plen) {
			return fmt.Errorf("core: pool state payload %d of %d bytes (torn write): %w",
				got, plen, ErrCheckpointCorrupt)
		}
		if s := crc32.Checksum(payload.Bytes(), ckptCRCTable); s != sum {
			return fmt.Errorf("core: pool state crc32c %08x, header says %08x: %w",
				s, sum, ErrCheckpointCorrupt)
		}
		pr := bytes.NewReader(payload.Bytes())
		if workers == 1 {
			if err := s.Stack.LoadWeights(pr); err != nil {
				return fmt.Errorf("core: restore server weights: %w", err)
			}
			s.steps = steps
			return nil
		}
		if err := s.loadAveraged(pr, workers); err != nil {
			return err
		}
		s.steps = steps
		return nil
	}
	if n, _ := fmt.Sscanf(header, "STSLPOOL1 workers=%d steps=%d", &workers, &steps); n == 2 {
		if workers <= 0 {
			return fmt.Errorf("core: pool state has non-positive worker count %d", workers)
		}
		if steps < 0 {
			return fmt.Errorf("core: pool state has negative step count %d", steps)
		}
		if err := s.loadAveraged(br, workers); err != nil {
			return err
		}
		s.steps = steps
		return nil
	}
	return fmt.Errorf("core: unrecognised server state header %q", header)
}

// loadAveraged reads workers consecutive weight stacks from r and
// restores their uniform FedAvg average into s.Stack: each stack is
// loaded into s.Stack in turn (the only structural twin we hold) and
// folded into accumulator tensors at weight 1/N.
func (s *Server) loadAveraged(r io.Reader, workers int) error {
	params := s.Stack.Params()
	accs := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		accs[i] = tensor.New(p.Value.Shape()...)
	}
	for k := 0; k < workers; k++ {
		if err := s.Stack.LoadWeights(r); err != nil {
			return fmt.Errorf("core: restore pool replica %d weights: %w", k, err)
		}
		for i, p := range params {
			accs[i].AXPY(1/float64(workers), p.Value)
		}
	}
	for i, p := range params {
		p.Value.CopyFrom(accs[i])
	}
	return nil
}

// SaveCheckpoint writes every weight in the deployment — the shared
// server stack followed by each client's private stack, in client order —
// so a training run can be resumed or shipped. The format is the nn
// weight format concatenated with a small header.
func (d *Deployment) SaveCheckpoint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "STSLCKPT cut=%d clients=%d\n", d.Config.Cut, len(d.Clients)); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if err := d.Server.Stack.SaveWeights(w); err != nil {
		return fmt.Errorf("core: checkpoint server: %w", err)
	}
	for i, c := range d.Clients {
		if err := c.Stack.SaveWeights(w); err != nil {
			return fmt.Errorf("core: checkpoint client %d: %w", i, err)
		}
	}
	return nil
}

// LoadCheckpoint restores weights written by SaveCheckpoint into a
// deployment of identical structure (same cut, same client count, same
// model config).
func (d *Deployment) LoadCheckpoint(r io.Reader) error {
	var cut, clients int
	if _, err := fmt.Fscanf(r, "STSLCKPT cut=%d clients=%d\n", &cut, &clients); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if cut != d.Config.Cut || clients != len(d.Clients) {
		return fmt.Errorf("core: checkpoint is cut=%d/%d clients, deployment is cut=%d/%d",
			cut, clients, d.Config.Cut, len(d.Clients))
	}
	if err := d.Server.Stack.LoadWeights(r); err != nil {
		return fmt.Errorf("core: restore server: %w", err)
	}
	for i, c := range d.Clients {
		if err := c.Stack.LoadWeights(r); err != nil {
			return fmt.Errorf("core: restore client %d: %w", i, err)
		}
	}
	return nil
}
