package core

import (
	"fmt"
	"io"
)

// SaveState writes the server's own training state — the step counter
// followed by the shared stack's weights — so a restarted server process
// can resume serving from where it stopped. Unlike the deployment-level
// SaveCheckpoint it covers only the centralized side: end-systems are
// separate processes that keep (and checkpoint) their own private
// stacks. Optimiser slot state (momentum, Adam moments) is not included;
// plain SGD resumes exactly, stateful optimisers restart their slots
// cold.
func (s *Server) SaveState(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "STSLSRV1 steps=%d\n", s.steps); err != nil {
		return fmt.Errorf("core: server state header: %w", err)
	}
	if err := s.Stack.SaveWeights(w); err != nil {
		return fmt.Errorf("core: server state weights: %w", err)
	}
	return nil
}

// LoadState restores state written by SaveState into a server of
// identical structure, resuming the step counter and the shared weights.
func (s *Server) LoadState(r io.Reader) error {
	var steps int
	if _, err := fmt.Fscanf(r, "STSLSRV1 steps=%d\n", &steps); err != nil {
		return fmt.Errorf("core: server state header: %w", err)
	}
	if steps < 0 {
		return fmt.Errorf("core: server state has negative step count %d", steps)
	}
	if err := s.Stack.LoadWeights(r); err != nil {
		return fmt.Errorf("core: restore server weights: %w", err)
	}
	s.steps = steps
	return nil
}

// SaveCheckpoint writes every weight in the deployment — the shared
// server stack followed by each client's private stack, in client order —
// so a training run can be resumed or shipped. The format is the nn
// weight format concatenated with a small header.
func (d *Deployment) SaveCheckpoint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "STSLCKPT cut=%d clients=%d\n", d.Config.Cut, len(d.Clients)); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if err := d.Server.Stack.SaveWeights(w); err != nil {
		return fmt.Errorf("core: checkpoint server: %w", err)
	}
	for i, c := range d.Clients {
		if err := c.Stack.SaveWeights(w); err != nil {
			return fmt.Errorf("core: checkpoint client %d: %w", i, err)
		}
	}
	return nil
}

// LoadCheckpoint restores weights written by SaveCheckpoint into a
// deployment of identical structure (same cut, same client count, same
// model config).
func (d *Deployment) LoadCheckpoint(r io.Reader) error {
	var cut, clients int
	if _, err := fmt.Fscanf(r, "STSLCKPT cut=%d clients=%d\n", &cut, &clients); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if cut != d.Config.Cut || clients != len(d.Clients) {
		return fmt.Errorf("core: checkpoint is cut=%d/%d clients, deployment is cut=%d/%d",
			cut, clients, d.Config.Cut, len(d.Clients))
	}
	if err := d.Server.Stack.LoadWeights(r); err != nil {
		return fmt.Errorf("core: restore server: %w", err)
	}
	for i, c := range d.Clients {
		if err := c.Stack.LoadWeights(r); err != nil {
			return fmt.Errorf("core: restore client %d: %w", i, err)
		}
	}
	return nil
}
