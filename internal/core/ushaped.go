package core

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/transport"
)

// This file implements the U-shaped split-learning variant from the
// paper's reference [3] (Vepakomma et al., "Split learning for health"):
// the end-system keeps the first hidden blocks AND the output head, the
// server keeps only the middle. Labels therefore never leave the
// end-system — a stronger privacy posture than the paper's base design,
// at the cost of a second round trip per batch:
//
//	client lower-forward ──activations──▶ server middle-forward
//	client head-forward+loss ◀──features── server
//	client head-backward ──feature-grad──▶ server middle-backward (+step)
//	client lower-backward (+step)        ◀──activation-grad── server
//
// All four hops use transport.Message with the MsgFeatures /
// MsgFeatureGrad / MsgGradient kinds, whose validators reject any label
// payload, so the no-label-leak property is enforced at the protocol
// boundary rather than by convention.

// SplitU cuts a built CNN into lower/middle/head stacks: lower is blocks
// L1..Lcut, head is the trailing headLayers layers, middle is everything
// between. The three Sequentials share layer objects with the original.
func SplitU(m *nn.PaperCNN, cut, headLayers int) (lower, middle, head *nn.Sequential, err error) {
	idx, err := m.CutIndex(cut)
	if err != nil {
		return nil, nil, nil, err
	}
	layers := m.Net.Layers()
	if headLayers <= 0 || idx+headLayers > len(layers) {
		return nil, nil, nil, fmt.Errorf("core: head of %d layers does not fit after cut %d (total %d)",
			headLayers, cut, len(layers))
	}
	headStart := len(layers) - headLayers
	lower, err = nn.NewSequential(fmt.Sprintf("u-lower-cut%d", cut), layers[:idx]...)
	if err != nil {
		return nil, nil, nil, err
	}
	middle, err = nn.NewSequential("u-middle", layers[idx:headStart]...)
	if err != nil {
		return nil, nil, nil, err
	}
	head, err = nn.NewSequential(fmt.Sprintf("u-head-%d", headLayers), layers[headStart:]...)
	if err != nil {
		return nil, nil, nil, err
	}
	return lower, middle, head, nil
}

// UEndSystem is a U-shaped client: private lower blocks, private output
// head, private labels.
type UEndSystem struct {
	ID    int
	Lower *nn.Sequential
	Head  *nn.Sequential
	Optim opt.Optimizer
	Batch *data.Batcher

	seq    int
	labels []int // labels of the in-flight batch; never serialised
}

// UServer is the centralized middle of the U-shaped variant. It sees
// neither raw inputs nor labels nor logits.
type UServer struct {
	Middle *nn.Sequential
	Optim  opt.Optimizer
	Losses *metrics.LossCurve
	steps  int
}

// Steps returns the number of batches processed by the server.
func (s *UServer) Steps() int { return s.steps }

// UShapedConfig parameterises a U-shaped deployment.
type UShapedConfig struct {
	Model nn.PaperCNNConfig
	// Cut is the lower split point (blocks L1..Lcut on the client).
	Cut int
	// HeadLayers is how many trailing layers stay on the client
	// (e.g. 1 keeps fc2; 3 keeps fc1+relu+fc2).
	HeadLayers int
	Clients    int
	Seed       uint64
	// SharedClientInit gives every client the template's weights
	// (used by the equivalence test).
	SharedClientInit bool
	BatchSize        int
	LR               float64
}

func (c UShapedConfig) withDefaults() UShapedConfig {
	if c.Clients == 0 {
		c.Clients = 1
	}
	if c.HeadLayers == 0 {
		c.HeadLayers = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	return c
}

// UShapedDeployment wires M U-shaped clients to one middle server.
type UShapedDeployment struct {
	Config  UShapedConfig
	Clients []*UEndSystem
	Server  *UServer
}

// NewUShaped builds the deployment; shards must have cfg.Clients entries.
func NewUShaped(cfg UShapedConfig, shards []*data.Dataset) (*UShapedDeployment, error) {
	cfg = cfg.withDefaults()
	if len(shards) != cfg.Clients {
		return nil, fmt.Errorf("core: %d shards for %d clients", len(shards), cfg.Clients)
	}
	template, err := nn.BuildPaperCNN(cfg.Model, mathx.NewRNG(cfg.Seed))
	if err != nil {
		return nil, err
	}
	_, middle, _, err := SplitU(template, cfg.Cut, cfg.HeadLayers)
	if err != nil {
		return nil, err
	}
	serverOpt, err := newOptimizer("sgd", cfg.LR)
	if err != nil {
		return nil, err
	}
	curve, err := metrics.NewLossCurve(10)
	if err != nil {
		return nil, err
	}
	server := &UServer{Middle: middle, Optim: serverOpt, Losses: curve}

	seedGen := mathx.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)
	clients := make([]*UEndSystem, cfg.Clients)
	for i := range clients {
		clientSeed := cfg.Seed
		if !cfg.SharedClientInit {
			clientSeed = seedGen.Uint64()
		}
		cnn, err := nn.BuildPaperCNN(cfg.Model, mathx.NewRNG(clientSeed))
		if err != nil {
			return nil, err
		}
		lower, _, head, err := SplitU(cnn, cfg.Cut, cfg.HeadLayers)
		if err != nil {
			return nil, err
		}
		clientOpt, err := newOptimizer("sgd", cfg.LR)
		if err != nil {
			return nil, err
		}
		batcher, err := data.NewBatcher(shards[i], cfg.BatchSize, mathx.NewRNG(cfg.Seed+uint64(i)*7919+13))
		if err != nil {
			return nil, err
		}
		clients[i] = &UEndSystem{ID: i, Lower: lower, Head: head, Optim: clientOpt, Batch: batcher}
	}
	return &UShapedDeployment{Config: cfg, Clients: clients, Server: server}, nil
}

// lowerForward runs hop 1: the client's private lower stack.
func (e *UEndSystem) lowerForward(now time.Duration) (*transport.Message, error) {
	batch, ok := e.Batch.Next()
	if !ok {
		batch, ok = e.Batch.Next()
		if !ok {
			return nil, fmt.Errorf("core: u-client %d has an empty dataset", e.ID)
		}
	}
	e.labels = batch.Y
	act := e.Lower.Forward(batch.X, true)
	msg := &transport.Message{
		Type: transport.MsgFeatures, ClientID: e.ID, Seq: e.seq, SentAt: now, Payload: act,
	}
	e.seq++
	return msg, nil
}

// middleForward runs hop 2 on the server.
func (s *UServer) middleForward(msg *transport.Message, now time.Duration) (*transport.Message, error) {
	if msg.Type != transport.MsgFeatures {
		return nil, fmt.Errorf("core: u-server got %v, want features", msg.Type)
	}
	feats := s.Middle.Forward(msg.Payload, true)
	return &transport.Message{
		Type: transport.MsgFeatures, ClientID: msg.ClientID, Seq: msg.Seq, SentAt: now, Payload: feats,
	}, nil
}

// headRound runs hop 3 on the client: head forward, loss against the
// private labels, head backward. The head's parameter gradients are
// accumulated but not yet stepped — the client steps once per batch in
// lowerBackward so lower and head update together.
func (e *UEndSystem) headRound(msg *transport.Message, now time.Duration) (*transport.Message, float64, error) {
	if msg.Type != transport.MsgFeatures {
		return nil, 0, fmt.Errorf("core: u-client %d got %v, want features", e.ID, msg.Type)
	}
	logits := e.Head.Forward(msg.Payload, true)
	loss, dlogits, err := nn.SoftmaxCrossEntropy(logits, e.labels)
	if err != nil {
		return nil, 0, err
	}
	dfeats := e.Head.Backward(dlogits)
	return &transport.Message{
		Type: transport.MsgFeatureGrad, ClientID: e.ID, Seq: msg.Seq, SentAt: now, Payload: dfeats,
	}, loss, nil
}

// middleBackward runs hop 4 on the server and steps the middle optimiser.
func (s *UServer) middleBackward(msg *transport.Message, loss float64, now time.Duration) (*transport.Message, error) {
	if msg.Type != transport.MsgFeatureGrad {
		return nil, fmt.Errorf("core: u-server got %v, want feature-grad", msg.Type)
	}
	s.Middle.ZeroGrad()
	dact := s.Middle.Backward(msg.Payload)
	s.Optim.Step(s.Middle.Params())
	s.Losses.Observe(loss)
	s.steps++
	return &transport.Message{
		Type: transport.MsgGradient, ClientID: msg.ClientID, Seq: msg.Seq, SentAt: now, Payload: dact,
	}, nil
}

// lowerBackward finishes the round on the client: lower backward and one
// optimiser step over lower+head parameters.
func (e *UEndSystem) lowerBackward(msg *transport.Message) error {
	if msg.Type != transport.MsgGradient {
		return fmt.Errorf("core: u-client %d got %v, want gradient", e.ID, msg.Type)
	}
	// Head grads were accumulated in headRound; lower grads accumulate
	// now; one step applies both.
	for _, p := range e.Lower.Params() {
		p.ZeroGrad()
	}
	e.Lower.Backward(msg.Payload)
	params := append(e.Lower.Params(), e.Head.Params()...)
	e.Optim.Step(params)
	for _, p := range e.Head.Params() {
		p.ZeroGrad()
	}
	e.labels = nil
	return nil
}

// TrainRounds drives the synchronous U-shaped protocol: clients take
// turns, each completing stepsPerClient full two-round-trip batches.
// Every hop's message is validated, so a regression that leaks labels
// into any message fails loudly.
func (d *UShapedDeployment) TrainRounds(stepsPerClient int) error {
	if stepsPerClient <= 0 {
		return fmt.Errorf("core: TrainRounds needs positive steps, got %d", stepsPerClient)
	}
	var now time.Duration
	for step := 0; step < stepsPerClient; step++ {
		for _, c := range d.Clients {
			now += time.Millisecond
			up, err := c.lowerForward(now)
			if err != nil {
				return err
			}
			if err := up.Validate(); err != nil {
				return err
			}
			feats, err := d.Server.middleForward(up, now)
			if err != nil {
				return err
			}
			if err := feats.Validate(); err != nil {
				return err
			}
			fgrad, loss, err := c.headRound(feats, now)
			if err != nil {
				return err
			}
			if err := fgrad.Validate(); err != nil {
				return err
			}
			agrad, err := d.Server.middleBackward(fgrad, loss, now)
			if err != nil {
				return err
			}
			if err := agrad.Validate(); err != nil {
				return err
			}
			if err := c.lowerBackward(agrad); err != nil {
				return err
			}
		}
	}
	return nil
}

// Evaluate runs the test set through client i's full U-shaped pipeline.
func (d *UShapedDeployment) Evaluate(i int, test *data.Dataset) (*metrics.ConfusionMatrix, error) {
	if i < 0 || i >= len(d.Clients) {
		return nil, fmt.Errorf("core: client index %d out of range", i)
	}
	cm, err := metrics.NewConfusionMatrix(test.Classes)
	if err != nil {
		return nil, err
	}
	batcher, err := data.NewBatcher(test, 128, nil)
	if err != nil {
		return nil, err
	}
	c := d.Clients[i]
	for {
		batch, ok := batcher.Next()
		if !ok {
			return cm, nil
		}
		act := c.Lower.Forward(batch.X, false)
		feats := d.Server.Middle.Forward(act, false)
		logits := c.Head.Forward(feats, false)
		if err := cm.Add(nn.Predict(logits), batch.Y); err != nil {
			return nil, err
		}
	}
}
