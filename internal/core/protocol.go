package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/transport"
)

// Control-message notes of the session protocol. DoneNote is understood
// by both the legacy Serve loop and the cluster runtime; the remaining
// notes form the join/leave handshake and backpressure vocabulary of the
// live cluster protocol (internal/cluster).
const (
	// DoneNote announces a client has no more batches to contribute.
	DoneNote = "done"
	// JoinNote is the first message of a session: a control message
	// carrying the client's id.
	JoinNote = "join"
	// WelcomeNote is the server's accept reply to a join.
	WelcomeNote = "welcome"
	// RejectedNote tells a client its activation was refused for
	// backpressure (queue over cap); the client should resend.
	RejectedNote = "rejected"
	// ResumeNote opens a reconnecting session: a control message carrying
	// the client's id and, in the Seq field, the session token issued
	// with the original welcome. A server that still holds the session
	// (within the resume grace window) swaps the connection in place —
	// id, queued items, and reply cache survive; a server that does not
	// (restarted, or grace expired) treats the resume as a fresh join.
	// The welcome reply always carries the session's token in Seq.
	ResumeNote = "resume"
	// AbortNote tells a client the server is shutting down.
	AbortNote = "abort"
	// RefusedNote prefixes an admission-control refusal of a join or
	// resume-as-fresh-join: the server is at its session cap or its shed
	// gate is open. The transport-level refusal code carries the
	// machine-readable class and RetryAfter the backoff hint; the note
	// stays human-readable for logs and legacy decoders.
	RefusedNote = "refused"
	// ExpiredNote tells a client its queued activation was shed past its
	// enqueue deadline without being served; the client should resend it
	// (the server rolled its dedup watermark back to admit the resend).
	ExpiredNote = "expired"
)

// RunClient drives an end-system over a real connection for the given
// number of steps: produce → send activation → await gradient → apply,
// then a final control message announcing completion. now supplies
// timestamps (wall or virtual); a nil now uses a monotonic wall clock.
func RunClient(es *EndSystem, conn transport.Conn, steps int, now func() time.Duration) error {
	if es == nil || conn == nil {
		return fmt.Errorf("core: RunClient needs an end-system and a connection")
	}
	if steps <= 0 {
		return fmt.Errorf("core: RunClient needs positive steps, got %d", steps)
	}
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	for i := 0; i < steps; i++ {
		msg, err := es.ProduceBatch(now())
		if err != nil {
			return fmt.Errorf("core: client %d produce step %d: %w", es.ID, i, err)
		}
		if err := conn.Send(msg); err != nil {
			return fmt.Errorf("core: client %d send step %d: %w", es.ID, i, err)
		}
		reply, err := conn.Recv()
		if err != nil {
			return fmt.Errorf("core: client %d recv step %d: %w", es.ID, i, err)
		}
		if reply.Type == transport.MsgControl {
			return fmt.Errorf("core: client %d: server aborted: %s", es.ID, reply.Note)
		}
		if err := es.ApplyGradient(reply); err != nil {
			return fmt.Errorf("core: client %d apply step %d: %w", es.ID, i, err)
		}
	}
	return conn.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: es.ID, Note: DoneNote, SentAt: now(),
	})
}

// inbound pairs a received message with the connection it arrived on.
type inbound struct {
	conn transport.Conn
	msg  *transport.Message
	err  error
}

// Serve runs the centralized server over a set of real connections until
// every client has announced completion and the queue has drained. One
// goroutine per connection receives; this goroutine serialises all model
// and queue access. now supplies timestamps; nil uses a wall clock.
func Serve(srv *Server, conns []transport.Conn, now func() time.Duration) error {
	if srv == nil || len(conns) == 0 {
		return fmt.Errorf("core: Serve needs a server and at least one connection")
	}
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	in := make(chan inbound)
	for _, c := range conns {
		c := c
		go func() {
			for {
				msg, err := c.Recv()
				in <- inbound{conn: c, msg: msg, err: err}
				if err != nil {
					return
				}
			}
		}()
	}
	byClient := make(map[int]transport.Conn, len(conns))
	active := len(conns)
	// A client leaves exactly once, whether we notice via its done note
	// or via its connection closing — most clients produce both signals,
	// and double-counting would end the loop while slower clients still
	// await gradients (a deadlock the chaos work's shuffled CI exposed).
	left := make(map[transport.Conn]bool, len(conns))
	depart := func(c transport.Conn) {
		if !left[c] {
			left[c] = true
			active--
		}
	}

	drain := func() error {
		for {
			reply, ok, err := srv.ProcessNext(now())
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			conn, seen := byClient[reply.ClientID]
			if !seen {
				return fmt.Errorf("core: no connection for client %d", reply.ClientID)
			}
			if err := conn.Send(reply); err != nil {
				return fmt.Errorf("core: send gradient to client %d: %w", reply.ClientID, err)
			}
		}
	}

	for active > 0 {
		rx := <-in
		if rx.err != nil {
			if errors.Is(rx.err, transport.ErrClosed) {
				depart(rx.conn)
				continue
			}
			return fmt.Errorf("core: server recv: %w", rx.err)
		}
		switch rx.msg.Type {
		case transport.MsgActivation:
			byClient[rx.msg.ClientID] = rx.conn
			if err := srv.Enqueue(rx.msg, now()); err != nil {
				return err
			}
			if err := drain(); err != nil {
				return err
			}
		case transport.MsgControl:
			if rx.msg.Note == DoneNote {
				depart(rx.conn)
				if sync, ok := srv.Queue.(interface{ Deactivate(int) }); ok {
					sync.Deactivate(rx.msg.ClientID)
				}
				if err := drain(); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("core: server got unexpected %v from client %d", rx.msg.Type, rx.msg.ClientID)
		}
	}
	return drain()
}
