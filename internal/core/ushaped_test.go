package core

import (
	"testing"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

func TestSplitUPartitions(t *testing.T) {
	r := mathx.NewRNG(1)
	m, err := nn.BuildPaperCNN(smallModel(), r)
	if err != nil {
		t.Fatal(err)
	}
	total := m.Net.Len()
	lower, middle, head, err := SplitU(m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lower.Len()+middle.Len()+head.Len() != total {
		t.Fatalf("%d+%d+%d != %d", lower.Len(), middle.Len(), head.Len(), total)
	}
	// Composition equals the monolithic forward.
	x := smallData(t, 2, 3).X
	whole := m.Net.Forward(x, false)
	split := head.Forward(middle.Forward(lower.Forward(x, false), false), false)
	if !whole.Equal(split, 1e-12) {
		t.Fatal("U composition differs from monolithic forward")
	}
	// Head too large rejected.
	if _, _, _, err := SplitU(m, 2, total); err == nil {
		t.Fatal("oversized head accepted")
	}
	if _, _, _, err := SplitU(m, 1, 0); err == nil {
		t.Fatal("zero head accepted")
	}
}

// TestUShapedEquivalentToMonolithic extends invariant #1 to the U-shaped
// variant: one client, shared init — training must be bitwise identical
// to monolithic SGD on the same batch stream.
func TestUShapedEquivalentToMonolithic(t *testing.T) {
	const (
		seed      = uint64(11)
		batchSize = 8
		steps     = 5
		lr        = 0.05
	)
	ds := smallData(t, 64, 13)
	for _, tc := range []struct{ cut, head int }{{1, 1}, {1, 3}, {2, 1}} {
		dep, err := NewUShaped(UShapedConfig{
			Model: smallModel(), Cut: tc.cut, HeadLayers: tc.head,
			Clients: 1, Seed: seed, SharedClientInit: true,
			BatchSize: batchSize, LR: lr,
		}, []*data.Dataset{ds})
		if err != nil {
			t.Fatal(err)
		}
		if err := dep.TrainRounds(steps); err != nil {
			t.Fatal(err)
		}

		mono, err := nn.BuildPaperCNN(smallModel(), mathx.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		batcher, err := data.NewBatcher(ds, batchSize, mathx.NewRNG(seed+13))
		if err != nil {
			t.Fatal(err)
		}
		o, err := opt.NewSGD(opt.Config{LR: lr})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			batch, ok := batcher.Next()
			if !ok {
				batch, _ = batcher.Next()
			}
			mono.Net.ZeroGrad()
			logits := mono.Net.Forward(batch.X, true)
			_, grad, err := nn.SoftmaxCrossEntropy(logits, batch.Y)
			if err != nil {
				t.Fatal(err)
			}
			mono.Net.Backward(grad)
			o.Step(mono.Net.Params())
		}

		split := append(append(dep.Clients[0].Lower.Params(), dep.Server.Middle.Params()...),
			dep.Clients[0].Head.Params()...)
		monoP := mono.Net.Params()
		if len(split) != len(monoP) {
			t.Fatalf("cut=%d head=%d: param counts %d vs %d", tc.cut, tc.head, len(split), len(monoP))
		}
		for i := range split {
			if !split[i].Value.Equal(monoP[i].Value, 0) {
				t.Fatalf("cut=%d head=%d: parameter %s diverged", tc.cut, tc.head, split[i].Name)
			}
		}
	}
}

func TestUShapedNoLabelLeak(t *testing.T) {
	// Protocol-level: a features/feature-grad message carrying labels
	// must be rejected by validation.
	bad := &transport.Message{
		Type:    transport.MsgFeatures,
		Payload: tensor.New(1, 2),
		Labels:  []int{0},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("features message with labels accepted")
	}
	bad.Type = transport.MsgFeatureGrad
	if err := bad.Validate(); err == nil {
		t.Fatal("feature-grad message with labels accepted")
	}

	// End-to-end: run a round and confirm the messages the client emits
	// carry no labels.
	ds := smallData(t, 32, 17)
	dep, err := NewUShaped(UShapedConfig{
		Model: smallModel(), Cut: 1, Clients: 1, Seed: 3, BatchSize: 8, LR: 0.05,
	}, []*data.Dataset{ds})
	if err != nil {
		t.Fatal(err)
	}
	up, err := dep.Clients[0].lowerForward(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(up.Labels) != 0 {
		t.Fatal("uplink activation carries labels")
	}
	feats, err := dep.Server.middleForward(up, 0)
	if err != nil {
		t.Fatal(err)
	}
	fgrad, _, err := dep.Clients[0].headRound(feats, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fgrad.Labels) != 0 {
		t.Fatal("feature gradient carries labels")
	}
}

func TestUShapedMultiClientTrainsAndEvaluates(t *testing.T) {
	ds := smallData(t, 96, 19)
	shards, err := data.PartitionIID(ds, 3, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := NewUShaped(UShapedConfig{
		Model: smallModel(), Cut: 1, Clients: 3, Seed: 7, BatchSize: 8, LR: 0.05,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.TrainRounds(6); err != nil {
		t.Fatal(err)
	}
	if dep.Server.Steps() != 18 {
		t.Fatalf("server steps = %d, want 18", dep.Server.Steps())
	}
	test := smallData(t, 40, 23)
	cm, err := dep.Evaluate(0, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := cm.Accuracy(); acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v", acc)
	}
	if _, err := dep.Evaluate(9, test); err == nil {
		t.Fatal("bad index accepted")
	}
}

func TestUShapedValidation(t *testing.T) {
	ds := smallData(t, 16, 29)
	if _, err := NewUShaped(UShapedConfig{Model: smallModel(), Clients: 2}, []*data.Dataset{ds}); err == nil {
		t.Fatal("shard mismatch accepted")
	}
	dep, err := NewUShaped(UShapedConfig{Model: smallModel(), Clients: 1}, []*data.Dataset{ds})
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.TrainRounds(0); err == nil {
		t.Fatal("zero rounds accepted")
	}
}
