package transport

import (
	"net"

	"github.com/stsl/stsl/internal/obs"
)

// ConnInstruments is the wire-level telemetry bundle shared by every
// instrumented carrier of one endpoint (a server aggregates all its
// sessions into one bundle). Byte counts are measured at the socket
// boundary — after framing, before the kernel — so they are the real
// wire cost of the activation/gradient exchange. nil fields (or a nil
// bundle) are no-ops.
type ConnInstruments struct {
	// FramesIn counts messages decoded (stsl_transport_frames_total
	// {dir="in"}).
	FramesIn *obs.Counter
	// FramesOut counts messages encoded (stsl_transport_frames_total
	// {dir="out"}).
	FramesOut *obs.Counter
	// BytesIn counts payload bytes read off the socket
	// (stsl_transport_bytes_total{dir="in"}).
	BytesIn *obs.Counter
	// BytesOut counts payload bytes written to the socket
	// (stsl_transport_bytes_total{dir="out"}).
	BytesOut *obs.Counter
	// Encode times Message.Encode + flush per frame
	// (stsl_transport_encode_seconds).
	Encode *obs.Histogram
	// Decode times Decode per frame, excluding time blocked waiting for
	// the first byte — it measures codec cost, not peer silence
	// (stsl_transport_decode_seconds).
	Decode *obs.Histogram
}

// NewConnInstruments registers the transport metric family on reg. A
// nil reg returns all-nil (no-op) instruments.
func NewConnInstruments(reg *obs.Registry) *ConnInstruments {
	return &ConnInstruments{
		FramesIn:  reg.Counter("stsl_transport_frames_total", obs.Labels{"dir": "in"}),
		FramesOut: reg.Counter("stsl_transport_frames_total", obs.Labels{"dir": "out"}),
		BytesIn:   reg.Counter("stsl_transport_bytes_total", obs.Labels{"dir": "in"}),
		BytesOut:  reg.Counter("stsl_transport_bytes_total", obs.Labels{"dir": "out"}),
		Encode:    reg.Histogram("stsl_transport_encode_seconds", nil),
		Decode:    reg.Histogram("stsl_transport_decode_seconds", nil),
	}
}

// countingConn wraps a net.Conn, crediting read/written bytes to the
// bundle's counters at the socket boundary.
type countingConn struct {
	net.Conn
	ins *ConnInstruments
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.ins.BytesIn.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.ins.BytesOut.Add(int64(n))
	return n, err
}
