package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/tensor"
)

// corpusMessages are real frames of every message kind — the seed corpus
// is recorded by encoding them, so the fuzzer starts from wire bytes the
// protocol actually produces rather than from noise.
func corpusMessages(tb testing.TB) []*Message {
	tb.Helper()
	act := tensor.New(2, 3, 4, 4)
	for i := range act.Data() {
		act.Data()[i] = float64(i) * 0.25
	}
	grad := tensor.New(2, 8)
	grad.Data()[3] = -1.5
	// TSL2 frames: the same payloads tagged float32 exercise the
	// dtype-byte header path end to end.
	act32 := act.Clone().SetDType(tensor.Float32)
	grad32 := grad.Clone().SetDType(tensor.Float32)
	return []*Message{
		{Type: MsgActivation, ClientID: 3, Seq: 7, Epoch: 1, SentAt: 1234,
			Payload: act, Labels: []int{0, 2}},
		{Type: MsgGradient, ClientID: 3, Seq: 7, Epoch: 1, SentAt: 2345, Payload: grad},
		{Type: MsgControl, ClientID: 1, Note: "join"},
		{Type: MsgControl, ClientID: 1, Seq: 0x7ead11ed, Note: "welcome"},
		{Type: MsgFeatures, ClientID: 0, Seq: 2, Payload: tensor.New(1, 6)},
		{Type: MsgFeatureGrad, ClientID: 0, Seq: 2, Payload: tensor.New(1, 6)},
		{Type: MsgActivation, ClientID: 5, Seq: 9, Epoch: 2, SentAt: 3456,
			Payload: act32, Labels: []int{1, 3}},
		{Type: MsgGradient, ClientID: 5, Seq: 9, Epoch: 2, SentAt: 4567, Payload: grad32},
		// MSG2 frames: structured refusals carrying a code and a
		// RetryAfter hint in the extended header.
		{Type: MsgControl, ClientID: 9, Note: "refused: overloaded",
			Code: RefusalOverloaded, RetryAfter: 25 * time.Millisecond},
		{Type: MsgControl, ClientID: 9, Seq: 41, Note: "rejected",
			Code: RefusalExpired, RetryAfter: 3 * time.Millisecond},
	}
}

// encode renders a message to wire bytes, failing the test on error.
func encode(tb testing.TB, m *Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		tb.Fatalf("encode seed frame: %v", err)
	}
	return buf.Bytes()
}

// FuzzDecode hammers the wire decoder with mutated frames. The contract
// under test: malformed, truncated, or oversized input returns an error
// — never a panic, never an unbounded allocation — and any input that
// does decode survives a re-encode/re-decode round trip unchanged (so a
// relay cannot corrupt a message it forwards).
func FuzzDecode(f *testing.F) {
	for _, m := range corpusMessages(f) {
		raw := encode(f, m)
		f.Add(raw)
		// Truncations at structural boundaries: header, payload header,
		// the TSL2 dtype byte (34), the MSG2 refusal extension (31–38),
		// mid-data, labels, note length.
		for _, cut := range []int{1, 4, 29, 31, 34, 38, len(raw) / 2, len(raw) - 1} {
			if cut > 0 && cut < len(raw) {
				f.Add(raw[:cut])
			}
		}
	}
	// An adversarial seed: a plausible header announcing an oversized
	// label block.
	big := encode(f, corpusMessages(f)[0])
	big[26], big[27], big[28] = 0xff, 0xff, 0xff
	f.Add(big)
	// A flipped payload-present flag: must be rejected as bad framing,
	// not silently decoded without its payload.
	flag2 := encode(f, corpusMessages(f)[0])
	flag2[25] = 2
	f.Add(flag2)
	// A TSL2 payload whose dtype byte is not a dtype.
	badDT := encode(f, corpusMessages(f)[6])
	badDT[34] = 0x7f
	f.Add(badDT)
	// An MSG2 refusal whose code byte is not a defined code.
	badCode := encode(f, corpusMessages(f)[8])
	badCode[30] = 0x7f
	f.Add(badCode)
	// MSGC seeds: valid checksummed frames, trailer truncations, and a
	// CRC mismatch — the fuzzer mutates from wire bytes the checksummed
	// codec actually produces.
	for _, m := range corpusMessages(f) {
		raw := encodeChecksummed(f, m)
		f.Add(raw)
		f.Add(raw[:len(raw)-4]) // trailer cut off entirely
		f.Add(raw[:len(raw)-2]) // trailer torn mid-word
		bad := append([]byte(nil), raw...)
		bad[len(bad)-1] ^= 0xff // trailer disagrees with the body
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejecting garbage is the correct outcome
		}
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatalf("decoded message failed to re-encode: %v\nmessage: %+v", err, m)
		}
		m2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		// Compare at the wire level, not with DeepEqual: payload floats
		// can be NaN (NaN != NaN), but their bit patterns must survive
		// the round trip exactly.
		var buf2 bytes.Buffer
		if err := m2.Encode(&buf2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("round trip changed the wire bytes:\n first: %+v\nsecond: %+v", m, m2)
		}
		// Checksummed round trip: the MSGC framing of any decodable
		// message must decode back, and a single bit flipped anywhere in
		// the frame must be rejected — that is the whole point of the
		// trailer. The flipped bit is derived from the input so each
		// corpus entry probes a different position deterministically.
		var cbuf bytes.Buffer
		if err := m.EncodeChecksummed(&cbuf); err != nil {
			t.Fatalf("decoded message failed to encode checksummed: %v", err)
		}
		cframe := cbuf.Bytes()
		if _, err := Decode(bytes.NewReader(cframe)); err != nil {
			t.Fatalf("checksummed re-encode failed to decode: %v", err)
		}
		var seed uint64
		for _, b := range data {
			seed = seed*131 + uint64(b)
		}
		bit := int(seed % uint64(len(cframe)*8))
		mut := append([]byte(nil), cframe...)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Fatalf("single bit flip at %d of a checksummed frame decoded successfully", bit)
		}
	})
}

// FuzzDecodeStream feeds the decoder two concatenated fuzzed frames —
// the framing must either consume the first cleanly (leaving the reader
// positioned at the second) or error; it must never panic on what
// follows a valid frame.
func FuzzDecodeStream(f *testing.F) {
	msgs := corpusMessages(f)
	f.Add(encode(f, msgs[0]), encode(f, msgs[2]))
	f.Add(encode(f, msgs[1]), []byte{0xde, 0xad})
	// Mixed framings on one stream: checksummed then legacy, legacy then
	// checksummed, and a CRC-mismatched frame ahead of a valid one (the
	// decoder must stay positioned to read the second).
	f.Add(encodeChecksummed(f, msgs[0]), encode(f, msgs[2]))
	f.Add(encode(f, msgs[2]), encodeChecksummed(f, msgs[1]))
	badFirst := encodeChecksummed(f, msgs[0])
	badFirst[len(badFirst)-1] ^= 0xff
	f.Add(badFirst, encodeChecksummed(f, msgs[2]))
	f.Fuzz(func(t *testing.T, first, second []byte) {
		r := bytes.NewReader(append(append([]byte{}, first...), second...))
		for i := 0; i < 2; i++ {
			// ErrChecksum leaves the stream positioned at the next frame
			// — a receive loop skips and reads on, so the fuzzer does too.
			if _, err := Decode(r); err != nil && !errors.Is(err, ErrChecksum) {
				return
			}
		}
	})
}
