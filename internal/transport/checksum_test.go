package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"sync"
	"testing"

	"github.com/stsl/stsl/internal/simnet"
	"github.com/stsl/stsl/internal/tensor"
)

// encodeChecksummed renders a message as an MSGC frame, failing the test
// on error.
func encodeChecksummed(tb testing.TB, m *Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := m.EncodeChecksummed(&buf); err != nil {
		tb.Fatalf("encode checksummed frame: %v", err)
	}
	return buf.Bytes()
}

// TestChecksummedGoldenFrame pins the MSGC frame byte-for-byte: outer
// magic, the unchanged inner MSG1 encoding, and the little-endian CRC32C
// trailer. If this test breaks, the wire format changed and deployed
// peers will stop interoperating.
func TestChecksummedGoldenFrame(t *testing.T) {
	const golden = "4347534d" + // "MSGC" magic, little-endian on the wire
		"3147534d0301000000000000000000000000000000000000000000000000040000006a6f696e" + // inner MSG1 frame
		"dd507218" // CRC32C of the inner bytes, little-endian
	frame := encodeChecksummed(t, &Message{Type: MsgControl, ClientID: 1, Note: "join"})
	if got := hex.EncodeToString(frame); got != golden {
		t.Fatalf("MSGC frame bytes changed:\n got  %s\n want %s", got, golden)
	}
}

// TestChecksummedFrameLayout checks every corpus message's MSGC frame
// against the layout contract with stdlib crc32 as an independent oracle:
// the inner bytes are the plain encoding unchanged (so a legacy decoder
// fed the inner region would accept them), and the trailer is their
// CRC32C.
func TestChecksummedFrameLayout(t *testing.T) {
	table := crc32.MakeTable(crc32.Castagnoli)
	for i, m := range corpusMessages(t) {
		frame := encodeChecksummed(t, m)
		if got := binary.LittleEndian.Uint32(frame); got != 0x4d534743 {
			t.Fatalf("message %d: outer magic %#x, want MSGC", i, got)
		}
		inner := encode(t, m)
		if !bytes.Equal(frame[4:len(frame)-4], inner) {
			t.Fatalf("message %d: inner bytes differ from the plain encoding", i)
		}
		want := crc32.Checksum(inner, table)
		if got := binary.LittleEndian.Uint32(frame[len(frame)-4:]); got != want {
			t.Fatalf("message %d: trailer %08x, want crc32c %08x", i, got, want)
		}
	}
}

// TestChecksummedRoundTrip: every corpus message survives the MSGC
// framing field-for-field, through both Decode and a reused DecodeInto.
func TestChecksummedRoundTrip(t *testing.T) {
	var reused Message
	for i, m := range corpusMessages(t) {
		frame := encodeChecksummed(t, m)
		got, err := Decode(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("message %d: decode: %v", i, err)
		}
		if !bytes.Equal(encode(t, got), encode(t, m)) {
			t.Fatalf("message %d: round trip changed the message", i)
		}
		if err := DecodeInto(bytes.NewReader(frame), &reused); err != nil {
			t.Fatalf("message %d: decode into: %v", i, err)
		}
		if !bytes.Equal(encode(t, &reused), encode(t, m)) {
			t.Fatalf("message %d: reused decode changed the message", i)
		}
	}
}

// TestChecksumMagicHamming: no single bit flip converts one frame magic
// into another, so a flipped bit can never silently reroute a frame to
// the wrong decoder (in particular it cannot strip the checksum).
func TestChecksumMagicHamming(t *testing.T) {
	magics := []uint32{0x4d534731, 0x4d534732, 0x4d534743} // MSG1, MSG2, MSGC
	for _, a := range magics {
		for bit := 0; bit < 32; bit++ {
			flipped := a ^ (1 << bit)
			for _, b := range magics {
				if flipped == b {
					t.Fatalf("magic %#x flips into %#x with one bit", a, b)
				}
			}
		}
	}
}

// TestChecksumSingleBitFlipRejected: every single-bit corruption of a
// checksummed frame is rejected — no flipped frame decodes. Flips in the
// frame body surface as ErrChecksum, which deliberately does NOT match
// ErrClosed: the stream survived, only the frame is lost.
func TestChecksumSingleBitFlipRejected(t *testing.T) {
	if errors.Is(ErrChecksum, ErrClosed) {
		t.Fatal("ErrChecksum must not match ErrClosed — the connection survives a corrupt frame")
	}
	for i, m := range corpusMessages(t) {
		frame := encodeChecksummed(t, m)
		sawChecksum := false
		for bit := 0; bit < len(frame)*8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[bit/8] ^= 1 << (bit % 8)
			_, err := Decode(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("message %d: flip of bit %d decoded successfully", i, bit)
			}
			if errors.Is(err, ErrChecksum) {
				sawChecksum = true
				if errors.Is(err, ErrClosed) {
					t.Fatalf("message %d bit %d: ErrChecksum matched ErrClosed", i, bit)
				}
			}
		}
		if !sawChecksum {
			t.Fatalf("message %d: no flip was reported as a checksum mismatch", i)
		}
	}
}

// TestChecksumStreamSurvivesCorruptFrame: after ErrChecksum the reader is
// positioned at the next frame — a receive loop skips the bad frame and
// keeps decoding, mixing checksummed and legacy frames freely.
func TestChecksumStreamSurvivesCorruptFrame(t *testing.T) {
	msgs := corpusMessages(t)
	bad := encodeChecksummed(t, msgs[0])
	bad[100] ^= 0x10 // flip a payload-data bit, framing intact
	var stream bytes.Buffer
	stream.Write(bad)
	stream.Write(encodeChecksummed(t, msgs[1]))
	stream.Write(encode(t, msgs[2])) // legacy frame after a checksummed one

	if _, err := Decode(&stream); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt frame: %v, want ErrChecksum", err)
	}
	m, err := Decode(&stream)
	if err != nil || m.Type != MsgGradient {
		t.Fatalf("frame after corruption: %v %v", m, err)
	}
	m, err = Decode(&stream)
	if err != nil || m.Note != "join" {
		t.Fatalf("legacy frame after checksummed: %v %v", m, err)
	}
}

// TestChecksummedTrailerTruncation: a frame cut in its trailer (or inner
// body) is torn, never a clean EOF and never a silent accept.
func TestChecksummedTrailerTruncation(t *testing.T) {
	frame := encodeChecksummed(t, corpusMessages(t)[0])
	for _, cut := range []int{4, 5, len(frame) - 4, len(frame) - 1} {
		_, err := Decode(bytes.NewReader(frame[:cut]))
		if err == nil || err == io.EOF {
			t.Errorf("cut=%d: err = %v, want non-EOF truncation error", cut, err)
		}
	}
}

// TestChecksummedSteadyStateAllocs: the MSGC codec path keeps the hot
// path allocation-free, same gate as the plain codec.
func TestChecksummedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; alloc counts are nondeterministic")
	}
	payload := tensor.New(8, 64)
	src := &Message{Type: MsgActivation, ClientID: 2, Seq: 5, Payload: payload, Labels: make([]int, 8)}
	if n := testing.AllocsPerRun(100, func() {
		if err := src.EncodeChecksummed(io.Discard); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("EncodeChecksummed: %v allocs/op, want 0", n)
	}

	frame := encodeChecksummed(t, src)
	r := bytes.NewReader(frame)
	var dst Message
	if err := DecodeInto(r, &dst); err != nil { // warm the storage
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		r.Reset(frame)
		if err := DecodeInto(r, &dst); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeInto (checksummed): %v allocs/op, want 0", n)
	}
}

// TestSetChecksumCarriers: the helper reaches every carrier — TCP frames
// switch encodings, in-memory pairs accept the setting as a no-op, and
// wrappers forward to what they wrap.
func TestSetChecksumCarriers(t *testing.T) {
	a, _ := NewPair(1)
	if !SetChecksum(a, true) {
		t.Error("channel pair should accept the checksum setting")
	}
	fc := NewFaultCarrier(a, nil)
	if !SetChecksum(fc, true) {
		t.Error("FaultCarrier should implement Checksummer")
	}
	hc := NewHostileCarrier(a, PoisonNaN, 0, 0)
	if !SetChecksum(hc, true) {
		t.Error("HostileCarrier should forward the checksum setting")
	}
}

// TestTCPChecksummedInterop: checksummed framing is sender-local — a
// checksumming client talks to a plain server and back with no
// negotiation, over a real TCP connection.
func TestTCPChecksummedInterop(t *testing.T) {
	lis, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	srvc := make(chan Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err == nil {
			srvc <- c
		}
	}()
	cli, err := Dial(lis.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-srvc
	defer srv.Close()
	if !SetChecksum(cli, true) {
		t.Fatal("tcp conn should implement Checksummer")
	}

	payload := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err := cli.Send(&Message{Type: MsgActivation, ClientID: 1, Seq: 9, Payload: payload, Labels: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	m, err := srv.Recv() // plain server decodes the MSGC frame transparently
	if err != nil || m.Seq != 9 || m.Payload == nil {
		t.Fatalf("server recv: %v %v", m, err)
	}
	if err := srv.Send(&Message{Type: MsgGradient, ClientID: 1, Seq: 9, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if m, err = cli.Recv(); err != nil || m.Type != MsgGradient { // plain reply to a checksumming client
		t.Fatalf("client recv: %v %v", m, err)
	}
}

// scriptSched scripts exact per-operation fault decisions, giving tests
// precise control over which operation corrupts and which bit flips.
type scriptSched struct {
	mu   sync.Mutex
	send []simnet.FaultDecision
	recv []simnet.FaultDecision
}

func (s *scriptSched) Next(op simnet.FaultOp) simnet.FaultDecision {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := &s.send
	if op == simnet.FaultRecv {
		q = &s.recv
	}
	if len(*q) == 0 {
		return simnet.FaultDecision{}
	}
	d := (*q)[0]
	*q = (*q)[1:]
	return d
}

// corruptMsg is the activation the corrupt-fault tests ship: its payload
// region dominates the frame, so payloadBit lands where framing survives
// and only the checksum (or the sanitizer) can catch the flip.
func corruptMsg(seq int) *Message {
	payload := tensor.New(2, 32)
	for i := range payload.Data() {
		payload.Data()[i] = float64(i) * 0.5
	}
	return &Message{Type: MsgActivation, ClientID: 1, Seq: seq, Payload: payload, Labels: []int{0, 1}}
}

// payloadBit picks a bit inside the payload-data region of m's
// checksummed encoding — 40 bytes from the end sits well clear of the
// trailing labels/note/trailer bytes for corruptMsg's 512-byte payload.
func payloadBit(tb testing.TB, m *Message) uint64 {
	tb.Helper()
	frame := encodeChecksummed(tb, m)
	return uint64((len(frame) - 40) * 8)
}

// TestFaultCorruptDetectedOnRecv: with checksummed framing on, a bit
// flipped in flight surfaces as ErrChecksum on Recv — the connection
// stays alive and the next delivery arrives intact.
func TestFaultCorruptDetectedOnRecv(t *testing.T) {
	msg := corruptMsg(3)
	a, b := NewPair(4)
	fc := NewFaultCarrier(b, &scriptSched{recv: []simnet.FaultDecision{
		{Action: simnet.FaultCorrupt, Bits: payloadBit(t, msg)},
	}})
	fc.SetChecksum(true)
	for i := 0; i < 2; i++ {
		if err := a.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	_, err := fc.Recv()
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted delivery: %v, want ErrChecksum", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatal("detected corruption must not look like a dead connection")
	}
	m, err := fc.Recv()
	if err != nil || m.Seq != 3 {
		t.Fatalf("delivery after corruption: %v %v", m, err)
	}
}

// TestFaultCorruptDetectedOnSend: a corrupted send is dropped silently —
// the peer never sees it, exactly like a receiver that detected and
// discarded the frame — and the link keeps working.
func TestFaultCorruptDetectedOnSend(t *testing.T) {
	msg := corruptMsg(7)
	a, b := NewPair(4)
	fc := NewFaultCarrier(a, &scriptSched{send: []simnet.FaultDecision{
		{Action: simnet.FaultCorrupt, Bits: payloadBit(t, msg)},
	}})
	fc.SetChecksum(true)
	if err := fc.Send(msg); err != nil { // corrupted: detected, dropped
		t.Fatalf("corrupted send should drop silently, got %v", err)
	}
	next := *msg
	next.Seq = 8
	if err := fc.Send(&next); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil || m.Seq != 8 {
		t.Fatalf("peer should only see the clean send: %v %v", m, err)
	}
}

// TestFaultCorruptUndetectedWithoutChecksum: the same flip with plain
// framing delivers a silently corrupted payload — the poisoning class the
// semantic sanitizer exists to catch, demonstrated here so the defense
// layers are each tested against the gap the next one covers.
func TestFaultCorruptUndetectedWithoutChecksum(t *testing.T) {
	msg := corruptMsg(3)
	payload := msg.Payload.Clone()
	var plain bytes.Buffer
	if err := msg.Encode(&plain); err != nil {
		t.Fatal(err)
	}
	a, b := NewPair(4)
	fc := NewFaultCarrier(b, &scriptSched{recv: []simnet.FaultDecision{
		{Action: simnet.FaultCorrupt, Bits: uint64((plain.Len() - 36) * 8)},
	}})
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	m, err := fc.Recv()
	if err != nil {
		t.Fatalf("plain framing cannot detect the flip: %v", err)
	}
	same := true
	for i, v := range m.Payload.Data() {
		if v != payload.Data()[i] {
			same = false
		}
	}
	if same {
		t.Fatal("flipped bit did not corrupt the payload — the test corrupts the wrong region")
	}
}

// TestHostileCarrierNaN: after the clean grace, activation payloads turn
// all-NaN on the wire while the sender's own tensor stays untouched.
func TestHostileCarrierNaN(t *testing.T) {
	a, b := NewPair(4)
	hc := NewHostileCarrier(a, PoisonNaN, 1, 0)
	payload := tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	msg := &Message{Type: MsgActivation, ClientID: 1, Seq: 1, Payload: payload, Labels: []int{0, 1}}
	for i := 0; i < 2; i++ {
		if err := hc.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := b.Recv()
	if math.IsNaN(m.Payload.Data()[0]) {
		t.Fatal("send inside the clean grace was poisoned")
	}
	m, _ = b.Recv()
	for i, v := range m.Payload.Data() {
		if !math.IsNaN(v) {
			t.Fatalf("elem %d = %v after grace, want NaN", i, v)
		}
	}
	if payload.Data()[0] != 1 {
		t.Fatal("poison leaked into the sender's own tensor")
	}
}

// TestHostileCarrierScale: the norm-bomb mode multiplies payloads, leaves
// non-activation traffic alone.
func TestHostileCarrierScale(t *testing.T) {
	a, b := NewPair(4)
	hc := NewHostileCarrier(a, PoisonScale, 0, 100)
	if err := hc.Send(&Message{Type: MsgActivation, ClientID: 1, Seq: 1,
		Payload: tensor.FromSlice([]float64{1, -2}, 1, 2), Labels: []int{0}}); err != nil {
		t.Fatal(err)
	}
	m, _ := b.Recv()
	if d := m.Payload.Data(); d[0] != 100 || d[1] != -200 {
		t.Fatalf("scaled payload = %v, want [100 -200]", d)
	}
	if err := hc.Send(&Message{Type: MsgControl, ClientID: 1, Note: "done"}); err != nil {
		t.Fatal(err)
	}
	if m, _ = b.Recv(); m.Note != "done" {
		t.Fatalf("control frame touched: %+v", m)
	}
}
