//go:build !race

package transport

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
