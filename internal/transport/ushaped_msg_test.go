package transport

import (
	"bytes"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

func TestFeatureMessagesRoundTrip(t *testing.T) {
	r := mathx.NewRNG(1)
	for _, typ := range []MsgType{MsgFeatures, MsgFeatureGrad} {
		m := &Message{
			Type: typ, ClientID: 2, Seq: 9, SentAt: 7 * time.Millisecond,
			Payload: tensor.Randn(r, 1, 2, 4, 3, 3),
		}
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatalf("%v encode: %v", typ, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%v decode: %v", typ, err)
		}
		if got.Type != typ || !got.Payload.Equal(m.Payload, 0) {
			t.Fatalf("%v round trip corrupted", typ)
		}
	}
}

func TestFeatureMessagesRejectLabels(t *testing.T) {
	for _, typ := range []MsgType{MsgFeatures, MsgFeatureGrad} {
		m := &Message{Type: typ, Payload: tensor.New(1, 2), Labels: []int{1}}
		if err := m.Validate(); err == nil {
			t.Fatalf("%v with labels accepted", typ)
		}
	}
	// Plain gradient may carry labels? No requirement either way, but it
	// must at least require a payload.
	if err := (&Message{Type: MsgFeatures}).Validate(); err == nil {
		t.Fatal("features without payload accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	cases := map[MsgType]string{
		MsgActivation:  "activation",
		MsgGradient:    "gradient",
		MsgControl:     "control",
		MsgFeatures:    "features",
		MsgFeatureGrad: "feature-grad",
		MsgType(99):    "MsgType(99)",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", typ, got, want)
		}
	}
}
