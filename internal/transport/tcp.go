package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// tcpConn adapts a net.Conn to the Conn interface with buffered framing.
// Send and Recv each take their own lock, so full-duplex use from two
// goroutines is safe.
type tcpConn struct {
	nc net.Conn

	sendMu sync.Mutex
	w      *bufio.Writer

	recvMu sync.Mutex
	r      *bufio.Reader

	closeOnce sync.Once
	closeErr  error
}

// NewTCPConn wraps an established net.Conn in the message framing.
func NewTCPConn(nc net.Conn) Conn {
	return &tcpConn{
		nc: nc,
		w:  bufio.NewWriterSize(nc, 1<<16),
		r:  bufio.NewReaderSize(nc, 1<<16),
	}
}

// Dial connects to a listening server endpoint.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(nc), nil
}

// Send implements Conn.
func (c *tcpConn) Send(m *Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := m.Encode(c.w); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("transport: flush: %w", err)
	}
	return nil
}

// Recv implements Conn. A peer that closed cleanly surfaces as ErrClosed,
// matching the in-memory transport's semantics.
func (c *tcpConn) Recv() (*Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	m, err := Decode(c.r)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return m, nil
}

// Close implements Conn.
func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

// Listener accepts framed connections.
type Listener struct {
	nl net.Listener
}

// Listen opens a TCP listener on addr (e.g. ":9000", "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{nl: nl}, nil
}

// Accept blocks for the next incoming connection.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewTCPConn(nc), nil
}

// Addr returns the bound address (useful with ":0").
func (l *Listener) Addr() string { return l.nl.Addr().String() }

// Close stops the listener.
func (l *Listener) Close() error { return l.nl.Close() }

var _ Conn = (*tcpConn)(nil)
