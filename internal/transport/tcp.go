package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// tcpConn adapts a net.Conn to the Conn interface with buffered framing.
// Send and Recv each take their own lock, so full-duplex use from two
// goroutines is safe.
type tcpConn struct {
	nc       net.Conn
	ins      *ConnInstruments
	checksum atomic.Bool

	sendMu sync.Mutex
	w      *bufio.Writer

	recvMu sync.Mutex
	r      *bufio.Reader

	closeOnce sync.Once
	closeErr  error
}

// NewTCPConn wraps an established net.Conn in the message framing.
func NewTCPConn(nc net.Conn) Conn {
	return NewInstrumentedTCPConn(nc, nil)
}

// NewInstrumentedTCPConn wraps nc in the message framing with wire
// telemetry: frame and byte counters plus encode/decode timings land in
// ins on every Send/Recv. ins == nil behaves exactly like NewTCPConn.
func NewInstrumentedTCPConn(nc net.Conn, ins *ConnInstruments) Conn {
	rw := nc
	if ins != nil {
		rw = countingConn{Conn: nc, ins: ins}
	}
	return &tcpConn{
		nc:  nc,
		ins: ins,
		w:   bufio.NewWriterSize(rw, 1<<16),
		r:   bufio.NewReaderSize(rw, 1<<16),
	}
}

// Dial connects to a listening server endpoint.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(nc), nil
}

// Send implements Conn.
func (c *tcpConn) Send(m *Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	var start time.Time
	if c.ins != nil {
		start = time.Now()
	}
	var err error
	if c.checksum.Load() {
		err = m.EncodeChecksummed(c.w)
	} else {
		err = m.Encode(c.w)
	}
	if err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("transport: flush: %w", err)
	}
	if c.ins != nil {
		c.ins.Encode.ObserveSince(start)
		c.ins.FramesOut.Inc()
	}
	return nil
}

// mapRecvErr converts a clean peer close into ErrClosed, matching the
// in-memory transport's semantics.
func mapRecvErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

// Recv implements Conn. A peer that closed cleanly surfaces as ErrClosed.
func (c *tcpConn) Recv() (*Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var start time.Time
	if c.ins != nil {
		// Block for the first byte before starting the decode clock, so
		// the histogram measures codec cost rather than peer silence.
		if _, err := c.r.Peek(1); err != nil {
			return nil, mapRecvErr(err)
		}
		start = time.Now()
	}
	m, err := Decode(c.r)
	if err != nil {
		return nil, mapRecvErr(err)
	}
	if c.ins != nil {
		c.ins.Decode.ObserveSince(start)
		c.ins.FramesIn.Inc()
	}
	return m, nil
}

// SetChecksum implements Checksummer: subsequent Sends emit checksummed
// (MSGC) frames. Recv verifies checksummed frames unconditionally — the
// frame is self-describing — so the two directions need no agreement.
func (c *tcpConn) SetChecksum(on bool) { c.checksum.Store(on) }

// SetWriteDeadline bounds subsequent Sends, forwarding to the carrier
// net.Conn. A Send that overruns the deadline fails with an error that
// matches errors.Is(err, os.ErrDeadlineExceeded); the buffered writer's
// state is undefined afterwards, so the connection must be closed. The
// cluster worker uses this to evict a stalled reader instead of wedging
// every other session behind its TCP backpressure.
func (c *tcpConn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// Close implements Conn.
func (c *tcpConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

// Listener accepts framed connections.
type Listener struct {
	nl  net.Listener
	ins *ConnInstruments
}

// Instrument attaches wire telemetry to every connection subsequently
// accepted — one shared bundle, so a server's /metrics aggregates the
// whole fleet's frames, bytes, and codec timings. Call before Accept.
func (l *Listener) Instrument(ins *ConnInstruments) { l.ins = ins }

// Listen opens a TCP listener on addr (e.g. ":9000", "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{nl: nl}, nil
}

// Accept blocks for the next incoming connection.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewInstrumentedTCPConn(nc, l.ins), nil
}

// Addr returns the bound address (useful with ":0").
func (l *Listener) Addr() string { return l.nl.Addr().String() }

// Close stops the listener.
func (l *Listener) Close() error { return l.nl.Close() }

var _ Conn = (*tcpConn)(nil)
