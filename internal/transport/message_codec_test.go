package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/tensor"
)

// TestDecodeCleanEOF: zero bytes at the frame boundary is a graceful
// disconnect — bare io.EOF, not a decode error.
func TestDecodeCleanEOF(t *testing.T) {
	if _, err := Decode(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("Decode(empty) = %v, want bare io.EOF", err)
	}
}

// TestDecodeTruncation: a stream that dies after the first byte is
// corruption, reported as an error that is NOT bare io.EOF.
func TestDecodeTruncation(t *testing.T) {
	frame := encode(t, corpusMessages(t)[0])
	for _, cut := range []int{1, 15, 29, 30, 34, len(frame) - 1} {
		_, err := Decode(bytes.NewReader(frame[:cut]))
		if err == nil {
			t.Fatalf("cut=%d: decode succeeded on truncated frame", cut)
		}
		if err == io.EOF {
			t.Errorf("cut=%d: truncation returned bare io.EOF — receive loops would treat it as a clean close", cut)
		}
		if cut >= 30 && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, tensor.ErrBadEncoding) {
			t.Errorf("cut=%d: err = %v, want unexpected-EOF or bad-encoding", cut, err)
		}
	}
}

// TestDecodeBadPayloadFlag: flag bytes other than 0/1 are bad framing.
func TestDecodeBadPayloadFlag(t *testing.T) {
	frame := encode(t, corpusMessages(t)[0])
	for _, flag := range []byte{2, 0x80, 0xff} {
		frame[25] = flag
		_, err := Decode(bytes.NewReader(frame))
		if err == nil || !strings.Contains(err.Error(), "bad payload flag") {
			t.Errorf("flag=%d: err = %v, want bad payload flag rejection", flag, err)
		}
	}
}

// TestTSL2MessageRoundTrip: a float32-tagged payload crosses the wire in
// TSL2 (half the payload bytes) and comes back float32-rounded.
func TestTSL2MessageRoundTrip(t *testing.T) {
	payload := tensor.FromSlice([]float64{0.1, 0.2, 0.3, 1.0 / 3.0}, 2, 2)
	m64 := &Message{Type: MsgActivation, ClientID: 1, Seq: 1, Payload: payload.Clone(), Labels: []int{0, 1}}
	m32 := &Message{Type: MsgActivation, ClientID: 1, Seq: 1,
		Payload: payload.Clone().SetDType(tensor.Float32), Labels: []int{0, 1}}

	var b64, b32 bytes.Buffer
	if err := m64.Encode(&b64); err != nil {
		t.Fatal(err)
	}
	if err := m32.Encode(&b32); err != nil {
		t.Fatal(err)
	}
	// TSL2 spends 1 extra header byte (dtype) and saves 4 per element.
	if want := 4*payload.Size() - 1; b64.Len()-b32.Len() != want {
		t.Errorf("f32 frame saves %d bytes, want %d", b64.Len()-b32.Len(), want)
	}

	got, err := Decode(&b32)
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload.DType() != tensor.Float32 {
		t.Fatalf("decoded payload dtype %v", got.Payload.DType())
	}
	for i, v := range payload.Data() {
		if want := float64(float32(v)); got.Payload.Data()[i] != want {
			t.Errorf("elem %d: %v, want f32-rounded %v", i, got.Payload.Data()[i], want)
		}
	}
}

// TestRefusalRoundTrip: a message carrying a refusal code and RetryAfter
// selects the MSG2 frame, costs exactly the 9-byte extension, and decodes
// back field-for-field.
func TestRefusalRoundTrip(t *testing.T) {
	plain := &Message{Type: MsgControl, ClientID: 7, Seq: 3, Note: "refused: overloaded"}
	refusal := &Message{Type: MsgControl, ClientID: 7, Seq: 3, Note: "refused: overloaded",
		Code: RefusalOverloaded, RetryAfter: 250 * time.Millisecond}

	var bPlain, bRef bytes.Buffer
	if err := plain.Encode(&bPlain); err != nil {
		t.Fatal(err)
	}
	if err := refusal.Encode(&bRef); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(bRef.Bytes()); got != 0x4d534732 {
		t.Fatalf("refusal frame magic %#x, want MSG2", got)
	}
	if diff := bRef.Len() - bPlain.Len(); diff != 9 {
		t.Fatalf("refusal extension costs %d bytes, want 9", diff)
	}

	got, err := Decode(&bRef)
	if err != nil {
		t.Fatal(err)
	}
	if got.Code != RefusalOverloaded || got.RetryAfter != 250*time.Millisecond || got.Note != refusal.Note {
		t.Fatalf("round trip lost refusal fields: %+v", got)
	}
}

// TestLegacyFrameUnchanged: any message without refusal fields must emit
// the MSG1 magic — pre-refusal decoders and recorded streams keep working
// byte-for-byte.
func TestLegacyFrameUnchanged(t *testing.T) {
	for i, m := range corpusMessages(t)[:8] { // the pre-MSG2 corpus
		frame := encode(t, m)
		if got := binary.LittleEndian.Uint32(frame); got != 0x4d534731 {
			t.Fatalf("corpus message %d emitted magic %#x, want legacy MSG1", i, got)
		}
	}
}

// TestRefusalFieldsResetOnReuse: decoding a legacy frame into a Message
// that previously held a refusal must clear the extension fields.
func TestRefusalFieldsResetOnReuse(t *testing.T) {
	var m Message
	refusal := &Message{Type: MsgControl, Code: RefusalRetryLater, RetryAfter: time.Second}
	if err := DecodeInto(bytes.NewReader(encode(t, refusal)), &m); err != nil {
		t.Fatal(err)
	}
	if err := DecodeInto(bytes.NewReader(encode(t, corpusMessages(t)[2])), &m); err != nil {
		t.Fatal(err)
	}
	if m.Code != RefusalNone || m.RetryAfter != 0 {
		t.Fatalf("refusal fields leaked across reuse: code=%v retryAfter=%v", m.Code, m.RetryAfter)
	}
}

// TestRefusalBadCodeRejected: an undefined code byte is bad framing, and
// a truncated extension is truncation — never a silent partial decode.
func TestRefusalBadCodeRejected(t *testing.T) {
	frame := encode(t, &Message{Type: MsgControl, Code: RefusalExpired, RetryAfter: time.Millisecond})
	bad := append([]byte{}, frame...)
	bad[30] = 0x7f
	if _, err := Decode(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "refusal code") {
		t.Errorf("undefined code: err = %v, want refusal-code rejection", err)
	}
	for _, cut := range []int{31, 35, 38} {
		_, err := Decode(bytes.NewReader(frame[:cut]))
		if err == nil || err == io.EOF {
			t.Errorf("cut=%d: err = %v, want non-EOF truncation error", cut, err)
		}
	}
}

// TestDecodeIntoOverwrites: reusing one Message across frames must not
// leak fields from the previous decode.
func TestDecodeIntoOverwrites(t *testing.T) {
	msgs := corpusMessages(t)
	var m Message
	// Decode a payload+labels+note-free activation, then a control frame
	// with a note, then the activation again.
	for _, want := range []*Message{msgs[0], msgs[2], msgs[0]} {
		if err := DecodeInto(bytes.NewReader(encode(t, want)), &m); err != nil {
			t.Fatal(err)
		}
		if (m.Payload != nil) != (want.Payload != nil) {
			t.Fatalf("payload presence leaked: got %v, want %v", m.Payload != nil, want.Payload != nil)
		}
		if len(m.Labels) != len(want.Labels) || m.Note != want.Note {
			t.Fatalf("fields leaked across reuse: %+v vs %+v", m, want)
		}
	}
}

// TestMessageCodecSteadyStateAllocs: Encode and DecodeInto allocate
// nothing once the reused Message's storage is warm.
func TestMessageCodecSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; alloc counts are nondeterministic")
	}
	for _, dt := range []tensor.DType{tensor.Float64, tensor.Float32} {
		payload := tensor.New(8, 64).SetDType(dt)
		labels := make([]int, 8)
		src := &Message{Type: MsgActivation, ClientID: 2, Seq: 5, Payload: payload, Labels: labels}

		if n := testing.AllocsPerRun(100, func() {
			if err := src.Encode(io.Discard); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("Encode (%v): %v allocs/op, want 0", dt, n)
		}

		var buf bytes.Buffer
		if err := src.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		frame := buf.Bytes()
		r := bytes.NewReader(frame)
		var dst Message
		if err := DecodeInto(r, &dst); err != nil { // warm the storage
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(100, func() {
			r.Reset(frame)
			if err := DecodeInto(r, &dst); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("DecodeInto (%v): %v allocs/op, want 0", dt, n)
		}
	}
}

// BenchmarkMessageCodec measures the framing hot path; CI gates on
// 0 allocs/op for encode and decode-into.
func BenchmarkMessageCodec(b *testing.B) {
	for _, dt := range []tensor.DType{tensor.Float64, tensor.Float32} {
		payload := tensor.New(32, 256).SetDType(dt)
		for i := range payload.Data() {
			payload.Data()[i] = float64(i) * 0.001
		}
		src := &Message{Type: MsgActivation, ClientID: 2, Seq: 5, Payload: payload, Labels: make([]int, 32)}
		b.Run("encode-"+dt.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := src.Encode(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
		var buf bytes.Buffer
		if err := src.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		frame := buf.Bytes()
		b.Run("decode-"+dt.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(frame)))
			r := bytes.NewReader(frame)
			var dst Message
			for i := 0; i < b.N; i++ {
				r.Reset(frame)
				if err := DecodeInto(r, &dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
