package transport

import (
	"math"
	"sync/atomic"
)

// HostileMode selects how a HostileCarrier poisons outgoing activations.
type HostileMode uint8

const (
	// PoisonNone leaves traffic untouched.
	PoisonNone HostileMode = iota
	// PoisonNaN replaces every payload element with NaN — the broken
	// client whose local training diverged (or whose accelerator is
	// faulty) and now uploads garbage every step.
	PoisonNaN
	// PoisonScale multiplies every payload element by Scale — the
	// norm-bomb client whose finite but enormous updates would dominate
	// any naive average.
	PoisonScale
)

// HostileCarrier wraps a Conn to emulate a Byzantine or broken client:
// after AfterSends well-behaved activation uploads it starts poisoning
// every subsequent one according to Mode. The poison is applied to a
// clone, so the client's own compute state is untouched — the client
// keeps running the protocol faithfully (resends, handshakes, done),
// which is exactly what makes semantic poisoning nastier than a crash:
// nothing at the transport level looks wrong. The chaos suite and the
// stsl-endsystem -poison flag share this wrapper so the server's
// quarantine is exercised by the same code path in tests and live.
type HostileCarrier struct {
	inner Conn
	mode  HostileMode
	after int
	scale float64
	sends atomic.Int64
}

// NewHostileCarrier wraps conn. after is the number of activation
// uploads sent clean before the poisoning starts (letting the server's
// norm envelope warm up on honest traffic, as a real client that
// degrades mid-run would); scale is the PoisonScale multiplier.
func NewHostileCarrier(conn Conn, mode HostileMode, after int, scale float64) *HostileCarrier {
	return &HostileCarrier{inner: conn, mode: mode, after: after, scale: scale}
}

// Send implements Conn, poisoning activation payloads once the clean
// grace is spent.
func (c *HostileCarrier) Send(m *Message) error {
	if c.mode == PoisonNone || m.Type != MsgActivation || m.Payload == nil {
		return c.inner.Send(m)
	}
	if int(c.sends.Add(1)) <= c.after {
		return c.inner.Send(m)
	}
	pm := *m
	pm.Payload = m.Payload.Clone()
	data := pm.Payload.Data()
	switch c.mode {
	case PoisonNaN:
		for i := range data {
			data[i] = math.NaN()
		}
	case PoisonScale:
		for i := range data {
			data[i] *= c.scale
		}
	}
	return c.inner.Send(&pm)
}

// Recv implements Conn.
func (c *HostileCarrier) Recv() (*Message, error) { return c.inner.Recv() }

// Close implements Conn.
func (c *HostileCarrier) Close() error { return c.inner.Close() }

// SetChecksum implements Checksummer by forwarding: a hostile client
// still frames its poison correctly.
func (c *HostileCarrier) SetChecksum(on bool) { SetChecksum(c.inner, on) }

var _ Conn = (*HostileCarrier)(nil)
