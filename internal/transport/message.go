// Package transport defines the messages exchanged between end-systems
// and the centralized server, and two interchangeable carriers for them:
// an in-memory channel pair for simulation and tests, and a TCP carrier
// with an explicit binary wire format for real deployments.
//
// The protocol is the split-learning exchange from the paper: end-systems
// send the activations of their last local hidden layer together with the
// batch labels ("smashed data"); the server replies with the gradient of
// the loss with respect to those activations. Raw inputs never appear in
// any message — that is the privacy property the framework exists for.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/stsl/stsl/internal/tensor"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Message kinds. Values are part of the wire format; do not reorder.
const (
	// MsgActivation carries client→server forward activations + labels.
	MsgActivation MsgType = iota + 1
	// MsgGradient carries server→client gradients w.r.t. the activations.
	MsgGradient
	// MsgControl carries protocol control notes (hello, done, errors).
	MsgControl
	// MsgFeatures carries server→client middle-stack outputs in the
	// U-shaped (no-label-sharing) protocol variant.
	MsgFeatures
	// MsgFeatureGrad carries client→server gradients w.r.t. those
	// features in the U-shaped variant.
	MsgFeatureGrad
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgActivation:
		return "activation"
	case MsgGradient:
		return "gradient"
	case MsgControl:
		return "control"
	case MsgFeatures:
		return "features"
	case MsgFeatureGrad:
		return "feature-grad"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// RefusalCode classifies a structured refusal: a control reply that says
// "no" to an admission and tells the client how to respond. Codes ride a
// self-describing extended frame (MSG2) that is emitted only when set, so
// every code-free message keeps the legacy MSG1 bytes exactly.
type RefusalCode uint8

// Refusal codes. Values are part of the wire format; do not reorder.
const (
	// RefusalNone marks an ordinary message (never serialised — a zero
	// code with a zero RetryAfter encodes as a legacy MSG1 frame).
	RefusalNone RefusalCode = iota
	// RefusalOverloaded refuses a join: the server is at MaxSessions or
	// its shed gate is open. Back off (at least RetryAfter) and rejoin.
	RefusalOverloaded
	// RefusalRetryLater bounces one activation transiently — brownout
	// parking, not session death. Back off RetryAfter and resend.
	RefusalRetryLater
	// RefusalExpired reports a queued activation was shed past its
	// enqueue deadline, not trained on. Resend it.
	RefusalExpired
)

// String implements fmt.Stringer.
func (c RefusalCode) String() string {
	switch c {
	case RefusalNone:
		return "none"
	case RefusalOverloaded:
		return "overloaded"
	case RefusalRetryLater:
		return "retry-later"
	case RefusalExpired:
		return "expired"
	default:
		return fmt.Sprintf("RefusalCode(%d)", uint8(c))
	}
}

// Message is one protocol datagram.
type Message struct {
	Type     MsgType
	ClientID int
	// Seq numbers the batches of one client; a gradient reply echoes the
	// Seq of the activation it answers.
	Seq int
	// Epoch is the client's local epoch counter (diagnostics only).
	Epoch int
	// SentAt is the sender's (virtual or wall) clock at transmission;
	// the scheduling queue uses it to measure staleness.
	SentAt time.Duration
	// Payload holds activations (MsgActivation) or gradients
	// (MsgGradient); nil for control messages.
	Payload *tensor.Tensor
	// Labels accompany activations so the server can compute the loss.
	Labels []int
	// Note carries control text.
	Note string
	// Code classifies a structured refusal (overload, brownout, deadline
	// shed). RefusalNone on ordinary traffic. A non-zero Code (or
	// RetryAfter) selects the extended MSG2 frame on the wire.
	Code RefusalCode
	// RetryAfter is the server's backoff hint on a refusal: the client
	// should not retry sooner. 0 means no hint.
	RetryAfter time.Duration
	// WireSize, when positive, overrides the simulated wire size in
	// bytes — set by senders that apply payload compression so the
	// network model charges the compressed size. It is advisory and not
	// itself serialised.
	WireSize int
}

// Validate checks protocol-level invariants.
func (m *Message) Validate() error {
	switch m.Type {
	case MsgActivation:
		if m.Payload == nil {
			return errors.New("transport: activation message without payload")
		}
		if m.Payload.Dims() == 0 {
			// Dim(0) below would panic on a rank-0 payload, which a
			// corrupted frame can produce.
			return errors.New("transport: activation payload has no batch dimension")
		}
		if len(m.Labels) == 0 {
			return errors.New("transport: activation message without labels")
		}
		if m.Payload.Dim(0) != len(m.Labels) {
			return fmt.Errorf("transport: activation batch %d does not match %d labels",
				m.Payload.Dim(0), len(m.Labels))
		}
	case MsgGradient, MsgFeatures, MsgFeatureGrad:
		if m.Payload == nil {
			return fmt.Errorf("transport: %v message without payload", m.Type)
		}
		if m.Type != MsgGradient && len(m.Labels) != 0 {
			// The U-shaped variant exists so labels never leave the
			// end-system; refuse to build a message that would leak them.
			return fmt.Errorf("transport: %v message must not carry labels", m.Type)
		}
	case MsgControl:
		// No requirements.
	default:
		return fmt.Errorf("transport: unknown message type %d", m.Type)
	}
	if m.Code > RefusalExpired {
		return fmt.Errorf("transport: unknown refusal code %d", uint8(m.Code))
	}
	if m.RetryAfter < 0 {
		return fmt.Errorf("transport: negative RetryAfter %v", m.RetryAfter)
	}
	return nil
}

const (
	msgMagic uint32 = 0x4d534731 // "MSG1": the legacy frame
	// msgMagic2 tags the extended frame carrying the refusal code and
	// RetryAfter hint. Same self-describing-magic pattern as the tensor
	// codec's TSL1/TSL2: no negotiation, the frame announces its own
	// layout, and senders emit MSG2 only when the extension fields are
	// set — so every pre-refusal message stays byte-identical to MSG1.
	msgMagic2 uint32 = 0x4d534732 // "MSG2"
)

// maxLabels bounds decoded label slices against corrupted headers.
const maxLabels = 1 << 24

// Fixed framing header sizes in bytes. MSG2 appends a refusal code byte
// and a uint64 RetryAfter to the MSG1 layout.
const (
	msgHdrLen  = 30
	msgHdrLen2 = msgHdrLen + 9
)

// frameChunk sizes the pooled framing scratch: big enough for the header,
// the note length word, and a useful run of labels per Write call.
const frameChunk = 4096

// framePool recycles framing scratch across Encode/Decode calls so the
// steady-state codec path allocates nothing. (Tensor payloads stream
// through the tensor package's own pool.)
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, frameChunk)
		return &b
	},
}

// Encode writes the message in the framing format. It is the inverse of
// Decode and performs no allocations: header, labels and note length all
// stream through one pooled scratch buffer straight to w, which in the
// TCP carrier is the connection's bufio writer.
func (m *Message) Encode(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	bufp := framePool.Get().(*[]byte)
	defer framePool.Put(bufp)
	hdr := *bufp

	// The extension fields select the frame: code-free messages must stay
	// byte-identical MSG1 so pre-refusal peers and recorded streams keep
	// decoding unchanged.
	magic, hdrLen := msgMagic, msgHdrLen
	if m.Code != RefusalNone || m.RetryAfter != 0 {
		magic, hdrLen = msgMagic2, msgHdrLen2
	}
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	hdr[4] = uint8(m.Type)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(m.ClientID))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(m.Seq))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(m.Epoch))
	binary.LittleEndian.PutUint64(hdr[17:], uint64(m.SentAt))
	hdr[25] = 0 // pooled scratch is dirty; every byte must be set
	if m.Payload != nil {
		hdr[25] = 1
	}
	binary.LittleEndian.PutUint32(hdr[26:], uint32(len(m.Labels)))
	if hdrLen == msgHdrLen2 {
		hdr[30] = uint8(m.Code)
		binary.LittleEndian.PutUint64(hdr[31:], uint64(m.RetryAfter))
	}
	if _, err := w.Write(hdr[:hdrLen]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if m.Payload != nil {
		if _, err := m.Payload.WriteTo(w); err != nil {
			return fmt.Errorf("transport: write payload: %w", err)
		}
	}
	for off := 0; off < len(m.Labels); {
		chunk := len(m.Labels) - off
		if chunk > frameChunk/4 {
			chunk = frameChunk / 4
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(hdr[4*i:], uint32(m.Labels[off+i]))
		}
		if _, err := w.Write(hdr[:4*chunk]); err != nil {
			return fmt.Errorf("transport: write labels: %w", err)
		}
		off += chunk
	}
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(m.Note)))
	if _, err := w.Write(hdr[:4]); err != nil {
		return fmt.Errorf("transport: write note length: %w", err)
	}
	if len(m.Note) > 0 {
		// io.WriteString avoids the []byte copy for string-aware writers
		// (bufio.Writer, bytes.Buffer — both carriers qualify).
		if _, err := io.WriteString(w, m.Note); err != nil {
			return fmt.Errorf("transport: write note: %w", err)
		}
	}
	return nil
}

// Decode reads one message in the framing format into a fresh Message.
//
// A stream that ends cleanly before the first header byte returns bare
// io.EOF — a graceful peer close, not an error. Truncation anywhere past
// that point surfaces as a wrapped io.ErrUnexpectedEOF or decode error.
func Decode(r io.Reader) (*Message, error) {
	m := new(Message)
	if err := DecodeInto(r, m); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto is Decode reusing m's storage: the payload tensor's backing
// slices and the label slice are retained when their capacity suffices,
// so a receive loop decoding into one long-lived Message allocates
// nothing at steady state. All fields of m are overwritten; callers that
// retain the previous payload or labels must decode into a fresh Message.
func DecodeInto(r io.Reader, m *Message) error {
	return decodeInto(r, m, true)
}

// decodeInto is DecodeInto with the checksummed-frame dispatch made
// explicit: the outer decoder of an MSGC frame re-enters with
// allowChecksum=false so a corrupted stream cannot nest frames.
func decodeInto(r io.Reader, m *Message, allowChecksum bool) error {
	bufp := framePool.Get().(*[]byte)
	defer framePool.Put(bufp)
	buf := *bufp

	// The magic is read alone so the checksummed variant can hand the
	// rest of the stream to a CRC-teeing reader before any header byte
	// is consumed.
	n, err := io.ReadFull(r, buf[:4])
	if err != nil {
		if n == 0 && err == io.EOF {
			// Clean close at the frame boundary: not a decode failure.
			return io.EOF
		}
		return fmt.Errorf("transport: read header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(buf[0:])
	if magic == msgMagicC {
		if !allowChecksum {
			return errors.New("transport: nested checksummed frame")
		}
		return decodeChecksummed(r, m)
	}
	if magic != msgMagic && magic != msgMagic2 {
		return fmt.Errorf("transport: bad magic %#x", magic)
	}
	if _, err := io.ReadFull(r, buf[4:msgHdrLen]); err != nil {
		if err == io.EOF {
			// The stream ended after the magic: a torn header, not a
			// clean close.
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("transport: read header: %w", err)
	}
	m.Type = MsgType(buf[4])
	m.ClientID = int(int32(binary.LittleEndian.Uint32(buf[5:])))
	m.Seq = int(int32(binary.LittleEndian.Uint32(buf[9:])))
	m.Epoch = int(int32(binary.LittleEndian.Uint32(buf[13:])))
	m.SentAt = time.Duration(binary.LittleEndian.Uint64(buf[17:]))
	m.Note = ""
	m.WireSize = 0
	m.Code = RefusalNone
	m.RetryAfter = 0
	if magic == msgMagic2 {
		if _, err := io.ReadFull(r, buf[msgHdrLen:msgHdrLen2]); err != nil {
			return fmt.Errorf("transport: read refusal header: %w", err)
		}
		m.Code = RefusalCode(buf[30])
		m.RetryAfter = time.Duration(binary.LittleEndian.Uint64(buf[31:]))
	}
	// A flipped flag bit must read as bad framing, not as a silently
	// dropped payload followed by a misleading Validate failure.
	var hasPayload bool
	switch buf[25] {
	case 0:
		hasPayload = false
	case 1:
		hasPayload = true
	default:
		return fmt.Errorf("transport: bad payload flag %d", buf[25])
	}
	nLabels := binary.LittleEndian.Uint32(buf[26:])
	if nLabels > maxLabels {
		return fmt.Errorf("transport: implausible label count %d", nLabels)
	}
	if hasPayload {
		if m.Payload == nil {
			m.Payload = new(tensor.Tensor)
		}
		if _, err := m.Payload.ReadFrom(r); err != nil {
			if err == io.EOF {
				// Mid-frame end of stream: the header promised a payload.
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("transport: read payload: %w", err)
		}
	} else {
		m.Payload = nil
	}
	if cap(m.Labels) < int(nLabels) {
		m.Labels = make([]int, nLabels)
	} else {
		m.Labels = m.Labels[:nLabels]
	}
	for off := 0; off < int(nLabels); {
		chunk := int(nLabels) - off
		if chunk > frameChunk/4 {
			chunk = frameChunk / 4
		}
		if _, err := io.ReadFull(r, buf[:4*chunk]); err != nil {
			return fmt.Errorf("transport: read labels: %w", err)
		}
		for i := 0; i < chunk; i++ {
			m.Labels[off+i] = int(int32(binary.LittleEndian.Uint32(buf[4*i:])))
		}
		off += chunk
	}
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return fmt.Errorf("transport: read note length: %w", err)
	}
	noteLen := binary.LittleEndian.Uint32(buf[:4])
	if noteLen > 1<<20 {
		return fmt.Errorf("transport: implausible note length %d", noteLen)
	}
	if noteLen > 0 {
		nbuf := make([]byte, noteLen)
		if _, err := io.ReadFull(r, nbuf); err != nil {
			return fmt.Errorf("transport: read note: %w", err)
		}
		m.Note = string(nbuf)
	}
	return m.Validate()
}
