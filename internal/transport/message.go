// Package transport defines the messages exchanged between end-systems
// and the centralized server, and two interchangeable carriers for them:
// an in-memory channel pair for simulation and tests, and a TCP carrier
// with an explicit binary wire format for real deployments.
//
// The protocol is the split-learning exchange from the paper: end-systems
// send the activations of their last local hidden layer together with the
// batch labels ("smashed data"); the server replies with the gradient of
// the loss with respect to those activations. Raw inputs never appear in
// any message — that is the privacy property the framework exists for.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/stsl/stsl/internal/tensor"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Message kinds. Values are part of the wire format; do not reorder.
const (
	// MsgActivation carries client→server forward activations + labels.
	MsgActivation MsgType = iota + 1
	// MsgGradient carries server→client gradients w.r.t. the activations.
	MsgGradient
	// MsgControl carries protocol control notes (hello, done, errors).
	MsgControl
	// MsgFeatures carries server→client middle-stack outputs in the
	// U-shaped (no-label-sharing) protocol variant.
	MsgFeatures
	// MsgFeatureGrad carries client→server gradients w.r.t. those
	// features in the U-shaped variant.
	MsgFeatureGrad
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgActivation:
		return "activation"
	case MsgGradient:
		return "gradient"
	case MsgControl:
		return "control"
	case MsgFeatures:
		return "features"
	case MsgFeatureGrad:
		return "feature-grad"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is one protocol datagram.
type Message struct {
	Type     MsgType
	ClientID int
	// Seq numbers the batches of one client; a gradient reply echoes the
	// Seq of the activation it answers.
	Seq int
	// Epoch is the client's local epoch counter (diagnostics only).
	Epoch int
	// SentAt is the sender's (virtual or wall) clock at transmission;
	// the scheduling queue uses it to measure staleness.
	SentAt time.Duration
	// Payload holds activations (MsgActivation) or gradients
	// (MsgGradient); nil for control messages.
	Payload *tensor.Tensor
	// Labels accompany activations so the server can compute the loss.
	Labels []int
	// Note carries control text.
	Note string
	// WireSize, when positive, overrides the simulated wire size in
	// bytes — set by senders that apply payload compression so the
	// network model charges the compressed size. It is advisory and not
	// itself serialised.
	WireSize int
}

// Validate checks protocol-level invariants.
func (m *Message) Validate() error {
	switch m.Type {
	case MsgActivation:
		if m.Payload == nil {
			return errors.New("transport: activation message without payload")
		}
		if m.Payload.Dims() == 0 {
			// Dim(0) below would panic on a rank-0 payload, which a
			// corrupted frame can produce.
			return errors.New("transport: activation payload has no batch dimension")
		}
		if len(m.Labels) == 0 {
			return errors.New("transport: activation message without labels")
		}
		if m.Payload.Dim(0) != len(m.Labels) {
			return fmt.Errorf("transport: activation batch %d does not match %d labels",
				m.Payload.Dim(0), len(m.Labels))
		}
	case MsgGradient, MsgFeatures, MsgFeatureGrad:
		if m.Payload == nil {
			return fmt.Errorf("transport: %v message without payload", m.Type)
		}
		if m.Type != MsgGradient && len(m.Labels) != 0 {
			// The U-shaped variant exists so labels never leave the
			// end-system; refuse to build a message that would leak them.
			return fmt.Errorf("transport: %v message must not carry labels", m.Type)
		}
	case MsgControl:
		// No requirements.
	default:
		return fmt.Errorf("transport: unknown message type %d", m.Type)
	}
	return nil
}

const msgMagic uint32 = 0x4d534731 // "MSG1"

// maxLabels bounds decoded label slices against corrupted headers.
const maxLabels = 1 << 24

// Encode writes the message in the framing format. It is the inverse of
// Decode.
func (m *Message) Encode(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	var hdr [30]byte
	binary.LittleEndian.PutUint32(hdr[0:], msgMagic)
	hdr[4] = uint8(m.Type)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(m.ClientID))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(m.Seq))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(m.Epoch))
	binary.LittleEndian.PutUint64(hdr[17:], uint64(m.SentAt))
	if m.Payload != nil {
		hdr[25] = 1
	}
	binary.LittleEndian.PutUint32(hdr[26:], uint32(len(m.Labels)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	if m.Payload != nil {
		if _, err := m.Payload.WriteTo(w); err != nil {
			return fmt.Errorf("transport: write payload: %w", err)
		}
	}
	if len(m.Labels) > 0 {
		lbuf := make([]byte, 4*len(m.Labels))
		for i, l := range m.Labels {
			binary.LittleEndian.PutUint32(lbuf[4*i:], uint32(l))
		}
		if _, err := w.Write(lbuf); err != nil {
			return fmt.Errorf("transport: write labels: %w", err)
		}
	}
	nbuf := []byte(m.Note)
	var nlen [4]byte
	binary.LittleEndian.PutUint32(nlen[:], uint32(len(nbuf)))
	if _, err := w.Write(nlen[:]); err != nil {
		return fmt.Errorf("transport: write note length: %w", err)
	}
	if len(nbuf) > 0 {
		if _, err := w.Write(nbuf); err != nil {
			return fmt.Errorf("transport: write note: %w", err)
		}
	}
	return nil
}

// Decode reads one message in the framing format.
func Decode(r io.Reader) (*Message, error) {
	var hdr [30]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: read header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != msgMagic {
		return nil, fmt.Errorf("transport: bad magic %#x", got)
	}
	m := &Message{
		Type:     MsgType(hdr[4]),
		ClientID: int(int32(binary.LittleEndian.Uint32(hdr[5:]))),
		Seq:      int(int32(binary.LittleEndian.Uint32(hdr[9:]))),
		Epoch:    int(int32(binary.LittleEndian.Uint32(hdr[13:]))),
		SentAt:   time.Duration(binary.LittleEndian.Uint64(hdr[17:])),
	}
	hasPayload := hdr[25] == 1
	nLabels := binary.LittleEndian.Uint32(hdr[26:])
	if nLabels > maxLabels {
		return nil, fmt.Errorf("transport: implausible label count %d", nLabels)
	}
	if hasPayload {
		var t tensor.Tensor
		if _, err := t.ReadFrom(r); err != nil {
			return nil, fmt.Errorf("transport: read payload: %w", err)
		}
		m.Payload = &t
	}
	if nLabels > 0 {
		lbuf := make([]byte, 4*nLabels)
		if _, err := io.ReadFull(r, lbuf); err != nil {
			return nil, fmt.Errorf("transport: read labels: %w", err)
		}
		m.Labels = make([]int, nLabels)
		for i := range m.Labels {
			m.Labels[i] = int(int32(binary.LittleEndian.Uint32(lbuf[4*i:])))
		}
	}
	var nlen [4]byte
	if _, err := io.ReadFull(r, nlen[:]); err != nil {
		return nil, fmt.Errorf("transport: read note length: %w", err)
	}
	noteLen := binary.LittleEndian.Uint32(nlen[:])
	if noteLen > 1<<20 {
		return nil, fmt.Errorf("transport: implausible note length %d", noteLen)
	}
	if noteLen > 0 {
		nbuf := make([]byte, noteLen)
		if _, err := io.ReadFull(r, nbuf); err != nil {
			return nil, fmt.Errorf("transport: read note: %w", err)
		}
		m.Note = string(nbuf)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
