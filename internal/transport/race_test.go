//go:build race

package transport

// raceEnabled reports that this test binary was built with -race, where
// sync.Pool deliberately drops items at random (to widen race coverage)
// and steady-state allocation counts stop being deterministic.
const raceEnabled = true
