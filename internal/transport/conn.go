package transport

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is a bidirectional, ordered, reliable message channel between one
// end-system and the server. Implementations must allow concurrent Send
// and Recv from different goroutines.
type Conn interface {
	// Send transmits a message. It may block on backpressure.
	Send(m *Message) error
	// Recv blocks for the next message; it returns ErrClosed after the
	// peer closes and all buffered messages are drained.
	Recv() (*Message, error)
	// Close releases the connection. Close is idempotent.
	Close() error
}

// chanConn is one endpoint of an in-memory duplex connection.
type chanConn struct {
	send chan<- *Message
	recv <-chan *Message

	// checksum records the Checksummer setting. Messages cross by
	// pointer — there is no wire to corrupt or protect — so the flag
	// changes nothing here; it exists so wrappers (FaultCarrier's
	// corrupt emulation) and tests can observe the configured framing.
	checksum atomic.Bool

	mu       sync.Mutex
	closed   bool
	closedCh chan struct{} // closed by Close; unblocks local Send/Recv
	closeOut func()
}

// NewPair returns the two endpoints of an in-memory connection. Messages
// sent on one endpoint are received by the other, in order. buffer sets
// the per-direction channel capacity (0 gives rendezvous semantics; 1 is
// the usual choice per the style guide).
//
// Close on an endpoint unblocks both that endpoint's own pending
// Send/Recv and, once the buffer drains, the peer's Recv — so a server
// can force a session open on either kind of carrier to terminate.
func NewPair(buffer int) (Conn, Conn) {
	ab := make(chan *Message, buffer)
	ba := make(chan *Message, buffer)
	var onceAB, onceBA sync.Once
	a := &chanConn{send: ab, recv: ba, closedCh: make(chan struct{}),
		closeOut: func() { onceAB.Do(func() { close(ab) }) }}
	b := &chanConn{send: ba, recv: ab, closedCh: make(chan struct{}),
		closeOut: func() { onceBA.Do(func() { close(ba) }) }}
	return a, b
}

// Send implements Conn.
func (c *chanConn) Send(m *Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	defer func() {
		// Sending on a channel the peer closed is impossible here:
		// each direction is closed only by its sender. The recover
		// guards the race where we close concurrently with Send.
		_ = recover()
	}()
	select {
	case c.send <- m:
		return nil
	case <-c.closedCh:
		return ErrClosed
	}
}

// Recv implements Conn. Messages buffered before a local Close are still
// delivered; the closed path only wins once nothing is immediately
// readable.
func (c *chanConn) Recv() (*Message, error) {
	select {
	case m, ok := <-c.recv:
		if !ok {
			return nil, ErrClosed
		}
		return m, nil
	default:
	}
	select {
	case m, ok := <-c.recv:
		if !ok {
			return nil, ErrClosed
		}
		return m, nil
	case <-c.closedCh:
		return nil, ErrClosed
	}
}

// SetChecksum implements Checksummer. See the checksum field: a no-op
// beyond recording the preference.
func (c *chanConn) SetChecksum(on bool) { c.checksum.Store(on) }

// Close implements Conn.
func (c *chanConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	close(c.closedCh)
	c.closeOut()
	return nil
}

var _ Conn = (*chanConn)(nil)
