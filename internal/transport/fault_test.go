package transport

import (
	"errors"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/simnet"
)

func ctrl(note string) *Message {
	return &Message{Type: MsgControl, Note: note}
}

// TestFaultCarrierPassThrough checks a nil schedule changes nothing.
func TestFaultCarrierPassThrough(t *testing.T) {
	a, b := NewPair(1)
	fc := NewFaultCarrier(a, nil)
	if err := fc.Send(ctrl("hi")); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil || m.Note != "hi" {
		t.Fatalf("recv: %v %v", m, err)
	}
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer recv after close: %v", err)
	}
}

// TestFaultCarrierSeverEveryNth checks the deterministic every-Nth sever:
// sends 0 and 1 pass, send 2 severs the connection for both peers.
func TestFaultCarrierSeverEveryNth(t *testing.T) {
	a, b := NewPair(4)
	fc := NewFaultCarrier(a, simnet.NewFaults(simnet.FaultPlan{SeverEverySends: 2}))
	for i := 0; i < 2; i++ {
		if err := fc.Send(ctrl("ok")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := fc.Send(ctrl("lost")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send 2 survived the sever: %v", err)
	}
	// The two delivered messages drain, then the peer sees the sever.
	for i := 0; i < 2; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer did not observe the sever: %v", err)
	}
}

// TestFaultCarrierTruncate checks a truncated frame reports ErrTruncated
// and kills the connection, and that ErrTruncated matches ErrClosed so
// reconnect logic treats it as a connection loss.
func TestFaultCarrierTruncate(t *testing.T) {
	a, _ := NewPair(1)
	fc := NewFaultCarrier(a, simnet.NewFaults(simnet.FaultPlan{TruncateEverySends: 1}))
	if err := fc.Send(ctrl("ok")); err != nil {
		t.Fatalf("send 0: %v", err)
	}
	err := fc.Send(ctrl("cut"))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatal("ErrTruncated must match ErrClosed for reconnect handling")
	}
	if err := fc.Send(ctrl("dead")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after truncation: %v", err)
	}
}

// TestFaultCarrierDuplicate checks a duplicated delivery is returned by
// the next Recv before anything new is read.
func TestFaultCarrierDuplicate(t *testing.T) {
	a, b := NewPair(4)
	fc := NewFaultCarrier(b, simnet.NewFaults(simnet.FaultPlan{DupEveryRecvs: 1}))
	for _, note := range []string{"first", "second"} {
		if err := a.Send(ctrl(note)); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		m, err := fc.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		got = append(got, m.Note)
	}
	// Recv 0 passes, recv 1 (every-1st with n>0) duplicates "second".
	want := []string{"first", "second", "second"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deliveries %v, want %v", got, want)
		}
	}
}

// TestFaultCarrierDelay checks the delay rule stalls but still delivers.
func TestFaultCarrierDelay(t *testing.T) {
	a, b := NewPair(1)
	fc := NewFaultCarrier(a, simnet.NewFaults(simnet.FaultPlan{
		DelayProb: 1, Delay: 20 * time.Millisecond,
	}))
	start := time.Now()
	if err := fc.Send(ctrl("slow")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("send returned after %v, want ≥20ms stall", elapsed)
	}
	if m, err := b.Recv(); err != nil || m.Note != "slow" {
		t.Fatalf("delayed message lost: %v %v", m, err)
	}
}

// TestFaultsDeterministic checks two schedules built from the same plan
// issue identical verdicts for the same per-direction op sequence.
func TestFaultsDeterministic(t *testing.T) {
	plan := simnet.FaultPlan{
		Seed: 99, SeverProb: 0.2, DupProb: 0.3,
		DelayProb: 0.25, Delay: time.Millisecond,
	}
	f1, f2 := simnet.NewFaults(plan), simnet.NewFaults(plan)
	for i := 0; i < 200; i++ {
		op := simnet.FaultSend
		if i%2 == 1 {
			op = simnet.FaultRecv
		}
		d1, d2 := f1.Next(op), f2.Next(op)
		if d1 != d2 {
			t.Fatalf("op %d: verdicts diverge: %v vs %v", i, d1.Action, d2.Action)
		}
	}
}
