package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// ErrChecksum reports a checksummed frame whose CRC32C trailer did not
// match its contents: the frame arrived, framed correctly, but at least
// one bit changed in flight. Unlike truncation it deliberately does NOT
// match ErrClosed — the framing survived, so the stream is positioned at
// the next frame and the connection remains usable. Receivers drop the
// corrupted frame and keep reading; the sender's resend machinery
// (adaptive RTO on the client, dedup-by-seq on the server) recovers the
// lost message exactly once.
var ErrChecksum = errors.New("transport: frame checksum mismatch")

// msgMagicC tags the checksummed frame: the magic, a complete inner
// MSG1/MSG2 frame, then a 4-byte CRC32C of the inner bytes. Same
// self-describing-magic rule as MSG2 and the tensor codec's TSL2 — no
// negotiation, old frames keep decoding byte-for-byte, and a decoder
// that sees this magic knows to verify. The value is ≥4 bits of Hamming
// distance from both msgMagic and msgMagic2 in every byte that differs,
// so no single bit flip can silently convert a checksummed frame into a
// legacy one (or back).
const msgMagicC uint32 = 0x4d534743 // "MSGC"

// castagnoli is the CRC32C polynomial table — hardware-accelerated on
// amd64/arm64, and the checksum production storage stacks use for
// exactly this silent-corruption class.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcWriter tees writes into a running CRC32C. Pooled so the
// steady-state encode path stays allocation-free.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	return n, err
}

// crcReader tees reads into a running CRC32C; the pooled counterpart of
// crcWriter for the decode path.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, castagnoli, p[:n])
	return n, err
}

var (
	crcWriterPool = sync.Pool{New: func() any { return new(crcWriter) }}
	crcReaderPool = sync.Pool{New: func() any { return new(crcReader) }}
)

// EncodeChecksummed writes the message as a checksummed frame: the MSGC
// magic, the ordinary MSG1/MSG2 encoding, and a CRC32C trailer covering
// the inner frame bytes. Decode verifies the trailer transparently and
// returns ErrChecksum on mismatch. Like Encode it allocates nothing at
// steady state.
func (m *Message) EncodeChecksummed(w io.Writer) error {
	// Validate before the magic hits the wire so a malformed message
	// fails cleanly instead of poisoning the stream with a headerless
	// magic word.
	if err := m.Validate(); err != nil {
		return err
	}
	bufp := framePool.Get().(*[]byte)
	defer framePool.Put(bufp)
	buf := *bufp
	binary.LittleEndian.PutUint32(buf[0:], msgMagicC)
	if _, err := w.Write(buf[:4]); err != nil {
		return fmt.Errorf("transport: write checksum magic: %w", err)
	}
	cw := crcWriterPool.Get().(*crcWriter)
	cw.w, cw.crc = w, 0
	err := m.Encode(cw)
	sum := cw.crc
	cw.w = nil
	crcWriterPool.Put(cw)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[0:], sum)
	if _, err := w.Write(buf[:4]); err != nil {
		return fmt.Errorf("transport: write checksum trailer: %w", err)
	}
	return nil
}

// decodeChecksummed finishes decoding a frame whose MSGC magic has
// already been consumed: the inner frame streams through a CRC tee, then
// the trailer is read from the raw reader and compared.
func decodeChecksummed(r io.Reader, m *Message) error {
	cr := crcReaderPool.Get().(*crcReader)
	cr.r, cr.crc = r, 0
	err := decodeInto(cr, m, false)
	sum := cr.crc
	cr.r = nil
	crcReaderPool.Put(cr)
	if err != nil {
		if err == io.EOF {
			// The outer magic was already consumed, so a clean EOF here
			// is a torn frame, not a graceful close.
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("transport: checksummed frame: %w", err)
	}
	bufp := framePool.Get().(*[]byte)
	defer framePool.Put(bufp)
	buf := *bufp
	if _, err := io.ReadFull(r, buf[:4]); err != nil {
		return fmt.Errorf("transport: read checksum trailer: %w", err)
	}
	if want := binary.LittleEndian.Uint32(buf[:4]); want != sum {
		return fmt.Errorf("transport: frame crc32c %08x, trailer says %08x: %w", sum, want, ErrChecksum)
	}
	return nil
}

// Checksummer is implemented by carriers that can switch their outgoing
// frames to the checksummed encoding. Decoding needs no switch — the
// frame announces itself — so enabling checksums is a sender-local,
// per-carrier decision with no handshake.
type Checksummer interface {
	// SetChecksum turns checksummed framing on or off for subsequent
	// sends.
	SetChecksum(on bool)
}

// SetChecksum enables (or disables) checksummed framing on c when the
// carrier supports it, reporting whether it did. In-memory carriers
// pass messages by pointer and have no wire to protect; they accept the
// setting (so wrappers can observe it) but it changes nothing.
func SetChecksum(c Conn, on bool) bool {
	cs, ok := c.(Checksummer)
	if ok {
		cs.SetChecksum(on)
	}
	return ok
}
