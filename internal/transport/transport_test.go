package transport

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

func activationMsg(r *mathx.RNG, client, seq int) *Message {
	n := 2
	return &Message{
		Type:     MsgActivation,
		ClientID: client,
		Seq:      seq,
		Epoch:    1,
		SentAt:   123 * time.Millisecond,
		Payload:  tensor.Randn(r, 1, n, 4, 3, 3),
		Labels:   []int{0, 7},
	}
}

func TestMessageValidate(t *testing.T) {
	r := mathx.NewRNG(1)
	good := activationMsg(r, 0, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		m    Message
	}{
		{"activation without payload", Message{Type: MsgActivation, Labels: []int{1}}},
		{"activation without labels", Message{Type: MsgActivation, Payload: tensor.New(1, 2)}},
		{"activation batch/label mismatch", Message{Type: MsgActivation, Payload: tensor.New(3, 2), Labels: []int{0}}},
		{"gradient without payload", Message{Type: MsgGradient}},
		{"unknown type", Message{Type: 99}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.m.Validate(); err == nil {
				t.Fatal("invalid message accepted")
			}
		})
	}
	// Control message needs nothing.
	if err := (&Message{Type: MsgControl, Note: "hello"}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMessageEncodeDecodeRoundTrip(t *testing.T) {
	r := mathx.NewRNG(2)
	msgs := []*Message{
		activationMsg(r, 3, 17),
		{Type: MsgGradient, ClientID: 1, Seq: 5, Payload: tensor.Randn(r, 1, 2, 8), SentAt: time.Second},
		{Type: MsgControl, Note: "done", ClientID: 2},
		{Type: MsgControl}, // fully empty control
	}
	for i, m := range msgs {
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatalf("msg %d encode: %v", i, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("msg %d decode: %v", i, err)
		}
		if got.Type != m.Type || got.ClientID != m.ClientID || got.Seq != m.Seq ||
			got.Epoch != m.Epoch || got.SentAt != m.SentAt || got.Note != m.Note {
			t.Fatalf("msg %d header mismatch: %+v vs %+v", i, got, m)
		}
		if (got.Payload == nil) != (m.Payload == nil) {
			t.Fatalf("msg %d payload presence mismatch", i)
		}
		if m.Payload != nil && !got.Payload.Equal(m.Payload, 0) {
			t.Fatalf("msg %d payload mismatch", i)
		}
		if len(got.Labels) != len(m.Labels) {
			t.Fatalf("msg %d labels mismatch", i)
		}
		for j := range m.Labels {
			if got.Labels[j] != m.Labels[j] {
				t.Fatalf("msg %d label %d mismatch", i, j)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("garbage data stream right here"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncation mid-payload.
	r := mathx.NewRNG(3)
	var buf bytes.Buffer
	if err := activationMsg(r, 0, 0).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		n := 1 + r.Intn(4)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(10)
		}
		m := &Message{
			Type:     MsgActivation,
			ClientID: r.Intn(100),
			Seq:      r.Intn(10000),
			Epoch:    r.Intn(100),
			SentAt:   time.Duration(r.Intn(1e9)),
			Payload:  tensor.Randn(r, 1, n, 1+r.Intn(8), 1+r.Intn(4), 1+r.Intn(4)),
			Labels:   labels,
		}
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return got.Payload.Equal(m.Payload, 0) && got.Seq == m.Seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPairDelivery(t *testing.T) {
	a, b := NewPair(1)
	r := mathx.NewRNG(4)
	want := activationMsg(r, 1, 2)
	done := make(chan error, 1)
	go func() { done <- a.Send(want) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Seq != want.Seq || !got.Payload.Equal(want.Payload, 0) {
		t.Fatal("pair delivered wrong message")
	}
}

func TestPairOrdering(t *testing.T) {
	a, b := NewPair(16)
	for i := 0; i < 10; i++ {
		if err := a.Send(&Message{Type: MsgControl, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != i {
			t.Fatalf("message %d arrived out of order (seq %d)", i, m.Seq)
		}
	}
}

func TestPairCloseSemantics(t *testing.T) {
	a, b := NewPair(1)
	if err := a.Send(&Message{Type: MsgControl, Note: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Buffered message still drains.
	if m, err := b.Recv(); err != nil || m.Note != "x" {
		t.Fatalf("drain after close: %v %v", m, err)
	}
	// Then ErrClosed.
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	// Send on closed side fails.
	if err := a.Send(&Message{Type: MsgControl}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed on send, got %v", err)
	}
	// Close is idempotent.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPairRejectsInvalidMessage(t *testing.T) {
	a, _ := NewPair(1)
	if err := a.Send(&Message{Type: MsgActivation}); err == nil {
		t.Fatal("invalid message sent")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	r := mathx.NewRNG(5)
	want := activationMsg(r, 7, 42)

	serverDone := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		defer conn.Close()
		m, err := conn.Recv()
		if err != nil {
			serverDone <- err
			return
		}
		// Echo a gradient back.
		serverDone <- conn.Send(&Message{
			Type: MsgGradient, ClientID: m.ClientID, Seq: m.Seq,
			Payload: m.Payload,
		})
	}()

	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgGradient || reply.Seq != want.Seq || !reply.Payload.Equal(want.Payload, 0) {
		t.Fatal("TCP round trip corrupted message")
	}
}

func TestTCPManyMessages(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const n = 50
	serverDone := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			serverDone <- err
			return
		}
		defer conn.Close()
		for i := 0; i < n; i++ {
			m, err := conn.Recv()
			if err != nil {
				serverDone <- err
				return
			}
			if m.Seq != i {
				serverDone <- errors.New("out of order")
				return
			}
		}
		serverDone <- nil
	}()

	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := mathx.NewRNG(6)
	for i := 0; i < n; i++ {
		if err := c.Send(activationMsg(r, 0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}
}
