package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stsl/stsl/internal/simnet"
)

// ErrTruncated reports a frame cut off mid-wire by fault injection. It
// matches ErrClosed under errors.Is because a stream carrier cannot
// recover framing after a partial frame — the connection is gone either
// way — while still letting tests distinguish a truncation from a plain
// sever.
var ErrTruncated = fmt.Errorf("transport: frame truncated: %w", ErrClosed)

// FaultCarrier wraps any Conn — channel pair, net.Pipe framing, real TCP
// — with deterministic fault injection driven by a simnet.FaultSchedule:
// connection severs, frame truncation, delivery delays, and duplicated
// deliveries. It is the chaos harness's way of producing the failures a
// geo-distributed deployment actually sees (links dropping mid-round,
// gateways restarting, retransmitting networks delivering twice) without
// giving up seeded reproducibility.
//
// Fault semantics:
//
//   - Sever: the underlying connection is closed before the operation;
//     the local caller gets ErrClosed and the peer's next Recv fails.
//   - Truncate: like sever, but the operation reports ErrTruncated.
//   - Delay: the operation completes after a stall.
//   - Duplicate: a sent message is transmitted twice, or a received
//     message is delivered again on the next Recv.
//   - Corrupt: the message is encoded to wire bytes, one seeded bit is
//     flipped, and the result decoded — exactly what a silently
//     corrupting link does to a frame. The outcome depends on where the
//     bit lands and whether checksummed framing is on (SetChecksum):
//     a detected flip surfaces as ErrChecksum on Recv (the connection
//     survives; the caller skips the frame) or a silent drop on Send
//     (the peer never sees it — the sender's resend recovers); a flip
//     that breaks the framing itself severs, like truncation; and an
//     undetected flip delivers the corrupted message, which is the
//     silent-poisoning case the semantic sanitizer exists to catch.
//
// Send and Recv keep the Conn contract (safe from two goroutines); each
// direction serialises under its own lock, matching the TCP carrier.
type FaultCarrier struct {
	inner    Conn
	sched    simnet.FaultSchedule
	checksum atomic.Bool

	sendMu sync.Mutex

	recvMu sync.Mutex
	dup    *Message // pending duplicate delivery
}

// NewFaultCarrier wraps conn. A nil schedule injects nothing — the
// carrier degenerates to a pass-through, so callers can wire it
// unconditionally.
func NewFaultCarrier(conn Conn, sched simnet.FaultSchedule) *FaultCarrier {
	return &FaultCarrier{inner: conn, sched: sched}
}

// Send implements Conn, applying the schedule's verdict for this send.
func (c *FaultCarrier) Send(m *Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	d := c.next(simnet.FaultSend)
	switch d.Action {
	case simnet.FaultSever:
		c.inner.Close()
		return ErrClosed
	case simnet.FaultTruncate:
		c.inner.Close()
		return ErrTruncated
	case simnet.FaultDelay:
		sleep(d.Delay)
	case simnet.FaultDuplicate:
		if err := c.inner.Send(m); err != nil {
			return err
		}
	case simnet.FaultCorrupt:
		mc, err := c.corrupt(m, d.Bits)
		switch {
		case errors.Is(err, ErrChecksum):
			// The checksum caught the flip. On the real wire the
			// *receiver* detects and drops the frame; the observable
			// effect at the sender is a message that never arrives, so
			// the emulation drops it silently and lets the sender's
			// resend machinery recover.
			return nil
		case err != nil:
			// The flip broke the framing itself; a stream could not
			// resync past it, so the link dies like a truncation.
			c.inner.Close()
			return ErrTruncated
		}
		return c.inner.Send(mc)
	}
	return c.inner.Send(m)
}

// Recv implements Conn, applying the schedule's verdict for this
// delivery. A duplicated delivery is returned again by the next Recv,
// before anything new is read from the wire.
func (c *FaultCarrier) Recv() (*Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if m := c.dup; m != nil {
		c.dup = nil
		return m, nil
	}
	m, err := c.inner.Recv()
	if err != nil {
		return nil, err
	}
	d := c.next(simnet.FaultRecv)
	switch d.Action {
	case simnet.FaultSever:
		c.inner.Close()
		return nil, ErrClosed
	case simnet.FaultTruncate:
		c.inner.Close()
		return nil, ErrTruncated
	case simnet.FaultDelay:
		sleep(d.Delay)
	case simnet.FaultDuplicate:
		c.dup = m
	case simnet.FaultCorrupt:
		mc, cerr := c.corrupt(m, d.Bits)
		switch {
		case errors.Is(cerr, ErrChecksum):
			// Detected corruption: the frame is dropped but the stream
			// is intact. The caller counts it and reads on.
			return nil, cerr
		case cerr != nil:
			c.inner.Close()
			return nil, ErrTruncated
		}
		return mc, nil
	}
	return m, nil
}

// corrupt round-trips m through its wire encoding with one bit flipped,
// returning the decoded (corrupted) message, ErrChecksum when the
// checksummed framing detected the flip, or the decode error when the
// flip destroyed the framing.
func (c *FaultCarrier) corrupt(m *Message, bits uint64) (*Message, error) {
	var buf bytes.Buffer
	var err error
	if c.checksum.Load() {
		err = m.EncodeChecksummed(&buf)
	} else {
		err = m.Encode(&buf)
	}
	if err != nil {
		return nil, fmt.Errorf("transport: corrupt encode: %w", err)
	}
	raw := buf.Bytes()
	bit := bits % uint64(len(raw)*8)
	raw[bit/8] ^= 1 << (bit % 8)
	return Decode(bytes.NewReader(raw))
}

// SetChecksum implements Checksummer: it switches the corrupt
// emulation's framing and forwards to the inner carrier when that
// supports it too.
func (c *FaultCarrier) SetChecksum(on bool) {
	c.checksum.Store(on)
	SetChecksum(c.inner, on)
}

// Close implements Conn.
func (c *FaultCarrier) Close() error { return c.inner.Close() }

// next consults the schedule, tolerating a nil one.
func (c *FaultCarrier) next(op simnet.FaultOp) simnet.FaultDecision {
	if c.sched == nil {
		return simnet.FaultDecision{}
	}
	return c.sched.Next(op)
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

var _ Conn = (*FaultCarrier)(nil)
