package overload

import (
	"testing"
	"time"
)

// TestBackoffBounds: every draw stays in [base, max], and the upper bound
// of each draw tracks 3× the previous one (decorrelated jitter), checked
// over a long deterministic sequence.
func TestBackoffBounds(t *testing.T) {
	base, max := 5*time.Millisecond, 200*time.Millisecond
	b := NewBackoff(base, max, 42)
	prev := base
	for i := 0; i < 1000; i++ {
		d := b.Next()
		if d < base || d > max {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, d, base, max)
		}
		hi := 3 * prev
		if hi > max {
			hi = max
		}
		if hi < base {
			hi = base
		}
		if d > hi {
			t.Fatalf("draw %d: %v exceeds decorrelated bound %v (prev %v)", i, d, hi, prev)
		}
		prev = d
	}
}

// TestBackoffDeterministicAndSeedDiverse: the same seed replays the same
// sequence, and different seeds diverge — the property that keeps a
// cohort of refused clients from retrying in lock-step.
func TestBackoffDeterministicAndSeedDiverse(t *testing.T) {
	a1 := NewBackoff(time.Millisecond, time.Second, 7)
	a2 := NewBackoff(time.Millisecond, time.Second, 7)
	for i := 0; i < 50; i++ {
		if d1, d2 := a1.Next(), a2.Next(); d1 != d2 {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, d1, d2)
		}
	}
	seen := make(map[time.Duration]bool)
	for seed := uint64(1); seed <= 32; seed++ {
		b := NewBackoff(time.Millisecond, time.Second, seed)
		b.Next()
		b.Next()
		seen[b.Next()] = true
	}
	if len(seen) < 24 {
		t.Fatalf("32 seeds produced only %d distinct third draws — not jittered enough", len(seen))
	}
}

// TestBackoffReset: after Reset the growth restarts from the floor.
func TestBackoffReset(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, time.Second, 3)
	for i := 0; i < 10; i++ {
		b.Next()
	}
	b.Reset()
	if d := b.Next(); d > 3*10*time.Millisecond {
		t.Fatalf("post-reset draw %v exceeds 3×base", d)
	}
}

// TestBudgetExhaustion: a full bucket allows exactly capacity immediate
// withdrawals, then refuses until the refill rate credits a new token at
// the predicted instant.
func TestBudgetExhaustion(t *testing.T) {
	b := NewBudget(4, 2) // 4-token burst, 2 tokens/s
	now := time.Duration(0)
	for i := 0; i < 4; i++ {
		if !b.Take(now) {
			t.Fatalf("withdrawal %d refused with tokens remaining", i)
		}
	}
	if b.Take(now) {
		t.Fatal("withdrawal beyond capacity allowed")
	}
	at, ok := b.NextAt(now)
	if !ok {
		t.Fatal("refilling budget reported unrecoverable")
	}
	if want := 500 * time.Millisecond; at != want {
		t.Fatalf("next token at %v, want %v (2/s refill)", at, want)
	}
	if b.Take(at - time.Millisecond) {
		t.Fatal("withdrawal allowed before refill instant")
	}
	if !b.Take(at + time.Millisecond) {
		t.Fatal("withdrawal refused after refill instant")
	}
}

// TestBudgetNoRefill: perSec=0 is a pure burst budget that can never
// recover once spent.
func TestBudgetNoRefill(t *testing.T) {
	b := NewBudget(2, 0)
	now := time.Duration(0)
	b.Take(now)
	b.Take(now)
	if b.Take(time.Hour) {
		t.Fatal("no-refill budget recovered")
	}
	if _, ok := b.NextAt(time.Hour); ok {
		t.Fatal("no-refill budget reported a recovery instant")
	}
}

// TestBudgetCap: refill never overfills past capacity.
func TestBudgetCap(t *testing.T) {
	b := NewBudget(3, 1000)
	if got := b.Tokens(time.Hour); got != 3 {
		t.Fatalf("tokens %v exceed capacity 3 after long idle", got)
	}
}

// TestBreakerTripHalfOpenClose walks the full state machine: closed →
// (threshold failures) → open → (cooldown) → half-open → success →
// closed, with the attempt gate matching each state.
func TestBreakerTripHalfOpenClose(t *testing.T) {
	br := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 100 * time.Millisecond, MaxCooldown: time.Second})
	now := time.Duration(0)
	for i := 0; i < 2; i++ {
		if !br.Allow(now) {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		br.Failure(now, 0)
		if br.State() != BreakerClosed {
			t.Fatalf("breaker tripped after %d failures, threshold 3", i+1)
		}
	}
	br.Failure(now, 0)
	if br.State() != BreakerOpen {
		t.Fatalf("breaker %v after threshold failures, want open", br.State())
	}
	if br.Allow(now + 50*time.Millisecond) {
		t.Fatal("open breaker allowed attempt inside cooldown")
	}
	if !br.Allow(now + 101*time.Millisecond) {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if br.State() != BreakerHalfOpen {
		t.Fatalf("breaker %v after cooldown elapsed, want half-open", br.State())
	}
	br.Success()
	if br.State() != BreakerClosed {
		t.Fatalf("breaker %v after probe success, want closed", br.State())
	}
	if !br.Allow(now) {
		t.Fatal("closed breaker refused after recovery")
	}
}

// TestBreakerHalfOpenFailureEscalates: a failed probe re-opens with a
// doubled cooldown, and repeated trips keep doubling up to the cap.
func TestBreakerHalfOpenFailureEscalates(t *testing.T) {
	br := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 10 * time.Millisecond, MaxCooldown: 60 * time.Millisecond})
	now := time.Duration(0)
	br.Failure(now, 0) // trip 1: 10ms
	if got := br.OpenUntil() - now; got != 10*time.Millisecond {
		t.Fatalf("first cooldown %v, want 10ms", got)
	}
	now = br.OpenUntil()
	br.Allow(now) // half-open
	br.Failure(now, 0)
	if got := br.OpenUntil() - now; got != 20*time.Millisecond {
		t.Fatalf("second cooldown %v, want 20ms (doubled)", got)
	}
	for i := 0; i < 5; i++ {
		now = br.OpenUntil()
		br.Allow(now)
		br.Failure(now, 0)
	}
	if got := br.OpenUntil() - now; got != 60*time.Millisecond {
		t.Fatalf("cooldown %v after many trips, want 60ms cap", got)
	}
}

// TestBreakerHonoursRetryAfter: a server hint longer than the cooldown
// extends the open period — the breaker never probes before the server
// asked it to come back.
func TestBreakerHonoursRetryAfter(t *testing.T) {
	br := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: 10 * time.Millisecond, MaxCooldown: time.Second})
	now := 5 * time.Millisecond
	br.Failure(now, 300*time.Millisecond)
	if got := br.OpenUntil(); got != now+300*time.Millisecond {
		t.Fatalf("open until %v, want hint-extended %v", got, now+300*time.Millisecond)
	}
}

// TestRTTEstimator: RFC 6298 recurrence on a known sequence, plus the
// pre-sample conservative default and clamping.
func TestRTTEstimator(t *testing.T) {
	e := NewRTTEstimator(time.Millisecond, time.Second)
	if got := e.Timeout(); got != time.Second {
		t.Fatalf("pre-sample timeout %v, want max", got)
	}
	e.Observe(100 * time.Millisecond)
	// First sample: SRTT=100ms, RTTVAR=50ms → RTO=300ms.
	if got := e.Timeout(); got != 300*time.Millisecond {
		t.Fatalf("after first sample timeout %v, want 300ms", got)
	}
	// Steady identical samples shrink variance toward zero.
	for i := 0; i < 100; i++ {
		e.Observe(100 * time.Millisecond)
	}
	if got := e.Timeout(); got > 110*time.Millisecond {
		t.Fatalf("steady-state timeout %v did not converge toward SRTT", got)
	}
	// A spike reinflates it.
	e.Observe(time.Second)
	if got := e.Timeout(); got < 200*time.Millisecond {
		t.Fatalf("timeout %v did not react to a latency spike", got)
	}
}

func TestRTTEstimatorClamps(t *testing.T) {
	e := NewRTTEstimator(50*time.Millisecond, 80*time.Millisecond)
	e.Observe(time.Microsecond)
	if got := e.Timeout(); got != 50*time.Millisecond {
		t.Fatalf("timeout %v, want min clamp 50ms", got)
	}
	e2 := NewRTTEstimator(time.Millisecond, 80*time.Millisecond)
	e2.Observe(10 * time.Second)
	if got := e2.Timeout(); got != 80*time.Millisecond {
		t.Fatalf("timeout %v, want max clamp 80ms", got)
	}
}

// TestGateHysteresis: trips at MaxDepth, stays open through the recovery
// band, and closes only below RecoverDepth after MinHold.
func TestGateHysteresis(t *testing.T) {
	g, err := NewGate(GateConfig{MaxDepth: 10, RecoverDepth: 4, MinHold: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	if g.Update(now, 9, 0) {
		t.Fatal("gate opened below MaxDepth")
	}
	if !g.Update(now, 10, 0) {
		t.Fatal("gate did not open at MaxDepth")
	}
	// Inside the hysteresis band: still open.
	if !g.Update(now+time.Millisecond, 7, 0) {
		t.Fatal("gate closed inside the hysteresis band")
	}
	// Below RecoverDepth but before MinHold: still open.
	if !g.Update(now+5*time.Millisecond, 2, 0) {
		t.Fatal("gate closed before MinHold")
	}
	if g.Update(now+25*time.Millisecond, 2, 0) {
		t.Fatal("gate did not recover after MinHold with depth drained")
	}
	if got := g.Transitions(); got != 2 {
		t.Fatalf("transitions %d, want 2 (trip + recover)", got)
	}
}

// TestGateLatencyInput: the p95 input trips and recovers independently,
// and both inputs must recover before the gate closes.
func TestGateLatencyInput(t *testing.T) {
	g, err := NewGate(GateConfig{
		MaxDepth: 10, RecoverDepth: 4,
		MaxLatency: 100 * time.Millisecond, RecoverLatency: 40 * time.Millisecond,
		MinHold: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Update(0, 0, 150*time.Millisecond) {
		t.Fatal("gate did not trip on p95 latency")
	}
	// Latency recovered but depth now high: stays open.
	if !g.Update(5*time.Millisecond, 12, 10*time.Millisecond) {
		t.Fatal("gate closed while depth input still overloaded")
	}
	if g.Update(10*time.Millisecond, 1, 10*time.Millisecond) {
		t.Fatal("gate did not close once both inputs recovered")
	}
}

// TestGateDisabled: with no inputs configured every update reports
// closed.
func TestGateDisabled(t *testing.T) {
	g, err := NewGate(GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Update(0, 1<<20, time.Hour) {
		t.Fatal("disabled gate opened")
	}
}

// TestGateValidation: nonsensical configurations are rejected with
// descriptive errors rather than constructing a gate that can never
// recover.
func TestGateValidation(t *testing.T) {
	bad := []GateConfig{
		{MaxDepth: -1},
		{MaxLatency: -time.Second},
		{MaxDepth: 10, RecoverDepth: 10},
		{MaxLatency: time.Second, RecoverLatency: 2 * time.Second},
		{MaxDepth: 4, MinHold: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewGate(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted, want validation error", i, cfg)
		}
	}
}
