package overload

import (
	"fmt"
	"sync"
	"time"
)

// GateConfig parameterises the admission gate. The gate is disabled (all
// Updates keep it closed) unless at least one trip input is set.
type GateConfig struct {
	// MaxDepth opens the gate when queue depth reaches it (0 disables
	// the depth input).
	MaxDepth int
	// RecoverDepth closes the gate once depth falls to it or below
	// (default MaxDepth/2). Hysteresis: strictly less than MaxDepth, or
	// the gate would flap on every pop/push cycle at the boundary.
	RecoverDepth int
	// MaxLatency opens the gate when p95 service latency reaches it
	// (0 disables the latency input).
	MaxLatency time.Duration
	// RecoverLatency closes the gate once p95 falls to it or below
	// (default MaxLatency/2).
	RecoverLatency time.Duration
	// MinHold keeps the gate open at least this long after it trips, so
	// one lucky sample cannot close it mid-storm (default 50ms).
	MinHold time.Duration
}

// Enabled reports whether any trip input is configured.
func (c GateConfig) Enabled() bool { return c.MaxDepth > 0 || c.MaxLatency > 0 }

func (c GateConfig) withDefaults() GateConfig {
	if c.MaxDepth > 0 && c.RecoverDepth == 0 {
		c.RecoverDepth = c.MaxDepth / 2
	}
	if c.MaxLatency > 0 && c.RecoverLatency == 0 {
		c.RecoverLatency = c.MaxLatency / 2
	}
	if c.MinHold == 0 {
		c.MinHold = 50 * time.Millisecond
	}
	return c
}

// validate rejects configurations that could never recover or would
// flap, with errors descriptive enough to fix the flag that caused them.
func (c GateConfig) validate() error {
	if c.MaxDepth < 0 {
		return fmt.Errorf("overload: gate MaxDepth must be >= 0, got %d", c.MaxDepth)
	}
	if c.MaxLatency < 0 {
		return fmt.Errorf("overload: gate MaxLatency must be >= 0, got %v", c.MaxLatency)
	}
	if c.RecoverDepth < 0 || c.RecoverLatency < 0 || c.MinHold < 0 {
		return fmt.Errorf("overload: gate recovery thresholds must be >= 0 (RecoverDepth=%d RecoverLatency=%v MinHold=%v)",
			c.RecoverDepth, c.RecoverLatency, c.MinHold)
	}
	if c.MaxDepth > 0 && c.RecoverDepth >= c.MaxDepth {
		return fmt.Errorf("overload: gate RecoverDepth %d must be below MaxDepth %d (hysteresis)",
			c.RecoverDepth, c.MaxDepth)
	}
	if c.MaxLatency > 0 && c.RecoverLatency >= c.MaxLatency {
		return fmt.Errorf("overload: gate RecoverLatency %v must be below MaxLatency %v (hysteresis)",
			c.RecoverLatency, c.MaxLatency)
	}
	return nil
}

// Gate is the load-shedding decision: a two-state machine (closed =
// admit, open = shed) over queue depth and p95 service latency, with
// hysteresis — it trips at the Max thresholds and recovers only once
// every configured input has fallen back to its Recover threshold and
// MinHold has elapsed. The cluster server updates it at admission time
// and on janitor ticks, refuses joins (and brownout-parks sessions)
// while it is open, and recovers automatically when the inputs drain.
//
// Safe for concurrent use.
type Gate struct {
	mu          sync.Mutex
	cfg         GateConfig
	open        bool
	openedAt    time.Duration
	transitions int
}

// NewGate validates cfg and constructs a closed gate.
func NewGate(cfg GateConfig) (*Gate, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Gate{cfg: cfg}, nil
}

// Update feeds the current inputs and returns whether the gate is open
// after applying them.
func (g *Gate) Update(now time.Duration, depth int, p95 time.Duration) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.cfg.Enabled() {
		return false
	}
	overloaded := (g.cfg.MaxDepth > 0 && depth >= g.cfg.MaxDepth) ||
		(g.cfg.MaxLatency > 0 && p95 >= g.cfg.MaxLatency)
	if !g.open {
		if overloaded {
			g.open = true
			g.openedAt = now
			g.transitions++
		}
		return g.open
	}
	recovered := (g.cfg.MaxDepth == 0 || depth <= g.cfg.RecoverDepth) &&
		(g.cfg.MaxLatency == 0 || p95 <= g.cfg.RecoverLatency)
	if recovered && now-g.openedAt >= g.cfg.MinHold {
		g.open = false
		g.transitions++
	}
	return g.open
}

// Open reports the gate's position without feeding inputs.
func (g *Gate) Open() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.open
}

// Transitions counts state changes (tests assert trip/recover cycles).
func (g *Gate) Transitions() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.transitions
}
