// Package overload holds the control-theory primitives behind the
// cluster's overload resilience: decorrelated-jitter backoff, token-bucket
// retry budgets, a circuit breaker, a TCP-RTO-style RTT estimator, and the
// hysteresis admission gate that decides when the server sheds load.
//
// Every type is deterministic given its inputs — randomness comes from a
// caller-supplied seed (mathx.RNG) and time is an injected monotonic
// time.Duration, never the wall clock — so the retry storms, breaker
// trips, and shed/recover transitions these govern are unit-testable
// without sleeps. The cluster package wires them into the live runtime:
// the client side (RunClient) uses Backoff + Budget + Breaker for its
// reconnect and refusal-retry policy, the server side uses RTTEstimator +
// Gate for straggler deadlines and admission control (DESIGN.md §3.7).
package overload

import (
	"time"

	"github.com/stsl/stsl/internal/mathx"
)

// Backoff produces retry delays with decorrelated jitter: each delay is
// drawn uniformly from [base, 3×previous], capped at max. Unlike plain
// exponential backoff — where every client that failed together retries
// together — the draws desynchronise a cohort of refused clients within a
// couple of rounds, which is exactly the property the join-storm chaos
// test asserts on arrival timestamps.
//
// Not safe for concurrent use; each retrying actor owns one Backoff.
type Backoff struct {
	base, max time.Duration
	prev      time.Duration
	rng       *mathx.RNG
}

// NewBackoff constructs a decorrelated-jitter source. base is the floor
// of every delay (and the first draw's upper bound starts from it), max
// caps growth. Non-positive base or max panic-free defaults: base
// defaults to 5ms, max to 100×base.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	if max <= 0 {
		max = 100 * base
	}
	if max < base {
		max = base
	}
	return &Backoff{base: base, max: max, prev: base, rng: mathx.NewRNG(seed)}
}

// Next draws the next delay: uniform in [base, 3×previous], capped at
// max. The sequence is deterministic for a given seed.
func (b *Backoff) Next() time.Duration {
	hi := 3 * b.prev
	if hi > b.max {
		hi = b.max
	}
	if hi < b.base {
		hi = b.base
	}
	d := b.base + time.Duration(b.rng.Float64()*float64(hi-b.base))
	b.prev = d
	return d
}

// Reset returns the growth to the floor — call after a success so the
// next failure starts cheap again.
func (b *Backoff) Reset() { b.prev = b.base }

// Budget is a token-bucket retry budget (gRPC/Finagle style): retries
// withdraw a token, tokens refill at a steady rate up to a burst cap. A
// client inside its budget retries immediately (after jitter); one that
// has spent its burst is throttled to the refill rate, which is what
// stops a retry storm from amplifying an overload. The zero refill rate
// makes it a pure burst budget that never refills.
//
// Time is injected, so exhaustion and refill are unit-testable; not safe
// for concurrent use.
type Budget struct {
	capacity float64
	perSec   float64
	tokens   float64
	last     time.Duration
}

// NewBudget constructs a budget that starts full. capacity <= 0 defaults
// to 8 tokens; perSec < 0 is treated as 0 (no refill).
func NewBudget(capacity, perSec float64) *Budget {
	if capacity <= 0 {
		capacity = 8
	}
	if perSec < 0 {
		perSec = 0
	}
	return &Budget{capacity: capacity, perSec: perSec, tokens: capacity}
}

// refill credits tokens accrued since the last observation. Clock
// regressions (never expected; defensive) credit nothing.
func (b *Budget) refill(now time.Duration) {
	if dt := now - b.last; dt > 0 {
		b.tokens += dt.Seconds() * b.perSec
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
	}
	if now > b.last {
		b.last = now
	}
}

// Take withdraws one token if available, reporting whether the retry is
// inside the budget.
func (b *Budget) Take(now time.Duration) bool {
	b.refill(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the balance as of now (diagnostics and tests).
func (b *Budget) Tokens(now time.Duration) float64 {
	b.refill(now)
	return b.tokens
}

// NextAt reports when a token will next be available: now if one already
// is, the refill instant otherwise. ok is false when the budget can never
// recover (empty with no refill) — the caller should give up rather than
// wait.
func (b *Budget) NextAt(now time.Duration) (at time.Duration, ok bool) {
	b.refill(now)
	if b.tokens >= 1 {
		return now, true
	}
	if b.perSec <= 0 {
		return 0, false
	}
	need := 1 - b.tokens
	return now + time.Duration(need/b.perSec*float64(time.Second)), true
}
