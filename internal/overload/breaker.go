package overload

import "time"

// BreakerState is the circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed passes traffic; failures are being counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen passes a probe; its outcome closes or re-opens.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterises a Breaker. Zero values take defaults.
type BreakerConfig struct {
	// Threshold is the count of consecutive failures that trips the
	// breaker open (default 4).
	Threshold int
	// Cooldown is the first open period; each subsequent trip doubles it
	// (default 50ms).
	Cooldown time.Duration
	// MaxCooldown caps the doubling (default 5s).
	MaxCooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 50 * time.Millisecond
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 5 * time.Second
	}
	return c
}

// Breaker is a client-side circuit breaker over server refusals: after
// Threshold consecutive failures it opens and all attempts are refused
// locally until the cooldown elapses; the next attempt is a half-open
// probe whose outcome closes the breaker or re-opens it with a doubled
// cooldown. A server RetryAfter hint passed to Failure extends the
// cooldown — the breaker never schedules a probe earlier than the server
// asked for.
//
// Time is injected; not safe for concurrent use.
type Breaker struct {
	cfg         BreakerConfig
	state       BreakerState
	consecutive int
	trips       int
	openUntil   time.Duration
}

// NewBreaker constructs a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether an attempt may proceed now. An open breaker whose
// cooldown has elapsed transitions to half-open and allows the probe.
func (b *Breaker) Allow(now time.Duration) bool {
	if b.state == BreakerOpen {
		if now < b.openUntil {
			return false
		}
		b.state = BreakerHalfOpen
	}
	return true
}

// Failure records a refused or failed attempt. hint is the server's
// RetryAfter (0 when none); an open period is never shorter than it.
func (b *Breaker) Failure(now, hint time.Duration) {
	b.consecutive++
	if b.state != BreakerHalfOpen && b.consecutive < b.cfg.Threshold {
		return
	}
	cool := b.cfg.Cooldown << uint(min(b.trips, 16))
	if cool > b.cfg.MaxCooldown {
		cool = b.cfg.MaxCooldown
	}
	if cool < hint {
		cool = hint
	}
	b.trips++
	b.state = BreakerOpen
	b.openUntil = now + cool
}

// Success records a served attempt: the breaker closes and all escalation
// state resets.
func (b *Breaker) Success() {
	b.state = BreakerClosed
	b.consecutive = 0
	b.trips = 0
	b.openUntil = 0
}

// State reports the breaker's position (telemetry and tests).
func (b *Breaker) State() BreakerState { return b.state }

// OpenUntil reports when the current open period ends (0 when never
// tripped); callers use it to sleep out the cooldown instead of spinning
// on Allow.
func (b *Breaker) OpenUntil() time.Duration { return b.openUntil }
