package overload

import (
	"sync"
	"time"
)

// RTTEstimator tracks a smoothed round-trip (or inter-arrival) time and
// its variance with the TCP retransmission-timeout recurrence (RFC 6298):
//
//	SRTT   ← 7/8·SRTT + 1/8·sample
//	RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT − sample|
//	RTO    =  SRTT + 4·RTTVAR, clamped to [Min, Max]
//
// The cluster uses it twice: RunClient feeds gradient round trips so its
// wait timeout adapts to the server's actual service latency instead of a
// fixed worst case, and the server feeds per-session inter-message gaps
// so the straggler janitor's deadline derives from how fast healthy
// clients actually talk (Config.StragglerAuto).
//
// Safe for concurrent use — receive loops across sessions share one
// estimator.
type RTTEstimator struct {
	mu      sync.Mutex
	srtt    time.Duration
	rttvar  time.Duration
	samples int
	min     time.Duration
	max     time.Duration
}

// NewRTTEstimator constructs an estimator whose Timeout is clamped to
// [min, max]. Non-positive bounds default to 1ms and 30s. Before the
// first sample, Timeout reports max — the conservative choice for a
// deadline.
func NewRTTEstimator(min, max time.Duration) *RTTEstimator {
	if min <= 0 {
		min = time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if max < min {
		max = min
	}
	return &RTTEstimator{min: min, max: max}
}

// Observe feeds one sample. Non-positive samples are ignored.
func (e *RTTEstimator) Observe(sample time.Duration) {
	if sample <= 0 {
		return
	}
	e.mu.Lock()
	if e.samples == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
	} else {
		diff := e.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		e.rttvar = (3*e.rttvar + diff) / 4
		e.srtt = (7*e.srtt + sample) / 8
	}
	e.samples++
	e.mu.Unlock()
}

// Timeout returns SRTT + 4·RTTVAR clamped to [min, max]; max before any
// samples exist.
func (e *RTTEstimator) Timeout() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples == 0 {
		return e.max
	}
	rto := e.srtt + 4*e.rttvar
	if rto < e.min {
		rto = e.min
	}
	if rto > e.max {
		rto = e.max
	}
	return rto
}

// SRTT reports the smoothed sample mean (0 before any samples).
func (e *RTTEstimator) SRTT() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.srtt
}

// Samples reports how many observations have been folded in.
func (e *RTTEstimator) Samples() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.samples
}
