// Package simnet models the geo-distributed network between end-systems
// and the centralized server: per-link latency distributions, jitter and
// serialisation (bandwidth) delay over a deterministic virtual clock.
//
// The paper's temporal phenomenon — far end-systems' parameters arriving
// "lately or sparsely", biasing learning — is produced entirely by this
// model: the event-driven trainer in internal/core asks each Link when a
// message sent now would arrive, and the scheduling queue sees exactly the
// arrival pattern a real deployment would.
package simnet

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/mathx"
)

// LatencyModel samples one-way link delays.
type LatencyModel interface {
	// Sample draws the next delay using r.
	Sample(r *mathx.RNG) time.Duration
}

// Constant is a fixed-delay model.
type Constant struct{ D time.Duration }

// Sample implements LatencyModel.
func (c Constant) Sample(*mathx.RNG) time.Duration { return c.D }

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi time.Duration }

// Sample implements LatencyModel.
func (u Uniform) Sample(r *mathx.RNG) time.Duration {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + time.Duration(r.Float64()*float64(u.Hi-u.Lo))
}

// LogNormal is a heavy-tailed WAN delay model: exp(N(Mu, Sigma²))
// milliseconds, a standard fit for internet RTT distributions.
type LogNormal struct {
	// Mu and Sigma parameterise the underlying normal in log-ms space.
	Mu, Sigma float64
}

// Sample implements LatencyModel.
func (l LogNormal) Sample(r *mathx.RNG) time.Duration {
	ms := r.LogNormal(l.Mu, l.Sigma)
	return time.Duration(ms * float64(time.Millisecond))
}

// Link is one direction of a client↔server path.
type Link struct {
	// Latency is the propagation model. Required.
	Latency LatencyModel
	// BytesPerSec, when positive, adds size/BytesPerSec of
	// serialisation delay.
	BytesPerSec float64
	// DropProb is the probability that one transmission attempt is lost
	// (the protocol layer decides retransmission behaviour).
	DropProb float64
	rng      *mathx.RNG
}

// NewLink builds a link with its own deterministic RNG stream.
func NewLink(latency LatencyModel, bytesPerSec float64, r *mathx.RNG) (*Link, error) {
	if latency == nil {
		return nil, fmt.Errorf("simnet: link needs a latency model")
	}
	if bytesPerSec < 0 {
		return nil, fmt.Errorf("simnet: negative bandwidth %v", bytesPerSec)
	}
	if r == nil {
		return nil, fmt.Errorf("simnet: link needs an RNG")
	}
	return &Link{Latency: latency, BytesPerSec: bytesPerSec, rng: r}, nil
}

// Dropped reports whether one transmission attempt is lost, drawn from
// the link's RNG stream.
func (l *Link) Dropped() bool {
	return l.DropProb > 0 && l.rng.Float64() < l.DropProb
}

// Delay returns the total delivery delay of a message of the given size.
func (l *Link) Delay(sizeBytes int) time.Duration {
	d := l.Latency.Sample(l.rng)
	if d < 0 {
		d = 0
	}
	if l.BytesPerSec > 0 && sizeBytes > 0 {
		d += time.Duration(float64(sizeBytes) / l.BytesPerSec * float64(time.Second))
	}
	return d
}

// Clock is a monotone virtual clock for event-driven simulation.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// AdvanceTo moves the clock forward; moving backward panics, since that
// always indicates a simulation bug.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("simnet: clock moved backward %v → %v", c.now, t))
	}
	c.now = t
}

// Path is a full bidirectional client↔server path.
type Path struct {
	// Up carries client→server traffic, Down the reverse.
	Up, Down *Link
}

// NewSymmetricPath builds a path whose two directions share a latency
// model and bandwidth but have independent RNG streams.
func NewSymmetricPath(latency LatencyModel, bytesPerSec float64, r *mathx.RNG) (*Path, error) {
	up, err := NewLink(latency, bytesPerSec, r.Split())
	if err != nil {
		return nil, err
	}
	down, err := NewLink(latency, bytesPerSec, r.Split())
	if err != nil {
		return nil, err
	}
	return &Path{Up: up, Down: down}, nil
}

// Profile is a named latency setup used by experiments and examples.
type Profile struct {
	Name    string
	Latency LatencyModel
}

// StandardProfiles returns the latency mixes used in the Fig-2 and queue
// experiments: a near (datacenter), a regional, and a far (intercontinental)
// client profile.
func StandardProfiles() []Profile {
	return []Profile{
		{Name: "near", Latency: Uniform{Lo: 1 * time.Millisecond, Hi: 3 * time.Millisecond}},
		{Name: "regional", Latency: Uniform{Lo: 10 * time.Millisecond, Hi: 30 * time.Millisecond}},
		{Name: "far", Latency: LogNormal{Mu: 5.0, Sigma: 0.4}}, // median ≈148 ms
	}
}
