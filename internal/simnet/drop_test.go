package simnet

import (
	"math"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/mathx"
)

func TestLinkDroppedStatistics(t *testing.T) {
	l, err := NewLink(Constant{D: time.Millisecond}, 0, mathx.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// DropProb 0 never drops.
	for i := 0; i < 100; i++ {
		if l.Dropped() {
			t.Fatal("zero drop probability dropped a packet")
		}
	}
	l.DropProb = 0.25
	const n = 20000
	drops := 0
	for i := 0; i < n; i++ {
		if l.Dropped() {
			drops++
		}
	}
	if frac := float64(drops) / n; math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("drop fraction %v, want ≈0.25", frac)
	}
}

func TestLinkDropDeterminism(t *testing.T) {
	mk := func() *Link {
		l, err := NewLink(Constant{D: time.Millisecond}, 0, mathx.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		l.DropProb = 0.5
		return l
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		if a.Dropped() != b.Dropped() {
			t.Fatal("same-seed drop sequences diverged")
		}
	}
}
