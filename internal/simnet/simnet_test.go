package simnet

import (
	"testing"
	"time"

	"github.com/stsl/stsl/internal/mathx"
)

func TestConstantModel(t *testing.T) {
	m := Constant{D: 5 * time.Millisecond}
	r := mathx.NewRNG(1)
	for i := 0; i < 10; i++ {
		if got := m.Sample(r); got != 5*time.Millisecond {
			t.Fatalf("Sample = %v", got)
		}
	}
}

func TestUniformModelBounds(t *testing.T) {
	m := Uniform{Lo: 10 * time.Millisecond, Hi: 20 * time.Millisecond}
	r := mathx.NewRNG(2)
	for i := 0; i < 1000; i++ {
		d := m.Sample(r)
		if d < m.Lo || d > m.Hi {
			t.Fatalf("Sample %v out of [%v,%v]", d, m.Lo, m.Hi)
		}
	}
	// Degenerate interval.
	deg := Uniform{Lo: time.Second, Hi: time.Second}
	if got := deg.Sample(r); got != time.Second {
		t.Fatalf("degenerate Sample = %v", got)
	}
}

func TestLogNormalModelPositiveAndHeavyTailed(t *testing.T) {
	m := LogNormal{Mu: 5, Sigma: 0.4}
	r := mathx.NewRNG(3)
	var max time.Duration
	var sum time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		d := m.Sample(r)
		if d <= 0 {
			t.Fatalf("non-positive latency %v", d)
		}
		if d > max {
			max = d
		}
		sum += d
	}
	mean := sum / n
	// Heavy tail: max should be several times the mean.
	if max < 2*mean {
		t.Fatalf("tail too light: max %v, mean %v", max, mean)
	}
	// Median of exp(N(5, 0.4)) ms is e^5 ≈ 148 ms; mean is higher. Sanity
	// bounds only.
	if mean < 100*time.Millisecond || mean > 400*time.Millisecond {
		t.Fatalf("mean latency %v implausible for profile", mean)
	}
}

func TestLinkBandwidthDelay(t *testing.T) {
	r := mathx.NewRNG(4)
	l, err := NewLink(Constant{D: 10 * time.Millisecond}, 1e6, r) // 1 MB/s
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB payload → 1 s serialisation + 10 ms propagation.
	got := l.Delay(1_000_000)
	want := time.Second + 10*time.Millisecond
	if got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("Delay = %v, want ≈%v", got, want)
	}
	// Zero size → just propagation.
	if got := l.Delay(0); got != 10*time.Millisecond {
		t.Fatalf("Delay(0) = %v", got)
	}
}

func TestLinkValidation(t *testing.T) {
	r := mathx.NewRNG(5)
	if _, err := NewLink(nil, 0, r); err == nil {
		t.Fatal("nil latency model accepted")
	}
	if _, err := NewLink(Constant{}, -1, r); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	if _, err := NewLink(Constant{}, 0, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestClockMonotone(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("initial Now = %v", c.Now())
	}
	c.AdvanceTo(time.Second)
	if c.Now() != time.Second {
		t.Fatalf("Now = %v", c.Now())
	}
	c.AdvanceTo(time.Second) // same time is fine
	defer func() {
		if recover() == nil {
			t.Fatal("backward advance did not panic")
		}
	}()
	c.AdvanceTo(time.Millisecond)
}

func TestSymmetricPathIndependentStreams(t *testing.T) {
	r := mathx.NewRNG(6)
	p, err := NewSymmetricPath(Uniform{Lo: 0, Hi: time.Second}, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 50; i++ {
		if p.Up.Delay(0) == p.Down.Delay(0) {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("up/down streams correlated: %d/50 equal", same)
	}
}

func TestStandardProfiles(t *testing.T) {
	profiles := StandardProfiles()
	if len(profiles) != 3 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	r := mathx.NewRNG(7)
	// far must be slower than near on average.
	mean := func(m LatencyModel) time.Duration {
		var s time.Duration
		for i := 0; i < 500; i++ {
			s += m.Sample(r)
		}
		return s / 500
	}
	near := mean(profiles[0].Latency)
	far := mean(profiles[2].Latency)
	if far < 10*near {
		t.Fatalf("far profile (%v) not clearly slower than near (%v)", far, near)
	}
}

func TestLinkDeterminismAcrossRuns(t *testing.T) {
	mk := func() *Link {
		l, err := NewLink(Uniform{Lo: 0, Hi: time.Second}, 0, mathx.NewRNG(99))
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Delay(0) != b.Delay(0) {
			t.Fatal("same-seed links diverged")
		}
	}
}
