package simnet

import (
	"sync"
	"time"

	"github.com/stsl/stsl/internal/mathx"
)

// FaultOp identifies which carrier operation a fault schedule is scoring.
type FaultOp uint8

const (
	// FaultSend scores an outgoing message.
	FaultSend FaultOp = iota + 1
	// FaultRecv scores an incoming delivery.
	FaultRecv
)

// FaultAction is the behaviour injected into one carrier operation.
type FaultAction uint8

const (
	// FaultNone performs the operation untouched.
	FaultNone FaultAction = iota
	// FaultSever closes the underlying connection before the operation;
	// the message is lost and both peers see the link die — the live
	// analogue of a dropped session.
	FaultSever
	// FaultTruncate models a frame cut off mid-wire: the operation fails,
	// and because stream framing cannot recover from a partial frame, the
	// connection is severed too.
	FaultTruncate
	// FaultDelay performs the operation after waiting FaultDecision.Delay
	// — a transient stall, not a failure.
	FaultDelay
	// FaultDuplicate delivers (or transmits) the message twice — the
	// at-least-once artefact a retransmitting network produces.
	FaultDuplicate
	// FaultCorrupt flips one bit of the message's wire encoding — the
	// silent-data-corruption class (faulty NIC, bad RAM on a relay, a
	// cosmic ray on a long-haul link) that checksummed framing exists to
	// catch. FaultDecision.Bits seeds which bit flips.
	FaultCorrupt
)

// String implements fmt.Stringer for test output.
func (a FaultAction) String() string {
	switch a {
	case FaultNone:
		return "none"
	case FaultSever:
		return "sever"
	case FaultTruncate:
		return "truncate"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultCorrupt:
		return "corrupt"
	default:
		return "unknown"
	}
}

// FaultDecision is one schedule verdict for one carrier operation.
type FaultDecision struct {
	Action FaultAction
	// Delay is the injected stall when Action is FaultDelay.
	Delay time.Duration
	// Bits is a seeded random word carried with FaultCorrupt; the
	// carrier maps it onto the encoded frame length to pick the flipped
	// bit, keeping the corruption deterministic per seed without the
	// schedule needing to know frame sizes.
	Bits uint64
}

// FaultSchedule decides, operation by operation, which faults a carrier
// injects. Implementations must be safe for concurrent use: a duplex
// carrier scores sends and receives from different goroutines.
type FaultSchedule interface {
	// Next scores the n-th operation of the given kind (n counts per
	// direction, starting at 0, across reconnects of the same logical
	// peer — a schedule outlives any single connection).
	Next(op FaultOp) FaultDecision
}

// FaultPlan parameterises a seeded deterministic fault schedule. The zero
// value injects nothing. Deterministic every-Nth rules and explicit
// indices compose with seeded probabilistic rules; for a fixed seed and a
// fixed per-direction operation sequence the injected faults are
// identical on every run, which is what lets the chaos suite assert
// convergence rather than merely survival.
type FaultPlan struct {
	// Seed drives the probabilistic rules. Each direction draws from its
	// own RNG stream so send-side decisions do not depend on how receives
	// interleave with them.
	Seed uint64
	// SeverEverySends severs the connection at every Nth send (0 = never).
	// The counter spans reconnects, so N=3 churns the link for the whole
	// run, not just once.
	SeverEverySends int
	// SeverAtSends severs at exactly these send indices — the surgical
	// form used to script burst disconnects.
	SeverAtSends []int
	// SeverProb severs on any send with this probability.
	SeverProb float64
	// TruncateEverySends fails every Nth send as a truncated frame
	// (0 = never). Truncation also severs: framing cannot resync.
	TruncateEverySends int
	// DupEveryRecvs duplicates every Nth delivery (0 = never).
	DupEveryRecvs int
	// DupProb duplicates any delivery with this probability.
	DupProb float64
	// CorruptEverySends flips a bit in every Nth outgoing frame
	// (0 = never).
	CorruptEverySends int
	// CorruptEveryRecvs flips a bit in every Nth delivery (0 = never).
	CorruptEveryRecvs int
	// CorruptProb flips a bit in any operation (either direction) with
	// this probability.
	CorruptProb float64
	// DelayProb stalls any operation (either direction) with this
	// probability, for Delay.
	DelayProb float64
	// DelayEveryOps stalls every Nth operation per direction (0 = never).
	DelayEveryOps int
	// Delay is the stall injected by the delay rules.
	Delay time.Duration
}

// Faults is the standard FaultSchedule: deterministic counters plus
// seeded per-direction RNG streams over a FaultPlan.
type Faults struct {
	plan FaultPlan

	mu      sync.Mutex
	sendRNG *mathx.RNG
	recvRNG *mathx.RNG
	sends   int
	recvs   int
	severAt map[int]bool
}

// NewFaults builds a schedule from a plan.
func NewFaults(plan FaultPlan) *Faults {
	root := mathx.NewRNG(plan.Seed ^ 0x9e3779b97f4a7c15)
	at := make(map[int]bool, len(plan.SeverAtSends))
	for _, i := range plan.SeverAtSends {
		at[i] = true
	}
	return &Faults{
		plan:    plan,
		sendRNG: root.Split(),
		recvRNG: root.Split(),
		severAt: at,
	}
}

// Next implements FaultSchedule. Rule priority on a send: explicit sever
// index, every-Nth sever, truncation, probabilistic sever, then delay.
// On a receive: duplication rules, then delay. Exactly one RNG draw per
// probabilistic rule per operation keeps the stream aligned regardless of
// which rule fires.
func (f *Faults) Next(op FaultOp) FaultDecision {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch op {
	case FaultSend:
		n := f.sends
		f.sends++
		severProb := f.plan.SeverProb > 0 && f.sendRNG.Float64() < f.plan.SeverProb
		delayProb := f.plan.DelayProb > 0 && f.sendRNG.Float64() < f.plan.DelayProb
		corruptProb := f.plan.CorruptProb > 0 && f.sendRNG.Float64() < f.plan.CorruptProb
		// The bit word is drawn on every send once any corrupt rule is
		// configured — not only when one fires — so rule interleaving
		// never shifts the stream.
		var bits uint64
		if f.plan.CorruptProb > 0 || f.plan.CorruptEverySends > 0 {
			bits = f.sendRNG.Uint64()
		}
		switch {
		case f.severAt[n]:
			return FaultDecision{Action: FaultSever}
		case f.plan.SeverEverySends > 0 && n > 0 && n%f.plan.SeverEverySends == 0:
			return FaultDecision{Action: FaultSever}
		case f.plan.TruncateEverySends > 0 && n > 0 && n%f.plan.TruncateEverySends == 0:
			return FaultDecision{Action: FaultTruncate}
		case f.plan.CorruptEverySends > 0 && n > 0 && n%f.plan.CorruptEverySends == 0:
			return FaultDecision{Action: FaultCorrupt, Bits: bits}
		case severProb:
			return FaultDecision{Action: FaultSever}
		case corruptProb:
			return FaultDecision{Action: FaultCorrupt, Bits: bits}
		case delayProb || (f.plan.DelayEveryOps > 0 && n > 0 && n%f.plan.DelayEveryOps == 0):
			return FaultDecision{Action: FaultDelay, Delay: f.plan.Delay}
		}
	case FaultRecv:
		n := f.recvs
		f.recvs++
		dupProb := f.plan.DupProb > 0 && f.recvRNG.Float64() < f.plan.DupProb
		delayProb := f.plan.DelayProb > 0 && f.recvRNG.Float64() < f.plan.DelayProb
		corruptProb := f.plan.CorruptProb > 0 && f.recvRNG.Float64() < f.plan.CorruptProb
		var bits uint64
		if f.plan.CorruptProb > 0 || f.plan.CorruptEveryRecvs > 0 {
			bits = f.recvRNG.Uint64()
		}
		switch {
		case f.plan.DupEveryRecvs > 0 && n > 0 && n%f.plan.DupEveryRecvs == 0:
			return FaultDecision{Action: FaultDuplicate}
		case f.plan.CorruptEveryRecvs > 0 && n > 0 && n%f.plan.CorruptEveryRecvs == 0:
			return FaultDecision{Action: FaultCorrupt, Bits: bits}
		case dupProb:
			return FaultDecision{Action: FaultDuplicate}
		case corruptProb:
			return FaultDecision{Action: FaultCorrupt, Bits: bits}
		case delayProb || (f.plan.DelayEveryOps > 0 && n > 0 && n%f.plan.DelayEveryOps == 0):
			return FaultDecision{Action: FaultDelay, Delay: f.plan.Delay}
		}
	}
	return FaultDecision{}
}

var _ FaultSchedule = (*Faults)(nil)
