package queue

import (
	"testing"
	"time"
)

func TestStalenessDropDiscardsExpired(t *testing.T) {
	q := NewStalenessDrop(NewFIFO(), 50*time.Millisecond)
	q.Push(item(0, 1, 0, 0))                   // sent at t=0
	q.Push(item(0, 2, 90*time.Millisecond, 0)) // fresh at t=100ms
	q.Push(item(0, 3, 95*time.Millisecond, 0)) // fresh at t=100ms
	now := 100 * time.Millisecond
	it, ok := q.Pop(now)
	if !ok || it.Msg.Seq != 2 {
		t.Fatalf("pop = %+v ok=%v, want seq 2 after dropping stale", it, ok)
	}
	if q.Dropped() != 1 {
		t.Fatalf("Dropped = %d", q.Dropped())
	}
	if it, ok = q.Pop(now); !ok || it.Msg.Seq != 3 {
		t.Fatalf("second pop = %+v", it)
	}
}

func TestStalenessDropEmptyAfterAllExpired(t *testing.T) {
	q := NewStalenessDrop(NewFIFO(), time.Millisecond)
	q.Push(item(0, 1, 0, 0))
	q.Push(item(1, 2, 0, 0))
	if _, ok := q.Pop(time.Second); ok {
		t.Fatal("expired items served")
	}
	if q.Dropped() != 2 {
		t.Fatalf("Dropped = %d", q.Dropped())
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestStalenessDropName(t *testing.T) {
	q := NewStalenessDrop(NewFairRoundRobin(), time.Second)
	if q.Name() != "fair-rr+drop" {
		t.Fatalf("Name = %q", q.Name())
	}
}

func TestStalenessDropPanicsOnBadCutoff(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero cutoff did not panic")
		}
	}()
	NewStalenessDrop(NewFIFO(), 0)
}

func TestSyncRoundsGateAndDeactivate(t *testing.T) {
	q := NewSyncRounds([]int{0, 1})
	q.Push(item(0, 1, 0, 0))
	// Gate closed: client 1 has nothing yet.
	if _, ok := q.Pop(0); ok {
		t.Fatal("gate open with missing client")
	}
	q.Push(item(1, 2, 0, 0))
	if _, ok := q.Pop(0); !ok {
		t.Fatal("gate closed with all clients present")
	}
	// After the pop one bucket is empty → gate closed again.
	if _, ok := q.Pop(0); ok {
		t.Fatal("gate open after bucket drained")
	}
	// Deactivating the empty client lets the rest drain.
	q.Deactivate(0) // popped client was 0 (rotation starts at first seen)
	q.Deactivate(1)
	if q.Len() > 0 {
		if _, ok := q.Pop(0); !ok {
			t.Fatal("drain failed after deactivation")
		}
	}
}

func TestSyncRoundsName(t *testing.T) {
	if got := NewSyncRounds(nil).Name(); got != "sync-rounds" {
		t.Fatalf("Name = %q", got)
	}
}
