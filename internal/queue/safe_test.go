package queue

import (
	"sync"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/obs"
	"github.com/stsl/stsl/internal/transport"
)

// TestSafeConcurrentStress hammers the thread-safe wrapper from N
// producer goroutines with one concurrent consumer, for every scheduling
// policy, and asserts exactly-once delivery: no item lost, none served
// twice. Run with -race (CI does) to also prove memory safety.
func TestSafeConcurrentStress(t *testing.T) {
	const (
		producers    = 8
		perProducer  = 500
		totalItems   = producers * perProducer
		consumerIdle = time.Microsecond
	)
	for _, name := range []string{"fifo", "staleness", "fair-rr"} {
		name := name
		t.Run(name, func(t *testing.T) {
			inner, err := NewPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			q := NewSafe(inner)

			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						q.Push(Item{
							Msg: &transport.Message{
								Type:     transport.MsgControl,
								ClientID: p,
								Seq:      i,
								SentAt:   time.Duration(p*perProducer + i),
							},
							ArrivedAt: time.Duration(p*perProducer + i),
						})
					}
				}()
			}
			producersDone := make(chan struct{})
			go func() {
				wg.Wait()
				close(producersDone)
			}()

			seen := make(map[[2]int]int, totalItems)
			popped := 0
			drained := false
			for popped < totalItems {
				it, ok := q.Pop(time.Duration(popped))
				if !ok {
					if drained {
						t.Fatalf("queue empty after producers done: %d/%d items", popped, totalItems)
					}
					select {
					case <-producersDone:
						// One more full drain pass, then emptiness is loss.
						if q.Len() == 0 {
							drained = true
						}
					case <-time.After(consumerIdle):
					}
					continue
				}
				key := [2]int{it.ClientID(), it.Msg.Seq}
				seen[key]++
				if seen[key] > 1 {
					t.Fatalf("item %v served %d times", key, seen[key])
				}
				popped++
			}
			if it, ok := q.Pop(0); ok {
				t.Fatalf("phantom extra item %v after full drain", [2]int{it.ClientID(), it.Msg.Seq})
			}
			if len(seen) != totalItems {
				t.Fatalf("served %d distinct items, want %d", len(seen), totalItems)
			}
		})
	}
}

// TestSafePopBatchConcurrentStress is the batched-worker analogue of
// TestSafeConcurrentStress, covering all four policies including the
// gated sync-rounds: one consumer drains in batches of varying size
// while producer goroutines push concurrently, and each producer
// deactivates itself once exhausted — so deactivation races live pops
// and pushes, exactly as a straggler eviction races the live worker.
// Exactly-once: no pushed item is lost or served twice. Run with -race.
func TestSafePopBatchConcurrentStress(t *testing.T) {
	const (
		producers    = 8
		perProducer  = 400
		totalItems   = producers * perProducer
		consumerIdle = time.Microsecond
	)
	clientIDs := make([]int, producers)
	for i := range clientIDs {
		clientIDs[i] = i
	}
	builders := []struct {
		name  string
		build func() Policy
	}{
		{"fifo", func() Policy { return NewFIFO() }},
		{"staleness", func() Policy { return NewStalenessPriority() }},
		{"fair-rr", func() Policy { return NewFairRoundRobin() }},
		{"sync-rounds", func() Policy { return NewSyncRounds(clientIDs) }},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			q := NewSafe(b.build())

			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perProducer; i++ {
						q.Push(Item{
							Msg: &transport.Message{
								Type:     transport.MsgControl,
								ClientID: p,
								Seq:      i,
								SentAt:   time.Duration(p*perProducer + i),
							},
							ArrivedAt: time.Duration(p*perProducer + i),
						})
					}
					// Budget exhausted: leave the gate while the consumer
					// is mid-drain (no-op for ungated policies).
					q.Deactivate(p)
				}()
			}
			producersDone := make(chan struct{})
			go func() {
				wg.Wait()
				close(producersDone)
			}()

			seen := make(map[[2]int]int, totalItems)
			popped := 0
			drained := false
			for popped < totalItems {
				// Cycle the batch bound so single pops, partial batches
				// and oversized requests all interleave with pushes.
				batch := q.PopBatch(time.Duration(popped), 1+popped%5)
				if len(batch) == 0 {
					if drained {
						t.Fatalf("queue empty after producers done: %d/%d items", popped, totalItems)
					}
					select {
					case <-producersDone:
						// One more full drain pass, then emptiness is loss.
						if q.Len() == 0 {
							drained = true
						}
					case <-time.After(consumerIdle):
					}
					continue
				}
				for _, it := range batch {
					key := [2]int{it.ClientID(), it.Msg.Seq}
					seen[key]++
					if seen[key] > 1 {
						t.Fatalf("item %v served %d times", key, seen[key])
					}
					popped++
				}
			}
			if extra := q.PopBatch(0, 8); len(extra) != 0 {
				t.Fatalf("phantom %d extra items after full drain", len(extra))
			}
			if len(seen) != totalItems {
				t.Fatalf("served %d distinct items, want %d", len(seen), totalItems)
			}
		})
	}
}

// TestSafeTryPushCap checks the cap is enforced atomically under
// concurrent producers: the queue never exceeds the cap.
func TestSafeTryPushCap(t *testing.T) {
	const cap = 4
	q := NewSafe(NewFIFO())
	var wg sync.WaitGroup
	var over sync.Map
	for p := 0; p < 8; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q.TryPush(Item{Msg: &transport.Message{Type: transport.MsgControl, ClientID: p, Seq: i}}, cap)
				if n := q.Len(); n > cap {
					over.Store(n, true)
				}
			}
		}()
	}
	wg.Wait()
	over.Range(func(k, v any) bool {
		t.Errorf("queue depth %v exceeded cap %d", k, cap)
		return true
	})
}

// TestSafeNotifications checks the edge-triggered wakeup channels fire
// on push and pop.
func TestSafeNotifications(t *testing.T) {
	q := NewSafe(NewFIFO())
	q.Push(Item{Msg: &transport.Message{Type: transport.MsgControl}})
	select {
	case <-q.Pushed():
	default:
		t.Fatal("no pushed signal after Push")
	}
	if _, ok := q.Pop(0); !ok {
		t.Fatal("pop failed")
	}
	select {
	case <-q.Popped():
	default:
		t.Fatal("no popped signal after Pop")
	}
}

// TestSafeDeactivateOpensGate verifies Deactivate forwards to a gated
// policy and signals consumers.
func TestSafeDeactivateOpensGate(t *testing.T) {
	q := NewSafe(NewSyncRounds([]int{0, 1}))
	q.Push(Item{Msg: &transport.Message{Type: transport.MsgControl, ClientID: 0}})
	if _, ok := q.Pop(0); ok {
		t.Fatal("gate should hold until every active client has an item")
	}
	q.Deactivate(1)
	select {
	case <-q.Pushed():
	default:
		t.Fatal("no wakeup signal after Deactivate")
	}
	if _, ok := q.Pop(0); !ok {
		t.Fatal("gate should open once client 1 is deactivated")
	}
}

// TestSafeRequeue verifies popped items can be returned to the policy
// with their original arrival times, so a staleness-ordered discipline
// restores their true priority, and that consumers are woken.
func TestSafeRequeue(t *testing.T) {
	q := NewSafe(NewStalenessPriority())
	mk := func(id int, sentAt time.Duration) Item {
		return Item{
			Msg:       &transport.Message{Type: transport.MsgControl, ClientID: id, SentAt: sentAt},
			ArrivedAt: sentAt,
		}
	}
	q.Push(mk(0, 30))
	q.Push(mk(1, 10)) // oldest — highest staleness priority
	q.Push(mk(2, 20))

	batch := q.PopBatch(100, 2)
	if len(batch) != 2 || batch[0].ClientID() != 1 || batch[1].ClientID() != 2 {
		t.Fatalf("popped %v, want clients [1 2] in staleness order", batch)
	}
	// The consumer could not process the batch; put it back.
	q.Requeue(batch...)
	select {
	case <-q.Pushed():
	default:
		t.Fatal("no wakeup signal after Requeue")
	}
	if got := q.Len(); got != 3 {
		t.Fatalf("len %d after requeue, want 3", got)
	}
	// Priority is restored from the preserved timestamps, not requeue
	// order.
	for _, want := range []int{1, 2, 0} {
		it, ok := q.Pop(100)
		if !ok || it.ClientID() != want {
			t.Fatalf("pop got client %d (ok=%v), want %d", it.ClientID(), ok, want)
		}
	}
	// Drain the cascade edge first: the pops above re-arm Pushed()
	// while items remain so sibling consumers in a pool get woken.
	select {
	case <-q.Pushed():
	default:
	}
	// Requeueing nothing must not signal.
	q.Requeue()
	select {
	case <-q.Pushed():
		t.Fatal("empty Requeue signalled consumers")
	default:
	}
}

// TestSafeConcurrentPoppersExactlyOnce is the worker-pool contract: N
// consumer goroutines PopBatch from one Safe queue while producers push
// concurrently and deactivate themselves mid-stream (the shape of a
// straggler eviction racing live workers on another replica). Across
// all four policies every pushed item must be served exactly once —
// no item lost between poppers, none double-scattered, and no popper
// stranded by the edge-triggered push signal (the cascade wakeup).
// Run with -race.
func TestSafeConcurrentPoppersExactlyOnce(t *testing.T) {
	const (
		producers   = 6
		poppers     = 4
		perProducer = 300
		totalItems  = producers * perProducer
	)
	clientIDs := make([]int, producers)
	for i := range clientIDs {
		clientIDs[i] = i
	}
	builders := []struct {
		name  string
		build func() Policy
	}{
		{"fifo", func() Policy { return NewFIFO() }},
		{"staleness", func() Policy { return NewStalenessPriority() }},
		{"fair-rr", func() Policy { return NewFairRoundRobin() }},
		{"sync-rounds", func() Policy { return NewSyncRounds(clientIDs) }},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			q := NewSafe(b.build())

			var pwg sync.WaitGroup
			for p := 0; p < producers; p++ {
				p := p
				pwg.Add(1)
				go func() {
					defer pwg.Done()
					for i := 0; i < perProducer; i++ {
						q.Push(Item{
							Msg: &transport.Message{
								Type:     transport.MsgControl,
								ClientID: p,
								Seq:      i,
								SentAt:   time.Duration(p*perProducer + i),
							},
							ArrivedAt: time.Duration(p*perProducer + i),
						})
					}
					// Budget exhausted: leave the gate while poppers are
					// mid-drain (no-op for ungated policies).
					q.Deactivate(p)
				}()
			}

			var (
				mu     sync.Mutex
				seen   = make(map[[2]int]int, totalItems)
				dup    [2]int
				dupped bool
				popped int64 // guarded by mu
			)
			var cwg sync.WaitGroup
			for c := 0; c < poppers; c++ {
				c := c
				cwg.Add(1)
				go func() {
					defer cwg.Done()
					for n := 0; ; n++ {
						mu.Lock()
						done := popped >= totalItems || dupped
						mu.Unlock()
						if done {
							return
						}
						// Cycle the batch bound so single pops, partial
						// batches and oversized requests all interleave.
						batch := q.PopBatch(time.Duration(n), 1+(c+n)%5)
						if len(batch) == 0 {
							// The cascade wakeup re-arms Pushed() while
							// items remain, so a short timeout here is a
							// liveness backstop, not the drain mechanism.
							select {
							case <-q.Pushed():
							case <-time.After(2 * time.Millisecond):
							}
							continue
						}
						mu.Lock()
						for _, it := range batch {
							key := [2]int{it.ClientID(), it.Msg.Seq}
							seen[key]++
							if seen[key] > 1 && !dupped {
								dupped, dup = true, key
							}
						}
						popped += int64(len(batch))
						mu.Unlock()
					}
				}()
			}

			producersDone := make(chan struct{})
			go func() { pwg.Wait(); close(producersDone) }()
			select {
			case <-producersDone:
			case <-time.After(30 * time.Second):
				t.Fatal("producers wedged")
			}
			consumersDone := make(chan struct{})
			go func() { cwg.Wait(); close(consumersDone) }()
			select {
			case <-consumersDone:
			case <-time.After(30 * time.Second):
				mu.Lock()
				defer mu.Unlock()
				t.Fatalf("poppers stalled at %d/%d items (lost wakeup?)", popped, totalItems)
			}

			if dupped {
				t.Fatalf("item %v served more than once", dup)
			}
			if len(seen) != totalItems {
				t.Fatalf("served %d distinct items, want %d", len(seen), totalItems)
			}
			if it, ok := q.Pop(0); ok {
				t.Fatalf("phantom extra item %v after full drain", [2]int{it.ClientID(), it.Msg.Seq})
			}
		})
	}
}

// TestSafeCounterOwnership: reject/park outcomes are counted by the
// queue itself, inside the critical section that refused the push — the
// admission caller owns no counter increments.
func TestSafeCounterOwnership(t *testing.T) {
	reg := obs.NewRegistry()
	ins := NewInstruments(reg, "fifo")
	q := NewSafe(NewFIFO())
	q.SetInstruments(ins)

	item := func(seq int) Item {
		return Item{Msg: &transport.Message{Type: transport.MsgControl, Seq: seq}}
	}
	const cap = 2
	for i := 0; i < cap; i++ {
		if !q.TryPush(item(i), cap) {
			t.Fatalf("push %d refused below cap", i)
		}
	}
	if ins.Rejected.Value() != 0 || ins.Parked.Value() != 0 {
		t.Fatalf("counters moved before any refusal: rejected=%d parked=%d",
			ins.Rejected.Value(), ins.Parked.Value())
	}

	// Reject mode: every refusal is one rejection.
	if q.TryPush(item(10), cap) {
		t.Fatal("push above cap succeeded")
	}
	if q.TryPush(item(11), cap) {
		t.Fatal("push above cap succeeded")
	}
	if got := ins.Rejected.Value(); got != 2 {
		t.Errorf("Rejected = %d, want 2", got)
	}

	// Park mode: one parked admission counts once, however many retry
	// rounds it takes.
	if q.TryPushParking(item(20), cap, true) {
		t.Fatal("parking push above cap succeeded")
	}
	for i := 0; i < 5; i++ {
		if q.TryPushParking(item(20), cap, false) {
			t.Fatal("parking retry above cap succeeded")
		}
	}
	if got := ins.Parked.Value(); got != 1 {
		t.Errorf("Parked = %d, want 1 (retries must not re-count)", got)
	}

	// Headroom opens, the retry lands: counted as enqueued, nothing else.
	if _, ok := q.Pop(0); !ok {
		t.Fatal("pop failed")
	}
	if !q.TryPushParking(item(20), cap, false) {
		t.Fatal("parking push with headroom refused")
	}
	if got := ins.Enqueued.Value(); got != cap+1 {
		t.Errorf("Enqueued = %d, want %d", got, cap+1)
	}
	if ins.Rejected.Value() != 2 || ins.Parked.Value() != 1 {
		t.Errorf("counters drifted after successful retry: rejected=%d parked=%d",
			ins.Rejected.Value(), ins.Parked.Value())
	}
}

// TestSafePopBatchDeadline: expired items are shed under the pop's
// critical section — returned separately, counted as Expired (never
// Dequeued), and an all-expired draw redraws so fresh work behind the
// backlog is not starved.
func TestSafePopBatchDeadline(t *testing.T) {
	reg := obs.NewRegistry()
	ins := NewInstruments(reg, "fifo")
	q := NewSafe(NewFIFO())
	q.SetInstruments(ins)

	item := func(seq int, deadline time.Duration) Item {
		return Item{
			Msg:      &transport.Message{Type: transport.MsgControl, ClientID: seq, Seq: seq},
			Deadline: deadline,
		}
	}
	// Three expired (deadline 10), then two live (deadline 100, and none).
	for i := 0; i < 3; i++ {
		q.Push(item(i, 10))
	}
	q.Push(item(3, 100))
	q.Push(item(4, 0))

	// Draw of 2 at now=50: both picks are expired, so the draw repeats
	// and still returns fresh work.
	fresh, expired := q.PopBatchDeadline(50, 2)
	if len(expired) != 3 {
		t.Fatalf("expired %d items, want 3", len(expired))
	}
	if len(fresh) != 1 || fresh[0].Msg.Seq != 3 {
		t.Fatalf("fresh = %+v, want the seq-3 item", fresh)
	}
	if got := ins.Expired.Value(); got != 3 {
		t.Errorf("Expired counter = %d, want 3", got)
	}
	if got := ins.Dequeued.Value(); got != 1 {
		t.Errorf("Dequeued counter = %d, want 1 (expired items are not served)", got)
	}

	// The no-deadline item never expires.
	fresh, expired = q.PopBatchDeadline(time.Hour, 4)
	if len(fresh) != 1 || len(expired) != 0 || fresh[0].Msg.Seq != 4 {
		t.Fatalf("deadline-free item mishandled: fresh=%v expired=%v", fresh, expired)
	}

	// Occupancy invariant: enqueued − dequeued − expired = depth.
	depth := ins.Enqueued.Value() - ins.Dequeued.Value() - ins.Expired.Value()
	if depth != 0 || q.Len() != 0 {
		t.Errorf("occupancy invariant broken: computed %d, actual %d", depth, q.Len())
	}

	// Empty queue: both slices empty, no counter movement.
	fresh, expired = q.PopBatchDeadline(0, 4)
	if len(fresh) != 0 || len(expired) != 0 {
		t.Errorf("empty queue returned items: fresh=%v expired=%v", fresh, expired)
	}
}
