package queue

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Metrics accumulates service statistics for one training run: how long
// items waited, how many each client had served, and the queue's occupancy
// high-water mark. It answers the paper's §II concern quantitatively.
// All methods are safe for concurrent use — the live cluster runtime
// observes occupancy from session goroutines while the worker observes
// serves.
type Metrics struct {
	mu           sync.Mutex
	waits        []time.Duration
	servedBy     map[int]int
	maxOccupancy int
}

// NewMetrics constructs an empty metrics accumulator.
func NewMetrics() *Metrics {
	return &Metrics{servedBy: make(map[int]int)}
}

// ObserveServe records one served item.
func (m *Metrics) ObserveServe(it Item, now time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.waits = append(m.waits, it.Staleness(now))
	m.servedBy[it.ClientID()]++
}

// ObserveOccupancy records the queue length after a push.
func (m *Metrics) ObserveOccupancy(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > m.maxOccupancy {
		m.maxOccupancy = n
	}
}

// Served returns the number of items served for the given client.
func (m *Metrics) Served(clientID int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.servedBy[clientID]
}

// TotalServed returns the total items served.
func (m *Metrics) TotalServed() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.waits)
}

// MaxOccupancy returns the queue-length high-water mark.
func (m *Metrics) MaxOccupancy() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.maxOccupancy
}

// MeanWait returns the average queue wait.
func (m *Metrics) MeanWait() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.waits) == 0 {
		return 0
	}
	var s time.Duration
	for _, w := range m.waits {
		s += w
	}
	return s / time.Duration(len(m.waits))
}

// P99Wait returns the 99th-percentile queue wait.
func (m *Metrics) P99Wait() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.waits) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), m.waits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// ServiceImbalance returns (max served − min served) / max served across
// clients — 0 means perfectly fair service, →1 means some client was
// starved. Returns 0 with fewer than two clients.
func (m *Metrics) ServiceImbalance() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.servedBy) < 2 {
		return 0
	}
	minV, maxV := -1, -1
	for _, c := range m.servedBy {
		if minV == -1 || c < minV {
			minV = c
		}
		if c > maxV {
			maxV = c
		}
	}
	if maxV == 0 {
		return 0
	}
	return float64(maxV-minV) / float64(maxV)
}

// String renders a one-line summary. It copies the per-client counts
// under the lock, then delegates to the (self-locking) accessors.
func (m *Metrics) String() string {
	m.mu.Lock()
	ids := make([]int, 0, len(m.servedBy))
	counts := make(map[int]int, len(m.servedBy))
	for id, c := range m.servedBy {
		ids = append(ids, id)
		counts[id] = c
	}
	m.mu.Unlock()
	sort.Ints(ids)
	var parts []string
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("c%d:%d", id, counts[id]))
	}
	return fmt.Sprintf("served=%d meanWait=%v p99Wait=%v maxOcc=%d imbalance=%.3f per-client[%s]",
		m.TotalServed(), m.MeanWait(), m.P99Wait(), m.MaxOccupancy(), m.ServiceImbalance(), strings.Join(parts, " "))
}
