// Package queue implements the centralized server's parameter-scheduling
// queue from §II of the paper: when end-systems are geo-distributed, their
// first-hidden-layer activations arrive late or sparsely, and the order in
// which the server consumes them decides whether learning is biased toward
// near/fast clients. The package provides three scheduling policies —
// plain FIFO, oldest-first (staleness priority), and per-client fair
// round-robin — behind one interface, plus occupancy and service metrics.
package queue

import (
	"container/heap"
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/transport"
)

// Item is one queued client contribution awaiting server processing.
type Item struct {
	// Msg is the activation message.
	Msg *transport.Message
	// ArrivedAt is the server-clock arrival time.
	ArrivedAt time.Duration
	// Deadline, when positive, is the server-clock instant past which the
	// item should be shed rather than trained on: its client has long
	// since timed out and resent, so serving it would spend a model pass
	// on an abandoned batch. 0 = no deadline. Enforced by
	// Safe.PopBatchDeadline under the queue's critical section.
	Deadline time.Duration
}

// ClientID returns the originating end-system's id.
func (it Item) ClientID() int { return it.Msg.ClientID }

// Staleness returns how long the item has waited as of now.
func (it Item) Staleness(now time.Duration) time.Duration { return now - it.ArrivedAt }

// Expired reports whether the item's enqueue deadline has passed.
func (it Item) Expired(now time.Duration) bool { return it.Deadline > 0 && now > it.Deadline }

// Policy is a scheduling discipline over queued items.
//
// Implementations are not safe for concurrent use; the server owns the
// queue and serialises access.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Push enqueues an item.
	Push(it Item)
	// Pop dequeues the next item per the discipline, reporting false on
	// an empty queue.
	Pop(now time.Duration) (Item, bool)
	// PopBatch dequeues up to max items — the same picks max consecutive
	// Pops would make — returning an empty slice when the discipline
	// yields nothing. max <= 1 disables coalescing and is exactly one
	// Pop for every policy. A gated policy may redraw a larger batch's
	// boundary: SyncRounds treats a synchronous round as atomic and,
	// when max > 1, returns the whole round even when it exceeds max.
	PopBatch(now time.Duration, max int) []Item
	// Len returns the number of queued items.
	Len() int
}

// popN drains up to max items from p via repeated Pop — the default
// PopBatch for any discipline whose batch is just its next max picks.
func popN(p Policy, now time.Duration, max int) []Item {
	if max <= 0 {
		max = 1
	}
	var out []Item
	for len(out) < max {
		it, ok := p.Pop(now)
		if !ok {
			break
		}
		out = append(out, it)
	}
	return out
}

// FIFO serves items strictly in arrival order. Pop is amortised O(1): a
// head cursor advances through the backing slice, served slots are
// cleared so payloads are not pinned, and the slice is compacted once
// the dead prefix dominates.
type FIFO struct {
	items []Item
	head  int
}

// NewFIFO constructs an empty FIFO queue.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements Policy.
func (q *FIFO) Name() string { return "fifo" }

// Push implements Policy.
func (q *FIFO) Push(it Item) { q.items = append(q.items, it) }

// Pop implements Policy.
func (q *FIFO) Pop(time.Duration) (Item, bool) {
	if q.head >= len(q.items) {
		return Item{}, false
	}
	it := q.items[q.head]
	q.items[q.head] = Item{} // release the payload
	q.head++
	if q.head > len(q.items)/2 && q.head > 32 {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = Item{}
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return it, true
}

// PopBatch implements Policy: the next max items in arrival order.
func (q *FIFO) PopBatch(now time.Duration, max int) []Item { return popN(q, now, max) }

// Len implements Policy.
func (q *FIFO) Len() int { return len(q.items) - q.head }

// StalenessPriority serves the item whose SentAt timestamp is oldest,
// bounding the staleness of any client's contribution. Arrival order
// breaks ties.
type StalenessPriority struct {
	h itemHeap
}

// NewStalenessPriority constructs an empty staleness-priority queue.
func NewStalenessPriority() *StalenessPriority { return &StalenessPriority{} }

// Name implements Policy.
func (q *StalenessPriority) Name() string { return "staleness" }

// Push implements Policy.
func (q *StalenessPriority) Push(it Item) { heap.Push(&q.h, it) }

// Pop implements Policy.
func (q *StalenessPriority) Pop(time.Duration) (Item, bool) {
	if q.h.Len() == 0 {
		return Item{}, false
	}
	it, ok := heap.Pop(&q.h).(Item)
	if !ok {
		panic("queue: heap contained non-Item element")
	}
	return it, true
}

// PopBatch implements Policy: the max oldest items by SentAt.
func (q *StalenessPriority) PopBatch(now time.Duration, max int) []Item { return popN(q, now, max) }

// Len implements Policy.
func (q *StalenessPriority) Len() int { return q.h.Len() }

type itemHeap []Item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].Msg.SentAt != h[j].Msg.SentAt {
		return h[i].Msg.SentAt < h[j].Msg.SentAt
	}
	return h[i].ArrivedAt < h[j].ArrivedAt
}
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = Item{}
	*h = old[:n-1]
	return it
}

// FairRoundRobin keeps one FIFO per client and serves clients in strict
// rotation, so a fast nearby end-system cannot crowd out a far one. A
// client with nothing queued is skipped; rotation position is preserved
// across calls. Per-client buckets use the same amortised O(1) pop as
// FIFO.
type FairRoundRobin struct {
	perClient map[int]*FIFO
	order     []int // client ids in first-seen order
	next      int   // rotation cursor into order
}

// NewFairRoundRobin constructs an empty fair queue.
func NewFairRoundRobin() *FairRoundRobin {
	return &FairRoundRobin{perClient: make(map[int]*FIFO)}
}

// Name implements Policy.
func (q *FairRoundRobin) Name() string { return "fair-rr" }

// Push implements Policy.
func (q *FairRoundRobin) Push(it Item) {
	id := it.ClientID()
	bucket, seen := q.perClient[id]
	if !seen {
		bucket = NewFIFO()
		q.perClient[id] = bucket
		q.order = append(q.order, id)
	}
	bucket.Push(it)
}

// Pop implements Policy.
func (q *FairRoundRobin) Pop(now time.Duration) (Item, bool) {
	if len(q.order) == 0 {
		return Item{}, false
	}
	for scanned := 0; scanned < len(q.order); scanned++ {
		id := q.order[q.next%len(q.order)]
		q.next = (q.next + 1) % len(q.order)
		if it, ok := q.perClient[id].Pop(now); ok {
			return it, true
		}
	}
	return Item{}, false
}

// PopBatch implements Policy: the next max picks of the rotation, so a
// batch spreads across clients exactly as consecutive pops would.
func (q *FairRoundRobin) PopBatch(now time.Duration, max int) []Item { return popN(q, now, max) }

// Len implements Policy.
func (q *FairRoundRobin) Len() int {
	n := 0
	for _, b := range q.perClient {
		n += b.Len()
	}
	return n
}

// NewPolicy constructs a policy by name ("fifo", "staleness", "fair-rr").
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "fifo":
		return NewFIFO(), nil
	case "staleness":
		return NewStalenessPriority(), nil
	case "fair-rr":
		return NewFairRoundRobin(), nil
	default:
		return nil, fmt.Errorf("queue: unknown policy %q", name)
	}
}

// Interface compliance checks.
var (
	_ Policy = (*FIFO)(nil)
	_ Policy = (*StalenessPriority)(nil)
	_ Policy = (*FairRoundRobin)(nil)
)
