package queue

import "github.com/stsl/stsl/internal/obs"

// Instruments is the queue's telemetry bundle, labeled by policy so a
// dashboard can compare disciplines directly. All fields are optional
// (nil is a no-op); construct via NewInstruments for the standard
// metric names.
type Instruments struct {
	// Enqueued counts items admitted (stsl_queue_enqueued_total).
	Enqueued *obs.Counter
	// Dequeued counts items popped for service
	// (stsl_queue_dequeued_total).
	Dequeued *obs.Counter
	// Requeued counts orphan-recovery re-pushes
	// (stsl_queue_requeued_total).
	Requeued *obs.Counter
	// Parked counts admissions that blocked on the depth cap
	// (stsl_queue_parked_total). Incremented inside Safe.TryPushParking's
	// critical section, once per parked admission.
	Parked *obs.Counter
	// Rejected counts admissions bounced at the depth cap
	// (stsl_queue_rejected_total). Incremented inside Safe.TryPush's
	// critical section, so the counter can never drift from the refusals
	// it describes.
	Rejected *obs.Counter
	// Expired counts items shed past their enqueue deadline
	// (stsl_queue_expired_total). Incremented inside
	// Safe.PopBatchDeadline's critical section. The occupancy invariant
	// is enqueued − dequeued − expired = depth: an expired item leaves
	// the queue without ever counting as served.
	Expired *obs.Counter
	// Wait is the per-item queue-wait distribution, observed at pop
	// (stsl_queue_wait_seconds) — the live measurement of the paper's
	// staleness concern.
	Wait *obs.Histogram
	// Depth tracks the current queue occupancy (stsl_queue_depth).
	Depth *obs.Gauge
}

// NewInstruments registers the queue metric family on reg under the
// given policy label. A nil reg returns all-nil (no-op) instruments.
func NewInstruments(reg *obs.Registry, policy string) *Instruments {
	l := obs.Labels{"policy": policy}
	return &Instruments{
		Enqueued: reg.Counter("stsl_queue_enqueued_total", l),
		Dequeued: reg.Counter("stsl_queue_dequeued_total", l),
		Requeued: reg.Counter("stsl_queue_requeued_total", l),
		Parked:   reg.Counter("stsl_queue_parked_total", l),
		Rejected: reg.Counter("stsl_queue_rejected_total", l),
		Expired:  reg.Counter("stsl_queue_expired_total", l),
		Wait:     reg.Histogram("stsl_queue_wait_seconds", l),
		Depth:    reg.Gauge("stsl_queue_depth", l),
	}
}
