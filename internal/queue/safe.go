package queue

import (
	"sync"
	"time"
)

// Safe wraps any Policy for concurrent use: many producer goroutines may
// Push while one (or more) consumers Pop. It is the bridge between the
// paper's single-threaded scheduling disciplines and the live cluster
// runtime, where end-systems are real concurrent actors and arrival skew
// is wall-clock real rather than simulated.
//
// Beyond mutual exclusion, Safe exposes two edge-triggered notification
// channels so a consumer can block until the queue state may have
// changed instead of spinning: Pushed() fires after every Push (and
// after Deactivate, which can open a gated policy), and Popped() fires
// after every successful Pop (which is what a parked producer waiting
// for queue headroom cares about).
type Safe struct {
	mu    sync.Mutex
	inner Policy
	ins   *Instruments

	pushed chan struct{}
	popped chan struct{}
}

// NewSafe wraps a policy. The policy must not be used directly once
// wrapped.
func NewSafe(p Policy) *Safe {
	return &Safe{
		inner:  p,
		pushed: make(chan struct{}, 1),
		popped: make(chan struct{}, 1),
	}
}

// SetInstruments attaches telemetry (nil detaches). The counters and
// the wait histogram are updated inside the queue's critical sections,
// so depth and wait observations are exactly consistent with the
// scheduling decisions they describe.
func (s *Safe) SetInstruments(ins *Instruments) {
	s.mu.Lock()
	s.ins = ins
	s.mu.Unlock()
}

// Instruments returns the attached telemetry bundle (nil when
// detached) — the admission path uses it to count park/reject
// outcomes against the same policy label.
func (s *Safe) Instruments() *Instruments {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ins
}

// observeDepthLocked refreshes the depth gauge. Caller must hold s.mu.
func (s *Safe) observeDepthLocked() {
	if s.ins != nil {
		s.ins.Depth.Set(float64(s.inner.Len()))
	}
}

// signal makes an edge-triggered, non-blocking notification.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// Name implements Policy.
func (s *Safe) Name() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Name()
}

// Push implements Policy.
func (s *Safe) Push(it Item) {
	s.mu.Lock()
	s.inner.Push(it)
	if s.ins != nil {
		s.ins.Enqueued.Inc()
		s.observeDepthLocked()
	}
	s.mu.Unlock()
	signal(s.pushed)
}

// TryPush pushes only if the queue currently holds fewer than cap items,
// reporting whether the push happened. cap <= 0 means unbounded. The
// check and push are atomic, so concurrent producers cannot overshoot
// the cap.
//
// A refusal is counted as Rejected inside the same critical section that
// made the decision — callers bouncing work at the cap must not count it
// again. Park-mode admission, which retries instead of bouncing, uses
// TryPushParking so refusals are counted as parks, and only once.
func (s *Safe) TryPush(it Item, cap int) bool {
	s.mu.Lock()
	if cap > 0 && s.inner.Len() >= cap {
		if s.ins != nil {
			s.ins.Rejected.Inc()
		}
		s.mu.Unlock()
		return false
	}
	s.inner.Push(it)
	if s.ins != nil {
		s.ins.Enqueued.Inc()
		s.observeDepthLocked()
	}
	s.mu.Unlock()
	signal(s.pushed)
	return true
}

// TryPushParking is TryPush for park-mode admission: the caller will wait
// for headroom and retry rather than bounce the item. A refusal is
// counted as Parked — under the queue's lock, like every other counter —
// but only when firstAttempt is true, so one parked admission counts once
// however many wait-retry rounds it takes to land.
func (s *Safe) TryPushParking(it Item, cap int, firstAttempt bool) bool {
	s.mu.Lock()
	if cap > 0 && s.inner.Len() >= cap {
		if firstAttempt && s.ins != nil {
			s.ins.Parked.Inc()
		}
		s.mu.Unlock()
		return false
	}
	s.inner.Push(it)
	if s.ins != nil {
		s.ins.Enqueued.Inc()
		s.observeDepthLocked()
	}
	s.mu.Unlock()
	signal(s.pushed)
	return true
}

// Pop implements Policy.
func (s *Safe) Pop(now time.Duration) (Item, bool) {
	s.mu.Lock()
	it, ok := s.inner.Pop(now)
	if ok && s.ins != nil {
		s.ins.Dequeued.Inc()
		s.ins.Wait.Observe(it.Staleness(now).Seconds())
		s.observeDepthLocked()
	}
	remaining := s.inner.Len()
	s.mu.Unlock()
	if ok {
		signal(s.popped)
		if remaining > 0 {
			// Cascade wakeup: Pushed() is edge-triggered with capacity 1,
			// so one push burst can wake only one of N blocked consumers.
			// Re-arming the push signal while work remains hands the next
			// item's wakeup to the next consumer — without it a worker
			// pool would strand queued items behind a single edge.
			signal(s.pushed)
		}
	}
	return it, ok
}

// PopBatch implements Policy: the inner policy's batch is drawn under
// one critical section, so concurrent producers can never interleave
// into the middle of a batch (a sync-rounds round stays atomic). One
// headroom signal covers the whole batch — parked producers poll.
func (s *Safe) PopBatch(now time.Duration, max int) []Item {
	s.mu.Lock()
	items := s.inner.PopBatch(now, max)
	if len(items) > 0 && s.ins != nil {
		s.ins.Dequeued.Add(int64(len(items)))
		for _, it := range items {
			s.ins.Wait.Observe(it.Staleness(now).Seconds())
		}
		s.observeDepthLocked()
	}
	remaining := s.inner.Len()
	s.mu.Unlock()
	if len(items) > 0 {
		signal(s.popped)
		if remaining > 0 {
			// Same cascade as Pop: keep the push edge armed while items
			// remain so every blocked consumer in a pool gets its turn.
			signal(s.pushed)
		}
	}
	return items
}

// PopBatchDeadline is PopBatch with deadline shedding: items whose
// enqueue Deadline has passed are filtered out of the draw under the same
// critical section that popped them, counted as Expired, and returned
// separately so the caller can notify their owners (the cluster worker
// sends the client a resend notice). When an entire draw turns out to be
// expired backlog the policy is drawn again, so a burst of abandoned work
// cannot return an empty fresh batch while serviceable items wait behind
// it.
//
// Expired items count toward Instruments.Expired only — never Dequeued or
// Wait — preserving the occupancy invariant enqueued − dequeued − expired
// = depth.
func (s *Safe) PopBatchDeadline(now time.Duration, max int) (fresh, expired []Item) {
	s.mu.Lock()
	for {
		items := s.inner.PopBatch(now, max)
		if len(items) == 0 {
			break
		}
		for _, it := range items {
			if it.Expired(now) {
				expired = append(expired, it)
			} else {
				fresh = append(fresh, it)
			}
		}
		if len(fresh) > 0 || s.inner.Len() == 0 {
			break
		}
	}
	if s.ins != nil {
		if len(expired) > 0 {
			s.ins.Expired.Add(int64(len(expired)))
		}
		if len(fresh) > 0 {
			s.ins.Dequeued.Add(int64(len(fresh)))
			for _, it := range fresh {
				s.ins.Wait.Observe(it.Staleness(now).Seconds())
			}
		}
		if len(fresh)+len(expired) > 0 {
			s.observeDepthLocked()
		}
	}
	remaining := s.inner.Len()
	s.mu.Unlock()
	if len(fresh)+len(expired) > 0 {
		signal(s.popped)
		if remaining > 0 {
			// Same cascade as Pop: keep the push edge armed while items
			// remain so every blocked consumer in a pool gets its turn.
			signal(s.pushed)
		}
	}
	return fresh, expired
}

// Requeue returns already-popped items to the policy in one critical
// section, preserving their original arrival times so staleness-ordered
// disciplines restore each item's true priority (FIFO appends at the
// tail; the perturbation is bounded by the batch size). It is the
// orphan-recovery path: a consumer that popped work it can no longer
// process — the worker caught mid-batch by shutdown — puts the items
// back rather than silently dropping admitted contributions.
func (s *Safe) Requeue(items ...Item) {
	if len(items) == 0 {
		return
	}
	s.mu.Lock()
	for _, it := range items {
		s.inner.Push(it)
	}
	if s.ins != nil {
		s.ins.Requeued.Add(int64(len(items)))
		s.observeDepthLocked()
	}
	s.mu.Unlock()
	signal(s.pushed)
}

// Len implements Policy.
func (s *Safe) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Len()
}

// Deactivate forwards to a gated inner policy (e.g. SyncRounds) and
// wakes consumers, since removing a client can open the gate. It is a
// no-op for ungated policies.
func (s *Safe) Deactivate(clientID int) {
	s.mu.Lock()
	if g, ok := s.inner.(interface{ Deactivate(int) }); ok {
		g.Deactivate(clientID)
	}
	s.mu.Unlock()
	signal(s.pushed)
}

// Gated reports whether the wrapped policy is gated (can refuse to pop
// while non-empty, like SyncRounds). Consumers use this to size
// backpressure: capping admission below the client count would starve a
// gate that needs one item from every client.
func (s *Safe) Gated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.inner.(interface{ Deactivate(int) })
	return ok
}

// Pushed returns the channel signalled after pushes (and deactivations).
// It is edge-triggered with capacity 1: a receive means "state may have
// changed since you last looked", not "exactly one item arrived".
func (s *Safe) Pushed() <-chan struct{} { return s.pushed }

// Popped returns the channel signalled after successful pops — the
// headroom signal a producer parked on a full queue waits for.
func (s *Safe) Popped() <-chan struct{} { return s.popped }

var _ Policy = (*Safe)(nil)
