package queue

import "time"

// SyncRounds is the synchronous-rounds discipline: the server serves one
// item per registered client per round and refuses to pop until every
// active client has at least one item queued. It paces fast/near clients
// to the slowest one — the strongest form of the paper's "parameter
// scheduling" — trading wall-clock throughput for unbiased service.
//
// Clients whose data budget is exhausted must be Deactivated or the gate
// would deadlock waiting for contributions that will never come.
type SyncRounds struct {
	inner  *FairRoundRobin
	active map[int]bool
}

// NewSyncRounds constructs the policy with the given active client ids.
func NewSyncRounds(clientIDs []int) *SyncRounds {
	s := &SyncRounds{inner: NewFairRoundRobin(), active: make(map[int]bool, len(clientIDs))}
	for _, id := range clientIDs {
		s.active[id] = true
	}
	return s
}

// Name implements Policy.
func (q *SyncRounds) Name() string { return "sync-rounds" }

// Push implements Policy.
func (q *SyncRounds) Push(it Item) { q.inner.Push(it) }

// Deactivate removes a client from the gate (its remaining queued items
// are still served).
func (q *SyncRounds) Deactivate(clientID int) { delete(q.active, clientID) }

// gateOpen reports whether every active client has an item queued.
func (q *SyncRounds) gateOpen() bool {
	for id := range q.active {
		bucket, seen := q.inner.perClient[id]
		if !seen || bucket.Len() == 0 {
			return false
		}
	}
	return true
}

// Pop implements Policy: it serves round-robin but only while the gate is
// open (or once no clients remain active, in which case it drains).
func (q *SyncRounds) Pop(now time.Duration) (Item, bool) {
	if len(q.active) > 0 && !q.gateOpen() {
		return Item{}, false
	}
	return q.inner.Pop(now)
}

// PopBatch implements Policy. With max <= 1 coalescing is disabled and
// the pick is exactly Pop's — one item, one server pass, as the serial
// discipline always behaved. With coalescing on, a synchronous round is
// atomic: when the gate is open it returns one item from every client
// with queued work (every active client by the gate condition, plus any
// deactivated stragglers' leftovers) even when the round exceeds max —
// coalescing a partial round would reintroduce exactly the fast-client
// bias the discipline exists to prevent. Once no clients remain active
// it drains up to max like an ungated policy.
func (q *SyncRounds) PopBatch(now time.Duration, max int) []Item {
	if max <= 1 {
		if it, ok := q.Pop(now); ok {
			return []Item{it}
		}
		return nil
	}
	if len(q.active) == 0 {
		return popN(q.inner, now, max)
	}
	if !q.gateOpen() {
		return nil
	}
	n := 0
	for _, b := range q.inner.perClient {
		if b.Len() > 0 {
			n++
		}
	}
	out := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		// n consecutive round-robin pops serve n distinct non-empty
		// buckets: one item per queued client.
		it, ok := q.inner.Pop(now)
		if !ok {
			break
		}
		out = append(out, it)
	}
	return out
}

// Len implements Policy.
func (q *SyncRounds) Len() int { return q.inner.Len() }

var _ Policy = (*SyncRounds)(nil)
