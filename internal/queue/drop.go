package queue

import "time"

// StalenessDrop wraps another policy and discards items whose SentAt
// timestamp is older than MaxStaleness at pop time. The paper's §II notes
// that "parameter scheduling is required depending on applications" —
// this is the discipline for applications that prefer dropping very late
// contributions over training on stale activations (which correspond to
// client weights that have since moved on).
type StalenessDrop struct {
	inner        Policy
	maxStaleness time.Duration
	dropped      int
}

// NewStalenessDrop wraps inner with a staleness cutoff. maxStaleness must
// be positive.
func NewStalenessDrop(inner Policy, maxStaleness time.Duration) *StalenessDrop {
	if maxStaleness <= 0 {
		panic("queue: StalenessDrop needs a positive cutoff")
	}
	return &StalenessDrop{inner: inner, maxStaleness: maxStaleness}
}

// Name implements Policy.
func (q *StalenessDrop) Name() string { return q.inner.Name() + "+drop" }

// Push implements Policy.
func (q *StalenessDrop) Push(it Item) { q.inner.Push(it) }

// Pop implements Policy: it discards expired items until it finds a fresh
// one (or the queue empties).
func (q *StalenessDrop) Pop(now time.Duration) (Item, bool) {
	for {
		it, ok := q.inner.Pop(now)
		if !ok {
			return Item{}, false
		}
		if now-it.Msg.SentAt > q.maxStaleness {
			q.dropped++
			continue
		}
		return it, true
	}
}

// PopBatch implements Policy: up to max fresh items, expired ones
// discarded along the way exactly as repeated Pops would.
func (q *StalenessDrop) PopBatch(now time.Duration, max int) []Item { return popN(q, now, max) }

// Len implements Policy.
func (q *StalenessDrop) Len() int { return q.inner.Len() }

// Dropped returns how many items the cutoff has discarded.
func (q *StalenessDrop) Dropped() int { return q.dropped }

var _ Policy = (*StalenessDrop)(nil)
