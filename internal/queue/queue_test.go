package queue

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/transport"
)

func item(client, seq int, sentAt, arrived time.Duration) Item {
	return Item{
		Msg: &transport.Message{
			Type: MsgTypeForTest, ClientID: client, Seq: seq, SentAt: sentAt,
		},
		ArrivedAt: arrived,
	}
}

// MsgTypeForTest keeps test items valid without payload requirements.
const MsgTypeForTest = transport.MsgControl

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO()
	for i := 0; i < 5; i++ {
		q.Push(item(0, i, 0, time.Duration(i)))
	}
	for i := 0; i < 5; i++ {
		it, ok := q.Pop(0)
		if !ok || it.Msg.Seq != i {
			t.Fatalf("pop %d: ok=%v seq=%d", i, ok, it.Msg.Seq)
		}
	}
	if _, ok := q.Pop(0); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestStalenessPriorityServesOldestFirst(t *testing.T) {
	q := NewStalenessPriority()
	q.Push(item(0, 1, 30*time.Millisecond, 0))
	q.Push(item(1, 2, 10*time.Millisecond, 0)) // oldest send time
	q.Push(item(2, 3, 20*time.Millisecond, 0))
	wantSeq := []int{2, 3, 1}
	for i, want := range wantSeq {
		it, ok := q.Pop(0)
		if !ok || it.Msg.Seq != want {
			t.Fatalf("pop %d: seq=%d, want %d", i, it.Msg.Seq, want)
		}
	}
}

func TestStalenessPriorityTieBreaksOnArrival(t *testing.T) {
	q := NewStalenessPriority()
	q.Push(item(0, 1, time.Millisecond, 5*time.Millisecond))
	q.Push(item(1, 2, time.Millisecond, 2*time.Millisecond))
	it, _ := q.Pop(0)
	if it.Msg.Seq != 2 {
		t.Fatalf("tie broken wrong: seq %d", it.Msg.Seq)
	}
}

func TestFairRoundRobinRotation(t *testing.T) {
	q := NewFairRoundRobin()
	// Client 0 floods; client 1 has one item.
	for i := 0; i < 5; i++ {
		q.Push(item(0, i, 0, 0))
	}
	q.Push(item(1, 100, 0, 0))
	first, _ := q.Pop(0)
	second, _ := q.Pop(0)
	// Rotation must serve both clients within the first two pops.
	clients := map[int]bool{first.ClientID(): true, second.ClientID(): true}
	if !clients[0] || !clients[1] {
		t.Fatalf("rotation served %v", clients)
	}
	// Remaining pops drain client 0 in order.
	prev := -1
	for {
		it, ok := q.Pop(0)
		if !ok {
			break
		}
		if it.ClientID() == 0 {
			if it.Msg.Seq <= prev {
				t.Fatal("per-client order violated")
			}
			prev = it.Msg.Seq
		}
	}
}

func TestFairRoundRobinSkipsEmptyClients(t *testing.T) {
	q := NewFairRoundRobin()
	q.Push(item(0, 1, 0, 0))
	if _, ok := q.Pop(0); !ok {
		t.Fatal("pop failed")
	}
	// Client 0 now empty; client 1 pushes.
	q.Push(item(1, 2, 0, 0))
	it, ok := q.Pop(0)
	if !ok || it.ClientID() != 1 {
		t.Fatalf("pop = %+v ok=%v", it, ok)
	}
}

func TestPoliciesConserveItems(t *testing.T) {
	// Property: across any push/pop interleaving, nothing is lost or
	// duplicated.
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		for _, name := range []string{"fifo", "staleness", "fair-rr"} {
			q, err := NewPolicy(name)
			if err != nil {
				return false
			}
			pushed := make(map[int]int)
			popped := make(map[int]int)
			seq := 0
			for op := 0; op < 200; op++ {
				if r.Float64() < 0.6 {
					client := r.Intn(4)
					q.Push(item(client, seq, time.Duration(r.Intn(1000)), time.Duration(op)))
					pushed[seq]++
					seq++
				} else if it, ok := q.Pop(time.Duration(op)); ok {
					popped[it.Msg.Seq]++
				}
			}
			for q.Len() > 0 {
				it, ok := q.Pop(0)
				if !ok {
					return false // Len>0 but Pop failed
				}
				popped[it.Msg.Seq]++
			}
			if len(pushed) != len(popped) {
				return false
			}
			for s, c := range pushed {
				if popped[s] != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPopBatchMatchesConsecutivePops(t *testing.T) {
	// Property: for ungated policies, PopBatch(now, k) returns exactly
	// the items k consecutive Pops would, in the same order.
	build := func(name string) Policy {
		q, err := NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	for _, name := range []string{"fifo", "staleness", "fair-rr"} {
		name := name
		t.Run(name, func(t *testing.T) {
			ref, batched := build(name), build(name)
			for i := 0; i < 17; i++ {
				it := item(i%3, i, time.Duration(1000-i), time.Duration(i))
				ref.Push(it)
				batched.Push(it)
			}
			for batched.Len() > 0 {
				batch := batched.PopBatch(0, 4)
				if len(batch) == 0 {
					t.Fatal("PopBatch empty with items queued")
				}
				for _, got := range batch {
					want, ok := ref.Pop(0)
					if !ok || want.Msg.Seq != got.Msg.Seq {
						t.Fatalf("batch pick seq %d, consecutive pop seq %d (ok=%v)",
							got.Msg.Seq, want.Msg.Seq, ok)
					}
				}
			}
			if len(batched.PopBatch(0, 4)) != 0 {
				t.Fatal("PopBatch from empty queue returned items")
			}
		})
	}
}

func TestPopBatchMaxClamp(t *testing.T) {
	q := NewFIFO()
	for i := 0; i < 3; i++ {
		q.Push(item(0, i, 0, 0))
	}
	if got := len(q.PopBatch(0, 0)); got != 1 {
		t.Fatalf("max<=0 popped %d items, want 1", got)
	}
	if got := len(q.PopBatch(0, 10)); got != 2 {
		t.Fatalf("oversized max popped %d items, want the 2 remaining", got)
	}
}

func TestSyncRoundsPopBatchAtomicRound(t *testing.T) {
	q := NewSyncRounds([]int{0, 1, 2})
	q.Push(item(0, 1, 0, 0))
	q.Push(item(1, 2, 0, 0))
	if batch := q.PopBatch(0, 8); len(batch) != 0 {
		t.Fatalf("gate held but PopBatch returned %d items", len(batch))
	}
	q.Push(item(2, 3, 0, 0))
	q.Push(item(0, 4, 0, 0))  // second item for client 0 — next round's
	batch := q.PopBatch(0, 2) // max below the round size: round is atomic
	if len(batch) != 3 {
		t.Fatalf("open gate returned %d items, want the whole round of 3", len(batch))
	}
	seen := map[int]int{}
	for _, it := range batch {
		seen[it.ClientID()]++
	}
	for id := 0; id < 3; id++ {
		if seen[id] != 1 {
			t.Fatalf("round served client %d %d times, want exactly once (%v)", id, seen[id], seen)
		}
	}
	// Client 0's second item alone cannot open the next round.
	if batch := q.PopBatch(0, 8); len(batch) != 0 {
		t.Fatalf("partial next round returned %d items", len(batch))
	}
}

func TestSyncRoundsPopBatchSerialWhenCoalescingOff(t *testing.T) {
	// max <= 1 must behave exactly like Pop: one item per call, so a
	// deployment without coalescing keeps the serial discipline's
	// one-optimiser-step-per-item semantics.
	q := NewSyncRounds([]int{0, 1})
	q.Push(item(0, 1, 0, 0))
	if batch := q.PopBatch(0, 1); len(batch) != 0 {
		t.Fatalf("gate held but serial PopBatch returned %d items", len(batch))
	}
	q.Push(item(1, 2, 0, 0))
	if batch := q.PopBatch(0, 1); len(batch) != 1 {
		t.Fatalf("serial PopBatch returned %d items, want exactly 1", len(batch))
	}
	if batch := q.PopBatch(0, 1); len(batch) != 0 {
		t.Fatalf("second serial PopBatch returned %d items with the gate closed", len(batch))
	}
}

func TestSyncRoundsPopBatchDrainsAfterDeactivation(t *testing.T) {
	q := NewSyncRounds([]int{0, 1})
	q.Push(item(0, 1, 0, 0))
	q.Push(item(0, 2, 0, 0))
	q.Deactivate(0)
	q.Deactivate(1)
	if got := len(q.PopBatch(0, 8)); got != 2 {
		t.Fatalf("drain mode popped %d items, want 2", got)
	}
}

func TestStalenessDropPopBatchDiscardsExpired(t *testing.T) {
	q := NewStalenessDrop(NewFIFO(), 10*time.Millisecond)
	q.Push(item(0, 1, 0, 0))                    // stale at now=1s
	q.Push(item(0, 2, 999*time.Millisecond, 0)) // fresh
	batch := q.PopBatch(time.Second, 4)
	if len(batch) != 1 || batch[0].Msg.Seq != 2 {
		t.Fatalf("batch %v, want only the fresh item", batch)
	}
	if q.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", q.Dropped())
	}
}

func TestNewPolicy(t *testing.T) {
	for _, name := range []string{"fifo", "staleness", "fair-rr"} {
		q, err := NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if q.Name() != name {
			t.Fatalf("Name = %q, want %q", q.Name(), name)
		}
	}
	if _, err := NewPolicy("lifo"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestMetrics(t *testing.T) {
	m := NewMetrics()
	if m.TotalServed() != 0 || m.MeanWait() != 0 || m.P99Wait() != 0 {
		t.Fatal("fresh metrics not zero")
	}
	m.ObserveOccupancy(3)
	m.ObserveOccupancy(1)
	if m.MaxOccupancy() != 3 {
		t.Fatalf("MaxOccupancy = %d", m.MaxOccupancy())
	}
	// Client 0 served twice with waits 10ms and 30ms; client 1 once.
	m.ObserveServe(item(0, 1, 0, 0), 10*time.Millisecond)
	m.ObserveServe(item(0, 2, 0, 0), 30*time.Millisecond)
	m.ObserveServe(item(1, 3, 0, 10*time.Millisecond), 20*time.Millisecond)
	if m.TotalServed() != 3 {
		t.Fatalf("TotalServed = %d", m.TotalServed())
	}
	if m.Served(0) != 2 || m.Served(1) != 1 {
		t.Fatal("per-client served counts wrong")
	}
	wantMean := (10 + 30 + 10) * time.Millisecond / 3
	if got := m.MeanWait(); got != wantMean {
		t.Fatalf("MeanWait = %v, want %v", got, wantMean)
	}
	if got := m.P99Wait(); got != 30*time.Millisecond {
		t.Fatalf("P99Wait = %v", got)
	}
	if imb := m.ServiceImbalance(); imb != 0.5 {
		t.Fatalf("ServiceImbalance = %v, want 0.5", imb)
	}
	if s := m.String(); s == "" {
		t.Fatal("empty String()")
	}
}
