package tensor

import (
	"testing"
	"testing/quick"

	"github.com/stsl/stsl/internal/mathx"
)

func TestMatMulPMatchesSerial(t *testing.T) {
	r := mathx.NewRNG(1)
	// Large enough to cross the parallel threshold.
	a := Randn(r, 1, 300, 80)
	b := Randn(r, 1, 80, 120)
	want := MatMul(a, b)
	got := MatMulP(a, b)
	if !got.Equal(want, 0) {
		t.Fatal("parallel matmul differs from serial (must be bitwise equal)")
	}
}

func TestMatMulTransBPMatchesSerial(t *testing.T) {
	r := mathx.NewRNG(2)
	a := Randn(r, 1, 400, 60)
	b := Randn(r, 1, 90, 60)
	want := MatMulTransB(a, b)
	got := MatMulTransBP(a, b)
	if !got.Equal(want, 0) {
		t.Fatal("parallel transB differs from serial (must be bitwise equal)")
	}
}

func TestMatMulPSmallDelegates(t *testing.T) {
	// Below threshold, the result must still be exact.
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		return MatMulP(a, b).Equal(MatMul(a, b), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulPDeterministicAcrossRuns(t *testing.T) {
	r := mathx.NewRNG(3)
	a := Randn(r, 1, 256, 64)
	b := Randn(r, 1, 64, 256)
	first := MatMulP(a, b)
	for i := 0; i < 5; i++ {
		if !MatMulP(a, b).Equal(first, 0) {
			t.Fatal("parallel matmul nondeterministic across runs")
		}
	}
}
