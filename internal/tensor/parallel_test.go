package tensor

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/stsl/stsl/internal/mathx"
)

func TestMatMulPMatchesSerial(t *testing.T) {
	r := mathx.NewRNG(1)
	// Large enough to cross the parallel threshold.
	a := Randn(r, 1, 300, 80)
	b := Randn(r, 1, 80, 120)
	want := MatMul(a, b)
	got := MatMulP(a, b)
	if !got.Equal(want, 0) {
		t.Fatal("parallel matmul differs from serial (must be bitwise equal)")
	}
}

func TestMatMulTransBPMatchesSerial(t *testing.T) {
	r := mathx.NewRNG(2)
	a := Randn(r, 1, 400, 60)
	b := Randn(r, 1, 90, 60)
	want := MatMulTransB(a, b)
	got := MatMulTransBP(a, b)
	if !got.Equal(want, 0) {
		t.Fatal("parallel transB differs from serial (must be bitwise equal)")
	}
}

func TestMatMulPSmallDelegates(t *testing.T) {
	// Below threshold, the result must still be exact.
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		return MatMulP(a, b).Equal(MatMul(a, b), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// panicMessage runs f and returns the textual panic it raised, or "" if
// it returned normally.
func panicMessage(f func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprint(r)
		}
	}()
	f()
	return ""
}

// TestMatMulPBadRankMatchesSerialPanic regresses the validation-order
// bug: the parallel kernels read shape[1] before the rank guard, so a
// rank-1 (or rank-3) operand large enough for the fast path panicked
// with a raw index-out-of-range instead of the serial kernel's
// descriptive shape panic. The panic text must now be identical to the
// serial kernel's for every malformed-rank combination.
func TestMatMulPBadRankMatchesSerialPanic(t *testing.T) {
	r := mathx.NewRNG(4)
	rank1 := Randn(r, 1, 600_000)      // would overflow shape[1] pre-fix
	rank3 := Randn(r, 1, 80, 100, 100) // above threshold as a flat volume
	rank2 := Randn(r, 1, 600, 600)     // valid partner above threshold
	cases := []struct {
		name string
		a, b *Tensor
	}{
		{"rank1-a", rank1, rank2},
		{"rank1-b", rank2, rank1},
		{"rank3-a", rank3, rank2},
		{"rank3-b", rank2, rank3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want := panicMessage(func() { MatMul(tc.a, tc.b) })
			if want == "" {
				t.Fatal("serial MatMul accepted malformed operands")
			}
			if got := panicMessage(func() { MatMulP(tc.a, tc.b) }); got != want {
				t.Errorf("MatMulP panic %q, want serial kernel's %q", got, want)
			}
			wantTB := panicMessage(func() { MatMulTransB(tc.a, tc.b) })
			if wantTB == "" {
				t.Fatal("serial MatMulTransB accepted malformed operands")
			}
			if got := panicMessage(func() { MatMulTransBP(tc.a, tc.b) }); got != wantTB {
				t.Errorf("MatMulTransBP panic %q, want serial kernel's %q", got, wantTB)
			}
		})
	}
}

// TestMatMulPMismatchMatchesSerialPanic checks the inner-dimension
// mismatch of two large rank-2 operands also reaches the serial panic.
func TestMatMulPMismatchMatchesSerialPanic(t *testing.T) {
	r := mathx.NewRNG(5)
	a := Randn(r, 1, 600, 500)
	b := Randn(r, 1, 400, 600)
	want := panicMessage(func() { MatMul(a, b) })
	if got := panicMessage(func() { MatMulP(a, b) }); got != want || want == "" {
		t.Errorf("MatMulP mismatch panic %q, want %q", got, want)
	}
}

func TestMatMulPDeterministicAcrossRuns(t *testing.T) {
	r := mathx.NewRNG(3)
	a := Randn(r, 1, 256, 64)
	b := Randn(r, 1, 64, 256)
	first := MatMulP(a, b)
	for i := 0; i < 5; i++ {
		if !MatMulP(a, b).Equal(first, 0) {
			t.Fatal("parallel matmul nondeterministic across runs")
		}
	}
}
