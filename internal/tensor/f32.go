package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// float32 compute kernels. Tensors always store float64 (see dtype.go),
// so the float32 path converts the operands into pooled []float32
// scratch, runs the whole O(m·k·n) product in single precision — half
// the cache and memory-bandwidth footprint of the float64 kernels — and
// widens the result back on the way out. The O(m·k + k·n) conversions
// are noise next to the product for the layer shapes that matter.
//
// The kernels mirror block.go exactly: same tiles, same 4-wide unroll,
// same full-problem-size dispatch shared by serial and parallel
// callers, so MatMulP32 is bitwise identical to MatMul32.

// f32Pool recycles float32 scratch slices across kernel calls so the
// steady-state training loop allocates nothing for conversions.
var f32Pool = sync.Pool{
	New: func() any {
		s := make([]float32, 0, 4096)
		return &s
	},
}

// getF32 returns a pooled length-n float32 slice (contents undefined).
func getF32(n int) *[]float32 {
	sp := f32Pool.Get().(*[]float32)
	if cap(*sp) < n {
		*sp = make([]float32, n)
	}
	*sp = (*sp)[:n]
	return sp
}

func putF32(sp *[]float32) { f32Pool.Put(sp) }

// narrow fills dst with src rounded to float32.
func narrow(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// widen fills dst with src widened to float64.
func widen(dst []float64, src []float32) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// MatMul32 is MatMul computed in single precision: operands are rounded
// to float32, the product is accumulated in float32, and the result is
// widened back to the tensor's float64 storage. The output tensor is
// tagged Float32.
func MatMul32(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	af, bf, of := getF32(m*k), getF32(k*n), getF32(m*n)
	defer putF32(af)
	defer putF32(bf)
	defer putF32(of)
	narrow(*af, a.data)
	narrow(*bf, b.data)
	clearF32(*of)
	matMulRangeF32(*af, *bf, *of, m, k, n, 0, m)
	out := New(m, n)
	out.dtype = Float32
	widen(out.data, *of)
	return out
}

// MatMulTransA32 is MatMulTransA (aᵀ·b) in single precision.
func MatMulTransA32(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	af, bf, of := getF32(k*m), getF32(k*n), getF32(m*n)
	defer putF32(af)
	defer putF32(bf)
	defer putF32(of)
	narrow(*af, a.data)
	narrow(*bf, b.data)
	clearF32(*of)
	matMulTransAColsF32(*af, *bf, *of, k, m, n, 0, m)
	out := New(m, n)
	out.dtype = Float32
	widen(out.data, *of)
	return out
}

// MatMulTransB32 is MatMulTransB (a·bᵀ) in single precision.
func MatMulTransB32(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	af, bf, of := getF32(m*k), getF32(n*k), getF32(m*n)
	defer putF32(af)
	defer putF32(bf)
	defer putF32(of)
	narrow(*af, a.data)
	narrow(*bf, b.data)
	matMulTransBRangeF32(*af, *bf, *of, m, k, n, 0, m)
	out := New(m, n)
	out.dtype = Float32
	widen(out.data, *of)
	return out
}

// MatMulP32 is the parallel variant of MatMul32; bitwise identical to it
// (shared range kernels, shared dispatch decision).
func MatMulP32(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		return MatMul32(a, b)
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if k != b.shape[0] || m*k*n < parallelThreshold {
		return MatMul32(a, b)
	}
	af, bf, of := getF32(m*k), getF32(k*n), getF32(m*n)
	defer putF32(af)
	defer putF32(bf)
	defer putF32(of)
	narrow(*af, a.data)
	narrow(*bf, b.data)
	clearF32(*of)
	parallelRowsF32(m, func(lo, hi int) {
		matMulRangeF32(*af, *bf, *of, m, k, n, lo, hi)
	})
	out := New(m, n)
	out.dtype = Float32
	widen(out.data, *of)
	return out
}

// MatMulTransBP32 is the parallel variant of MatMulTransB32.
func MatMulTransBP32(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		return MatMulTransB32(a, b)
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if k != b.shape[1] || m*k*n < parallelThreshold {
		return MatMulTransB32(a, b)
	}
	af, bf, of := getF32(m*k), getF32(n*k), getF32(m*n)
	defer putF32(af)
	defer putF32(bf)
	defer putF32(of)
	narrow(*af, a.data)
	narrow(*bf, b.data)
	parallelRowsF32(m, func(lo, hi int) {
		matMulTransBRangeF32(*af, *bf, *of, m, k, n, lo, hi)
	})
	out := New(m, n)
	out.dtype = Float32
	widen(out.data, *of)
	return out
}

// parallelRowsF32 partitions [0,m) across GOMAXPROCS workers.
func parallelRowsF32(m int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Dispatch helpers: route to the float32 kernels when dt is Float32,
// otherwise to the float64 defaults. The nn layers call these so one
// dtype field switches an entire model's compute precision.

// MatMulDT is MatMul at the given compute precision.
func MatMulDT(a, b *Tensor, dt DType) *Tensor {
	if dt == Float32 {
		return MatMul32(a, b)
	}
	return MatMul(a, b)
}

// MatMulTransADT is MatMulTransA at the given compute precision.
func MatMulTransADT(a, b *Tensor, dt DType) *Tensor {
	if dt == Float32 {
		return MatMulTransA32(a, b)
	}
	return MatMulTransA(a, b)
}

// MatMulTransBDT is MatMulTransB at the given compute precision.
func MatMulTransBDT(a, b *Tensor, dt DType) *Tensor {
	if dt == Float32 {
		return MatMulTransB32(a, b)
	}
	return MatMulTransB(a, b)
}

// MatMulPDT is MatMulP at the given compute precision.
func MatMulPDT(a, b *Tensor, dt DType) *Tensor {
	if dt == Float32 {
		return MatMulP32(a, b)
	}
	return MatMulP(a, b)
}

// MatMulTransBPDT is MatMulTransBP at the given compute precision.
func MatMulTransBPDT(a, b *Tensor, dt DType) *Tensor {
	if dt == Float32 {
		return MatMulTransBP32(a, b)
	}
	return MatMulTransBP(a, b)
}

func clearF32(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// Range kernels — float32 mirrors of block.go, same tiles and same
// accumulation order rules.

func matMulRangeF32(a, b, out []float32, m, k, n, lo, hi int) {
	if m*k*n >= blockedThreshold && k >= 4 {
		matMulRowsBlockedF32(a, b, out, k, n, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

func matMulRowsBlockedF32(a, b, out []float32, k, n, lo, hi int) {
	// float32 elements are half the size, so the same element-count tile
	// covers twice the matrix — keep the element counts and enjoy the
	// halved cache footprint.
	for kc := 0; kc < k; kc += blockK {
		kmax := kc + blockK
		if kmax > k {
			kmax = k
		}
		for jc := 0; jc < n; jc += blockN {
			jmax := jc + blockN
			if jmax > n {
				jmax = n
			}
			for i := lo; i < hi; i++ {
				arow := a[i*k : (i+1)*k]
				orow := out[i*n+jc : i*n+jmax]
				kk := kc
				for ; kk+4 <= kmax; kk += 4 {
					av0, av1, av2, av3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
					b0 := b[kk*n+jc : kk*n+jmax]
					b1 := b[(kk+1)*n+jc : (kk+1)*n+jmax]
					b2 := b[(kk+2)*n+jc : (kk+2)*n+jmax]
					b3 := b[(kk+3)*n+jc : (kk+3)*n+jmax]
					for j := range orow {
						orow[j] += av0*b0[j] + av1*b1[j] + av2*b2[j] + av3*b3[j]
					}
				}
				for ; kk < kmax; kk++ {
					av := arow[kk]
					brow := b[kk*n+jc : kk*n+jmax]
					for j := range orow {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

func matMulTransBRangeF32(a, b, out []float32, m, k, n, lo, hi int) {
	if m*k*n >= blockedThreshold {
		rows := blockN
		if k > 0 {
			if r := (blockK * blockN) / k; r < rows {
				rows = r
			}
		}
		if rows < 1 {
			rows = 1
		}
		for jc := 0; jc < n; jc += rows {
			jmax := jc + rows
			if jmax > n {
				jmax = n
			}
			for i := lo; i < hi; i++ {
				arow := a[i*k : (i+1)*k]
				orow := out[i*n : (i+1)*n]
				for j := jc; j < jmax; j++ {
					orow[j] = dotUnrolledF32(arow, b[j*k:(j+1)*k])
				}
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = dotUnrolledF32(arow, b[j*k:(j+1)*k])
		}
	}
}

func dotUnrolledF32(x, y []float32) float32 {
	var s0, s1, s2, s3 float32
	kk := 0
	for ; kk+4 <= len(x); kk += 4 {
		s0 += x[kk] * y[kk]
		s1 += x[kk+1] * y[kk+1]
		s2 += x[kk+2] * y[kk+2]
		s3 += x[kk+3] * y[kk+3]
	}
	s := s0 + s1 + s2 + s3
	for ; kk < len(x); kk++ {
		s += x[kk] * y[kk]
	}
	return s
}

func matMulTransAColsF32(a, b, out []float32, k, m, n, lo, hi int) {
	if k*(hi-lo)*n < blockedThreshold {
		for kk := 0; kk < k; kk++ {
			arow := a[kk*m+lo : kk*m+hi]
			brow := b[kk*n : (kk+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out[(lo+i)*n : (lo+i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return
	}
	for ic := lo; ic < hi; ic += blockK {
		imax := ic + blockK
		if imax > hi {
			imax = hi
		}
		for jc := 0; jc < n; jc += blockN {
			jmax := jc + blockN
			if jmax > n {
				jmax = n
			}
			for kk := 0; kk < k; kk++ {
				arow := a[kk*m+ic : kk*m+imax]
				brow := b[kk*n+jc : kk*n+jmax]
				for i, av := range arow {
					if av == 0 {
						continue
					}
					orow := out[(ic+i)*n+jc : (ic+i)*n+jmax]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
}
