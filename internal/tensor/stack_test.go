package tensor

import (
	"testing"

	"github.com/stsl/stsl/internal/mathx"
)

func TestConcatSplitRowsRoundTrip(t *testing.T) {
	r := mathx.NewRNG(1)
	parts := []*Tensor{
		Randn(r, 1, 3, 4, 5),
		Randn(r, 1, 1, 4, 5),
		Randn(r, 1, 6, 4, 5),
	}
	stacked := ConcatRows(parts...)
	if got := stacked.Shape(); got[0] != 10 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("stacked shape %v, want [10 4 5]", got)
	}
	back := SplitRows(stacked, 3, 1, 6)
	for i, p := range parts {
		if !back[i].Equal(p, 0) {
			t.Fatalf("part %d did not round-trip", i)
		}
	}
}

func TestConcatRowsSingle(t *testing.T) {
	r := mathx.NewRNG(2)
	p := Randn(r, 1, 4, 3)
	out := ConcatRows(p)
	if !out.Equal(p, 0) {
		t.Fatal("single-part concat must copy the input")
	}
	// The copy must be isolated from the original.
	out.Set(99, 0, 0)
	if p.At(0, 0) == 99 {
		t.Fatal("ConcatRows aliased its input")
	}
}

// TestConcatSplitRowsParallelPath exercises the goroutine copy path
// (total volume above the parallel threshold) and checks exactness.
func TestConcatSplitRowsParallelPath(t *testing.T) {
	r := mathx.NewRNG(3)
	parts := []*Tensor{
		Randn(r, 1, 150, 1024),
		Randn(r, 1, 90, 1024),
		Randn(r, 1, 120, 1024),
	}
	stacked := ConcatRows(parts...)
	if stacked.Size() < parallelThreshold {
		t.Fatalf("test volume %d below parallel threshold %d", stacked.Size(), parallelThreshold)
	}
	back := SplitRows(stacked, 150, 90, 120)
	for i, p := range parts {
		if !back[i].Equal(p, 0) {
			t.Fatalf("part %d did not round-trip through the parallel path", i)
		}
	}
}

func TestSplitRowsZeroSizePart(t *testing.T) {
	r := mathx.NewRNG(4)
	x := Randn(r, 1, 5, 2)
	parts := SplitRows(x, 2, 0, 3)
	if parts[1].Dim(0) != 0 || parts[0].Dim(0) != 2 || parts[2].Dim(0) != 3 {
		t.Fatalf("split sizes wrong: %v %v %v", parts[0].Shape(), parts[1].Shape(), parts[2].Shape())
	}
}

func TestConcatRowsPanics(t *testing.T) {
	r := mathx.NewRNG(5)
	if msg := panicMessage(func() { ConcatRows() }); msg == "" {
		t.Error("empty ConcatRows must panic")
	}
	a := Randn(r, 1, 2, 3)
	b := Randn(r, 1, 2, 4)
	if msg := panicMessage(func() { ConcatRows(a, b) }); msg == "" {
		t.Error("trailing-shape mismatch must panic")
	}
	c := Randn(r, 1, 6)
	if msg := panicMessage(func() { ConcatRows(a, c) }); msg == "" {
		t.Error("rank mismatch must panic")
	}
}

func TestSplitRowsPanics(t *testing.T) {
	r := mathx.NewRNG(6)
	x := Randn(r, 1, 4, 2)
	if msg := panicMessage(func() { SplitRows(x, 3, 2) }); msg == "" {
		t.Error("size-sum mismatch must panic")
	}
	if msg := panicMessage(func() { SplitRows(x, 5, -1) }); msg == "" {
		t.Error("negative size must panic")
	}
}
