package tensor

import (
	"fmt"
	"sync"
)

// ConcatRows concatenates tensors along axis 0: parts of shape
// (n_i, d1, …, dk) become one tensor of shape (Σn_i, d1, …, dk). All
// parts must share rank and trailing dimensions. It is the stacking half
// of the server's micro-batch coalescing — per-client activation batches
// become one batch-axis-stacked operand for a single forward pass.
// Large concatenations copy the parts in parallel, one goroutine each,
// reusing the threshold the parallel matmul kernels fan out at.
func ConcatRows(parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: ConcatRows needs at least one tensor")
	}
	first := parts[0]
	if first.Dims() == 0 {
		panic("tensor: ConcatRows needs rank >= 1 operands")
	}
	rows := 0
	for i, p := range parts {
		if !SameTrailing(first, p) {
			panic(fmt.Sprintf("tensor: ConcatRows trailing-shape mismatch %v vs %v at part %d",
				first.shape, p.shape, i))
		}
		rows += p.shape[0]
	}
	shape := append([]int(nil), first.shape...)
	shape[0] = rows
	out := New(shape...)
	if len(out.data) < parallelThreshold || len(parts) == 1 {
		off := 0
		for _, p := range parts {
			off += copy(out.data[off:], p.data)
		}
		return out
	}
	var wg sync.WaitGroup
	off := 0
	for _, p := range parts {
		wg.Add(1)
		go func(dst []float64, src []float64) {
			defer wg.Done()
			copy(dst, src)
		}(out.data[off:off+len(p.data)], p.data)
		off += len(p.data)
	}
	wg.Wait()
	return out
}

// SplitRows splits t along axis 0 into len(sizes) tensors where part i
// has sizes[i] rows and t's trailing dimensions — the inverse of
// ConcatRows, used to scatter a batched gradient back into per-client
// slices. The sizes must be non-negative and sum to t.Dim(0). Large
// splits copy the parts in parallel like ConcatRows.
func SplitRows(t *Tensor, sizes ...int) []*Tensor {
	if t.Dims() == 0 {
		panic("tensor: SplitRows needs rank >= 1 input")
	}
	total := 0
	for _, n := range sizes {
		if n < 0 {
			panic(fmt.Sprintf("tensor: SplitRows negative size in %v", sizes))
		}
		total += n
	}
	if total != t.shape[0] {
		panic(fmt.Sprintf("tensor: SplitRows sizes %v sum to %d, want %d rows", sizes, total, t.shape[0]))
	}
	rowVol := 1
	for _, d := range t.shape[1:] {
		rowVol *= d
	}
	out := make([]*Tensor, len(sizes))
	parallel := len(t.data) >= parallelThreshold && len(sizes) > 1
	var wg sync.WaitGroup
	off := 0
	for i, n := range sizes {
		shape := append([]int(nil), t.shape...)
		shape[0] = n
		part := New(shape...)
		src := t.data[off : off+n*rowVol]
		off += n * rowVol
		out[i] = part
		if parallel {
			wg.Add(1)
			go func(dst, src []float64) {
				defer wg.Done()
				copy(dst, src)
			}(part.data, src)
		} else {
			copy(part.data, src)
		}
	}
	wg.Wait()
	return out
}

// SameTrailing reports whether a and b share rank and every dimension
// except axis 0 — the batch-compatibility test ConcatRows enforces,
// exported so callers can pre-validate and return an error instead of
// hitting the panic.
func SameTrailing(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) || len(a.shape) == 0 {
		return false
	}
	for i := 1; i < len(a.shape); i++ {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}
