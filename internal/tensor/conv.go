package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution or pooling window
// applied to an input of C channels and H×W spatial extent.
type ConvGeom struct {
	Channels, Height, Width int // input geometry
	KernelH, KernelW        int
	StrideH, StrideW        int
	PadH, PadW              int
}

// OutHeight returns the spatial height of the operation's output.
func (g ConvGeom) OutHeight() int {
	return (g.Height+2*g.PadH-g.KernelH)/g.StrideH + 1
}

// OutWidth returns the spatial width of the operation's output.
func (g ConvGeom) OutWidth() int {
	return (g.Width+2*g.PadW-g.KernelW)/g.StrideW + 1
}

// Validate reports whether the geometry is internally consistent.
func (g ConvGeom) Validate() error {
	switch {
	case g.Channels <= 0 || g.Height <= 0 || g.Width <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive input dims %+v", g)
	case g.KernelH <= 0 || g.KernelW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive kernel %+v", g)
	case g.StrideH <= 0 || g.StrideW <= 0:
		return fmt.Errorf("tensor: conv geometry has non-positive stride %+v", g)
	case g.PadH < 0 || g.PadW < 0:
		return fmt.Errorf("tensor: conv geometry has negative padding %+v", g)
	case g.OutHeight() <= 0 || g.OutWidth() <= 0:
		return fmt.Errorf("tensor: conv geometry yields empty output %+v", g)
	}
	return nil
}

// Im2Col lowers a batch of images x with shape (N, C, H, W) into a matrix
// of shape (N*outH*outW, C*kH*kW): each row is one receptive field. With the
// kernel flattened to (outC, C*kH*kW), convolution becomes one MatMulTransB
// per batch.
//
// Out-of-bounds (padding) positions contribute zeros.
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Im2Col requires rank-4 input, got %v", x.shape))
	}
	n := x.shape[0]
	if x.shape[1] != g.Channels || x.shape[2] != g.Height || x.shape[3] != g.Width {
		panic(fmt.Sprintf("tensor: Im2Col input %v does not match geometry %+v", x.shape, g))
	}
	outH, outW := g.OutHeight(), g.OutWidth()
	cols := New(n*outH*outW, g.Channels*g.KernelH*g.KernelW)
	rowLen := g.Channels * g.KernelH * g.KernelW

	for img := 0; img < n; img++ {
		imgBase := img * g.Channels * g.Height * g.Width
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*g.StrideH - g.PadH
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*g.StrideW - g.PadW
				row := cols.data[((img*outH+oy)*outW+ox)*rowLen:][:rowLen]
				ri := 0
				for c := 0; c < g.Channels; c++ {
					chBase := imgBase + c*g.Height*g.Width
					for ky := 0; ky < g.KernelH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= g.Height {
							ri += g.KernelW
							continue
						}
						rowBase := chBase + iy*g.Width
						for kx := 0; kx < g.KernelW; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < g.Width {
								row[ri] = x.data[rowBase+ix]
							}
							ri++
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters a (N*outH*outW, C*kH*kW)
// matrix of per-receptive-field gradients back into an image gradient of
// shape (N, C, H, W), accumulating where receptive fields overlap.
func Col2Im(cols *Tensor, n int, g ConvGeom) *Tensor {
	outH, outW := g.OutHeight(), g.OutWidth()
	rowLen := g.Channels * g.KernelH * g.KernelW
	if cols.Dims() != 2 || cols.shape[0] != n*outH*outW || cols.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2Im input %v does not match n=%d geometry %+v", cols.shape, n, g))
	}
	x := New(n, g.Channels, g.Height, g.Width)
	for img := 0; img < n; img++ {
		imgBase := img * g.Channels * g.Height * g.Width
		for oy := 0; oy < outH; oy++ {
			iy0 := oy*g.StrideH - g.PadH
			for ox := 0; ox < outW; ox++ {
				ix0 := ox*g.StrideW - g.PadW
				row := cols.data[((img*outH+oy)*outW+ox)*rowLen:][:rowLen]
				ri := 0
				for c := 0; c < g.Channels; c++ {
					chBase := imgBase + c*g.Height*g.Width
					for ky := 0; ky < g.KernelH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= g.Height {
							ri += g.KernelW
							continue
						}
						rowBase := chBase + iy*g.Width
						for kx := 0; kx < g.KernelW; kx++ {
							ix := ix0 + kx
							if ix >= 0 && ix < g.Width {
								x.data[rowBase+ix] += row[ri]
							}
							ri++
						}
					}
				}
			}
		}
	}
	return x
}

// Pad2D zero-pads the two trailing spatial dimensions of an (N, C, H, W)
// tensor by padH rows on top/bottom and padW columns on left/right.
func Pad2D(x *Tensor, padH, padW int) *Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("tensor: Pad2D requires rank-4 input, got %v", x.shape))
	}
	if padH < 0 || padW < 0 {
		panic("tensor: Pad2D negative padding")
	}
	if padH == 0 && padW == 0 {
		return x.Clone()
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	out := New(n, c, h+2*padH, w+2*padW)
	ow := w + 2*padW
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			srcBase := (img*c + ch) * h * w
			dstBase := (img*c+ch)*(h+2*padH)*ow + padH*ow + padW
			for y := 0; y < h; y++ {
				copy(out.data[dstBase+y*ow:dstBase+y*ow+w], x.data[srcBase+y*w:srcBase+(y+1)*w])
			}
		}
	}
	return out
}
