// Package tensor implements a small dense N-dimensional array of float64
// values with the operations required to train convolutional neural
// networks: elementwise arithmetic, matrix multiplication, transposition,
// padding, and the im2col/col2im transforms that turn convolution into
// matrix multiplication.
//
// Tensors are row-major and own their backing slice. Operations either
// return fresh tensors or, where documented, mutate the receiver in place.
// float64 was chosen over float32 so that analytic gradients can be checked
// against central finite differences to tight tolerances; the cost of the
// choice is measured in the benchmark suite.
package tensor

import (
	"fmt"
	"math"
	"strings"

	"github.com/stsl/stsl/internal/mathx"
)

// Tensor is a dense row-major N-dimensional array. The zero value is an
// empty tensor; use New or one of the constructors.
type Tensor struct {
	shape []int
	// stride[i] is the linear distance between consecutive indices along
	// dimension i.
	stride []int
	data   []float64
	// dtype tags the wire/compute precision (see dtype.go). Storage is
	// always float64; the zero value Float64 preserves legacy behaviour.
	dtype DType
}

// New returns a zero-filled tensor with the given shape. A call with no
// dimensions returns a scalar tensor of one element. It panics if any
// dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float64, n),
	}
	t.stride = strides(t.shape)
	return t
}

// FromSlice returns a tensor with the given shape whose backing data is a
// copy of data. It panics when len(data) does not match the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := New(shape...)
	if len(data) != len(t.data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)",
			len(data), shape, len(t.data)))
	}
	copy(t.data, data)
	return t
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Rand returns a tensor with elements drawn uniformly from [lo, hi).
func Rand(r *mathx.RNG, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = r.Range(lo, hi)
	}
	return t
}

// Randn returns a tensor with elements drawn from N(0, stddev²).
func Randn(r *mathx.RNG, stddev float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = r.Norm() * stddev
	}
	return t
}

func strides(shape []int) []int {
	s := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		s[i] = acc
		acc *= shape[i]
	}
	return s
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor; callers
// that need isolation must copy. The slice is row-major.
func (t *Tensor) Data() []float64 { return t.data }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

// offset converts a multi-index to a linear offset, panicking on
// out-of-range indices.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off += x * t.stride[i]
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

// Clone returns a deep copy of t, preserving its dtype tag.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	c.dtype = t.dtype
	return c
}

// CopyFrom copies o's data into t. Shapes must match exactly.
func (t *Tensor) CopyFrom(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, o.shape))
	}
	copy(t.data, o.data)
}

// Reshape returns a view-copy of t with a new shape of equal volume. One
// dimension may be -1, in which case it is inferred. The returned tensor
// shares no storage with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	resolved := append([]int(nil), shape...)
	infer := -1
	vol := 1
	for i, d := range resolved {
		switch {
		case d == -1:
			if infer != -1 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		case d < 0:
			panic(fmt.Sprintf("tensor: Reshape negative dimension %d", d))
		default:
			vol *= d
		}
	}
	if infer != -1 {
		if vol == 0 || len(t.data)%vol != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, shape))
		}
		resolved[infer] = len(t.data) / vol
		vol *= resolved[infer]
	}
	if vol != len(t.data) {
		panic(fmt.Sprintf("tensor: Reshape volume mismatch %v to %v", t.shape, shape))
	}
	out := New(resolved...)
	copy(out.data, t.data)
	return out
}

// Zero sets every element of t to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element of t to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	const maxElems = 32
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= maxElems {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g … %g] (%d elems)", t.data[0], t.data[1], t.data[len(t.data)-1], len(t.data))
	}
	return b.String()
}

// Equal reports whether t and o have the same shape and elementwise values
// within tol.
func (t *Tensor) Equal(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}
