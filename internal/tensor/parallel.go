package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-adds before MatMulP
// fans work out to goroutines; below it the serial kernel wins.
const parallelThreshold = 1 << 18

// MatMulP returns the matrix product of two rank-2 tensors like MatMul,
// but splits the output rows across GOMAXPROCS goroutines for large
// operands. Each worker writes a disjoint row range, so the result is
// bitwise identical to the serial kernel regardless of scheduling.
func MatMulP(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		// Validate before reading shape[1]: a rank-0/1 operand must reach
		// the serial kernel's descriptive panic, not index out of range.
		return MatMul(a, b)
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if k != b.shape[0] || m*k*n < parallelThreshold {
		// Delegate to the serial kernel: its validation panics for the
		// mismatch, its tighter loop for the small case.
		return MatMul(a, b)
	}
	out := New(m, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Same range kernel (and same full-size dispatch decision) as
			// the serial path, so results match it bitwise.
			matMulRange(a.data, b.data, out.data, m, k, n, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// MatMulTransBP is the parallel variant of MatMulTransB (a·bᵀ), used by
// the convolution forward pass where the im2col matrix can be very tall.
// Output rows are partitioned across workers; results are bitwise equal
// to the serial kernel.
func MatMulTransBP(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		// Same validation-first ordering as MatMulP.
		return MatMulTransB(a, b)
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if k != b.shape[1] || m*k*n < parallelThreshold {
		return MatMulTransB(a, b)
	}
	out := New(m, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			// Shared range kernel — see MatMulP.
			matMulTransBRange(a.data, b.data, out.data, m, k, n, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}
