package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the minimum number of multiply-adds before MatMulP
// fans work out to goroutines; below it the serial kernel wins.
const parallelThreshold = 1 << 18

// MatMulP returns the matrix product of two rank-2 tensors like MatMul,
// but splits the output rows across GOMAXPROCS goroutines for large
// operands. Each worker writes a disjoint row range, so the result is
// bitwise identical to the serial kernel regardless of scheduling.
func MatMulP(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		// Validate before reading shape[1]: a rank-0/1 operand must reach
		// the serial kernel's descriptive panic, not index out of range.
		return MatMul(a, b)
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if k != b.shape[0] || m*k*n < parallelThreshold {
		// Delegate to the serial kernel: its validation panics for the
		// mismatch, its tighter loop for the small case.
		return MatMul(a, b)
	}
	out := New(m, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				arow := a.data[i*k : (i+1)*k]
				orow := out.data[i*n : (i+1)*n]
				for kk := 0; kk < k; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := b.data[kk*n : (kk+1)*n]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// MatMulTransBP is the parallel variant of MatMulTransB (a·bᵀ), used by
// the convolution forward pass where the im2col matrix can be very tall.
// Output rows are partitioned across workers; results are bitwise equal
// to the serial kernel.
func MatMulTransBP(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		// Same validation-first ordering as MatMulP.
		return MatMulTransB(a, b)
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if k != b.shape[1] || m*k*n < parallelThreshold {
		return MatMulTransB(a, b)
	}
	out := New(m, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				arow := a.data[i*k : (i+1)*k]
				orow := out.data[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					brow := b.data[j*k : (j+1)*k]
					s := 0.0
					for kk, av := range arow {
						s += av * brow[kk]
					}
					orow[j] = s
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
