package tensor

import (
	"testing"
	"testing/quick"

	"github.com/stsl/stsl/internal/mathx"
)

func TestConvGeomOutputDims(t *testing.T) {
	cases := []struct {
		name       string
		g          ConvGeom
		outH, outW int
	}{
		{
			name: "same-pad 3x3 stride 1",
			g:    ConvGeom{Channels: 3, Height: 32, Width: 32, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
			outH: 32, outW: 32,
		},
		{
			name: "2x2 pool stride 2",
			g:    ConvGeom{Channels: 16, Height: 32, Width: 32, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2},
			outH: 16, outW: 16,
		},
		{
			name: "valid 5x5",
			g:    ConvGeom{Channels: 1, Height: 28, Width: 28, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1},
			outH: 24, outW: 24,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if got := tc.g.OutHeight(); got != tc.outH {
				t.Fatalf("OutHeight = %d, want %d", got, tc.outH)
			}
			if got := tc.g.OutWidth(); got != tc.outW {
				t.Fatalf("OutWidth = %d, want %d", got, tc.outW)
			}
		})
	}
}

func TestConvGeomValidateRejects(t *testing.T) {
	bad := []ConvGeom{
		{},
		{Channels: 1, Height: 4, Width: 4, KernelH: 0, KernelW: 3, StrideH: 1, StrideW: 1},
		{Channels: 1, Height: 4, Width: 4, KernelH: 3, KernelW: 3, StrideH: 0, StrideW: 1},
		{Channels: 1, Height: 4, Width: 4, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: -1},
		{Channels: 1, Height: 2, Width: 2, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("case %d: Validate accepted invalid geometry %+v", i, g)
		}
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// A 1x1 kernel with stride 1 and no padding: im2col output rows are
	// exactly the input pixels, channel-interleaved per position.
	x := FromSlice([]float64{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	g := ConvGeom{Channels: 1, Height: 2, Width: 2, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}
	cols := Im2Col(x, g)
	want := FromSlice([]float64{1, 2, 3, 4}, 4, 1)
	if !cols.Equal(want, 0) {
		t.Fatalf("Im2Col = %v, want %v", cols, want)
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 3x3 input, 2x2 kernel, stride 1, no pad → 4 receptive fields.
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	g := ConvGeom{Channels: 1, Height: 3, Width: 3, KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1}
	cols := Im2Col(x, g)
	want := FromSlice([]float64{
		1, 2, 4, 5,
		2, 3, 5, 6,
		4, 5, 7, 8,
		5, 6, 8, 9,
	}, 4, 4)
	if !cols.Equal(want, 0) {
		t.Fatalf("Im2Col = %v, want %v", cols, want)
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	x := FromSlice([]float64{5}, 1, 1, 1, 1)
	g := ConvGeom{Channels: 1, Height: 1, Width: 1, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	cols := Im2Col(x, g)
	// One receptive field; centre element is the pixel, rest zeros.
	if cols.Size() != 9 {
		t.Fatalf("cols size = %d", cols.Size())
	}
	for i, v := range cols.Data() {
		want := 0.0
		if i == 4 {
			want = 5
		}
		if v != want {
			t.Fatalf("cols[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestCol2ImAdjointProperty(t *testing.T) {
	// The defining property of the adjoint: <Im2Col(x), y> == <x, Col2Im(y)>
	// for all x, y. Verified over random tensors and geometries.
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		g := ConvGeom{
			Channels: 1 + r.Intn(3),
			Height:   3 + r.Intn(6),
			Width:    3 + r.Intn(6),
			KernelH:  1 + r.Intn(3),
			KernelW:  1 + r.Intn(3),
			StrideH:  1 + r.Intn(2),
			StrideW:  1 + r.Intn(2),
			PadH:     r.Intn(2),
			PadW:     r.Intn(2),
		}
		if g.Validate() != nil {
			return true
		}
		n := 1 + r.Intn(2)
		x := Randn(r, 1, n, g.Channels, g.Height, g.Width)
		cols := Im2Col(x, g)
		y := Randn(r, 1, cols.Shape()...)
		lhs := cols.Dot(y)
		rhs := x.Reshape(-1).Dot(Col2Im(y, n, g).Reshape(-1))
		return mathx.AlmostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPad2D(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	p := Pad2D(x, 1, 1)
	if got := p.Shape(); got[2] != 4 || got[3] != 4 {
		t.Fatalf("padded shape = %v", got)
	}
	if p.At(0, 0, 0, 0) != 0 || p.At(0, 0, 3, 3) != 0 {
		t.Fatal("padding not zero")
	}
	if p.At(0, 0, 1, 1) != 1 || p.At(0, 0, 2, 2) != 4 {
		t.Fatal("interior values misplaced")
	}
	if got := p.Sum(); got != x.Sum() {
		t.Fatalf("padding changed sum: %v vs %v", got, x.Sum())
	}
}

func TestPad2DZeroIsClone(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	p := Pad2D(x, 0, 0)
	if !p.Equal(x, 0) {
		t.Fatal("Pad2D(0,0) changed values")
	}
	p.Set(9, 0, 0, 0, 0)
	if x.At(0, 0, 0, 0) == 9 {
		t.Fatal("Pad2D(0,0) aliases input")
	}
}
