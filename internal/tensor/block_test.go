package tensor

import (
	"math"
	"testing"

	"github.com/stsl/stsl/internal/mathx"
)

// naiveMatMul is the pre-blocking reference kernel, kept here so the
// tiled implementations are always checked against first principles.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += a.data[i*k+kk] * b.data[kk*n+j]
			}
			out.data[i*n+j] = s
		}
	}
	return out
}

func maxAbsDiff(a, b *Tensor) float64 {
	d := 0.0
	for i, v := range a.data {
		if x := math.Abs(v - b.data[i]); x > d {
			d = x
		}
	}
	return d
}

// TestBlockedMatchesNaive sweeps shapes that straddle the blocking
// threshold, including non-tile-multiple and degenerate dimensions, for
// all three product variants.
func TestBlockedMatchesNaive(t *testing.T) {
	r := mathx.NewRNG(7)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{3, 5, 7},      // tiny: naive path
		{64, 64, 64},   // exactly the threshold volume
		{97, 130, 301}, // blocked, nothing tile-aligned
		{65, 257, 66},  // blocked, one past tile sizes
		{128, 3, 1024}, // k < unroll width
		{2, 4096, 33},  // long-k, few rows
		{256, 64, 1},   // single output column
	}
	for _, s := range shapes {
		a := Rand(r, -1, 1, s.m, s.k)
		b := Rand(r, -1, 1, s.k, s.n)
		want := naiveMatMul(a, b)
		// Tolerance scales with the dot-product length: reordered
		// accumulation differs from naive by O(k·eps) per element.
		tol := float64(s.k) * 1e-14
		if got := MatMul(a, b); maxAbsDiff(got, want) > tol {
			t.Errorf("MatMul %dx%dx%d: max diff %g > %g", s.m, s.k, s.n, maxAbsDiff(got, want), tol)
		}
		// aᵀ·b through a pre-transposed a must agree with a·b.
		if got := MatMulTransA(a.Transpose(), b); maxAbsDiff(got, want) > tol {
			t.Errorf("MatMulTransA %dx%dx%d: max diff %g > %g", s.m, s.k, s.n, maxAbsDiff(got, want), tol)
		}
		// a·(bᵀ)ᵀ through MatMulTransB must agree with a·b.
		if got := MatMulTransB(a, b.Transpose()); maxAbsDiff(got, want) > tol {
			t.Errorf("MatMulTransB %dx%dx%d: max diff %g > %g", s.m, s.k, s.n, maxAbsDiff(got, want), tol)
		}
	}
}

// TestMatMul32Parity: the float32 kernels agree with the float64 result
// to single-precision accuracy, and the parallel f32 wrappers are
// bitwise identical to their serial counterparts.
func TestMatMul32Parity(t *testing.T) {
	r := mathx.NewRNG(11)
	for _, s := range []struct{ m, k, n int }{{5, 9, 4}, {96, 128, 80}} {
		a := Rand(r, -1, 1, s.m, s.k)
		b := Rand(r, -1, 1, s.k, s.n)
		want := MatMul(a, b)
		got := MatMul32(a, b)
		if got.DType() != Float32 {
			t.Fatalf("MatMul32 output dtype %v", got.DType())
		}
		tol := float64(s.k) * 1e-6
		if maxAbsDiff(got, want) > tol {
			t.Errorf("MatMul32 %v: max diff %g > %g", s, maxAbsDiff(got, want), tol)
		}
		if !MatMulP32(a, b).Equal(got, 0) {
			t.Error("MatMulP32 differs from MatMul32 (must be bitwise equal)")
		}

		wantTA := MatMulTransA(a.Transpose(), b)
		if g := MatMulTransA32(a.Transpose(), b); maxAbsDiff(g, wantTA) > tol {
			t.Errorf("MatMulTransA32 %v: max diff %g > %g", s, maxAbsDiff(g, wantTA), tol)
		}
		gotTB := MatMulTransB32(a, b.Transpose())
		if maxAbsDiff(gotTB, want) > tol {
			t.Errorf("MatMulTransB32 %v: max diff %g > %g", s, maxAbsDiff(gotTB, want), tol)
		}
		if !MatMulTransBP32(a, b.Transpose()).Equal(gotTB, 0) {
			t.Error("MatMulTransBP32 differs from MatMulTransB32 (must be bitwise equal)")
		}
	}
}

// TestDTDispatch: the DT helpers route exactly to the kernels they name.
func TestDTDispatch(t *testing.T) {
	r := mathx.NewRNG(3)
	a := Rand(r, -1, 1, 6, 8)
	b := Rand(r, -1, 1, 8, 5)
	if !MatMulDT(a, b, Float64).Equal(MatMul(a, b), 0) {
		t.Error("MatMulDT(Float64) != MatMul")
	}
	if !MatMulDT(a, b, Float32).Equal(MatMul32(a, b), 0) {
		t.Error("MatMulDT(Float32) != MatMul32")
	}
	at := a.Transpose() // TransA wants its first operand k×m
	if !MatMulTransADT(at, b, Float64).Equal(MatMulTransA(at, b), 0) {
		t.Error("MatMulTransADT(Float64) != MatMulTransA")
	}
	bt := b.Transpose()
	if !MatMulTransBDT(a, bt, Float32).Equal(MatMulTransB32(a, bt), 0) {
		t.Error("MatMulTransBDT(Float32) != MatMulTransB32")
	}
	if !MatMulPDT(a, b, Float32).Equal(MatMulP32(a, b), 0) {
		t.Error("MatMulPDT(Float32) != MatMulP32")
	}
	if !MatMulTransBPDT(a, bt, Float64).Equal(MatMulTransBP(a, bt), 0) {
		t.Error("MatMulTransBPDT(Float64) != MatMulTransBP")
	}
}

// TestMatMul32PanicContracts: the float32 kernels keep the same panic
// messages as the float64 originals.
func TestMatMul32PanicContracts(t *testing.T) {
	bad := New(3)
	a := New(2, 3)
	b := New(4, 5)
	if got, want := panicMessage(func() { MatMul32(bad, a) }), panicMessage(func() { MatMul(bad, a) }); got != want || want == "" {
		t.Errorf("rank panic %q, want %q", got, want)
	}
	if got, want := panicMessage(func() { MatMul32(a, b) }), panicMessage(func() { MatMul(a, b) }); got != want || want == "" {
		t.Errorf("mismatch panic %q, want %q", got, want)
	}
}

// TestMatMul32SteadyStateAllocs: after warm-up the f32 kernels allocate
// only the output tensor (3 allocs: struct, shape+stride via New, data).
func TestMatMul32SteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; alloc counts are nondeterministic")
	}
	a := New(16, 32)
	b := New(32, 8)
	MatMul32(a, b) // warm the scratch pool
	baseline := testing.AllocsPerRun(50, func() { MatMul(a, b) })
	withConv := testing.AllocsPerRun(50, func() { MatMul32(a, b) })
	if withConv > baseline {
		t.Errorf("MatMul32 allocs/op %v exceeds float64 kernel's %v — scratch pooling broken", withConv, baseline)
	}
}

// BenchmarkMatMul pins the acceptance numbers: blocked f64 vs the naive
// reference, and f32 ≥1.5× naive f64, all at 256×256.
func BenchmarkMatMul(b *testing.B) {
	r := mathx.NewRNG(1)
	const dim = 256
	x := Rand(r, -1, 1, dim, dim)
	y := Rand(r, -1, 1, dim, dim)
	b.Run("naive-f64-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			naiveMatMul(x, y)
		}
	})
	b.Run("blocked-f64-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatMul(x, y)
		}
	})
	b.Run("blocked-f32-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatMul32(x, y)
		}
	})
	b.Run("transB-f64-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatMulTransB(x, y)
		}
	})
	b.Run("transB-f32-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			MatMulTransB32(x, y)
		}
	})
}
