package tensor

import "fmt"

// DType identifies the element precision a tensor carries on the wire
// and through the matmul compute path. In-memory storage is always
// []float64 — the interchange representation every op understands — so
// a DType is a *tag*: it selects the TSL2 float32 wire encoding (half
// the bytes, half the memory bandwidth) and the float32 kernel set in
// the deployments that opt in, while leaving the float64 default
// bit-for-bit unchanged.
//
// The zero value is Float64, so tensors constructed anywhere in the
// codebase behave exactly as before the tag existed.
type DType uint8

const (
	// Float64 is the default full-precision element type (TSL1 wire
	// format, float64 kernels).
	Float64 DType = 0
	// Float32 is the half-bandwidth element type (TSL2 wire format,
	// float32 kernels). Values round through IEEE-754 single precision
	// at every encode and every float32 kernel call.
	Float32 DType = 1
)

// Size returns the wire size of one element in bytes.
func (d DType) Size() int {
	if d == Float32 {
		return 4
	}
	return 8
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	default:
		return fmt.Sprintf("DType(%d)", uint8(d))
	}
}

// ParseDType converts a config/flag string to a DType. The empty string
// is Float64, keeping "unset" backward compatible everywhere a dtype is
// plumbed through.
func ParseDType(s string) (DType, error) {
	switch s {
	case "", "float64", "f64":
		return Float64, nil
	case "float32", "f32":
		return Float32, nil
	default:
		return Float64, fmt.Errorf("tensor: unknown dtype %q (want float64 or float32)", s)
	}
}

// DType returns the tensor's precision tag.
func (t *Tensor) DType() DType { return t.dtype }

// SetDType tags the tensor with a precision and returns t. It does not
// touch the stored values: rounding to float32 happens at encode time
// and inside the float32 kernels, not here.
func (t *Tensor) SetDType(d DType) *Tensor {
	t.dtype = d
	return t
}
