package tensor

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/stsl/stsl/internal/mathx"
)

func TestNewShapesAndSize(t *testing.T) {
	cases := []struct {
		shape []int
		size  int
	}{
		{nil, 1}, // scalar
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{2, 3, 4, 5}, 120},
		{[]int{0, 7}, 0},
	}
	for _, tc := range cases {
		tt := New(tc.shape...)
		if tt.Size() != tc.size {
			t.Fatalf("New(%v).Size() = %d, want %d", tc.shape, tt.Size(), tc.size)
		}
		if tt.Dims() != len(tc.shape) {
			t.Fatalf("New(%v).Dims() = %d", tc.shape, tt.Dims())
		}
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3, 4)
	v := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				tt.Set(v, i, j, k)
				v++
			}
		}
	}
	// Row-major order means data should be 0..23 in sequence.
	for i, got := range tt.Data() {
		if got != float64(i) {
			t.Fatalf("data[%d] = %v, want %d", i, got, i)
		}
	}
	if got := tt.At(1, 2, 3); got != 23 {
		t.Fatalf("At(1,2,3) = %v, want 23", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	tt.At(2, 0)
}

func TestFromSliceValidation(t *testing.T) {
	got := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if got.At(1, 1) != 4 {
		t.Fatalf("At(1,1) = %v", got.At(1, 1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshape(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	if b.At(2, 1) != 6 {
		t.Fatalf("reshape At(2,1) = %v", b.At(2, 1))
	}
	c := a.Reshape(-1)
	if c.Dims() != 1 || c.Dim(0) != 6 {
		t.Fatalf("Reshape(-1) shape = %v", c.Shape())
	}
	d := a.Reshape(2, -1)
	if d.Dim(1) != 3 {
		t.Fatalf("Reshape(2,-1) shape = %v", d.Shape())
	}
}

func TestReshapePanicsOnVolumeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad Reshape did not panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)

	if got := a.Add(b); !got.Equal(FromSlice([]float64{11, 22, 33, 44}, 2, 2), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); !got.Equal(FromSlice([]float64{9, 18, 27, 36}, 2, 2), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Mul(b); !got.Equal(FromSlice([]float64{10, 40, 90, 160}, 2, 2), 0) {
		t.Fatalf("Mul = %v", got)
	}
	if got := a.Scale(2); !got.Equal(FromSlice([]float64{2, 4, 6, 8}, 2, 2), 0) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Sum(); got != 10 {
		t.Fatalf("Sum = %v", got)
	}
	if got := a.Mean(); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := a.Dot(b); got != 10+40+90+160 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestAddPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Add did not panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestAXPY(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	x := FromSlice([]float64{10, 10}, 2)
	a.AXPY(0.5, x)
	if !a.Equal(FromSlice([]float64{6, 7}, 2), 0) {
		t.Fatalf("AXPY = %v", a)
	}
}

func TestNorms(t *testing.T) {
	a := FromSlice([]float64{3, -4}, 2)
	if got := a.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := mathx.NewRNG(1)
	a := Randn(r, 1, 4, 4)
	eye := New(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(1, i, i)
	}
	if got := MatMul(a, eye); !got.Equal(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if got := MatMul(eye, a); !got.Equal(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	r := mathx.NewRNG(2)
	a := Randn(r, 1, 5, 7)
	b := Randn(r, 1, 7, 3)
	want := MatMul(a, b)

	gotA := MatMulTransA(a.Transpose(), b)
	if !gotA.Equal(want, 1e-10) {
		t.Fatal("MatMulTransA(aᵀ, b) != a·b")
	}
	gotB := MatMulTransB(a, b.Transpose())
	if !gotB.Equal(want, 1e-10) {
		t.Fatal("MatMulTransB(a, bᵀ) != a·b")
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched MatMul did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := a.Transpose()
	if got := at.Shape(); got[0] != 3 || got[1] != 2 {
		t.Fatalf("transpose shape = %v", got)
	}
	if at.At(2, 1) != a.At(1, 2) {
		t.Fatal("transpose element mismatch")
	}
	if !a.Transpose().Transpose().Equal(a, 0) {
		t.Fatal("double transpose != identity")
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	m := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float64{10, 20, 30}, 3)
	m.AddRowVector(v)
	want := FromSlice([]float64{11, 22, 33, 14, 25, 36}, 2, 3)
	if !m.Equal(want, 0) {
		t.Fatalf("AddRowVector = %v", m)
	}
	sums := m.SumRows()
	if !sums.Equal(FromSlice([]float64{25, 47, 69}, 3), 1e-12) {
		t.Fatalf("SumRows = %v", sums)
	}
}

func TestMatMulQuickAssociativity(t *testing.T) {
	// Property: (A·B)·C == A·(B·C) for random small matrices.
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		m, k, n, p := 2+r.Intn(4), 2+r.Intn(4), 2+r.Intn(4), 2+r.Intn(4)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		c := Randn(r, 1, n, p)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulQuickDistributivity(t *testing.T) {
	// Property: A·(B+C) == A·B + A·C.
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		m, k, n := 2+r.Intn(4), 2+r.Intn(4), 2+r.Intn(4)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		c := Randn(r, 1, k, n)
		left := MatMul(a, b.Add(c))
		right := MatMul(a, b).Add(MatMul(a, c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	r := mathx.NewRNG(3)
	for _, shape := range [][]int{{1}, {5}, {2, 3}, {2, 3, 4}, {1, 3, 32, 32}} {
		orig := Randn(r, 1, shape...)
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		var back Tensor
		if _, err := back.ReadFrom(&buf); err != nil {
			t.Fatalf("ReadFrom: %v", err)
		}
		if !orig.Equal(&back, 0) {
			t.Fatalf("round trip mismatch for shape %v", shape)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	var tt Tensor
	if _, err := tt.ReadFrom(bytes.NewReader([]byte("not a tensor at all"))); err == nil {
		t.Fatal("decoding garbage succeeded")
	}
	// Truncated valid prefix.
	var buf bytes.Buffer
	orig := Full(1, 4, 4)
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := tt.ReadFrom(bytes.NewReader(trunc)); err == nil {
		t.Fatal("decoding truncated stream succeeded")
	}
}

func TestCodecQuickRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		rank := 1 + r.Intn(4)
		shape := make([]int, rank)
		for i := range shape {
			shape[i] = 1 + r.Intn(5)
		}
		orig := Randn(r, 2, shape...)
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			return false
		}
		var back Tensor
		if _, err := back.ReadFrom(&buf); err != nil {
			return false
		}
		return orig.Equal(&back, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
