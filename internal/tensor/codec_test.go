package tensor

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// goldenTSL1 builds the byte-exact TSL1 frame for a 2×2 [1 2 3 4] tensor.
func goldenTSL1() []byte {
	var b bytes.Buffer
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, 0x54534c31)
	b.Write(hdr)
	for _, v := range []uint32{2, 2, 2} { // rank, then shape
		binary.LittleEndian.PutUint32(hdr, v)
		b.Write(hdr)
	}
	w := make([]byte, 8)
	for _, v := range []float64{1, 2, 3, 4} {
		binary.LittleEndian.PutUint64(w, math.Float64bits(v))
		b.Write(w)
	}
	return b.Bytes()
}

// goldenTSL2 builds the byte-exact TSL2 float32 frame for the same tensor.
func goldenTSL2() []byte {
	var b bytes.Buffer
	hdr := make([]byte, 4)
	binary.LittleEndian.PutUint32(hdr, 0x54534c32)
	b.Write(hdr)
	b.WriteByte(1) // dtype = float32
	for _, v := range []uint32{2, 2, 2} {
		binary.LittleEndian.PutUint32(hdr, v)
		b.Write(hdr)
	}
	for _, v := range []float32{1, 2, 3, 4} {
		binary.LittleEndian.PutUint32(hdr, math.Float32bits(v))
		b.Write(hdr)
	}
	return b.Bytes()
}

// TestGoldenBytes pins both wire formats: TSL1 must stay byte-for-byte
// what every pre-dtype release emitted, TSL2 is pinned from birth.
func TestGoldenBytes(t *testing.T) {
	src := FromSlice([]float64{1, 2, 3, 4}, 2, 2)

	var buf bytes.Buffer
	if _, err := src.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo (f64): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), goldenTSL1()) {
		t.Errorf("TSL1 encoding drifted:\n got %x\nwant %x", buf.Bytes(), goldenTSL1())
	}

	buf.Reset()
	if _, err := src.Clone().SetDType(Float32).WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo (f32): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), goldenTSL2()) {
		t.Errorf("TSL2 encoding drifted:\n got %x\nwant %x", buf.Bytes(), goldenTSL2())
	}
}

// TestGoldenDecode proves both pinned frames decode to the same values,
// with the dtype tag recovered from the wire.
func TestGoldenDecode(t *testing.T) {
	want := []float64{1, 2, 3, 4}
	for _, tc := range []struct {
		name  string
		frame []byte
		dt    DType
	}{
		{"TSL1", goldenTSL1(), Float64},
		{"TSL2", goldenTSL2(), Float32},
	} {
		var got Tensor
		n, err := got.ReadFrom(bytes.NewReader(tc.frame))
		if err != nil {
			t.Fatalf("%s: ReadFrom: %v", tc.name, err)
		}
		if n != int64(len(tc.frame)) {
			t.Errorf("%s: read %d bytes, frame is %d", tc.name, n, len(tc.frame))
		}
		if got.DType() != tc.dt {
			t.Errorf("%s: decoded dtype %v, want %v", tc.name, got.DType(), tc.dt)
		}
		if !got.Equal(FromSlice(want, 2, 2), 0) {
			t.Errorf("%s: decoded %v, want %v", tc.name, got.Data(), want)
		}
	}
}

// TestReadFromCleanEOF is the graceful-disconnect contract: zero bytes at
// the frame boundary is bare io.EOF, not a decode error.
func TestReadFromCleanEOF(t *testing.T) {
	var tt Tensor
	n, err := tt.ReadFrom(bytes.NewReader(nil))
	if err != io.EOF {
		t.Fatalf("ReadFrom(empty) = %v, want bare io.EOF", err)
	}
	if errors.Is(err, ErrBadEncoding) {
		t.Fatal("clean EOF must not wrap ErrBadEncoding")
	}
	if n != 0 {
		t.Fatalf("read %d bytes from empty stream", n)
	}
}

// TestReadFromTruncation: anything after the first byte is corruption,
// including a TSL2 frame cut exactly at the dtype byte.
func TestReadFromTruncation(t *testing.T) {
	full2 := goldenTSL2()
	cases := map[string][]byte{
		"mid-magic":        goldenTSL1()[:2],
		"at-dtype-byte":    full2[:4], // magic complete, dtype byte missing
		"mid-rank":         full2[:6],
		"mid-shape":        full2[:11],
		"mid-data":         full2[:len(full2)-3],
		"garbage-magic":    []byte("not a tensor at all"),
		"truncated-header": goldenTSL1()[:7],
	}
	for name, frame := range cases {
		var tt Tensor
		_, err := tt.ReadFrom(bytes.NewReader(frame))
		if !errors.Is(err, ErrBadEncoding) {
			t.Errorf("%s: err = %v, want ErrBadEncoding", name, err)
		}
	}
}

// TestReadFromUnknownDType rejects a TSL2 frame with a dtype the decoder
// does not know.
func TestReadFromUnknownDType(t *testing.T) {
	frame := goldenTSL2()
	frame[4] = 7
	var tt Tensor
	if _, err := tt.ReadFrom(bytes.NewReader(frame)); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("unknown dtype: err = %v, want ErrBadEncoding", err)
	}
}

// TestCrossDecode: a float32 frame decodes into a tensor that previously
// held float64 and vice versa — the dtype tag always follows the wire.
func TestCrossDecode(t *testing.T) {
	f64 := FromSlice([]float64{1.5, -2.25, 1.0 / 3.0, 4096.125}, 4)
	f32 := f64.Clone().SetDType(Float32)

	var buf bytes.Buffer
	if _, err := f32.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Decode the f32 frame into a tensor currently tagged Float64.
	dst := FromSlice([]float64{9, 9, 9, 9}, 4)
	if _, err := dst.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.DType() != Float32 {
		t.Fatalf("dtype after f32 decode = %v", dst.DType())
	}
	for i, v := range f64.Data() {
		if got, want := dst.Data()[i], float64(float32(v)); got != want {
			t.Errorf("elem %d: %v, want f32-rounded %v", i, got, want)
		}
	}

	// And back: a float64 frame into the float32-tagged tensor.
	buf.Reset()
	if _, err := f64.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.DType() != Float64 {
		t.Fatalf("dtype after f64 decode = %v", dst.DType())
	}
	if !dst.Equal(f64, 0) {
		t.Errorf("f64 round trip lost precision: %v vs %v", dst.Data(), f64.Data())
	}
}

// TestDTypeRoundTrip: encode/decode preserves values (exactly for f64,
// f32-rounded for f32) across ranks and dtypes.
func TestDTypeRoundTrip(t *testing.T) {
	shapes := [][]int{{}, {1}, {7}, {3, 5}, {2, 3, 4}}
	for _, dt := range []DType{Float64, Float32} {
		for _, shape := range shapes {
			orig := New(shape...).SetDType(dt)
			for i := range orig.data {
				orig.data[i] = float64(i)*0.37 - 2
			}
			var buf bytes.Buffer
			if _, err := orig.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			var back Tensor
			if _, err := back.ReadFrom(&buf); err != nil {
				t.Fatal(err)
			}
			if back.DType() != dt {
				t.Fatalf("%v %v: dtype %v", dt, shape, back.DType())
			}
			if !back.SameShape(orig) {
				t.Fatalf("%v %v: shape %v", dt, shape, back.Shape())
			}
			for i, v := range orig.data {
				want := v
				if dt == Float32 {
					want = float64(float32(v))
				}
				if back.data[i] != want {
					t.Errorf("%v %v elem %d: %v, want %v", dt, shape, i, back.data[i], want)
				}
			}
		}
	}
}

// TestCodecSteadyStateAllocs is the pooling contract: encoding to a
// ready writer and decoding into a reused tensor allocate nothing.
func TestCodecSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; alloc counts are nondeterministic")
	}
	src := New(8, 64)
	for i := range src.data {
		src.data[i] = float64(i)
	}
	for _, dt := range []DType{Float64, Float32} {
		src.SetDType(dt)
		if n := testing.AllocsPerRun(100, func() {
			if _, err := src.WriteTo(io.Discard); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("WriteTo (%v): %v allocs/op, want 0", dt, n)
		}

		var buf bytes.Buffer
		if _, err := src.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		frame := buf.Bytes()
		r := bytes.NewReader(frame)
		var dst Tensor
		if _, err := dst.ReadFrom(r); err != nil { // warm the storage
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(100, func() {
			r.Reset(frame)
			if _, err := dst.ReadFrom(r); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("ReadFrom (%v): %v allocs/op, want 0", dt, n)
		}
	}
}

// BenchmarkCodec measures the steady-state encode/decode hot path; CI
// gates on 0 allocs/op here.
func BenchmarkCodec(b *testing.B) {
	src := New(32, 256) // a realistic activation batch
	for i := range src.data {
		src.data[i] = float64(i) * 0.001
	}
	for _, dt := range []DType{Float64, Float32} {
		src.SetDType(dt)
		b.Run("encode-"+dt.String(), func(b *testing.B) {
			b.SetBytes(int64(src.Size() * dt.Size()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := src.WriteTo(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
		var buf bytes.Buffer
		if _, err := src.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		frame := buf.Bytes()
		b.Run("decode-"+dt.String(), func(b *testing.B) {
			b.SetBytes(int64(len(frame)))
			b.ReportAllocs()
			r := bytes.NewReader(frame)
			var dst Tensor
			for i := 0; i < b.N; i++ {
				r.Reset(frame)
				if _, err := dst.ReadFrom(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
