package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// The wire format is deliberately simple and explicit rather than gob-based
// so that the transport layer has a stable, versioned encoding. Two formats
// coexist; the magic makes every frame self-describing, so a decoder needs
// no out-of-band negotiation:
//
// TSL1 — the legacy full-precision format, emitted for Float64 tensors
// (byte-for-byte identical to every release before dtypes existed):
//
//	magic   uint32 = 0x54534c31 ("TSL1")
//	rank    uint32
//	shape   rank × uint32
//	data    volume × float64 (IEEE-754, little endian)
//
// TSL2 — the dtype-tagged format, emitted for Float32 tensors:
//
//	magic   uint32 = 0x54534c32 ("TSL2")
//	dtype   uint8  (0 = float64, 1 = float32)
//	rank    uint32
//	shape   rank × uint32
//	data    volume × elemSize(dtype) (IEEE-754, little endian)
//
// Both directions stream through one pooled scratch buffer: encode converts
// directly into it and writes straight to the (typically bufio-backed)
// connection, decode reads into it and converts straight into the tensor's
// backing slice — no staging copies, zero allocations at steady state.
const (
	codecMagic  uint32 = 0x54534c31
	codecMagic2 uint32 = 0x54534c32
)

// ErrBadEncoding is wrapped by all decode failures. A clean end of stream
// at a frame boundary is NOT a decode failure: ReadFrom returns bare
// io.EOF when zero bytes are available, so receive loops can tell a
// graceful peer close from a corrupt frame.
var ErrBadEncoding = errors.New("tensor: bad encoding")

// maxDecodeElems bounds a single decoded tensor to ~256 MiB of float64 so a
// corrupted or malicious header cannot trigger an unbounded allocation.
const maxDecodeElems = 32 << 20

// codecChunk is the number of float64 elements converted per streamed
// chunk; the scratch buffer holds 8×codecChunk bytes (32 KiB — within L1
// on anything modern, big enough to amortise the Write call).
const codecChunk = 4096

// codecBufPool recycles codec scratch buffers across WriteTo/ReadFrom
// calls so the steady-state encode/decode path allocates nothing.
var codecBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 8*codecChunk)
		return &b
	},
}

// WriteTo serialises t to w: TSL1 for Float64 tensors (the legacy bytes,
// unchanged), TSL2 for Float32. It implements io.WriterTo and performs no
// allocations — header and data stream through one pooled scratch buffer.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	bufp := codecBufPool.Get().(*[]byte)
	defer codecBufPool.Put(bufp)
	buf := *bufp

	h := 0
	if t.dtype == Float64 {
		binary.LittleEndian.PutUint32(buf[0:], codecMagic)
		binary.LittleEndian.PutUint32(buf[4:], uint32(len(t.shape)))
		h = 8
	} else {
		binary.LittleEndian.PutUint32(buf[0:], codecMagic2)
		buf[4] = byte(t.dtype)
		binary.LittleEndian.PutUint32(buf[5:], uint32(len(t.shape)))
		h = 9
	}
	for _, d := range t.shape {
		binary.LittleEndian.PutUint32(buf[h:], uint32(d))
		h += 4
	}
	n, err := w.Write(buf[:h])
	written := int64(n)
	if err != nil {
		return written, fmt.Errorf("tensor: write header: %w", err)
	}

	if t.dtype == Float32 {
		// 4-byte elements: twice as many fit per scratch chunk.
		for off := 0; off < len(t.data); {
			chunk := len(t.data) - off
			if chunk > 2*codecChunk {
				chunk = 2 * codecChunk
			}
			for i := 0; i < chunk; i++ {
				binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(float32(t.data[off+i])))
			}
			n, err = w.Write(buf[:4*chunk])
			written += int64(n)
			if err != nil {
				return written, fmt.Errorf("tensor: write data: %w", err)
			}
			off += chunk
		}
		return written, nil
	}
	for off := 0; off < len(t.data); {
		chunk := len(t.data) - off
		if chunk > codecChunk {
			chunk = codecChunk
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(t.data[off+i]))
		}
		n, err = w.Write(buf[:8*chunk])
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("tensor: write data: %w", err)
		}
		off += chunk
	}
	return written, nil
}

// ReadFrom deserialises a TSL1- or TSL2-format tensor from r, replacing
// t's shape, contents and dtype tag. It implements io.ReaderFrom.
//
// Two properties matter to receive loops:
//
//   - A stream that ends cleanly before the first header byte returns
//     bare io.EOF, not ErrBadEncoding — a graceful peer close is not a
//     corrupt frame. Any truncation after the first byte IS corruption.
//   - t's backing storage is reused when its capacity suffices, so a
//     loop decoding into one long-lived tensor allocates nothing at
//     steady state. Callers that retain the previous contents must
//     decode into a fresh tensor.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	bufp := codecBufPool.Get().(*[]byte)
	defer codecBufPool.Put(bufp)
	buf := *bufp

	n, err := io.ReadFull(r, buf[:4])
	read := int64(n)
	if err != nil {
		if n == 0 && err == io.EOF {
			return 0, io.EOF
		}
		return read, fmt.Errorf("%w: header: %v", ErrBadEncoding, err)
	}
	dt := Float64
	var rank uint32
	switch magic := binary.LittleEndian.Uint32(buf[:4]); magic {
	case codecMagic:
		n, err = io.ReadFull(r, buf[:4])
		read += int64(n)
		if err != nil {
			return read, fmt.Errorf("%w: header: %v", ErrBadEncoding, err)
		}
		rank = binary.LittleEndian.Uint32(buf[:4])
	case codecMagic2:
		n, err = io.ReadFull(r, buf[:5])
		read += int64(n)
		if err != nil {
			return read, fmt.Errorf("%w: header: %v", ErrBadEncoding, err)
		}
		switch DType(buf[0]) {
		case Float64, Float32:
			dt = DType(buf[0])
		default:
			return read, fmt.Errorf("%w: unknown dtype %d", ErrBadEncoding, buf[0])
		}
		rank = binary.LittleEndian.Uint32(buf[1:5])
	default:
		return read, fmt.Errorf("%w: bad magic %#x", ErrBadEncoding, magic)
	}
	if rank > 8 {
		return read, fmt.Errorf("%w: implausible rank %d", ErrBadEncoding, rank)
	}
	n, err = io.ReadFull(r, buf[:4*rank])
	read += int64(n)
	if err != nil {
		return read, fmt.Errorf("%w: shape: %v", ErrBadEncoding, err)
	}
	shape := t.shape[:0]
	if cap(shape) < int(rank) {
		shape = make([]int, 0, rank)
	}
	vol := 1
	for i := 0; i < int(rank); i++ {
		d := binary.LittleEndian.Uint32(buf[4*i:])
		shape = append(shape, int(d))
		vol *= int(d)
		if vol > maxDecodeElems {
			return read, fmt.Errorf("%w: tensor too large (%d elems)", ErrBadEncoding, vol)
		}
	}
	data := t.data
	if cap(data) < vol {
		data = make([]float64, vol)
	} else {
		data = data[:vol]
	}

	if dt == Float32 {
		for off := 0; off < vol; {
			chunk := vol - off
			if chunk > 2*codecChunk {
				chunk = 2 * codecChunk
			}
			n, err = io.ReadFull(r, buf[:4*chunk])
			read += int64(n)
			if err != nil {
				return read, fmt.Errorf("%w: data: %v", ErrBadEncoding, err)
			}
			for i := 0; i < chunk; i++ {
				data[off+i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
			}
			off += chunk
		}
	} else {
		for off := 0; off < vol; {
			chunk := vol - off
			if chunk > codecChunk {
				chunk = codecChunk
			}
			n, err = io.ReadFull(r, buf[:8*chunk])
			read += int64(n)
			if err != nil {
				return read, fmt.Errorf("%w: data: %v", ErrBadEncoding, err)
			}
			for i := 0; i < chunk; i++ {
				data[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
			}
			off += chunk
		}
	}
	t.shape = shape
	t.stride = stridesInto(t.stride, shape)
	t.data = data
	t.dtype = dt
	return read, nil
}

// stridesInto is strides with caller-supplied storage, reused when its
// capacity suffices — the zero-allocation path for decode loops.
func stridesInto(dst, shape []int) []int {
	if cap(dst) < len(shape) {
		dst = make([]int, len(shape))
	} else {
		dst = dst[:len(shape)]
	}
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		dst[i] = acc
		acc *= shape[i]
	}
	return dst
}

// Interface compliance checks.
var (
	_ io.WriterTo   = (*Tensor)(nil)
	_ io.ReaderFrom = (*Tensor)(nil)
)
