package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// The wire format is deliberately simple and explicit rather than gob-based
// so that the transport layer has a stable, versioned encoding:
//
//	magic   uint32 = 0x54534c31 ("TSL1")
//	rank    uint32
//	shape   rank × uint32
//	data    volume × float64 (IEEE-754, little endian)

const codecMagic uint32 = 0x54534c31

// ErrBadEncoding is wrapped by all decode failures.
var ErrBadEncoding = errors.New("tensor: bad encoding")

// maxDecodeElems bounds a single decoded tensor to ~256 MiB of float64 so a
// corrupted or malicious header cannot trigger an unbounded allocation.
const maxDecodeElems = 32 << 20

// WriteTo serialises t to w in the TSL1 format. It implements io.WriterTo.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	hdr := make([]byte, 8+4*len(t.shape))
	binary.LittleEndian.PutUint32(hdr[0:], codecMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(t.shape)))
	for i, d := range t.shape {
		binary.LittleEndian.PutUint32(hdr[8+4*i:], uint32(d))
	}
	n, err := w.Write(hdr)
	written := int64(n)
	if err != nil {
		return written, fmt.Errorf("tensor: write header: %w", err)
	}
	buf := make([]byte, 8*4096)
	for off := 0; off < len(t.data); {
		chunk := len(t.data) - off
		if chunk > 4096 {
			chunk = 4096
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(t.data[off+i]))
		}
		n, err = w.Write(buf[:8*chunk])
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("tensor: write data: %w", err)
		}
		off += chunk
	}
	return written, nil
}

// ReadFrom deserialises a TSL1-format tensor from r, replacing t's shape
// and contents. It implements io.ReaderFrom.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	var hdr [8]byte
	n, err := io.ReadFull(r, hdr[:])
	read := int64(n)
	if err != nil {
		return read, fmt.Errorf("%w: header: %v", ErrBadEncoding, err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != codecMagic {
		return read, fmt.Errorf("%w: bad magic %#x", ErrBadEncoding, got)
	}
	rank := binary.LittleEndian.Uint32(hdr[4:])
	if rank > 8 {
		return read, fmt.Errorf("%w: implausible rank %d", ErrBadEncoding, rank)
	}
	shapeBuf := make([]byte, 4*rank)
	n, err = io.ReadFull(r, shapeBuf)
	read += int64(n)
	if err != nil {
		return read, fmt.Errorf("%w: shape: %v", ErrBadEncoding, err)
	}
	shape := make([]int, rank)
	vol := 1
	for i := range shape {
		d := binary.LittleEndian.Uint32(shapeBuf[4*i:])
		shape[i] = int(d)
		vol *= int(d)
		if vol > maxDecodeElems {
			return read, fmt.Errorf("%w: tensor too large (%d elems)", ErrBadEncoding, vol)
		}
	}
	data := make([]float64, vol)
	buf := make([]byte, 8*4096)
	for off := 0; off < vol; {
		chunk := vol - off
		if chunk > 4096 {
			chunk = 4096
		}
		n, err = io.ReadFull(r, buf[:8*chunk])
		read += int64(n)
		if err != nil {
			return read, fmt.Errorf("%w: data: %v", ErrBadEncoding, err)
		}
		for i := 0; i < chunk; i++ {
			data[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		off += chunk
	}
	t.shape = shape
	t.stride = strides(shape)
	t.data = data
	return read, nil
}

// Interface compliance checks.
var (
	_ io.WriterTo   = (*Tensor)(nil)
	_ io.ReaderFrom = (*Tensor)(nil)
)
