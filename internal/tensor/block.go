package tensor

// Cache-blocked (tiled) matmul kernels. The naive i-k-j loops in ops.go
// stream the full B operand through cache once per output row — at
// 256×256 float64 that is a 512 KiB panel re-read 256 times. The blocked
// kernels below partition B into kb×nb tiles small enough to stay
// resident across the whole row sweep, so B is read from memory once per
// full product instead of once per row, and unroll the k loop 4-wide for
// instruction-level parallelism.
//
// Dispatch: the public MatMul/MatMulTransA/MatMulTransB (and their
// parallel wrappers) switch to the blocked kernels when the multiply-add
// count reaches blockedThreshold, and keep the original zero-skipping
// naive loops below it, where tiling overhead and the lost sparsity skip
// would cost more than the cache behaviour buys. Every kernel takes an
// output-row range so the serial and parallel paths run the same code —
// and therefore the same floating-point accumulation order — on any row.
const (
	// blockedThreshold is the m*k*n volume above which the tiled kernels
	// win over the naive loops (64³ — matrices about one L2 cache big).
	blockedThreshold = 1 << 18
	// blockK × blockN is the B tile: 64×256 float64 = 128 KiB, sized for
	// L2 residency while the row sweep streams A past it.
	blockK = 64
	blockN = 256
)

// matMulRange computes output rows [lo,hi) of the (m×k)·(k×n) product.
// The kernel choice depends only on the FULL problem size (m, not hi-lo),
// and both kernels accumulate each output element in an order fixed by
// (k, n) alone — so any row partition of the same product is bitwise
// identical to the serial whole, which MatMulP's contract pins.
func matMulRange(a, b, out []float64, m, k, n, lo, hi int) {
	if m*k*n >= blockedThreshold && k >= 4 {
		matMulRowsBlocked(a, b, out, k, n, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulRowsBlocked is the tiled i-k-j kernel: for each kb×nb tile of B,
// sweep every output row, accumulating 4 k-steps per pass so each
// read-modify-write of the output row segment carries 4 multiply-adds.
func matMulRowsBlocked(a, b, out []float64, k, n, lo, hi int) {
	for kc := 0; kc < k; kc += blockK {
		kmax := kc + blockK
		if kmax > k {
			kmax = k
		}
		for jc := 0; jc < n; jc += blockN {
			jmax := jc + blockN
			if jmax > n {
				jmax = n
			}
			for i := lo; i < hi; i++ {
				arow := a[i*k : (i+1)*k]
				orow := out[i*n+jc : i*n+jmax]
				kk := kc
				for ; kk+4 <= kmax; kk += 4 {
					av0, av1, av2, av3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
					b0 := b[kk*n+jc : kk*n+jmax]
					b1 := b[(kk+1)*n+jc : (kk+1)*n+jmax]
					b2 := b[(kk+2)*n+jc : (kk+2)*n+jmax]
					b3 := b[(kk+3)*n+jc : (kk+3)*n+jmax]
					for j := range orow {
						orow[j] += av0*b0[j] + av1*b1[j] + av2*b2[j] + av3*b3[j]
					}
				}
				for ; kk < kmax; kk++ {
					av := arow[kk]
					brow := b[kk*n+jc : kk*n+jmax]
					for j := range orow {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// matMulTransBRange computes output rows [lo,hi) of a·bᵀ for a (m×k),
// b (n×k). Kernel choice depends only on the full problem size, and both
// kernels compute every dot product via dotUnrolled, so serial and
// parallel callers agree bitwise.
func matMulTransBRange(a, b, out []float64, m, k, n, lo, hi int) {
	if m*k*n >= blockedThreshold {
		matMulTransBRowsBlocked(a, b, out, k, n, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			orow[j] = dotUnrolled(arow, b[j*k:(j+1)*k])
		}
	}
}

// matMulTransBRowsBlocked tiles the rows of B into panels that stay
// cache-resident while every output row sweeps them: B is read once per
// product instead of once per output row.
func matMulTransBRowsBlocked(a, b, out []float64, k, n, lo, hi int) {
	// Panel of B rows: blockN rows × k cols each. Cap panel footprint at
	// blockK*blockN elements so long-k operands still tile.
	rows := blockN
	if k > 0 {
		if r := (blockK * blockN) / k; r < rows {
			rows = r
		}
	}
	if rows < 1 {
		rows = 1
	}
	for jc := 0; jc < n; jc += rows {
		jmax := jc + rows
		if jmax > n {
			jmax = n
		}
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			orow := out[i*n : (i+1)*n]
			for j := jc; j < jmax; j++ {
				orow[j] = dotUnrolled(arow, b[j*k:(j+1)*k])
			}
		}
	}
}

// dotUnrolled is the shared 4-accumulator dot product; one definition so
// blocked, serial and parallel TransB paths round identically.
func dotUnrolled(x, y []float64) float64 {
	var s0, s1, s2, s3 float64
	kk := 0
	for ; kk+4 <= len(x); kk += 4 {
		s0 += x[kk] * y[kk]
		s1 += x[kk+1] * y[kk+1]
		s2 += x[kk+2] * y[kk+2]
		s3 += x[kk+3] * y[kk+3]
	}
	s := s0 + s1 + s2 + s3
	for ; kk < len(x); kk++ {
		s += x[kk] * y[kk]
	}
	return s
}

// matMulTransACols computes columns [lo:hi) of aᵀ·b for a (k×m), b (k×n):
// rank-1 updates tiled so the out panel under update stays cache-resident
// across the full k sweep instead of being streamed k times. Accumulation
// order per output element is ascending k in both the tiled and naive
// paths.
func matMulTransACols(a, b, out []float64, k, m, n, lo, hi int) {
	if k*(hi-lo)*n < blockedThreshold {
		for kk := 0; kk < k; kk++ {
			arow := a[kk*m+lo : kk*m+hi]
			brow := b[kk*n : (kk+1)*n]
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out[(lo+i)*n : (lo+i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return
	}
	// Tile the output: blockK rows × blockN cols of out stay hot while
	// the k loop streams the matching A and B column panels once.
	for ic := lo; ic < hi; ic += blockK {
		imax := ic + blockK
		if imax > hi {
			imax = hi
		}
		for jc := 0; jc < n; jc += blockN {
			jmax := jc + blockN
			if jmax > n {
				jmax = n
			}
			for kk := 0; kk < k; kk++ {
				arow := a[kk*m+ic : kk*m+imax]
				brow := b[kk*n+jc : kk*n+jmax]
				for i, av := range arow {
					if av == 0 {
						continue
					}
					orow := out[(ic+i)*n+jc : (ic+i)*n+jmax]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
}
