package tensor

import (
	"fmt"
	"math"
)

// Add returns t + o elementwise. Shapes must match.
func (t *Tensor) Add(o *Tensor) *Tensor {
	t.mustMatch(o, "Add")
	out := t.Clone()
	for i, v := range o.data {
		out.data[i] += v
	}
	return out
}

// AddInPlace adds o into t and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.mustMatch(o, "AddInPlace")
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// Sub returns t - o elementwise.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	t.mustMatch(o, "Sub")
	out := t.Clone()
	for i, v := range o.data {
		out.data[i] -= v
	}
	return out
}

// Mul returns the elementwise (Hadamard) product t ⊙ o.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	t.mustMatch(o, "Mul")
	out := t.Clone()
	for i, v := range o.data {
		out.data[i] *= v
	}
	return out
}

// Scale returns t * s elementwise.
func (t *Tensor) Scale(s float64) *Tensor {
	out := t.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// ScaleInPlace multiplies every element by s and returns t.
func (t *Tensor) ScaleInPlace(s float64) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AXPY performs t += a*x in place (the BLAS axpy idiom) and returns t.
func (t *Tensor) AXPY(a float64, x *Tensor) *Tensor {
	t.mustMatch(x, "AXPY")
	for i, v := range x.data {
		t.data[i] += a * v
	}
	return t
}

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	out := t.Clone()
	for i, v := range out.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element in place and returns t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) *Tensor {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements, or 0 for an empty tensor.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// tensor. Used for gradient-clipping and sanity checks.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean (Frobenius) norm of t.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of t and o viewed as flat vectors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.mustMatch(o, "Dot")
	s := 0.0
	for i, v := range t.data {
		s += v * o.data[i]
	}
	return s
}

func (t *Tensor) mustMatch(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
	}
}

// MatMul returns the matrix product of two rank-2 tensors: (m×k)·(k×n) →
// (m×n). Small products use an i-k-j loop whose innermost loop walks both
// operands with unit stride and skips zero A elements; large products
// switch to the cache-blocked kernel in block.go.
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulRange(a.data, b.data, out.data, m, k, n, 0, m)
	return out
}

// MatMulTransA returns aᵀ·b for rank-2 a (k×m) and b (k×n) → (m×n),
// avoiding an explicit transpose allocation.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulTransACols(a.data, b.data, out.data, k, m, n, 0, m)
	return out
}

// MatMulTransB returns a·bᵀ for rank-2 a (m×k) and b (n×k) → (m×n),
// avoiding an explicit transpose allocation.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v · %v", a.shape, b.shape))
	}
	out := New(m, n)
	matMulTransBRange(a.data, b.data, out.data, m, k, n, 0, m)
	return out
}

// Transpose returns the transpose of a rank-2 tensor.
func (t *Tensor) Transpose() *Tensor {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank 2, got shape %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}

// AddRowVector adds a length-n vector to every row of an (m×n) matrix in
// place and returns t. Used for bias addition in dense layers.
func (t *Tensor) AddRowVector(v *Tensor) *Tensor {
	if t.Dims() != 2 || v.Dims() != 1 || t.shape[1] != v.shape[0] {
		panic(fmt.Sprintf("tensor: AddRowVector shape mismatch %v + %v", t.shape, v.shape))
	}
	n := t.shape[1]
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, b := range v.data {
			row[j] += b
		}
	}
	return t
}

// SumRows returns the column-wise sum of an (m×n) matrix as a length-n
// vector. Used for bias gradients.
func (t *Tensor) SumRows() *Tensor {
	if t.Dims() != 2 {
		panic(fmt.Sprintf("tensor: SumRows requires rank 2, got %v", t.shape))
	}
	n := t.shape[1]
	out := New(n)
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}
