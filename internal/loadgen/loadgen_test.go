package loadgen

import (
	"math"
	"testing"
	"time"
)

// count arrivals in [lo, hi).
func within(arr []time.Duration, lo, hi time.Duration) int {
	n := 0
	for _, t := range arr {
		if t >= lo && t < hi {
			n++
		}
	}
	return n
}

func TestArrivalsValidation(t *testing.T) {
	cases := []Config{
		{},
		{Shape: ShapePoisson, Rate: 0, Duration: time.Second},
		{Shape: ShapePoisson, Rate: 10, Duration: 0},
		{Shape: "bursty", Rate: 10, Duration: time.Second},
		{Shape: ShapeDiurnal, Rate: 10, Duration: time.Second, Floor: 1.5},
	}
	for i, cfg := range cases {
		if _, err := Arrivals(cfg); err == nil {
			t.Errorf("case %d: Arrivals(%+v) accepted invalid config", i, cfg)
		}
	}
	if _, err := ParseShape("nope"); err == nil {
		t.Error("ParseShape accepted unknown shape")
	}
}

func TestPoissonTrace(t *testing.T) {
	cfg := Config{Shape: ShapePoisson, Rate: 200, Duration: 10 * time.Second, Seed: 7}
	arr, err := Arrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Mean 2000 arrivals, σ = √2000 ≈ 45; ±5σ is a once-per-3.5M-runs
	// flake bound, and the seed is fixed anyway.
	mean := cfg.Rate * cfg.Duration.Seconds()
	if dev := math.Abs(float64(len(arr)) - mean); dev > 5*math.Sqrt(mean) {
		t.Fatalf("got %d arrivals, want %g±%g", len(arr), mean, 5*math.Sqrt(mean))
	}
	for i, at := range arr {
		if at < 0 || at >= cfg.Duration {
			t.Fatalf("arrival %d at %v outside [0, %v)", i, at, cfg.Duration)
		}
		if i > 0 && at < arr[i-1] {
			t.Fatalf("arrivals not sorted: [%d]=%v < [%d]=%v", i, at, i-1, arr[i-1])
		}
	}
}

// TestDeterminism: the same Config must yield the identical trace — the
// property that makes a chaos run replayable from its seed.
func TestDeterminism(t *testing.T) {
	cfg := Config{Shape: ShapeFlash, Rate: 50, Duration: 5 * time.Second, Seed: 42}
	a, err := Arrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Arrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c, _ := Arrivals(cfg)
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFlashCrowdDensity(t *testing.T) {
	cfg := Config{
		Shape: ShapeFlash, Rate: 100, Duration: 12 * time.Second, Seed: 3,
		SpikeAt: 4 * time.Second, SpikeFor: 2 * time.Second, SpikeX: 8,
	}
	arr, err := Arrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inSpike := within(arr, cfg.SpikeAt, cfg.SpikeAt+cfg.SpikeFor)
	base := within(arr, 0, cfg.SpikeAt)
	// Per-second densities: spike ≈ 800/s over 2s, base ≈ 100/s over 4s.
	spikeRate := float64(inSpike) / cfg.SpikeFor.Seconds()
	baseRate := float64(base) / cfg.SpikeAt.Seconds()
	if spikeRate < 4*baseRate {
		t.Fatalf("spike density %.1f/s not clearly above base %.1f/s (want ≥4×)", spikeRate, baseRate)
	}
	wantSpike := cfg.Rate * cfg.SpikeX * cfg.SpikeFor.Seconds()
	if dev := math.Abs(float64(inSpike) - wantSpike); dev > 5*math.Sqrt(wantSpike) {
		t.Fatalf("spike window has %d arrivals, want %g±%g", inSpike, wantSpike, 5*math.Sqrt(wantSpike))
	}
}

func TestDiurnalModulation(t *testing.T) {
	cfg := Config{
		Shape: ShapeDiurnal, Rate: 400, Duration: 10 * time.Second, Seed: 11,
		Period: 10 * time.Second, Floor: 0.1,
	}
	arr, err := Arrivals(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Trough at the edges, peak mid-trace: the central fifth must be
	// several times denser than the first fifth.
	fifth := cfg.Duration / 5
	trough := within(arr, 0, fifth)
	peak := within(arr, 2*fifth, 3*fifth)
	if peak < 3*trough {
		t.Fatalf("diurnal peak (%d) not clearly denser than trough (%d)", peak, trough)
	}
}
