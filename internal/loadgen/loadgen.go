// Package loadgen generates open-loop arrival processes for overload
// testing. Open-loop means the schedule is fixed before the first request
// fires: arrival times do not depend on how fast the server answers, so a
// slowing server faces the same offered load instead of the accidental
// self-throttling a closed-loop client provides. That distinction is the
// whole point — closed-loop load generators systematically understate
// overload (the coordinated-omission trap), and the paper's failure mode
// of interest is exactly the regime where offered load exceeds capacity.
//
// Three trace shapes cover the scenarios the control plane must survive:
// a steady Poisson process (capacity calibration), a diurnal cycle
// (slow swings the hysteresis gate should ride without flapping), and a
// flash crowd (a step spike that should trip shedding fast and drain
// cleanly). All draws come from a seeded mathx.RNG, so a trace is
// reproducible from its Config alone.
package loadgen

import (
	"fmt"
	"math"
	"time"

	"github.com/stsl/stsl/internal/mathx"
)

// Shape selects the arrival process.
type Shape string

const (
	// ShapePoisson is a homogeneous Poisson process at Rate.
	ShapePoisson Shape = "poisson"
	// ShapeDiurnal modulates Rate sinusoidally over Period: starting at
	// the trough (Floor×Rate), peaking at Rate half a period in.
	ShapeDiurnal Shape = "diurnal"
	// ShapeFlash is Poisson at Rate with a burst window at SpikeX× the
	// rate — the join-storm profile.
	ShapeFlash Shape = "flash-crowd"
)

// ParseShape maps a flag string onto a Shape.
func ParseShape(s string) (Shape, error) {
	switch Shape(s) {
	case ShapePoisson, ShapeDiurnal, ShapeFlash:
		return Shape(s), nil
	}
	return "", fmt.Errorf("loadgen: unknown shape %q (want poisson|diurnal|flash-crowd)", s)
}

// Config parameterises one trace. Zero optional fields take defaults.
type Config struct {
	// Shape selects the process (required).
	Shape Shape
	// Rate is the base arrival rate in arrivals/second (required > 0).
	// For diurnal it is the peak; for flash-crowd the off-spike base.
	Rate float64
	// Duration is the trace horizon (required > 0).
	Duration time.Duration
	// Seed drives every random draw; the same Config yields the same
	// trace.
	Seed uint64

	// Period is the diurnal cycle length (default Duration, one cycle).
	Period time.Duration
	// Floor is the diurnal trough as a fraction of Rate in [0,1]
	// (default 0.2).
	Floor float64

	// SpikeAt is when the flash crowd begins (default Duration/3).
	SpikeAt time.Duration
	// SpikeFor is how long it lasts (default Duration/10).
	SpikeFor time.Duration
	// SpikeX multiplies Rate during the spike (default 10).
	SpikeX float64
}

func (c Config) withDefaults() Config {
	if c.Period <= 0 {
		c.Period = c.Duration
	}
	if c.Floor <= 0 {
		c.Floor = 0.2
	}
	if c.SpikeAt <= 0 {
		c.SpikeAt = c.Duration / 3
	}
	if c.SpikeFor <= 0 {
		c.SpikeFor = c.Duration / 10
	}
	if c.SpikeX <= 0 {
		c.SpikeX = 10
	}
	return c
}

func (c Config) validate() error {
	if _, err := ParseShape(string(c.Shape)); err != nil {
		return err
	}
	if c.Rate <= 0 {
		return fmt.Errorf("loadgen: Rate must be positive, got %g", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: Duration must be positive, got %v", c.Duration)
	}
	if c.Floor > 1 {
		return fmt.Errorf("loadgen: Floor must be in [0,1], got %g", c.Floor)
	}
	return nil
}

// rateAt is the instantaneous rate λ(t) of the configured process.
func (c Config) rateAt(t time.Duration) float64 {
	switch c.Shape {
	case ShapeDiurnal:
		// Trough at t=0 and t=Period, peak at Period/2.
		phase := 0.5 * (1 - math.Cos(2*math.Pi*t.Seconds()/c.Period.Seconds()))
		return c.Rate * (c.Floor + (1-c.Floor)*phase)
	case ShapeFlash:
		if t >= c.SpikeAt && t < c.SpikeAt+c.SpikeFor {
			return c.Rate * c.SpikeX
		}
		return c.Rate
	default:
		return c.Rate
	}
}

// peakRate is the envelope λmax that dominates λ(t) everywhere — the
// homogeneous rate the thinning sampler proposes at.
func (c Config) peakRate() float64 {
	if c.Shape == ShapeFlash {
		return c.Rate * c.SpikeX
	}
	return c.Rate
}

// Arrivals materialises the trace: strictly increasing offsets from the
// trace start, all < Duration. Non-homogeneous shapes are sampled by
// Lewis-Shedler thinning — propose a homogeneous Poisson stream at the
// envelope rate, keep each proposal t with probability λ(t)/λmax — which
// is exact for any bounded λ(t).
func Arrivals(cfg Config) ([]time.Duration, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := mathx.NewRNG(cfg.Seed)
	peak := cfg.peakRate()
	out := make([]time.Duration, 0, int(float64(cfg.Duration)/float64(time.Second)*cfg.Rate)+16)
	for t := time.Duration(0); ; {
		t += time.Duration(rng.Exp(peak) * float64(time.Second))
		if t >= cfg.Duration {
			return out, nil
		}
		if accept := cfg.rateAt(t) / peak; accept >= 1 || rng.Float64() < accept {
			out = append(out, t)
		}
	}
}
