package opt

import (
	"math"
	"testing"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/tensor"
)

// quadParam builds a parameter initialised at x0 whose loss is 0.5‖x‖², so
// grad = x and the optimum is the origin.
func quadParam(x0 []float64) *nn.Param {
	return nn.NewParam("x", tensor.FromSlice(x0, len(x0)))
}

func quadGrad(p *nn.Param) {
	p.ZeroGrad()
	p.Grad.AddInPlace(p.Value)
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSGD(Config{LR: 0}); err == nil {
		t.Fatal("zero LR accepted")
	}
	if _, err := NewSGD(Config{LR: -1}); err == nil {
		t.Fatal("negative LR accepted")
	}
	if _, err := NewSGD(Config{LR: 0.1, WeightDecay: -1}); err == nil {
		t.Fatal("negative weight decay accepted")
	}
	if _, err := NewSGD(Config{LR: 0.1, ClipNorm: -1}); err == nil {
		t.Fatal("negative clip norm accepted")
	}
	if _, err := NewMomentum(Config{LR: 0.1}, 1.0); err == nil {
		t.Fatal("beta=1 accepted")
	}
}

func TestSGDStepExactValue(t *testing.T) {
	p := quadParam([]float64{10})
	o, err := NewSGD(Config{LR: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	quadGrad(p)
	o.Step([]*nn.Param{p})
	// x ← x - lr·x = 10 - 1 = 9.
	if got := p.Value.At(0); math.Abs(got-9) > 1e-12 {
		t.Fatalf("after step x = %v, want 9", got)
	}
}

func TestOptimizersConvergeOnQuadratic(t *testing.T) {
	mk := map[string]func() Optimizer{
		"sgd": func() Optimizer {
			o, _ := NewSGD(Config{LR: 0.1})
			return o
		},
		"momentum": func() Optimizer {
			o, _ := NewMomentum(Config{LR: 0.05}, 0.9)
			return o
		},
		"adam": func() Optimizer {
			o, _ := NewAdam(Config{LR: 0.3})
			return o
		},
	}
	for name, f := range mk {
		t.Run(name, func(t *testing.T) {
			p := quadParam([]float64{5, -3, 8, 0.5})
			o := f()
			for i := 0; i < 300; i++ {
				quadGrad(p)
				o.Step([]*nn.Param{p})
			}
			if norm := p.Value.Norm2(); norm > 1e-2 {
				t.Fatalf("%s did not converge: ‖x‖ = %v", name, norm)
			}
		})
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	p := quadParam([]float64{1})
	o, err := NewSGD(Config{LR: 0.1, WeightDecay: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// With zero gradient, only decay acts: x ← x·(1-lr·wd) = 0.95.
	p.ZeroGrad()
	o.Step([]*nn.Param{p})
	if got := p.Value.At(0); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("after decay x = %v, want 0.95", got)
	}
}

func TestClipNormBoundsUpdate(t *testing.T) {
	p := quadParam([]float64{0})
	p.ZeroGrad()
	p.Grad.Fill(100)
	o, err := NewSGD(Config{LR: 1, ClipNorm: 1})
	if err != nil {
		t.Fatal(err)
	}
	o.Step([]*nn.Param{p})
	// Gradient was clipped to norm 1, so |update| ≤ 1.
	if got := math.Abs(p.Value.At(0)); got > 1+1e-12 {
		t.Fatalf("clipped update magnitude = %v", got)
	}
}

func TestClipNormGlobalAcrossParams(t *testing.T) {
	a := quadParam([]float64{0, 0})
	b := quadParam([]float64{0})
	a.Grad.Fill(3)
	b.Grad.Fill(4) // joint norm = sqrt(9+9+16) = sqrt(34)
	clipGlobal([]*nn.Param{a, b}, 1)
	total := a.Grad.Norm2()*a.Grad.Norm2() + b.Grad.Norm2()*b.Grad.Norm2()
	if math.Abs(math.Sqrt(total)-1) > 1e-9 {
		t.Fatalf("post-clip global norm = %v, want 1", math.Sqrt(total))
	}
}

func TestClipNormNoopBelowThreshold(t *testing.T) {
	p := quadParam([]float64{0})
	p.Grad.Fill(0.5)
	clipGlobal([]*nn.Param{p}, 10)
	if got := p.Grad.At(0); got != 0.5 {
		t.Fatalf("clip modified small gradient: %v", got)
	}
}

func TestMomentumAcceleratesOverSGD(t *testing.T) {
	// Same LR: after the same number of steps down a quadratic, momentum
	// should be closer to the optimum.
	run := func(o Optimizer) float64 {
		p := quadParam([]float64{10})
		for i := 0; i < 20; i++ {
			quadGrad(p)
			o.Step([]*nn.Param{p})
		}
		return math.Abs(p.Value.At(0))
	}
	sgd, _ := NewSGD(Config{LR: 0.02})
	mom, _ := NewMomentum(Config{LR: 0.02}, 0.9)
	if dm, ds := run(mom), run(sgd); dm >= ds {
		t.Fatalf("momentum (%v) not faster than sgd (%v)", dm, ds)
	}
}

func TestAdamPerCoordinateScaling(t *testing.T) {
	// Adam normalises per-coordinate: two coordinates with very different
	// gradient scales receive near-equal first updates.
	p := quadParam([]float64{0, 0})
	p.Grad.Data()[0] = 1000
	p.Grad.Data()[1] = 0.001
	o, _ := NewAdam(Config{LR: 0.1})
	o.Step([]*nn.Param{p})
	u0, u1 := math.Abs(p.Value.At(0)), math.Abs(p.Value.At(1))
	if math.Abs(u0-u1)/u0 > 0.01 {
		t.Fatalf("adam first-step updates differ: %v vs %v", u0, u1)
	}
}

func TestSetLRTakesEffect(t *testing.T) {
	o, _ := NewSGD(Config{LR: 0.1})
	o.SetLR(0.01)
	if got := o.LR(); got != 0.01 {
		t.Fatalf("LR = %v", got)
	}
	p := quadParam([]float64{1})
	quadGrad(p)
	o.Step([]*nn.Param{p})
	if got := p.Value.At(0); math.Abs(got-0.99) > 1e-12 {
		t.Fatalf("after step with lr=0.01: %v", got)
	}
}

func TestTrainSmallNetWithAdam(t *testing.T) {
	// Integration: Adam trains a small MLP to fit random data.
	r := mathx.NewRNG(1)
	d1, err := nn.NewDense("d1", 4, 16, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := nn.NewDense("d2", 16, 3, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewSequential("mlp", d1, nn.NewReLU("r"), d2)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewAdam(Config{LR: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(r, 1, 16, 4)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = r.Intn(3)
	}
	var first, last float64
	for step := 0; step < 200; step++ {
		net.ZeroGrad()
		logits := net.Forward(x, true)
		loss, grad, err := nn.SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		o.Step(net.Params())
	}
	if last > first/3 {
		t.Fatalf("adam training did not reduce loss: %v → %v", first, last)
	}
}
