package opt

import (
	"fmt"
	"math"
)

// Schedule maps an epoch index (0-based) to a learning rate.
type Schedule interface {
	// At returns the learning rate for the given epoch.
	At(epoch int) float64
}

// ConstSchedule always returns the same rate.
type ConstSchedule struct{ Rate float64 }

// At implements Schedule.
func (s ConstSchedule) At(int) float64 { return s.Rate }

// StepSchedule multiplies the base rate by Gamma every Every epochs.
type StepSchedule struct {
	Base  float64
	Gamma float64
	Every int
}

// At implements Schedule.
func (s StepSchedule) At(epoch int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(epoch/s.Every))
}

// CosineSchedule anneals from Base to Floor over Total epochs following a
// half cosine, then stays at Floor.
type CosineSchedule struct {
	Base  float64
	Floor float64
	Total int
}

// At implements Schedule.
func (s CosineSchedule) At(epoch int) float64 {
	if s.Total <= 0 || epoch >= s.Total {
		return s.Floor
	}
	frac := float64(epoch) / float64(s.Total)
	return s.Floor + 0.5*(s.Base-s.Floor)*(1+math.Cos(math.Pi*frac))
}

// Apply sets the optimiser's learning rate for the given epoch.
func Apply(o Optimizer, s Schedule, epoch int) error {
	if o == nil || s == nil {
		return fmt.Errorf("opt: Apply requires non-nil optimiser and schedule")
	}
	lr := s.At(epoch)
	if lr <= 0 {
		return fmt.Errorf("opt: schedule produced non-positive rate %v at epoch %d", lr, epoch)
	}
	o.SetLR(lr)
	return nil
}

// Interface compliance checks.
var (
	_ Schedule = ConstSchedule{}
	_ Schedule = StepSchedule{}
	_ Schedule = CosineSchedule{}
)
