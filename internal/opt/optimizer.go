// Package opt implements the first-order optimisers and learning-rate
// schedules used to train the split network: plain SGD, SGD with momentum,
// and Adam, plus constant/step/cosine schedules, weight decay and global
// gradient-norm clipping.
//
// An Optimizer owns per-parameter state keyed by the *nn.Param pointer, so
// the same optimiser instance must be used for the lifetime of a model.
package opt

import (
	"fmt"
	"math"

	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/tensor"
)

// Optimizer applies accumulated gradients to parameters.
type Optimizer interface {
	// Step consumes the gradients currently accumulated on params and
	// updates their values. It does not zero the gradients; callers
	// decide when to clear (allowing gradient accumulation).
	Step(params []*nn.Param)
	// LR returns the learning rate the next Step will use.
	LR() float64
	// SetLR overrides the learning rate (schedules call this per epoch).
	SetLR(lr float64)
}

// Config collects options shared by all optimisers.
type Config struct {
	// LR is the initial learning rate. Required, must be positive.
	LR float64
	// WeightDecay, when positive, applies decoupled L2 decay
	// (value -= lr·wd·value) before the gradient step.
	WeightDecay float64
	// ClipNorm, when positive, rescales the global gradient norm of each
	// Step call to at most this value.
	ClipNorm float64
}

func (c Config) validate() error {
	if c.LR <= 0 {
		return fmt.Errorf("opt: learning rate must be positive, got %v", c.LR)
	}
	if c.WeightDecay < 0 {
		return fmt.Errorf("opt: weight decay must be non-negative, got %v", c.WeightDecay)
	}
	if c.ClipNorm < 0 {
		return fmt.Errorf("opt: clip norm must be non-negative, got %v", c.ClipNorm)
	}
	return nil
}

// clipGlobal rescales gradients so their joint L2 norm is at most maxNorm.
func clipGlobal(params []*nn.Param, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	total := 0.0
	for _, p := range params {
		n := p.Grad.Norm2()
		total += n * n
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.Grad.ScaleInPlace(scale)
	}
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	cfg Config
}

// NewSGD constructs an SGD optimiser.
func NewSGD(cfg Config) (*SGD, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &SGD{cfg: cfg}, nil
}

// Step implements Optimizer.
func (o *SGD) Step(params []*nn.Param) {
	clipGlobal(params, o.cfg.ClipNorm)
	for _, p := range params {
		if o.cfg.WeightDecay > 0 {
			p.Value.ScaleInPlace(1 - o.cfg.LR*o.cfg.WeightDecay)
		}
		p.Value.AXPY(-o.cfg.LR, p.Grad)
	}
}

// LR implements Optimizer.
func (o *SGD) LR() float64 { return o.cfg.LR }

// SetLR implements Optimizer.
func (o *SGD) SetLR(lr float64) { o.cfg.LR = lr }

// Momentum is SGD with classical (heavy-ball) momentum.
type Momentum struct {
	cfg  Config
	beta float64
	vel  map[*nn.Param]*tensor.Tensor
}

// NewMomentum constructs a momentum optimiser; beta is the velocity decay
// (typically 0.9).
func NewMomentum(cfg Config, beta float64) (*Momentum, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if beta < 0 || beta >= 1 {
		return nil, fmt.Errorf("opt: momentum beta %v out of [0,1)", beta)
	}
	return &Momentum{cfg: cfg, beta: beta, vel: make(map[*nn.Param]*tensor.Tensor)}, nil
}

// Step implements Optimizer.
func (o *Momentum) Step(params []*nn.Param) {
	clipGlobal(params, o.cfg.ClipNorm)
	for _, p := range params {
		v, ok := o.vel[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			o.vel[p] = v
		}
		if o.cfg.WeightDecay > 0 {
			p.Value.ScaleInPlace(1 - o.cfg.LR*o.cfg.WeightDecay)
		}
		// v = beta·v + grad; value -= lr·v
		v.ScaleInPlace(o.beta)
		v.AddInPlace(p.Grad)
		p.Value.AXPY(-o.cfg.LR, v)
	}
}

// LR implements Optimizer.
func (o *Momentum) LR() float64 { return o.cfg.LR }

// SetLR implements Optimizer.
func (o *Momentum) SetLR(lr float64) { o.cfg.LR = lr }

// Adam is the Adam optimiser (Kingma & Ba, 2015) with bias correction.
type Adam struct {
	cfg          Config
	beta1, beta2 float64
	eps          float64
	t            int
	m, v         map[*nn.Param]*tensor.Tensor
}

// NewAdam constructs an Adam optimiser with the standard defaults
// beta1=0.9, beta2=0.999, eps=1e-8.
func NewAdam(cfg Config) (*Adam, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Adam{
		cfg:   cfg,
		beta1: 0.9, beta2: 0.999, eps: 1e-8,
		m: make(map[*nn.Param]*tensor.Tensor),
		v: make(map[*nn.Param]*tensor.Tensor),
	}, nil
}

// Step implements Optimizer.
func (o *Adam) Step(params []*nn.Param) {
	clipGlobal(params, o.cfg.ClipNorm)
	o.t++
	bc1 := 1 - math.Pow(o.beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			o.m[p] = m
			o.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := o.v[p]
		if o.cfg.WeightDecay > 0 {
			p.Value.ScaleInPlace(1 - o.cfg.LR*o.cfg.WeightDecay)
		}
		md, vd, gd, pd := m.Data(), v.Data(), p.Grad.Data(), p.Value.Data()
		for i, g := range gd {
			md[i] = o.beta1*md[i] + (1-o.beta1)*g
			vd[i] = o.beta2*vd[i] + (1-o.beta2)*g*g
			mhat := md[i] / bc1
			vhat := vd[i] / bc2
			pd[i] -= o.cfg.LR * mhat / (math.Sqrt(vhat) + o.eps)
		}
	}
}

// LR implements Optimizer.
func (o *Adam) LR() float64 { return o.cfg.LR }

// SetLR implements Optimizer.
func (o *Adam) SetLR(lr float64) { o.cfg.LR = lr }

// Interface compliance checks.
var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Momentum)(nil)
	_ Optimizer = (*Adam)(nil)
)
