package opt

import (
	"math"
	"testing"
)

func TestConstSchedule(t *testing.T) {
	s := ConstSchedule{Rate: 0.1}
	for _, e := range []int{0, 1, 100} {
		if got := s.At(e); got != 0.1 {
			t.Fatalf("At(%d) = %v", e, got)
		}
	}
}

func TestStepSchedule(t *testing.T) {
	s := StepSchedule{Base: 1, Gamma: 0.1, Every: 10}
	cases := []struct {
		epoch int
		want  float64
	}{
		{0, 1}, {9, 1}, {10, 0.1}, {19, 0.1}, {20, 0.01},
	}
	for _, tc := range cases {
		if got := s.At(tc.epoch); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("At(%d) = %v, want %v", tc.epoch, got, tc.want)
		}
	}
	// Every=0 degrades gracefully to constant.
	if got := (StepSchedule{Base: 1, Gamma: 0.1}).At(50); got != 1 {
		t.Fatalf("Every=0 At(50) = %v", got)
	}
}

func TestCosineSchedule(t *testing.T) {
	s := CosineSchedule{Base: 1, Floor: 0.01, Total: 100}
	if got := s.At(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("At(0) = %v, want Base", got)
	}
	mid := s.At(50)
	want := 0.01 + 0.5*(1-0.01)
	if math.Abs(mid-want) > 1e-12 {
		t.Fatalf("At(50) = %v, want %v", mid, want)
	}
	if got := s.At(100); got != 0.01 {
		t.Fatalf("At(Total) = %v, want Floor", got)
	}
	if got := s.At(1000); got != 0.01 {
		t.Fatalf("past Total = %v, want Floor", got)
	}
	// Monotone decreasing over the annealing window.
	prev := math.Inf(1)
	for e := 0; e <= 100; e++ {
		cur := s.At(e)
		if cur > prev {
			t.Fatalf("cosine schedule increased at epoch %d", e)
		}
		prev = cur
	}
}

func TestApply(t *testing.T) {
	o, _ := NewSGD(Config{LR: 1})
	if err := Apply(o, StepSchedule{Base: 1, Gamma: 0.5, Every: 1}, 2); err != nil {
		t.Fatal(err)
	}
	if got := o.LR(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("LR after Apply = %v", got)
	}
	if err := Apply(nil, ConstSchedule{Rate: 1}, 0); err == nil {
		t.Fatal("nil optimiser accepted")
	}
	if err := Apply(o, CosineSchedule{Base: 1, Floor: 0, Total: 10}, 10); err == nil {
		t.Fatal("zero rate accepted")
	}
}
