package expt

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/simnet"
)

// QuantizePoint is one row of the uplink-compression ablation.
type QuantizePoint struct {
	// Bits is the quantization width (0 = raw float64).
	Bits int
	// Accuracy is mean test accuracy across client pipelines.
	Accuracy float64
	// UplinkBytes is one activation batch's wire size.
	UplinkBytes int
}

// QuantizeResult is the uplink-compression ablation: accuracy and wire
// cost as a function of activation quantization width.
type QuantizeResult struct {
	Points []QuantizePoint
	Table  *metrics.Table
}

// RunQuantizeAblation trains identical deployments with raw, 16-bit and
// 8-bit uplinks. The expected shape: large byte savings (8× / 4×) at
// negligible accuracy cost — quantization noise on smashed activations is
// small relative to SGD noise.
func RunQuantizeAblation(s Scale, seed uint64) (*QuantizeResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	gen := data.SynthCIFAR{
		Height: s.Model.Defaults().Height, Width: s.Model.Defaults().Width,
		Classes: s.Model.Defaults().Classes,
	}
	train, err := gen.GenerateBalanced(s.TrainPerClass, seed)
	if err != nil {
		return nil, err
	}
	test, err := gen.GenerateBalanced(s.TestPerClass, seed+1)
	if err != nil {
		return nil, err
	}
	mn, sd := train.Normalize()
	test.ApplyNormalization(mn, sd)
	shards, err := data.PartitionIID(train, s.Clients, mathx.NewRNG(seed+2))
	if err != nil {
		return nil, err
	}

	res := &QuantizeResult{
		Table: metrics.NewTable(
			fmt.Sprintf("Uplink quantization ablation (scale=%s, M=%d, cut=1)", s.Name, s.Clients),
			"bits", "uplink-bytes/batch", "accuracy-%"),
	}
	for _, bits := range []int{0, 16, 8} {
		dep, err := core.NewDeployment(core.Config{
			Model: s.Model, Cut: 1, Clients: s.Clients, Seed: seed,
			BatchSize: s.BatchSize, LR: s.LR, QuantizeBits: bits,
		}, shards)
		if err != nil {
			return nil, err
		}
		// Probe one batch's wire size before training (fresh deployment
		// probes then trains; the probe batch also trains, which is fine
		// for an ablation).
		probe, err := dep.Clients[0].ProduceBatch(0)
		if err != nil {
			return nil, err
		}
		uplink := 8 * probe.Payload.Size()
		if probe.WireSize > 0 {
			uplink = probe.WireSize
		}
		// Complete the probe round so the client is free again.
		if err := dep.Server.Enqueue(probe, 0); err != nil {
			return nil, err
		}
		reply, ok, err := dep.Server.ProcessNext(0)
		if err != nil || !ok {
			return nil, fmt.Errorf("expt: quantize probe round failed: %v", err)
		}
		if err := dep.Clients[0].ApplyGradient(reply); err != nil {
			return nil, err
		}

		paths := make([]*simnet.Path, s.Clients)
		for i := range paths {
			paths[i], err = simnet.NewSymmetricPath(
				simnet.Constant{D: time.Millisecond}, 0, mathx.NewRNG(seed+uint64(i)*13))
			if err != nil {
				return nil, err
			}
		}
		sim, err := core.NewSimulation(dep, core.SimConfig{
			Paths:             paths,
			MaxStepsPerClient: s.StepsPerClient,
		})
		if err != nil {
			return nil, err
		}
		if _, err := sim.Run(); err != nil {
			return nil, err
		}
		acc, _, err := dep.EvaluateMean(test)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, QuantizePoint{Bits: bits, Accuracy: acc, UplinkBytes: uplink})
		label := fmt.Sprintf("%d", bits)
		if bits == 0 {
			label = "raw(64)"
		}
		res.Table.AddRow(label, uplink, acc*100)
	}
	return res, nil
}
