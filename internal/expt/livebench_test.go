package expt

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"
)

func tinyBenchConfig(t *testing.T) LiveBenchConfig {
	t.Helper()
	s, err := ScaleByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	return LiveBenchConfig{
		Scale: s, Seed: 7, Steps: 3,
		Clients:  []int{1, 2},
		Policies: []string{"fifo"},
		Coalesce: []int{1, 2},
	}
}

// TestLiveBenchGridAndSchema runs a tiny grid end to end and checks the
// report round-trips through the JSON schema validator.
func TestLiveBenchGridAndSchema(t *testing.T) {
	cfg := tinyBenchConfig(t)
	cfg.MeasureOverhead = true
	report, err := RunLiveBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 clients × 1 policy × 2 coalesce + the bare overhead baseline
	// (the instrumented half of the pair is already a grid row).
	if len(report.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(report.Rows))
	}
	for _, row := range report.Rows {
		want := row.Clients * cfg.Steps
		if !row.Telemetry {
			// The bare overhead baseline runs a 4× window.
			want = row.Clients * cfg.Steps * 4
		}
		if row.ServerSteps != want {
			t.Errorf("row %s: server steps = %d, want %d", row.key(), row.ServerSteps, want)
		}
		if row.Telemetry && row.WaitP95 <= 0 {
			t.Errorf("row %s: instrumented cell has no wait quantiles", row.key())
		}
	}
	if report.Overhead == nil {
		t.Fatal("overhead pair not measured")
	}
	if report.Overhead.Clients != 2 {
		t.Errorf("overhead measured at %d clients, want 2", report.Overhead.Clients)
	}

	raw, err := MarshalBenchJSON(report)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateBenchJSON(raw)
	if err != nil {
		t.Fatalf("round-trip validation: %v\n%s", err, raw)
	}
	if len(back.Rows) != len(report.Rows) || back.Schema != BenchSchema {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
}

// TestLiveBenchNoGoroutineLeak pins the satellite fix: a multi-cell
// grid must tear down every cell's server, listener, and clients — the
// goroutine count after the run returns to (about) the starting count
// instead of growing per cell.
func TestLiveBenchNoGoroutineLeak(t *testing.T) {
	cfg := tinyBenchConfig(t)
	before := runtime.NumGoroutine()
	if _, err := RunLiveBench(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// Give exiting goroutines a moment to unwind.
	var after int
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		after = runtime.NumGoroutine()
		if after <= before+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if after > before+2 {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines grew %d → %d across a 4-cell grid\n%s", before, after, buf[:n])
	}
}

// TestValidateBenchJSONRejects covers the validator's failure modes.
func TestValidateBenchJSONRejects(t *testing.T) {
	cases := []struct {
		name, raw, want string
	}{
		{"garbage", "{", "bench JSON"},
		{"wrong schema", `{"schema":"stsl-bench/99","rows":[{"clients":1,"policy":"fifo","coalesce":1,"server_steps":3,"wall_seconds":1,"steps_per_sec":3}]}`, "schema"},
		{"no rows", `{"schema":"stsl-bench/1","rows":[]}`, "no rows"},
		{"zero throughput", `{"schema":"stsl-bench/1","rows":[{"clients":1,"policy":"fifo","coalesce":1,"server_steps":3,"wall_seconds":1,"steps_per_sec":0}]}`, "non-positive"},
		{"missing policy", `{"schema":"stsl-bench/1","rows":[{"clients":1,"coalesce":1,"server_steps":3,"wall_seconds":1,"steps_per_sec":3}]}`, "incomplete"},
		{"negative workers", `{"schema":"stsl-bench/1","rows":[{"clients":1,"policy":"fifo","coalesce":1,"workers":-2,"server_steps":3,"wall_seconds":1,"steps_per_sec":3}]}`, "negative workers"},
		{"workers 0 and 1 same cell", `{"schema":"stsl-bench/1","rows":[
			{"clients":1,"policy":"fifo","coalesce":1,"server_steps":3,"wall_seconds":1,"steps_per_sec":3},
			{"clients":1,"policy":"fifo","coalesce":1,"workers":1,"server_steps":3,"wall_seconds":1,"steps_per_sec":4}]}`, "duplicates"},
		{"duplicate cell", `{"schema":"stsl-bench/1","rows":[
			{"clients":1,"policy":"fifo","coalesce":1,"server_steps":3,"wall_seconds":1,"steps_per_sec":3},
			{"clients":1,"policy":"fifo","coalesce":1,"server_steps":3,"wall_seconds":1,"steps_per_sec":4}]}`, "duplicates"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateBenchJSON([]byte(tc.raw))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestLiveBenchWorkersAxis runs a grid spanning the data-parallel
// worker axis and checks the rows carry distinct keys, full step
// counts, and stay comparable with a pre-workers baseline (absent
// workers field == workers 1).
func TestLiveBenchWorkersAxis(t *testing.T) {
	cfg := tinyBenchConfig(t)
	cfg.Clients = []int{2}
	cfg.Coalesce = []int{1}
	cfg.Workers = []int{1, 2}
	report, err := RunLiveBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(report.Rows))
	}
	for i, w := range []int{1, 2} {
		row := report.Rows[i]
		if row.Workers != w {
			t.Errorf("row %d workers = %d, want %d", i, row.Workers, w)
		}
		if want := row.Clients * cfg.Steps; row.ServerSteps != want {
			t.Errorf("row %s: server steps = %d, want %d", row.key(), row.ServerSteps, want)
		}
	}
	if report.Rows[0].key() == report.Rows[1].key() {
		t.Fatalf("worker counts share a key: %s", report.Rows[0].key())
	}

	raw, err := MarshalBenchJSON(report)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateBenchJSON(raw); err != nil {
		t.Fatalf("workers-axis report fails validation: %v\n%s", err, raw)
	}

	// A baseline written before the axis existed (no workers field) must
	// gate against the new report's workers=1 rows: same cell, matched.
	legacy := &BenchReport{
		Schema: BenchSchema, Scale: report.Scale, Seed: report.Seed,
		StepsPerClient: report.StepsPerClient, Transport: report.Transport,
		Rows: []BenchRow{{
			Clients: 2, Policy: "fifo", Coalesce: 1, Telemetry: true,
			ServerSteps: 6, WallSeconds: 1,
			StepsPerSec: report.Rows[0].StepsPerSec * 10, // force a regression
		}},
	}
	regs, err := CompareBench(legacy, report, 0.10)
	if err != nil {
		t.Fatalf("legacy baseline did not match workers=1 row: %v", err)
	}
	if len(regs) != 1 {
		t.Fatalf("regressions vs inflated legacy baseline = %v, want exactly the workers=1 cell", regs)
	}
}

func benchFixture(rate float64) *BenchReport {
	return &BenchReport{
		Schema: BenchSchema, Scale: "tiny", StepsPerClient: 8, Transport: "pipe",
		Rows: []BenchRow{
			{Clients: 1, Policy: "fifo", Coalesce: 1, Telemetry: true,
				ServerSteps: 8, WallSeconds: 1, StepsPerSec: rate},
			{Clients: 4, Policy: "fifo", Coalesce: 4, Telemetry: true,
				ServerSteps: 32, WallSeconds: 1, StepsPerSec: rate * 3},
		},
	}
}

// TestCompareBenchGate is the acceptance check for the CI regression
// gate: a synthetic >10% throughput drop must fail, smaller wobble and
// improvements must pass.
func TestCompareBenchGate(t *testing.T) {
	old := benchFixture(100)

	// 15% drop on every cell: the gate must flag both.
	regs, err := CompareBench(old, benchFixture(85), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2 entries", regs)
	}
	if regs[0].Ratio > 0.86 || regs[0].Ratio < 0.84 {
		t.Errorf("ratio = %v, want ≈0.85", regs[0].Ratio)
	}
	if !strings.Contains(regs[0].String(), "steps/s") {
		t.Errorf("unreadable regression: %q", regs[0])
	}

	// 5% drop: within tolerance.
	if regs, err = CompareBench(old, benchFixture(95), 0.10); err != nil || len(regs) != 0 {
		t.Fatalf("5%% drop flagged: %v, %v", regs, err)
	}
	// Improvement: clean.
	if regs, err = CompareBench(old, benchFixture(120), 0.10); err != nil || len(regs) != 0 {
		t.Fatalf("improvement flagged: %v, %v", regs, err)
	}

	// One cell drops 20%, the other is fine — exactly one finding.
	cur := benchFixture(100)
	cur.Rows[1].StepsPerSec = 80 * 3
	regs, err = CompareBench(old, cur, 0.10)
	if err != nil || len(regs) != 1 {
		t.Fatalf("mixed drop: %v, %v", regs, err)
	}
	if !strings.Contains(regs[0].Key, "clients=4") {
		t.Errorf("flagged the wrong cell: %v", regs[0])
	}

	// Incomparable reports error out instead of silently passing.
	other := benchFixture(100)
	other.Scale = "paper"
	if _, err := CompareBench(old, other, 0.10); err == nil {
		t.Fatal("cross-scale compare did not error")
	}
	// Disjoint grids have nothing to gate — that is an error too.
	disjoint := benchFixture(100)
	for i := range disjoint.Rows {
		disjoint.Rows[i].Policy = "staleness"
	}
	if _, err := CompareBench(old, disjoint, 0.10); err == nil {
		t.Fatal("disjoint-grid compare did not error")
	}
	// Bad tolerance rejected.
	if _, err := CompareBench(old, benchFixture(100), 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
}
