// Package expt is the experiment registry: one runner per table/figure of
// the paper, each producing a rendered results table plus structured
// values that tests and benchmarks assert against. Every experiment runs
// at a configurable Scale so the same code serves quick CI runs and
// paper-scale reproductions (see EXPERIMENTS.md).
package expt

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/nn"
)

// Scale bundles the knobs that trade experiment fidelity for runtime.
type Scale struct {
	// Name labels output ("tiny", "small", "paper").
	Name string
	// Model is the CNN configuration.
	Model nn.PaperCNNConfig
	// TrainPerClass and TestPerClass size the SynthCIFAR datasets.
	TrainPerClass, TestPerClass int
	// Clients is the number of end-systems M.
	Clients int
	// StepsPerClient bounds each client's contributed batches.
	StepsPerClient int
	// BatchSize is the per-client batch size.
	BatchSize int
	// LR is the SGD learning rate.
	LR float64
	// Alpha is the Dirichlet non-IID concentration (used by the
	// experiments that study skew; Table I shards IID as the paper does).
	Alpha float64
	// Epochs drives the centralized baseline's training length when no
	// step-parity budget applies.
	Epochs int
	// Partition selects Table I's sharding: "iid" (paper's setting,
	// default) or "dirichlet".
	Partition string
	// Repeats averages accuracy-reporting experiments over this many
	// seeds (default 1). Seed variance at reduced scale is large enough
	// to mask the cut-depth trend without averaging.
	Repeats int
}

func (s Scale) repeats() int {
	if s.Repeats <= 0 {
		return 1
	}
	return s.Repeats
}

// totalSteps is the whole deployment's batch budget, used to give the
// centralized baseline the same number of updates (budget parity).
func (s Scale) totalSteps() int { return s.Clients * s.StepsPerClient }

// Validate rejects inconsistent scales.
func (s Scale) Validate() error {
	if s.TrainPerClass <= 0 || s.TestPerClass <= 0 {
		return fmt.Errorf("expt: scale %q needs positive dataset sizes", s.Name)
	}
	if s.Clients <= 0 || s.StepsPerClient <= 0 || s.BatchSize <= 0 {
		return fmt.Errorf("expt: scale %q needs positive clients/steps/batch", s.Name)
	}
	if s.LR <= 0 || s.Alpha <= 0 || s.Epochs <= 0 {
		return fmt.Errorf("expt: scale %q needs positive lr/alpha/epochs", s.Name)
	}
	return nil
}

// TinyScale runs in well under a second — used by unit tests. The model
// has two blocks, so cuts range over 0..2 only.
func TinyScale() Scale {
	return Scale{
		Name: "tiny",
		Model: nn.PaperCNNConfig{
			InChannels: 3, Height: 8, Width: 8,
			Filters: []int{4, 8}, Hidden: 16, Classes: 4,
		},
		TrainPerClass: 16, TestPerClass: 10,
		Clients: 2, StepsPerClient: 6, BatchSize: 8,
		LR: 0.05, Alpha: 0.5, Epochs: 2,
	}
}

// SmallScale preserves the paper's full 5-block, 10-class structure at
// reduced width and data volume; it runs in tens of seconds and is the
// default for `go test -bench`.
func SmallScale() Scale {
	return Scale{
		Name: "small",
		Model: nn.PaperCNNConfig{
			InChannels: 3, Height: 32, Width: 32,
			Filters: []int{8, 12, 16, 24, 32}, Hidden: 64, Classes: 10,
		},
		TrainPerClass: 60, TestPerClass: 25,
		Clients: 4, StepsPerClient: 150, BatchSize: 16,
		LR: 0.05, Alpha: 0.5, Epochs: 3,
		Repeats: 2,
	}
}

// PaperScale matches the paper's architecture exactly (Fig-3 filter
// counts, 10 classes, 32×32×3); dataset volume remains synthetic but
// substantial. Expect minutes-to-hours of runtime; used via
// cmd/stsl-bench -scale paper.
func PaperScale() Scale {
	return Scale{
		Name:          "paper",
		Model:         nn.PaperCNNConfig{}, // defaults = exact Fig 3
		TrainPerClass: 500, TestPerClass: 100,
		Clients: 4, StepsPerClient: 600, BatchSize: 32,
		LR: 0.05, Alpha: 0.5, Epochs: 8,
	}
}

// ScaleByName resolves "tiny", "small" or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return TinyScale(), nil
	case "small":
		return SmallScale(), nil
	case "paper":
		return PaperScale(), nil
	default:
		return Scale{}, fmt.Errorf("expt: unknown scale %q", name)
	}
}

// stdLatencies returns the heterogeneous per-client latency assignment
// used by the temporal experiments: client 0 far, the rest alternating
// near/regional.
func stdLatencies(clients int) []time.Duration {
	out := make([]time.Duration, clients)
	for i := range out {
		switch {
		case i == 0:
			out[i] = 80 * time.Millisecond // far
		case i%2 == 1:
			out[i] = 2 * time.Millisecond // near
		default:
			out[i] = 15 * time.Millisecond // regional
		}
	}
	return out
}
