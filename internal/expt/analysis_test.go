package expt

import (
	"strings"
	"testing"
)

func analysisFixture() *BenchReport {
	return &BenchReport{
		Schema: BenchSchema, Scale: "tiny", Seed: 7, StepsPerClient: 8, Transport: "pipe",
		Rows: []BenchRow{
			{Clients: 8, Policy: "fifo", Coalesce: 4, Workers: 1, Telemetry: true,
				ServerSteps: 64, WallSeconds: 1, StepsPerSec: 100, WaitP95: 0.002, FinalLoss: 1.2},
			{Clients: 8, Policy: "fifo", Coalesce: 4, Workers: 2, Telemetry: true,
				ServerSteps: 64, WallSeconds: 1, StepsPerSec: 180, WaitP95: 0.001, FinalLoss: 1.25},
			{Clients: 8, Policy: "fifo", Coalesce: 4, Workers: 4, Telemetry: true,
				ServerSteps: 64, WallSeconds: 1, StepsPerSec: 300, WaitP95: 0.001, FinalLoss: 1.3},
			{Clients: 8, Policy: "staleness", Coalesce: 4, Workers: 1, Telemetry: true,
				ServerSteps: 64, WallSeconds: 1, StepsPerSec: 95, WaitP95: 0.002, FinalLoss: 1.21},
		},
		Overhead: &BenchOverhead{Clients: 8, BareStepsPerSec: 102, InstrumentedStepsPerSec: 100, Fraction: 0.0196},
	}
}

// TestAnalyzeBench checks the markdown digest names the best cell per
// policy and computes worker-scaling speedup and efficiency.
func TestAnalyzeBench(t *testing.T) {
	md := AnalyzeBench(analysisFixture())

	for _, want := range []string{
		"# Live bench analysis",
		"## Best cell per policy",
		// fifo's best cell is the workers=4 row at 300 steps/s.
		"| fifo | 8 | 4 | 4 | float64 | 300.0 |",
		"| staleness | 8 | 4 | 1 | float64 | 95.0 |",
		"## Worker scaling",
		// workers=2: 180/100 = 1.80x speedup, 90% of linear.
		"| 1.80x | 90% |",
		// workers=4: 300/100 = 3.00x speedup, 75% of linear.
		"| 3.00x | 75% |",
		"## Telemetry overhead",
		"2.0% tax",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("analysis missing %q\n%s", want, md)
		}
	}
}

// TestAnalyzeBenchDTypes: cells measured at both precisions produce the
// float32-vs-float64 comparison table, keyed on otherwise-identical
// configuration; rows written before the dtype axis read as float64.
func TestAnalyzeBenchDTypes(t *testing.T) {
	r := analysisFixture()
	r.Rows = []BenchRow{
		{Clients: 8, Policy: "fifo", Coalesce: 4, Workers: 1, Telemetry: true,
			ServerSteps: 64, WallSeconds: 1, StepsPerSec: 100, FinalLoss: 1.2},
		{Clients: 8, Policy: "fifo", Coalesce: 4, Workers: 1, DType: "float32", Telemetry: true,
			ServerSteps: 64, WallSeconds: 1, StepsPerSec: 125, FinalLoss: 1.21},
	}
	md := AnalyzeBench(r)
	for _, want := range []string{
		"## Precision (float32 vs float64)",
		// 125/100 = 1.25x speedup, loss gap 1.21-1.20 = +0.01.
		"| 8 | fifo | 4 | 1 | 100.0 | 125.0 | 1.25x | +0.0100 |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("analysis missing %q\n%s", want, md)
		}
	}
	// The dtype-less f64 row and the f32 row differ only in precision, so
	// the worker-scaling section must not treat them as a scaling pair.
	if !strings.Contains(md, "No cell was measured at more than one worker count") {
		t.Errorf("worker scaling mixed precisions:\n%s", md)
	}
}

// TestAnalyzeBenchSingleWorker: a report with no multi-worker cells
// says so instead of emitting an empty table, and rows written before
// the workers axis (Workers == 0) read as 1.
func TestAnalyzeBenchSingleWorker(t *testing.T) {
	r := analysisFixture()
	r.Rows = r.Rows[:1]
	r.Rows[0].Workers = 0
	r.Overhead = nil
	md := AnalyzeBench(r)
	if !strings.Contains(md, "No cell was measured at more than one worker count") {
		t.Errorf("missing single-worker fallback:\n%s", md)
	}
	if !strings.Contains(md, "| fifo | 8 | 4 | 1 | float64 | 100.0 |") {
		t.Errorf("legacy workers=0 row not normalised to 1:\n%s", md)
	}
	if !strings.Contains(md, "No cell was measured at both precisions") {
		t.Errorf("missing single-precision fallback:\n%s", md)
	}
	if strings.Contains(md, "Telemetry overhead") {
		t.Errorf("overhead section emitted without overhead data:\n%s", md)
	}
}
