package expt

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/simnet"
)

// RobustnessPoint is one cell of the packet-loss sweep.
type RobustnessPoint struct {
	DropProb    float64
	Retransmits int
	VirtualTime time.Duration
	Accuracy    float64
}

// RobustnessResult is the loss-rate sweep: the protocol must complete the
// same training under loss, paying only in retransmissions and time.
type RobustnessResult struct {
	Points []RobustnessPoint
	Table  *metrics.Table
}

// RunRobustness sweeps link loss probability over a fixed per-client step
// budget. Accuracy should be essentially flat (same batches eventually
// trained), while retransmissions and virtual time grow with loss — the
// failure-injection experiment for the transport/simulation layer.
func RunRobustness(s Scale, seed uint64, dropProbs []float64) (*RobustnessResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(dropProbs) == 0 {
		dropProbs = []float64{0, 0.05, 0.15, 0.3}
	}
	gen := data.SynthCIFAR{
		Height: s.Model.Defaults().Height, Width: s.Model.Defaults().Width,
		Classes: s.Model.Defaults().Classes,
	}
	train, err := gen.GenerateBalanced(s.TrainPerClass, seed)
	if err != nil {
		return nil, err
	}
	test, err := gen.GenerateBalanced(s.TestPerClass, seed+1)
	if err != nil {
		return nil, err
	}
	mn, sd := train.Normalize()
	test.ApplyNormalization(mn, sd)
	shards, err := data.PartitionIID(train, s.Clients, mathx.NewRNG(seed+2))
	if err != nil {
		return nil, err
	}

	res := &RobustnessResult{
		Table: metrics.NewTable(
			fmt.Sprintf("Packet-loss robustness sweep (scale=%s, M=%d)", s.Name, s.Clients),
			"drop-prob", "retransmits", "virtual-time", "accuracy-%"),
	}
	for _, p := range dropProbs {
		if p < 0 || p >= 1 {
			return nil, fmt.Errorf("expt: drop probability %v out of [0,1)", p)
		}
		dep, err := core.NewDeployment(core.Config{
			Model: s.Model, Cut: 1, Clients: s.Clients, Seed: seed,
			BatchSize: s.BatchSize, LR: s.LR,
		}, shards)
		if err != nil {
			return nil, err
		}
		paths := make([]*simnet.Path, s.Clients)
		for i := range paths {
			paths[i], err = simnet.NewSymmetricPath(
				simnet.Constant{D: 5 * time.Millisecond}, 0, mathx.NewRNG(seed+uint64(i)*19))
			if err != nil {
				return nil, err
			}
			paths[i].Up.DropProb = p
			paths[i].Down.DropProb = p
		}
		sim, err := core.NewSimulation(dep, core.SimConfig{
			Paths:             paths,
			MaxStepsPerClient: s.StepsPerClient,
			RetransmitTimeout: 50 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		simRes, err := sim.Run()
		if err != nil {
			return nil, err
		}
		acc, _, err := dep.EvaluateMean(test)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, RobustnessPoint{
			DropProb: p, Retransmits: simRes.Retransmits,
			VirtualTime: simRes.VirtualDuration, Accuracy: acc,
		})
		res.Table.AddRow(fmt.Sprintf("%.2f", p), simRes.Retransmits,
			simRes.VirtualDuration.Round(time.Millisecond).String(), acc*100)
	}
	return res, nil
}
