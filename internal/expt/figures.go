package expt

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/baseline"
	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/privacy"
	"github.com/stsl/stsl/internal/simnet"
)

// Fig1Result reproduces the paper's Fig 1: basic (single end-system)
// split learning, demonstrating that the split protocol trains the same
// function as a monolithic network.
type Fig1Result struct {
	// SplitAccuracy is the single-client split model's test accuracy.
	SplitAccuracy float64
	// MonolithicAccuracy is the same architecture trained centrally on
	// the same data.
	MonolithicAccuracy float64
	// ServerSteps counts batches the server consumed.
	ServerSteps int
	Table       *metrics.Table
}

// RunFig1 trains the Fig-1 single-client split system and its monolithic
// twin.
func RunFig1(s Scale, seed uint64) (*Fig1Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	gen := data.SynthCIFAR{
		Height: s.Model.Defaults().Height, Width: s.Model.Defaults().Width,
		Classes: s.Model.Defaults().Classes,
	}
	train, err := gen.GenerateBalanced(s.TrainPerClass, seed)
	if err != nil {
		return nil, err
	}
	test, err := gen.GenerateBalanced(s.TestPerClass, seed+1)
	if err != nil {
		return nil, err
	}
	m, sd := train.Normalize()
	test.ApplyNormalization(m, sd)

	dep, res, err := baseline.TrainVanillaSplit(baseline.VanillaSplitConfig{
		Train: core.Config{
			Model: s.Model, Cut: 1, Seed: seed, BatchSize: s.BatchSize, LR: s.LR,
			SharedClientInit: true,
		},
		Steps: s.totalSteps(), // match total batch budget
	}, train)
	if err != nil {
		return nil, err
	}
	splitAcc, _, err := dep.EvaluateMean(test)
	if err != nil {
		return nil, err
	}
	cent, err := baseline.TrainCentralized(baseline.TrainConfig{
		Model: s.Model, Seed: seed, Epochs: s.Epochs, Steps: s.totalSteps(),
		BatchSize: s.BatchSize, LR: s.LR,
	}, train)
	if err != nil {
		return nil, err
	}
	cm, err := baseline.Evaluate(cent.Model, test)
	if err != nil {
		return nil, err
	}

	table := metrics.NewTable(
		fmt.Sprintf("Fig 1 — basic split learning, one end-system (scale=%s)", s.Name),
		"system", "accuracy-%", "server-steps")
	table.AddRow("monolithic", cm.Accuracy()*100, "-")
	table.AddRow("split(cut=1)", splitAcc*100, res.ServerSteps)
	return &Fig1Result{
		SplitAccuracy:      splitAcc,
		MonolithicAccuracy: cm.Accuracy(),
		ServerSteps:        res.ServerSteps,
		Table:              table,
	}, nil
}

// Fig2Result reproduces Fig 2: M end-systems sharing one server through
// the scheduling queue, with heterogeneous geo-distributed latencies.
type Fig2Result struct {
	// ClientCounts holds M values swept.
	ClientCounts []int
	// StepsPerClient[i] holds per-client contributions at ClientCounts[i].
	StepsPerClient [][]int
	// MaxOccupancy[i] is the queue high-water mark at ClientCounts[i].
	MaxOccupancy []int
	// MeanWait[i] is the mean queue wait at ClientCounts[i].
	MeanWait []time.Duration
	Table    *metrics.Table
}

// RunFig2 sweeps the number of end-systems and reports queue behaviour.
func RunFig2(s Scale, seed uint64, clientCounts []int) (*Fig2Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(clientCounts) == 0 {
		clientCounts = []int{2, 4, 8}
	}
	gen := data.SynthCIFAR{
		Height: s.Model.Defaults().Height, Width: s.Model.Defaults().Width,
		Classes: s.Model.Defaults().Classes,
	}
	res := &Fig2Result{
		ClientCounts: clientCounts,
		Table: metrics.NewTable(
			fmt.Sprintf("Fig 2 — spatio-temporal framework, M end-systems + queue (scale=%s)", s.Name),
			"M", "server-steps", "max-queue-occupancy", "mean-wait", "virtual-time"),
	}
	for _, m := range clientCounts {
		train, err := gen.GenerateBalanced(s.TrainPerClass, seed+uint64(m))
		if err != nil {
			return nil, err
		}
		train.Normalize()
		shards, err := data.PartitionDirichlet(train, m, s.Alpha, mathx.NewRNG(seed+uint64(m)+3))
		if err != nil {
			return nil, err
		}
		dep, err := core.NewDeployment(core.Config{
			Model: s.Model, Cut: 1, Clients: m, Seed: seed,
			BatchSize: s.BatchSize, LR: s.LR,
		}, shards)
		if err != nil {
			return nil, err
		}
		lat := stdLatencies(m)
		paths := make([]*simnet.Path, m)
		for i := range paths {
			paths[i], err = simnet.NewSymmetricPath(simnet.Constant{D: lat[i]}, 0, mathx.NewRNG(seed+uint64(i)*17))
			if err != nil {
				return nil, err
			}
		}
		sim, err := core.NewSimulation(dep, core.SimConfig{
			Paths:             paths,
			MaxStepsPerClient: s.StepsPerClient,
			ServerProcTime:    time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		simRes, err := sim.Run()
		if err != nil {
			return nil, err
		}
		res.StepsPerClient = append(res.StepsPerClient, simRes.StepsPerClient)
		res.MaxOccupancy = append(res.MaxOccupancy, dep.Server.QueueMetrics.MaxOccupancy())
		res.MeanWait = append(res.MeanWait, dep.Server.QueueMetrics.MeanWait())
		res.Table.AddRow(m, simRes.ServerSteps, dep.Server.QueueMetrics.MaxOccupancy(),
			dep.Server.QueueMetrics.MeanWait().String(), simRes.VirtualDuration.String())
	}
	return res, nil
}

// Fig3Result audits the Fig-3 CNN architecture.
type Fig3Result struct {
	// Summary is the per-layer shape/parameter table.
	Summary string
	// ParamCount is the total learnable parameter count.
	ParamCount int
	// CutShapes[k] is the activation shape crossing the network at cut k.
	CutShapes map[int][]int
}

// RunFig3 builds the paper's exact CNN and reports its structure and the
// activation geometry at every possible cut.
func RunFig3(cfg nn.PaperCNNConfig, seed uint64) (*Fig3Result, error) {
	model, err := nn.BuildPaperCNN(cfg, mathx.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	c := model.Config
	in := []int{c.InChannels, c.Height, c.Width}
	summary, err := model.Net.Summary(in)
	if err != nil {
		return nil, err
	}
	cutShapes := make(map[int][]int)
	for cut := 0; cut <= model.MaxCut(); cut++ {
		client, _, err := core.Split(model, cut)
		if err != nil {
			return nil, err
		}
		shape, err := client.OutShape(in)
		if err != nil {
			return nil, err
		}
		cutShapes[cut] = shape
	}
	return &Fig3Result{
		Summary:    summary,
		ParamCount: model.Net.ParamCount(),
		CutShapes:  cutShapes,
	}, nil
}

// Fig4Result aggregates the Fig-4 privacy experiment over several images.
type Fig4Result struct {
	// MeanEdgeCorr holds mean fine-detail leakage per stage
	// (original, conv-l1, l1).
	MeanEdgeCorr [3]float64
	// MeanCorr holds mean structural correlation per stage.
	MeanCorr [3]float64
	// MonotoneFraction is the fraction of images with strictly
	// decreasing edge leak.
	MonotoneFraction float64
	Table            *metrics.Table
}

// RunFig4 measures what first-layer activations reveal, averaged over
// images; when outDir is non-empty the first image's three stages are
// written as PNGs.
func RunFig4(s Scale, seed uint64, images int, outDir string) (*Fig4Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if images <= 0 {
		images = 8
	}
	cfg := s.Model.Defaults()
	model, err := nn.BuildPaperCNN(cfg, mathx.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	gen := data.SynthCIFAR{Height: cfg.Height, Width: cfg.Width, Classes: cfg.Classes, Noise: 0.03}
	ds, err := gen.Generate(images, seed+7)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{}
	monotone := 0
	for i := 0; i < images; i++ {
		dir := ""
		if i == 0 {
			dir = outDir
		}
		one, err := privacy.RunFig4(model, ds.Image(i), dir)
		if err != nil {
			return nil, err
		}
		for sIdx, st := range one.Stages {
			res.MeanEdgeCorr[sIdx] += st.Leak.EdgeCorrelation
			res.MeanCorr[sIdx] += st.Leak.Correlation
		}
		if one.Monotone() {
			monotone++
		}
	}
	for i := range res.MeanEdgeCorr {
		res.MeanEdgeCorr[i] /= float64(images)
		res.MeanCorr[i] /= float64(images)
	}
	res.MonotoneFraction = float64(monotone) / float64(images)

	res.Table = metrics.NewTable(
		fmt.Sprintf("Fig 4 — image leakage through the first block (scale=%s, %d images)", s.Name, images),
		"stage", "edge-corr (detail leak)", "corr (structure leak)")
	names := []string{"(a) original", "(b) Conv2D in L1", "(c) L1 (conv+maxpool)"}
	for i, n := range names {
		res.Table.AddRow(n, fmt.Sprintf("%.3f", res.MeanEdgeCorr[i]), fmt.Sprintf("%.3f", res.MeanCorr[i]))
	}
	return res, nil
}
