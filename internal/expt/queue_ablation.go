package expt

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/simnet"
)

// QueuePolicyOutcome is one policy's result in the scheduling ablation.
type QueuePolicyOutcome struct {
	Policy string
	// StepsPerClient counts contributions (client 0 is the far client).
	StepsPerClient []int
	// Imbalance is (max-min)/max of per-client service counts.
	Imbalance float64
	// MeanAccuracy is mean test accuracy over client pipelines.
	MeanAccuracy float64
	// FarClientRecall is the mean recall on the classes that dominate
	// the far client's shard — the classes FIFO starves.
	FarClientRecall float64
	// VirtualTime is the run's virtual duration.
	VirtualTime time.Duration
}

// QueueAblationResult compares scheduling policies under skewed latency.
type QueueAblationResult struct {
	Outcomes []QueuePolicyOutcome
	Table    *metrics.Table
}

// RunQueueAblation reproduces the §II claim: one far end-system plus
// near ones, non-IID shards, fixed virtual-time horizon. Under FIFO the
// far client contributes few updates and its dominant classes suffer;
// gated scheduling (sync-rounds) equalises contributions.
func RunQueueAblation(s Scale, seed uint64, policies []string, horizon time.Duration) (*QueueAblationResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(policies) == 0 {
		policies = []string{"fifo", "staleness", "fair-rr", "sync-rounds"}
	}
	if horizon <= 0 {
		horizon = 10 * time.Second
	}
	gen := data.SynthCIFAR{
		Height: s.Model.Defaults().Height, Width: s.Model.Defaults().Width,
		Classes: s.Model.Defaults().Classes,
	}
	train, err := gen.GenerateBalanced(s.TrainPerClass, seed)
	if err != nil {
		return nil, err
	}
	test, err := gen.GenerateBalanced(s.TestPerClass, seed+1)
	if err != nil {
		return nil, err
	}
	mn, sd := train.Normalize()
	test.ApplyNormalization(mn, sd)
	shards, err := data.PartitionDirichlet(train, s.Clients, s.Alpha, mathx.NewRNG(seed+2))
	if err != nil {
		return nil, err
	}
	// The far client's dominant classes: those where its shard holds the
	// plurality of examples.
	farClasses := dominantClasses(shards, 0)

	res := &QueueAblationResult{
		Table: metrics.NewTable(
			fmt.Sprintf("Queue scheduling ablation (scale=%s, horizon=%v, far client=0)", s.Name, horizon),
			"policy", "far-steps", "near-steps(max)", "imbalance", "mean-acc-%", "far-class-recall-%"),
	}
	for _, pol := range policies {
		dep, err := core.NewDeployment(core.Config{
			Model: s.Model, Cut: 1, Clients: s.Clients, Seed: seed,
			BatchSize: s.BatchSize, LR: s.LR, QueuePolicy: pol,
		}, shards)
		if err != nil {
			return nil, err
		}
		lat := stdLatencies(s.Clients)
		paths := make([]*simnet.Path, s.Clients)
		for i := range paths {
			paths[i], err = simnet.NewSymmetricPath(simnet.Constant{D: lat[i]}, 0, mathx.NewRNG(seed+uint64(i)*23))
			if err != nil {
				return nil, err
			}
		}
		sim, err := core.NewSimulation(dep, core.SimConfig{
			Paths:          paths,
			TimeLimit:      horizon,
			ServerProcTime: time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		simRes, err := sim.Run()
		if err != nil {
			return nil, fmt.Errorf("expt: queue ablation %s: %w", pol, err)
		}
		meanAcc, _, err := dep.EvaluateMean(test)
		if err != nil {
			return nil, err
		}
		// Far-class recall through the far client's own pipeline.
		cm, err := dep.Evaluate(0, test)
		if err != nil {
			return nil, err
		}
		recalls := cm.PerClassRecall()
		farRecall := 0.0
		if len(farClasses) > 0 {
			for _, c := range farClasses {
				farRecall += recalls[c]
			}
			farRecall /= float64(len(farClasses))
		}

		maxNear := 0
		for i := 1; i < len(simRes.StepsPerClient); i++ {
			if simRes.StepsPerClient[i] > maxNear {
				maxNear = simRes.StepsPerClient[i]
			}
		}
		out := QueuePolicyOutcome{
			Policy:          pol,
			StepsPerClient:  simRes.StepsPerClient,
			Imbalance:       dep.Server.QueueMetrics.ServiceImbalance(),
			MeanAccuracy:    meanAcc,
			FarClientRecall: farRecall,
			VirtualTime:     simRes.VirtualDuration,
		}
		res.Outcomes = append(res.Outcomes, out)
		res.Table.AddRow(pol, simRes.StepsPerClient[0], maxNear,
			fmt.Sprintf("%.3f", out.Imbalance), meanAcc*100, farRecall*100)
	}
	return res, nil
}

// dominantClasses returns the classes for which shard `idx` holds at
// least as many examples as any other shard.
func dominantClasses(shards []*data.Dataset, idx int) []int {
	if len(shards) == 0 {
		return nil
	}
	classes := shards[0].Classes
	var out []int
	for c := 0; c < classes; c++ {
		best, bestShard := -1, -1
		for si, s := range shards {
			cnt := s.ClassCounts()[c]
			if cnt > best {
				best, bestShard = cnt, si
			}
		}
		if bestShard == idx && best > 0 {
			out = append(out, c)
		}
	}
	return out
}
