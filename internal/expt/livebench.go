package expt

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"github.com/stsl/stsl/internal/cluster"
	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/obs"
)

// BenchSchema is the version tag every live-bench JSON report carries.
// Readers (the CI regression gate, -compare) refuse other schemas, so
// changing the row shape means bumping this string.
const BenchSchema = "stsl-bench/1"

// LiveBenchConfig parameterises one grid run of the live-cluster
// throughput benchmark: the cross product of Clients × Policies ×
// Coalesce, each cell a full cluster.Run over the wire protocol.
type LiveBenchConfig struct {
	// Scale picks the model/batch configuration (tiny|small|paper).
	Scale Scale
	// Seed drives data generation and model init identically per cell.
	Seed uint64
	// Steps is the per-client batch budget of every cell.
	Steps int
	// Clients, Policies, Coalesce span the grid. Empty slices default to
	// {1, 4, 8}, {fifo}, {1, 4}.
	Clients  []int
	Policies []string
	Coalesce []int
	// Workers spans the data-parallel replica axis (cluster.Config.Workers
	// per cell). Empty defaults to {1} — the classic single-replica
	// server, which keeps reports comparable with pre-workers baselines.
	Workers []int
	// DTypes spans the precision axis (core.Config.DType per cell:
	// "float64" or "float32"). Empty defaults to {"float64"}, which keeps
	// reports comparable with pre-dtype baselines.
	DTypes []string
	// Transport selects the carrier (default pipe: full wire framing,
	// no sockets).
	Transport cluster.Transport
	// MeasureOverhead appends a bare-vs-instrumented pair at the largest
	// client count, recording the telemetry tax as an explicit fraction
	// in the report. The instrumented grid rows always carry telemetry.
	MeasureOverhead bool
	// Repeats measures every cell this many times and keeps the
	// best-throughput run (0/1 = once). Short cells wobble ±20% with
	// scheduler noise; best-of-N is what makes a 10% regression gate
	// usable — the regression CI runs with Repeats ≥ 3.
	Repeats int
	// Progress, when non-nil, receives each completed row (for CLI
	// streaming output).
	Progress func(BenchRow)
}

// BenchRow is one measured grid cell. Field names are part of the
// stsl-bench/1 schema — append, never rename.
type BenchRow struct {
	Clients  int    `json:"clients"`
	Policy   string `json:"policy"`
	Coalesce int    `json:"coalesce"`
	// Workers is the cell's data-parallel replica count. Absent/0 in
	// reports written before the axis existed and means 1 — key()
	// normalises, so old baselines still match their single-worker cells.
	Workers int `json:"workers,omitempty"`
	// DType is the cell's compute/wire precision. Absent/"" in reports
	// written before the axis existed and means float64 — key()
	// normalises, so old baselines still match their float64 cells.
	DType       string  `json:"dtype,omitempty"`
	Telemetry   bool    `json:"telemetry"`
	ServerSteps int     `json:"server_steps"`
	WallSeconds float64 `json:"wall_seconds"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// Queue wait quantiles (seconds) from the cell's telemetry; zero in
	// bare (telemetry=false) overhead rows.
	WaitP50       float64 `json:"wait_p50_seconds"`
	WaitP95       float64 `json:"wait_p95_seconds"`
	WaitP99       float64 `json:"wait_p99_seconds"`
	MaxQueueDepth int     `json:"max_queue_depth"`
	FinalLoss     float64 `json:"final_loss"`
}

// key identifies a row across reports for the regression gate. Workers
// 0 (reports predating the axis) and 1 are the same cell, as are DType
// "" and "float64".
func (r BenchRow) key() string {
	w := r.Workers
	if w == 0 {
		w = 1
	}
	dt := r.DType
	if dt == "" {
		dt = "float64"
	}
	return fmt.Sprintf("clients=%d policy=%s coalesce=%d workers=%d dtype=%s telemetry=%v",
		r.Clients, r.Policy, r.Coalesce, w, dt, r.Telemetry)
}

// BenchOverhead is the measured telemetry tax at the largest grid
// client count: one bare run vs one fully instrumented run.
type BenchOverhead struct {
	Clients                 int     `json:"clients"`
	BareStepsPerSec         float64 `json:"bare_steps_per_sec"`
	InstrumentedStepsPerSec float64 `json:"instrumented_steps_per_sec"`
	// Fraction is 1 − instrumented/bare: positive means telemetry cost
	// throughput, negative means noise favoured the instrumented run.
	Fraction float64 `json:"fraction"`
}

// BenchReport is the schema-stable JSON artifact of one live-bench run
// — the unit the per-PR BENCH snapshots and the CI regression gate
// exchange.
type BenchReport struct {
	Schema         string         `json:"schema"`
	Scale          string         `json:"scale"`
	Seed           uint64         `json:"seed"`
	StepsPerClient int            `json:"steps_per_client"`
	Transport      string         `json:"transport"`
	Rows           []BenchRow     `json:"rows"`
	Overhead       *BenchOverhead `json:"overhead,omitempty"`
}

func (c LiveBenchConfig) withDefaults() LiveBenchConfig {
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 4, 8}
	}
	if len(c.Policies) == 0 {
		c.Policies = []string{"fifo"}
	}
	if len(c.Coalesce) == 0 {
		c.Coalesce = []int{1, 4}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1}
	}
	if len(c.DTypes) == 0 {
		c.DTypes = []string{"float64"}
	}
	if c.Transport == "" {
		c.Transport = cluster.TransportPipe
	}
	if c.Steps <= 0 {
		c.Steps = 8
	}
	if c.Repeats <= 0 {
		c.Repeats = 1
	}
	return c
}

// RunLiveBench measures live-cluster training throughput across the
// configured grid and returns the schema-stable report.
//
// All instrumented cells share ONE obs.Registry, Reset between cells:
// metric series are registered once and reused, so a full grid allocates
// the same telemetry state as a single run and leaks nothing per cell
// (each cell's server, listener, and clients are torn down by
// cluster.Run before the next cell starts — the bench smoke test pins
// this with a goroutine-count assertion).
func RunLiveBench(ctx context.Context, cfg LiveBenchConfig) (*BenchReport, error) {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	report := &BenchReport{
		Schema:         BenchSchema,
		Scale:          cfg.Scale.Name,
		Seed:           cfg.Seed,
		StepsPerClient: cfg.Steps,
		Transport:      string(cfg.Transport),
	}

	for _, policy := range cfg.Policies {
		for _, m := range cfg.Clients {
			for _, b := range cfg.Coalesce {
				for _, w := range cfg.Workers {
					for _, dt := range cfg.DTypes {
						row, err := runBenchCell(ctx, cfg, reg, policy, m, b, w, dt)
						if err != nil {
							return nil, fmt.Errorf("expt: bench cell %s/%d clients/coalesce %d/workers %d/dtype %s: %w",
								policy, m, b, w, dt, err)
						}
						report.Rows = append(report.Rows, row)
						if cfg.Progress != nil {
							cfg.Progress(row)
						}
					}
				}
			}
		}
	}

	if cfg.MeasureOverhead {
		m := cfg.Clients[len(cfg.Clients)-1]
		policy, b := cfg.Policies[0], cfg.Coalesce[len(cfg.Coalesce)-1]
		// The overhead pair stays on the first (baseline) worker count
		// and precision — the tax being measured is telemetry's, not the
		// sync barrier's or the float32 kernels'.
		w := cfg.Workers[0]
		dt := cfg.DTypes[0]
		// The overhead pair runs 4× the grid's step budget (a longer
		// window amortises per-run startup jitter) and best-of-N (at
		// least 3) alternating bare/instrumented, so scheduler and GC
		// noise — which dwarfs the few-atomics record path on short
		// cells — cancels instead of landing on one side.
		ovCfg := cfg
		ovCfg.Steps = cfg.Steps * 4
		reps := cfg.Repeats
		if reps < 3 {
			reps = 3
		}
		var bare, instr BenchRow
		for rep := 0; rep < reps; rep++ {
			bareRep, err := runBenchCellOnce(ctx, ovCfg, nil, policy, m, b, w, dt)
			if err != nil {
				return nil, fmt.Errorf("expt: bench overhead bare run: %w", err)
			}
			instrRep, err := runBenchCellOnce(ctx, ovCfg, reg, policy, m, b, w, dt)
			if err != nil {
				return nil, fmt.Errorf("expt: bench overhead instrumented run: %w", err)
			}
			if rep == 0 || bareRep.StepsPerSec > bare.StepsPerSec {
				bare = bareRep
			}
			if rep == 0 || instrRep.StepsPerSec > instr.StepsPerSec {
				instr = instrRep
			}
		}
		// Only the bare row joins Rows — the instrumented cell with the
		// same config already exists there from the grid pass, and rows
		// must be unique per (clients, policy, coalesce, telemetry).
		report.Rows = append(report.Rows, bare)
		if cfg.Progress != nil {
			cfg.Progress(bare)
			cfg.Progress(instr)
		}
		report.Overhead = &BenchOverhead{
			Clients:                 m,
			BareStepsPerSec:         bare.StepsPerSec,
			InstrumentedStepsPerSec: instr.StepsPerSec,
			Fraction:                1 - instr.StepsPerSec/bare.StepsPerSec,
		}
	}
	return report, nil
}

// runBenchCell measures one grid cell cfg.Repeats times and returns the
// best-throughput run. reg == nil runs bare (telemetry fully off — the
// overhead baseline); otherwise the shared registry is Reset and
// attached so the cell's wait quantiles land in the row.
func runBenchCell(ctx context.Context, cfg LiveBenchConfig, reg *obs.Registry, policy string, clients, coalesce, workers int, dtype string) (BenchRow, error) {
	var best BenchRow
	for rep := 0; rep < cfg.Repeats; rep++ {
		row, err := runBenchCellOnce(ctx, cfg, reg, policy, clients, coalesce, workers, dtype)
		if err != nil {
			return BenchRow{}, err
		}
		if rep == 0 || row.StepsPerSec > best.StepsPerSec {
			best = row
		}
	}
	return best, nil
}

func runBenchCellOnce(ctx context.Context, cfg LiveBenchConfig, reg *obs.Registry, policy string, clients, coalesce, workers int, dtype string) (BenchRow, error) {
	s := cfg.Scale
	gen := data.SynthCIFAR{Height: s.Model.Height, Width: s.Model.Width, Classes: s.Model.Classes}
	ds, err := gen.Generate(s.BatchSize*2*clients, cfg.Seed)
	if err != nil {
		return BenchRow{}, err
	}
	shards, err := data.PartitionIID(ds, clients, mathx.NewRNG(cfg.Seed+1))
	if err != nil {
		return BenchRow{}, err
	}
	dep, err := core.NewDeployment(core.Config{
		Model: s.Model, Cut: 1, Clients: clients, Seed: cfg.Seed,
		BatchSize: s.BatchSize, LR: s.LR,
		QueuePolicy: policy, BatchCoalesce: coalesce, DType: dtype,
	}, shards)
	if err != nil {
		return BenchRow{}, err
	}
	runnerCfg := cluster.RunnerConfig{
		StepsPerClient: cfg.Steps,
		Transport:      cfg.Transport,
	}
	if workers > 1 {
		// The runner auto-wires dep.NewServerReplica as the replica
		// factory whenever Workers > 1 with no explicit NewReplica.
		runnerCfg.Cluster.Workers = workers
	}
	if reg != nil {
		reg.Reset()
		runnerCfg.Cluster.Obs = reg
	}
	res, err := cluster.Run(ctx, dep, runnerCfg)
	if err != nil {
		return BenchRow{}, err
	}
	row := BenchRow{
		Clients:       clients,
		Policy:        policy,
		Coalesce:      coalesce,
		Workers:       workers,
		DType:         dtype,
		Telemetry:     reg != nil,
		ServerSteps:   res.ServerSteps,
		WallSeconds:   res.WallDuration.Seconds(),
		StepsPerSec:   float64(res.ServerSteps) / res.WallDuration.Seconds(),
		MaxQueueDepth: res.Snapshot.MaxQueueDepth,
		FinalLoss:     res.FinalLoss,
	}
	if reg != nil {
		wait := reg.Histogram("stsl_queue_wait_seconds", obs.Labels{"policy": policy})
		row.WaitP50 = wait.Quantile(0.50)
		row.WaitP95 = wait.Quantile(0.95)
		row.WaitP99 = wait.Quantile(0.99)
	}
	return row, nil
}

// MarshalBenchJSON renders a report as the stable on-disk artifact:
// indented, trailing newline, rows in grid order.
func MarshalBenchJSON(r *BenchReport) ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ValidateBenchJSON parses raw bytes as a BenchReport and checks the
// structural invariants the regression gate relies on: the schema tag,
// at least one row, and positive throughput everywhere.
func ValidateBenchJSON(raw []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("expt: bench JSON: %w", err)
	}
	if r.Schema != BenchSchema {
		return nil, fmt.Errorf("expt: bench JSON schema %q, want %q", r.Schema, BenchSchema)
	}
	if len(r.Rows) == 0 {
		return nil, fmt.Errorf("expt: bench JSON has no rows")
	}
	seen := map[string]bool{}
	for i, row := range r.Rows {
		if row.Clients <= 0 || row.Coalesce <= 0 || row.Policy == "" {
			return nil, fmt.Errorf("expt: bench row %d has incomplete config: %+v", i, row)
		}
		if row.Workers < 0 {
			return nil, fmt.Errorf("expt: bench row %d has negative workers: %+v", i, row)
		}
		if row.StepsPerSec <= 0 || row.WallSeconds <= 0 || row.ServerSteps <= 0 {
			return nil, fmt.Errorf("expt: bench row %d has non-positive measurements: %+v", i, row)
		}
		if seen[row.key()] {
			return nil, fmt.Errorf("expt: bench row %d duplicates %s", i, row.key())
		}
		seen[row.key()] = true
	}
	return &r, nil
}

// BenchRegression is one grid cell whose throughput dropped past the
// gate's tolerance between two reports.
type BenchRegression struct {
	Key   string  // row identity (clients/policy/coalesce/telemetry)
	Old   float64 // baseline steps/s
	New   float64 // measured steps/s
	Ratio float64 // New/Old
}

func (b BenchRegression) String() string {
	return fmt.Sprintf("%s: %.1f → %.1f steps/s (%.0f%%)", b.Key, b.Old, b.New, b.Ratio*100)
}

// CompareBench diffs two reports row by row: a cell present in both
// whose new throughput fell below old×(1−tolerance) is a regression.
// Cells only present on one side are skipped (grids may grow between
// PRs), as are schema-compatible reports at different scales or step
// budgets — those are not comparable measurements and comparing them
// is an error.
func CompareBench(old, cur *BenchReport, tolerance float64) ([]BenchRegression, error) {
	if tolerance <= 0 || tolerance >= 1 {
		return nil, fmt.Errorf("expt: bench tolerance %v out of (0,1)", tolerance)
	}
	if old.Scale != cur.Scale || old.StepsPerClient != cur.StepsPerClient || old.Transport != cur.Transport {
		return nil, fmt.Errorf("expt: bench reports not comparable: %s/%d/%s vs %s/%d/%s",
			old.Scale, old.StepsPerClient, old.Transport, cur.Scale, cur.StepsPerClient, cur.Transport)
	}
	baseline := map[string]BenchRow{}
	for _, row := range old.Rows {
		baseline[row.key()] = row
	}
	var regressions []BenchRegression
	matched := 0
	for _, row := range cur.Rows {
		base, ok := baseline[row.key()]
		if !ok || base.StepsPerSec <= 0 {
			continue
		}
		matched++
		ratio := row.StepsPerSec / base.StepsPerSec
		if ratio < 1-tolerance {
			regressions = append(regressions, BenchRegression{
				Key: row.key(), Old: base.StepsPerSec, New: row.StepsPerSec, Ratio: ratio,
			})
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("expt: bench reports share no grid cells — nothing to gate")
	}
	sort.Slice(regressions, func(i, j int) bool { return regressions[i].Ratio < regressions[j].Ratio })
	return regressions, nil
}
