package expt

import (
	"strings"
	"testing"
)

func TestRunQuantizeAblationTiny(t *testing.T) {
	res, err := RunQuantizeAblation(TinyScale(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	raw, q16, q8 := res.Points[0], res.Points[1], res.Points[2]
	if raw.Bits != 0 || q16.Bits != 16 || q8.Bits != 8 {
		t.Fatalf("bit order %v", res.Points)
	}
	// Wire savings: raw > 16-bit > 8-bit.
	if !(raw.UplinkBytes > q16.UplinkBytes && q16.UplinkBytes > q8.UplinkBytes) {
		t.Fatalf("wire sizes not monotone: %d %d %d",
			raw.UplinkBytes, q16.UplinkBytes, q8.UplinkBytes)
	}
	// 8-bit must be at least 6x smaller than raw float64.
	if raw.UplinkBytes < 6*q8.UplinkBytes {
		t.Fatalf("8-bit compression ratio too low: %d vs %d", raw.UplinkBytes, q8.UplinkBytes)
	}
	for _, p := range res.Points {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Fatalf("accuracy %v", p.Accuracy)
		}
	}
	if !strings.Contains(res.Table.String(), "raw(64)") {
		t.Fatal("table missing raw row")
	}
}

func TestRunRobustnessTiny(t *testing.T) {
	res, err := RunRobustness(TinyScale(), 13, []float64{0, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	clean, lossy := res.Points[0], res.Points[1]
	if clean.Retransmits != 0 {
		t.Fatalf("clean run had %d retransmits", clean.Retransmits)
	}
	if lossy.Retransmits == 0 {
		t.Fatal("25% loss produced no retransmits")
	}
	if lossy.VirtualTime <= clean.VirtualTime {
		t.Fatalf("lossy time %v not above clean %v", lossy.VirtualTime, clean.VirtualTime)
	}
	if _, err := RunRobustness(TinyScale(), 13, []float64{1.5}); err == nil {
		t.Fatal("drop prob 1.5 accepted")
	}
}
