package expt

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/simnet"
)

// SweepPoint is one (cut, clients) cell of the X2 tradeoff sweep.
type SweepPoint struct {
	Cut      int
	Clients  int
	Accuracy float64
}

// SweepResult is the cut × client-count accuracy surface — the curve form
// of Table I plus the paper's §II tradeoff claim ("degradation can be
// larger when more hidden layers are in end-systems").
type SweepResult struct {
	Points []SweepPoint
	Table  *metrics.Table
}

// RunCutSweep trains a deployment per (cut, M) cell and reports mean test
// accuracy.
func RunCutSweep(s Scale, seed uint64, cuts []int, clientCounts []int) (*SweepResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	maxCut := len(s.Model.Defaults().Filters)
	if len(cuts) == 0 {
		for c := 0; c <= maxCut; c++ {
			cuts = append(cuts, c)
		}
	}
	if len(clientCounts) == 0 {
		clientCounts = []int{2, 4}
	}
	gen := data.SynthCIFAR{
		Height: s.Model.Defaults().Height, Width: s.Model.Defaults().Width,
		Classes: s.Model.Defaults().Classes,
	}
	train, err := gen.GenerateBalanced(s.TrainPerClass, seed)
	if err != nil {
		return nil, err
	}
	test, err := gen.GenerateBalanced(s.TestPerClass, seed+1)
	if err != nil {
		return nil, err
	}
	mn, sd := train.Normalize()
	test.ApplyNormalization(mn, sd)

	res := &SweepResult{
		Table: metrics.NewTable(
			fmt.Sprintf("Cut × clients accuracy sweep (scale=%s)", s.Name),
			"cut", "clients", "accuracy-%"),
	}
	for _, m := range clientCounts {
		shards, err := data.PartitionDirichlet(train, m, s.Alpha, mathx.NewRNG(seed+uint64(m)*5))
		if err != nil {
			return nil, err
		}
		for _, cut := range cuts {
			if cut < 0 || cut > maxCut {
				return nil, fmt.Errorf("expt: sweep cut %d out of range", cut)
			}
			dep, err := core.NewDeployment(core.Config{
				Model: s.Model, Cut: cut, Clients: m, Seed: seed + uint64(cut)*31,
				BatchSize: s.BatchSize, LR: s.LR,
			}, shards)
			if err != nil {
				return nil, err
			}
			paths := make([]*simnet.Path, m)
			for i := range paths {
				paths[i], err = simnet.NewSymmetricPath(
					simnet.Constant{D: time.Millisecond}, 0, mathx.NewRNG(seed+uint64(i)*3))
				if err != nil {
					return nil, err
				}
			}
			sim, err := core.NewSimulation(dep, core.SimConfig{
				Paths:             paths,
				MaxStepsPerClient: s.StepsPerClient,
			})
			if err != nil {
				return nil, err
			}
			if _, err := sim.Run(); err != nil {
				return nil, err
			}
			acc, _, err := dep.EvaluateMean(test)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, SweepPoint{Cut: cut, Clients: m, Accuracy: acc})
			res.Table.AddRow(cut, m, acc*100)
		}
	}
	return res, nil
}
