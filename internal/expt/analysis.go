package expt

import (
	"fmt"
	"sort"
	"strings"
)

// AnalyzeBench renders a human-readable markdown digest of one bench
// report: the best-throughput cell per queue policy, and — when the
// report spans more than one worker count — the speedup and scaling
// efficiency of every multi-replica cell against the smallest worker
// count measured for the same (clients, policy, coalesce, telemetry)
// configuration. This is what `stsl-bench -analysis` writes as
// analysis.md next to the BENCH snapshot.
func AnalyzeBench(r *BenchReport) string {
	var b strings.Builder
	b.WriteString("# Live bench analysis\n\n")
	fmt.Fprintf(&b, "Scale `%s`, seed %d, %d steps/client, transport `%s`, %d rows.\n\n",
		r.Scale, r.Seed, r.StepsPerClient, r.Transport, len(r.Rows))

	writeBestPerPolicy(&b, r)
	writeWorkerScaling(&b, r)
	writeDTypeComparison(&b, r)

	if r.Overhead != nil {
		b.WriteString("## Telemetry overhead\n\n")
		fmt.Fprintf(&b, "At %d clients: %.1f steps/s bare vs %.1f instrumented — a %.1f%% tax.\n",
			r.Overhead.Clients, r.Overhead.BareStepsPerSec,
			r.Overhead.InstrumentedStepsPerSec, r.Overhead.Fraction*100)
	}
	return b.String()
}

func writeBestPerPolicy(b *strings.Builder, r *BenchReport) {
	best := map[string]BenchRow{}
	var policies []string
	for _, row := range r.Rows {
		cur, seen := best[row.Policy]
		if !seen {
			policies = append(policies, row.Policy)
		}
		if !seen || row.StepsPerSec > cur.StepsPerSec {
			best[row.Policy] = row
		}
	}
	sort.Strings(policies)

	b.WriteString("## Best cell per policy\n\n")
	b.WriteString("| policy | clients | coalesce | workers | dtype | steps/s | p95 wait (ms) | final loss |\n")
	b.WriteString("|---|---:|---:|---:|---|---:|---:|---:|\n")
	for _, p := range policies {
		row := best[p]
		fmt.Fprintf(b, "| %s | %d | %d | %d | %s | %.1f | %.2f | %.4f |\n",
			row.Policy, row.Clients, row.Coalesce, rowWorkers(row), rowDType(row),
			row.StepsPerSec, row.WaitP95*1e3, row.FinalLoss)
	}
	b.WriteString("\n")
}

// writeWorkerScaling compares cells that differ only in worker count.
// Efficiency is speedup over ideal linear scaling: a perfect
// data-parallel pool at 4× the replicas of its baseline scores 1.0
// with a 4× speedup, 0.5 with 2×.
func writeWorkerScaling(b *strings.Builder, r *BenchReport) {
	type groupKey struct {
		clients, coalesce int
		policy, dtype     string
		telemetry         bool
	}
	groups := map[groupKey][]BenchRow{}
	var order []groupKey
	for _, row := range r.Rows {
		k := groupKey{row.Clients, row.Coalesce, row.Policy, rowDType(row), row.Telemetry}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}

	b.WriteString("## Worker scaling\n\n")
	wrote := false
	for _, k := range order {
		rows := groups[k]
		if len(rows) < 2 {
			continue
		}
		sort.Slice(rows, func(i, j int) bool { return rowWorkers(rows[i]) < rowWorkers(rows[j]) })
		base := rows[0]
		if base.StepsPerSec <= 0 {
			continue
		}
		if !wrote {
			b.WriteString("| clients | policy | coalesce | workers | steps/s | speedup | efficiency |\n")
			b.WriteString("|---:|---|---:|---:|---:|---:|---:|\n")
			wrote = true
		}
		fmt.Fprintf(b, "| %d | %s | %d | %d | %.1f | 1.00x | — |\n",
			base.Clients, base.Policy, base.Coalesce, rowWorkers(base), base.StepsPerSec)
		for _, row := range rows[1:] {
			speedup := row.StepsPerSec / base.StepsPerSec
			ideal := float64(rowWorkers(row)) / float64(rowWorkers(base))
			fmt.Fprintf(b, "| %d | %s | %d | %d | %.1f | %.2fx | %.0f%% |\n",
				row.Clients, row.Policy, row.Coalesce, rowWorkers(row),
				row.StepsPerSec, speedup, speedup/ideal*100)
		}
	}
	if !wrote {
		b.WriteString("No cell was measured at more than one worker count — run with `-workers 1,2,4` to populate this section.\n")
	}
	b.WriteString("\n")
}

// writeDTypeComparison compares cells that differ only in precision:
// the float32 cell's throughput against the float64 cell with the same
// (clients, policy, coalesce, workers, telemetry) configuration, plus
// the final-loss gap — single precision should buy wire bytes and
// matmul time without moving the loss.
func writeDTypeComparison(b *strings.Builder, r *BenchReport) {
	type groupKey struct {
		clients, coalesce, workers int
		policy                     string
		telemetry                  bool
	}
	groups := map[groupKey]map[string]BenchRow{}
	var order []groupKey
	for _, row := range r.Rows {
		k := groupKey{row.Clients, row.Coalesce, rowWorkers(row), row.Policy, row.Telemetry}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
			groups[k] = map[string]BenchRow{}
		}
		groups[k][rowDType(row)] = row
	}

	b.WriteString("## Precision (float32 vs float64)\n\n")
	wrote := false
	for _, k := range order {
		f64, ok64 := groups[k]["float64"]
		f32, ok32 := groups[k]["float32"]
		if !ok64 || !ok32 || f64.StepsPerSec <= 0 {
			continue
		}
		if !wrote {
			b.WriteString("| clients | policy | coalesce | workers | f64 steps/s | f32 steps/s | speedup | loss gap |\n")
			b.WriteString("|---:|---|---:|---:|---:|---:|---:|---:|\n")
			wrote = true
		}
		fmt.Fprintf(b, "| %d | %s | %d | %d | %.1f | %.1f | %.2fx | %+.4f |\n",
			k.clients, k.policy, k.coalesce, k.workers,
			f64.StepsPerSec, f32.StepsPerSec, f32.StepsPerSec/f64.StepsPerSec,
			f32.FinalLoss-f64.FinalLoss)
	}
	if !wrote {
		b.WriteString("No cell was measured at both precisions — run with `-dtype float64,float32` to populate this section.\n")
	}
	b.WriteString("\n")
}

// rowWorkers normalises the replica count of rows written before the
// workers axis existed (absent → 1), mirroring BenchRow.key.
func rowWorkers(r BenchRow) int {
	if r.Workers < 1 {
		return 1
	}
	return r.Workers
}

// rowDType normalises the precision of rows written before the dtype
// axis existed (absent → float64), mirroring BenchRow.key.
func rowDType(r BenchRow) string {
	if r.DType == "" {
		return "float64"
	}
	return r.DType
}
