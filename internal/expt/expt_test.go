package expt

import (
	"strings"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/nn"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "paper"} {
		s, err := ScaleByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Fatalf("scale name %q", s.Name)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("scale %s invalid: %v", name, err)
		}
	}
	if _, err := ScaleByName("galactic"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestScaleValidateRejects(t *testing.T) {
	s := TinyScale()
	s.TrainPerClass = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero train size accepted")
	}
	s = TinyScale()
	s.LR = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero LR accepted")
	}
}

func TestRunTableITiny(t *testing.T) {
	res, err := RunTableI(TinyScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny model has 2 blocks → rows: Nothing, L1, L1-L2.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Label != "Nothing" || res.Rows[1].Label != "L1" || res.Rows[2].Label != "L1-L2" {
		t.Fatalf("labels = %+v", res.Rows)
	}
	for _, r := range res.Rows {
		if r.Accuracy < 0 || r.Accuracy > 1 {
			t.Fatalf("accuracy %v out of range", r.Accuracy)
		}
	}
	// Paper reference values present for matching cuts.
	if res.Rows[0].PaperAccuracy != 0.7109 {
		t.Fatalf("paper reference wrong: %v", res.Rows[0].PaperAccuracy)
	}
	out := res.Table.String()
	for _, want := range []string{"Table I", "Nothing", "L1-L2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(res.Table.CSV(), "layers-at-end-systems,") {
		t.Fatal("CSV header missing")
	}
}

func TestRunFig1Tiny(t *testing.T) {
	res, err := RunFig1(TinyScale(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerSteps <= 0 {
		t.Fatal("no server steps")
	}
	if res.SplitAccuracy < 0 || res.SplitAccuracy > 1 {
		t.Fatalf("split accuracy %v", res.SplitAccuracy)
	}
	if !strings.Contains(res.Table.String(), "split(cut=1)") {
		t.Fatal("table missing split row")
	}
}

func TestRunFig2Tiny(t *testing.T) {
	res, err := RunFig2(TinyScale(), 3, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StepsPerClient) != 2 {
		t.Fatalf("results for %d sweeps", len(res.StepsPerClient))
	}
	for i, steps := range res.StepsPerClient {
		if len(steps) != res.ClientCounts[i] {
			t.Fatalf("sweep %d: %d step entries for %d clients", i, len(steps), res.ClientCounts[i])
		}
	}
	// With a shared server, queue must have buffered at least one item at
	// some point (multiple clients racing).
	if res.MaxOccupancy[1] < 1 {
		t.Fatalf("queue never occupied: %v", res.MaxOccupancy)
	}
}

func TestRunFig3PaperArchitecture(t *testing.T) {
	res, err := RunFig3(nn.PaperCNNConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 3 structure: 5 cuts, final flat dim 256, 10-class head.
	if len(res.CutShapes) != 6 {
		t.Fatalf("cut shapes = %v", res.CutShapes)
	}
	s5 := res.CutShapes[5]
	if s5[0] != 256 || s5[1] != 1 || s5[2] != 1 {
		t.Fatalf("cut-5 shape = %v", s5)
	}
	s0 := res.CutShapes[0]
	if s0[0] != 3 || s0[1] != 32 {
		t.Fatalf("cut-0 shape = %v", s0)
	}
	if !strings.Contains(res.Summary, "conv5") || !strings.Contains(res.Summary, "fc2") {
		t.Fatal("summary incomplete")
	}
	// The exact Fig-3 CNN parameter count is fixed; assert it as an
	// architecture regression guard.
	if res.ParamCount != 529322 {
		t.Fatalf("param count = %d", res.ParamCount)
	}
}

func TestRunFig4Tiny(t *testing.T) {
	res, err := RunFig4(TinyScale(), 4, 4, "")
	if err != nil {
		t.Fatal(err)
	}
	// Stage 0 is the original: perfect leak.
	if res.MeanEdgeCorr[0] != 1 || res.MeanCorr[0] != 1 {
		t.Fatalf("original stage leak %v / %v", res.MeanEdgeCorr[0], res.MeanCorr[0])
	}
	// Pooling must reduce mean fine-detail leakage vs conv alone.
	if res.MeanEdgeCorr[2] >= res.MeanEdgeCorr[1] {
		t.Fatalf("pooled edge leak %v not below conv %v", res.MeanEdgeCorr[2], res.MeanEdgeCorr[1])
	}
	if !strings.Contains(res.Table.String(), "maxpool") {
		t.Fatal("table missing pooled stage")
	}
}

func TestRunQueueAblationTiny(t *testing.T) {
	s := TinyScale()
	s.Clients = 3
	res, err := RunQueueAblation(s, 5, []string{"fifo", "sync-rounds"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("outcomes = %d", len(res.Outcomes))
	}
	fifo, sync := res.Outcomes[0], res.Outcomes[1]
	if fifo.Policy != "fifo" || sync.Policy != "sync-rounds" {
		t.Fatalf("policy order %v %v", fifo.Policy, sync.Policy)
	}
	// FIFO must starve the far client relative to the best near client.
	maxNear := 0
	for _, v := range fifo.StepsPerClient[1:] {
		if v > maxNear {
			maxNear = v
		}
	}
	if fifo.StepsPerClient[0]*3 > maxNear {
		t.Fatalf("FIFO far/near steps %d/%d — no starvation", fifo.StepsPerClient[0], maxNear)
	}
	// Sync rounds must equalise contributions to within one step.
	for _, v := range sync.StepsPerClient[1:] {
		d := sync.StepsPerClient[0] - v
		if d < -1 || d > 1 {
			t.Fatalf("sync-rounds steps unbalanced: %v", sync.StepsPerClient)
		}
	}
}

func TestRunCutSweepTiny(t *testing.T) {
	res, err := RunCutSweep(TinyScale(), 6, nil, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny model: cuts 0..2 × one client count.
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Fatalf("accuracy %v", p.Accuracy)
		}
	}
	if _, err := RunCutSweep(TinyScale(), 6, []int{99}, []int{2}); err == nil {
		t.Fatal("invalid cut accepted")
	}
}
