package expt

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/baseline"
	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/simnet"
)

// TableIRow is one row of the Table I reproduction.
type TableIRow struct {
	// Label matches the paper's row naming ("Nothing", "L1", "L1-L2"…).
	Label string
	// Cut is the split point (0 for the centralized row).
	Cut int
	// Accuracy is the measured test accuracy in [0,1].
	Accuracy float64
	// PaperAccuracy is the value the paper reports for this row
	// (fractional), 0 when the paper has no matching row.
	PaperAccuracy float64
}

// TableIResult is the full Table I reproduction.
type TableIResult struct {
	Rows  []TableIRow
	Table *metrics.Table
}

// paperTableI holds the accuracies from the paper's Table I, indexed by
// cut depth (0 = all layers at the server).
var paperTableI = map[int]float64{
	0: 0.7109,
	1: 0.6818,
	2: 0.6792,
	3: 0.6600,
	4: 0.6566,
}

// cutLabel renders the paper's row naming for a cut depth.
func cutLabel(cut int) string {
	switch cut {
	case 0:
		return "Nothing"
	case 1:
		return "L1"
	default:
		return fmt.Sprintf("L1-L%d", cut)
	}
}

// RunTableI reproduces Table I: test accuracy as a function of how many
// blocks live on the end-systems. Row 0 ("Nothing") is the fully
// centralized model trained on the pooled data; rows 1..maxCut train the
// spatio-temporal deployment with M non-IID clients holding private
// copies of L1..Lk. The expected *shape* is monotone degradation with
// depth; absolute values depend on the synthetic workload.
func RunTableI(s Scale, seed uint64) (*TableIResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	gen := data.SynthCIFAR{
		Height: s.Model.Defaults().Height, Width: s.Model.Defaults().Width,
		Classes: s.Model.Defaults().Classes,
	}
	train, err := gen.GenerateBalanced(s.TrainPerClass, seed)
	if err != nil {
		return nil, err
	}
	test, err := gen.GenerateBalanced(s.TestPerClass, seed+1)
	if err != nil {
		return nil, err
	}
	meansT, stdsT := train.Normalize()
	test.ApplyNormalization(meansT, stdsT)

	res := &TableIResult{
		Table: metrics.NewTable(
			fmt.Sprintf("Table I — accuracy vs layers at end-systems (scale=%s, M=%d, %d seed(s))",
				s.Name, s.Clients, s.repeats()),
			"layers-at-end-systems", "cut", "accuracy-%", "paper-%"),
	}

	addRow := func(label string, cut int, acc float64) {
		paper := paperTableI[cut] * 100
		res.Rows = append(res.Rows, TableIRow{Label: label, Cut: cut, Accuracy: acc, PaperAccuracy: paperTableI[cut]})
		res.Table.AddRow(label, cut, acc*100, paper)
	}

	// Row 0: centralized upper bound ("Nothing — all layers in server"),
	// given the same total batch budget as the split deployments,
	// averaged over seeds.
	centAcc := 0.0
	for rep := 0; rep < s.repeats(); rep++ {
		cent, err := baseline.TrainCentralized(baseline.TrainConfig{
			Model: s.Model, Seed: seed + uint64(rep)*7777, Epochs: s.Epochs, Steps: s.totalSteps(),
			BatchSize: s.BatchSize, LR: s.LR,
		}, train)
		if err != nil {
			return nil, err
		}
		cm, err := baseline.Evaluate(cent.Model, test)
		if err != nil {
			return nil, err
		}
		centAcc += cm.Accuracy()
	}
	addRow(cutLabel(0), 0, centAcc/float64(s.repeats()))

	// Rows 1..maxCut: split deployments with private client layers. The
	// paper's Table I setting shards the training data across
	// end-systems without label skew; "dirichlet" is available for the
	// non-IID ablation.
	maxCut := len(s.Model.Defaults().Filters)
	var shards []*data.Dataset
	if s.Partition == "dirichlet" {
		shards, err = data.PartitionDirichlet(train, s.Clients, s.Alpha, mathx.NewRNG(seed+2))
	} else {
		shards, err = data.PartitionIID(train, s.Clients, mathx.NewRNG(seed+2))
	}
	if err != nil {
		return nil, err
	}
	for cut := 1; cut <= maxCut; cut++ {
		acc := 0.0
		for rep := 0; rep < s.repeats(); rep++ {
			a, err := trainSplitAccuracy(s, seed+uint64(rep)*7777, cut, shards, test)
			if err != nil {
				return nil, fmt.Errorf("expt: table1 cut %d: %w", cut, err)
			}
			acc += a
		}
		addRow(cutLabel(cut), cut, acc/float64(s.repeats()))
	}
	return res, nil
}

// trainSplitAccuracy trains one spatio-temporal deployment and returns
// mean test accuracy across client pipelines.
func trainSplitAccuracy(s Scale, seed uint64, cut int, shards []*data.Dataset, test *data.Dataset) (float64, error) {
	dep, err := core.NewDeployment(core.Config{
		Model: s.Model, Cut: cut, Clients: s.Clients, Seed: seed + uint64(cut)*1009,
		BatchSize: s.BatchSize, LR: s.LR,
	}, shards)
	if err != nil {
		return 0, err
	}
	paths := make([]*simnet.Path, s.Clients)
	for i := range paths {
		paths[i], err = simnet.NewSymmetricPath(
			simnet.Constant{D: time.Millisecond}, 0, mathx.NewRNG(seed+uint64(i)+500))
		if err != nil {
			return 0, err
		}
	}
	sim, err := core.NewSimulation(dep, core.SimConfig{
		Paths:             paths,
		MaxStepsPerClient: s.StepsPerClient,
	})
	if err != nil {
		return 0, err
	}
	if _, err := sim.Run(); err != nil {
		return 0, err
	}
	mean, _, err := dep.EvaluateMean(test)
	return mean, err
}
