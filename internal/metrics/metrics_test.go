package metrics

import (
	"strings"
	"testing"
)

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.75 {
		t.Fatalf("Accuracy = %v", acc)
	}
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm, err := NewConfusionMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.Add([]int{0, 1, 1, 2}, []int{0, 1, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if cm.Total() != 4 {
		t.Fatalf("Total = %d", cm.Total())
	}
	if cm.Count(2, 1) != 1 || cm.Count(0, 0) != 1 {
		t.Fatal("counts wrong")
	}
	if acc := cm.Accuracy(); acc != 0.75 {
		t.Fatalf("Accuracy = %v", acc)
	}
	recalls := cm.PerClassRecall()
	if recalls[0] != 1 || recalls[1] != 1 || recalls[2] != 0.5 {
		t.Fatalf("recalls = %v", recalls)
	}
	if !strings.Contains(cm.String(), "recall") {
		t.Fatal("String missing recall column")
	}
}

func TestConfusionMatrixValidation(t *testing.T) {
	if _, err := NewConfusionMatrix(0); err == nil {
		t.Fatal("zero classes accepted")
	}
	cm, _ := NewConfusionMatrix(2)
	if err := cm.Add([]int{5}, []int{0}); err == nil {
		t.Fatal("out-of-range pred accepted")
	}
	if err := cm.Add([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	// Empty matrix accuracy is 0, not NaN.
	if cm.Accuracy() != 0 {
		t.Fatal("empty accuracy not 0")
	}
}

func TestLossCurveWindows(t *testing.T) {
	lc, err := NewLossCurve(3)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Last() != 0 {
		t.Fatal("fresh curve Last != 0")
	}
	for i := 1; i <= 6; i++ {
		lc.Observe(float64(i))
	}
	if len(lc.Entries) != 2 {
		t.Fatalf("entries = %d", len(lc.Entries))
	}
	if lc.Entries[0].Loss != 2 || lc.Entries[1].Loss != 5 {
		t.Fatalf("window means = %+v", lc.Entries)
	}
	if lc.Entries[1].Step != 6 {
		t.Fatalf("step = %d", lc.Entries[1].Step)
	}
	if lc.Last() != 5 {
		t.Fatalf("Last = %v", lc.Last())
	}
	if _, err := NewLossCurve(0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", 1.23456)
	tb.AddRow("a-much-longer-name", 42)
	out := tb.String()
	for _, want := range []string{"My Title", "name", "alpha", "1.23", "a-much-longer-name", "42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Fatalf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "alpha,1.23") {
		t.Fatalf("csv row missing: %q", csv)
	}
}
