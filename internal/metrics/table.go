package metrics

import (
	"fmt"
	"strings"
)

// Table accumulates experiment rows and renders them aligned, in the style
// of the paper's Table I. It also emits CSV for downstream plotting.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable constructs a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: append([]string(nil), headers...)}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	for i, h := range t.headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteString("\n")
	for i := range t.headers {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		for i, cell := range row {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s  ", w, cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, ","))
	b.WriteString("\n")
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}
