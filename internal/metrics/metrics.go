// Package metrics provides the evaluation metrics and result-table
// rendering shared by the experiment harness: classification accuracy,
// confusion matrices, per-class recall, and loss-curve tracking.
package metrics

import (
	"fmt"
	"strings"
)

// Accuracy returns the fraction of predictions matching labels.
func Accuracy(pred, labels []int) (float64, error) {
	if len(pred) != len(labels) {
		return 0, fmt.Errorf("metrics: %d predictions vs %d labels", len(pred), len(labels))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("metrics: empty prediction set")
	}
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred)), nil
}

// ConfusionMatrix counts (true class, predicted class) pairs.
type ConfusionMatrix struct {
	classes int
	counts  []int // row-major (true, pred)
}

// NewConfusionMatrix builds an empty matrix for the given class count.
func NewConfusionMatrix(classes int) (*ConfusionMatrix, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("metrics: non-positive class count %d", classes)
	}
	return &ConfusionMatrix{classes: classes, counts: make([]int, classes*classes)}, nil
}

// Add records a batch of predictions.
func (c *ConfusionMatrix) Add(pred, labels []int) error {
	if len(pred) != len(labels) {
		return fmt.Errorf("metrics: %d predictions vs %d labels", len(pred), len(labels))
	}
	for i := range pred {
		if labels[i] < 0 || labels[i] >= c.classes || pred[i] < 0 || pred[i] >= c.classes {
			return fmt.Errorf("metrics: class out of range at %d (true %d, pred %d)", i, labels[i], pred[i])
		}
		c.counts[labels[i]*c.classes+pred[i]]++
	}
	return nil
}

// Count returns the number of examples of trueClass predicted as predClass.
func (c *ConfusionMatrix) Count(trueClass, predClass int) int {
	return c.counts[trueClass*c.classes+predClass]
}

// Total returns the number of recorded examples.
func (c *ConfusionMatrix) Total() int {
	n := 0
	for _, v := range c.counts {
		n += v
	}
	return n
}

// Accuracy returns overall accuracy.
func (c *ConfusionMatrix) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	diag := 0
	for i := 0; i < c.classes; i++ {
		diag += c.counts[i*c.classes+i]
	}
	return float64(diag) / float64(total)
}

// PerClassRecall returns recall (diagonal / row sum) per true class;
// classes with no examples report NaN-free 0.
func (c *ConfusionMatrix) PerClassRecall() []float64 {
	out := make([]float64, c.classes)
	for i := 0; i < c.classes; i++ {
		row := 0
		for j := 0; j < c.classes; j++ {
			row += c.counts[i*c.classes+j]
		}
		if row > 0 {
			out[i] = float64(c.counts[i*c.classes+i]) / float64(row)
		}
	}
	return out
}

// String renders the matrix with per-class recall.
func (c *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s", "t\\p")
	for j := 0; j < c.classes; j++ {
		fmt.Fprintf(&b, "%6d", j)
	}
	fmt.Fprintf(&b, "%8s\n", "recall")
	recalls := c.PerClassRecall()
	for i := 0; i < c.classes; i++ {
		fmt.Fprintf(&b, "%6d", i)
		for j := 0; j < c.classes; j++ {
			fmt.Fprintf(&b, "%6d", c.counts[i*c.classes+j])
		}
		fmt.Fprintf(&b, "%8.3f\n", recalls[i])
	}
	return b.String()
}

// LossCurve tracks training loss over steps with bounded memory by
// averaging within fixed-size windows.
type LossCurve struct {
	window  int
	buf     []float64
	Entries []LossEntry
	step    int
}

// LossEntry is one averaged window.
type LossEntry struct {
	Step int
	Loss float64
}

// NewLossCurve constructs a curve with the given averaging window
// (≥1; 1 keeps every point).
func NewLossCurve(window int) (*LossCurve, error) {
	if window <= 0 {
		return nil, fmt.Errorf("metrics: non-positive window %d", window)
	}
	return &LossCurve{window: window}, nil
}

// Observe records one training-step loss.
func (lc *LossCurve) Observe(loss float64) {
	lc.step++
	lc.buf = append(lc.buf, loss)
	if len(lc.buf) >= lc.window {
		s := 0.0
		for _, v := range lc.buf {
			s += v
		}
		lc.Entries = append(lc.Entries, LossEntry{Step: lc.step, Loss: s / float64(len(lc.buf))})
		lc.buf = lc.buf[:0]
	}
}

// Last returns the most recent averaged loss, or 0 with no entries.
func (lc *LossCurve) Last() float64 {
	if len(lc.Entries) == 0 {
		return 0
	}
	return lc.Entries[len(lc.Entries)-1].Loss
}
