// Package obs is the telemetry layer for the live runtime: atomic
// counters and gauges, log-bucketed latency histograms with quantile
// estimation, a named-metric Registry with Prometheus text exposition,
// a bounded in-memory event/span Tracer, and an admin HTTP listener
// (/metrics, /statusz, /trace, pprof).
//
// The paper's scheduling story is about latency and staleness
// *distributions*, not lifetime averages — this package is what turns
// "the staleness policy helps" into measured p50/p95/p99 queue waits on
// the hot path. It is deliberately dependency-light (stdlib only) and
// allocation-free on the record path: every Observe/Add is a handful of
// atomic operations, so instrumentation can stay on even in production
// and benchmark runs (the bench harness bounds the overhead at ≤2%
// steps/s — see BENCH_*.json).
//
// Everything is optional at the call sites: a nil *Counter, *Gauge,
// *Histogram, or *Tracer is a safe no-op, so instrumented packages pay
// one nil check when telemetry is disabled.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative deltas are ignored —
// counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a metric that can go up and down. The zero value is ready to
// use; a nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) reset() { g.bits.Store(0) }

// Histogram bucket geometry: powers of two from 2^histMinExp seconds
// (≈1µs) up to 2^histMaxExp (64s), plus an overflow (+Inf) bucket.
// Power-of-two buckets make the record path a Frexp and one atomic add
// — no search — at ~2× worst-case quantile resolution, plenty for
// latency work where the interesting differences are 10× and up.
const (
	histMinExp    = -20 // smallest finite upper bound: 2^-20 s ≈ 0.95µs
	histMaxExp    = 6   // largest finite upper bound: 64s
	histBuckets   = histMaxExp - histMinExp + 1
	histOverflow  = histBuckets // index of the +Inf bucket
	histNumCounts = histBuckets + 1
)

// bucketBound returns the upper bound (seconds) of finite bucket i.
func bucketBound(i int) float64 {
	return math.Ldexp(1, histMinExp+i)
}

// bucketIndex maps a value in seconds to its bucket: the smallest i
// with v <= bound(i), or the overflow bucket.
func bucketIndex(v float64) int {
	if v <= 0 {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	if frac == 0.5 {
		exp-- // v is exactly a power of two: it belongs in its own le bucket
	}
	i := exp - histMinExp
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histOverflow
	}
	return i
}

// Histogram accumulates a distribution of values (seconds, for latency
// metrics) in log-spaced buckets, cheap enough for hot paths: one
// Frexp, two atomic adds, and a CAS loop for the sum. Quantiles are
// estimated by linear interpolation inside the matched bucket. The zero
// value is ready to use; a nil Histogram is a no-op.
//
// Concurrent Observe vs Snapshot/Quantile is safe: readers see a
// near-consistent view (buckets are monotone counters), which is all a
// telemetry scrape needs.
type Histogram struct {
	counts [histNumCounts]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value (in seconds for latency histograms).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nb) {
			return
		}
	}
}

// ObserveDuration records a duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-th quantile (q ∈ [0,1]) by linear
// interpolation within the matched log bucket. An empty histogram
// returns 0. The estimate for the overflow bucket saturates at the
// largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var counts [histNumCounts]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if cum+fc >= target {
			if i == histOverflow {
				return bucketBound(histBuckets - 1)
			}
			lo := 0.0
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			frac := (target - cum) / fc
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += fc
	}
	return bucketBound(histBuckets - 1)
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}
