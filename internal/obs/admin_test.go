package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func adminFixture() AdminConfig {
	reg := NewRegistry()
	reg.Counter("stsl_server_steps_total", nil).Add(42)
	reg.Histogram("stsl_queue_wait_seconds", Labels{"policy": "fifo"}).Observe(0.01)
	tr := NewTracer(8)
	tr.Event("session.join", 1, 0, "")
	tr.Record("worker.process", 1, 0, "", 1234)
	return AdminConfig{
		Registry: reg,
		Tracer:   tr,
		Statusz:  func() any { return map[string]any{"steps": 42, "queue_depth": 1} },
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestAdminEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewAdminMux(adminFixture()))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	samples := parsePromText(t, body)
	if samples["stsl_server_steps_total"] != 42 {
		t.Fatalf("/metrics missing counter: %v", samples)
	}
	if samples[`stsl_queue_wait_seconds_count{policy="fifo"}`] != 1 {
		t.Fatalf("/metrics missing histogram: %v", samples)
	}

	code, body, _ = get(t, srv, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var status map[string]any
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if status["steps"] != float64(42) {
		t.Fatalf("/statusz payload wrong: %v", status)
	}

	code, body, _ = get(t, srv, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	var trace struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("/trace not JSON: %v\n%s", err, body)
	}
	if trace.Total != 2 || len(trace.Events) != 2 || trace.Events[0].Kind != "session.join" {
		t.Fatalf("/trace payload wrong: %+v", trace)
	}

	if code, _, _ = get(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof index status %d", code)
	}
	if code, _, _ = get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", code)
	}
	if code, _, _ = get(t, srv, "/"); code != http.StatusOK {
		t.Fatalf("index status %d", code)
	}
	if code, _, _ = get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

// TestAdminEmptyConfig: every endpoint must degrade gracefully with no
// registry, tracer, statusz, or healthz wired.
func TestAdminEmptyConfig(t *testing.T) {
	srv := httptest.NewServer(NewAdminMux(AdminConfig{}))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/metrics", "/statusz", "/trace"} {
		if code, _, _ := get(t, srv, path); code != http.StatusOK {
			t.Fatalf("%s status %d with empty config", path, code)
		}
	}
}

// TestAdminHealthz: the healthz hook's ok flag must drive the status code
// (200 vs 503) while the payload is served as JSON either way — that is
// the contract load balancers and probes gate on.
func TestAdminHealthz(t *testing.T) {
	ok := true
	cfg := AdminConfig{Healthz: func() (bool, any) {
		return ok, map[string]any{"state": map[bool]string{true: "ready", false: "degraded"}[ok]}
	}}
	srv := httptest.NewServer(NewAdminMux(cfg))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy /healthz status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("/healthz content type %q", ct)
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/healthz not JSON: %v\n%s", err, body)
	}
	if payload["state"] != "ready" {
		t.Fatalf("/healthz payload wrong: %v", payload)
	}

	ok = false
	code, body, _ = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz status %d, want 503", code)
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("degraded /healthz not JSON: %v\n%s", err, body)
	}
	if payload["state"] != "degraded" {
		t.Fatalf("degraded /healthz payload wrong: %v", payload)
	}
}

func TestStartAdmin(t *testing.T) {
	a, err := StartAdmin("127.0.0.1:0", adminFixture())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	resp, err := http.Get("http://" + a.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "stsl_server_steps_total 42") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
}
