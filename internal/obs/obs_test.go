package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
		x *Tracer
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	x.Event("k", 0, 0, "")
	x.Record("k", 0, 0, "", time.Second)
	sp := x.Start("k", 0, 0, nil)
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End = %v, want 0", d)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if r.Counter("x", nil) != nil || r.Histogram("x", nil) != nil || r.Gauge("x", nil) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.GaugeFunc("x", nil, func() float64 { return 1 })
	r.Reset()
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if x.Events() != nil || x.Total() != 0 {
		t.Fatal("nil tracer must read empty")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must read zero")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	const v = 0.003 // 3ms: inside (2^-9, 2^-8]
	h.Observe(v)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	lo, hi := math.Ldexp(1, -9), math.Ldexp(1, -8)
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got < lo || got > hi {
			t.Fatalf("Quantile(%v) = %v, want within bucket [%v, %v]", q, got, lo, hi)
		}
	}
	if got := h.Sum(); got != v {
		t.Fatalf("sum = %v, want %v", got, v)
	}
	if got := h.Mean(); got != v {
		t.Fatalf("mean = %v, want %v", got, v)
	}
}

// TestHistogramBucketBoundaries pins the le convention: a value exactly
// at a power of two belongs to the bucket whose upper bound it is, so
// Quantile(1) of that lone sample returns the bound itself.
func TestHistogramBucketBoundaries(t *testing.T) {
	for _, e := range []int{histMinExp, -10, 0, histMaxExp} {
		var h Histogram
		v := math.Ldexp(1, e)
		h.Observe(v)
		if got := h.Quantile(1); got != v {
			t.Fatalf("Quantile(1) after observing 2^%d = %v, want exactly %v", e, got, v)
		}
	}
	// Just over a bound falls into the next bucket up.
	var h Histogram
	v := math.Ldexp(1, -10) * 1.0001
	h.Observe(v)
	if got := h.Quantile(1); got <= math.Ldexp(1, -10) || got > math.Ldexp(1, -9) {
		t.Fatalf("Quantile(1) = %v, want in (2^-10, 2^-9]", got)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)    // <= 0 lands in the smallest bucket
	h.Observe(-5)   // so do negatives (defensive: wall clocks can step)
	h.Observe(1e-9) // below the smallest bound
	if got := h.Quantile(1); got > bucketBound(0) {
		t.Fatalf("tiny samples Quantile(1) = %v, want <= %v", got, bucketBound(0))
	}
	var big Histogram
	big.Observe(1e6) // way past the largest finite bound
	if got := big.Quantile(0.5); got != bucketBound(histBuckets-1) {
		t.Fatalf("overflow Quantile = %v, want saturation at %v", got, bucketBound(histBuckets-1))
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000) // 1ms .. 1s
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// Log buckets are coarse (2×), but the estimates must stay within
	// one bucket of truth.
	if p50 < 0.25 || p50 > 1.0 {
		t.Fatalf("p50 = %v, want within 2x of 0.5", p50)
	}
	if p99 < 0.5 || p99 > 2.0 {
		t.Fatalf("p99 = %v, want within 2x of 0.99", p99)
	}
}

// TestHistogramConcurrent exercises record vs snapshot under -race:
// writers Observe while readers take quantiles and scrape Prometheus
// text concurrently.
func TestHistogramConcurrent(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("stsl_test_seconds", Labels{"policy": "fifo"})
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = h.Quantile(0.99)
					var sb strings.Builder
					_ = reg.WritePrometheus(&sb)
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(w*i%977) / 1e4)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("stsl_x_total", Labels{"k": "a"})
	b := reg.Counter("stsl_x_total", Labels{"k": "a"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := reg.Counter("stsl_x_total", Labels{"k": "b"})
	if a == c {
		t.Fatal("different labels must return a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	reg.Gauge("stsl_x_total", Labels{"k": "a"})
}

func TestRegistryReset(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("stsl_c_total", nil)
	g := reg.Gauge("stsl_g", nil)
	h := reg.Histogram("stsl_h_seconds", nil)
	reg.GaugeFunc("stsl_f", nil, func() float64 { return 7 })
	c.Add(3)
	g.Set(2)
	h.Observe(0.1)
	reg.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("Reset must zero counters, gauges and histograms")
	}
	if c != reg.Counter("stsl_c_total", nil) {
		t.Fatal("Reset must keep registrations intact")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "stsl_f 7") {
		t.Fatal("GaugeFunc must survive Reset")
	}
}

// parsePromText is a minimal Prometheus text-format (0.0.4) checker: it
// validates line grammar and returns sample name → value. It is
// deliberately independent of the writer's internals.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typeOf := make(map[string]string)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[3])
			}
			typeOf[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, line)
			}
			name = key[:i]
			labels := key[i+1 : len(key)-1]
			for _, kv := range strings.Split(labels, ",") {
				eq := strings.IndexByte(kv, '=')
				if eq <= 0 || len(kv) < eq+3 || kv[eq+1] != '"' || kv[len(kv)-1] != '"' {
					t.Fatalf("line %d: malformed label %q", ln+1, kv)
				}
			}
		}
		// Every sample must belong to a declared family (histograms
		// append _bucket/_sum/_count to the family name).
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && typeOf[f] == "histogram" {
				family = f
				break
			}
		}
		if _, ok := typeOf[family]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE declaration", ln+1, name)
		}
		samples[key] = val
	}
	return samples
}

func TestWritePrometheusParses(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("stsl_frames_total", Labels{"dir": "in"}).Add(10)
	reg.Counter("stsl_frames_total", Labels{"dir": "out"}).Add(20)
	reg.Gauge("stsl_queue_depth", Labels{"policy": "fifo"}).Set(3)
	reg.GaugeFunc("stsl_uptime_seconds", nil, func() float64 { return 12.5 })
	h := reg.Histogram("stsl_wait_seconds", Labels{"policy": "fifo"})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) / 100)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, sb.String())

	if samples[`stsl_frames_total{dir="in"}`] != 10 {
		t.Fatalf("counter sample wrong: %v", samples)
	}
	if samples[`stsl_queue_depth{policy="fifo"}`] != 3 {
		t.Fatalf("gauge sample wrong: %v", samples)
	}
	if samples["stsl_uptime_seconds"] != 12.5 {
		t.Fatalf("gaugefunc sample wrong: %v", samples)
	}
	if samples[`stsl_wait_seconds_count{policy="fifo"}`] != 100 {
		t.Fatalf("histogram count wrong: %v", samples)
	}
	// Buckets must be cumulative (monotone in le) and end at +Inf ==
	// count.
	var infVal float64
	prev := -1.0
	for i := 0; i < histBuckets; i++ {
		key := `stsl_wait_seconds_bucket{policy="fifo",le="` + formatFloat(bucketBound(i)) + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative at %s: %v < %v", key, v, prev)
		}
		prev = v
	}
	infVal, ok := samples[`stsl_wait_seconds_bucket{policy="fifo",le="+Inf"}`]
	if !ok || infVal != 100 {
		t.Fatalf("+Inf bucket = %v (present=%v), want 100", infVal, ok)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Event("e", i, i, "")
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := i + 3; ev.Client != want {
			t.Fatalf("event %d client = %d, want %d (oldest-first order)", i, ev.Client, want)
		}
	}
	if tr.Total() != 7 {
		t.Fatalf("total = %d, want 7", tr.Total())
	}
}

func TestTracerSpanFeedsHistogram(t *testing.T) {
	tr := NewTracer(16)
	var h Histogram
	sp := tr.Start("worker.process", 2, 9, &h)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatal("span duration must be positive")
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != "worker.process" || evs[0].Client != 2 ||
		evs[0].Seq != 9 || evs[0].Dur != d {
		t.Fatalf("span event wrong: %+v", evs)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Event("e", w, i, "")
				if i%100 == 0 {
					_ = tr.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != 8*500 {
		t.Fatalf("total = %d, want %d", tr.Total(), 8*500)
	}
	if len(tr.Events()) != 64 {
		t.Fatalf("ring = %d events, want 64", len(tr.Events()))
	}
}
