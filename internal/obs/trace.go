package obs

import (
	"sync"
	"time"
)

// Event is one entry in the tracer's ring: a point event (Dur == 0) or
// a completed span (Dur > 0). Client and Seq tie protocol events to the
// end-system and batch they concern; -1 means "not about one client".
type Event struct {
	// At is the wall-clock completion time of the event.
	At time.Time `json:"at"`
	// Kind names the event class ("session.join", "worker.process").
	Kind string `json:"kind"`
	// Client is the end-system id the event concerns (-1 = none).
	Client int `json:"client"`
	// Seq is the batch sequence number concerned (-1 = none).
	Seq int `json:"seq"`
	// Note carries free-form detail (eviction cause, policy name).
	Note string `json:"note,omitempty"`
	// Dur is the span duration; zero for point events.
	Dur time.Duration `json:"dur_ns"`
}

// Tracer records recent events and spans into a bounded in-memory ring:
// always on, fixed footprint, no I/O — the flight recorder consulted
// after the fact via /trace. Old entries are overwritten; Total counts
// everything ever recorded so a reader can tell how much history the
// ring window covers. A nil Tracer is a no-op, so call sites record
// unconditionally.
type Tracer struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
}

// DefaultTraceCap is the ring capacity when NewTracer gets cap <= 0.
const DefaultTraceCap = 2048

// NewTracer returns a tracer whose ring holds capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// Record appends one event. dur == 0 records a point event.
func (t *Tracer) Record(kind string, client, seq int, note string, dur time.Duration) {
	if t == nil {
		return
	}
	ev := Event{At: time.Now(), Kind: kind, Client: client, Seq: seq, Note: note, Dur: dur}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Event records a point event.
func (t *Tracer) Event(kind string, client, seq int, note string) {
	t.Record(kind, client, seq, note, 0)
}

// Span is an in-flight timed region started by Start. End completes it.
// The zero Span (from a nil Tracer) is inert.
type Span struct {
	t      *Tracer
	kind   string
	client int
	seq    int
	hist   *Histogram
	start  time.Time
}

// Start opens a span. The span's duration lands in the ring at End,
// and — when hist is non-nil — in that histogram too, so the same
// measurement feeds both /trace and /metrics.
func (t *Tracer) Start(kind string, client, seq int, hist *Histogram) Span {
	if t == nil && hist == nil {
		return Span{}
	}
	return Span{t: t, kind: kind, client: client, seq: seq, hist: hist, start: time.Now()}
}

// End completes the span, recording its duration, and returns it.
func (s Span) End() time.Duration {
	if s.t == nil && s.hist == nil {
		return 0
	}
	d := time.Since(s.start)
	s.hist.ObserveDuration(d)
	s.t.Record(s.kind, s.client, s.seq, "", d)
	return d
}

// Events returns a copy of the ring in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Total returns how many events were ever recorded (including those the
// ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
