package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminConfig wires the admin endpoints to a server's telemetry.
type AdminConfig struct {
	// Registry backs /metrics. nil serves an empty exposition.
	Registry *Registry
	// Tracer backs /trace. nil serves an empty event list.
	Tracer *Tracer
	// Statusz supplies the /statusz payload (any JSON-encodable value —
	// typically a superset of the runtime's metric snapshot). nil serves
	// a minimal liveness object.
	Statusz func() any
	// Healthz supplies /healthz: ok maps to HTTP 200, !ok to 503, and
	// the payload is served as JSON either way — so load balancers and
	// probes can gate on the status code while operators read the
	// detail. nil serves a minimal {"state":"live"} 200 (liveness only,
	// no readiness signal).
	Healthz func() (ok bool, payload any)
}

// NewAdminMux builds the admin HTTP handler:
//
//	/          endpoint index
//	/metrics   Prometheus text exposition (version 0.0.4)
//	/statusz   JSON status snapshot
//	/trace     JSON dump of the tracer's recent-event ring
//	/debug/pprof/...  the standard Go profiler endpoints
//
// The admin surface is unauthenticated by design — bind it to loopback
// (see the security note in DESIGN.md §3.4) unless the network path is
// otherwise trusted.
func NewAdminMux(cfg AdminConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "stsl admin endpoints:\n  /healthz\n  /metrics\n  /statusz\n  /trace\n  /debug/pprof/\n")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ok, payload := true, any(map[string]any{"state": "live"})
		if cfg.Healthz != nil {
			ok, payload = cfg.Healthz()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		var payload any
		if cfg.Statusz != nil {
			payload = cfg.Statusz()
		} else {
			payload = map[string]any{"ok": true, "now": time.Now().Format(time.RFC3339Nano)}
		}
		writeJSON(w, payload)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"total":  cfg.Tracer.Total(),
			"events": cfg.Tracer.Events(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// AdminServer is a running admin HTTP listener.
type AdminServer struct {
	lis net.Listener
	srv *http.Server
}

// StartAdmin binds addr (e.g. "127.0.0.1:9090", or ":0" for an
// ephemeral port) and serves the admin mux on it until Close.
func StartAdmin(addr string, cfg AdminConfig) (*AdminServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	a := &AdminServer{
		lis: lis,
		srv: &http.Server{Handler: NewAdminMux(cfg), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = a.srv.Serve(lis) }()
	return a, nil
}

// Addr returns the bound address (useful with ":0").
func (a *AdminServer) Addr() string { return a.lis.Addr().String() }

// Close stops the listener and in-flight handlers.
func (a *AdminServer) Close() error { return a.srv.Close() }
