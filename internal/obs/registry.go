package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels attach dimensions to a metric ({policy="fifo"}). Each distinct
// label set of a family is its own time series; keep cardinality low
// (policy names, client ids at bench scale — not request ids).
type Labels map[string]string

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one registered time series: a family name plus one label set.
type series struct {
	name   string // family name
	labels string // rendered {k="v",...} or ""
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry is a named-metric collection: get-or-create constructors for
// each metric type (so instrumented packages and scrapers share
// instances by name), Prometheus text exposition, and a Reset used by
// the bench harness to reuse one registry across grid cells instead of
// leaking fresh metric graphs per run. All methods are safe for
// concurrent use. A nil Registry hands out nil metrics, which are
// no-ops — callers can plumb telemetry unconditionally.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// renderLabels produces the canonical {k="v",...} fragment, sorted by
// key, with Prometheus escaping — it doubles as the series map key.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		v := labels[k]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// register returns the existing series for (name, labels) or creates it
// via build. Re-registering the same series with a different kind
// panics: that is a programming error, not a runtime condition.
func (r *Registry) register(name string, labels Labels, kind metricKind, build func(*series)) *series {
	lbl := renderLabels(labels)
	key := name + lbl
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %s already registered as %s, requested %s", key, s.kind, kind))
		}
		return s
	}
	s := &series{name: name, labels: lbl, kind: kind}
	build(s)
	r.series[key] = s
	return s
}

// Counter returns the counter named name with the given labels,
// creating it on first use. labels may be nil.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, labels, kindCounter, func(s *series) { s.counter = &Counter{} }).counter
}

// Gauge returns the gauge named name with the given labels, creating it
// on first use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, labels, kindGauge, func(s *series) { s.gauge = &Gauge{} }).gauge
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time — the bridge for values another component already tracks.
// Re-registration replaces the function.
func (r *Registry) GaugeFunc(name string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	s := r.register(name, labels, kindGaugeFunc, func(s *series) {})
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram named name with the given labels,
// creating it on first use.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, labels, kindHistogram, func(s *series) { s.hist = &Histogram{} }).hist
}

// Reset zeroes every counter, gauge, and histogram while keeping the
// registrations (and their holders' pointers) intact. GaugeFuncs are
// left alone — their state lives elsewhere. It is the bench harness's
// between-cells wipe; do not call it concurrently with a run being
// measured.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.series {
		switch s.kind {
		case kindCounter:
			s.counter.reset()
		case kindGauge:
			s.gauge.reset()
		case kindHistogram:
			s.hist.reset()
		}
	}
}

// formatFloat renders a sample value in Prometheus text style.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4), families sorted by name, one
// # TYPE line per family. Histograms expose cumulative le buckets plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].name != all[j].name {
			return all[i].name < all[j].name
		}
		return all[i].labels < all[j].labels
	})
	prevFamily := ""
	for _, s := range all {
		if s.name != prevFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, s.kind); err != nil {
				return err
			}
			prevFamily = s.name
		}
		var err error
		switch s.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", s.name, s.labels, s.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, formatFloat(s.gauge.Value()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s%s %s\n", s.name, s.labels, formatFloat(s.fn()))
		case kindHistogram:
			err = writePromHistogram(w, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits one histogram series: cumulative buckets,
// sum, count. Bucket labels splice le into the existing label set.
func writePromHistogram(w io.Writer, s *series) error {
	withLE := func(le string) string {
		if s.labels == "" {
			return `{le="` + le + `"}`
		}
		return s.labels[:len(s.labels)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += s.hist.counts[i].Load()
		le := formatFloat(bucketBound(i))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, withLE(le), cum); err != nil {
			return err
		}
	}
	cum += s.hist.counts[histOverflow].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, withLE("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.name, s.labels, formatFloat(s.hist.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, s.labels, cum)
	return err
}
