package cluster

import "time"

// HealthState is the server's coarse operational state, served by the
// admin listener's /healthz endpoint. The state machine (DESIGN.md
// §3.7): ready ⇄ live (session cap), ready/live ⇄ degraded (shed gate),
// any → stopped.
type HealthState string

const (
	// HealthReady: serving and accepting new sessions.
	HealthReady HealthState = "ready"
	// HealthLive: up and serving admitted sessions, but at the session
	// cap — new joins are refused with a RetryAfter hint.
	HealthLive HealthState = "live"
	// HealthDegraded: the shed gate is open — joins are refused and
	// brownout is active until the backlog drains.
	HealthDegraded HealthState = "degraded"
	// HealthStopped: the server has not started, or has shut down.
	HealthStopped HealthState = "stopped"
)

// Health is a point-in-time operational summary, cheap enough to poll.
type Health struct {
	State HealthState `json:"state"`
	// Shedding mirrors the shed gate's open state.
	Shedding bool `json:"shedding"`
	// Sessions is the number of live admission slots in use;
	// MaxSessions the cap (0 = unlimited).
	Sessions    int `json:"sessions"`
	MaxSessions int `json:"max_sessions,omitempty"`
	// QueueDepth is the scheduling queue's current occupancy.
	QueueDepth int `json:"queue_depth"`
	// P95Service is the p95 of service latency (enqueue → gradient).
	P95Service time.Duration `json:"p95_service_ns"`
	// Refused counts admission-control join refusals; Shed counts
	// deadline-expired activations shed un-served.
	Refused int `json:"refused"`
	Shed    int `json:"shed"`
	// RetryAfter is the hint a refused client would receive right now;
	// zero while the server is accepting.
	RetryAfter time.Duration `json:"retry_after_ns,omitempty"`
}

// OK reports whether the state maps to HTTP 200 (ready, live) rather
// than 503 (degraded, stopped).
func (h Health) OK() bool { return h.State == HealthReady || h.State == HealthLive }

// Health assembles the live health view; safe from any goroutine at any
// time, including while a join storm is hammering the accept path — it
// takes s.mu once and touches no model state.
func (s *Server) Health() Health {
	p95 := time.Duration(s.svcLat.Quantile(0.95) * float64(time.Second))
	s.mu.Lock()
	h := Health{
		Shedding:    s.degraded,
		Sessions:    s.live,
		MaxSessions: s.cfg.MaxSessions,
		P95Service:  p95,
		Refused:     s.refused,
		Shed:        s.shed,
	}
	stopped := !s.started || (s.ctx != nil && s.ctx.Err() != nil)
	s.mu.Unlock()
	h.QueueDepth = s.q.Len()
	switch {
	case stopped:
		h.State = HealthStopped
	case h.Shedding:
		h.State = HealthDegraded
	case h.MaxSessions > 0 && h.Sessions >= h.MaxSessions:
		h.State = HealthLive
	default:
		h.State = HealthReady
	}
	if h.State != HealthReady {
		h.RetryAfter = s.retryAfterHint()
	}
	return h
}

// HealthzFunc adapts Health to the admin listener's /healthz hook
// (obs.AdminConfig.Healthz).
func (s *Server) HealthzFunc() func() (bool, any) {
	return func() (bool, any) {
		h := s.Health()
		return h.OK(), h
	}
}
