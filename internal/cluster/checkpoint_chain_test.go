package cluster

import (
	"context"
	"errors"
	"os"
	"testing"

	"github.com/stsl/stsl/internal/core"
)

// trainedDeployment builds a 1-client deployment and trains it for the
// given number of steps, so checkpoints carry distinguishable state.
func trainedDeployment(t *testing.T, steps int) *core.Deployment {
	t.Helper()
	dep := buildDeployment(t, 1, "fifo")
	res, err := Run(context.Background(), dep, RunnerConfig{StepsPerClient: steps})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerSteps != steps {
		t.Fatalf("trained %d steps, want %d", res.ServerSteps, steps)
	}
	return dep
}

// flipByte flips one bit in the middle of the file's payload — the
// bit-rot a checksum chain exists to catch.
func flipByte(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// truncateFile tears the file mid-payload, as a crash mid-write would.
func truncateFile(t *testing.T, path string) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointChainBitFlipFallback: when the latest checkpoint (stable
// path and its generation file) is bit-flipped, RestoreFromFile rejects
// it on checksum and falls back to the previous verified generation —
// one checkpoint interval of progress lost, not the run.
func TestCheckpointChainBitFlipFallback(t *testing.T) {
	path := t.TempDir() + "/server.ckpt"
	sink := GenerationalCheckpointer(path, 3)
	depA := trainedDeployment(t, 3)
	if err := sink([]*core.Server{depA.Server}); err != nil { // g1, steps=3
		t.Fatal(err)
	}
	depB := trainedDeployment(t, 6)
	if err := sink([]*core.Server{depB.Server}); err != nil { // g2, steps=6
		t.Fatal(err)
	}

	flipByte(t, path)
	flipByte(t, path+".g2")

	dep := buildDeployment(t, 1, "fifo")
	steps, restored, err := RestoreFromFile(path, dep.Server)
	if err != nil || !restored {
		t.Fatalf("restore: restored=%v err=%v", restored, err)
	}
	if steps != 3 {
		t.Fatalf("restored %d steps, want 3 (the previous verified generation)", steps)
	}
}

// TestCheckpointChainTornFallback: a checkpoint torn mid-write is just
// as detectable as a bit flip — the fallback scan skips it.
func TestCheckpointChainTornFallback(t *testing.T) {
	path := t.TempDir() + "/server.ckpt"
	sink := GenerationalCheckpointer(path, 3)
	depA := trainedDeployment(t, 3)
	if err := sink([]*core.Server{depA.Server}); err != nil {
		t.Fatal(err)
	}
	depB := trainedDeployment(t, 6)
	if err := sink([]*core.Server{depB.Server}); err != nil {
		t.Fatal(err)
	}

	truncateFile(t, path)
	truncateFile(t, path+".g2")

	dep := buildDeployment(t, 1, "fifo")
	steps, restored, err := RestoreFromFile(path, dep.Server)
	if err != nil || !restored {
		t.Fatalf("restore: restored=%v err=%v", restored, err)
	}
	if steps != 3 {
		t.Fatalf("restored %d steps, want 3", steps)
	}
}

// TestCheckpointChainAllCorrupt: files present but none verifiable is an
// error — a corrupted checkpoint must never silently become a fresh
// start. An empty directory, by contrast, IS a fresh start: (0, false,
// nil) so first boots can pass -resume unconditionally.
func TestCheckpointChainAllCorrupt(t *testing.T) {
	path := t.TempDir() + "/server.ckpt"
	dep := buildDeployment(t, 1, "fifo")
	if steps, restored, err := RestoreFromFile(path, dep.Server); steps != 0 || restored || err != nil {
		t.Fatalf("empty dir: (%d, %v, %v), want (0, false, nil)", steps, restored, err)
	}

	depA := trainedDeployment(t, 3)
	if err := GenerationalCheckpointer(path, 3)([]*core.Server{depA.Server}); err != nil {
		t.Fatal(err)
	}
	flipByte(t, path)
	flipByte(t, path+".g1")

	_, restored, err := RestoreFromFile(path, dep.Server)
	if err == nil || restored {
		t.Fatalf("all-corrupt restore: restored=%v err=%v, want an error", restored, err)
	}
	if !errors.Is(err, core.ErrCheckpointCorrupt) {
		t.Fatalf("err = %v, want ErrCheckpointCorrupt in the chain", err)
	}
}

// TestCheckpointChainRetention: only the last keep generations survive,
// the stable path always names the newest, and a process restart
// continues the generation chain from what is on disk instead of
// overwriting generation 1.
func TestCheckpointChainRetention(t *testing.T) {
	path := t.TempDir() + "/server.ckpt"
	sink := GenerationalCheckpointer(path, 3)
	dep := trainedDeployment(t, 3)
	for i := 0; i < 5; i++ {
		if err := sink([]*core.Server{dep.Server}); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range []string{".g1", ".g2"} {
		if _, err := os.Stat(path + g); !os.IsNotExist(err) {
			t.Errorf("generation %s not pruned (keep=3)", g)
		}
	}
	for _, g := range []string{"", ".g3", ".g4", ".g5"} {
		if _, err := os.Stat(path + g); err != nil {
			t.Errorf("expected %q on disk: %v", path+g, err)
		}
	}

	// A fresh checkpointer (restarted server) picks up at g6.
	if err := GenerationalCheckpointer(path, 3)([]*core.Server{dep.Server}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".g6"); err != nil {
		t.Fatalf("restarted chain did not continue at g6: %v", err)
	}
}

// TestCheckpointChainMissingParent: a generation whose parent was pruned
// (or lost) still verifies and restores — integrity is per-file; the
// parent pointer is provenance, not a restore dependency.
func TestCheckpointChainMissingParent(t *testing.T) {
	path := t.TempDir() + "/server.ckpt"
	sink := GenerationalCheckpointer(path, 3)
	depA := trainedDeployment(t, 3)
	depB := trainedDeployment(t, 6)
	for i := 0; i < 4; i++ { // g1..g4; keep=3 prunes g1, so g2's parent is gone
		srv := depA.Server
		if i >= 2 {
			srv = depB.Server
		}
		if err := sink([]*core.Server{srv}); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt everything newer than g2: the scan must fall all the way
	// back to the generation whose parent no longer exists.
	flipByte(t, path)
	flipByte(t, path+".g4")
	flipByte(t, path+".g3")

	dep := buildDeployment(t, 1, "fifo")
	steps, restored, err := RestoreFromFile(path, dep.Server)
	if err != nil || !restored {
		t.Fatalf("restore: restored=%v err=%v", restored, err)
	}
	if steps != 3 {
		t.Fatalf("restored %d steps, want 3 (g2, written before the switch)", steps)
	}
}
