package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/stsl/stsl/internal/core"
)

// DefaultCheckpointKeep is how many checkpoint generations
// FileCheckpointer retains on disk. Three survives the worst realistic
// case — the latest torn by a crash mid-publish AND its parent hit by
// bit rot — while bounding disk use at a few model sizes.
const DefaultCheckpointKeep = 3

// FileCheckpointer returns a Checkpoint sink that persists the worker
// pool's training state to path with crash and corruption resilience:
//
//   - Atomic + durable publish: the state is written to a sibling temp
//     file, fsynced, renamed into place, and the directory fsynced — so
//     neither a crash mid-write nor a crash right after the rename can
//     leave a torn or unpublished checkpoint where a reader would trust
//     it (rename alone is not durable on ext4-class filesystems).
//   - Generation chain: every save also lands as path.g<N> carrying its
//     generation and parent in the STSLPOOL2 header, and the last
//     DefaultCheckpointKeep generations are retained. RestoreFromFile
//     verifies checksums and falls back to the newest generation that
//     passes, so one corrupted file costs one checkpoint interval of
//     progress instead of the whole run.
func FileCheckpointer(path string) func([]*core.Server) error {
	return GenerationalCheckpointer(path, DefaultCheckpointKeep)
}

// GenerationalCheckpointer is FileCheckpointer with an explicit
// retention depth. keep <= 1 retains only the latest generation file
// (path itself is always maintained besides the generation files).
func GenerationalCheckpointer(path string, keep int) func([]*core.Server) error {
	if keep < 1 {
		keep = 1
	}
	var mu sync.Mutex
	gen := -1 // lazily initialised from the files already on disk
	return func(srvs []*core.Server) error {
		mu.Lock()
		defer mu.Unlock()
		if gen < 0 {
			gen = latestGeneration(path)
		}
		parent := gen
		gen++
		var buf bytes.Buffer
		if err := core.SavePoolStateGen(&buf, srvs, gen, parent); err != nil {
			return err
		}
		// The generation file is published first, then the stable path:
		// if the process dies between the two, path still names the
		// previous verified generation and the new one is reachable by
		// the fallback scan.
		if err := publishSync(genPath(path, gen), buf.Bytes()); err != nil {
			return err
		}
		if err := publishSync(path, buf.Bytes()); err != nil {
			return err
		}
		for g := gen - keep; g > 0; g-- {
			if err := os.Remove(genPath(path, g)); err != nil {
				if os.IsNotExist(err) {
					break // older ones were pruned on earlier saves
				}
				return fmt.Errorf("cluster: prune checkpoint generation %d: %w", g, err)
			}
		}
		return nil
	}
}

// genPath names generation g of the checkpoint at path.
func genPath(path string, g int) string { return fmt.Sprintf("%s.g%d", path, g) }

// latestGeneration scans the directory for path.g<N> files and returns
// the highest N, or 0 when none exist — so a restarted server continues
// the chain instead of overwriting generation 1.
func latestGeneration(path string) int {
	matches, err := filepath.Glob(path + ".g*")
	if err != nil {
		return 0
	}
	best := 0
	for _, m := range matches {
		g, err := strconv.Atoi(strings.TrimPrefix(m, path+".g"))
		if err == nil && g > best {
			best = g
		}
	}
	return best
}

// publishSync writes data to path atomically and durably: temp file,
// fsync, rename, directory fsync.
func publishSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("cluster: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: write checkpoint: %w", err)
	}
	// Sync before rename: the rename must never publish a name whose
	// bytes are still only in the page cache.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("cluster: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("cluster: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("cluster: publish checkpoint: %w", err)
	}
	// Sync the directory after rename so the new directory entry itself
	// survives a crash.
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("cluster: open checkpoint dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("cluster: sync checkpoint dir: %w", err)
	}
	return nil
}

// RestoreFromFile loads a checkpoint written by FileCheckpointer into a
// structurally identical core server, returning the restored step count.
// All checkpoint formats load: a pool checkpoint lands as the FedAvg
// average of its replica stacks (see core.LoadState), which NewServer
// then fans out to however many replicas the restarted server runs — an
// N-worker checkpoint restores into an M-worker server for any N and M.
//
// Integrity: path is tried first, then the retained generation files
// newest-first; the first candidate that verifies (STSLPOOL2 checksums
// are validated before any weight is touched) wins. A torn or
// bit-flipped latest checkpoint therefore costs one generation of
// progress, not the run. No checkpoint files at all is not an error —
// it reports (0, false, nil) so callers can pass -resume unconditionally
// on first boot. Files present but none verifiable is an error: silently
// training from scratch is exactly the outcome a corrupted checkpoint
// must not produce.
func RestoreFromFile(path string, srv *core.Server) (steps int, restored bool, err error) {
	candidates := []string{path}
	matches, _ := filepath.Glob(path + ".g*")
	gens := make([]int, 0, len(matches))
	for _, m := range matches {
		if g, gerr := strconv.Atoi(strings.TrimPrefix(m, path+".g")); gerr == nil {
			gens = append(gens, g)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gens)))
	for _, g := range gens {
		candidates = append(candidates, genPath(path, g))
	}

	tried := 0
	var lastErr error
	for _, cand := range candidates {
		f, oerr := os.Open(cand)
		if os.IsNotExist(oerr) {
			continue
		}
		if oerr != nil {
			tried++
			lastErr = fmt.Errorf("cluster: open checkpoint: %w", oerr)
			continue
		}
		tried++
		lerr := srv.LoadState(f)
		f.Close()
		if lerr == nil {
			return srv.Steps(), true, nil
		}
		lastErr = lerr
	}
	if tried == 0 {
		return 0, false, nil
	}
	return 0, false, fmt.Errorf("cluster: no checkpoint generation verified (%d candidates): %w", tried, lastErr)
}
