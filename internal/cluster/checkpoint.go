package cluster

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/stsl/stsl/internal/core"
)

// FileCheckpointer returns a Checkpoint sink that persists the worker
// pool's training state to path atomically: the state is written to a
// sibling temp file and renamed into place, so a crash mid-write can
// never leave a truncated checkpoint where a reader (a restarting
// server with -resume) would trust it. One replica writes the legacy
// single-server format; N replicas write the versioned pool format
// (core.SavePoolState), which RestoreFromFile on any worker count
// restores as the FedAvg average.
func FileCheckpointer(path string) func([]*core.Server) error {
	return func(srvs []*core.Server) error {
		dir := filepath.Dir(path)
		tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
		if err != nil {
			return fmt.Errorf("cluster: checkpoint temp file: %w", err)
		}
		defer os.Remove(tmp.Name()) // no-op after the rename succeeds
		if err := core.SavePoolState(tmp, srvs); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return fmt.Errorf("cluster: close checkpoint: %w", err)
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			return fmt.Errorf("cluster: publish checkpoint: %w", err)
		}
		return nil
	}
}

// RestoreFromFile loads a checkpoint written by FileCheckpointer into a
// structurally identical core server, returning the restored step count.
// Both checkpoint formats load: a pool checkpoint lands as the FedAvg
// average of its replica stacks (see core.LoadState), which NewServer
// then fans out to however many replicas the restarted server runs — an
// N-worker checkpoint restores into an M-worker server for any N and M.
// A missing file is not an error — it reports (0, false, nil) so callers
// can pass -resume unconditionally on first boot.
func RestoreFromFile(path string, srv *core.Server) (steps int, restored bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("cluster: open checkpoint: %w", err)
	}
	defer f.Close()
	if err := srv.LoadState(f); err != nil {
		return 0, false, err
	}
	return srv.Steps(), true, nil
}
