package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/obs"
)

// TestWindowRateMath exercises the windowed-throughput sample path
// directly: cadence-gated appends, pruning to one pre-window baseline,
// and the near-zero elapsed guard.
func TestWindowRateMath(t *testing.T) {
	s := &Server{}
	t0 := time.Unix(1000, 0)

	// Near-zero guard: one sample, asked immediately.
	s.steps = 5
	s.observeStepLocked(t0)
	if got := s.windowRateLocked(t0); got != 0 {
		t.Fatalf("rate with no elapsed time = %v, want 0", got)
	}
	if got := s.windowRateLocked(t0.Add(10 * time.Millisecond)); got != 0 {
		t.Fatalf("rate under the 50ms floor = %v, want 0", got)
	}

	// Steady stream: 10 steps/s for 5 seconds, sampled every 500ms.
	s = &Server{}
	for i := 0; i <= 10; i++ {
		s.steps = i * 5
		s.observeStepLocked(t0.Add(time.Duration(i) * 500 * time.Millisecond))
	}
	at := t0.Add(5 * time.Second)
	if got := s.windowRateLocked(at); got < 9.5 || got > 10.5 {
		t.Fatalf("steady rate = %v, want ≈10", got)
	}

	// A stall: no steps for the next 12s. The window must forget the
	// earlier burst and report ≈0, while the lifetime average would not.
	s.observeStepLocked(at.Add(12 * time.Second))
	if got := s.windowRateLocked(at.Add(12 * time.Second)); got > 0.5 {
		t.Fatalf("rate after stall = %v, want ≈0", got)
	}

	// Pruning: a long run keeps the sample slice bounded to roughly
	// window/cadence plus the baseline.
	s = &Server{}
	for i := 0; i < 1000; i++ {
		s.steps = i
		s.observeStepLocked(t0.Add(time.Duration(i) * 300 * time.Millisecond))
	}
	if n := len(s.rateSamples); n > int(rateWindow/(rateWindow/40))+2 {
		t.Fatalf("rateSamples grew to %d, pruning is broken", n)
	}

	// Cadence: samples closer than 250ms are coalesced.
	s = &Server{}
	for i := 0; i < 100; i++ {
		s.steps = i
		s.observeStepLocked(t0.Add(time.Duration(i) * time.Millisecond))
	}
	if n := len(s.rateSamples); n != 1 {
		t.Fatalf("cadence gate kept %d samples in 100ms, want 1", n)
	}
}

// TestSnapshotUptimeGuard takes a snapshot immediately after Start; the
// lifetime rate must be zero (not steps divided by nanoseconds) and the
// windowed rate must be zero with no history.
func TestSnapshotUptimeGuard(t *testing.T) {
	dep := buildDeployment(t, 1, "fifo")
	srv := startServer(t, dep, Config{})
	snap := srv.Snapshot()
	if snap.ServerSteps != 0 && snap.StepsPerSec > 1e6 {
		t.Fatalf("unguarded lifetime rate: %v", snap.StepsPerSec)
	}
	if snap.StepsPerSecWindow != 0 {
		t.Fatalf("windowed rate with no steps = %v, want 0", snap.StepsPerSecWindow)
	}
	if !strings.Contains(snap.String(), "/s now") {
		t.Fatalf("Snapshot.String missing windowed rate: %q", snap.String())
	}
}

// TestClusterTelemetry runs a small live deployment with a registry and
// tracer attached and checks the whole instrumentation surface: queue
// counters balance, lifecycle counters match the client population,
// worker spans and grad round-trips were recorded, and the scrape
// renders.
func TestClusterTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(obs.DefaultTraceCap)
	const clients, steps = 3, 4
	dep := buildDeployment(t, clients, "fifo")
	res, err := Run(context.Background(), dep, RunnerConfig{
		StepsPerClient: steps,
		Transport:      TransportTCP,
		Cluster:        Config{Obs: reg, Tracer: tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerSteps != clients*steps {
		t.Fatalf("server steps = %d, want %d", res.ServerSteps, clients*steps)
	}

	counter := func(name string, labels obs.Labels) int64 {
		return reg.Counter(name, labels).Value()
	}
	if got := counter("stsl_queue_enqueued_total", obs.Labels{"policy": "fifo"}); got != clients*steps {
		t.Errorf("enqueued = %d, want %d", got, clients*steps)
	}
	if got := counter("stsl_queue_dequeued_total", obs.Labels{"policy": "fifo"}); got != clients*steps {
		t.Errorf("dequeued = %d, want %d", got, clients*steps)
	}
	if got := counter("stsl_cluster_sessions_total", obs.Labels{"event": "join"}); got != clients {
		t.Errorf("joins = %d, want %d", got, clients)
	}
	if got := counter("stsl_cluster_sessions_total", obs.Labels{"event": "leave"}); got != clients {
		t.Errorf("leaves = %d, want %d", got, clients)
	}
	if got := counter("stsl_cluster_sessions_total", obs.Labels{"event": "evict"}); got != 0 {
		t.Errorf("evictions = %d, want 0", got)
	}
	if got := counter("stsl_server_steps_total", nil); got == 0 {
		t.Error("core server step counter never incremented")
	}

	wait := reg.Histogram("stsl_queue_wait_seconds", obs.Labels{"policy": "fifo"})
	if wait.Count() != uint64(clients*steps) {
		t.Errorf("wait histogram count = %d, want %d", wait.Count(), clients*steps)
	}
	if h := reg.Histogram("stsl_worker_process_seconds", obs.Labels{"replica": "0"}); h.Count() == 0 {
		t.Error("worker process histogram empty")
	}
	if h := reg.Histogram("stsl_worker_pop_seconds", obs.Labels{"replica": "0"}); h.Count() == 0 {
		t.Error("worker pop histogram empty")
	}
	var rtt uint64
	for i := 0; i < clients; i++ {
		rtt += reg.Histogram("stsl_client_grad_rtt_seconds",
			obs.Labels{"client": []string{"0", "1", "2"}[i]}).Count()
	}
	if rtt != uint64(clients*steps) {
		t.Errorf("grad RTT observations = %d, want %d", rtt, clients*steps)
	}
	// TCP transport: frames flowed in both directions and bytes were
	// counted at the socket boundary.
	if got := counter("stsl_transport_frames_total", obs.Labels{"dir": "in"}); got == 0 {
		t.Error("no inbound frames counted")
	}
	if got := counter("stsl_transport_bytes_total", obs.Labels{"dir": "in"}); got == 0 {
		t.Error("no inbound bytes counted")
	}

	// Trace ring saw lifecycle events and worker spans.
	kinds := map[string]int{}
	for _, ev := range tr.Events() {
		kinds[ev.Kind]++
	}
	if kinds["session.join"] != clients {
		t.Errorf("trace joins = %d, want %d", kinds["session.join"], clients)
	}
	if kinds["worker.process"] == 0 || kinds["worker.pop"] == 0 || kinds["worker.scatter"] == 0 {
		t.Errorf("missing worker spans in trace: %v", kinds)
	}

	// The scrape must render every family without panicking.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"stsl_queue_wait_seconds_bucket", "stsl_cluster_sessions_total",
		"stsl_worker_process_seconds_sum", "stsl_client_grad_rtt_seconds_count",
		"stsl_uptime_seconds",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("scrape missing %s", want)
		}
	}
}

// TestTelemetryDisabledIsInert re-checks the zero-config path: no
// registry, no tracer, and the run must behave exactly as before.
func TestTelemetryDisabledIsInert(t *testing.T) {
	dep := buildDeployment(t, 2, "fifo")
	res, err := Run(context.Background(), dep, RunnerConfig{
		StepsPerClient: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerSteps != 6 {
		t.Fatalf("server steps = %d, want 6", res.ServerSteps)
	}
}
