package cluster

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/transport"
)

// ClientConfig parameterises one live end-system actor.
type ClientConfig struct {
	// Steps is the number of batches to contribute (required).
	Steps int
	// GradTimeout bounds how long the client waits for any single
	// gradient (and for the join welcome) before declaring the server a
	// straggler (0 = wait forever).
	GradTimeout time.Duration
	// RejectBackoff is the pause before resending an activation the
	// server bounced for backpressure (default 2ms).
	RejectBackoff time.Duration
	// Now supplies protocol timestamps; nil uses a monotonic wall clock
	// started at the first batch.
	Now func() time.Duration
}

// ClientResult summarises one client's run.
type ClientResult struct {
	// Steps is the number of batches contributed (gradient applied).
	Steps int
	// Epochs is the number of completed local epochs.
	Epochs int
	// Rejected counts backpressure bounces that forced a resend.
	Rejected int
}

// RunClient drives one end-system over a live connection: join
// handshake, then the lock-step produce → upload → await gradient →
// apply loop, then a done announcement. The network send/receive runs in
// a separate goroutine from the compute, so a slow or dead server is
// detected by GradTimeout (or ctx) instead of hanging the actor forever.
func RunClient(ctx context.Context, es *core.EndSystem, conn transport.Conn, cfg ClientConfig) (*ClientResult, error) {
	if es == nil || conn == nil {
		return nil, fmt.Errorf("cluster: RunClient needs an end-system and a connection")
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("cluster: RunClient needs positive steps, got %d", cfg.Steps)
	}
	now := cfg.Now
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	backoff := cfg.RejectBackoff
	if backoff <= 0 {
		backoff = 2 * time.Millisecond
	}

	// Unblock any pending Send/Recv when the caller gives up.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	// The receive pump: gradient and control replies flow through inCh
	// so the compute loop can select against ctx and the timeout.
	inCh := make(chan *transport.Message, 4)
	errCh := make(chan error, 1)
	pumpDone := make(chan struct{})
	defer close(pumpDone)
	go func() {
		for {
			msg, err := conn.Recv()
			if err != nil {
				select {
				case errCh <- err:
				case <-pumpDone:
				}
				return
			}
			select {
			case inCh <- msg:
			case <-pumpDone:
				return
			}
		}
	}()

	await := func() (*transport.Message, error) {
		var timeout <-chan time.Time
		if cfg.GradTimeout > 0 {
			t := time.NewTimer(cfg.GradTimeout)
			defer t.Stop()
			timeout = t.C
		}
		select {
		case msg := <-inCh:
			return msg, nil
		case err := <-errCh:
			return nil, fmt.Errorf("cluster: client %d connection lost: %w", es.ID, err)
		case <-timeout:
			return nil, fmt.Errorf("cluster: client %d timed out after %v awaiting server", es.ID, cfg.GradTimeout)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// Join handshake.
	if err := conn.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: es.ID, Note: core.JoinNote, SentAt: now(),
	}); err != nil {
		return nil, fmt.Errorf("cluster: client %d join: %w", es.ID, err)
	}
	welcome, err := await()
	if err != nil {
		return nil, err
	}
	if welcome.Type != transport.MsgControl || welcome.Note != core.WelcomeNote {
		return nil, fmt.Errorf("cluster: client %d join refused: %s", es.ID, welcome.Note)
	}

	res := &ClientResult{}
	for i := 0; i < cfg.Steps; i++ {
		msg, err := es.ProduceBatch(now())
		if err != nil {
			return res, fmt.Errorf("cluster: client %d produce step %d: %w", es.ID, i, err)
		}
		for {
			if err := conn.Send(msg); err != nil {
				return res, fmt.Errorf("cluster: client %d send step %d: %w", es.ID, i, err)
			}
			reply, err := await()
			if err != nil {
				return res, err
			}
			if reply.Type == transport.MsgControl {
				if reply.Note == core.RejectedNote {
					// Backpressure: give the queue a moment and resend
					// the same batch.
					res.Rejected++
					select {
					case <-time.After(backoff):
					case <-ctx.Done():
						return res, ctx.Err()
					}
					continue
				}
				if strings.HasPrefix(reply.Note, core.AbortNote) {
					return res, fmt.Errorf("cluster: client %d: server aborted: %s", es.ID, reply.Note)
				}
				return res, fmt.Errorf("cluster: client %d: unexpected control %q", es.ID, reply.Note)
			}
			if err := es.ApplyGradient(reply); err != nil {
				return res, fmt.Errorf("cluster: client %d apply step %d: %w", es.ID, i, err)
			}
			break
		}
		res.Steps = es.Steps()
		res.Epochs = es.Epoch()
	}
	if err := conn.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: es.ID, Note: core.DoneNote, SentAt: now(),
	}); err != nil {
		return res, fmt.Errorf("cluster: client %d done: %w", es.ID, err)
	}
	return res, nil
}
