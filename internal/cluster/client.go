package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/obs"
	"github.com/stsl/stsl/internal/transport"
)

// ClientConfig parameterises one live end-system actor.
type ClientConfig struct {
	// Steps is the number of batches to contribute (required).
	Steps int
	// GradTimeout bounds how long the client waits for any single
	// gradient (and for the join welcome) before declaring the server a
	// straggler (0 = wait forever).
	GradTimeout time.Duration
	// RejectBackoff is the pause before resending an activation the
	// server bounced for backpressure (default 2ms).
	RejectBackoff time.Duration
	// Dial, when non-nil, re-establishes a lost connection: the client
	// redials, resumes its session with the token issued at join, and
	// resends the in-flight batch — surviving link drops, frame
	// truncation, and server restarts. nil keeps the original
	// fail-on-disconnect behaviour.
	Dial func() (transport.Conn, error)
	// MaxReconnects bounds reconnection attempts across the whole run
	// (default 8 when Dial is set). Failed dials count: a server that
	// stays down exhausts the budget.
	MaxReconnects int
	// ReconnectBackoff is the pause before each redial (default 5ms).
	ReconnectBackoff time.Duration
	// Now supplies protocol timestamps; nil uses a monotonic wall clock
	// started at the first batch.
	Now func() time.Duration
	// GradRTT, when non-nil, records the send→gradient-applied round
	// trip of every batch in seconds — queue wait, server compute, and
	// both wire legs, as this client experiences them. After a resend
	// (backpressure bounce, reconnect) the clock restarts at the resend,
	// so the histogram reflects delivery latency, not retry budgets.
	GradRTT *obs.Histogram
}

// ClientResult summarises one client's run.
type ClientResult struct {
	// Steps is the number of batches contributed (gradient applied).
	Steps int
	// Epochs is the number of completed local epochs.
	Epochs int
	// Rejected counts backpressure bounces that forced a resend.
	Rejected int
	// Reconnects counts redial attempts made after connection losses
	// (successful or not).
	Reconnects int
}

// refusedError is a handshake rejection: the server answered, and the
// answer was no. Retrying cannot help, unlike a connection loss.
type refusedError struct{ note string }

func (e refusedError) Error() string { return "cluster: server refused session: " + e.note }

// connLostError marks a failure of the carrier itself — the class of
// error a redial can cure.
type connLostError struct{ error }

func (e connLostError) Unwrap() error { return e.error }

// pump decouples the network receive from the compute loop for one
// carrier. A new pump starts per (re)connection, so messages from a dead
// carrier can never leak into the resumed session.
type pump struct {
	conn transport.Conn
	in   chan *transport.Message
	errc chan error
	done chan struct{}
	once sync.Once
}

func startPump(conn transport.Conn) *pump {
	p := &pump{
		conn: conn,
		in:   make(chan *transport.Message, 4),
		errc: make(chan error, 1),
		done: make(chan struct{}),
	}
	go func() {
		for {
			msg, err := conn.Recv()
			if err != nil {
				select {
				case p.errc <- err:
				case <-p.done:
				}
				return
			}
			select {
			case p.in <- msg:
			case <-p.done:
				return
			}
		}
	}()
	return p
}

func (p *pump) stop() {
	p.once.Do(func() { close(p.done) })
	p.conn.Close()
}

// RunClient drives one end-system over a live connection: join
// handshake, then the lock-step produce → upload → await gradient →
// apply loop, then a done announcement. The network send/receive runs in
// a separate goroutine from the compute, so a slow or dead server is
// detected by GradTimeout (or ctx) instead of hanging the actor forever.
// With Dial configured the client is churn-tolerant: a lost connection
// is redialled, the session resumed by token, and the in-flight batch
// resent — the server's dedup-by-seq keeps every batch exactly-once.
func RunClient(ctx context.Context, es *core.EndSystem, conn transport.Conn, cfg ClientConfig) (*ClientResult, error) {
	if es == nil || conn == nil {
		return nil, fmt.Errorf("cluster: RunClient needs an end-system and a connection")
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("cluster: RunClient needs positive steps, got %d", cfg.Steps)
	}
	now := cfg.Now
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	backoff := cfg.RejectBackoff
	if backoff <= 0 {
		backoff = 2 * time.Millisecond
	}
	maxReconnects := cfg.MaxReconnects
	if maxReconnects <= 0 && cfg.Dial != nil {
		maxReconnects = 8
	}
	reconnectBackoff := cfg.ReconnectBackoff
	if reconnectBackoff <= 0 {
		reconnectBackoff = 5 * time.Millisecond
	}

	res := &ClientResult{}
	var token int // session credential from the welcome; 0 before join

	// The current pump, shared with the ctx hook so a blocked Send/Recv
	// on whichever carrier is live unblocks when the caller gives up.
	var mu sync.Mutex
	p := startPump(conn)
	setPump := func(np *pump) {
		mu.Lock()
		p = np
		mu.Unlock()
	}
	stop := context.AfterFunc(ctx, func() {
		mu.Lock()
		defer mu.Unlock()
		p.conn.Close()
	})
	defer stop()
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		p.stop()
	}()

	await := func(p *pump) (*transport.Message, error) {
		var timeout <-chan time.Time
		if cfg.GradTimeout > 0 {
			t := time.NewTimer(cfg.GradTimeout)
			defer t.Stop()
			timeout = t.C
		}
		select {
		case msg := <-p.in:
			return msg, nil
		case err := <-p.errc:
			return nil, connLostError{fmt.Errorf("cluster: client %d connection lost: %w", es.ID, err)}
		case <-timeout:
			return nil, fmt.Errorf("cluster: client %d timed out after %v awaiting server", es.ID, cfg.GradTimeout)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// send transmits on the current carrier, tagging any failure as a
	// connection loss — the messages are our own, so the only way a send
	// fails is the carrier dying under it.
	send := func(p *pump, m *transport.Message) error {
		if err := p.conn.Send(m); err != nil {
			return connLostError{fmt.Errorf("cluster: client %d send: %w", es.ID, err)}
		}
		return nil
	}
	// connLost reports whether err means the carrier died (redialling
	// can help) rather than the server answering badly or the caller
	// giving up.
	connLost := func(err error) bool {
		if err == nil || ctx.Err() != nil {
			return false
		}
		var lost connLostError
		return errors.As(err, &lost) || errors.Is(err, transport.ErrClosed)
	}

	// hello performs the join (first contact) or resume (token in hand)
	// handshake on a fresh carrier.
	hello := func(p *pump) error {
		note, seq := core.JoinNote, 0
		if token != 0 {
			note, seq = core.ResumeNote, token
		}
		if err := send(p, &transport.Message{
			Type: transport.MsgControl, ClientID: es.ID, Note: note, Seq: seq, SentAt: now(),
		}); err != nil {
			return err
		}
		// On a resume the worker may scatter a queued reply onto the
		// swapped-in carrier before the session loop sends the welcome —
		// a gradient outrunning the handshake is acceptance, not
		// refusal. Skip such messages (bounded: the session serves at
		// most a handful of parked replies); the delivery loop recovers
		// any needed gradient from the server's reply cache by resending
		// the in-flight batch.
		for skipped := 0; ; skipped++ {
			welcome, err := await(p)
			if err != nil {
				return err
			}
			if welcome.Type != transport.MsgControl {
				if skipped > 16 {
					return refusedError{note: fmt.Sprintf("no welcome within %d messages", skipped)}
				}
				continue
			}
			if welcome.Note != core.WelcomeNote {
				return refusedError{note: welcome.Note}
			}
			token = welcome.Seq
			return nil
		}
	}

	// reconnect retires the dead carrier and redials until a handshake
	// succeeds or the attempt budget runs out.
	reconnect := func(dead *pump, cause error) error {
		if cfg.Dial == nil {
			return cause
		}
		dead.stop()
		lastErr := cause
		for res.Reconnects < maxReconnects {
			res.Reconnects++
			select {
			case <-time.After(reconnectBackoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			c, err := cfg.Dial()
			if err != nil {
				lastErr = err
				continue
			}
			np := startPump(c)
			setPump(np)
			if err := hello(np); err != nil {
				np.stop()
				var ref refusedError
				if errors.As(err, &ref) {
					// The server answered and said no (bad token, done
					// session): redialling cannot change its mind.
					return err
				}
				if ctx.Err() != nil {
					return ctx.Err()
				}
				lastErr = err
				continue
			}
			return nil
		}
		return fmt.Errorf("cluster: client %d gave up after %d reconnect attempts: %w",
			es.ID, res.Reconnects, lastErr)
	}
	// recoverConn funnels any carrier failure through the reconnect path.
	recoverConn := func(err error) error {
		if !connLost(err) {
			return err
		}
		return reconnect(p, err)
	}

	// Join handshake (with reconnect recovery — the very first exchange
	// can hit a fault too). recoverConn returns nil only after reconnect
	// completed a fresh handshake, so it must not be followed by another
	// hello: the server ignores handshake notes on an established
	// session and the client would hang awaiting a second welcome.
	if err := hello(p); err != nil {
		if err = recoverConn(err); err != nil {
			return nil, err
		}
	}

	for i := 0; i < cfg.Steps; i++ {
		msg, err := es.ProduceBatch(now())
		if err != nil {
			return res, fmt.Errorf("cluster: client %d produce step %d: %w", es.ID, i, err)
		}
		sendNeeded := true
		var sentAt time.Time
	delivery:
		for {
			if sendNeeded {
				if err := send(p, msg); err != nil {
					if err = recoverConn(err); err != nil {
						return res, fmt.Errorf("cluster: client %d send step %d: %w", es.ID, i, err)
					}
					continue // resumed on a fresh carrier; resend
				}
				sendNeeded = false
				if cfg.GradRTT != nil {
					sentAt = time.Now()
				}
			}
			reply, err := await(p)
			if err != nil {
				if err = recoverConn(err); err != nil {
					return res, err
				}
				sendNeeded = true // the in-flight batch may be lost; resend
				continue
			}
			switch {
			case reply.Type == transport.MsgControl && reply.Note == core.RejectedNote:
				// Backpressure: give the queue a moment and resend the
				// same batch.
				res.Rejected++
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
					return res, ctx.Err()
				}
				sendNeeded = true
			case reply.Type == transport.MsgControl && reply.Note == core.WelcomeNote:
				// A duplicated welcome replayed by the network; ignore.
			case reply.Type == transport.MsgControl && strings.HasPrefix(reply.Note, core.AbortNote):
				return res, fmt.Errorf("cluster: client %d: server aborted: %s", es.ID, reply.Note)
			case reply.Type == transport.MsgControl:
				return res, fmt.Errorf("cluster: client %d: unexpected control %q", es.ID, reply.Note)
			case reply.Type != transport.MsgGradient:
				return res, fmt.Errorf("cluster: client %d: unexpected %v", es.ID, reply.Type)
			case !es.HasOutstanding() || reply.Seq != es.Outstanding():
				// A stale duplicate — the reply cache answering a resend
				// the worker also served, or a duplicating network.
				// Drop it and keep waiting for the right seq.
			default:
				if err := es.ApplyGradient(reply); err != nil {
					return res, fmt.Errorf("cluster: client %d apply step %d: %w", es.ID, i, err)
				}
				if cfg.GradRTT != nil {
					cfg.GradRTT.ObserveSince(sentAt)
				}
				break delivery
			}
		}
		res.Steps = es.Steps()
		res.Epochs = es.Epoch()
	}
	for {
		err := send(p, &transport.Message{
			Type: transport.MsgControl, ClientID: es.ID, Note: core.DoneNote, SentAt: now(),
		})
		if err == nil {
			return res, nil
		}
		if err = recoverConn(err); err != nil {
			return res, fmt.Errorf("cluster: client %d done: %w", es.ID, err)
		}
	}
}
