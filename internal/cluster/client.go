package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/obs"
	"github.com/stsl/stsl/internal/overload"
	"github.com/stsl/stsl/internal/transport"
)

// Typed overload errors. Callers match them with errors.Is against
// RunClient's return to distinguish "the server is drowning" from a
// protocol failure — the load generator keys its refusal-rate metric on
// exactly this.
var (
	// ErrServerOverloaded marks a join refused by admission control: the
	// session cap is full or the shed gate is open. The refusal carries a
	// RetryAfter hint; with a Dial configured the client backs off and
	// retries on its own, so RunClient only returns this when it cannot
	// (no Dial) or will not (budget exhausted) keep trying.
	ErrServerOverloaded = errors.New("cluster: server overloaded")
	// ErrRetryLater marks any transient, hinted refusal — overload
	// refusals match it too, so it is the broad "worth retrying" class.
	ErrRetryLater = errors.New("cluster: server asked to retry later")
)

// ClientConfig parameterises one live end-system actor.
type ClientConfig struct {
	// Steps is the number of batches to contribute (required).
	Steps int
	// GradTimeout is the hard bound on waiting for any single gradient
	// (and for the join welcome) before declaring the server a straggler
	// (0 = wait forever). Once a few round trips have been observed the
	// client waits adaptively — an RTO-style SRTT + 4·RTTVAR window,
	// doubling per fire — and resends well before this bound; GradTimeout
	// remains the terminal backstop.
	GradTimeout time.Duration
	// RejectBackoff is the jitter floor of the pause before resending an
	// activation the server bounced for backpressure (default 2ms). When
	// the bounce carries a RetryAfter hint the pause is hint + jitter.
	RejectBackoff time.Duration
	// Dial, when non-nil, re-establishes a lost connection: the client
	// redials, resumes its session with the token issued at join, and
	// resends the in-flight batch — surviving link drops, frame
	// truncation, and server restarts. It also enables admission-refusal
	// retries: a refused join waits out the server's RetryAfter hint
	// (plus decorrelated jitter) and redials. nil keeps the original
	// fail-on-first-fault behaviour.
	Dial func() (transport.Conn, error)
	// MaxReconnects bounds reconnection attempts after connection losses
	// across the whole run (default 8 when Dial is set). Failed dials
	// count: a server that stays down exhausts the budget. Admission
	// refusals do NOT count — the server is alive and explicitly asked
	// for patience; those retries are bounded by RetryBudget instead.
	MaxReconnects int
	// ReconnectBackoff is the decorrelated-jitter floor of the pause
	// before each redial (default 5ms). Delays grow up to 100× the floor
	// and desynchronise a cohort of clients that failed together.
	ReconnectBackoff time.Duration
	// BackoffSeed seeds the jitter streams (0 derives one from the wall
	// clock and the end-system id). Fix it for reproducible retry traces.
	BackoffSeed uint64
	// RetryBudget is the token-bucket burst of retries (refusal waits,
	// adaptive resends) the client may spend ahead of the refill rate
	// (0 = default 8).
	RetryBudget float64
	// RetryRefill is the budget's refill rate in tokens/second (0 =
	// default 4; negative = no refill, a pure burst budget). A client out
	// of tokens waits for the next refill instead of retrying — this is
	// what keeps a refused cohort from amplifying the overload.
	RetryRefill float64
	// Now supplies protocol timestamps; nil uses a monotonic wall clock
	// started at the first batch.
	Now func() time.Duration
	// GradRTT, when non-nil, records the send→gradient-applied round
	// trip of every batch in seconds — queue wait, server compute, and
	// both wire legs, as this client experiences them. After a resend
	// (backpressure bounce, reconnect) the clock restarts at the resend,
	// so the histogram reflects delivery latency, not retry budgets.
	GradRTT *obs.Histogram
}

// ClientResult summarises one client's run.
type ClientResult struct {
	// Steps is the number of batches contributed (gradient applied).
	Steps int
	// Epochs is the number of completed local epochs.
	Epochs int
	// Rejected counts backpressure bounces that forced a resend.
	Rejected int
	// Reconnects counts redial attempts made after connection losses
	// (successful or not).
	Reconnects int
	// Refused counts admission refusals the client waited out and
	// retried (session cap, shed gate).
	Refused int
	// Resends counts batch retransmissions triggered by the adaptive
	// wait window or a deadline-shed notice — not backpressure bounces,
	// which Rejected counts.
	Resends int
	// JoinAttempts records the protocol timestamp of every join attempt
	// (first contact and post-refusal retries). A cohort refused together
	// should NOT retry together — the join-storm chaos test asserts the
	// decorrelated jitter spreads these out.
	JoinAttempts []time.Duration
	// CorruptFrames counts inbound frames this client's receive pump
	// rejected on a CRC32C mismatch (and recovered from by resending).
	CorruptFrames int
}

// refusedError is a handshake rejection: the server answered, and the
// answer was no. Unlike a connection loss a redial alone cannot help —
// but a *hinted* refusal (overload, retry-later) is worth retrying after
// backing off, which retryable reports.
type refusedError struct {
	note       string
	code       transport.RefusalCode
	retryAfter time.Duration
}

func (e refusedError) Error() string { return "cluster: server refused session: " + e.note }

// Is maps refusal codes onto the package's typed errors so callers can
// errors.Is without reaching into the wire representation.
func (e refusedError) Is(target error) bool {
	switch target {
	case ErrServerOverloaded:
		return e.code == transport.RefusalOverloaded
	case ErrRetryLater:
		return e.code == transport.RefusalOverloaded || e.code == transport.RefusalRetryLater
	}
	return false
}

// retryable reports whether backing off and rejoining can succeed.
func (e refusedError) retryable() bool {
	return e.code == transport.RefusalOverloaded || e.code == transport.RefusalRetryLater
}

// errAwaitTimeout marks an await that gave up on its timer. The delivery
// loop tells the adaptive (RTO-derived) window — which triggers a
// budget-charged resend — apart from the hard GradTimeout, which stays
// terminal.
var errAwaitTimeout = errors.New("await timeout")

// connLostError marks a failure of the carrier itself — the class of
// error a redial can cure.
type connLostError struct{ error }

func (e connLostError) Unwrap() error { return e.error }

// pump decouples the network receive from the compute loop for one
// carrier. A new pump starts per (re)connection, so messages from a dead
// carrier can never leak into the resumed session.
type pump struct {
	conn transport.Conn
	in   chan *transport.Message
	errc chan error
	done chan struct{}
	once sync.Once
}

func startPump(conn transport.Conn, corrupt *atomic.Int64) *pump {
	p := &pump{
		conn: conn,
		in:   make(chan *transport.Message, 4),
		errc: make(chan error, 1),
		done: make(chan struct{}),
	}
	go func() {
		for {
			msg, err := conn.Recv()
			if err != nil {
				if errors.Is(err, transport.ErrChecksum) {
					// A corrupted frame, caught by its CRC trailer with the
					// stream still in sync: count and keep receiving. The
					// adaptive wait window resends the in-flight batch if
					// the lost frame was its gradient.
					if corrupt != nil {
						corrupt.Add(1)
					}
					continue
				}
				select {
				case p.errc <- err:
				case <-p.done:
				}
				return
			}
			select {
			case p.in <- msg:
			case <-p.done:
				return
			}
		}
	}()
	return p
}

func (p *pump) stop() {
	p.once.Do(func() { close(p.done) })
	p.conn.Close()
}

// RunClient drives one end-system over a live connection: join
// handshake, then the lock-step produce → upload → await gradient →
// apply loop, then a done announcement. The network send/receive runs in
// a separate goroutine from the compute, so a slow or dead server is
// detected by the wait window (or ctx) instead of hanging the actor
// forever. With Dial configured the client is churn- and
// overload-tolerant: a lost connection is redialled and the session
// resumed by token; a refused join backs off with decorrelated jitter
// (honouring the server's RetryAfter hint and a retry token budget) and
// rejoins — the server's dedup-by-seq keeps every batch exactly-once
// through all of it.
func RunClient(ctx context.Context, es *core.EndSystem, conn transport.Conn, cfg ClientConfig) (*ClientResult, error) {
	if es == nil || conn == nil {
		return nil, fmt.Errorf("cluster: RunClient needs an end-system and a connection")
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("cluster: RunClient needs positive steps, got %d", cfg.Steps)
	}
	now := cfg.Now
	if now == nil {
		start := time.Now()
		now = func() time.Duration { return time.Since(start) }
	}
	rejectBackoff := cfg.RejectBackoff
	if rejectBackoff <= 0 {
		rejectBackoff = 2 * time.Millisecond
	}
	maxReconnects := cfg.MaxReconnects
	if maxReconnects <= 0 && cfg.Dial != nil {
		maxReconnects = 8
	}
	reconnectBackoff := cfg.ReconnectBackoff
	if reconnectBackoff <= 0 {
		reconnectBackoff = 5 * time.Millisecond
	}
	seed := cfg.BackoffSeed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) ^ uint64(es.ID)<<32 ^ uint64(es.ID)
	}
	refill := cfg.RetryRefill
	if refill == 0 {
		refill = 4
	}
	// The overload-control kit: jittered redial delays, a second
	// independent jitter stream for backpressure bounces, a token-bucket
	// retry budget, a breaker that honours the server's RetryAfter hints,
	// and an RTO estimator driving the adaptive gradient wait.
	joinJitter := overload.NewBackoff(reconnectBackoff, 0, seed)
	rejJitter := overload.NewBackoff(rejectBackoff, 0, seed^0x9e3779b97f4a7c15)
	budget := overload.NewBudget(cfg.RetryBudget, refill)
	breaker := overload.NewBreaker(overload.BreakerConfig{})
	rttMax := 30 * time.Second
	if cfg.GradTimeout > 0 {
		rttMax = cfg.GradTimeout
	}
	rtt := overload.NewRTTEstimator(time.Millisecond, rttMax)

	res := &ClientResult{}
	var token int // session credential from the welcome; 0 before join
	var corruptFrames atomic.Int64
	defer func() { res.CorruptFrames = int(corruptFrames.Load()) }()

	// The current pump, shared with the ctx hook so a blocked Send/Recv
	// on whichever carrier is live unblocks when the caller gives up.
	var mu sync.Mutex
	p := startPump(conn, &corruptFrames)
	setPump := func(np *pump) {
		mu.Lock()
		p = np
		mu.Unlock()
	}
	stop := context.AfterFunc(ctx, func() {
		mu.Lock()
		defer mu.Unlock()
		p.conn.Close()
	})
	defer stop()
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		p.stop()
	}()

	sleep := func(d time.Duration) error {
		if d <= 0 {
			return nil
		}
		select {
		case <-time.After(d):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// spendRetry withdraws one retry token, waiting out the refill when
	// the burst is spent — throttling, not failing, is what keeps a
	// cohort of retrying clients from amplifying the overload that
	// bounced them. It fails only when the budget can never recover.
	spendRetry := func() error {
		for {
			n := now()
			if budget.Take(n) {
				return nil
			}
			at, ok := budget.NextAt(n)
			if !ok {
				return fmt.Errorf("cluster: client %d retry budget exhausted", es.ID)
			}
			if err := sleep(at - n + time.Millisecond); err != nil {
				return err
			}
		}
	}

	await := func(p *pump, timeout time.Duration) (*transport.Message, error) {
		var tc <-chan time.Time
		if timeout > 0 {
			t := time.NewTimer(timeout)
			defer t.Stop()
			tc = t.C
		}
		select {
		case msg := <-p.in:
			return msg, nil
		case err := <-p.errc:
			return nil, connLostError{fmt.Errorf("cluster: client %d connection lost: %w", es.ID, err)}
		case <-tc:
			return nil, fmt.Errorf("cluster: client %d timed out after %v awaiting server: %w",
				es.ID, timeout, errAwaitTimeout)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// send transmits on the current carrier, tagging any failure as a
	// connection loss — the messages are our own, so the only way a send
	// fails is the carrier dying under it.
	send := func(p *pump, m *transport.Message) error {
		if err := p.conn.Send(m); err != nil {
			return connLostError{fmt.Errorf("cluster: client %d send: %w", es.ID, err)}
		}
		return nil
	}
	// connLost reports whether err means the carrier died (redialling
	// can help) rather than the server answering badly or the caller
	// giving up.
	connLost := func(err error) bool {
		if err == nil || ctx.Err() != nil {
			return false
		}
		var lost connLostError
		return errors.As(err, &lost) || errors.Is(err, transport.ErrClosed)
	}

	// hello performs the join (first contact) or resume (token in hand)
	// handshake on a fresh carrier.
	hello := func(p *pump) error {
		note, seq := core.JoinNote, 0
		if token != 0 {
			note, seq = core.ResumeNote, token
		}
		if note == core.JoinNote {
			// Stamped before the send so the join-storm test can assert
			// refused cohorts retry desynchronised, not in lockstep.
			res.JoinAttempts = append(res.JoinAttempts, now())
		}
		if err := send(p, &transport.Message{
			Type: transport.MsgControl, ClientID: es.ID, Note: note, Seq: seq, SentAt: now(),
		}); err != nil {
			return err
		}
		// On a resume the worker may scatter a queued reply onto the
		// swapped-in carrier before the session loop sends the welcome —
		// a gradient outrunning the handshake is acceptance, not
		// refusal. Skip such messages (bounded: the session serves at
		// most a handful of parked replies); the delivery loop recovers
		// any needed gradient from the server's reply cache by resending
		// the in-flight batch.
		for skipped := 0; ; skipped++ {
			welcome, err := await(p, cfg.GradTimeout)
			if err != nil {
				return err
			}
			if welcome.Type != transport.MsgControl {
				if skipped > 16 {
					return refusedError{note: fmt.Sprintf("no welcome within %d messages", skipped)}
				}
				continue
			}
			if welcome.Note != core.WelcomeNote {
				return refusedError{note: welcome.Note, code: welcome.Code, retryAfter: welcome.RetryAfter}
			}
			token = welcome.Seq
			breaker.Success()
			joinJitter.Reset()
			return nil
		}
	}

	// refusalWait spends the pause a hinted refusal demands: the server's
	// RetryAfter plus a decorrelated-jitter draw (additive, so a refused
	// cohort that shares a hint still spreads out), stretched to the
	// breaker's cooldown when repeated refusals have tripped it, and
	// charged against the retry budget.
	refusalWait := func(ref refusedError) error {
		res.Refused++
		breaker.Failure(now(), ref.retryAfter)
		if err := spendRetry(); err != nil {
			return fmt.Errorf("%w (last refusal: %s)", err, ref.note)
		}
		wait := ref.retryAfter + joinJitter.Next()
		if n := now(); breaker.OpenUntil() > n+wait {
			wait = breaker.OpenUntil() - n
		}
		if err := sleep(wait); err != nil {
			return err
		}
		breaker.Allow(now()) // open → half-open: the next hello is the probe
		return nil
	}

	// redial replaces a carrier the server refused (it closes the
	// connection behind a refusal) with a fresh one and retries the
	// handshake. Unlike reconnect this does not charge MaxReconnects:
	// the server is alive and asked us to come back.
	redial := func(dead *pump) error {
		dead.stop()
		c, err := cfg.Dial()
		if err != nil {
			return connLostError{fmt.Errorf("cluster: client %d redial: %w", es.ID, err)}
		}
		np := startPump(c, &corruptFrames)
		setPump(np)
		return hello(np)
	}

	// reconnect retires the dead carrier and redials until a handshake
	// succeeds or the attempt budget runs out.
	reconnect := func(dead *pump, cause error) error {
		if cfg.Dial == nil {
			return cause
		}
		dead.stop()
		lastErr := cause
		for res.Reconnects < maxReconnects {
			res.Reconnects++
			if err := spendRetry(); err != nil {
				return err
			}
			if err := sleep(joinJitter.Next()); err != nil {
				return err
			}
			c, err := cfg.Dial()
			if err != nil {
				lastErr = err
				continue
			}
			np := startPump(c, &corruptFrames)
			setPump(np)
			if err := hello(np); err != nil {
				var ref refusedError
				if errors.As(err, &ref) {
					// The server answered and said no. A terminal refusal
					// (bad token, done session) ends the run; a hinted one
					// propagates so recoverConn can wait it out without
					// charging this budget further.
					return err
				}
				np.stop()
				if ctx.Err() != nil {
					return ctx.Err()
				}
				lastErr = err
				continue
			}
			return nil
		}
		return fmt.Errorf("cluster: client %d gave up after %d reconnect attempts: %w",
			es.ID, res.Reconnects, lastErr)
	}
	// recoverConn funnels every recoverable failure — carrier deaths and
	// hinted refusals — through its cure until the handshake lands or the
	// error proves terminal. Only hinted refusals loop (each iteration
	// waits out a hint, so a shedding server is retried patiently, not
	// hammered); reconnect handles its own retries internally, so its
	// non-refusal errors are final.
	recoverConn := func(err error) error {
		for {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			var ref refusedError
			if errors.As(err, &ref) && ref.retryable() {
				if cfg.Dial == nil {
					// Cannot get a fresh carrier, so the hint is moot;
					// surface the typed refusal to the caller.
					return err
				}
				if werr := refusalWait(ref); werr != nil {
					return werr
				}
				if err = redial(p); err == nil {
					return nil
				}
				continue
			}
			if !connLost(err) || cfg.Dial == nil {
				return err
			}
			if err = reconnect(p, err); err == nil {
				return nil
			}
			if !errors.As(err, &ref) || !ref.retryable() {
				return err // budget exhausted, or the server said a terminal no
			}
			// A hinted refusal met during reconnect: loop to wait it out.
		}
	}

	// Join handshake (with full recovery — the very first exchange can
	// hit a fault or an overloaded server). recoverConn returns nil only
	// after a complete fresh handshake, so it must not be followed by
	// another hello: the server ignores handshake notes on an established
	// session and the client would hang awaiting a second welcome.
	if err := hello(p); err != nil {
		if err = recoverConn(err); err != nil {
			return nil, err
		}
	}

	for i := 0; i < cfg.Steps; i++ {
		msg, err := es.ProduceBatch(now())
		if err != nil {
			return res, fmt.Errorf("cluster: client %d produce step %d: %w", es.ID, i, err)
		}
		sendNeeded := true
		resent := false // Karn's rule: an RTT sample is only clean if the batch was sent exactly once
		scale := time.Duration(1)
		var sentAt time.Time
	delivery:
		for {
			if sendNeeded {
				if err := send(p, msg); err != nil {
					if err = recoverConn(err); err != nil {
						return res, fmt.Errorf("cluster: client %d send step %d: %w", es.ID, i, err)
					}
					resent = true
					continue // resumed on a fresh carrier; resend
				}
				sendNeeded = false
				sentAt = time.Now()
			}
			// Wait adaptively once the estimator has warmed up: an
			// RTO-style window (doubling per fire) resends long before
			// the hard GradTimeout would give up on a reply lost to a
			// shed or a dropped frame.
			wait, adaptive := cfg.GradTimeout, false
			if rtt.Samples() >= 3 {
				if aw := scale * rtt.Timeout(); cfg.GradTimeout <= 0 || aw < cfg.GradTimeout {
					wait, adaptive = aw, true
				}
			}
			reply, err := await(p, wait)
			if err != nil {
				if adaptive && errors.Is(err, errAwaitTimeout) {
					if berr := spendRetry(); berr != nil {
						return res, fmt.Errorf("cluster: client %d step %d: %w", es.ID, i, berr)
					}
					res.Resends++
					resent = true
					scale *= 2
					sendNeeded = true
					continue
				}
				if err = recoverConn(err); err != nil {
					return res, err
				}
				resent = true
				sendNeeded = true // the in-flight batch may be lost; resend
				continue
			}
			switch {
			case reply.Type == transport.MsgControl && reply.Note == core.RejectedNote:
				// Backpressure (or a brownout park): wait out the server's
				// hint plus jitter and resend the same batch.
				res.Rejected++
				if err := sleep(reply.RetryAfter + rejJitter.Next()); err != nil {
					return res, err
				}
				resent = true
				sendNeeded = true
			case reply.Type == transport.MsgControl && reply.Note == core.ExpiredNote:
				// The server shed the queued batch past its deadline and
				// rolled its watermark back; resend after the hinted pause.
				res.Resends++
				if err := sleep(reply.RetryAfter + rejJitter.Next()); err != nil {
					return res, err
				}
				resent = true
				sendNeeded = true
			case reply.Type == transport.MsgControl && reply.Note == core.WelcomeNote:
				// A duplicated welcome replayed by the network; ignore.
			case reply.Type == transport.MsgControl && strings.HasPrefix(reply.Note, core.AbortNote):
				return res, fmt.Errorf("cluster: client %d: server aborted: %s", es.ID, reply.Note)
			case reply.Type == transport.MsgControl:
				return res, fmt.Errorf("cluster: client %d: unexpected control %q", es.ID, reply.Note)
			case reply.Type != transport.MsgGradient:
				return res, fmt.Errorf("cluster: client %d: unexpected %v", es.ID, reply.Type)
			case !es.HasOutstanding() || reply.Seq != es.Outstanding():
				// A stale duplicate — the reply cache answering a resend
				// the worker also served, or a duplicating network.
				// Drop it and keep waiting for the right seq.
			default:
				if err := es.ApplyGradient(reply); err != nil {
					return res, fmt.Errorf("cluster: client %d apply step %d: %w", es.ID, i, err)
				}
				if cfg.GradRTT != nil {
					cfg.GradRTT.ObserveSince(sentAt)
				}
				if !resent {
					rtt.Observe(time.Since(sentAt))
				}
				break delivery
			}
		}
		res.Steps = es.Steps()
		res.Epochs = es.Epoch()
	}
	for {
		err := send(p, &transport.Message{
			Type: transport.MsgControl, ClientID: es.ID, Note: core.DoneNote, SentAt: now(),
		})
		if err == nil {
			return res, nil
		}
		if err = recoverConn(err); err != nil {
			return res, fmt.Errorf("cluster: client %d done: %w", es.ID, err)
		}
	}
}
