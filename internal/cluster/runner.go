package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/transport"
)

// Transport selects how in-process runner clients reach the server.
type Transport string

const (
	// TransportPair uses in-memory channel connections (fastest; no
	// serialisation).
	TransportPair Transport = "pair"
	// TransportPipe uses net.Pipe under the binary wire framing — full
	// encode/decode fidelity without sockets; the standard test harness.
	TransportPipe Transport = "pipe"
	// TransportTCP uses real loopback TCP sockets.
	TransportTCP Transport = "tcp"
)

// RunnerConfig parameterises an in-process live-cluster run.
type RunnerConfig struct {
	// StepsPerClient is each end-system's batch budget (required).
	StepsPerClient int
	// Transport selects the carrier (default pair).
	Transport Transport
	// Cluster holds the server-side knobs (cap, overflow, straggler,
	// coalescing). Cluster.BatchCoalesce == 0 inherits the deployment's
	// core.Config.BatchCoalesce so one config drives both runtimes; set
	// it to 1 to force serial service regardless of the deployment.
	Cluster Config
	// GradTimeout bounds each client's wait for a gradient (default 30s
	// — a liveness backstop, not a tuning knob).
	GradTimeout time.Duration
}

// RunnerResult summarises a live run, shaped for side-by-side comparison
// with core.SimResult.
type RunnerResult struct {
	// WallDuration is the real elapsed time of the run.
	WallDuration time.Duration
	// StepsPerClient counts batches contributed by each client.
	StepsPerClient []int
	// ServerSteps is the total number of batches the server processed.
	ServerSteps int
	// FinalLoss is the last window-averaged training loss.
	FinalLoss float64
	// Rejected counts backpressure bounces across all clients.
	Rejected int
	// Snapshot is the server's final metrics snapshot.
	Snapshot Snapshot
}

// Run executes a deployment on the live cluster runtime: one goroutine
// per end-system, a live server draining the shared scheduling queue,
// real concurrency end to end. It is the wall-clock counterpart of
// core.Simulation.Run — same deployment, same protocol, but arrival skew
// comes from goroutine and network timing instead of an event heap.
func Run(ctx context.Context, dep *core.Deployment, cfg RunnerConfig) (*RunnerResult, error) {
	if dep == nil {
		return nil, fmt.Errorf("cluster: nil deployment")
	}
	if cfg.StepsPerClient <= 0 {
		return nil, fmt.Errorf("cluster: runner needs positive StepsPerClient")
	}
	if cfg.Transport == "" {
		cfg.Transport = TransportPair
	}
	if cfg.GradTimeout == 0 {
		cfg.GradTimeout = 30 * time.Second
	}

	// One clock shared by the server and every client keeps SentAt and
	// ArrivedAt on the same axis, so staleness-ordered policies see
	// consistent timestamps.
	start := time.Now()
	now := func() time.Duration { return time.Since(start) }
	serverCfg := cfg.Cluster
	if serverCfg.Now == nil {
		serverCfg.Now = now
	}
	if serverCfg.BatchCoalesce == 0 {
		// The deployment-level knob is the default, so a config that
		// drives the simulation coalesces identically on the live path.
		serverCfg.BatchCoalesce = dep.Config.BatchCoalesce
	}

	srv, err := NewServer(dep.Server, serverCfg)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := srv.Start(runCtx); err != nil {
		return nil, err
	}

	conns, cleanup, err := dialAll(srv, cfg.Transport, len(dep.Clients))
	if err != nil {
		cancel()
		_ = srv.Shutdown(context.Background())
		return nil, err
	}
	defer cleanup()

	type outcome struct {
		idx int
		res *ClientResult
		err error
	}
	outcomes := make(chan outcome, len(dep.Clients))
	for i := range dep.Clients {
		i := i
		go func() {
			res, err := RunClient(runCtx, dep.Clients[i], conns[i], ClientConfig{
				Steps:       cfg.StepsPerClient,
				GradTimeout: cfg.GradTimeout,
				Now:         now,
			})
			conns[i].Close()
			outcomes <- outcome{idx: i, res: res, err: err}
		}()
	}

	var errs []error
	result := &RunnerResult{StepsPerClient: make([]int, len(dep.Clients))}
	for range dep.Clients {
		o := <-outcomes
		if o.err != nil {
			errs = append(errs, fmt.Errorf("client %d: %w", o.idx, o.err))
		}
		if o.res != nil {
			result.StepsPerClient[o.idx] = o.res.Steps
			result.Rejected += o.res.Rejected
		}
	}
	// All client goroutines have returned, so the server either has n
	// finished sessions already or never will (a client that died before
	// its join registered cannot satisfy AwaitClients) — bound the wait
	// so Run reports the collected errors instead of hanging.
	awaitBudget := cfg.GradTimeout
	if len(errs) > 0 {
		awaitBudget = 2 * time.Second
	}
	awaitCtx, awaitCancel := context.WithTimeout(ctx, awaitBudget)
	err = srv.AwaitClients(awaitCtx, len(dep.Clients))
	awaitCancel()
	if err != nil && !(len(errs) > 0 && errors.Is(err, context.DeadlineExceeded)) {
		errs = append(errs, err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		errs = append(errs, err)
	}
	result.WallDuration = time.Since(start)
	result.Snapshot = srv.Snapshot()
	result.ServerSteps = result.Snapshot.ServerSteps
	result.FinalLoss = dep.Server.Losses.Last()
	if len(errs) > 0 {
		return result, errors.Join(errs...)
	}
	return result, nil
}

// dialAll builds n client connections to srv over the chosen transport,
// attaching the server side of each. cleanup releases any listener.
func dialAll(srv *Server, tr Transport, n int) ([]transport.Conn, func(), error) {
	conns := make([]transport.Conn, n)
	cleanup := func() {}
	switch tr {
	case TransportPair:
		for i := range conns {
			client, server := transport.NewPair(1)
			srv.Attach(server)
			conns[i] = client
		}
	case TransportPipe:
		for i := range conns {
			clientNC, serverNC := net.Pipe()
			srv.Attach(transport.NewTCPConn(serverNC))
			conns[i] = transport.NewTCPConn(clientNC)
		}
	case TransportTCP:
		lis, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return nil, cleanup, err
		}
		cleanup = func() { lis.Close() }
		go srv.ServeListener(lis)
		for i := range conns {
			c, err := transport.Dial(lis.Addr())
			if err != nil {
				for _, open := range conns[:i] {
					open.Close()
				}
				return nil, cleanup, fmt.Errorf("cluster: dial client %d: %w", i, err)
			}
			conns[i] = c
		}
	default:
		return nil, cleanup, fmt.Errorf("cluster: unknown transport %q", tr)
	}
	return conns, cleanup, nil
}
