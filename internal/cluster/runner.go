package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/obs"
	"github.com/stsl/stsl/internal/simnet"
	"github.com/stsl/stsl/internal/transport"
)

// Transport selects how in-process runner clients reach the server.
type Transport string

const (
	// TransportPair uses in-memory channel connections (fastest; no
	// serialisation).
	TransportPair Transport = "pair"
	// TransportPipe uses net.Pipe under the binary wire framing — full
	// encode/decode fidelity without sockets; the standard test harness.
	TransportPipe Transport = "pipe"
	// TransportTCP uses real loopback TCP sockets.
	TransportTCP Transport = "tcp"
)

// RunnerConfig parameterises an in-process live-cluster run.
type RunnerConfig struct {
	// StepsPerClient is each end-system's batch budget (required).
	StepsPerClient int
	// Transport selects the carrier (default pair).
	Transport Transport
	// Cluster holds the server-side knobs (cap, overflow, straggler,
	// coalescing, resume grace, checkpointing). Cluster.BatchCoalesce ==
	// 0 inherits the deployment's core.Config.BatchCoalesce so one
	// config drives both runtimes; set it to 1 to force serial service
	// regardless of the deployment.
	Cluster Config
	// GradTimeout bounds each client's wait for a gradient (default 30s
	// — a liveness backstop, not a tuning knob).
	GradTimeout time.Duration
	// Faults assigns client i a fault schedule; every carrier that
	// client dials (including reconnects) is wrapped in a
	// transport.FaultCarrier driven by it. nil — or a nil schedule for a
	// given client — injects nothing. The schedule object persists
	// across that client's reconnects, so seeded plans stay
	// deterministic for the whole run.
	Faults func(client int) simnet.FaultSchedule
	// Retry is each client's reconnect budget after a connection loss
	// (0 = fail on first loss, the pre-churn behaviour). Pair it with
	// Cluster.ResumeGrace so the server holds the session open.
	Retry int
	// RetryBackoff is the pause before each reconnect attempt
	// (default 5ms).
	RetryBackoff time.Duration
	// Checksum enables CRC32C-checksummed framing on both directions:
	// every client carrier and (via Cluster.Checksum) every server-side
	// conn sends self-describing checksummed frames, so corruption
	// injected anywhere on the path is detected rather than decoded.
	// Meaningful only on transports with a wire format (pipe, tcp); the
	// in-memory pair transport passes messages by pointer.
	Checksum bool
	// ServerFaults assigns the server side of client i's connection a
	// fault schedule: the accepted conn is wrapped in a
	// transport.FaultCarrier before Attach, so injected corruption and
	// truncation hit the server's receive path. Like Faults, the
	// schedule persists across that client's reconnects. On the TCP
	// transport accepted conns are matched to schedules in accept order,
	// which equals client order only until the first reconnect.
	ServerFaults func(client int) simnet.FaultSchedule
	// WrapClient, when non-nil, wraps client i's fully assembled carrier
	// (outermost, above any FaultCarrier) on every dial — the hook the
	// hostile-fleet chaos suite uses to install transport.HostileCarrier
	// poisoners on selected clients. Return conn unchanged for the rest.
	WrapClient func(client int, conn transport.Conn) transport.Conn
}

// RunnerResult summarises a live run, shaped for side-by-side comparison
// with core.SimResult.
type RunnerResult struct {
	// WallDuration is the real elapsed time of the run.
	WallDuration time.Duration
	// StepsPerClient counts batches contributed by each client.
	StepsPerClient []int
	// ServerSteps is the total number of batches the server processed.
	ServerSteps int
	// FinalLoss is the last window-averaged training loss.
	FinalLoss float64
	// Rejected counts backpressure bounces across all clients.
	Rejected int
	// Reconnects counts redial attempts across all clients — the churn
	// the run absorbed.
	Reconnects int
	// CorruptFrames counts CRC-rejected frames detected by the *clients*
	// (server-side detections are in Snapshot.CorruptFrames).
	CorruptFrames int
	// Snapshot is the server's final metrics snapshot.
	Snapshot Snapshot
}

// Run executes a deployment on the live cluster runtime: one goroutine
// per end-system, a live server draining the shared scheduling queue,
// real concurrency end to end. It is the wall-clock counterpart of
// core.Simulation.Run — same deployment, same protocol, but arrival skew
// comes from goroutine and network timing instead of an event heap.
func Run(ctx context.Context, dep *core.Deployment, cfg RunnerConfig) (*RunnerResult, error) {
	if dep == nil {
		return nil, fmt.Errorf("cluster: nil deployment")
	}
	if cfg.StepsPerClient <= 0 {
		return nil, fmt.Errorf("cluster: runner needs positive StepsPerClient")
	}
	if cfg.Transport == "" {
		cfg.Transport = TransportPair
	}
	if cfg.GradTimeout == 0 {
		cfg.GradTimeout = 30 * time.Second
	}

	// One clock shared by the server and every client keeps SentAt and
	// ArrivedAt on the same axis, so staleness-ordered policies see
	// consistent timestamps.
	start := time.Now()
	now := func() time.Duration { return time.Since(start) }
	serverCfg := cfg.Cluster
	if serverCfg.Now == nil {
		serverCfg.Now = now
	}
	if serverCfg.BatchCoalesce == 0 {
		// The deployment-level knob is the default, so a config that
		// drives the simulation coalesces identically on the live path.
		serverCfg.BatchCoalesce = dep.Config.BatchCoalesce
	}
	if serverCfg.Workers > 1 && serverCfg.NewReplica == nil {
		// The deployment knows how to mint structural twins of its own
		// server, so a multi-worker run needs only the Workers knob.
		serverCfg.NewReplica = dep.NewServerReplica
	}
	if cfg.Checksum {
		serverCfg.Checksum = true
	}

	srv, err := NewServer(dep.Server, serverCfg)
	if err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := srv.Start(runCtx); err != nil {
		return nil, err
	}

	// Server-side fault schedules are minted once per client and reused
	// across reconnects, mirroring the client-side Faults contract.
	var serverScheds []simnet.FaultSchedule
	if cfg.ServerFaults != nil {
		serverScheds = make([]simnet.FaultSchedule, len(dep.Clients))
		for i := range serverScheds {
			serverScheds[i] = cfg.ServerFaults(i)
		}
	}
	serverWrap := func(i int, c transport.Conn) transport.Conn {
		if i >= 0 && i < len(serverScheds) && serverScheds[i] != nil {
			c = transport.NewFaultCarrier(c, serverScheds[i])
		}
		return c
	}

	dial, cleanup, err := dialers(srv, cfg.Transport, serverWrap)
	if err != nil {
		cancel()
		_ = srv.Shutdown(context.Background())
		return nil, err
	}
	defer cleanup()

	type outcome struct {
		idx int
		res *ClientResult
		err error
	}
	outcomes := make(chan outcome, len(dep.Clients))
	for i := range dep.Clients {
		i := i
		// The fault schedule is created once per client and survives
		// reconnects, so a seeded plan scores the client's whole run.
		var sched simnet.FaultSchedule
		if cfg.Faults != nil {
			sched = cfg.Faults(i)
		}
		clientDial := func() (transport.Conn, error) {
			c, err := dial(i)
			if err != nil {
				return nil, err
			}
			if sched != nil {
				c = transport.NewFaultCarrier(c, sched)
			}
			if cfg.WrapClient != nil {
				c = cfg.WrapClient(i, c)
			}
			if cfg.Checksum {
				transport.SetChecksum(c, true)
			}
			return c, nil
		}
		go func() {
			conn, err := clientDial()
			if err != nil {
				outcomes <- outcome{idx: i, err: fmt.Errorf("cluster: dial client %d: %w", i, err)}
				return
			}
			clientCfg := ClientConfig{
				Steps:       cfg.StepsPerClient,
				GradTimeout: cfg.GradTimeout,
				Now:         now,
				// Deterministic per-client seed so a seeded run's retry
				// trace replays exactly.
				BackoffSeed: uint64(i)*0x9e3779b97f4a7c15 + 1,
				// Per-client series; a nil registry yields a nil (no-op)
				// histogram, so this is free when telemetry is off.
				GradRTT: cfg.Cluster.Obs.Histogram(
					"stsl_client_grad_rtt_seconds", obs.Labels{"client": strconv.Itoa(i)}),
			}
			if cfg.Retry > 0 {
				clientCfg.Dial = clientDial
				clientCfg.MaxReconnects = cfg.Retry
				clientCfg.ReconnectBackoff = cfg.RetryBackoff
			}
			res, err := RunClient(runCtx, dep.Clients[i], conn, clientCfg)
			conn.Close()
			outcomes <- outcome{idx: i, res: res, err: err}
		}()
	}

	var errs []error
	result := &RunnerResult{StepsPerClient: make([]int, len(dep.Clients))}
	for range dep.Clients {
		o := <-outcomes
		if o.err != nil {
			errs = append(errs, fmt.Errorf("client %d: %w", o.idx, o.err))
		}
		if o.res != nil {
			result.StepsPerClient[o.idx] = o.res.Steps
			result.Rejected += o.res.Rejected
			result.Reconnects += o.res.Reconnects
			result.CorruptFrames += o.res.CorruptFrames
		}
	}
	// All client goroutines have returned, so the server either has n
	// finished sessions already or never will (a client that died before
	// its join registered cannot satisfy AwaitClients) — bound the wait
	// so Run reports the collected errors instead of hanging.
	awaitBudget := cfg.GradTimeout
	if len(errs) > 0 {
		awaitBudget = 2 * time.Second
	}
	awaitCtx, awaitCancel := context.WithTimeout(ctx, awaitBudget)
	err = srv.AwaitClients(awaitCtx, len(dep.Clients))
	awaitCancel()
	if err != nil && !(len(errs) > 0 && errors.Is(err, context.DeadlineExceeded)) {
		errs = append(errs, err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		errs = append(errs, err)
	}
	result.WallDuration = time.Since(start)
	result.Snapshot = srv.Snapshot()
	result.ServerSteps = result.Snapshot.ServerSteps
	// The session layer owns no model state, so the loss comes from the
	// worker pool: the mean across replicas that served work (at one
	// worker, exactly the primary's curve).
	result.FinalLoss = srv.FinalLoss()
	if len(errs) > 0 {
		return result, errors.Join(errs...)
	}
	return result, nil
}

// dialers builds a per-client dial function over the chosen transport —
// callable repeatedly, which is what lets a churned client reconnect to
// the same server. cleanup releases any listener. serverWrap decorates
// the server side of each new connection before Attach (fault injection
// on the server's receive path); for pair/pipe it sees the dialing
// client's index, for TCP the accept ordinal.
func dialers(srv *Server, tr Transport, serverWrap func(int, transport.Conn) transport.Conn) (func(i int) (transport.Conn, error), func(), error) {
	cleanup := func() {}
	switch tr {
	case TransportPair:
		return func(i int) (transport.Conn, error) {
			client, server := transport.NewPair(1)
			srv.Attach(serverWrap(i, server))
			return client, nil
		}, cleanup, nil
	case TransportPipe:
		return func(i int) (transport.Conn, error) {
			clientNC, serverNC := net.Pipe()
			srv.Attach(serverWrap(i, transport.NewTCPConn(serverNC)))
			return transport.NewTCPConn(clientNC), nil
		}, cleanup, nil
	case TransportTCP:
		lis, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			return nil, cleanup, err
		}
		if srv.cfg.Obs != nil {
			lis.Instrument(transport.NewConnInstruments(srv.cfg.Obs))
		}
		cleanup = func() { lis.Close() }
		go func() {
			// A private accept loop instead of ServeListener so accepted
			// conns pass through serverWrap; cleanup (deferred by Run)
			// closes the listener and ends it.
			for i := 0; ; i++ {
				conn, err := lis.Accept()
				if err != nil {
					return
				}
				srv.Attach(serverWrap(i, conn))
			}
		}()
		return func(int) (transport.Conn, error) {
			return transport.Dial(lis.Addr())
		}, cleanup, nil
	default:
		return nil, cleanup, fmt.Errorf("cluster: unknown transport %q", tr)
	}
}
