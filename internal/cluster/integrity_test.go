package cluster

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/obs"
	"github.com/stsl/stsl/internal/paramsync"
	"github.com/stsl/stsl/internal/simnet"
	"github.com/stsl/stsl/internal/transport"
)

// normPayload is a payload whose L2 norm is exactly n.
func normPayload(n float64) []float64 { return []float64{n} }

// TestSanitizerNaNQuarantine: a non-finite payload quarantines its
// client immediately — no warmup, no suspicion ramp.
func TestSanitizerNaNQuarantine(t *testing.T) {
	z := newSanitizer(16, 4, 3)
	v, score, why := z.check(1, []float64{1, math.NaN(), 3})
	if v != sanitizeQuarantine || score != 3 || why == "" {
		t.Fatalf("NaN payload: verdict=%v score=%v why=%q, want immediate quarantine at limit", v, score, why)
	}
	if v, _, _ := z.check(2, []float64{1, math.Inf(1)}); v != sanitizeQuarantine {
		t.Fatalf("Inf payload: verdict=%v, want quarantine", v)
	}
}

// TestSanitizerWarmup: before the envelope holds sanitizeWarmup accepted
// norms, no outlier verdicts are issued — an honest early client with an
// unusual first batch must not be flagged by a noise-level std estimate.
func TestSanitizerWarmup(t *testing.T) {
	z := newSanitizer(16, 4, 3)
	for i := 0; i < sanitizeWarmup; i++ {
		norm := 1.0
		if i == 2 {
			norm = 1000 // weird, but the envelope is still warming up
		}
		if v, _, why := z.check(i, normPayload(norm)); v != sanitizeOK {
			t.Fatalf("sample %d during warmup: verdict=%v (%s), want OK", i, v, why)
		}
	}
}

// TestSanitizerOutlierEscalation: after warmup, norm bombs raise
// suspicion by one per rejected payload and quarantine at the limit —
// and the rejected norms never enter the envelope, so the bomber cannot
// stretch it until bombs look normal.
func TestSanitizerOutlierEscalation(t *testing.T) {
	z := newSanitizer(16, 4, 3)
	for i := 0; i < 10; i++ {
		if v, _, _ := z.check(i%5, normPayload(1+0.01*float64(i))); v != sanitizeOK {
			t.Fatalf("clean sample %d rejected", i)
		}
	}
	const bomber = 9
	v1, s1, why := z.check(bomber, normPayload(1e6))
	if v1 != sanitizeReject || s1 != 1 || !strings.Contains(why, "outside envelope") {
		t.Fatalf("bomb 1: verdict=%v score=%v why=%q, want reject at suspicion 1", v1, s1, why)
	}
	if v2, s2, _ := z.check(bomber, normPayload(1e6)); v2 != sanitizeReject || s2 != 2 {
		t.Fatalf("bomb 2: verdict=%v score=%v, want reject at suspicion 2", v2, s2)
	}
	if v3, s3, _ := z.check(bomber, normPayload(1e6)); v3 != sanitizeQuarantine || s3 != 3 {
		t.Fatalf("bomb 3: verdict=%v score=%v, want quarantine at the limit", v3, s3)
	}
	// The envelope was not polluted: healthy traffic still passes, and a
	// fresh bomber's first bomb is still an outlier.
	if v, _, _ := z.check(1, normPayload(1.02)); v != sanitizeOK {
		t.Fatal("healthy norm rejected after the bombing run")
	}
	if v, _, _ := z.check(8, normPayload(1e6)); v != sanitizeReject {
		t.Fatal("rejected bombs leaked into the envelope — a later bomb passed as normal")
	}
}

// TestSanitizerSuspicionDecay: clean payloads halve suspicion, and below
// 0.25 the client is forgotten — a transient glitch is not a permanent
// mark.
func TestSanitizerSuspicionDecay(t *testing.T) {
	z := newSanitizer(16, 4, 3)
	for i := 0; i < 10; i++ {
		z.check(i%5, normPayload(1))
	}
	const client = 7
	if v, _, _ := z.check(client, normPayload(1e6)); v != sanitizeReject {
		t.Fatal("outlier not rejected")
	}
	for _, want := range []float64{0.5, 0.25, 0} {
		v, score, _ := z.check(client, normPayload(1))
		if v != sanitizeOK || score != want {
			t.Fatalf("clean sample after glitch: verdict=%v score=%v, want OK at %v", v, score, want)
		}
	}
	if _, tracked := z.suspicion[client]; tracked {
		t.Fatal("fully decayed client still tracked")
	}
}

// TestPoolFailureContainment: a replica sync that cannot produce finite
// parameters under plain Average degrades the service instead of
// panicking — the healthy replicas are checkpointed, the failure is
// visible in the snapshot, and admission refuses new sessions with
// RetryLater.
func TestPoolFailureContainment(t *testing.T) {
	dep := buildDeployment(t, 1, "fifo")
	var mu sync.Mutex
	var saved [][]*core.Server
	sink := func(srvs []*core.Server) error {
		mu.Lock()
		defer mu.Unlock()
		saved = append(saved, append([]*core.Server(nil), srvs...))
		return nil
	}
	srv := startServer(t, dep, Config{
		Workers: 2, NewReplica: dep.NewServerReplica, Checkpoint: sink,
	})
	reps := srv.Replicas()
	reps[1].Stack.Params()[0].Value.Data()[0] = math.NaN()

	err := srv.syncReplicas()
	if !errors.Is(err, paramsync.ErrNonFinite) {
		t.Fatalf("sync over a poisoned replica: %v, want ErrNonFinite", err)
	}
	srv.failPool(err)

	snap := srv.Snapshot()
	if snap.PoolErr == "" || !strings.Contains(snap.PoolErr, "non-finite") {
		t.Fatalf("snapshot PoolErr = %q, want the sync failure", snap.PoolErr)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(saved) != 1 {
		t.Fatalf("failPool wrote %d checkpoints, want 1", len(saved))
	}
	if len(saved[0]) != 1 || saved[0][0] != reps[0] {
		t.Fatalf("checkpoint persisted %d replicas, want only the healthy one", len(saved[0]))
	}
	srv.mu.Lock()
	code, why := srv.admissionLocked()
	srv.mu.Unlock()
	if code != transport.RefusalRetryLater || why != "model pool failed" {
		t.Fatalf("admission after pool failure: (%v, %q), want RetryLater/model pool failed", code, why)
	}
	// failPool is once-only: a second failure neither re-checkpoints nor
	// overwrites the original cause.
	srv.failPool(errors.New("later failure"))
	if len(saved) != 1 {
		t.Fatal("second failPool wrote another checkpoint")
	}
	if got := srv.Snapshot().PoolErr; !strings.Contains(got, "non-finite") {
		t.Fatalf("second failPool overwrote the cause: %q", got)
	}
}

// TestRobustSyncHealsPoisonedReplica: under a robust aggregation rule
// the same poisoned replica is dropped from the aggregate and then
// overwritten by the fan-out — the pool self-heals instead of failing.
func TestRobustSyncHealsPoisonedReplica(t *testing.T) {
	dep := buildDeployment(t, 1, "fifo")
	srv := startServer(t, dep, Config{
		Workers: 2, NewReplica: dep.NewServerReplica, Aggregate: paramsync.MethodTrimmed,
	})
	reps := srv.Replicas()
	reps[1].Stack.Params()[0].Value.Data()[0] = math.NaN()

	if err := srv.syncReplicas(); err != nil {
		t.Fatalf("robust sync over a poisoned replica: %v, want self-heal", err)
	}
	for i, rep := range reps {
		if !paramsync.Finite(rep.Stack.Params()) {
			t.Fatalf("replica %d still non-finite after robust sync", i)
		}
	}
	var a, b bytes.Buffer
	if err := reps[0].Stack.SaveWeights(&a); err != nil {
		t.Fatal(err)
	}
	if err := reps[1].Stack.SaveWeights(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("healed replica does not match the surviving consensus")
	}
}

// TestHostileFleetChaos is the integrity acceptance gate: 8 clients on
// the wire-framed pipe transport with checksummed framing, a corrupting
// network in both directions, one client uploading NaN from its first
// batch and one turning into a norm-bomb mid-run. The defense must
// compose: corrupted frames are detected and resent (never trained on),
// both hostile clients end quarantined, every healthy client still
// trains its exact budget, and the converged loss stays within ±10% of
// the fault-free simulation.
func TestHostileFleetChaos(t *testing.T) {
	const (
		clients    = 8
		steps      = 12
		nanClient  = 6
		bombClient = 7
	)
	reference := faultFreeLoss(t, clients, steps)
	dep := chaosDeployment(t, clients)
	reg := obs.NewRegistry()

	res, err := Run(context.Background(), dep, RunnerConfig{
		StepsPerClient: steps,
		Transport:      TransportPipe,
		GradTimeout:    30 * time.Second,
		Checksum:       true,
		Cluster: Config{
			Sanitize: true,
			Obs:      reg,
		},
		// A corrupting network on both directions of the first four
		// clients' paths: gradients flipped on the way down, activations
		// flipped on the way up (the server-side carrier corrupts its
		// receives).
		Faults: func(i int) simnet.FaultSchedule {
			if i >= 4 {
				return nil
			}
			return simnet.NewFaults(simnet.FaultPlan{Seed: uint64(100 + i), CorruptEveryRecvs: 5})
		},
		ServerFaults: func(i int) simnet.FaultSchedule {
			if i >= 4 {
				return nil
			}
			return simnet.NewFaults(simnet.FaultPlan{Seed: uint64(200 + i), CorruptEveryRecvs: 6})
		},
		WrapClient: func(i int, conn transport.Conn) transport.Conn {
			switch i {
			case nanClient:
				// Broken from the start: every upload is NaN.
				return transport.NewHostileCarrier(conn, transport.PoisonNaN, 0, 0)
			case bombClient:
				// Degrades mid-run, after the fleet envelope warmed up on
				// its honest traffic.
				return transport.NewHostileCarrier(conn, transport.PoisonScale, 4, 1e6)
			}
			return conn
		},
	})
	// The hostile clients' sessions end in quarantine, so the run as a
	// whole reports an error — that error must be the quarantine, not a
	// hung queue or a poisoned model.
	if err == nil {
		t.Fatal("hostile fleet run reported no error — quarantine never fired")
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("run error is not the quarantine: %v", err)
	}
	if res == nil {
		t.Fatal("no result alongside the expected quarantine error")
	}

	if res.Snapshot.Quarantined != 2 {
		t.Fatalf("quarantined %d clients, want exactly the 2 hostile ones", res.Snapshot.Quarantined)
	}
	if got := reg.Counter("stsl_quarantined_total", nil).Value(); got != 2 {
		t.Errorf("stsl_quarantined_total = %d, want 2", got)
	}
	if res.Snapshot.CorruptFrames == 0 {
		t.Error("server detected no corrupt frames despite a corrupting network")
	}
	if got := reg.Counter("stsl_corrupt_frames_total", nil).Value(); got == 0 {
		t.Error("stsl_corrupt_frames_total = 0, want > 0")
	}
	if res.CorruptFrames == 0 {
		t.Error("clients detected no corrupt frames despite corrupted gradients")
	}

	// Exactly-once for every healthy client: detected corruption was
	// recovered by resend + dedup, not skipped and not double-trained.
	for i := 0; i < clients; i++ {
		if i == nanClient || i == bombClient {
			continue
		}
		if res.StepsPerClient[i] != steps {
			t.Errorf("healthy client %d trained %d steps, want exactly %d", i, res.StepsPerClient[i], steps)
		}
	}
	if res.StepsPerClient[nanClient] != 0 {
		t.Errorf("NaN client trained %d steps — poison reached the model", res.StepsPerClient[nanClient])
	}

	if res.FinalLoss <= 0 {
		t.Fatalf("degenerate loss %v", res.FinalLoss)
	}
	gap := math.Abs(res.FinalLoss-reference) / reference
	t.Logf("loss: fault-free sim %.4f, hostile fleet %.4f (gap %.1f%%); corrupt frames server=%d client=%d",
		reference, res.FinalLoss, gap*100, res.Snapshot.CorruptFrames, res.CorruptFrames)
	if gap > 0.10 {
		t.Fatalf("hostile-fleet loss %.4f deviates %.1f%% from fault-free %.4f (tolerance 10%%)",
			res.FinalLoss, gap*100, reference)
	}
}
