package cluster

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/simnet"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

// TestRunnerTransports runs a small live cluster over every carrier —
// in-memory pairs, net.Pipe under the wire framing, and real loopback
// TCP — and checks the full batch budget is trained on each.
func TestRunnerTransports(t *testing.T) {
	for _, tr := range []Transport{TransportPair, TransportPipe, TransportTCP} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			dep := buildDeployment(t, 2, "fifo")
			const steps = 4
			res, err := Run(context.Background(), dep, RunnerConfig{
				StepsPerClient: steps, Transport: tr, GradTimeout: 10 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ServerSteps != 2*steps {
				t.Fatalf("server processed %d batches, want %d", res.ServerSteps, 2*steps)
			}
			for i, s := range res.StepsPerClient {
				if s != steps {
					t.Errorf("client %d contributed %d steps, want %d", i, s, steps)
				}
			}
		})
	}
}

// TestRunnerAllPolicies exercises each scheduling policy end to end on
// the live runtime, including the gated sync-rounds discipline.
func TestRunnerAllPolicies(t *testing.T) {
	for _, policy := range []string{"fifo", "staleness", "fair-rr", "sync-rounds"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			dep := buildDeployment(t, 3, policy)
			const steps = 4
			res, err := Run(context.Background(), dep, RunnerConfig{
				StepsPerClient: steps, GradTimeout: 10 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ServerSteps != 3*steps {
				t.Fatalf("server processed %d batches, want %d", res.ServerSteps, 3*steps)
			}
		})
	}
}

// TestGatedPolicyOverCap regresses two hangs: sync-rounds refuses to
// pop until every active client has queued an item, so a cap below the
// client count would wedge park mode forever and spin reject mode in a
// resend livelock. NewServer lifts the cap for gated policies; both
// runs must complete.
func TestGatedPolicyOverCap(t *testing.T) {
	for _, ov := range []Overflow{OverflowPark, OverflowReject} {
		ov := ov
		t.Run(string(ov), func(t *testing.T) {
			dep := buildDeployment(t, 3, "sync-rounds")
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			res, err := Run(ctx, dep, RunnerConfig{
				StepsPerClient: 3,
				Cluster:        Config{QueueCap: 1, Overflow: ov},
				GradTimeout:    10 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ServerSteps != 9 {
				t.Fatalf("server processed %d batches, want 9", res.ServerSteps)
			}
		})
	}
}

// TestLiveMatchesSimulation is the subsystem's ground truth: a live
// concurrent run with 4 clients must reach the same final loss (±5%) as
// the virtual-time simulation of the identical deployment and seed. The
// two runtimes share all model code; they differ only in whether arrival
// skew comes from an event heap or from real goroutine concurrency, so a
// larger gap would mean the cluster runtime corrupts training. It runs
// both unbatched and with micro-batch coalescing — the coalesced pass
// must change throughput, not learning — and repeats the comparison in
// float32 mode, where the live run additionally rounds every payload
// through TSL2 float32 wire frames while the in-process simulation does
// not, so the parity tolerance widens to ±10%.
func TestLiveMatchesSimulation(t *testing.T) {
	for _, tc := range []struct {
		coalesce int
		dtype    string
		tol      float64
	}{
		{coalesce: 1, dtype: "", tol: 0.05},
		{coalesce: 4, dtype: "", tol: 0.05},
		{coalesce: 1, dtype: "float32", tol: 0.10},
		{coalesce: 4, dtype: "float32", tol: 0.10},
	} {
		tc := tc
		coalesce := tc.coalesce
		name := fmt.Sprintf("coalesce=%d", coalesce)
		if tc.dtype != "" {
			name += "/" + tc.dtype
		}
		t.Run(name, func(t *testing.T) {
			const (
				clients = 4
				steps   = 30
				seed    = 7
			)
			build := func() *core.Deployment {
				ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(32*clients, 41)
				if err != nil {
					t.Fatal(err)
				}
				shards, err := data.PartitionIID(ds, clients, mathx.NewRNG(4))
				if err != nil {
					t.Fatal(err)
				}
				dep, err := core.NewDeployment(core.Config{
					Model: smallModel(), Cut: 1, Clients: clients, Seed: seed,
					BatchSize: 8, LR: 0.05, QueuePolicy: "fifo",
					BatchCoalesce: coalesce, DType: tc.dtype,
				}, shards)
				if err != nil {
					t.Fatal(err)
				}
				return dep
			}

			// Virtual-time reference. A non-zero server processing time
			// lets arrivals accumulate so coalescing actually engages.
			simDep := build()
			paths := make([]*simnet.Path, clients)
			for i := range paths {
				p, err := simnet.NewSymmetricPath(simnet.Constant{D: 5 * time.Millisecond}, 0,
					mathx.NewRNG(uint64(1000+i)))
				if err != nil {
					t.Fatal(err)
				}
				paths[i] = p
			}
			sim, err := core.NewSimulation(simDep, core.SimConfig{
				Paths: paths, MaxStepsPerClient: steps,
				ServerProcTime: 2 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			simRes, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}

			// Live concurrent run of the identical deployment.
			liveDep := build()
			liveRes, err := Run(context.Background(), liveDep, RunnerConfig{
				StepsPerClient: steps, Transport: TransportPipe, GradTimeout: 30 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}

			if liveRes.ServerSteps != simRes.ServerSteps {
				t.Fatalf("live processed %d batches, sim %d", liveRes.ServerSteps, simRes.ServerSteps)
			}
			if simRes.FinalLoss <= 0 || liveRes.FinalLoss <= 0 {
				t.Fatalf("degenerate losses: sim %.4f live %.4f", simRes.FinalLoss, liveRes.FinalLoss)
			}
			relGap := math.Abs(liveRes.FinalLoss-simRes.FinalLoss) / simRes.FinalLoss
			t.Logf("final loss: sim %.4f live %.4f (gap %.2f%%); live wall %v",
				simRes.FinalLoss, liveRes.FinalLoss, relGap*100, liveRes.WallDuration)
			if relGap > tc.tol {
				t.Fatalf("live final loss %.4f deviates %.1f%% from simulation %.4f (tolerance %.0f%%)",
					liveRes.FinalLoss, relGap*100, simRes.FinalLoss, tc.tol*100)
			}
		})
	}
}

// TestRunnerCoalescedPolicies exercises every scheduling policy on the
// live runtime with coalescing enabled: the full batch budget must be
// served and every client accounted for, whether the worker drains
// FIFO picks or atomic sync-rounds rounds.
func TestRunnerCoalescedPolicies(t *testing.T) {
	for _, policy := range []string{"fifo", "staleness", "fair-rr", "sync-rounds"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			dep := buildDeployment(t, 4, policy)
			const steps = 4
			res, err := Run(context.Background(), dep, RunnerConfig{
				StepsPerClient: steps, GradTimeout: 10 * time.Second,
				Cluster: Config{BatchCoalesce: 3},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ServerSteps != 4*steps {
				t.Fatalf("server processed %d batches, want %d", res.ServerSteps, 4*steps)
			}
			for i, s := range res.StepsPerClient {
				if s != steps {
					t.Errorf("client %d contributed %d steps, want %d", i, s, steps)
				}
			}
		})
	}
}

// TestCoalescedBatchFaultIsolation joins one client whose activations
// are valid alongside one that sends garbage the server stack cannot
// consume. The sync-rounds gate makes the coalescing deterministic:
// the worker cannot pop until both clients have queued, and the gated
// round is atomic, so the poisoned and healthy items are guaranteed to
// land in one multi-item batch. The stacked pass fails; the worker
// must fall back to serial, evict only the offender, and finish the
// healthy client's budget.
func TestCoalescedBatchFaultIsolation(t *testing.T) {
	dep := buildDeployment(t, 2, "sync-rounds")
	srv := startServer(t, dep, Config{BatchCoalesce: 4})

	// The poisoned client speaks the protocol but ships a payload with
	// the wrong trailing shape for the server's cut point.
	poisoned, poisonedSrv := transport.NewPair(1)
	srv.Attach(poisonedSrv)
	if err := poisoned.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 1, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err := poisoned.Recv(); err != nil || msg.Note != core.WelcomeNote {
		t.Fatalf("poisoned join: msg=%v err=%v", msg, err)
	}
	if err := poisoned.Send(&transport.Message{
		Type: transport.MsgActivation, ClientID: 1, Seq: 0,
		Payload: tensor.New(8, 3), Labels: make([]int, 8),
	}); err != nil {
		t.Fatal(err)
	}

	const steps = 4
	healthy, healthySrv := transport.NewPair(1)
	srv.Attach(healthySrv)
	done := make(chan error, 1)
	go func() {
		_, err := RunClient(context.Background(), dep.Clients[0], healthy, ClientConfig{
			Steps: steps, GradTimeout: 10 * time.Second,
		})
		healthy.Close()
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("healthy client failed alongside poisoned batchmate: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.AwaitClients(ctx, 2)
	if err == nil {
		t.Fatal("expected the poisoned client's processing error from AwaitClients")
	}
	for _, c := range srv.Snapshot().Clients {
		switch c.ID {
		case 0:
			if c.Served != steps {
				t.Errorf("healthy client served %d, want %d", c.Served, steps)
			}
			if c.Err != "" {
				t.Errorf("healthy client recorded error: %s", c.Err)
			}
		case 1:
			if c.Err == "" {
				t.Error("poisoned client not recorded as evicted")
			}
			if c.Served != 0 {
				t.Errorf("poisoned client served %d, want 0", c.Served)
			}
		}
	}
	poisoned.Close()
}
