package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/metrics"
	"github.com/stsl/stsl/internal/obs"
	"github.com/stsl/stsl/internal/overload"
	"github.com/stsl/stsl/internal/paramsync"
	"github.com/stsl/stsl/internal/queue"
	"github.com/stsl/stsl/internal/transport"
)

// session is the server-side state of one attached end-system. A session
// outlives any single connection: with resume enabled it moves through
// joined → parked (connection lost, state retained) → resumed, and only
// eviction or grace expiry ends it.
type session struct {
	id int
	// token is the resume credential issued at join and echoed in every
	// welcome; a reconnecting client must present it to reclaim the
	// session. Immutable after creation.
	token int

	// lastActive is the server-clock time (nanoseconds) of the last
	// message received — the straggler janitor's evidence of life.
	lastActive atomic.Int64
	// closed is set by the janitor before force-closing the connection,
	// so a goroutine parked on backpressure abandons instead of pushing
	// work for a dead client.
	closed atomic.Bool
	// pending counts activations admitted to the queue but not yet
	// replied to. A session with pending work is waiting on the server
	// (a gated policy, a deep queue), so the janitor must not mistake
	// that silence for straggling.
	pending atomic.Int64

	// The remaining fields are guarded by Server.mu.

	// conn is the session's current carrier; resume swaps it in place,
	// so every send must read it under the lock at send time.
	conn          transport.Conn
	served        int
	lastStaleness time.Duration
	done          bool
	ended         bool
	err           error
	// parked marks a session whose connection died within the resume
	// grace window: state is retained, the janitor counts down grace
	// instead of straggler silence, and the worker caches replies
	// instead of sending them.
	parked   bool
	parkedAt time.Duration
	resumes  int
	// maxAdmitted is the highest activation Seq admitted to the queue
	// (-1 before the first). Reconnecting clients resend their in-flight
	// batch, and duplicating networks redeliver; admission claims the
	// seq under the lock so each batch is trained exactly once.
	maxAdmitted int
	// lastReply caches the most recent gradient reply. A resend of an
	// already-served seq is answered from here rather than reprocessed —
	// the other half of exactly-once.
	lastReply *transport.Message
	// joinOrder is the session's admission rank (the value of
	// Server.joined at register time) — brownout parks the newest
	// sessions first, since they have the least sunk training progress.
	joinOrder int
	// brownout marks a session parked by the shed gate: its new
	// activations are bounced with RefusalRetryLater until the gate
	// closes. Resends of already-admitted work are answered as usual.
	brownout bool
	// retired guards the live-session count: set on the first of
	// done/ended, so a session frees its MaxSessions slot exactly once.
	retired bool
}

// protocolViolation marks receive-loop errors that are the peer's fault.
// A session that violates the protocol is evicted, never parked: resume
// exists for flaky links, not misbehaving clients.
type protocolViolation struct{ error }

func (e protocolViolation) Unwrap() error { return e.error }

func violation(format string, args ...interface{}) error {
	return protocolViolation{fmt.Errorf(format, args...)}
}

// Server is the live centralized side of the framework: it accepts
// end-system sessions over any transport.Conn, feeds one mutex-guarded
// scheduling queue, and drains it with a pool of worker goroutines that
// own all model state — one data-parallel model replica per worker,
// FedAvg-averaged every Config.SyncEvery steps (a single worker with
// Workers <= 1, the classic arrangement). The session layer — receive
// goroutines, the janitor, the reply cache — touches only the queue and
// per-session bookkeeping and owns no model state, so the paper's
// scheduling discipline — not goroutine scheduling luck — decides the
// service order of concurrently arriving activations.
type Server struct {
	cfg  Config
	core *core.Server
	// replicas holds every model replica; replicas[0] is the primary
	// (== core, the deployment's server). Worker i exclusively owns
	// replicas[i] between sync barriers; at a barrier all workers are
	// quiescent and the averaging worker may touch all of them.
	replicas []*core.Server
	q        *queue.Safe
	now      func() time.Duration

	// Telemetry (all optional): ins holds the cluster-level counters
	// and per-replica worker histograms, qIns the queue bundle shared
	// with q, tr the event ring. All nil when Config.Obs/Tracer are
	// unset.
	ins  *instruments
	qIns *queue.Instruments
	tr   *obs.Tracer

	// Overload control plane. gate is the hysteresis admission gate (nil
	// when neither ShedDepth nor ShedLatencyP95 is set), svcLat the
	// service-latency histogram feeding its p95 input (always non-nil:
	// registry-backed under Obs, standalone otherwise), gapRTT the
	// inter-message-gap estimator behind StragglerAuto.
	gate   *overload.Gate
	svcLat *obs.Histogram
	gapRTT *overload.RTTEstimator
	// san screens activation payloads for NaN/Inf and norm outliers
	// before they can reach the queue; nil when Config.Sanitize is off.
	san *sanitizer
	// effCoalesce is the live PopBatch cap: BatchCoalesce normally,
	// BrownoutCoalesce while the shed gate is open. Workers read it per
	// iteration without taking s.mu.
	effCoalesce atomic.Int32

	ctx    context.Context
	cancel context.CancelFunc
	// wg tracks the supervisor and janitor; workerWG tracks the pool
	// workers. The supervisor waits on workerWG and then writes the
	// final checkpoint, so Shutdown (which waits on wg) returns only
	// after it.
	wg       sync.WaitGroup
	workerWG sync.WaitGroup

	// pool coordinates the sync barrier between workers; inert at
	// Workers <= 1.
	pool pool

	startWall time.Time

	// ckptDue counts steps since the last checkpoint. Single-worker
	// mode only (the pool tracks its own counter under pool.mu).
	ckptDue int

	mu       sync.Mutex
	cond     *sync.Cond
	sessions map[int]*session
	tokens   *mathx.RNG
	joined   int
	// live counts sessions still holding an admission slot (joined,
	// neither done nor ended) — the MaxSessions denominator.
	live int
	// refused counts joins bounced by admission control; shed counts
	// queued activations expired past WorkDeadline; degraded mirrors the
	// shed gate's open state; brownouts counts closed→open transitions.
	refused     int
	shed        int
	degraded    bool
	brownouts   int
	steps       int
	rejected    int
	checkpoints int
	ckptErr     error
	lastLoss    float64
	// losses is the pool-wide training-loss curve, fed one raw batch
	// loss per delivery under s.mu. Unlike the replicas' private curves
	// (each windowed over local steps only), its window spans the last
	// N global steps — the measurement the virtual-time simulation
	// reports, so live-vs-sim loss comparisons stay apples to apples at
	// any worker count.
	losses  *metrics.LossCurve
	syncs   int
	lastDiv float64
	// corruptFrames counts inbound frames whose CRC32C trailer did not
	// match — detected, dropped, and recovered by the client's resend.
	corruptFrames int
	// quarantined blocklists client ids the sanitizer ruled hostile:
	// their sessions were aborted and any rejoin or resume is refused
	// for the server's lifetime (an evicted-but-retrying poisoner would
	// otherwise rejoin and continue).
	quarantined map[int]string
	// poolErr is the terminal worker-pool failure (a replica sync that
	// could not produce finite parameters); once set the server refuses
	// new sessions with RetryLater and shuts down after persisting the
	// healthy replicas.
	poolErr error
	started bool
	// rateSamples backs Snapshot's windowed throughput (see
	// observeStepLocked).
	rateSamples []rateSample
}

// NewServer wraps a wired core.Server for live concurrent use. The core
// server's queue is replaced with a thread-safe wrapper; the core server
// must not be driven by anyone else afterwards.
func NewServer(srv *core.Server, cfg Config) (*Server, error) {
	if srv == nil {
		return nil, fmt.Errorf("cluster: nil core server")
	}
	switch cfg.Overflow {
	case "", OverflowPark, OverflowReject:
	default:
		return nil, fmt.Errorf("cluster: unknown overflow mode %q (want park or reject)", cfg.Overflow)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	safe, ok := srv.Queue.(*queue.Safe)
	if !ok {
		safe = queue.NewSafe(srv.Queue)
		srv.Queue = safe
	}
	cfg = cfg.withDefaults()
	if safe.Gated() && cfg.QueueCap > 0 {
		// A gated policy (sync-rounds) refuses to pop until every active
		// client has an item queued, so a cap below the client count can
		// never fill the gate: park wedges the excess sessions forever
		// and reject spins them in a resend livelock. The lock-step
		// protocol already bounds depth to the client count, so lift the
		// cap rather than wedge.
		cfg.QueueCap = 0
	}
	// Same averaging window as the core servers' private curves, so at
	// one worker the pool curve reproduces the classic numbers exactly.
	losses, err := metrics.NewLossCurve(10)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		core:        srv,
		replicas:    []*core.Server{srv},
		q:           safe,
		tr:          cfg.Tracer,
		sessions:    make(map[int]*session),
		quarantined: make(map[int]string),
		losses:      losses,
	}
	if cfg.Sanitize {
		s.san = newSanitizer(cfg.NormWindow, cfg.NormFactor, cfg.SuspicionLimit)
	}
	if cfg.Obs != nil {
		s.ins = newInstruments(cfg.Obs, cfg.Workers)
		s.qIns = queue.NewInstruments(cfg.Obs, safe.Name())
		safe.SetInstruments(s.qIns)
		if srv.Instr == nil {
			srv.Instr = core.NewServerInstruments(cfg.Obs)
		}
	}
	if cfg.ShedDepth > 0 || cfg.ShedLatencyP95 > 0 {
		gate, err := overload.NewGate(overload.GateConfig{
			MaxDepth: cfg.ShedDepth, MaxLatency: cfg.ShedLatencyP95,
		})
		if err != nil {
			return nil, err
		}
		s.gate = gate
	}
	// The service-latency histogram feeds the gate's p95 input and the
	// RetryAfter hint, so it must exist even without a registry; under
	// Obs it is also exported as stsl_service_seconds.
	if cfg.Obs != nil {
		s.svcLat = cfg.Obs.Histogram("stsl_service_seconds", nil)
	} else {
		s.svcLat = new(obs.Histogram)
	}
	s.gapRTT = overload.NewRTTEstimator(time.Millisecond, 2500*time.Millisecond)
	bc := cfg.BatchCoalesce
	if bc < 1 {
		bc = 1
	}
	s.effCoalesce.Store(int32(bc))
	if cfg.Workers > 1 {
		if cfg.NewReplica == nil {
			return nil, fmt.Errorf("cluster: Workers=%d needs a NewReplica factory", cfg.Workers)
		}
		for i := 1; i < cfg.Workers; i++ {
			rep, err := cfg.NewReplica()
			if err != nil {
				return nil, fmt.Errorf("cluster: build replica %d: %w", i, err)
			}
			if rep == nil {
				return nil, fmt.Errorf("cluster: NewReplica returned nil for replica %d", i)
			}
			// Replicas share the primary's thread-safe service metrics
			// and step instruments so pool-wide accounting lands in one
			// place; the loss curve stays private — it is not
			// thread-safe and each worker owns its replica's curve.
			rep.QueueMetrics = srv.QueueMetrics
			rep.Instr = srv.Instr
			// Start in lock-step with the primary; this also fans out a
			// checkpoint restored into the primary before NewServer.
			if err := paramsync.Copy(rep.Stack.Params(), srv.Stack.Params()); err != nil {
				return nil, fmt.Errorf("cluster: replica %d is not structurally identical: %w", i, err)
			}
			s.replicas = append(s.replicas, rep)
		}
		// Linear scaling rule: averaging N replicas folds N steps into
		// ~one, so the pool compensates with an N× (or LRScale×) server
		// learning rate to preserve the sequential trajectory.
		scale := cfg.LRScale
		if scale == 0 {
			scale = float64(cfg.Workers)
		}
		if scale < 0 {
			return nil, fmt.Errorf("cluster: LRScale must be positive, got %v", scale)
		}
		if scale != 1 {
			for _, rep := range s.replicas {
				rep.Optim.SetLR(rep.Optim.LR() * scale)
			}
		}
		s.pool.init(len(s.replicas), cfg.SyncEvery)
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Start launches the worker loop (and the janitor, when straggler
// detection or resume grace is configured). It must be called exactly
// once, before any Attach. The server stops when ctx is cancelled or
// Shutdown is called.
func (s *Server) Start(ctx context.Context) error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("cluster: server already started")
	}
	s.started = true
	// Session tokens need to be unguessable across server restarts, not
	// cryptographically strong; wall-clock seeding is enough.
	s.tokens = mathx.NewRNG(uint64(time.Now().UnixNano()) | 1)
	// ctx is assigned under the same lock that publishes started, so
	// Health() can read both consistently from any goroutine.
	s.ctx, s.cancel = context.WithCancel(ctx)
	s.mu.Unlock()

	s.startWall = time.Now()
	s.now = s.cfg.Now
	if s.now == nil {
		start := s.startWall
		s.now = func() time.Duration { return time.Since(start) }
	}
	if s.cfg.Obs != nil {
		start := s.startWall
		s.cfg.Obs.GaugeFunc("stsl_uptime_seconds", nil, func() float64 {
			return time.Since(start).Seconds()
		})
	}
	// Wake AwaitClients waiters — and workers parked at a sync barrier —
	// when the server stops for any reason.
	context.AfterFunc(s.ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
		s.pool.interrupt()
	})
	for i, rep := range s.replicas {
		s.workerWG.Add(1)
		go s.worker(i, rep)
	}
	// The supervisor outlives the workers: it waits for the pool to
	// drain, writes the final checkpoint while every replica is
	// quiescent, and folds the replicas into the primary for Core().
	s.wg.Add(1)
	go s.supervise()
	// The janitor also drives shed-gate recovery: with no arrivals and an
	// idle worker nothing else would feed the gate, and an open gate
	// would never close after the storm that tripped it drains.
	if s.cfg.StragglerTimeout != 0 || s.cfg.ResumeGrace > 0 || s.gate != nil {
		s.wg.Add(1)
		go s.janitor()
	}
	return nil
}

// worker is one pool goroutine owning one model replica: it drains the
// shared queue per the scheduling policy — up to BatchCoalesce items
// per PopBatch — runs one stacked forward/backward/step over the
// coalesced batch on its replica, and scatters each client's gradient
// slice back to its session. A batch that fails falls back to serving
// its items one at a time, so only the offending client is evicted,
// never its batchmates. At Workers > 1 the workers rendezvous at a
// FedAvg sync barrier every SyncEvery pool steps (see pool.go); with a
// single worker the loop is exactly the classic single-model-owner
// arrangement, checkpoints included.
func (s *Server) worker(id int, rep *core.Server) {
	defer s.workerWG.Done()
	pooled := len(s.replicas) > 1
	if pooled {
		defer s.pool.exit()
	}
	// telemetry gates every clock read on the hot path: with Obs and
	// Tracer unset the loop runs exactly as before, one bool check per
	// stage.
	telemetry := s.ins != nil || s.tr != nil
	var insPop, insProc, insScat *obs.Histogram
	if s.ins != nil {
		w := s.ins.workers[id]
		insPop, insProc, insScat = w.pop, w.process, w.scatter
	}
	for {
		if pooled {
			s.syncIfDue()
		}
		var popStart time.Time
		if telemetry {
			popStart = time.Now()
		}
		var items []queue.Item
		for {
			// The batch cap is read per draw: brownout widens it while the
			// shed gate is open so the backlog drains in fewer passes.
			batchMax := int(s.effCoalesce.Load())
			if s.cfg.WorkDeadline > 0 {
				var dead []queue.Item
				items, dead = s.q.PopBatchDeadline(s.now(), batchMax)
				for _, it := range dead {
					s.shedExpired(it)
				}
			} else {
				items = s.q.PopBatch(s.now(), batchMax)
			}
			if len(items) > 0 {
				break
			}
			select {
			case <-s.q.Pushed():
			case <-s.pool.wake(): // nil (blocks forever) when not pooled
				// A sync barrier wants every worker, including idle
				// ones — arrive, then resume waiting for work.
			case <-s.ctx.Done():
				return
			}
			if pooled {
				s.syncIfDue()
			}
		}
		if telemetry {
			// Blocked waits included: next to worker.process this reads
			// as the worker's idle share — high pop times mean the
			// queue, not the model, is the bottleneck.
			s.workerSpan("worker.pop", id, insPop, popStart, len(items))
		}
		if s.ctx.Err() != nil {
			// Shutdown raced the pop: return the admitted work so the
			// final snapshot and checkpoint account for it instead of
			// silently dropping contributions the clients believe are
			// in flight.
			s.q.Requeue(items...)
			return
		}
		if len(items) > 1 {
			now := s.now()
			var procStart time.Time
			if telemetry {
				procStart = time.Now()
			}
			replies, err := s.processBatch(rep, items, now)
			if err == nil {
				if telemetry {
					s.workerSpan("worker.process", id, insProc, procStart, len(items))
				}
				var scatStart time.Time
				if telemetry {
					scatStart = time.Now()
				}
				loss := rep.LastBatchLoss()
				for i, it := range items {
					s.deliver(it, replies[i], now, loss, nil)
				}
				if telemetry {
					s.workerSpan("worker.scatter", id, insScat, scatStart, len(items))
				}
				s.accountSteps(pooled, len(items))
				continue
			}
			// The coalesced pass failed during pre-flight, before any
			// model state mutated (ProcessBatch guarantees it — no
			// optimiser step, no BatchNorm statistics update), so
			// retrying item by item cannot double-apply anything — and
			// it pins the failure on the malformed contribution
			// instead of the batch.
		}
		for _, it := range items {
			now := s.now()
			var procStart time.Time
			if telemetry {
				procStart = time.Now()
			}
			reply, err := s.process(rep, it, now)
			if telemetry {
				s.workerSpan("worker.process", id, insProc, procStart, 1)
			}
			var scatStart time.Time
			if telemetry {
				scatStart = time.Now()
			}
			s.deliver(it, reply, now, rep.LastBatchLoss(), err)
			if telemetry {
				s.workerSpan("worker.scatter", id, insScat, scatStart, 1)
			}
		}
		s.accountSteps(pooled, len(items))
	}
}

// accountSteps credits n served steps to the checkpoint/sync cadence:
// the pool counter (which may arm a sync barrier) at Workers > 1, the
// classic per-step checkpoint check otherwise.
func (s *Server) accountSteps(pooled bool, n int) {
	if s.gate != nil {
		// Post-serve gate refresh: brownout must track the backlog as the
		// worker drains it, not only at janitor ticks.
		s.refreshGate()
	}
	if pooled {
		wantCkpt := s.cfg.Checkpoint != nil && s.cfg.CheckpointEvery > 0
		s.pool.account(n, wantCkpt, s.cfg.CheckpointEvery)
		return
	}
	s.maybeCheckpoint(n)
}

// supervise waits for the worker pool to drain, then — with every
// replica quiescent — writes the final checkpoint and folds the
// replicas' work into the primary, so Core() (and evaluation through
// the deployment) sees the synthesis of the whole pool. It is the
// reason Shutdown returning implies the final checkpoint is on disk.
func (s *Server) supervise() {
	defer s.wg.Done()
	s.workerWG.Wait()
	if s.cfg.Checkpoint != nil {
		// The final checkpoint at exit makes a graceful restart nearly
		// lossless: every processed step is persisted (the pool format
		// captures each replica's true state), and clients resend only
		// their unacknowledged in-flight batch.
		s.checkpoint()
	}
	if len(s.replicas) > 1 {
		if err := s.syncReplicas(); err != nil {
			// Too late to shed load — the pool is already drained — so
			// just record the failure for Snapshot/Health. The final
			// checkpoint above already excluded poisoned replicas.
			s.mu.Lock()
			if s.poolErr == nil {
				s.poolErr = err
			}
			s.mu.Unlock()
		}
	}
}

// maybeCheckpoint writes a checkpoint once enough steps have accumulated
// since the last one. Single-worker mode only — the pool piggybacks
// checkpoints on sync barriers instead.
func (s *Server) maybeCheckpoint(n int) {
	if s.cfg.Checkpoint == nil || s.cfg.CheckpointEvery <= 0 {
		return
	}
	s.ckptDue += n
	if s.ckptDue < s.cfg.CheckpointEvery {
		return
	}
	s.ckptDue = 0
	s.checkpoint()
}

// checkpoint invokes the configured sink with every replica and records
// the outcome. Called only while no worker is mid-pass: from the single
// worker between passes, from the barrier's averaging worker, or from
// the supervisor after the pool drained — model ownership is exclusive
// at all three. Only successful writes count toward
// Snapshot.Checkpoints; a failing sink shows up as CheckpointErr with
// the counter frozen.
func (s *Server) checkpoint() {
	// Only finite replicas are persisted: a checkpoint containing NaN
	// weights restores into a poisoned server, which is exactly the
	// outcome the verified checkpoint chain exists to prevent. After a
	// partial pool failure this saves the healthy majority's progress.
	healthy := make([]*core.Server, 0, len(s.replicas))
	for _, rep := range s.replicas {
		if paramsync.Finite(rep.Stack.Params()) {
			healthy = append(healthy, rep)
		}
	}
	var err error
	if len(healthy) == 0 {
		err = fmt.Errorf("cluster: checkpoint skipped, every replica is poisoned: %w", paramsync.ErrNonFinite)
	} else {
		err = s.cfg.Checkpoint(healthy)
	}
	s.mu.Lock()
	if err == nil {
		s.checkpoints++
	}
	s.ckptErr = err
	s.mu.Unlock()
}

// failPool converts a replica-sync failure into a contained shutdown:
// the error is recorded once (admission refuses new sessions with
// RetryLater from here on), the healthy replicas are checkpointed while
// model ownership is still exclusive, and the server context is
// cancelled so workers and sessions wind down. Callers hold exclusive
// model access (barrier last-arriver or the supervisor). This replaces
// the old panic: one poisoned sync must degrade the service, not crash
// the process serving every healthy client's final checkpoint.
func (s *Server) failPool(cause error) {
	s.mu.Lock()
	already := s.poolErr != nil
	if !already {
		s.poolErr = cause
	}
	s.mu.Unlock()
	if already {
		return
	}
	s.tr.Event("pool.fail", -1, -1, cause.Error())
	if s.cfg.Checkpoint != nil {
		s.checkpoint()
	}
	s.cancel()
}

// deliver finishes one served item: per-session bookkeeping, eviction on
// a processing error, and the gradient send. loss is the raw batch loss
// of the pass that served this item — passed in because the session
// layer owns no model state and must not reach into a replica another
// worker may be mutating; it feeds the pool-wide loss curve under s.mu.
// The reply is cached before any send attempt, so a session that is
// parked — or swaps connections mid-batch — can be answered from the
// cache when the client resends.
func (s *Server) deliver(it queue.Item, reply *transport.Message, now time.Duration, loss float64, procErr error) {
	s.mu.Lock()
	sess := s.sessions[it.ClientID()]
	s.mu.Unlock()
	if sess != nil {
		sess.pending.Add(-1) // the item left the queue either way
		// The straggler clock measures the *client's* silence. An
		// item can sit in a congested queue longer than the timeout;
		// restart the window at serve time or a healthy lock-step
		// client would look idle the instant its wait ended.
		sess.lastActive.Store(int64(s.now()))
	}
	if procErr != nil {
		// A malformed contribution (wrong cut point, corrupt batch)
		// must not take the whole cluster down: evict the offending
		// client and keep serving the others.
		s.evict(it.ClientID(), procErr)
		return
	}
	s.mu.Lock()
	s.steps++
	s.observeStepLocked(time.Now())
	s.losses.Observe(loss)
	s.lastLoss = s.losses.Last()
	var conn transport.Conn
	parked := false
	if sess != nil {
		sess.served++
		sess.lastStaleness = it.Staleness(now)
		sess.lastReply = reply
		conn = sess.conn
		parked = sess.parked
	}
	s.mu.Unlock()
	// Service latency — enqueue to gradient ready — is the admission
	// gate's p95 input and the basis of the RetryAfter hint.
	s.svcLat.Observe(it.Staleness(s.now()).Seconds())
	if sess == nil {
		return // client left before its item was served
	}
	if parked {
		return // no live carrier; the cached reply waits for the resume
	}
	if err := s.sendTimed(conn, reply); err != nil {
		if errors.Is(err, os.ErrDeadlineExceeded) {
			// A stalled reader: the client is alive but not draining its
			// side, so its TCP window filled and the send overran
			// SendTimeout. Parking would leave the cached reply waiting on
			// a wedged peer; evict so the worker that serves everyone is
			// never blocked on it again.
			s.evict(sess.id, fmt.Errorf("cluster: client %d stalled reading its reply for %v", sess.id, s.cfg.SendTimeout))
			return
		}
		if s.cfg.ResumeGrace > 0 {
			// The carrier died between enqueue and reply. The receive
			// loop will park the session, and the cached reply covers
			// the client's resend after resume — not an error yet.
			return
		}
		// The client died between enqueue and reply; record it on
		// the session and keep serving the others.
		s.mu.Lock()
		if sess.err == nil && !sess.done {
			sess.err = fmt.Errorf("cluster: send gradient to client %d: %w", sess.id, err)
		}
		s.mu.Unlock()
	}
}

// sendTimed sends one worker-originated message, bounding the write
// with Config.SendTimeout when the carrier supports write deadlines. A
// deadline overrun leaves the carrier's buffered framing state
// undefined, so callers must treat the connection as dead afterwards.
func (s *Server) sendTimed(conn transport.Conn, m *transport.Message) error {
	type writeDeadliner interface{ SetWriteDeadline(time.Time) error }
	if s.cfg.SendTimeout > 0 {
		if wd, ok := conn.(writeDeadliner); ok {
			_ = wd.SetWriteDeadline(time.Now().Add(s.cfg.SendTimeout))
			err := conn.Send(m)
			_ = wd.SetWriteDeadline(time.Time{})
			return err
		}
	}
	return conn.Send(m)
}

// shedExpired finishes one deadline-shed item: its client has been
// waiting longer than WorkDeadline, so instead of a model pass it gets
// a RefusalExpired notice telling it to resend (the adaptive-timeout
// client will already be about to). The dedup watermark is rolled back
// under the lock so the resend is admitted rather than mistaken for a
// duplicate of the batch that was never trained on.
func (s *Server) shedExpired(it queue.Item) {
	s.mu.Lock()
	s.shed++
	sess := s.sessions[it.ClientID()]
	var conn transport.Conn
	parked := true
	if sess != nil {
		sess.pending.Add(-1)
		sess.lastActive.Store(int64(s.now()))
		if sess.maxAdmitted == it.Msg.Seq {
			// Lock-step means the shed seq still holds the watermark
			// unless a newer admission already superseded it.
			sess.maxAdmitted = it.Msg.Seq - 1
		}
		conn, parked = sess.conn, sess.parked
	}
	hint := s.retryAfterHint()
	s.mu.Unlock()
	if sess == nil || parked || conn == nil {
		return
	}
	_ = s.sendTimed(conn, &transport.Message{
		Type: transport.MsgControl, ClientID: it.ClientID(), Seq: it.Msg.Seq,
		Note: core.ExpiredNote, Code: transport.RefusalExpired,
		RetryAfter: hint, SentAt: s.now(),
	})
}

// retryAfterHint is the backoff hint attached to refusals and sheds:
// the configured floor, raised to twice the observed p95 service
// latency so a refused client's retry lands after the backlog it was
// refused over has had time to drain, capped at 2s.
func (s *Server) retryAfterHint() time.Duration {
	hint := s.cfg.RetryAfterHint
	if p95 := time.Duration(2 * s.svcLat.Quantile(0.95) * float64(time.Second)); p95 > hint {
		hint = p95
	}
	if hint > 2*time.Second {
		hint = 2 * time.Second
	}
	return hint
}

// refreshGate feeds the admission gate its live inputs — queue depth
// and p95 service latency — and applies the brownout transition when
// the open state flips. Callers must not hold s.mu.
func (s *Server) refreshGate() bool {
	if s.gate == nil {
		return false
	}
	p95 := time.Duration(s.svcLat.Quantile(0.95) * float64(time.Second))
	open := s.gate.Update(s.now(), s.q.Len(), p95)
	s.mu.Lock()
	if open != s.degraded {
		s.setDegradedLocked(open)
	}
	s.mu.Unlock()
	return open
}

// setDegradedLocked flips the brownout machinery with the shed gate:
// widen the effective coalesce so workers drain the backlog in bigger
// passes, and park the newest quarter of live training sessions — the
// least sunk progress — behind RetryLater bounces until the gate
// closes, when both levers revert automatically. Caller must hold s.mu.
func (s *Server) setDegradedLocked(open bool) {
	s.degraded = open
	if !open {
		bc := s.cfg.BatchCoalesce
		if bc < 1 {
			bc = 1
		}
		s.effCoalesce.Store(int32(bc))
		for _, sess := range s.sessions {
			sess.brownout = false
		}
		return
	}
	s.brownouts++
	s.effCoalesce.Store(int32(s.cfg.BrownoutCoalesce))
	var live []*session
	for _, sess := range s.sessions {
		if !sess.retired && !sess.parked {
			live = append(live, sess)
		}
	}
	if len(live) < 2 {
		return // a lone session is the only source of progress; keep it
	}
	sort.Slice(live, func(i, j int) bool { return live[i].joinOrder > live[j].joinOrder })
	n := (len(live) + 3) / 4
	if n >= len(live) {
		n = len(live) - 1
	}
	for _, sess := range live[:n] {
		sess.brownout = true
		s.lifecycle("session.brownout", sess.id, "")
	}
}

// admissionLocked decides whether a fresh session may join right now:
// refused past the MaxSessions cap or while the shed gate is open.
// Caller must hold s.mu.
func (s *Server) admissionLocked() (transport.RefusalCode, string) {
	if s.poolErr != nil {
		// The model pool failed terminally; a session admitted now could
		// never be served. RetryLater (rather than a dropped connection)
		// lets a retry-enabled client survive an operator restart.
		return transport.RefusalRetryLater, "model pool failed"
	}
	if s.cfg.MaxSessions > 0 && s.live >= s.cfg.MaxSessions {
		return transport.RefusalOverloaded, "session cap reached"
	}
	if s.degraded {
		return transport.RefusalOverloaded, "load shed"
	}
	return transport.RefusalNone, ""
}

// refuse sends a structured admission refusal and counts it. Caller
// must hold s.mu; refuse unlocks it.
func (s *Server) refuse(conn transport.Conn, clientID int, code transport.RefusalCode, why string) {
	s.refused++
	hint := s.retryAfterHint()
	s.lifecycle("session.refuse", clientID, why)
	s.mu.Unlock()
	_ = conn.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: clientID,
		Note: core.RefusedNote + ": " + why, Code: code,
		RetryAfter: hint, SentAt: s.now(),
	})
}

// retireLocked frees a session's admission slot exactly once — on the
// first of done/ended — so MaxSessions counts only sessions that can
// still contribute work. Caller must hold s.mu.
func (s *Server) retireLocked(sess *session) {
	if !sess.retired {
		sess.retired = true
		s.live--
	}
}

// process runs one item through the worker's model replica, converting
// the nn package's shape-assertion panics (a client trained with the
// wrong cut point sends activations the server stack cannot consume)
// into errors attributable to the offending client.
func (s *Server) process(rep *core.Server, it queue.Item, now time.Duration) (reply *transport.Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: processing client %d seq %d: %v",
				it.ClientID(), it.Msg.Seq, r)
		}
	}()
	return rep.Process(it, now)
}

// processBatch runs one coalesced pass over already-popped items on the
// worker's replica, converting panics into an error. A batch failure is
// not attributable to a single client — the worker retries the items
// individually to find the offender.
func (s *Server) processBatch(rep *core.Server, items []queue.Item, now time.Duration) (replies []*transport.Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: processing coalesced batch of %d: %v", len(items), r)
		}
	}()
	return rep.ProcessBatch(items, now)
}

// noteCorruptFrame records one inbound frame rejected by its CRC32C
// trailer: the snapshot counter, the stsl_corrupt_frames_total series,
// and a trace event naming the session it arrived on.
func (s *Server) noteCorruptFrame(clientID int) {
	s.mu.Lock()
	s.corruptFrames++
	s.mu.Unlock()
	if s.ins != nil {
		s.ins.corruptFrames.Inc()
	}
	s.tr.Event("frame.corrupt", clientID, -1, "crc32c mismatch")
}

// quarantine terminally ends a hostile session and blocklists its client
// id. Eviction alone is not enough: an evicted client with retry enabled
// rejoins and resumes poisoning, so the blocklist makes the ruling stick
// for the server's lifetime. The abort note tells a well-behaved client
// whose hardware went bad why it is being turned away.
func (s *Server) quarantine(sess *session, conn transport.Conn, why string) error {
	err := fmt.Errorf("cluster: client %d quarantined: %s", sess.id, why)
	s.mu.Lock()
	s.quarantined[sess.id] = why
	if sess.err == nil {
		// A recorded error keeps finishSession from parking the session:
		// quarantine must end it, not hold its slot open for a resume.
		sess.err = err
	}
	sess.closed.Store(true)
	s.mu.Unlock()
	s.lifecycle("session.quarantine", sess.id, why)
	_ = conn.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: sess.id,
		Note: core.AbortNote + ": quarantined: " + why, SentAt: s.now(),
	})
	s.q.Deactivate(sess.id)
	return err
}

// evict terminates one client's session after a processing failure,
// keeping the rest of the cluster alive.
func (s *Server) evict(clientID int, cause error) {
	s.mu.Lock()
	sess := s.sessions[clientID]
	var conn transport.Conn
	if sess != nil {
		if sess.err == nil {
			sess.err = cause
		}
		sess.closed.Store(true)
		if sess.parked {
			// A parked session has no receive loop left to observe the
			// closed carrier and record the end — do it here. The same
			// goes for the eviction event; a live session's eviction is
			// recorded when its receive loop ends.
			sess.ended = true
			sess.parked = false
			s.retireLocked(sess)
			s.lifecycle("session.evict", clientID, cause.Error())
		}
		conn = sess.conn
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	s.q.Deactivate(clientID)
}

// janitor ends sessions that overstayed a deadline: live sessions silent
// past StragglerTimeout, and parked sessions whose client did not resume
// within ResumeGrace. The two cases are deliberately distinct — a parked
// session is *known* disconnected and is judged on grace, never on
// silence.
func (s *Server) janitor() {
	defer s.wg.Done()
	deadline := s.cfg.StragglerTimeout
	if deadline <= 0 || (s.cfg.ResumeGrace > 0 && s.cfg.ResumeGrace < deadline) {
		deadline = s.cfg.ResumeGrace
	}
	period := deadline / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	if s.cfg.StragglerTimeout == StragglerAuto || s.gate != nil {
		// Adaptive deadlines and shed-gate recovery both need a steady
		// cadence independent of the configured constants.
		if period > 25*time.Millisecond {
			period = 25 * time.Millisecond
		}
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
		if s.gate != nil {
			s.refreshGate()
		}
		now := s.now()
		strag := s.stragglerDeadline()
		var drop []*session
		var conns []transport.Conn
		s.mu.Lock()
		for _, sess := range s.sessions {
			if sess.ended || sess.done {
				continue
			}
			if sess.parked {
				if offline := now - sess.parkedAt; offline > s.cfg.ResumeGrace {
					sess.err = fmt.Errorf("cluster: client %d evicted after %v offline (resume grace expired)",
						sess.id, offline.Round(time.Millisecond))
					sess.closed.Store(true)
					// No receive loop remains to record the end.
					sess.ended = true
					sess.parked = false
					s.retireLocked(sess)
					s.lifecycle("session.evict", sess.id, "resume grace expired")
					drop = append(drop, sess)
					conns = append(conns, sess.conn)
				}
				continue
			}
			if strag <= 0 || sess.pending.Load() > 0 {
				// A session with queued work is waiting on the server,
				// not the other way round.
				continue
			}
			idle := now - time.Duration(sess.lastActive.Load())
			if idle > strag {
				sess.err = fmt.Errorf("cluster: client %d dropped as straggler after %v silence",
					sess.id, idle.Round(time.Millisecond))
				sess.closed.Store(true)
				drop = append(drop, sess)
				conns = append(conns, sess.conn)
			}
		}
		if len(drop) > 0 {
			s.cond.Broadcast()
		}
		s.mu.Unlock()
		for i, sess := range drop {
			conns[i].Close()
			s.q.Deactivate(sess.id)
		}
	}
}

// stragglerDeadline resolves the live straggler timeout: the configured
// constant, or — with StragglerAuto — 8× the smoothed inter-message gap
// (RFC 6298 style, fed by every received message), clamped to
// [250ms, 20s]. Before any traffic the estimator sits at its ceiling,
// so the adaptive deadline starts conservative and tightens as real
// cadence data arrives.
func (s *Server) stragglerDeadline() time.Duration {
	d := s.cfg.StragglerTimeout
	if d != StragglerAuto {
		return d
	}
	d = 8 * s.gapRTT.Timeout()
	if d < 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	if d > 20*time.Second {
		d = 20 * time.Second
	}
	return d
}

// Attach hands a freshly accepted connection to the server. The session
// goroutine performs the join (or resume) handshake and then pumps
// activations into the scheduling queue until the client leaves.
func (s *Server) Attach(conn transport.Conn) {
	if s.cfg.Checksum {
		// Inbound decoding is self-describing; this only upgrades the
		// server's own sends to checksummed framing (no-op on carriers
		// without a wire format).
		transport.SetChecksum(conn, true)
	}
	s.wg.Add(1)
	go s.sessionLoop(conn)
}

// ServeListener accepts connections until the listener fails or the
// server stops, attaching each. It blocks; run it in a goroutine when
// combined with AwaitClients.
func (s *Server) ServeListener(lis *transport.Listener) {
	stop := context.AfterFunc(s.ctx, func() { lis.Close() })
	defer stop()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		s.Attach(conn)
	}
}

func (s *Server) sessionLoop(conn transport.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	// A blocked Recv must not outlive the server.
	stop := context.AfterFunc(s.ctx, func() { conn.Close() })
	defer stop()

	// A connection that never introduces itself is a pre-join straggler
	// the janitor cannot see (it only scans joined sessions) — the
	// slow-loris pattern — so the handshake wait gets its own timeout.
	var joinTimer *time.Timer
	if d := s.stragglerDeadline(); d > 0 {
		joinTimer = time.AfterFunc(d, func() { conn.Close() })
	}
	first, err := conn.Recv()
	if joinTimer != nil {
		joinTimer.Stop()
	}
	if err != nil {
		return // connection died before introducing itself
	}
	if first.Type != transport.MsgControl ||
		(first.Note != core.JoinNote && first.Note != core.ResumeNote) {
		_ = conn.Send(&transport.Message{
			Type: transport.MsgControl, Note: core.AbortNote + ": expected join", SentAt: s.now(),
		})
		return
	}
	// Admission decisions want a fresh view of the gate, not one from the
	// last arrival or janitor tick.
	if s.gate != nil {
		s.refreshGate()
	}
	var sess *session
	if first.Note == core.ResumeNote {
		sess = s.resume(conn, first)
	} else {
		sess = s.join(conn, first)
	}
	if sess == nil {
		return // the handshake helper already sent the abort
	}

	if err := conn.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: sess.id, Seq: sess.token,
		Note: core.WelcomeNote, SentAt: s.now(),
	}); err != nil {
		s.finishSession(sess, conn, err)
		return
	}
	s.finishSession(sess, conn, s.receive(sess, conn))
}

// registerLocked creates and registers a fresh session with a new token.
// Caller must hold s.mu.
func (s *Server) registerLocked(id int, conn transport.Conn) *session {
	sess := &session{id: id, conn: conn, maxAdmitted: -1}
	for sess.token == 0 {
		sess.token = int(s.tokens.Uint64() & 0x7fffffff) // fits the wire's 31-bit Seq
	}
	sess.lastActive.Store(int64(s.now()))
	s.sessions[id] = sess
	s.joined++
	s.live++
	sess.joinOrder = s.joined
	s.lifecycle("session.join", id, "")
	s.cond.Broadcast()
	return sess
}

// join handles a fresh join handshake. A *live* duplicate id is refused;
// a *parked* one is displaced — a client that joins instead of resuming
// either never received its welcome (so it holds no token and made no
// progress) or restarted from scratch, and in both cases the right
// outcome is a clean new incarnation, not a terminal abort on what the
// client experiences as a transient first-exchange fault. The retired
// incarnation ends without error; its queued items drain through the
// dedup-safe serve path.
func (s *Server) join(conn transport.Conn, first *transport.Message) *session {
	s.mu.Lock()
	if why, bad := s.quarantined[first.ClientID]; bad {
		s.mu.Unlock()
		_ = conn.Send(&transport.Message{
			Type: transport.MsgControl, ClientID: first.ClientID,
			Note: core.AbortNote + ": quarantined: " + why, SentAt: s.now(),
		})
		return nil
	}
	old, exists := s.sessions[first.ClientID]
	if exists && !old.ended && !old.parked {
		s.mu.Unlock()
		_ = conn.Send(&transport.Message{
			Type: transport.MsgControl, ClientID: first.ClientID,
			Note: core.AbortNote + ": duplicate client id", SentAt: s.now(),
		})
		return nil
	}
	displacing := exists && !old.ended
	if !displacing {
		// Admission control applies only to joins that would consume a
		// new slot; displacing a parked incarnation swaps slots 1:1 and
		// must survive overload — it is how a wedged client recovers.
		if code, why := s.admissionLocked(); code != transport.RefusalNone {
			s.refuse(conn, first.ClientID, code, why)
			return nil
		}
	}
	var oldConn transport.Conn
	if displacing {
		old.ended = true
		old.parked = false
		s.retireLocked(old)
		oldConn = old.conn
	}
	sess := s.registerLocked(first.ClientID, conn)
	s.mu.Unlock()
	if oldConn != nil {
		oldConn.Close()
	}
	return sess
}

// resume handles a reconnect handshake: a parked (or half-open) session
// presenting the right token reclaims its id, queued items, and reply
// cache on the new carrier. A session this server does not hold — it
// restarted, or grace already expired — is accepted as a fresh join, so
// a client with retry enabled survives a server restart transparently.
func (s *Server) resume(conn transport.Conn, first *transport.Message) *session {
	abort := func(why string) *session {
		_ = conn.Send(&transport.Message{
			Type: transport.MsgControl, ClientID: first.ClientID,
			Note: core.AbortNote + ": " + why, SentAt: s.now(),
		})
		return nil
	}
	s.mu.Lock()
	if why, bad := s.quarantined[first.ClientID]; bad {
		s.mu.Unlock()
		return abort("quarantined: " + why)
	}
	sess, ok := s.sessions[first.ClientID]
	if !ok || sess.ended {
		// Resume-as-fresh-join consumes a new slot, so it faces the same
		// admission control as a join. A genuine resume below does not:
		// its slot is already held.
		if code, why := s.admissionLocked(); code != transport.RefusalNone {
			s.refuse(conn, first.ClientID, code, why)
			return nil
		}
		sess = s.registerLocked(first.ClientID, conn)
		s.mu.Unlock()
		return sess
	}
	switch {
	case sess.done:
		s.mu.Unlock()
		return abort("session already completed")
	case sess.err != nil:
		s.mu.Unlock()
		return abort("session terminated")
	case sess.token != first.Seq:
		s.mu.Unlock()
		return abort("bad resume token")
	}
	old := sess.conn
	sess.conn = conn
	sess.parked = false
	sess.resumes++
	sess.lastActive.Store(int64(s.now()))
	s.lifecycle("session.resume", sess.id, "")
	s.mu.Unlock()
	if old != nil && old != conn {
		// The previous carrier may still be half-open (the client saw
		// the death first); force its receive loop out. That loop will
		// find sess.conn changed and exit without touching the session.
		old.Close()
	}
	return sess
}

// receive pumps one carrier of a joined session until the client leaves,
// the carrier dies, or a resume supersedes it.
func (s *Server) receive(sess *session, conn transport.Conn) error {
	for {
		msg, err := conn.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrChecksum) {
				// The CRC trailer caught a corrupted frame. Framing
				// survived — the stream is positioned at the next frame —
				// so count it and keep receiving: the client's adaptive
				// resend recovers the message and dedup keeps the batch
				// exactly-once. Closing the connection here would turn a
				// detected single-frame fault into a full reconnect.
				s.noteCorruptFrame(sess.id)
				continue
			}
			return err
		}
		if s.cfg.StragglerTimeout == StragglerAuto {
			// Feed the adaptive straggler deadline with the session's
			// inter-message gap (or time since its last serve — deliver
			// also restarts the clock, which is the cadence that matters).
			now := s.now()
			if prev := sess.lastActive.Swap(int64(now)); time.Duration(prev) < now {
				s.gapRTT.Observe(now - time.Duration(prev))
			}
		} else {
			sess.lastActive.Store(int64(s.now()))
		}
		switch msg.Type {
		case transport.MsgActivation:
			if msg.ClientID != sess.id {
				return violation("cluster: session %d sent activation for client %d", sess.id, msg.ClientID)
			}
			if msg.Seq < 0 {
				// Negative seqs would corrupt the dedup watermark.
				return violation("cluster: session %d sent negative seq %d", sess.id, msg.Seq)
			}
			if err := s.admit(sess, conn, msg); err != nil {
				return err
			}
		case transport.MsgControl:
			if msg.Note == core.DoneNote {
				s.mu.Lock()
				sess.done = true
				s.retireLocked(sess)
				s.cond.Broadcast()
				s.mu.Unlock()
				s.q.Deactivate(sess.id)
			}
		default:
			return violation("cluster: session %d sent unexpected %v", sess.id, msg.Type)
		}
	}
}

// admit pushes one activation into the scheduling queue, honouring the
// depth cap: park blocks this session (backpressure propagates to the
// client through the transport), reject bounces the batch back.
//
// Admission is exactly-once per sequence number: a reconnecting client
// resends its in-flight batch, and a retransmitting network can deliver
// twice. The seq is claimed under the lock before the push; a duplicate
// of an already-served seq is answered from the reply cache, a duplicate
// of a still-queued seq is dropped (its reply is coming).
func (s *Server) admit(sess *session, conn transport.Conn, msg *transport.Message) error {
	if s.san != nil && msg.Payload != nil {
		// The sanitizer runs before the dedup claim, outside s.mu: a
		// bounced payload leaves its seq unclaimed, so the client's
		// mandated resend of the same poison is screened again and
		// escalates suspicion instead of slipping through as a duplicate.
		verdict, score, why := s.san.check(sess.id, msg.Payload.Data())
		if s.ins != nil && (score > 0 || verdict != sanitizeOK) {
			s.ins.suspicionGauge(sess.id).Set(score)
		}
		switch verdict {
		case sanitizeQuarantine:
			return s.quarantine(sess, conn, why)
		case sanitizeReject:
			// Below the quarantine threshold the payload is still never
			// queued — poison must not reach a replica — but the session
			// survives: bounce with a RetryLater hint, reusing the
			// backpressure note a pre-refusal client already understands.
			s.tr.Event("session.suspect", sess.id, msg.Seq, why)
			return conn.Send(&transport.Message{
				Type: transport.MsgControl, ClientID: sess.id, Seq: msg.Seq,
				Note: core.RejectedNote, Code: transport.RefusalRetryLater,
				RetryAfter: s.retryAfterHint(), SentAt: s.now(),
			})
		}
	}
	s.mu.Lock()
	if msg.Seq <= sess.maxAdmitted {
		var cached *transport.Message
		if sess.lastReply != nil && sess.lastReply.Seq == msg.Seq {
			cached = sess.lastReply
		}
		s.mu.Unlock()
		if cached != nil {
			return conn.Send(cached)
		}
		return nil
	}
	if sess.brownout {
		// The shed gate parked this session: bounce the new batch with a
		// RetryLater hint before claiming the seq, so the mandated resend
		// is admitted normally once the gate closes. The note reuses
		// RejectedNote — a pre-refusal client treats it as ordinary
		// backpressure and resends after its fixed pause.
		hint := s.retryAfterHint()
		s.mu.Unlock()
		return conn.Send(&transport.Message{
			Type: transport.MsgControl, ClientID: sess.id, Seq: msg.Seq,
			Note: core.RejectedNote, Code: transport.RefusalRetryLater,
			RetryAfter: hint, SentAt: s.now(),
		})
	}
	prev := sess.maxAdmitted
	sess.maxAdmitted = msg.Seq
	s.mu.Unlock()
	// unclaim rolls the dedup watermark back when admission fails, so
	// the client's mandated resend of the same seq is not mistaken for
	// a duplicate.
	unclaim := func() {
		s.mu.Lock()
		if sess.maxAdmitted == msg.Seq {
			sess.maxAdmitted = prev
		}
		s.mu.Unlock()
	}

	it := queue.Item{Msg: msg, ArrivedAt: s.now()}
	if s.cfg.WorkDeadline > 0 {
		it.Deadline = it.ArrivedAt + s.cfg.WorkDeadline
	}
	// Count the work as pending before it becomes poppable, so the
	// janitor never sees a gap between push and accounting.
	sess.pending.Add(1)

	if s.cfg.Overflow == OverflowReject {
		// The queue counts the refusal (Instruments.Rejected) inside its
		// own critical section; only the server-level snapshot counter and
		// the bounce reply live here.
		if !s.q.TryPush(it, s.cfg.QueueCap) {
			sess.pending.Add(-1)
			unclaim()
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			return conn.Send(&transport.Message{
				Type: transport.MsgControl, ClientID: sess.id, Seq: msg.Seq,
				Note: core.RejectedNote, SentAt: s.now(),
			})
		}
		s.core.QueueMetrics.ObserveOccupancy(s.q.Len())
		return nil
	}

	// Park mode: wait for headroom and retry. The queue counts the park
	// (Instruments.Parked) on the first refusal only.
	for first := true; !s.q.TryPushParking(it, s.cfg.QueueCap, first); first = false {
		select {
		case <-s.q.Popped():
		case <-time.After(5 * time.Millisecond):
			// Popped is edge-triggered and shared; poll so a dropped
			// wakeup cannot park a session forever.
		case <-s.ctx.Done():
			sess.pending.Add(-1)
			unclaim()
			return s.ctx.Err()
		}
		if sess.closed.Load() {
			sess.pending.Add(-1)
			unclaim()
			return fmt.Errorf("cluster: session %d closed while parked", sess.id)
		}
	}
	s.core.QueueMetrics.ObserveOccupancy(s.q.Len())
	return nil
}

// finishSession resolves the end of one carrier's receive loop. A
// superseded carrier (resume swapped a new one in) is ignored; a lost
// connection within the resume grace parks the session; anything else —
// clean leave, protocol violation, shutdown — ends it.
func (s *Server) finishSession(sess *session, conn transport.Conn, err error) {
	s.mu.Lock()
	if sess.conn != conn {
		// A resume superseded this carrier mid-loop; the new receive
		// loop owns the session now.
		s.mu.Unlock()
		return
	}
	var pv protocolViolation
	isViolation := errors.As(err, &pv)
	if errors.Is(err, transport.ErrClosed) || errors.Is(err, context.Canceled) {
		err = nil
	}
	if !isViolation && !sess.done && sess.err == nil &&
		s.cfg.ResumeGrace > 0 && s.ctx.Err() == nil {
		// The connection is gone but the client may come back: park the
		// session instead of evicting. Queued items stay in the queue,
		// replies accumulate in the cache, the janitor counts grace.
		sess.parked = true
		sess.parkedAt = s.now()
		s.lifecycle("session.park", sess.id, "")
		s.mu.Unlock()
		return
	}
	wasEnded := sess.ended
	sess.ended = true
	sess.parked = false
	s.retireLocked(sess)
	if sess.err == nil {
		sess.err = err
	}
	if !wasEnded {
		// One terminal event per session: a clean end is a leave, an
		// end with a recorded error (processing eviction, straggler
		// drop, protocol violation) is an evict. Sessions the janitor
		// or evict() already closed arrive here with ended set and are
		// not double-counted.
		if sess.err != nil {
			s.lifecycle("session.evict", sess.id, sess.err.Error())
		} else {
			s.lifecycle("session.leave", sess.id, "")
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.q.Deactivate(sess.id)
}

// AwaitClients blocks until at least n clients have joined and every
// joined session has finished (announced done, or left), then returns
// the combined session errors (nil when all completed cleanly). A parked
// session counts as unfinished — it either resumes or is evicted when
// its grace expires. It returns early on server shutdown or ctx
// cancellation.
func (s *Server) AwaitClients(ctx context.Context, n int) error {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.ctx.Err(); err != nil {
			return fmt.Errorf("cluster: server stopped: %w", err)
		}
		if s.joined >= n && s.allFinishedLocked() {
			return s.sessionErrsLocked()
		}
		s.cond.Wait()
	}
}

// allFinishedLocked reports whether every joined session is done or gone.
// Caller must hold s.mu.
func (s *Server) allFinishedLocked() bool {
	for _, sess := range s.sessions {
		if !sess.done && !sess.ended {
			return false
		}
	}
	return true
}

// sessionErrsLocked joins the terminal errors of all sessions. Caller
// must hold s.mu.
func (s *Server) sessionErrsLocked() error {
	var errs []error
	for _, sess := range s.sessions {
		if sess.err != nil {
			errs = append(errs, sess.err)
		}
	}
	return errors.Join(errs...)
}

// Shutdown stops the server: cancels the worker and janitor, closes all
// session connections, and waits (bounded by ctx) for every goroutine to
// exit. With a Checkpoint sink configured, the worker writes a final
// checkpoint on its way out.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	s.mu.Lock()
	conns := make([]transport.Conn, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if !sess.ended {
			conns = append(conns, sess.conn)
		}
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cluster: shutdown timed out: %w", ctx.Err())
	}
}

// Core exposes the primary model server for evaluation after training.
// It must not be touched while the pool is live — Shutdown first, which
// folds every replica's work into the primary before returning.
func (s *Server) Core() *core.Server { return s.core }

// Replicas exposes every model replica (the primary first). Like Core,
// it must not be touched while the pool is live.
func (s *Server) Replicas() []*core.Server { return s.replicas }

// FinalLoss reports the pool-wide window-averaged training loss: the
// average over the last N served batches regardless of which replica
// ran them — the same measurement the virtual-time simulation reports.
// With one worker it equals the primary's Losses.Last().
func (s *Server) FinalLoss() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.losses.Last()
}

// Snapshot captures live metrics; safe from any goroutine at any time.
func (s *Server) Snapshot() Snapshot {
	now := time.Now()
	s.mu.Lock()
	snap := Snapshot{
		Workers:           len(s.replicas),
		ServerSteps:       s.steps,
		Rejected:          s.rejected,
		Refused:           s.refused,
		Shed:              s.shed,
		Degraded:          s.degraded,
		Checkpoints:       s.checkpoints,
		LastLoss:          s.lastLoss,
		Syncs:             s.syncs,
		ReplicaDivergence: s.lastDiv,
		CorruptFrames:     s.corruptFrames,
		Quarantined:       len(s.quarantined),
		Clients:           s.snapshotClients(),
		StepsPerSecWindow: s.windowRateLocked(now),
	}
	if s.ckptErr != nil {
		snap.CheckpointErr = s.ckptErr.Error()
	}
	if s.poolErr != nil {
		snap.PoolErr = s.poolErr.Error()
	}
	s.mu.Unlock()
	snap.Uptime = now.Sub(s.startWall)
	// Guard the division against a snapshot taken immediately after
	// Start: a near-zero uptime would report an absurd lifetime rate
	// (steps / a-few-nanoseconds).
	if snap.Uptime >= time.Millisecond {
		snap.StepsPerSec = float64(snap.ServerSteps) / snap.Uptime.Seconds()
	}
	snap.QueueDepth = s.q.Len()
	snap.MaxQueueDepth = s.core.QueueMetrics.MaxOccupancy()
	return snap
}
