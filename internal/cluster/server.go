package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/queue"
	"github.com/stsl/stsl/internal/transport"
)

// session is the server-side state of one attached end-system.
type session struct {
	id   int
	conn transport.Conn

	// lastActive is the server-clock time (nanoseconds) of the last
	// message received — the straggler janitor's evidence of life.
	lastActive atomic.Int64
	// closed is set by the janitor before force-closing the connection,
	// so a goroutine parked on backpressure abandons instead of pushing
	// work for a dead client.
	closed atomic.Bool
	// pending counts activations admitted to the queue but not yet
	// replied to. A session with pending work is waiting on the server
	// (a gated policy, a deep queue), so the janitor must not mistake
	// that silence for straggling.
	pending atomic.Int64

	// The remaining fields are guarded by Server.mu.
	served        int
	lastStaleness time.Duration
	done          bool
	ended         bool
	err           error
}

// Server is the live centralized side of the framework: it accepts
// end-system sessions over any transport.Conn, feeds one mutex-guarded
// scheduling queue, and drains it with a single worker goroutine that
// owns all model state. Session receive goroutines touch only the queue
// and per-session bookkeeping, so the paper's scheduling discipline —
// not goroutine scheduling luck — decides the service order of
// concurrently arriving activations.
type Server struct {
	cfg  Config
	core *core.Server
	q    *queue.Safe
	now  func() time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	startWall time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	sessions map[int]*session
	joined   int
	steps    int
	rejected int
	lastLoss float64
	started  bool
}

// NewServer wraps a wired core.Server for live concurrent use. The core
// server's queue is replaced with a thread-safe wrapper; the core server
// must not be driven by anyone else afterwards.
func NewServer(srv *core.Server, cfg Config) (*Server, error) {
	if srv == nil {
		return nil, fmt.Errorf("cluster: nil core server")
	}
	switch cfg.Overflow {
	case "", OverflowPark, OverflowReject:
	default:
		return nil, fmt.Errorf("cluster: unknown overflow mode %q (want park or reject)", cfg.Overflow)
	}
	safe, ok := srv.Queue.(*queue.Safe)
	if !ok {
		safe = queue.NewSafe(srv.Queue)
		srv.Queue = safe
	}
	cfg = cfg.withDefaults()
	if safe.Gated() && cfg.QueueCap > 0 {
		// A gated policy (sync-rounds) refuses to pop until every active
		// client has an item queued, so a cap below the client count can
		// never fill the gate: park wedges the excess sessions forever
		// and reject spins them in a resend livelock. The lock-step
		// protocol already bounds depth to the client count, so lift the
		// cap rather than wedge.
		cfg.QueueCap = 0
	}
	s := &Server{
		cfg:      cfg,
		core:     srv,
		q:        safe,
		sessions: make(map[int]*session),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Start launches the worker loop (and the straggler janitor, when
// configured). It must be called exactly once, before any Attach. The
// server stops when ctx is cancelled or Shutdown is called.
func (s *Server) Start(ctx context.Context) error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("cluster: server already started")
	}
	s.started = true
	s.mu.Unlock()

	s.ctx, s.cancel = context.WithCancel(ctx)
	s.startWall = time.Now()
	s.now = s.cfg.Now
	if s.now == nil {
		start := s.startWall
		s.now = func() time.Duration { return time.Since(start) }
	}
	// Wake AwaitClients waiters when the server stops for any reason.
	context.AfterFunc(s.ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	s.wg.Add(1)
	go s.worker()
	if s.cfg.StragglerTimeout > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return nil
}

// worker is the single goroutine that owns the shared model: it drains
// the queue per the scheduling policy — up to BatchCoalesce items per
// PopBatch — runs one stacked forward/backward/step over the coalesced
// batch, and scatters each client's gradient slice back to its session.
// A batch that fails falls back to serving its items one at a time, so
// only the offending client is evicted, never its batchmates.
func (s *Server) worker() {
	defer s.wg.Done()
	batchMax := s.cfg.BatchCoalesce
	if batchMax < 1 {
		batchMax = 1
	}
	for {
		items := s.q.PopBatch(s.now(), batchMax)
		if len(items) == 0 {
			select {
			case <-s.q.Pushed():
				continue
			case <-s.ctx.Done():
				return
			}
		}
		if len(items) > 1 {
			now := s.now()
			replies, err := s.processBatch(items, now)
			if err == nil {
				for i, it := range items {
					s.deliver(it, replies[i], now, nil)
				}
				continue
			}
			// The coalesced pass failed during pre-flight, before any
			// model state mutated (ProcessBatch guarantees it — no
			// optimiser step, no BatchNorm statistics update), so
			// retrying item by item cannot double-apply anything — and
			// it pins the failure on the malformed contribution
			// instead of the batch.
		}
		for _, it := range items {
			now := s.now()
			reply, err := s.process(it, now)
			s.deliver(it, reply, now, err)
		}
	}
}

// deliver finishes one served item: per-session bookkeeping, eviction on
// a processing error, and the gradient send.
func (s *Server) deliver(it queue.Item, reply *transport.Message, now time.Duration, procErr error) {
	s.mu.Lock()
	sess := s.sessions[it.ClientID()]
	s.mu.Unlock()
	if sess != nil {
		sess.pending.Add(-1) // the item left the queue either way
		// The straggler clock measures the *client's* silence. An
		// item can sit in a congested queue longer than the timeout;
		// restart the window at serve time or a healthy lock-step
		// client would look idle the instant its wait ended.
		sess.lastActive.Store(int64(s.now()))
	}
	if procErr != nil {
		// A malformed contribution (wrong cut point, corrupt batch)
		// must not take the whole cluster down: evict the offending
		// client and keep serving the others.
		s.evict(it.ClientID(), procErr)
		return
	}
	s.mu.Lock()
	s.steps++
	s.lastLoss = s.core.Losses.Last()
	if sess != nil {
		sess.served++
		sess.lastStaleness = it.Staleness(now)
	}
	s.mu.Unlock()
	if sess == nil {
		return // client left before its item was served
	}
	if err := sess.conn.Send(reply); err != nil {
		// The client died between enqueue and reply; record it on
		// the session and keep serving the others.
		s.mu.Lock()
		if sess.err == nil && !sess.done {
			sess.err = fmt.Errorf("cluster: send gradient to client %d: %w", sess.id, err)
		}
		s.mu.Unlock()
	}
}

// process runs one item through the shared model, converting the nn
// package's shape-assertion panics (a client trained with the wrong cut
// point sends activations the server stack cannot consume) into errors
// attributable to the offending client.
func (s *Server) process(it queue.Item, now time.Duration) (reply *transport.Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: processing client %d seq %d: %v",
				it.ClientID(), it.Msg.Seq, r)
		}
	}()
	return s.core.Process(it, now)
}

// processBatch runs one coalesced pass over already-popped items,
// converting panics into an error. A batch failure is not attributable
// to a single client — the worker retries the items individually to
// find the offender.
func (s *Server) processBatch(items []queue.Item, now time.Duration) (replies []*transport.Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cluster: processing coalesced batch of %d: %v", len(items), r)
		}
	}()
	return s.core.ProcessBatch(items, now)
}

// evict terminates one client's session after a processing failure,
// keeping the rest of the cluster alive.
func (s *Server) evict(clientID int, cause error) {
	s.mu.Lock()
	sess := s.sessions[clientID]
	if sess != nil && sess.err == nil {
		sess.err = cause
	}
	if sess != nil {
		sess.closed.Store(true)
	}
	s.mu.Unlock()
	if sess != nil {
		sess.conn.Close()
	}
	s.q.Deactivate(clientID)
}

// janitor drops sessions that have been silent past StragglerTimeout.
func (s *Server) janitor() {
	defer s.wg.Done()
	period := s.cfg.StragglerTimeout / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
		now := s.now()
		var drop []*session
		s.mu.Lock()
		for _, sess := range s.sessions {
			if sess.ended || sess.done || sess.pending.Load() > 0 {
				// A session with queued work is waiting on the server,
				// not the other way round.
				continue
			}
			idle := now - time.Duration(sess.lastActive.Load())
			if idle > s.cfg.StragglerTimeout {
				sess.err = fmt.Errorf("cluster: client %d dropped as straggler after %v silence",
					sess.id, idle.Round(time.Millisecond))
				sess.closed.Store(true)
				drop = append(drop, sess)
			}
		}
		s.mu.Unlock()
		for _, sess := range drop {
			sess.conn.Close()
			s.q.Deactivate(sess.id)
		}
	}
}

// Attach hands a freshly accepted connection to the server. The session
// goroutine performs the join handshake and then pumps activations into
// the scheduling queue until the client leaves.
func (s *Server) Attach(conn transport.Conn) {
	s.wg.Add(1)
	go s.sessionLoop(conn)
}

// ServeListener accepts connections until the listener fails or the
// server stops, attaching each. It blocks; run it in a goroutine when
// combined with AwaitClients.
func (s *Server) ServeListener(lis *transport.Listener) {
	stop := context.AfterFunc(s.ctx, func() { lis.Close() })
	defer stop()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		s.Attach(conn)
	}
}

func (s *Server) sessionLoop(conn transport.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	// A blocked Recv must not outlive the server.
	stop := context.AfterFunc(s.ctx, func() { conn.Close() })
	defer stop()

	// A connection that never introduces itself is a pre-join straggler
	// the janitor cannot see (it only scans joined sessions), so the
	// handshake wait gets its own timeout bound.
	var joinTimer *time.Timer
	if s.cfg.StragglerTimeout > 0 {
		joinTimer = time.AfterFunc(s.cfg.StragglerTimeout, func() { conn.Close() })
	}
	first, err := conn.Recv()
	if joinTimer != nil {
		joinTimer.Stop()
	}
	if err != nil {
		return // connection died before introducing itself
	}
	if first.Type != transport.MsgControl || first.Note != core.JoinNote {
		_ = conn.Send(&transport.Message{
			Type: transport.MsgControl, Note: core.AbortNote + ": expected join", SentAt: s.now(),
		})
		return
	}
	sess := &session{id: first.ClientID, conn: conn}
	sess.lastActive.Store(int64(s.now()))

	s.mu.Lock()
	if old, exists := s.sessions[sess.id]; exists && !old.ended {
		s.mu.Unlock()
		_ = conn.Send(&transport.Message{
			Type: transport.MsgControl, ClientID: sess.id,
			Note: core.AbortNote + ": duplicate client id", SentAt: s.now(),
		})
		return
	}
	s.sessions[sess.id] = sess
	s.joined++
	s.cond.Broadcast()
	s.mu.Unlock()

	if err := conn.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: sess.id, Note: core.WelcomeNote, SentAt: s.now(),
	}); err != nil {
		s.finishSession(sess, err)
		return
	}
	s.finishSession(sess, s.receive(sess))
}

// receive pumps one joined session until the client leaves or errors.
func (s *Server) receive(sess *session) error {
	for {
		msg, err := sess.conn.Recv()
		if err != nil {
			return err
		}
		sess.lastActive.Store(int64(s.now()))
		switch msg.Type {
		case transport.MsgActivation:
			if msg.ClientID != sess.id {
				return fmt.Errorf("cluster: session %d sent activation for client %d", sess.id, msg.ClientID)
			}
			if err := s.admit(sess, msg); err != nil {
				return err
			}
		case transport.MsgControl:
			if msg.Note == core.DoneNote {
				s.mu.Lock()
				sess.done = true
				s.cond.Broadcast()
				s.mu.Unlock()
				s.q.Deactivate(sess.id)
			}
		default:
			return fmt.Errorf("cluster: session %d sent unexpected %v", sess.id, msg.Type)
		}
	}
}

// admit pushes one activation into the scheduling queue, honouring the
// depth cap: park blocks this session (backpressure propagates to the
// client through the transport), reject bounces the batch back.
func (s *Server) admit(sess *session, msg *transport.Message) error {
	it := queue.Item{Msg: msg, ArrivedAt: s.now()}
	// Count the work as pending before it becomes poppable, so the
	// janitor never sees a gap between push and accounting.
	sess.pending.Add(1)
	for !s.q.TryPush(it, s.cfg.QueueCap) {
		if s.cfg.Overflow == OverflowReject {
			sess.pending.Add(-1)
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			return sess.conn.Send(&transport.Message{
				Type: transport.MsgControl, ClientID: sess.id, Seq: msg.Seq,
				Note: core.RejectedNote, SentAt: s.now(),
			})
		}
		select {
		case <-s.q.Popped():
		case <-time.After(5 * time.Millisecond):
			// Popped is edge-triggered and shared; poll so a dropped
			// wakeup cannot park a session forever.
		case <-s.ctx.Done():
			sess.pending.Add(-1)
			return s.ctx.Err()
		}
		if sess.closed.Load() {
			sess.pending.Add(-1)
			return fmt.Errorf("cluster: session %d closed while parked", sess.id)
		}
	}
	s.core.QueueMetrics.ObserveOccupancy(s.q.Len())
	return nil
}

// finishSession records a session's terminal state. A clean disconnect
// (peer closed, or server shutdown) is not an error.
func (s *Server) finishSession(sess *session, err error) {
	if errors.Is(err, transport.ErrClosed) || errors.Is(err, context.Canceled) {
		err = nil
	}
	s.mu.Lock()
	sess.ended = true
	if sess.err == nil {
		sess.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.q.Deactivate(sess.id)
}

// AwaitClients blocks until at least n clients have joined and every
// joined session has finished (announced done, or left), then returns
// the combined session errors (nil when all completed cleanly). It
// returns early on server shutdown or ctx cancellation.
func (s *Server) AwaitClients(ctx context.Context, n int) error {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := s.ctx.Err(); err != nil {
			return fmt.Errorf("cluster: server stopped: %w", err)
		}
		if s.joined >= n && s.allFinishedLocked() {
			return s.sessionErrsLocked()
		}
		s.cond.Wait()
	}
}

// allFinishedLocked reports whether every joined session is done or gone.
// Caller must hold s.mu.
func (s *Server) allFinishedLocked() bool {
	for _, sess := range s.sessions {
		if !sess.done && !sess.ended {
			return false
		}
	}
	return true
}

// sessionErrsLocked joins the terminal errors of all sessions. Caller
// must hold s.mu.
func (s *Server) sessionErrsLocked() error {
	var errs []error
	for _, sess := range s.sessions {
		if sess.err != nil {
			errs = append(errs, sess.err)
		}
	}
	return errors.Join(errs...)
}

// Shutdown stops the server: cancels the worker and janitor, closes all
// session connections, and waits (bounded by ctx) for every goroutine to
// exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	s.mu.Lock()
	conns := make([]transport.Conn, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if !sess.ended {
			conns = append(conns, sess.conn)
		}
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("cluster: shutdown timed out: %w", ctx.Err())
	}
}

// Core exposes the wrapped model server for evaluation after training.
// It must not be touched while the worker is live — Shutdown first.
func (s *Server) Core() *core.Server { return s.core }

// Snapshot captures live metrics; safe from any goroutine at any time.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	snap := Snapshot{
		ServerSteps: s.steps,
		Rejected:    s.rejected,
		LastLoss:    s.lastLoss,
		Clients:     s.snapshotClients(),
	}
	s.mu.Unlock()
	snap.Uptime = time.Since(s.startWall)
	if snap.Uptime > 0 {
		snap.StepsPerSec = float64(snap.ServerSteps) / snap.Uptime.Seconds()
	}
	snap.QueueDepth = s.q.Len()
	snap.MaxQueueDepth = s.core.QueueMetrics.MaxOccupancy()
	return snap
}
