package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/simnet"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

// chaosDeployment builds the fixed deployment the chaos suite trains —
// one builder so the live faulty run and the fault-free simulation
// reference start from byte-identical weights and data.
func chaosDeployment(t testing.TB, clients int) *core.Deployment {
	t.Helper()
	ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(32*clients, 41)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.PartitionIID(ds, clients, mathx.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := core.NewDeployment(core.Config{
		Model: smallModel(), Cut: 1, Clients: clients, Seed: 7,
		BatchSize: 8, LR: 0.05, QueuePolicy: "fifo",
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// faultFreeLoss runs the virtual-time simulation of the same deployment,
// seed, and budget — the chaos suite's convergence reference.
func faultFreeLoss(t testing.TB, clients, steps int) float64 {
	t.Helper()
	dep := chaosDeployment(t, clients)
	paths := make([]*simnet.Path, clients)
	for i := range paths {
		p, err := simnet.NewSymmetricPath(simnet.Constant{D: 5 * time.Millisecond}, 0,
			mathx.NewRNG(uint64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	sim, err := core.NewSimulation(dep, core.SimConfig{
		Paths: paths, MaxStepsPerClient: steps, ServerProcTime: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss <= 0 {
		t.Fatalf("degenerate reference loss %v", res.FinalLoss)
	}
	return res.FinalLoss
}

// TestChaosConformance is the chaos acceptance gate: the live runtime,
// under seeded fault schedules that drop, truncate, delay, and duplicate
// traffic mid-training, must not merely survive — it must train every
// scheduled batch exactly once (resume + dedup) and land within ±10% of
// the fault-free virtual-time simulation's loss on the same seed.
func TestChaosConformance(t *testing.T) {
	const (
		clients = 3
		steps   = 20
	)
	reference := faultFreeLoss(t, clients, steps)

	cases := []struct {
		name string
		// plan builds client i's fault schedule (nil = healthy client).
		plan func(i int) *simnet.FaultPlan
	}{
		{
			// Every client loses its link on a fixed send cadence —
			// steady churn across the whole run.
			name: "drop-every-5th-send",
			plan: func(i int) *simnet.FaultPlan {
				return &simnet.FaultPlan{SeverEverySends: 5}
			},
		},
		{
			// One client's gateway flaps three times in a row early on
			// (the hospital-restarts scenario); the rest stay clean.
			name: "burst-disconnect",
			plan: func(i int) *simnet.FaultPlan {
				if i != 1 {
					return nil
				}
				return &simnet.FaultPlan{SeverAtSends: []int{3, 4, 5}}
			},
		},
		{
			// A far client on a degraded path: slow and occasionally
			// truncating frames mid-wire.
			name: "slow-client-with-truncation",
			plan: func(i int) *simnet.FaultPlan {
				if i != 0 {
					return nil
				}
				return &simnet.FaultPlan{
					Seed: 11, DelayProb: 0.5, Delay: 3 * time.Millisecond,
					TruncateEverySends: 6,
				}
			},
		},
		{
			// A retransmitting network: deliveries are duplicated, and
			// seeded random severs hit every client.
			name: "duplicates-and-random-severs",
			plan: func(i int) *simnet.FaultPlan {
				return &simnet.FaultPlan{
					Seed: uint64(100 + i), DupProb: 0.15, SeverProb: 0.05,
				}
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			schedules := make([]simnet.FaultSchedule, clients)
			for i := 0; i < clients; i++ {
				if p := tc.plan(i); p != nil {
					schedules[i] = simnet.NewFaults(*p)
				}
			}
			dep := chaosDeployment(t, clients)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			res, err := Run(ctx, dep, RunnerConfig{
				StepsPerClient: steps,
				GradTimeout:    20 * time.Second,
				Cluster:        Config{ResumeGrace: 10 * time.Second},
				Faults:         func(i int) simnet.FaultSchedule { return schedules[i] },
				Retry:          50,
				RetryBackoff:   2 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("chaotic run failed: %v", err)
			}
			// Exactly-once: dedup-by-seq plus the reply cache mean churn
			// may delay batches but never lose or double-train them.
			if res.ServerSteps != clients*steps {
				t.Fatalf("server processed %d batches, want exactly %d", res.ServerSteps, clients*steps)
			}
			for i, s := range res.StepsPerClient {
				if s != steps {
					t.Errorf("client %d contributed %d steps, want %d", i, s, steps)
				}
			}
			gap := math.Abs(res.FinalLoss-reference) / reference
			t.Logf("loss: fault-free sim %.4f, chaotic live %.4f (gap %.1f%%); %d reconnects",
				reference, res.FinalLoss, gap*100, res.Reconnects)
			if gap > 0.10 {
				t.Fatalf("chaotic loss %.4f deviates %.1f%% from fault-free %.4f (tolerance 10%%)",
					res.FinalLoss, gap*100, reference)
			}
		})
	}
}

// TestChaosReconnectActuallyHappens guards the harness itself: a plan
// that severs every few sends must produce observable churn (reconnects
// and server-side resumes), or the suite would silently degrade into a
// fault-free test.
func TestChaosReconnectActuallyHappens(t *testing.T) {
	const (
		clients = 2
		steps   = 10
	)
	schedules := make([]simnet.FaultSchedule, clients)
	for i := range schedules {
		schedules[i] = simnet.NewFaults(simnet.FaultPlan{SeverEverySends: 4})
	}
	dep := chaosDeployment(t, clients)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := Run(ctx, dep, RunnerConfig{
		StepsPerClient: steps,
		GradTimeout:    20 * time.Second,
		Cluster:        Config{ResumeGrace: 10 * time.Second},
		Faults:         func(i int) simnet.FaultSchedule { return schedules[i] },
		Retry:          50,
		RetryBackoff:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconnects == 0 {
		t.Fatal("fault plan injected no reconnects — the chaos harness is not engaging")
	}
	resumes := 0
	for _, c := range res.Snapshot.Clients {
		resumes += c.Resumes
	}
	if resumes == 0 {
		t.Fatalf("%d reconnects but no server-side session resumes recorded", res.Reconnects)
	}
}

// TestResumeReclaimsSession drives the resume protocol by hand: a client
// joins, uploads a batch, loses its connection before the gradient
// arrives, reconnects with its token — and must get the very gradient it
// was owed, served from the reply cache, without the server training the
// batch twice.
func TestResumeReclaimsSession(t *testing.T) {
	dep := buildDeployment(t, 1, "fifo")
	srv := startServer(t, dep, Config{ResumeGrace: 10 * time.Second})
	es := dep.Clients[0]

	conn, serverSide := transport.NewPair(1)
	srv.Attach(serverSide)
	if err := conn.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 0, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	welcome, err := conn.Recv()
	if err != nil || welcome.Note != core.WelcomeNote {
		t.Fatalf("join: msg=%v err=%v", welcome, err)
	}
	token := welcome.Seq
	if token == 0 {
		t.Fatal("welcome carried no session token")
	}

	// Upload one batch, then kill the connection before reading the
	// reply: the gradient lands in the session's reply cache.
	msg, err := es.ProduceBatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(msg); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Snapshot().ServerSteps == 1 })
	conn.Close()
	waitFor(t, func() bool {
		cs := srv.Snapshot().Clients
		return len(cs) == 1 && cs[0].Parked
	})

	// Reconnect with the token; the resumed session must answer the
	// resent seq from the cache, not retrain it.
	conn2, serverSide2 := transport.NewPair(1)
	srv.Attach(serverSide2)
	if err := conn2.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 0, Note: core.ResumeNote, Seq: token,
	}); err != nil {
		t.Fatal(err)
	}
	welcome2, err := conn2.Recv()
	if err != nil || welcome2.Note != core.WelcomeNote {
		t.Fatalf("resume: msg=%v err=%v", welcome2, err)
	}
	if welcome2.Seq != token {
		t.Fatalf("resume reissued token %d, want original %d", welcome2.Seq, token)
	}
	if err := conn2.Send(msg); err != nil { // resend the in-flight batch
		t.Fatal(err)
	}
	grad, err := conn2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if grad.Type != transport.MsgGradient || grad.Seq != msg.Seq {
		t.Fatalf("resumed session got %v seq %d, want gradient seq %d", grad.Type, grad.Seq, msg.Seq)
	}
	if got := srv.Snapshot().ServerSteps; got != 1 {
		t.Fatalf("server trained the resent batch again: %d steps, want 1", got)
	}
	if err := es.ApplyGradient(grad); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	if snap.Clients[0].Resumes != 1 {
		t.Fatalf("recorded %d resumes, want 1", snap.Clients[0].Resumes)
	}
	conn2.Close()
}

// TestResumeBadTokenRefused checks the token actually guards the
// session: a reconnect with the wrong credential is aborted and the
// parked session stays reclaimable by the real client.
func TestResumeBadTokenRefused(t *testing.T) {
	dep := buildDeployment(t, 1, "fifo")
	srv := startServer(t, dep, Config{ResumeGrace: 10 * time.Second})

	conn, serverSide := transport.NewPair(1)
	srv.Attach(serverSide)
	if err := conn.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 0, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	welcome, err := conn.Recv()
	if err != nil || welcome.Note != core.WelcomeNote {
		t.Fatalf("join: msg=%v err=%v", welcome, err)
	}
	token := welcome.Seq
	conn.Close()
	waitFor(t, func() bool {
		cs := srv.Snapshot().Clients
		return len(cs) == 1 && cs[0].Parked
	})

	thief, thiefSide := transport.NewPair(1)
	srv.Attach(thiefSide)
	if err := thief.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 0, Note: core.ResumeNote, Seq: token + 1,
	}); err != nil {
		t.Fatal(err)
	}
	reply, err := thief.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Note != core.AbortNote+": bad resume token" {
		t.Fatalf("bad token got %q", reply.Note)
	}

	// The rightful owner still resumes.
	owner, ownerSide := transport.NewPair(1)
	srv.Attach(ownerSide)
	if err := owner.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 0, Note: core.ResumeNote, Seq: token,
	}); err != nil {
		t.Fatal(err)
	}
	if reply, err := owner.Recv(); err != nil || reply.Note != core.WelcomeNote {
		t.Fatalf("owner resume: msg=%v err=%v", reply, err)
	}
	owner.Close()
	thief.Close()
}

// TestGraceExpiryEvicts checks the janitor's third state: a parked
// session whose client never returns is evicted once the grace window
// closes, with an error that says why, and the cluster keeps serving.
func TestGraceExpiryEvicts(t *testing.T) {
	dep := buildDeployment(t, 2, "fifo")
	srv := startServer(t, dep, Config{ResumeGrace: 50 * time.Millisecond})

	// Client 1 joins and vanishes.
	ghost, ghostSide := transport.NewPair(1)
	srv.Attach(ghostSide)
	if err := ghost.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 1, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err := ghost.Recv(); err != nil || msg.Note != core.WelcomeNote {
		t.Fatalf("ghost join: msg=%v err=%v", msg, err)
	}
	ghost.Close()

	// Client 0 trains normally through the churn.
	const steps = 3
	healthy, healthySide := transport.NewPair(1)
	srv.Attach(healthySide)
	done := make(chan error, 1)
	go func() {
		_, err := RunClient(context.Background(), dep.Clients[0], healthy, ClientConfig{
			Steps: steps, GradTimeout: 10 * time.Second,
		})
		healthy.Close()
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.AwaitClients(ctx, 2)
	if err == nil {
		t.Fatal("expected grace-expiry eviction error from AwaitClients")
	}
	var evicted bool
	for _, c := range srv.Snapshot().Clients {
		if c.ID == 1 {
			if c.Parked {
				t.Error("ghost still parked after grace expiry")
			}
			evicted = c.Err != ""
		}
		if c.ID == 0 && c.Served != steps {
			t.Errorf("healthy client served %d, want %d", c.Served, steps)
		}
	}
	if !evicted {
		t.Fatal("ghost not recorded as evicted")
	}
}

// restartableServer is the chaos harness for server restarts: dial
// targets whichever cluster server is currently live, and returns an
// error while the server is down so clients burn a retry and back off —
// exactly what a real endpoint does between process death and rebind.
type restartableServer struct {
	mu  sync.Mutex
	srv *Server
}

func (r *restartableServer) set(s *Server) {
	r.mu.Lock()
	r.srv = s
	r.mu.Unlock()
}

func (r *restartableServer) dial() (transport.Conn, error) {
	r.mu.Lock()
	srv := r.srv
	r.mu.Unlock()
	if srv == nil {
		return nil, fmt.Errorf("server down")
	}
	client, server := transport.NewPair(1)
	srv.Attach(server)
	return client, nil
}

// TestServerRestartFromCheckpoint is the acceptance scenario: training
// runs live, the server process dies mid-round (final checkpoint written
// on the way out), a fresh server restores the checkpoint, and the
// retry-enabled clients re-handshake and finish. The run must complete
// every client's budget and land within ±10% of the fault-free
// simulation's loss on the same seed.
func TestServerRestartFromCheckpoint(t *testing.T) {
	const (
		clients = 2
		steps   = 16
	)
	reference := faultFreeLoss(t, clients, steps)

	// The checkpoint "file" is a buffer: this test models a process
	// restart, not a filesystem (FileCheckpointer has its own test).
	var ckptMu sync.Mutex
	var ckpt bytes.Buffer
	sink := func(srvs []*core.Server) error {
		ckptMu.Lock()
		defer ckptMu.Unlock()
		ckpt.Reset()
		return core.SavePoolState(&ckpt, srvs)
	}

	dep := chaosDeployment(t, clients)
	serverCfg := Config{
		ResumeGrace:     10 * time.Second,
		Checkpoint:      sink,
		CheckpointEvery: 4,
	}
	srv1, err := NewServer(dep.Server, serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	endpoint := &restartableServer{}
	endpoint.set(srv1)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	outcomes := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		go func() {
			conn, err := endpoint.dial()
			if err != nil {
				outcomes <- err
				return
			}
			res, err := RunClient(ctx, dep.Clients[i], conn, ClientConfig{
				Steps:            steps,
				GradTimeout:      20 * time.Second,
				Dial:             endpoint.dial,
				MaxReconnects:    200,
				ReconnectBackoff: 2 * time.Millisecond,
			})
			conn.Close()
			if err == nil && res.Steps != steps {
				err = fmt.Errorf("client %d finished %d steps, want %d", i, res.Steps, steps)
			}
			outcomes <- err
		}()
	}

	// Let training get underway, then kill the first server. Its worker
	// writes the final checkpoint during Shutdown.
	waitFor(t, func() bool { return srv1.Snapshot().ServerSteps >= 6 })
	endpoint.set(nil)
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv1.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	shutCancel()
	steppedBeforeRestart := srv1.Snapshot().ServerSteps
	if srv1.Snapshot().Checkpoints == 0 {
		t.Fatal("first server wrote no checkpoints")
	}

	// "Restart": a structurally identical server restores the state the
	// first one persisted, and the endpoint comes back up.
	dep2 := chaosDeployment(t, clients)
	ckptMu.Lock()
	err = dep2.Server.LoadState(bytes.NewReader(ckpt.Bytes()))
	ckptMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if got := dep2.Server.Steps(); got == 0 {
		t.Fatal("restored server lost its step counter")
	} else if got > steppedBeforeRestart {
		t.Fatalf("restored %d steps, more than the %d processed", got, steppedBeforeRestart)
	}
	srv2, err := NewServer(dep2.Server, serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := srv2.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	endpoint.set(srv2)

	for i := 0; i < clients; i++ {
		if err := <-outcomes; err != nil {
			t.Fatalf("client failed across the restart: %v", err)
		}
	}
	awaitCtx, awaitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer awaitCancel()
	if err := srv2.AwaitClients(awaitCtx, clients); err != nil {
		t.Fatalf("post-restart sessions: %v", err)
	}

	finalLoss := dep2.Server.Losses.Last()
	gap := math.Abs(finalLoss-reference) / reference
	t.Logf("loss: fault-free sim %.4f, restarted live %.4f (gap %.1f%%); %d steps pre-restart, %d total",
		reference, finalLoss, gap*100, steppedBeforeRestart, dep2.Server.Steps())
	if finalLoss <= 0 {
		t.Fatalf("degenerate post-restart loss %v", finalLoss)
	}
	if gap > 0.10 {
		t.Fatalf("post-restart loss %.4f deviates %.1f%% from fault-free %.4f (tolerance 10%%)",
			finalLoss, gap*100, reference)
	}
}

// TestFileCheckpointerRoundTrip checks the atomic file sink and
// RestoreFromFile, including the missing-file = fresh-start contract.
func TestFileCheckpointerRoundTrip(t *testing.T) {
	path := t.TempDir() + "/server.ckpt"

	dep := buildDeployment(t, 1, "fifo")
	if _, restored, err := RestoreFromFile(path, dep.Server); err != nil || restored {
		t.Fatalf("missing checkpoint: restored=%v err=%v, want fresh start", restored, err)
	}

	// Train a few steps so there is real state to persist.
	res, err := Run(context.Background(), dep, RunnerConfig{StepsPerClient: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerSteps != 3 {
		t.Fatalf("trained %d steps, want 3", res.ServerSteps)
	}
	if err := FileCheckpointer(path)([]*core.Server{dep.Server}); err != nil {
		t.Fatal(err)
	}

	dep2 := buildDeployment(t, 1, "fifo")
	steps, restored, err := RestoreFromFile(path, dep2.Server)
	if err != nil || !restored {
		t.Fatalf("restore: restored=%v err=%v", restored, err)
	}
	if steps != 3 {
		t.Fatalf("restored %d steps, want 3", steps)
	}
	// The restored stack must be weight-identical to the saved one.
	var a, b bytes.Buffer
	if err := dep.Server.Stack.SaveWeights(&a); err != nil {
		t.Fatal(err)
	}
	if err := dep2.Server.Stack.SaveWeights(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("restored weights differ from checkpointed weights")
	}
}

// waitFor polls cond until it holds or a generous deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReconnectDuringHandshake severs the very first send — the join
// itself is lost with the connection. The client must redial, complete a
// fresh handshake, and then proceed WITHOUT re-sending a handshake note
// on the established session (a double hello is ignored by the server
// and would strand the client awaiting a second welcome).
func TestReconnectDuringHandshake(t *testing.T) {
	dep := buildDeployment(t, 1, "fifo")
	srv := startServer(t, dep, Config{ResumeGrace: 10 * time.Second})

	sched := simnet.NewFaults(simnet.FaultPlan{SeverAtSends: []int{0}})
	dial := func() (transport.Conn, error) {
		client, server := transport.NewPair(1)
		srv.Attach(server)
		return transport.NewFaultCarrier(client, sched), nil
	}
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	const steps = 3
	res, err := RunClient(context.Background(), dep.Clients[0], conn, ClientConfig{
		Steps: steps, GradTimeout: 5 * time.Second,
		Dial: dial, MaxReconnects: 5, ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != steps {
		t.Fatalf("client finished %d steps, want %d", res.Steps, steps)
	}
	if res.Reconnects == 0 {
		t.Fatal("severed join produced no reconnect")
	}
}

// TestHelloToleratesEarlyGradient regresses a resume race: the worker
// may scatter a parked reply onto the swapped-in carrier before the
// session loop sends the welcome, so the first message a resuming
// client reads can be a gradient. The handshake must skip it and find
// the welcome — not declare the session refused.
func TestHelloToleratesEarlyGradient(t *testing.T) {
	dep := buildDeployment(t, 1, "fifo")
	clientConn, peer := transport.NewPair(4)

	// Scripted server peer: answer the join with a stray gradient ahead
	// of the welcome, then serve one batch normally.
	done := make(chan error, 1)
	go func() {
		done <- func() error {
			if msg, err := peer.Recv(); err != nil || msg.Note != core.JoinNote {
				return fmt.Errorf("expected join, got %v err %v", msg, err)
			}
			stray := &transport.Message{
				Type: transport.MsgGradient, ClientID: 0, Seq: 99,
				Payload: tensorOfOnes(1, 1),
			}
			if err := peer.Send(stray); err != nil {
				return err
			}
			if err := peer.Send(&transport.Message{
				Type: transport.MsgControl, ClientID: 0, Seq: 42, Note: core.WelcomeNote,
			}); err != nil {
				return err
			}
			act, err := peer.Recv()
			if err != nil {
				return err
			}
			if act.Type != transport.MsgActivation {
				return fmt.Errorf("expected activation, got %v", act.Type)
			}
			grad := &transport.Message{
				Type: transport.MsgGradient, ClientID: 0, Seq: act.Seq,
				Payload: tensorZerosLike(act.Payload),
			}
			if err := peer.Send(grad); err != nil {
				return err
			}
			if msg, err := peer.Recv(); err != nil || msg.Note != core.DoneNote {
				return fmt.Errorf("expected done, got %v err %v", msg, err)
			}
			return nil
		}()
	}()

	res, err := RunClient(context.Background(), dep.Clients[0], clientConn, ClientConfig{
		Steps: 1, GradTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("client treated the early gradient as a refusal: %v", err)
	}
	if res.Steps != 1 {
		t.Fatalf("client finished %d steps, want 1", res.Steps)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestJoinDisplacesParkedSession regresses the lost-welcome dead end: a
// client whose welcome never arrived holds no token, so its reconnect is
// a fresh join — which must displace the parked half-open incarnation
// cleanly instead of aborting "duplicate client id".
func TestJoinDisplacesParkedSession(t *testing.T) {
	dep := buildDeployment(t, 1, "fifo")
	srv := startServer(t, dep, Config{ResumeGrace: 10 * time.Second})

	// First incarnation: join, get welcomed, die before using it.
	first, firstSide := transport.NewPair(1)
	srv.Attach(firstSide)
	if err := first.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 0, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err := first.Recv(); err != nil || msg.Note != core.WelcomeNote {
		t.Fatalf("first join: msg=%v err=%v", msg, err)
	}
	first.Close()
	waitFor(t, func() bool {
		cs := srv.Snapshot().Clients
		return len(cs) == 1 && cs[0].Parked
	})

	// Second incarnation joins fresh (no token) and must train normally.
	second, secondSide := transport.NewPair(1)
	srv.Attach(secondSide)
	res, err := RunClient(context.Background(), dep.Clients[0], second, ClientConfig{
		Steps: 3, GradTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("fresh join against parked session refused: %v", err)
	}
	if res.Steps != 3 {
		t.Fatalf("client finished %d steps, want 3", res.Steps)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The displaced incarnation ended cleanly, so no session errors.
	if err := srv.AwaitClients(ctx, 1); err != nil {
		t.Fatalf("displaced parked session left an error: %v", err)
	}
	second.Close()
}

// tensorOfOnes builds a payload tensor for scripted-peer messages.
func tensorOfOnes(shape ...int) *tensor.Tensor {
	tt := tensor.New(shape...)
	for i := range tt.Data() {
		tt.Data()[i] = 1
	}
	return tt
}

// tensorZerosLike builds a zero gradient matching an activation's shape.
func tensorZerosLike(act *tensor.Tensor) *tensor.Tensor {
	return tensor.New(act.Shape()...)
}
