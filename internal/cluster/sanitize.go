package cluster

import (
	"fmt"
	"math"
	"sync"
)

// sanitizeVerdict is the activation sanitizer's ruling on one payload.
type sanitizeVerdict uint8

const (
	// sanitizeOK admits the payload: finite, and inside the fleet's norm
	// envelope (or the envelope is still warming up).
	sanitizeOK sanitizeVerdict = iota
	// sanitizeReject bounces the payload without training on it and
	// raises the client's suspicion score — a norm outlier that may be a
	// one-off glitch rather than a hostile client.
	sanitizeReject
	// sanitizeQuarantine terminally blocklists the client: non-finite
	// payloads (which carry no usable information at any weight), or a
	// suspicion score past the limit.
	sanitizeQuarantine
)

// sanitizeWarmup is how many accepted payload norms the fleet-wide
// envelope needs before outlier verdicts are issued. Too few samples and
// the std estimate is noise — an honest early client could trip it.
const sanitizeWarmup = 8

// sanitizer screens activation payloads before they reach the scheduling
// queue: the semantic layer of the corruption defense, catching poison
// the wire checksum cannot (a hostile client frames its garbage
// correctly). It keeps one fleet-wide rolling window of accepted payload
// norms — the envelope of what healthy traffic looks like — and a
// per-client suspicion score:
//
//   - A payload containing NaN/±Inf quarantines its client immediately.
//   - A payload whose L2 norm is a statistical outlier against the
//     envelope (beyond mean + factor·std AND more than twice the mean —
//     the second clause keeps a tight low-variance envelope from
//     flagging benign drift) is rejected and suspicion rises by one.
//     The rejected payload is never queued, so poison cannot reach a
//     model replica even below the quarantine threshold.
//   - Suspicion at or past limit quarantines the client.
//   - Clean payloads feed the envelope and decay suspicion (halving per
//     clean sample), so a client that hit a transient glitch recovers.
//
// Outlier norms are never recorded into the envelope: a norm-bomb client
// must not be able to stretch the envelope until its bombs look normal.
type sanitizer struct {
	mu     sync.Mutex
	window int
	factor float64
	limit  float64

	norms []float64 // rolling window of accepted norms, fleet-wide
	next  int       // ring cursor once the window is full

	suspicion map[int]float64
}

func newSanitizer(window int, factor, limit float64) *sanitizer {
	return &sanitizer{
		window:    window,
		factor:    factor,
		limit:     limit,
		norms:     make([]float64, 0, window),
		suspicion: make(map[int]float64),
	}
}

// check screens one activation payload. It returns the verdict, the
// client's suspicion score after this payload (feeding the per-client
// gauge), and a human-readable reason for non-OK verdicts.
func (z *sanitizer) check(client int, data []float64) (v sanitizeVerdict, score float64, why string) {
	var sq float64
	for _, x := range data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			z.mu.Lock()
			z.suspicion[client] = z.limit
			z.mu.Unlock()
			return sanitizeQuarantine, z.limit, "non-finite activation payload"
		}
		sq += x * x
	}
	norm := math.Sqrt(sq)

	z.mu.Lock()
	defer z.mu.Unlock()
	mean, std := z.statsLocked()
	if len(z.norms) >= sanitizeWarmup && norm > mean+z.factor*std && norm > 2*mean {
		z.suspicion[client]++
		score = z.suspicion[client]
		why = fmt.Sprintf("activation norm %.3g outside envelope (mean %.3g std %.3g)", norm, mean, std)
		if score >= z.limit {
			return sanitizeQuarantine, score, why
		}
		return sanitizeReject, score, why
	}
	z.norms = z.recordLocked(norm)
	if sc, ok := z.suspicion[client]; ok {
		sc /= 2
		if sc < 0.25 {
			delete(z.suspicion, client)
			sc = 0
		} else {
			z.suspicion[client] = sc
		}
		score = sc
	}
	return sanitizeOK, score, ""
}

// recordLocked appends one accepted norm to the rolling window,
// overwriting the oldest once full. Caller must hold z.mu.
func (z *sanitizer) recordLocked(norm float64) []float64 {
	if len(z.norms) < z.window {
		return append(z.norms, norm)
	}
	z.norms[z.next] = norm
	z.next = (z.next + 1) % z.window
	return z.norms
}

// statsLocked is the envelope's mean and (population) std. Caller must
// hold z.mu.
func (z *sanitizer) statsLocked() (mean, std float64) {
	n := len(z.norms)
	if n == 0 {
		return 0, 0
	}
	for _, v := range z.norms {
		mean += v
	}
	mean /= float64(n)
	var sq float64
	for _, v := range z.norms {
		d := v - mean
		sq += d * d
	}
	return mean, math.Sqrt(sq / float64(n))
}
