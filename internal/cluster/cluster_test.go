package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/transport"
)

func smallModel() nn.PaperCNNConfig {
	return nn.PaperCNNConfig{
		InChannels: 3, Height: 8, Width: 8,
		Filters: []int{4, 8},
		Hidden:  16,
		Classes: 4,
	}
}

// buildDeployment wires an n-client deployment on the tiny model.
func buildDeployment(t testing.TB, clients int, policy string) *core.Deployment {
	t.Helper()
	ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(32*clients, 41)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := data.PartitionIID(ds, clients, mathx.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := core.NewDeployment(core.Config{
		Model: smallModel(), Cut: 1, Clients: clients, Seed: 5,
		BatchSize: 8, LR: 0.05, QueuePolicy: policy,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return dep
}

// startServer builds and starts a cluster server over a deployment's
// core server, with cleanup registered.
func startServer(t *testing.T, dep *core.Deployment, cfg Config) *Server {
	t.Helper()
	srv, err := NewServer(dep.Server, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

// TestSessionLifecycle drives two concurrent clients through the full
// join → train → done handshake over in-memory connections.
func TestSessionLifecycle(t *testing.T) {
	dep := buildDeployment(t, 2, "fifo")
	srv := startServer(t, dep, Config{})

	// 2×6 = 12 server steps fills the loss curve's 10-step window.
	const steps = 6
	errs := make(chan error, 2)
	for i, es := range dep.Clients {
		es := es
		client, server := transport.NewPair(1)
		srv.Attach(server)
		go func() {
			_, err := RunClient(context.Background(), es, client, ClientConfig{
				Steps: steps, GradTimeout: 5 * time.Second,
			})
			client.Close()
			errs <- err
		}()
		_ = i
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.AwaitClients(ctx, 2); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	if snap.ServerSteps != 2*steps {
		t.Fatalf("server processed %d batches, want %d", snap.ServerSteps, 2*steps)
	}
	for _, c := range snap.Clients {
		if c.Served != steps {
			t.Errorf("client %d served %d, want %d", c.ID, c.Served, steps)
		}
		if !c.Done {
			t.Errorf("client %d not marked done", c.ID)
		}
	}
	if snap.LastLoss <= 0 {
		t.Errorf("no loss recorded: %v", snap.LastLoss)
	}
}

// TestDuplicateJoinRejected verifies a second session with a live id is
// refused at the handshake.
func TestDuplicateJoinRejected(t *testing.T) {
	dep := buildDeployment(t, 1, "fifo")
	srv := startServer(t, dep, Config{})

	first, firstSrv := transport.NewPair(1)
	srv.Attach(firstSrv)
	if err := first.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 0, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err := first.Recv(); err != nil || msg.Note != core.WelcomeNote {
		t.Fatalf("first join: msg=%v err=%v", msg, err)
	}

	second, secondSrv := transport.NewPair(1)
	srv.Attach(secondSrv)
	if err := second.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 0, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	msg, err := second.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(msg.Note, core.AbortNote) {
		t.Fatalf("duplicate join got %q, want abort", msg.Note)
	}
}

// TestBackpressureReject floods a cap-1 queue in reject mode and checks
// that bounced batches are resent and training still completes.
func TestBackpressureReject(t *testing.T) {
	dep := buildDeployment(t, 3, "fifo")
	srv := startServer(t, dep, Config{QueueCap: 1, Overflow: OverflowReject})

	const steps = 3
	errs := make(chan error, 3)
	for _, es := range dep.Clients {
		es := es
		client, server := transport.NewPair(1)
		srv.Attach(server)
		go func() {
			_, err := RunClient(context.Background(), es, client, ClientConfig{
				Steps: steps, GradTimeout: 5 * time.Second, RejectBackoff: time.Millisecond,
			})
			client.Close()
			errs <- err
		}()
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.AwaitClients(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if got := srv.Snapshot().ServerSteps; got != 3*steps {
		t.Fatalf("server processed %d batches, want %d", got, 3*steps)
	}
}

// TestBackpressurePark does the same with parking: the session goroutine
// stalls admission instead of bouncing, and nothing is lost.
func TestBackpressurePark(t *testing.T) {
	dep := buildDeployment(t, 3, "fifo")
	srv := startServer(t, dep, Config{QueueCap: 1, Overflow: OverflowPark})

	const steps = 3
	errs := make(chan error, 3)
	for _, es := range dep.Clients {
		es := es
		client, server := transport.NewPair(1)
		srv.Attach(server)
		go func() {
			_, err := RunClient(context.Background(), es, client, ClientConfig{
				Steps: steps, GradTimeout: 5 * time.Second,
			})
			client.Close()
			errs <- err
		}()
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.AwaitClients(ctx, 3); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	if snap.ServerSteps != 3*steps {
		t.Fatalf("server processed %d batches, want %d", snap.ServerSteps, 3*steps)
	}
	if snap.Rejected != 0 {
		t.Fatalf("park mode rejected %d batches", snap.Rejected)
	}
}

// TestStragglerDropped verifies a silent client is evicted and does not
// stall a gated (sync-rounds) policy for the healthy one.
func TestStragglerDropped(t *testing.T) {
	dep := buildDeployment(t, 2, "sync-rounds")
	srv := startServer(t, dep, Config{StragglerTimeout: 100 * time.Millisecond})

	// Client 1 joins, then goes silent forever.
	silent, silentSrv := transport.NewPair(1)
	srv.Attach(silentSrv)
	if err := silent.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 1, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err := silent.Recv(); err != nil || msg.Note != core.WelcomeNote {
		t.Fatalf("silent join: msg=%v err=%v", msg, err)
	}

	// Client 0 trains normally; sync-rounds would deadlock on client 1
	// unless the janitor deactivates it.
	const steps = 3
	healthy, healthySrv := transport.NewPair(1)
	srv.Attach(healthySrv)
	done := make(chan error, 1)
	go func() {
		_, err := RunClient(context.Background(), dep.Clients[0], healthy, ClientConfig{
			Steps: steps, GradTimeout: 10 * time.Second,
		})
		healthy.Close()
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.AwaitClients(ctx, 2)
	if err == nil {
		t.Fatal("expected straggler error from AwaitClients")
	}
	if !strings.Contains(err.Error(), "straggler") {
		t.Fatalf("error %v does not mention straggler", err)
	}
	var dropped bool
	for _, c := range srv.Snapshot().Clients {
		if c.ID == 1 && c.Err != "" {
			dropped = true
		}
		if c.ID == 0 && c.Served != steps {
			t.Errorf("healthy client served %d, want %d", c.Served, steps)
		}
	}
	if !dropped {
		t.Fatal("silent client not recorded as dropped")
	}
	silent.Close()
}

// TestGracefulShutdown cancels the server mid-training and checks every
// goroutine unwinds and the client surfaces a connection error.
func TestGracefulShutdown(t *testing.T) {
	dep := buildDeployment(t, 1, "fifo")
	srv, err := NewServer(dep.Server, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	client, server := transport.NewPair(1)
	srv.Attach(server)
	clientErr := make(chan error, 1)
	go func() {
		// More steps than will ever complete: shutdown interrupts.
		_, err := RunClient(context.Background(), dep.Clients[0], client, ClientConfig{
			Steps: 1_000_000, GradTimeout: 10 * time.Second,
		})
		clientErr <- err
	}()

	// Let some training happen, then pull the plug.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().ServerSteps < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-clientErr:
		if err == nil {
			t.Fatal("client finished 1M steps impossibly fast")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not unwind after shutdown")
	}
}

// TestSnapshotDuringTraining takes snapshots concurrently with training
// — under -race this proves the metrics path is data-race free.
func TestSnapshotDuringTraining(t *testing.T) {
	dep := buildDeployment(t, 2, "fair-rr")
	srv := startServer(t, dep, Config{})

	const steps = 5
	errs := make(chan error, 2)
	for _, es := range dep.Clients {
		es := es
		client, server := transport.NewPair(1)
		srv.Attach(server)
		go func() {
			_, err := RunClient(context.Background(), es, client, ClientConfig{
				Steps: steps, GradTimeout: 5 * time.Second,
			})
			client.Close()
			errs <- err
		}()
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = srv.Snapshot().String()
			}
		}
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.AwaitClients(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if got := srv.Snapshot().ServerSteps; got != 2*steps {
		t.Fatalf("server processed %d, want %d", got, 2*steps)
	}
}
