// Package cluster is the live, real-concurrency runtime for
// spatio-temporal split learning: the production counterpart of the
// event-driven virtual-time Simulation in internal/core.
//
// In the simulation, end-systems are entries in an event heap and
// "arrival skew" is a scheduled timestamp. Here they are real concurrent
// actors: each end-system runs in its own goroutine (or OS process, via
// cmd/stsl-endsystem) and talks to a live Server over the
// internal/transport wire protocol — real TCP, net.Pipe with the binary
// framing, or in-memory channel pairs. The server feeds every arriving
// activation into a single mutex-guarded instance of the paper's
// scheduling queue (queue.Safe wrapping any queue.Policy) and drains it
// with a pool of worker goroutines that own all model state, so the
// paper's parameter-scheduling discipline absorbs actual wall-clock
// arrival skew. The session layer (join/resume/park/leave, reply cache,
// janitor) owns no model state at all — see DESIGN.md §3.5 for the
// split. With Config.Workers = 1 (the default) a single worker owns the
// one model replica, the classic arrangement; at Workers = N each
// worker drains the shared queue into its own data-parallel replica and
// the replicas synchronise through a FedAvg parameter average every
// Config.SyncEvery steps (DESIGN.md §3.2). With Config.BatchCoalesce a
// worker drains up to B queued activations per pick and runs them as
// one stacked forward/backward pass, scattering per-client gradient
// slices back to their sessions — the two levers compose: coalescing
// amortises the conv/matmul hot path, workers multiply it.
//
// The pieces:
//
//   - Server: accepts end-system sessions, runs the join/leave
//     handshake, admits activations with bounded backpressure
//     (park or reject past a queue-depth cap), detects stragglers,
//     shuts down gracefully via context, and publishes live metric
//     Snapshots (throughput, queue depth, per-client staleness).
//     Sessions are elastic: a client that loses its link within
//     Config.ResumeGrace reconnects with its session token and resumes
//     — same id, queued items, reply cache — instead of being evicted
//     (see DESIGN.md §3.3 for the lifecycle and exactly-once rules).
//     With Config.Checkpoint the worker persists training state
//     periodically and at shutdown, so a restarted server resumes from
//     the last step while retry-enabled clients re-handshake.
//   - RunClient: drives one core.EndSystem over a connection with the
//     lock-step split-learning semantics, a gradient straggler timeout,
//     automatic resend on backpressure rejection, and — with
//     ClientConfig.Dial — reconnect/resume across connection losses
//     and server restarts.
//   - Run (the ClusterRunner): wires M client goroutines to an
//     in-process Server over a chosen transport and runs the whole
//     deployment to completion — the harness tests and benchmarks use
//     to compare live-concurrent training against the virtual-time
//     simulation on the same seed. RunnerConfig.Faults wraps each
//     client's carrier in a seeded transport.FaultCarrier, which is how
//     the chaos conformance suite injects deterministic churn.
package cluster

import (
	"fmt"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/obs"
	"github.com/stsl/stsl/internal/paramsync"
)

// StragglerAuto, as Config.StragglerTimeout, derives the straggler
// deadline from live traffic instead of a fixed constant: the janitor
// uses 8× the smoothed inter-message gap (an RFC 6298-style estimator
// fed by every received message), clamped to [250ms, 20s]. A fixed
// timeout is either too tight for a far end-system or uselessly loose
// for a near one; the adaptive deadline tracks what "silent too long"
// means for the cadence the server actually observes.
const StragglerAuto time.Duration = -1

// Overflow selects what the server does with an activation that arrives
// while the scheduling queue is at its depth cap.
type Overflow string

const (
	// OverflowPark holds the arriving activation in the session
	// goroutine until the queue has headroom — backpressure propagates
	// to the client through the transport (its next Send blocks).
	OverflowPark Overflow = "park"
	// OverflowReject refuses the activation with a control message; the
	// client backs off and resends.
	OverflowReject Overflow = "reject"
)

// Config parameterises a cluster Server.
type Config struct {
	// QueueCap bounds the scheduling queue depth; arrivals beyond it
	// hit the Overflow policy. 0 defaults to 64; negative = unbounded.
	// With a gated policy (sync-rounds) the cap is lifted automatically
	// — capping below the client count would deadlock (park) or livelock
	// (reject) the gate, and lock-step already bounds depth to M.
	QueueCap int
	// Overflow selects park (default) or reject behaviour at the cap.
	Overflow Overflow
	// StragglerTimeout drops a session whose client has been silent for
	// this long (0 = never; StragglerAuto derives the deadline from the
	// live inter-message cadence). Dropped clients are deactivated in
	// gated queue policies so they cannot stall a synchronous round.
	StragglerTimeout time.Duration
	// BatchCoalesce caps how many queued activations the worker drains
	// per PopBatch and stacks into one coalesced forward/backward pass
	// (0 or 1 = serve one at a time). Coalescing amortises the model's
	// conv/matmul hot path across concurrently arriving clients — the
	// server's throughput lever under heavy traffic. One coalesced pass
	// is one optimiser step over the combined batch; the virtual-time
	// simulation applies the same semantics, so live and simulated
	// training stay loss-equivalent at equal settings. With sync-rounds
	// the gated round is atomic and may exceed this cap.
	BatchCoalesce int
	// ResumeGrace keeps a disconnected session's server-side state — id,
	// token, queued items, reply cache, round position — alive for this
	// long so the client can reconnect and resume instead of being
	// evicted. 0 disables resume: a lost connection ends the session
	// immediately, the pre-churn behaviour. While a session is parked the
	// worker keeps serving its queued items (replies wait in the cache),
	// and a gated policy keeps counting it — grace is the knob trading
	// round stall against eviction.
	ResumeGrace time.Duration
	// Workers is the number of data-parallel model replicas draining the
	// scheduling queue concurrently (0 or 1 = the classic single
	// model-owning worker). Each extra worker runs an independent
	// forward/backward/step on its own replica of the server stack; the
	// replicas synchronise through a FedAvg parameter average every
	// SyncEvery pool steps. Workers > 1 requires NewReplica.
	Workers int
	// SyncEvery is the pool-wide number of served steps between replica
	// parameter-averaging barriers (0 defaults to 16). Wider spacing
	// buys throughput at the price of replica divergence — watch the
	// stsl_replica_divergence gauge. Meaningful only at Workers > 1.
	SyncEvery int
	// LRScale multiplies every replica's server-side learning rate at
	// Workers > 1. Averaging N replicas' parameters folds N optimiser
	// steps into roughly one, so an unscaled pool advances ~1/N as far
	// per served example as the single-worker server; 0 defaults to
	// float64(Workers) — the linear scaling rule — which restores the
	// sequential trajectory and keeps live-vs-sim loss parity. Set 1 to
	// disable scaling. Client-side optimisers are never touched.
	LRScale float64
	// NewReplica builds one additional core server structurally
	// identical to the primary (same stack shapes, fresh optimiser) for
	// the worker pool; it is called Workers-1 times by NewServer and the
	// primary's weights — including any restored checkpoint — are fanned
	// out to every replica before Start. core.Deployment.NewServerReplica
	// is the standard factory; the runner wires it automatically.
	NewReplica func() (*core.Server, error)
	// CheckpointEvery invokes Checkpoint after every this many server
	// steps. 0 with a non-nil Checkpoint still writes the final
	// checkpoint at worker exit. At Workers > 1 the cadence is rounded
	// to sync barriers: a due checkpoint forces the next barrier and is
	// written there, while every replica is quiescent.
	CheckpointEvery int
	// Checkpoint, when non-nil, persists the pool's training state: it
	// receives every model replica (one entry at Workers <= 1). It is
	// called only while no worker is mid-pass — from the single worker
	// between passes, or at a pool sync barrier — so it can never
	// observe a half-applied update; it runs every CheckpointEvery steps
	// and once more at shutdown, making a server restart nearly
	// lossless. Use FileCheckpointer for the standard file sink.
	Checkpoint func([]*core.Server) error
	// Now supplies protocol timestamps. nil uses a monotonic wall clock
	// started at Server.Start; the in-process runner injects one shared
	// clock across server and clients so staleness ordering is
	// consistent.
	Now func() time.Duration
	// Obs, when non-nil, is the registry this server's telemetry lands
	// in: queue depth/wait histograms per policy, session lifecycle
	// counters, worker stage timings, and the core model server's step
	// and loss metrics. The record path is a few atomic ops per event —
	// cheap enough to leave on (the bench harness bounds the overhead
	// at ≤2% steps/s). nil disables all of it.
	Obs *obs.Registry
	// Tracer, when non-nil, receives session lifecycle events and
	// worker spans into its bounded in-memory ring — the flight
	// recorder behind the admin listener's /trace endpoint. nil
	// disables tracing.
	Tracer *obs.Tracer

	// MaxSessions caps concurrently live sessions (joined, not yet done
	// or ended). A join beyond the cap is refused with a structured
	// RefusalOverloaded control reply carrying a RetryAfter hint — the
	// client backs off and retries — rather than a dropped connection.
	// Resuming a session the server still holds never counts against the
	// cap (its slot is already held). 0 = unlimited.
	MaxSessions int
	// ShedDepth arms the admission gate's queue-depth input: when
	// occupancy reaches it the server refuses new joins and enters
	// brownout, recovering with hysteresis once depth falls back below
	// roughly half the trip point. 0 disables the depth input.
	ShedDepth int
	// ShedLatencyP95 arms the admission gate's latency input: a p95
	// service latency (enqueue → gradient sent) at or above it trips the
	// shed gate. 0 disables the latency input.
	ShedLatencyP95 time.Duration
	// WorkDeadline stamps every admitted activation with an enqueue
	// deadline; the worker sheds items that outlive it un-served (counted
	// in stsl_queue_expired_total) and tells the client to resend, so a
	// collapsed queue spends model passes only on work whose client is
	// still waiting for the answer. 0 = no deadline.
	WorkDeadline time.Duration
	// SendTimeout bounds any single worker reply send when the carrier
	// supports write deadlines (TCP and net.Pipe do): a client that stops
	// reading — a stalled reader — is evicted instead of wedging the
	// worker that serves everyone behind its backpressure. Carriers
	// without deadlines keep the blocking behaviour. 0 = no bound.
	SendTimeout time.Duration
	// BrownoutCoalesce is the effective BatchCoalesce while the shed
	// gate is open: brownout drains the backlog in bigger coalesced
	// passes, trading per-item latency for queue recovery. 0 defaults to
	// 4×BatchCoalesce (at least 4). Ignored while the gate is closed.
	BrownoutCoalesce int
	// RetryAfterHint is the floor of the RetryAfter hint carried by
	// refusals; the live hint grows to twice the observed p95 service
	// latency so refused clients retry after the backlog they were
	// refused over has had time to drain. 0 defaults to 25ms.
	RetryAfterHint time.Duration

	// Checksum, when set, enables CRC32C-checksummed wire framing on
	// every connection handed to Attach (via transport.SetChecksum), so
	// server-originated frames carry integrity trailers. Decoding needs
	// no negotiation — the checksummed frame is self-describing — so a
	// checksumming server interoperates with plain clients and vice
	// versa; corrupted inbound frames are detected either way.
	Checksum bool
	// Aggregate selects the rule combining replica parameters at sync
	// barriers (and at the final fold): plain FedAvg average (the zero
	// value), coordinate-wise trimmed mean, or norm-clipped average. The
	// robust rules bound what a minority of poisoned replicas can do to
	// the consensus; see internal/paramsync.
	Aggregate paramsync.Method
	// Sanitize arms the activation sanitizer: every inbound activation
	// payload is screened for NaN/Inf and norm outliers before it can
	// reach the scheduling queue, and clients that repeatedly send
	// garbage are quarantined (session aborted, id blocklisted). See
	// sanitize.go for the envelope and suspicion mechanics.
	Sanitize bool
	// SuspicionLimit is the suspicion score at which a client is
	// quarantined (0 defaults to 3). Non-finite payloads jump straight
	// to the limit; norm outliers add 1 each and decay on clean traffic.
	SuspicionLimit float64
	// NormWindow is the size of the fleet-wide rolling window of
	// accepted activation norms behind outlier detection (0 defaults
	// to 64).
	NormWindow int
	// NormFactor is the outlier threshold in standard deviations: a
	// payload norm beyond mean + NormFactor·std (and more than twice the
	// mean) is rejected (0 defaults to 8 — deliberately loose; the
	// sanitizer is a tripwire for order-of-magnitude bombs, not a
	// similarity filter).
	NormFactor float64
}

// validate rejects nonsensical knob values at construction with a
// descriptive error. A negative duration silently treated as "disabled"
// costs real debugging time in a deployment manifest; fail loudly
// instead.
func (c Config) validate() error {
	if c.StragglerTimeout < 0 && c.StragglerTimeout != StragglerAuto {
		return fmt.Errorf("cluster: StragglerTimeout must be positive, 0 (off), or StragglerAuto, got %v", c.StragglerTimeout)
	}
	if c.ResumeGrace < 0 {
		return fmt.Errorf("cluster: ResumeGrace must be >= 0, got %v", c.ResumeGrace)
	}
	if c.MaxSessions < 0 {
		return fmt.Errorf("cluster: MaxSessions must be >= 0 (0 = unlimited), got %d", c.MaxSessions)
	}
	if c.ShedDepth < 0 {
		return fmt.Errorf("cluster: ShedDepth must be >= 0 (0 = off), got %d", c.ShedDepth)
	}
	if c.BrownoutCoalesce < 0 {
		return fmt.Errorf("cluster: BrownoutCoalesce must be >= 0 (0 = 4×BatchCoalesce), got %d", c.BrownoutCoalesce)
	}
	if c.SuspicionLimit < 0 {
		return fmt.Errorf("cluster: SuspicionLimit must be >= 0 (0 = default 3), got %v", c.SuspicionLimit)
	}
	if c.NormWindow < 0 {
		return fmt.Errorf("cluster: NormWindow must be >= 0 (0 = default 64), got %d", c.NormWindow)
	}
	if c.NormFactor < 0 {
		return fmt.Errorf("cluster: NormFactor must be >= 0 (0 = default 8), got %v", c.NormFactor)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"ShedLatencyP95", c.ShedLatencyP95},
		{"WorkDeadline", c.WorkDeadline},
		{"SendTimeout", c.SendTimeout},
		{"RetryAfterHint", c.RetryAfterHint},
	} {
		if d.v < 0 {
			return fmt.Errorf("cluster: %s must be >= 0, got %v", d.name, d.v)
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.QueueCap < 0 {
		c.QueueCap = 0 // unbounded for queue.Safe.TryPush
	}
	if c.Overflow == "" {
		c.Overflow = OverflowPark
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 16
	}
	if c.RetryAfterHint == 0 {
		c.RetryAfterHint = 25 * time.Millisecond
	}
	if c.BrownoutCoalesce == 0 {
		c.BrownoutCoalesce = 4 * c.BatchCoalesce
		if c.BrownoutCoalesce < 4 {
			c.BrownoutCoalesce = 4
		}
	}
	if c.SuspicionLimit == 0 {
		c.SuspicionLimit = 3
	}
	if c.NormWindow == 0 {
		c.NormWindow = 64
	}
	if c.NormFactor == 0 {
		c.NormFactor = 8
	}
	return c
}
