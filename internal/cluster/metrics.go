package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time view of a live Server, safe to take from
// any goroutine while training runs.
type Snapshot struct {
	// Uptime is the wall time since Start.
	Uptime time.Duration
	// ServerSteps is the number of batches processed so far.
	ServerSteps int
	// StepsPerSec is the lifetime throughput (ServerSteps / Uptime),
	// zero until at least a millisecond of uptime has accrued.
	StepsPerSec float64
	// StepsPerSecWindow is the throughput over the trailing ~10s — the
	// number a dashboard should watch, since the lifetime average hides
	// stalls on long runs. Zero until enough step history exists.
	StepsPerSecWindow float64
	// QueueDepth is the current scheduling-queue occupancy.
	QueueDepth int
	// MaxQueueDepth is the occupancy high-water mark over the run.
	MaxQueueDepth int
	// Rejected counts activations refused for backpressure.
	Rejected int
	// Refused counts join handshakes bounced by admission control — the
	// session cap or an open shed gate.
	Refused int
	// Shed counts queued activations expired past WorkDeadline and shed
	// un-served.
	Shed int
	// Degraded reports whether the shed gate is currently open (brownout
	// active: joins refused, coalesce widened, newest sessions parked).
	Degraded bool
	// Workers is the number of data-parallel model replicas serving the
	// queue (1 = the classic single model-owning worker).
	Workers int
	// Syncs counts completed FedAvg sync barriers (0 at Workers = 1).
	Syncs int
	// ReplicaDivergence is the normalised RMS spread across replicas
	// measured at the most recent sync barrier, just before averaging
	// erased it. 0 until the first sync, and always 0 at Workers = 1.
	ReplicaDivergence float64
	// CorruptFrames counts inbound frames whose CRC32C trailer did not
	// match the payload — corruption that was detected and dropped (the
	// client's resend recovers the message) instead of trained on.
	CorruptFrames int
	// Quarantined counts client ids blocklisted by the activation
	// sanitizer: their payloads carried NaN/Inf or repeatedly fell
	// outside the fleet's norm envelope.
	Quarantined int
	// PoolErr is the terminal worker-pool failure, if any ("" while
	// healthy): a replica sync that could not produce finite parameters.
	// A server with PoolErr set refuses new sessions with RetryLater and
	// has already checkpointed its healthy replicas.
	PoolErr string
	// Checkpoints counts checkpoints written by the worker so far.
	Checkpoints int
	// CheckpointErr is the most recent checkpoint failure ("" while
	// healthy; cleared by the next successful write).
	CheckpointErr string
	// LastLoss is the most recent window-averaged training loss.
	LastLoss float64
	// Clients holds per-session service state, sorted by id.
	Clients []ClientStatus
}

// ClientStatus is one session's slice of a Snapshot.
type ClientStatus struct {
	// ID is the end-system id from the join handshake.
	ID int
	// Served counts this client's batches processed by the server.
	Served int
	// LastStaleness is the queue wait of this client's most recently
	// served batch — the live analogue of the paper's staleness concern.
	LastStaleness time.Duration
	// Done reports the client announced completion.
	Done bool
	// Parked reports the session lost its connection and is waiting,
	// within the resume grace window, for the client to reconnect.
	Parked bool
	// Resumes counts successful reconnect-and-resume handshakes.
	Resumes int
	// Err is the terminal session error, if any ("" while healthy).
	Err string
}

// String renders a one-line operational summary.
func (s Snapshot) String() string {
	parts := make([]string, 0, len(s.Clients))
	for _, c := range s.Clients {
		state := ""
		if c.Done {
			state = "✓"
		}
		if c.Parked {
			state = "~"
		}
		if c.Err != "" {
			state = "!"
		}
		parts = append(parts, fmt.Sprintf("c%d:%d%s", c.ID, c.Served, state))
	}
	ckpt := ""
	if s.Checkpoints > 0 {
		ckpt = fmt.Sprintf(" ckpt=%d", s.Checkpoints)
	}
	pool := ""
	if s.Workers > 1 {
		pool = fmt.Sprintf(" workers=%d syncs=%d div=%.3g", s.Workers, s.Syncs, s.ReplicaDivergence)
	}
	integrity := ""
	if s.CorruptFrames > 0 || s.Quarantined > 0 {
		integrity = fmt.Sprintf(" corrupt=%d quar=%d", s.CorruptFrames, s.Quarantined)
	}
	return fmt.Sprintf("steps=%d (%.1f/s life, %.1f/s now) depth=%d/%d rejected=%d%s%s%s loss=%.4f per-client[%s]",
		s.ServerSteps, s.StepsPerSec, s.StepsPerSecWindow, s.QueueDepth, s.MaxQueueDepth, s.Rejected, pool, ckpt, integrity, s.LastLoss,
		strings.Join(parts, " "))
}

// snapshotClients assembles the per-client slice from the session map.
// Caller must hold s.mu.
func (s *Server) snapshotClients() []ClientStatus {
	out := make([]ClientStatus, 0, len(s.sessions))
	for id, sess := range s.sessions {
		cs := ClientStatus{
			ID:            id,
			Served:        sess.served,
			LastStaleness: sess.lastStaleness,
			Done:          sess.done,
			Parked:        sess.parked,
			Resumes:       sess.resumes,
		}
		if sess.err != nil {
			cs.Err = sess.err.Error()
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
