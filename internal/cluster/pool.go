package cluster

import (
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/paramsync"
)

// pool coordinates the worker fleet's FedAvg sync barrier. The
// protocol:
//
//   - account() credits served steps; when the sync (or checkpoint)
//     cadence is reached it arms the barrier: due=true, and the current
//     syncReq channel is closed so idle workers blocked on the queue
//     wake up and come to the barrier too.
//   - Every worker calls Server.syncIfDue between batches (and when
//     woken while idle). Arrivals park on cond until the last live
//     worker arrives.
//   - The last arriver has exclusive access to every replica (all
//     other workers are parked): it averages the replicas
//     (Server.syncReplicas), writes a checkpoint if one is due, then
//     opens the barrier — generation++, fresh syncReq, broadcast.
//   - Shutdown aborts a pending barrier: workers abandon the
//     rendezvous when the server context dies (pool.interrupt
//     broadcasts), and the supervisor performs the final average and
//     checkpoint after the pool has fully drained. A worker exits only
//     on shutdown, so exit() never strands a live barrier.
//
// All fields are guarded by mu. The pool is inert (never armed) at
// Workers <= 1: init is not called, wake() returns nil, and syncIfDue
// is never invoked.
type pool struct {
	mu   sync.Mutex
	cond *sync.Cond

	syncEvery int
	live      int // workers not yet exited
	arrived   int // workers parked at the armed barrier
	gen       int // barrier generation, advances as each barrier opens
	due       bool
	steps     int // pool-wide steps since the last sync
	ckptDue   int // pool-wide steps since the last checkpoint
	doCkpt    bool
	syncReq   chan struct{} // closed when due; replaced as the barrier opens
}

func (p *pool) init(workers, syncEvery int) {
	p.cond = sync.NewCond(&p.mu)
	p.syncEvery = syncEvery
	p.live = workers
	p.syncReq = make(chan struct{})
}

// wake returns the channel closed when a barrier is armed — the idle
// worker's signal to rendezvous. nil (blocks forever in a select) when
// the pool is inert.
func (p *pool) wake() <-chan struct{} {
	if p.cond == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.syncReq
}

// account credits n served steps and arms the barrier when the sync
// cadence — or, when a checkpoint sink is configured, the checkpoint
// cadence — is reached.
func (p *pool) account(n int, wantCkpt bool, ckptEvery int) {
	p.mu.Lock()
	p.steps += n
	p.ckptDue += n
	if wantCkpt && p.ckptDue >= ckptEvery {
		p.doCkpt = true
	}
	if !p.due && (p.steps >= p.syncEvery || p.doCkpt) {
		p.due = true
		close(p.syncReq)
	}
	p.mu.Unlock()
}

// exit removes one worker from the pool. Workers exit only at shutdown
// (context cancellation), which also aborts any pending barrier, so the
// broadcast here only hurries parked workers to notice.
func (p *pool) exit() {
	p.mu.Lock()
	p.live--
	p.cond.Broadcast()
	p.mu.Unlock()
}

// interrupt wakes workers parked at the barrier so they can observe
// the dying server context. No-op on an inert pool.
func (p *pool) interrupt() {
	if p.cond == nil {
		return
	}
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// syncIfDue is the barrier rendezvous: a no-op unless account armed the
// barrier. Callers hold no locks and are between passes — their replica
// is consistent. The last arriving worker performs the average (and a
// due checkpoint) while every other live worker is parked here, then
// opens the barrier.
func (s *Server) syncIfDue() {
	p := &s.pool
	p.mu.Lock()
	if !p.due {
		p.mu.Unlock()
		return
	}
	gen := p.gen
	p.arrived++
	if p.arrived < p.live {
		// Not last: park until this barrier opens or the server dies.
		for p.gen == gen && s.ctx.Err() == nil {
			p.cond.Wait()
		}
		p.mu.Unlock()
		return
	}
	doCkpt := p.doCkpt && s.cfg.Checkpoint != nil
	p.doCkpt = false
	p.ckptDue = 0
	p.mu.Unlock()

	// Exclusive model access: every other live worker is parked above.
	if s.ctx.Err() == nil {
		if err := s.syncReplicas(); err != nil {
			// A sync that cannot produce finite parameters is terminal for
			// the pool — but a contained failure, not a crash: failPool
			// checkpoints the healthy replicas and cancels the server
			// context. The barrier still opens below so the parked workers
			// wake and observe the dying context.
			s.failPool(err)
		} else if doCkpt {
			s.checkpoint()
		}
	}

	p.mu.Lock()
	p.steps = 0
	p.due = false
	p.arrived = 0
	p.gen++
	p.syncReq = make(chan struct{})
	p.cond.Broadcast()
	p.mu.Unlock()
}

// syncReplicas performs one parameter aggregation across the pool using
// the configured rule (FedAvg average by default; trimmed mean or
// clipped average for Byzantine tolerance): the replica-divergence gauge
// is read first (the drift the barrier is about to erase), the aggregate
// lands in the primary, and the result fans out so every replica leaves
// the barrier identical — which also heals a replica that went
// non-finite, since the robust rules drop poisoned sets before
// averaging. An error (plain Average refusing a NaN replica, or every
// replica poisoned) means the pool cannot continue: the caller converts
// it into a contained shutdown via failPool. Called only with exclusive
// access to all replicas — by the barrier's last arriver, or by the
// supervisor after the pool drained.
func (s *Server) syncReplicas() error {
	start := time.Now()
	sets := make([][]*nn.Param, len(s.replicas))
	for i, rep := range s.replicas {
		sets[i] = rep.Stack.Params()
	}
	div := paramsync.Divergence(sets)
	if math.IsNaN(div) || math.IsInf(div, 0) {
		// A poisoned replica makes the RMS spread meaningless; don't
		// export NaN through the gauge.
		div = 0
	}
	if err := paramsync.Aggregate(s.cfg.Aggregate, sets[0], sets, nil); err != nil {
		return fmt.Errorf("cluster: replica sync (%v): %w", s.cfg.Aggregate, err)
	}
	for _, set := range sets[1:] {
		if err := paramsync.Copy(set, sets[0]); err != nil {
			return fmt.Errorf("cluster: replica fan-out: %w", err)
		}
	}
	d := time.Since(start)
	if s.ins != nil {
		s.ins.syncSeconds.ObserveDuration(d)
		s.ins.divergence.Set(div)
	}
	s.tr.Record("pool.sync", -1, -1,
		fmt.Sprintf("replicas=%d divergence=%.3g", len(s.replicas), div), d)
	s.mu.Lock()
	s.syncs++
	s.lastDiv = div
	s.mu.Unlock()
	return nil
}
